// Architecture ablation (extension beyond the paper's Table IV): RSRNet's
// recurrent core — the paper's LSTM vs a GRU — compared on detection
// quality, training time, model size, and per-point streaming latency.
// Expected shape: near-identical F1 (the task's sequential signal is short-
// range), with the GRU ~25% smaller and slightly faster per point.
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"

using namespace rl4oasd;

int main() {
  printf("=== Architecture ablation: RSRNet recurrent core ===\n\n");
  auto city = bench::MakeChengduLike();
  printf("%-10s %10s %10s %12s %14s %14s\n", "Core", "F1", "TF1",
         "train (s)", "weights", "us/point");
  struct Variant {
    const char* name;
    nn::RnnKind kind;
    size_t layers;
  };
  const Variant variants[] = {{"lstm", nn::RnnKind::kLstm, 1},
                              {"gru", nn::RnnKind::kGru, 1},
                              {"lstm-x2", nn::RnnKind::kLstm, 2}};
  for (const Variant& v : variants) {
    auto cfg = bench::TunedConfig();
    cfg.rsr.rnn_kind = v.kind;
    cfg.rsr.num_layers = v.layers;
    core::Rl4Oasd model(&city.net, cfg);
    Stopwatch train_sw;
    model.Fit(city.train);
    const double train_s = train_sw.ElapsedSeconds();

    const auto scores = bench::Evaluate(
        city.test,
        [&](const traj::MapMatchedTrajectory& t) { return model.Detect(t); });

    // Streaming latency over the test set.
    Stopwatch sw;
    int64_t points = 0;
    for (const auto& lt : city.test.trajs()) {
      if (lt.traj.edges.size() < 2) continue;
      auto session = model.StartSession(lt.traj.sd(), lt.traj.start_time);
      for (auto e : lt.traj.edges) session.Feed(e);
      session.Finish();
      points += static_cast<int64_t>(lt.traj.edges.size());
    }
    const double us_per_point =
        sw.ElapsedMicros() / static_cast<double>(points);

    printf("%-10s %10.3f %10.3f %12.1f %14zu %14.2f\n", v.name,
           scores.overall.f1, scores.overall.tf1, train_s,
           model.mutable_rsrnet()->registry()->NumWeights(), us_per_point);
  }
  return 0;
}
