// Extension bench (paper Section IV "Discussion on the cold-start problem" /
// future work): generative route augmentation for sparse SD pairs.
//
// Repeats the Table VI drop-rate sweep twice — once with the plain
// preprocessor and once with the Markov route generator topping sparse
// pairs back up to `target_support` synthetic trajectories — and prints the
// F1 of both. Expected shape: augmentation recovers part of the F1 lost at
// high drop rates while leaving the dense (low-drop) settings unchanged.
#include <cstdio>

#include "bench_util.h"
#include "core/route_generator.h"

using namespace rl4oasd;

int main() {
  printf("=== Cold-start extension: generative route augmentation ===\n\n");
  auto city = bench::MakeChengduLike();
  printf("%-10s %12s %12s %14s\n", "Drop rate", "F1 (plain)", "F1 (+gen)",
         "synthetic trajs");
  Rng rng(321);
  for (double drop : {0.0, 0.4, 0.6, 0.8, 0.9}) {
    const auto train =
        drop == 0.0 ? city.train : city.train.DropFraction(drop, &rng);

    core::Rl4Oasd plain(&city.net, bench::TunedConfig());
    plain.Fit(train);
    const auto plain_scores = bench::Evaluate(
        city.test,
        [&](const traj::MapMatchedTrajectory& t) { return plain.Detect(t); });

    core::RouteGeneratorConfig gen_cfg;
    gen_cfg.target_support = 25;
    core::RouteGenerator gen(&city.net, gen_cfg);
    gen.Fit(train);
    const auto augmented = gen.AugmentSparsePairs(train);

    core::Rl4Oasd boosted(&city.net, bench::TunedConfig());
    boosted.Fit(augmented);
    const auto boosted_scores = bench::Evaluate(
        city.test, [&](const traj::MapMatchedTrajectory& t) {
          return boosted.Detect(t);
        });

    printf("%-10.1f %12.3f %12.3f %14zu\n", drop, plain_scores.overall.f1,
           boosted_scores.overall.f1, augmented.size() - train.size());
  }
  return 0;
}
