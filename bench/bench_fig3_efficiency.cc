// Figure 3 reproduction: overall online-detection efficiency — average
// runtime per newly generated point, for every method, on both cities.
// Expected shape (paper): DBTOD fastest; CTSS slowest (quadratic Frechet);
// GM-VSAE slower than SD-VSAE/VSAE (K decoding passes vs one); RL4OASD well
// under 0.1 ms per point.
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"

using namespace rl4oasd;

namespace {

void RunCity(bench::CityData city) {
  printf("--- %s ---\n", city.name.c_str());
  printf("%-22s %18s\n", "Method", "avg us per point");
  const auto dev = bench::DevSet(city.test);
  const size_t limit = std::min<size_t>(city.test.size(), 400);

  auto time_detect = [&](auto&& detect_fn) {
    Stopwatch sw;
    size_t points = 0;
    for (size_t i = 0; i < limit; ++i) {
      const auto& t = city.test[i].traj;
      const auto labels = detect_fn(t);
      points += labels.size();
    }
    return sw.ElapsedMicros() / static_cast<double>(points);
  };

  for (auto& baseline : bench::MakeBaselines(&city.net)) {
    baseline->Fit(city.train);
    baseline->Tune(dev);
    const double us = time_detect(
        [&](const traj::MapMatchedTrajectory& t) { return baseline->Detect(t); });
    printf("%-22s %18.2f\n", baseline->name().c_str(), us);
  }

  core::Rl4Oasd model(&city.net, bench::TunedConfig());
  model.Fit(city.train);
  const double us = time_detect(
      [&](const traj::MapMatchedTrajectory& t) { return model.Detect(t); });
  printf("%-22s %18.2f\n", "RL4OASD", us);
  printf("(paper claim: RL4OASD takes < 0.1 ms = 100 us per point: %s)\n\n",
         us < 100.0 ? "HOLDS" : "VIOLATED");
}

}  // namespace

int main() {
  printf("=== Figure 3: overall detection efficiency ===\n\n");
  RunCity(bench::MakeChengduLike(24));
  RunCity(bench::MakeXianLike(20));
  return 0;
}
