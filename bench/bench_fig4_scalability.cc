// Figure 4 reproduction: detection scalability — average runtime per
// trajectory for the length groups G1..G4. Expected shape (paper): CTSS
// grows fastest with length (quadratic); the rest scale roughly linearly;
// DBTOD cheapest.
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "eval/metrics.h"

using namespace rl4oasd;

int main() {
  printf("=== Figure 4: detection scalability (avg ms per trajectory) ===\n\n");
  auto city = bench::MakeChengduLike(32);
  const auto dev = bench::DevSet(city.test);

  // Bucket test trajectories by length group.
  std::vector<std::vector<size_t>> groups(eval::kNumLengthGroups);
  for (size_t i = 0; i < city.test.size(); ++i) {
    groups[eval::LengthGroupOf(city.test[i].traj.edges.size())].push_back(i);
  }
  printf("group sizes:");
  for (int g = 0; g < eval::kNumLengthGroups; ++g) {
    printf(" %s=%zu", eval::kLengthGroupNames[g], groups[g].size());
  }
  printf("\n\n%-22s %10s %10s %10s %10s\n", "Method", "G1", "G2", "G3", "G4");

  auto time_groups = [&](auto&& detect_fn, const char* name) {
    printf("%-22s", name);
    for (int g = 0; g < eval::kNumLengthGroups; ++g) {
      if (groups[g].empty()) {
        printf(" %10s", "-");
        continue;
      }
      Stopwatch sw;
      for (size_t idx : groups[g]) {
        (void)detect_fn(city.test[idx].traj);
      }
      printf(" %10.3f", sw.ElapsedMillis() /
                            static_cast<double>(groups[g].size()));
    }
    printf("\n");
  };

  for (auto& baseline : bench::MakeBaselines(&city.net)) {
    baseline->Fit(city.train);
    baseline->Tune(dev);
    time_groups(
        [&](const traj::MapMatchedTrajectory& t) { return baseline->Detect(t); },
        baseline->name().c_str());
  }
  core::Rl4Oasd model(&city.net, bench::TunedConfig());
  model.Fit(city.train);
  time_groups(
      [&](const traj::MapMatchedTrajectory& t) { return model.Detect(t); },
      "RL4OASD");
  return 0;
}
