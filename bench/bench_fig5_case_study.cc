// Figure 5 reproduction: case study — a trajectory with two detours,
// comparing the ground truth against CTSS (best baseline) and RL4OASD,
// rendered as per-segment label strings plus per-trajectory F1. The paper's
// observation: CTSS misses the starting position of a detour because the
// partial route is still Frechet-close to the reference at the detour's
// first segments.
#include <cstdio>

#include "bench_util.h"

using namespace rl4oasd;

namespace {

std::string LabelString(const std::vector<uint8_t>& labels) {
  std::string s;
  for (uint8_t l : labels) s += l ? '1' : '0';
  return s;
}

double TrajF1(const std::vector<uint8_t>& gt,
              const std::vector<uint8_t>& pred) {
  eval::F1Evaluator ev;
  ev.Add(gt, pred);
  return ev.Compute().f1;
}

}  // namespace

int main() {
  printf("=== Figure 5: case study (two-detour trajectory) ===\n\n");
  auto city = bench::MakeChengduLike();

  baselines::CtssDetector ctss(&city.net);
  ctss.Fit(city.train);
  ctss.Tune(bench::DevSet(city.test));

  core::Rl4Oasd model(&city.net, bench::TunedConfig());
  model.Fit(city.train);

  int shown = 0;
  for (const auto& lt : city.test.trajs()) {
    const auto runs = traj::ExtractAnomalousRuns(lt.labels);
    if (runs.size() != 2) continue;  // the paper's case has two detours
    const auto ours = model.Detect(lt.traj);
    const auto theirs = ctss.Detect(lt.traj);
    printf("SD pair (%d, %d), length %zu\n", lt.traj.sd().source,
           lt.traj.sd().dest, lt.traj.edges.size());
    printf("  Ground truth  %s\n", LabelString(lt.labels).c_str());
    printf("  CTSS          %s   (F1=%.3f)\n", LabelString(theirs).c_str(),
           TrajF1(lt.labels, theirs));
    printf("  RL4OASD       %s   (F1=%.3f)\n\n", LabelString(ours).c_str(),
           TrajF1(lt.labels, ours));
    if (++shown == 4) break;
  }
  if (shown == 0) printf("(no two-detour trajectory in the test split)\n");
  return 0;
}
