// Figure 6 reproduction: detection under concept drift. The day is split
// into xi parts and route popularities rotate between parts (a popular
// route becomes congested and drivers shift). Compares
//   * RL4OASD-P1 — trained on Part 1 only, applied everywhere, vs
//   * RL4OASD-FT — trained on Part 1, fine-tuned part by part.
// Expected shape (paper): P1 degrades on the drifted parts; FT tracks them;
// per-part fine-tuning time is far below the part duration.
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"

using namespace rl4oasd;

namespace {

struct DriftData {
  roadnet::RoadNetwork net;
  std::vector<traj::Dataset> parts;
};

DriftData MakeDriftData(int xi) {
  DriftData d;
  roadnet::GridCityConfig g;
  g.seed = 7;
  d.net = roadnet::BuildGridCity(g);
  traj::GeneratorConfig t;
  t.num_sd_pairs = 24;
  t.min_trajs_per_pair = 32 * xi >= 150 ? 150 : 32 * xi;  // enough per part
  t.max_trajs_per_pair = std::min(60 * xi, 400);
  t.anomaly_ratio = 0.05;
  t.drift_parts = xi;
  t.seed = 31;
  traj::TrajectoryGenerator gen(&d.net, t);
  const auto full = gen.Generate();
  d.parts.resize(xi);
  const double part_seconds = 86400.0 / xi;
  for (const auto& lt : full.trajs()) {
    int p = std::min(xi - 1,
                     static_cast<int>(lt.traj.start_time / part_seconds));
    d.parts[p].Add(lt);
  }
  return d;
}

double EvalOn(const core::Rl4Oasd& model, const traj::Dataset& part) {
  eval::F1Evaluator ev;
  for (const auto& lt : part.trajs()) {
    ev.Add(lt.labels, model.Detect(lt.traj));
  }
  return ev.Compute().f1;
}

core::Rl4OasdConfig DriftConfig() {
  auto cfg = bench::TunedConfig();
  cfg.pretrain_samples = 150;
  cfg.pretrain_epochs = 3;
  cfg.joint_samples = 200;
  return cfg;
}

}  // namespace

int main() {
  printf("=== Figure 6: detection under varying traffic conditions ===\n\n");

  // (a)+(b): vary xi, report mean F1 over parts for the fine-tuned model and
  // the mean per-part training time.
  printf("%-6s %12s %22s\n", "xi", "mean F1 (FT)", "mean finetune time (s)");
  for (int xi : {1, 2, 4, 8}) {
    auto data = MakeDriftData(xi);
    core::Rl4Oasd ft(&data.net, DriftConfig());
    Stopwatch total;
    ft.Fit(data.parts[0]);
    double fit_time = total.ElapsedSeconds();
    double f1_sum = EvalOn(ft, data.parts[0]);
    double tune_time_sum = 0.0;
    for (int p = 1; p < xi; ++p) {
      Stopwatch sw;
      ft.FineTune(data.parts[p], 200);
      tune_time_sum += sw.ElapsedSeconds();
      f1_sum += EvalOn(ft, data.parts[p]);
    }
    printf("%-6d %12.3f %22.2f   (initial fit %.1fs)\n", xi, f1_sum / xi,
           xi > 1 ? tune_time_sum / (xi - 1) : 0.0, fit_time);
  }

  // (c): per-part F1, P1 vs FT, at xi = 4.
  printf("\nPer-part F1 (xi = 4):\n%-8s %12s %12s\n", "Part", "RL4OASD-P1",
         "RL4OASD-FT");
  auto data = MakeDriftData(4);
  core::Rl4Oasd p1(&data.net, DriftConfig());
  p1.Fit(data.parts[0]);
  core::Rl4Oasd ft(&data.net, DriftConfig());
  ft.Fit(data.parts[0]);
  for (int p = 0; p < 4; ++p) {
    if (p > 0) ft.FineTune(data.parts[p], 200);
    printf("Part %-3d %12.3f %12.3f\n", p + 1, EvalOn(p1, data.parts[p]),
           EvalOn(ft, data.parts[p]));
  }
  return 0;
}
