// Figure 6 reproduction: detection under concept drift. The day is split
// into xi parts and route popularities rotate between parts (a popular
// route becomes congested and drivers shift). Compares
//   * RL4OASD-P1 — trained on Part 1 only, applied everywhere, vs
//   * RL4OASD-FT — trained on Part 1, fine-tuned part by part.
// Expected shape (paper): P1 degrades on the drifted parts; FT tracks them;
// per-part fine-tuning time is far below the part duration.
//
// Flags:
//   --adapt        closed-loop mode: instead of offline fine-tuning, stream
//                  the drift day through serve::DriftAdapter and measure
//                  the self-updating service end to end — trips/seconds to
//                  detect the change point, trips/seconds to retrain +
//                  shadow-gate + hot-swap, and the service F1 trajectory
//                  (pre-drift plateau, trough during the outage, recovered
//                  plateau).
//   --json <path>  with --adapt, additionally emit the machine-readable
//                  record CI uploads as a perf artifact.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "serve/drift.h"
#include "serve/fleet.h"

using namespace rl4oasd;

namespace {

struct DriftData {
  roadnet::RoadNetwork net;
  std::vector<traj::Dataset> parts;
};

DriftData MakeDriftData(int xi) {
  DriftData d;
  roadnet::GridCityConfig g;
  g.seed = 7;
  d.net = roadnet::BuildGridCity(g);
  traj::GeneratorConfig t;
  t.num_sd_pairs = 24;
  t.min_trajs_per_pair = 32 * xi >= 150 ? 150 : 32 * xi;  // enough per part
  t.max_trajs_per_pair = std::min(60 * xi, 400);
  t.anomaly_ratio = 0.05;
  t.drift_parts = xi;
  t.seed = 31;
  traj::TrajectoryGenerator gen(&d.net, t);
  const auto full = gen.Generate();
  d.parts.resize(xi);
  const double part_seconds = 86400.0 / xi;
  for (const auto& lt : full.trajs()) {
    int p = std::min(xi - 1,
                     static_cast<int>(lt.traj.start_time / part_seconds));
    d.parts[p].Add(lt);
  }
  return d;
}

double EvalOn(const core::Rl4Oasd& model, const traj::Dataset& part) {
  eval::F1Evaluator ev;
  for (const auto& lt : part.trajs()) {
    ev.Add(lt.labels, model.Detect(lt.traj));
  }
  return ev.Compute().f1;
}

core::Rl4OasdConfig FtModelConfig() {
  auto cfg = bench::TunedConfig();
  cfg.pretrain_samples = 150;
  cfg.pretrain_epochs = 3;
  cfg.joint_samples = 200;
  return cfg;
}

// ---------------------------------------------------------------------------
// Offline mode (the paper's figure): P1 vs part-by-part fine-tuning.

void RunOffline() {
  printf("=== Figure 6: detection under varying traffic conditions ===\n\n");

  // (a)+(b): vary xi, report mean F1 over parts for the fine-tuned model and
  // the mean per-part training time.
  printf("%-6s %12s %22s\n", "xi", "mean F1 (FT)", "mean finetune time (s)");
  for (int xi : {1, 2, 4, 8}) {
    auto data = MakeDriftData(xi);
    core::Rl4Oasd ft(&data.net, FtModelConfig());
    Stopwatch total;
    ft.Fit(data.parts[0]);
    double fit_time = total.ElapsedSeconds();
    double f1_sum = EvalOn(ft, data.parts[0]);
    double tune_time_sum = 0.0;
    for (int p = 1; p < xi; ++p) {
      Stopwatch sw;
      ft.FineTune(data.parts[p], 200);
      tune_time_sum += sw.ElapsedSeconds();
      f1_sum += EvalOn(ft, data.parts[p]);
    }
    printf("%-6d %12.3f %22.2f   (initial fit %.1fs)\n", xi, f1_sum / xi,
           xi > 1 ? tune_time_sum / (xi - 1) : 0.0, fit_time);
  }

  // (c): per-part F1, P1 vs FT, at xi = 4.
  printf("\nPer-part F1 (xi = 4):\n%-8s %12s %12s\n", "Part", "RL4OASD-P1",
         "RL4OASD-FT");
  auto data = MakeDriftData(4);
  core::Rl4Oasd p1(&data.net, FtModelConfig());
  p1.Fit(data.parts[0]);
  core::Rl4Oasd ft(&data.net, FtModelConfig());
  ft.Fit(data.parts[0]);
  for (int p = 0; p < 4; ++p) {
    if (p > 0) ft.FineTune(data.parts[p], 200);
    printf("Part %-3d %12.3f %12.3f\n", p + 1, EvalOn(p1, data.parts[p]),
           EvalOn(ft, data.parts[p]));
  }
}

// ---------------------------------------------------------------------------
// Closed-loop mode (--adapt): the self-updating service on the drift day.

/// Final service labels per vehicle (one unique vehicle per trip here).
class LabelSink : public serve::AlertSink {
 public:
  void OnAlert(const serve::Alert&) override {}
  void OnTripEnd(int64_t vid, const std::vector<uint8_t>& labels) override {
    finals[vid] = labels;
  }
  void OnTripEvicted(int64_t, double, const std::vector<uint8_t>&) override {}

  std::map<int64_t, std::vector<uint8_t>> finals;
};

struct AdaptResult {
  size_t part0_trips = 0;
  size_t part1_trips = 0;
  long long trips_to_detect = -1;   // part-1 trips finished when fired
  long long trips_to_recover = -1;  // part-1 trips finished at promotion
  double detect_wall_s = 0.0;       // wall time from first part-1 trip
  double recover_wall_s = 0.0;
  double cycle_wall_s = 0.0;  // slowest Poll == the retrain+gate cycle
  double f1_pre = 0.0;
  double f1_trough = 0.0;
  double f1_plateau = 0.0;
  serve::DriftStatus status;
};

/// The drift-scenario workload (mirrors tests/drift_recovery_scenario_test):
/// a compact city whose day part 1 rotates route popularities, calibrated so
/// the incumbent's service F1 drops sharply and a post-change fine-tune
/// restores it.
DriftData MakeAdaptData() {
  DriftData d;
  roadnet::GridCityConfig g;
  g.rows = 10;
  g.cols = 10;
  g.arterial_every = 3;
  g.removal_prob = 0.0;
  g.seed = 7;
  d.net = roadnet::BuildGridCity(g);
  traj::GeneratorConfig t;
  t.num_sd_pairs = 12;
  t.min_trajs_per_pair = 60;
  t.max_trajs_per_pair = 90;
  t.anomaly_ratio = 0.10;
  t.min_pair_dist_m = 800;
  t.max_pair_dist_m = 2500;
  t.min_route_edges = 8;
  t.drift_parts = 2;
  t.seed = 31;
  traj::TrajectoryGenerator gen(&d.net, t);
  const auto full = gen.Generate();
  d.parts.resize(2);
  for (const auto& lt : full.trajs()) {
    d.parts[lt.traj.start_time < 43200.0 ? 0 : 1].Add(lt);
  }
  return d;
}

core::Rl4OasdConfig AdaptModelConfig() {
  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 4;
  cfg.rsr.embed_dim = 16;
  cfg.rsr.nrf_dim = 16;
  cfg.rsr.hidden_dim = 16;
  cfg.asd.label_dim = 16;
  cfg.embedding.dim = 16;
  cfg.embedding.epochs = 1;
  cfg.embedding.random_walks_per_edge = 1;
  cfg.embedding.walk_length = 10;
  cfg.pretrain_samples = 200;
  cfg.pretrain_epochs = 4;
  cfg.joint_samples = 250;
  cfg.epochs_per_traj = 2;
  return cfg;
}

serve::DriftConfig AdaptDriftConfig() {
  serve::DriftConfig dc;
  dc.window_points = 400;
  dc.reference_windows = 2;
  dc.max_buffer_trips = 400;
  dc.min_buffer_trips = 250;
  dc.fine_tune_max_samples = 200;
  dc.shadow_trips = 48;
  dc.reject_backoff_points = 2048;
  dc.background = false;
  return dc;
}

std::vector<const traj::LabeledTrajectory*> Chronological(
    const traj::Dataset& part) {
  std::vector<const traj::LabeledTrajectory*> order;
  for (const auto& lt : part.trajs()) {
    if (lt.traj.edges.size() >= 2) order.push_back(&lt);
  }
  std::sort(order.begin(), order.end(),
            [](const traj::LabeledTrajectory* a,
               const traj::LabeledTrajectory* b) {
              return a->traj.start_time < b->traj.start_time;
            });
  return order;
}

double ServiceF1(const LabelSink& sink,
                 const std::map<int64_t, const traj::LabeledTrajectory*>& gt,
                 int64_t from_vid, int64_t to_vid) {
  eval::F1Evaluator ev;
  for (const auto& [vid, labels] : sink.finals) {
    if (vid < from_vid || vid >= to_vid) continue;
    ev.Add(gt.at(vid)->labels, labels);
  }
  return ev.Compute().f1;
}

AdaptResult RunAdapt() {
  auto data = MakeAdaptData();
  auto model =
      std::make_shared<core::Rl4Oasd>(&data.net, AdaptModelConfig());
  Stopwatch fit_sw;
  model->Fit(data.parts[0]);
  printf("initial fit: %.2fs (%zu part-0 trips)\n", fit_sw.ElapsedSeconds(),
         data.parts[0].size());

  LabelSink sink;
  serve::DriftAdapter adapter(&data.net, model, serve::FleetConfig{},
                              AdaptDriftConfig(), &sink);

  const auto order0 = Chronological(data.parts[0]);
  const auto order1 = Chronological(data.parts[1]);
  std::map<int64_t, const traj::LabeledTrajectory*> gt;
  for (size_t i = 0; i < order0.size(); ++i) {
    gt[static_cast<int64_t>(i)] = order0[i];
  }
  const int64_t base1 = static_cast<int64_t>(order0.size());
  for (size_t i = 0; i < order1.size(); ++i) {
    gt[base1 + static_cast<int64_t>(i)] = order1[i];
  }

  AdaptResult r;
  r.part0_trips = order0.size();
  r.part1_trips = order1.size();

  auto feed_one = [&](const traj::LabeledTrajectory* lt, int64_t vid) {
    auto* m = adapter.monitor();
    if (!m->StartTrip(vid, lt->traj.sd(), lt->traj.start_time).ok()) return;
    double ts = lt->traj.start_time;
    for (traj::EdgeId e : lt->traj.edges) m->Feed(vid, e, ts += 2.0);
    (void)m->EndTrip(vid);
    Stopwatch poll;
    adapter.Poll();
    r.cycle_wall_s = std::max(r.cycle_wall_s, poll.ElapsedSeconds());
  };

  for (size_t i = 0; i < order0.size(); ++i) {
    feed_one(order0[i], static_cast<int64_t>(i));
  }
  r.f1_pre = ServiceF1(sink, gt, 0, base1);

  Stopwatch drift_sw;
  for (size_t i = 0; i < order1.size(); ++i) {
    feed_one(order1[i], base1 + static_cast<int64_t>(i));
    const auto s = adapter.Status();
    if (r.trips_to_detect < 0 && s.drift_events > 0) {
      r.trips_to_detect = static_cast<long long>(i) + 1;
      r.detect_wall_s = drift_sw.ElapsedSeconds();
    }
    if (r.trips_to_recover < 0 && s.promotions > 0) {
      r.trips_to_recover = static_cast<long long>(i) + 1;
      r.recover_wall_s = drift_sw.ElapsedSeconds();
    }
  }
  r.status = adapter.Status();

  if (r.trips_to_detect >= 0 && r.trips_to_recover >= 0) {
    r.f1_trough = ServiceF1(sink, gt, base1 + r.trips_to_detect,
                            base1 + r.trips_to_recover);
    r.f1_plateau =
        ServiceF1(sink, gt, base1 + r.trips_to_recover,
                  base1 + static_cast<int64_t>(order1.size()));
  }
  return r;
}

void PrintAdapt(const AdaptResult& r) {
  printf("\n=== Figure 6, closed loop: self-updating service ===\n\n");
  printf("trips: part0=%zu part1=%zu\n", r.part0_trips, r.part1_trips);
  printf("%-28s %10lld trips  (%.3fs wall)\n", "time to detect",
         r.trips_to_detect, r.detect_wall_s);
  printf("%-28s %10lld trips  (%.3fs wall)\n", "time to recover (swap live)",
         r.trips_to_recover, r.recover_wall_s);
  printf("%-28s %10.3fs\n", "retrain+gate cycle", r.cycle_wall_s);
  printf("%-28s %10.3f\n", "F1 pre-drift plateau", r.f1_pre);
  printf("%-28s %10.3f\n", "F1 trough (during outage)", r.f1_trough);
  printf("%-28s %10.3f\n", "F1 recovered plateau", r.f1_plateau);
  printf("%-28s %10llu events, %llu cycles, %llu promoted, %llu rejected\n",
         "adaptation",
         static_cast<unsigned long long>(r.status.drift_events),
         static_cast<unsigned long long>(r.status.cycles_started),
         static_cast<unsigned long long>(r.status.promotions),
         static_cast<unsigned long long>(r.status.rejections));
  printf("%-28s %10llu (gate: live %.3f vs candidate %.3f)\n",
         "serving model generation",
         static_cast<unsigned long long>(r.status.model_generation),
         r.status.last_live_score, r.status.last_candidate_score);
}

void WriteAdaptJson(const std::string& path, const AdaptResult& r) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fig6_concept_drift_adapt\",\n"
               "  \"part0_trips\": %zu, \"part1_trips\": %zu,\n"
               "  \"trips_to_detect\": %lld, \"detect_wall_s\": %.4f,\n"
               "  \"trips_to_recover\": %lld, \"recover_wall_s\": %.4f,\n"
               "  \"cycle_wall_s\": %.4f,\n"
               "  \"f1_pre\": %.4f, \"f1_trough\": %.4f, "
               "\"f1_plateau\": %.4f,\n"
               "  \"drift_events\": %llu, \"cycles\": %llu, "
               "\"promotions\": %llu, \"rejections\": %llu,\n"
               "  \"model_generation\": %llu\n}\n",
               r.part0_trips, r.part1_trips, r.trips_to_detect,
               r.detect_wall_s, r.trips_to_recover, r.recover_wall_s,
               r.cycle_wall_s, r.f1_pre, r.f1_trough, r.f1_plateau,
               static_cast<unsigned long long>(r.status.drift_events),
               static_cast<unsigned long long>(r.status.cycles_started),
               static_cast<unsigned long long>(r.status.promotions),
               static_cast<unsigned long long>(r.status.rejections),
               static_cast<unsigned long long>(r.status.model_generation));
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("bench_fig6_concept_drift",
                "Figure 6: detection under concept drift");
  flags.AddBool("adapt", false,
                "closed-loop mode: stream the drift day through "
                "serve::DriftAdapter and measure detect/recover times");
  flags.AddString("json", "",
                  "with --adapt, write the machine-readable record here");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.message().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  if (!flags.GetBool("adapt")) {
    RunOffline();
    return 0;
  }
  const AdaptResult r = RunAdapt();
  PrintAdapt(r);
  if (!flags.GetString("json").empty()) {
    WriteAdaptJson(flags.GetString("json"), r);
  }
  return 0;
}
