// Figure 7 reproduction: concept-drift case study. Between Part 1 and
// Part 2 the popular and unpopular routes of an SD pair swap. RL4OASD-P1
// (trained on Part 1 only) false-positives on Part 2's new normal route,
// while RL4OASD-FT (fine-tuned) adapts.
#include <cstdio>

#include "bench_util.h"

using namespace rl4oasd;

namespace {

std::string LabelString(const std::vector<uint8_t>& labels) {
  std::string s;
  for (uint8_t l : labels) s += l ? '1' : '0';
  return s;
}

double TrajF1(const std::vector<uint8_t>& gt,
              const std::vector<uint8_t>& pred) {
  eval::F1Evaluator ev;
  ev.Add(gt, pred);
  return ev.Compute().f1;
}

}  // namespace

int main() {
  printf("=== Figure 7: concept-drift case study ===\n\n");
  roadnet::GridCityConfig g;
  g.seed = 7;
  auto net = roadnet::BuildGridCity(g);
  traj::GeneratorConfig t;
  t.num_sd_pairs = 16;
  t.min_trajs_per_pair = 120;
  t.max_trajs_per_pair = 240;
  t.anomaly_ratio = 0.05;
  t.drift_parts = 2;
  t.seed = 51;
  traj::TrajectoryGenerator gen(&net, t);
  const auto full = gen.Generate();
  traj::Dataset part1, part2;
  for (const auto& lt : full.trajs()) {
    (lt.traj.start_time < 43200.0 ? part1 : part2).Add(lt);
  }

  auto cfg = bench::TunedConfig();
  cfg.pretrain_samples = 150;
  cfg.joint_samples = 200;
  core::Rl4Oasd p1(&net, cfg);
  p1.Fit(part1);
  core::Rl4Oasd ft(&net, cfg);
  ft.Fit(part1);
  ft.FineTune(part2, 300);

  // Find a normal Part-2 trajectory on a route that was unpopular in Part 1
  // (i.e., one where P1 false-positives).
  int shown = 0;
  for (const auto& lt : part2.trajs()) {
    if (lt.HasAnomaly()) continue;
    const auto from_p1 = p1.Detect(lt.traj);
    const auto from_ft = ft.Detect(lt.traj);
    bool p1_flags = false;
    for (uint8_t l : from_p1) p1_flags |= l;
    if (!p1_flags) continue;  // not a drift victim
    printf("Part 2, SD pair (%d, %d), normal trajectory (route drifted):\n",
           lt.traj.sd().source, lt.traj.sd().dest);
    printf("  Ground truth  %s\n", LabelString(lt.labels).c_str());
    printf("  RL4OASD-P1    %s   (F1=%.3f <- false positive)\n",
           LabelString(from_p1).c_str(), TrajF1(lt.labels, from_p1));
    printf("  RL4OASD-FT    %s   (F1=%.3f)\n\n",
           LabelString(from_ft).c_str(), TrajF1(lt.labels, from_ft));
    if (++shown == 3) break;
  }
  if (shown == 0) {
    printf("(no drift false-positive found; popularity rotation may be too "
           "mild at this size)\n");
  }
  return 0;
}
