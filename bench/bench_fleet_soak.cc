// Soak / endurance bench for the async fleet pipeline: holds a very large
// number of concurrent trips live in one FleetMonitor and drives sustained
// Submit-path ingest through the self-batching shard workers, with eviction
// churn and async alert delivery running the whole time.
//
// Four sections (one long-lived monitor for 1-3; a small dedicated fleet
// for 4):
//   1. Fill: StartTrip up to --trips concurrent trips (default 1,000,000;
//      --tiny scales down to seconds). Reports fill rate and resident-set
//      growth per trip (VmRSS / VmHWM from /proc/self/status) against
//      --mem-ceiling-mb.
//   2. Sustain: --rounds passes of one point per live trip through
//      Submit(), sampled per-call for p50/p99/p99.9 ingest (staging)
//      latency. Quiesce() closes the section so points_submitted ==
//      points_processed is checkable.
//   3. Churn: --churn StartTrips beyond the cap, each forcing a
//      stalest-trip eviction while ingest continues. Reports evictions/s.
//      Note EvictStalest is an O(active) scan per admission (~100ms at 1M
//      trips on one core) — cap overflow is designed to be rare, and this
//      section is sized accordingly (the measured rate documents the cost).
//   4. Slow sink: a sink that burns --sink-delay-us per callback (default
//      1000us = the 1ms pathological subscriber), compared across
//      {no sink, sync delivery, async delivery} on the same replay. The
//      acceptance bar for the async pipeline is p99 ingest latency within
//      2x of the no-sink baseline; the sync column shows what the old
//      under-trip-lock delivery cost. Also reports the async queue's
//      enqueue->delivery latency percentiles.
//   5. Chaos: a dedicated fleet with the ingest guard in repair mode and
//      quarantine armed, fed a ChaosInjector-degraded replay (drops,
//      duplicates, reorders, skew, teleports) through the async Submit
//      path. Reports degraded-stream throughput, the guard's per-class
//      detections, and quarantine churn, and FAILS the bench if either
//      conservation identity breaks (trips: started == finished + evicted
//      + active; points: offered == processed + rejected +
//      quarantine-dropped).
//
// Flags: --tiny (seconds-scale smoke, registered as a ctest target),
// --json <path> (machine-readable record; CI uploads BENCH_soak.json),
// --trips/--rounds/--churn/--workers/--producers to resize the soak.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "serve/chaos.h"
#include "serve/fleet.h"
#include "serve/ingest_guard.h"

using namespace rl4oasd;

namespace {

double Percentile(std::vector<int64_t>* ns, double p) {
  if (ns->empty()) return 0.0;
  const size_t k = std::min(
      ns->size() - 1, static_cast<size_t>(p * static_cast<double>(ns->size())));
  std::nth_element(ns->begin(), ns->begin() + static_cast<ptrdiff_t>(k),
                   ns->end());
  return static_cast<double>((*ns)[k]) / 1e3;  // ns -> us
}

/// Resident-set numbers from /proc/self/status (MB). VmHWM is the process
/// high-water mark — the soak's "memory ceiling" measurement.
struct MemInfo {
  double rss_mb = 0.0;
  double hwm_mb = 0.0;
};

MemInfo ReadMem() {
  MemInfo m;
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return m;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) {
      m.rss_mb = static_cast<double>(kb) / 1024.0;
    } else if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
      m.hwm_mb = static_cast<double>(kb) / 1024.0;
    }
  }
  std::fclose(f);
  return m;
}

/// A pathological subscriber: every callback burns a fixed delay, the way a
/// real sink stalls on a slow downstream (HTTP post, fsync, ...). OnTripEnd
/// is delayed alongside OnAlert so the stall fires deterministically once
/// per trip even on workloads where the detector emits few or no alerts
/// (the smoke-sized model detects nothing) — sink callbacks of every kind
/// ride the same delivery path and stall ingest the same way when run
/// under the trip lock.
class SlowSink : public serve::AlertSink {
 public:
  explicit SlowSink(int64_t delay_us) : delay_us_(delay_us) {}
  void OnAlert(const serve::Alert& /*alert*/) override { Stall(); }
  void OnTripEnd(int64_t /*vehicle_id*/,
                 const std::vector<uint8_t>& /*final_labels*/) override {
    Stall();
  }
  int64_t NumCallbacks() const {
    return callbacks_.load(std::memory_order_relaxed);
  }

 private:
  void Stall() {
    if (delay_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
    }
    callbacks_.fetch_add(1, std::memory_order_relaxed);
  }

  const int64_t delay_us_;
  std::atomic<int64_t> callbacks_{0};
};

/// The replay workload: vehicle v runs test trajectory v % trips.size(),
/// looping its edge sequence point by point.
struct Workload {
  std::vector<const traj::LabeledTrajectory*> trips;

  const traj::MapMatchedTrajectory& TrajFor(int64_t vehicle) const {
    return trips[static_cast<size_t>(vehicle) % trips.size()]->traj;
  }
  traj::EdgeId EdgeFor(int64_t vehicle, int64_t round) const {
    const auto& edges = TrajFor(vehicle).edges;
    return edges[static_cast<size_t>(round) % edges.size()];
  }
};

struct SectionResult {
  int64_t points = 0;
  double seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
};

/// Feeds `rounds` passes of one point per vehicle in [0, n) through the
/// Submit path with `producers` threads, timing every `sample_every`-th
/// call. Returns the latency percentiles over the sampled calls.
SectionResult SustainSubmit(serve::FleetMonitor* monitor, const Workload& wl,
                            int64_t n, int64_t rounds, int producers,
                            int64_t sample_every) {
  std::vector<std::vector<int64_t>> lat(static_cast<size_t>(producers));
  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(producers));
  for (int th = 0; th < producers; ++th) {
    threads.emplace_back([&, th] {
      auto& samples = lat[static_cast<size_t>(th)];
      samples.reserve(static_cast<size_t>(
          n * rounds / (producers * sample_every) + 1));
      Stopwatch call_sw;
      int64_t k = 0;
      for (int64_t r = 0; r < rounds; ++r) {
        for (int64_t v = th; v < n; v += producers) {
          const serve::FleetPoint pt{v, wl.EdgeFor(v, r),
                                     wl.TrajFor(v).start_time};
          if (++k % sample_every == 0) {
            call_sw.Start();
            (void)monitor->Submit(pt);
            samples.push_back(call_sw.ElapsedNanos());
          } else {
            (void)monitor->Submit(pt);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  monitor->Quiesce();
  SectionResult out;
  out.points = n * rounds;
  out.seconds = sw.ElapsedSeconds();
  std::vector<int64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  out.p50_us = Percentile(&all, 0.50);
  out.p99_us = Percentile(&all, 0.99);
  out.p999_us = Percentile(&all, 0.999);
  return out;
}

/// One slow-sink comparison leg: replays `n` trips end to end through the
/// synchronous Feed/EndTrip path (the cost under measurement is alert
/// *delivery*, so the ingest path is held fixed) and returns per-call
/// latency percentiles. EndTrip is timed alongside Feed because it is where
/// still-open anomalous runs flush their alerts — the sync delivery stall
/// concentrates there.
SectionResult ReplayFeed(const core::Rl4Oasd& model, const Workload& wl,
                         int64_t n, serve::FleetConfig cfg,
                         serve::AlertSink* sink,
                         std::vector<int64_t>* delivery_ns) {
  serve::FleetMonitor monitor(&model, cfg, sink);
  SectionResult out;
  std::vector<int64_t> lat;
  Stopwatch sw;
  Stopwatch call_sw;
  for (int64_t v = 0; v < n; ++v) {
    const auto& t = wl.TrajFor(v);
    if (!monitor.StartTrip(v, t.sd(), t.start_time).ok()) continue;
    for (traj::EdgeId e : t.edges) {
      call_sw.Start();
      (void)monitor.Feed(v, e, t.start_time);
      lat.push_back(call_sw.ElapsedNanos());
      ++out.points;
    }
    call_sw.Start();
    (void)monitor.EndTrip(v);
    lat.push_back(call_sw.ElapsedNanos());
  }
  monitor.Quiesce();
  out.seconds = sw.ElapsedSeconds();
  out.max_us = lat.empty() ? 0.0
                           : static_cast<double>(*std::max_element(
                                 lat.begin(), lat.end())) / 1e3;
  out.p50_us = Percentile(&lat, 0.50);
  out.p99_us = Percentile(&lat, 0.99);
  out.p999_us = Percentile(&lat, 0.999);
  if (delivery_ns != nullptr) {
    *delivery_ns = monitor.TakeAlertLatencySamplesNs();
  }
  return out;
}

struct SoakReport {
  int64_t trips = 0;
  double fill_s = 0.0;
  double fill_per_s = 0.0;
  MemInfo before;
  MemInfo after_fill;
  MemInfo final_mem;
  double bytes_per_trip = 0.0;
  SectionResult sustain;
  int64_t sustain_alerts = 0;
  int64_t sustain_delivered = 0;
  int64_t sustain_shed = 0;
  int64_t churn_starts = 0;
  int64_t churn_evictions = 0;
  double churn_s = 0.0;
  SectionResult nosink;
  SectionResult sync_slow;
  SectionResult async_slow;
  double delivery_p50_ms = 0.0;
  double delivery_p99_ms = 0.0;
  double delivery_p999_ms = 0.0;
  serve::ChaosCounts chaos;
  double chaos_s = 0.0;
  serve::FleetStats chaos_stats;
  bool chaos_conserved = true;
  double mem_ceiling_mb = 0.0;
  bool within_ceiling = true;
};

void WriteJson(const std::string& path, const SoakReport& r, bool tiny) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fleet_soak\",\n");
  std::fprintf(f, "  \"tiny\": %s,\n", tiny ? "true" : "false");
  std::fprintf(f,
               "  \"fill\": {\"trips\": %lld, \"seconds\": %.4f, "
               "\"trips_per_s\": %.0f, \"bytes_per_trip\": %.0f},\n",
               static_cast<long long>(r.trips), r.fill_s, r.fill_per_s,
               r.bytes_per_trip);
  std::fprintf(f,
               "  \"sustain\": {\"points\": %lld, \"seconds\": %.4f, "
               "\"points_per_s\": %.0f, \"submit_p50_us\": %.3f, "
               "\"submit_p99_us\": %.3f, \"submit_p999_us\": %.3f, "
               "\"alerts\": %lld, \"delivered\": %lld, \"shed\": %lld},\n",
               static_cast<long long>(r.sustain.points), r.sustain.seconds,
               static_cast<double>(r.sustain.points) / r.sustain.seconds,
               r.sustain.p50_us, r.sustain.p99_us, r.sustain.p999_us,
               static_cast<long long>(r.sustain_alerts),
               static_cast<long long>(r.sustain_delivered),
               static_cast<long long>(r.sustain_shed));
  std::fprintf(f,
               "  \"churn\": {\"starts\": %lld, \"evictions\": %lld, "
               "\"seconds\": %.4f, \"evictions_per_s\": %.0f},\n",
               static_cast<long long>(r.churn_starts),
               static_cast<long long>(r.churn_evictions), r.churn_s,
               r.churn_s > 0.0
                   ? static_cast<double>(r.churn_evictions) / r.churn_s
                   : 0.0);
  std::fprintf(
      f,
      "  \"slow_sink\": {\"baseline_p99_us\": %.3f, \"sync_p99_us\": %.3f, "
      "\"async_p99_us\": %.3f, \"async_over_baseline\": %.3f,\n"
      "    \"baseline_max_us\": %.3f, \"sync_max_us\": %.3f, "
      "\"async_max_us\": %.3f,\n"
      "    \"delivery_p50_ms\": %.4f, \"delivery_p99_ms\": %.4f, "
      "\"delivery_p999_ms\": %.4f},\n",
      r.nosink.p99_us, r.sync_slow.p99_us, r.async_slow.p99_us,
      r.nosink.p99_us > 0.0 ? r.async_slow.p99_us / r.nosink.p99_us : 0.0,
      r.nosink.max_us, r.sync_slow.max_us, r.async_slow.max_us,
      r.delivery_p50_ms, r.delivery_p99_ms, r.delivery_p999_ms);
  std::fprintf(
      f,
      "  \"chaos\": {\"clean_points\": %lld, \"perturbed_points\": %lld, "
      "\"seconds\": %.4f, \"points_per_s\": %.0f,\n"
      "    \"dropped\": %lld, \"duplicated\": %lld, \"reordered\": %lld, "
      "\"skewed\": %lld, \"teleported\": %lld,\n"
      "    \"repaired\": %lld, \"rejected\": %lld, "
      "\"quarantine_dropped\": %lld, \"trips_quarantined\": %lld, "
      "\"trips_recovered\": %lld, \"quarantine_evictions\": %lld, "
      "\"conserved\": %s},\n",
      static_cast<long long>(r.chaos.input),
      static_cast<long long>(r.chaos.emitted), r.chaos_s,
      r.chaos_s > 0.0 ? static_cast<double>(r.chaos.emitted) / r.chaos_s : 0.0,
      static_cast<long long>(r.chaos.dropped),
      static_cast<long long>(r.chaos.duplicated),
      static_cast<long long>(r.chaos.reordered),
      static_cast<long long>(r.chaos.skewed),
      static_cast<long long>(r.chaos.teleported),
      static_cast<long long>(r.chaos_stats.points_repaired),
      static_cast<long long>(r.chaos_stats.points_rejected),
      static_cast<long long>(r.chaos_stats.points_quarantine_dropped),
      static_cast<long long>(r.chaos_stats.trips_quarantined),
      static_cast<long long>(r.chaos_stats.trips_recovered),
      static_cast<long long>(r.chaos_stats.quarantine_evictions),
      r.chaos_conserved ? "true" : "false");
  std::fprintf(f,
               "  \"memory\": {\"rss_after_fill_mb\": %.1f, \"hwm_mb\": %.1f, "
               "\"ceiling_mb\": %.1f, \"within_ceiling\": %s}\n}\n",
               r.after_fill.rss_mb, r.final_mem.hwm_mb, r.mem_ceiling_mb,
               r.within_ceiling ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("bench_fleet_soak",
                "Fleet soak: 1M+ concurrent trips, sustained async ingest, "
                "eviction churn, slow-sink alert delivery");
  flags.AddBool("tiny", false,
                "seconds-scale smoke workload (CTest registration)");
  flags.AddString("json", "", "write a machine-readable record to this path");
  flags.AddInt("trips", 0, "concurrent trips to hold live (0 = preset)");
  flags.AddInt("rounds", 0, "sustain passes over the fleet (0 = preset)");
  flags.AddInt("churn", 0, "over-cap StartTrips in the churn section");
  flags.AddInt("workers", 4, "ingest worker threads (clamped to shards)");
  flags.AddInt("producers", 2, "Submit-calling producer threads");
  flags.AddInt("sink-delay-us", 1000,
               "per-callback delay of the pathological sink (section 4)");
  flags.AddInt("mem-ceiling-mb", 0,
               "soak fails its ceiling check above this VmHWM (0 = preset)");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.message().c_str(), flags.Help().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  const bool tiny = flags.GetBool("tiny");
  const int64_t n_trips =
      flags.GetInt("trips") > 0 ? flags.GetInt("trips") : (tiny ? 2000 : 1000000);
  const int64_t rounds =
      flags.GetInt("rounds") > 0 ? flags.GetInt("rounds") : (tiny ? 3 : 4);
  const int64_t churn =
      flags.GetInt("churn") > 0 ? flags.GetInt("churn") : (tiny ? 300 : 500);
  const int producers = std::max(1, static_cast<int>(flags.GetInt("producers")));
  const int64_t sink_delay_us = flags.GetInt("sink-delay-us");
  const double ceiling_mb = flags.GetInt("mem-ceiling-mb") > 0
                                ? static_cast<double>(flags.GetInt("mem-ceiling-mb"))
                                : (tiny ? 2048.0 : 32768.0);
  // Sampling every call at 1M trips would cost more memory than the fleet;
  // the smoke run samples everything.
  const int64_t sample_every = tiny ? 1 : 16;

  std::printf("=== Fleet soak (%lld concurrent trips) ===\n\n",
              static_cast<long long>(n_trips));
  auto city = bench::MakeChengduLike(tiny ? 8 : 40);
  auto cfg = bench::TunedConfig();
  if (tiny) {
    cfg.pretrain_samples = 60;
    cfg.pretrain_epochs = 2;
    cfg.joint_samples = 80;
  }
  core::Rl4Oasd model(&city.net, cfg);
  model.Fit(city.train);

  Workload wl;
  for (const auto& lt : city.test.trajs()) {
    if (lt.traj.edges.size() >= 2) wl.trips.push_back(&lt);
  }

  SoakReport report;
  report.trips = n_trips;
  report.mem_ceiling_mb = ceiling_mb;
  report.before = ReadMem();

  serve::FleetConfig fleet_cfg;
  fleet_cfg.max_active_trips = static_cast<size_t>(n_trips);
  fleet_cfg.num_shards = tiny ? 16 : 64;
  fleet_cfg.ingest_workers = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("workers")));
  fleet_cfg.ingest_queue_capacity = 16384;
  fleet_cfg.async_alerts = true;
  fleet_cfg.alert_queue_capacity = 65536;
  serve::CollectingSink sink;
  serve::FleetMonitor monitor(&model, fleet_cfg, &sink);

  // --- 1. fill -------------------------------------------------------------
  {
    Stopwatch sw;
    for (int64_t v = 0; v < n_trips; ++v) {
      const auto& t = wl.TrajFor(v);
      (void)monitor.StartTrip(v, t.sd(), t.start_time);
    }
    report.fill_s = sw.ElapsedSeconds();
  }
  report.fill_per_s = static_cast<double>(n_trips) / report.fill_s;
  report.after_fill = ReadMem();
  report.bytes_per_trip = (report.after_fill.rss_mb - report.before.rss_mb) *
                          1024.0 * 1024.0 / static_cast<double>(n_trips);
  std::printf("--- fill ---\n");
  std::printf("%lld trips in %.2fs (%.0f trips/s), RSS %.1f MB -> %.1f MB "
              "(%.0f bytes/trip)\n\n",
              static_cast<long long>(n_trips), report.fill_s,
              report.fill_per_s, report.before.rss_mb,
              report.after_fill.rss_mb, report.bytes_per_trip);

  // --- 2. sustain ----------------------------------------------------------
  report.sustain =
      SustainSubmit(&monitor, wl, n_trips, rounds, producers, sample_every);
  {
    const auto stats = monitor.Stats();
    report.sustain_alerts = stats.alerts_emitted;
    report.sustain_delivered = stats.alerts_delivered;
    report.sustain_shed = stats.points_shed;
  }
  std::printf("--- sustain (Submit, %d producers, sampled 1/%lld) ---\n",
              producers, static_cast<long long>(sample_every));
  std::printf("%lld points in %.2fs (%.0f points/s)\n",
              static_cast<long long>(report.sustain.points),
              report.sustain.seconds,
              static_cast<double>(report.sustain.points) /
                  report.sustain.seconds);
  std::printf("submit latency us: p50 %.2f  p99 %.2f  p99.9 %.2f\n",
              report.sustain.p50_us, report.sustain.p99_us,
              report.sustain.p999_us);
  std::printf("alerts %lld (delivered %lld), shed %lld\n\n",
              static_cast<long long>(report.sustain_alerts),
              static_cast<long long>(report.sustain_delivered),
              static_cast<long long>(report.sustain_shed));

  // --- 3. churn ------------------------------------------------------------
  {
    const auto before = monitor.Stats();
    Stopwatch sw;
    for (int64_t i = 0; i < churn; ++i) {
      const int64_t v = n_trips + i;
      const auto& t = wl.TrajFor(v);
      if (monitor.StartTrip(v, t.sd(), t.start_time).ok()) {
        ++report.churn_starts;
        (void)monitor.Submit({v, wl.EdgeFor(v, 0), t.start_time});
      }
    }
    monitor.Quiesce();
    report.churn_s = sw.ElapsedSeconds();
    report.churn_evictions = monitor.Stats().trips_evicted - before.trips_evicted;
  }
  std::printf("--- churn (over-cap starts force stalest eviction) ---\n");
  std::printf("%lld starts, %lld evictions in %.2fs (%.0f evictions/s), "
              "active %zu (cap %lld)\n\n",
              static_cast<long long>(report.churn_starts),
              static_cast<long long>(report.churn_evictions), report.churn_s,
              report.churn_s > 0.0
                  ? static_cast<double>(report.churn_evictions) / report.churn_s
                  : 0.0,
              monitor.ActiveTrips(), static_cast<long long>(n_trips));

  // --- 4. slow sink --------------------------------------------------------
  // Small fleet: the sync leg pays sink_delay_us per alert *inline*, so its
  // duration is alerts x delay; keep that bounded even in the full soak.
  const int64_t slow_n = tiny ? 200 : 2000;
  serve::FleetConfig slow_cfg;
  slow_cfg.max_active_trips = static_cast<size_t>(slow_n) + 1;
  slow_cfg.num_shards = 16;
  slow_cfg.alert_queue_capacity = 65536;
  std::printf("--- slow sink (%lldus per callback) ---\n",
              static_cast<long long>(sink_delay_us));
  report.nosink = ReplayFeed(model, wl, slow_n, slow_cfg, nullptr, nullptr);
  {
    SlowSink slow(sink_delay_us);
    report.sync_slow = ReplayFeed(model, wl, slow_n, slow_cfg, &slow, nullptr);
  }
  std::vector<int64_t> delivery_ns;
  {
    SlowSink slow(sink_delay_us);
    auto async_cfg = slow_cfg;
    async_cfg.async_alerts = true;
    report.async_slow =
        ReplayFeed(model, wl, slow_n, async_cfg, &slow, &delivery_ns);
  }
  report.delivery_p50_ms = Percentile(&delivery_ns, 0.50) / 1e3;
  report.delivery_p99_ms = Percentile(&delivery_ns, 0.99) / 1e3;
  report.delivery_p999_ms = Percentile(&delivery_ns, 0.999) / 1e3;
  std::printf("%-22s %12s %12s %12s %12s\n", "delivery", "p50 us", "p99 us",
              "p99.9 us", "max us");
  std::printf("%-22s %12.2f %12.2f %12.2f %12.2f\n", "no sink (baseline)",
              report.nosink.p50_us, report.nosink.p99_us,
              report.nosink.p999_us, report.nosink.max_us);
  std::printf("%-22s %12.2f %12.2f %12.2f %12.2f\n", "sync (under trip lock)",
              report.sync_slow.p50_us, report.sync_slow.p99_us,
              report.sync_slow.p999_us, report.sync_slow.max_us);
  std::printf("%-22s %12.2f %12.2f %12.2f %12.2f\n", "async (delivery queue)",
              report.async_slow.p50_us, report.async_slow.p99_us,
              report.async_slow.p999_us, report.async_slow.max_us);
  const double ratio = report.nosink.p99_us > 0.0
                           ? report.async_slow.p99_us / report.nosink.p99_us
                           : 0.0;
  std::printf("async p99 over baseline: %.2fx (acceptance bar: <= 2x)\n",
              ratio);
  std::printf("async enqueue->delivery ms: p50 %.3f  p99 %.3f  p99.9 %.3f\n\n",
              report.delivery_p50_ms, report.delivery_p99_ms,
              report.delivery_p999_ms);

  // --- 5. chaos ------------------------------------------------------------
  // Degraded-stream soak: the guard repairs what it can, quarantines trips
  // that blow the malformed budget, and the conservation identities must
  // survive the async pipeline end to end.
  {
    const int64_t chaos_n = tiny ? 300 : 3000;
    serve::FleetConfig chaos_cfg;
    chaos_cfg.max_active_trips = static_cast<size_t>(chaos_n) + 1;
    chaos_cfg.num_shards = 16;
    chaos_cfg.ingest_workers = fleet_cfg.ingest_workers;
    chaos_cfg.ingest_queue_capacity = 16384;
    chaos_cfg.async_alerts = true;
    chaos_cfg.alert_queue_capacity = 65536;
    chaos_cfg.guard.duplicate_policy = serve::GuardPolicy::kRepair;
    chaos_cfg.guard.out_of_order_policy = serve::GuardPolicy::kRepair;
    chaos_cfg.guard.skew_policy = serve::GuardPolicy::kRepair;
    chaos_cfg.guard.dropout_policy = serve::GuardPolicy::kRepair;
    chaos_cfg.guard.teleport_policy = serve::GuardPolicy::kRepair;
    chaos_cfg.guard.malformed_budget = 8;
    serve::CollectingSink chaos_sink;
    serve::FleetMonitor chaos_monitor(&model, chaos_cfg, &chaos_sink);
    serve::ChaosSpec spec;
    spec.drop_prob = 0.02;
    spec.dup_prob = 0.03;
    spec.reorder_prob = 0.02;
    spec.skew_prob = 0.01;
    spec.teleport_prob = 0.01;
    spec.seed = 42;
    serve::ChaosInjector injector(spec, &city.net);
    std::vector<serve::FleetPoint> clean;
    Stopwatch sw;
    for (int64_t v = 0; v < chaos_n; ++v) {
      const auto& t = wl.TrajFor(v);
      if (!chaos_monitor.StartTrip(v, t.sd(), t.start_time).ok()) continue;
      clean.clear();
      double ts = t.start_time;
      for (traj::EdgeId e : t.edges) {
        clean.push_back({v, e, ts});
        ts += 2.0;
      }
      const std::vector<serve::FleetPoint> pts = injector.Perturb(clean);
      const serve::ChaosCounts& c = injector.counts();
      report.chaos.input += c.input;
      report.chaos.emitted += c.emitted;
      report.chaos.dropped += c.dropped;
      report.chaos.duplicated += c.duplicated;
      report.chaos.reordered += c.reordered;
      report.chaos.skewed += c.skewed;
      report.chaos.teleported += c.teleported;
      report.chaos.drop_gaps += c.drop_gaps;
      for (const serve::FleetPoint& p : pts) (void)chaos_monitor.Submit(p);
      (void)chaos_monitor.SubmitEndTrip(v);
    }
    chaos_monitor.Quiesce();
    report.chaos_s = sw.ElapsedSeconds();
    report.chaos_stats = chaos_monitor.Stats();
    const auto& cs = report.chaos_stats;
    const bool trips_ok =
        cs.trips_started ==
        cs.trips_finished + cs.trips_evicted +
            static_cast<int64_t>(chaos_monitor.ActiveTrips());
    const bool points_ok = cs.points_submitted - cs.points_shed ==
                           cs.points_processed + cs.points_rejected +
                               cs.points_quarantine_dropped;
    report.chaos_conserved = trips_ok && points_ok;
    std::printf("--- chaos (degraded stream, guard repair + quarantine) ---\n");
    std::printf("%lld clean -> %lld perturbed points in %.2fs (%.0f "
                "points/s)\n",
                static_cast<long long>(report.chaos.input),
                static_cast<long long>(report.chaos.emitted), report.chaos_s,
                report.chaos_s > 0.0
                    ? static_cast<double>(report.chaos.emitted) /
                          report.chaos_s
                    : 0.0);
    std::printf("injected: %lld dropped, %lld duplicated, %lld reordered, "
                "%lld skewed, %lld teleported\n",
                static_cast<long long>(report.chaos.dropped),
                static_cast<long long>(report.chaos.duplicated),
                static_cast<long long>(report.chaos.reordered),
                static_cast<long long>(report.chaos.skewed),
                static_cast<long long>(report.chaos.teleported));
    std::printf("guard: %lld repaired, %lld rejected, %lld "
                "quarantine-dropped; trips %lld quarantined, %lld "
                "recovered, %lld evicted\n",
                static_cast<long long>(cs.points_repaired),
                static_cast<long long>(cs.points_rejected),
                static_cast<long long>(cs.points_quarantine_dropped),
                static_cast<long long>(cs.trips_quarantined),
                static_cast<long long>(cs.trips_recovered),
                static_cast<long long>(cs.quarantine_evictions));
    std::printf("conservation: trips %s, points %s\n\n",
                trips_ok ? "OK" : "BROKEN", points_ok ? "OK" : "BROKEN");
  }

  // --- memory ceiling ------------------------------------------------------
  report.final_mem = ReadMem();
  report.within_ceiling = report.final_mem.hwm_mb <= ceiling_mb;
  std::printf("--- memory ---\n");
  std::printf("VmRSS %.1f MB, VmHWM %.1f MB, ceiling %.1f MB: %s\n",
              report.final_mem.rss_mb, report.final_mem.hwm_mb, ceiling_mb,
              report.within_ceiling ? "OK" : "EXCEEDED");

  if (!report.chaos_conserved) {
    std::fprintf(stderr, "chaos section: conservation identity BROKEN\n");
  }
  if (flags.IsSet("json")) WriteJson(flags.GetString("json"), report, tiny);
  return report.within_ceiling && report.chaos_conserved ? 0 : 1;
}
