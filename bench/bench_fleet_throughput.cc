// Service-scale extension bench: fleet-monitor ingest throughput as ingest
// threads scale. The paper's efficiency study (Figure 3) measures one
// trajectory at a time; a deployment runs thousands of concurrent trips.
//
// Three sections:
//   1. Per-point ingest (Feed) sweeping 1 -> 8 threads: aggregate points/s
//      and p50/p99 per-point latency. With two-level locking the model step
//      runs under a per-trip lock, so scaling is bounded by cores, not by
//      shard collisions or a global stats mutex.
//   2. Batched ingest (FeedBatch) at the same thread counts: one shard-lock
//      acquisition per shard per batch instead of one per point.
//   3. Micro-batch sweep (`--batch` runs just this): single-thread batched
//      ingest with one point per trip per wave at batch width B in
//      {1, 8, 32, 128}, points/s and us/point vs the scalar Feed baseline.
//      The win is GEMM/cache efficiency — the fused (4H x I) * (I x B)
//      gate matmuls vectorize over the batch dimension — not threading.
//   4. Per-point cost vs trip length: alert extraction is incremental
//      (O(1) amortized per point), so the cost of a 12800-segment trip's
//      points matches a 100-segment trip's — the pre-incremental monitor
//      re-postprocessed the whole trip on every run closure, which made
//      alert-heavy long trips quadratic.
//
// Flags: --batch (only the micro-batch sweep), --tiny (seconds-scale smoke
// workload; registered as a CTest target so the harness can't bit-rot).
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "serve/fleet.h"

using namespace rl4oasd;

namespace {

double Percentile(std::vector<int64_t>* ns, double p) {
  if (ns->empty()) return 0.0;
  const size_t k = std::min(ns->size() - 1,
                            static_cast<size_t>(p * static_cast<double>(ns->size())));
  std::nth_element(ns->begin(), ns->begin() + static_cast<ptrdiff_t>(k),
                   ns->end());
  return static_cast<double>((*ns)[k]) / 1e3;  // ns -> us
}

/// Replays `trips` through the monitor at batch width B: B concurrent trips,
/// one point per live trip per wave, one FeedBatch call per wave (B == 0
/// means scalar per-point Feed). Returns {points fed, seconds}.
std::pair<int64_t, double> ReplayAtWidth(const core::Rl4Oasd& model,
                                         const std::vector<const traj::LabeledTrajectory*>& trips,
                                         size_t width) {
  serve::FleetMonitor monitor(&model, {}, nullptr);
  int64_t fed = 0;
  Stopwatch sw;
  if (width == 0) {
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto& t = trips[i]->traj;
      const auto vid = static_cast<int64_t>(i);
      if (!monitor.StartTrip(vid, t.sd(), t.start_time).ok()) continue;
      for (traj::EdgeId e : t.edges) {
        if (monitor.Feed(vid, e, t.start_time).ok()) ++fed;
      }
      (void)monitor.EndTrip(vid);
    }
    return {fed, sw.ElapsedSeconds()};
  }
  // Rolling window of `width` live trips: when one ends, the next starts,
  // so waves stay at full width until trips run out (the tail is ragged).
  struct Live {
    size_t trip;
    size_t pos = 0;
  };
  std::vector<Live> live;
  size_t next_trip = 0;
  auto refill = [&] {
    while (live.size() < width && next_trip < trips.size()) {
      const auto& t = trips[next_trip]->traj;
      if (monitor
              .StartTrip(static_cast<int64_t>(next_trip), t.sd(),
                         t.start_time)
              .ok()) {
        live.push_back({next_trip});
      }
      ++next_trip;
    }
  };
  std::vector<serve::FleetPoint> wave;
  refill();
  while (!live.empty()) {
    wave.clear();
    for (const Live& l : live) {
      const auto& t = trips[l.trip]->traj;
      wave.push_back({static_cast<int64_t>(l.trip), t.edges[l.pos],
                      t.start_time});
    }
    fed += static_cast<int64_t>(monitor.FeedBatch(wave));
    for (auto& l : live) ++l.pos;
    for (size_t i = live.size(); i-- > 0;) {
      if (live[i].pos == trips[live[i].trip]->traj.edges.size()) {
        (void)monitor.EndTrip(static_cast<int64_t>(live[i].trip));
        live.erase(live.begin() + static_cast<ptrdiff_t>(i));
      }
    }
    refill();
  }
  return {fed, sw.ElapsedSeconds()};
}

void RunBatchSweep(const core::Rl4Oasd& model,
                   const std::vector<const traj::LabeledTrajectory*>& trips) {
  printf("\n--- micro-batch sweep (single thread, one point per trip per "
         "wave) ---\n");
  printf("%-14s %14s %12s %10s\n", "Width", "points/s", "us/point",
         "vs scalar");
  const auto [base_fed, base_s] = ReplayAtWidth(model, trips, 0);
  const double base_rate = static_cast<double>(base_fed) / base_s;
  printf("%-14s %14.0f %12.3f %9.2fx\n", "Feed (scalar)", base_rate,
         base_s * 1e6 / static_cast<double>(base_fed), 1.0);
  for (const size_t width : {size_t{1}, size_t{8}, size_t{32}, size_t{128}}) {
    const auto [fed, s] = ReplayAtWidth(model, trips, width);
    const double rate = static_cast<double>(fed) / s;
    printf("FeedBatch B=%-3zu %13.0f %12.3f %9.2fx\n", width, rate,
           s * 1e6 / static_cast<double>(fed), rate / base_rate);
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("bench_fleet_throughput",
                "Fleet-monitor ingest throughput benchmarks");
  flags.AddBool("batch", false,
                "run only the micro-batch sweep (batched vs scalar ingest)");
  flags.AddBool("tiny", false,
                "seconds-scale smoke workload (CTest registration)");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    fprintf(stderr, "%s\n%s", st.message().c_str(), flags.Help().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    printf("%s", flags.Help().c_str());
    return 0;
  }
  const bool tiny = flags.GetBool("tiny");
  const bool batch_only = flags.GetBool("batch");

  printf("=== Fleet ingest throughput (threads vs points/s) ===\n\n");
  auto city = bench::MakeChengduLike(tiny ? 8 : 40);
  auto cfg = bench::TunedConfig();
  if (tiny) {
    cfg.pretrain_samples = 60;
    cfg.pretrain_epochs = 2;
    cfg.joint_samples = 80;
  }
  core::Rl4Oasd model(&city.net, cfg);
  model.Fit(city.train);

  // Pre-slice the replayable trips.
  std::vector<const traj::LabeledTrajectory*> trips;
  for (const auto& lt : city.test.trajs()) {
    if (lt.traj.edges.size() >= 2) trips.push_back(&lt);
  }
  int64_t total_points = 0;
  for (const auto* lt : trips) {
    total_points += static_cast<int64_t>(lt->traj.edges.size());
  }
  printf("fleet: %zu trips, %lld points, model trained on %zu trips\n\n",
         trips.size(), static_cast<long long>(total_points),
         city.train.size());

  if (batch_only) {
    RunBatchSweep(model, trips);
    return 0;
  }

  const std::vector<int> thread_counts = tiny ? std::vector<int>{1, 2}
                                              : std::vector<int>{1, 2, 4, 8};

  printf("--- per-point ingest (Feed) ---\n");
  printf("%-8s %14s %12s %12s %10s %9s\n", "Threads", "points/s", "p50 us",
         "p99 us", "alerts", "evicted");
  for (int threads : thread_counts) {
    serve::CollectingSink sink;
    serve::FleetMonitor monitor(&model, {}, &sink);
    std::vector<std::vector<int64_t>> lat(static_cast<size_t>(threads));
    Stopwatch sw;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int th = 0; th < threads; ++th) {
      workers.emplace_back([&, th] {
        auto& samples = lat[static_cast<size_t>(th)];
        samples.reserve(static_cast<size_t>(
            total_points / threads + 1));
        Stopwatch point_sw;
        for (size_t i = static_cast<size_t>(th); i < trips.size();
             i += static_cast<size_t>(threads)) {
          const auto& t = trips[i]->traj;
          const auto vid = static_cast<int64_t>(i);
          if (!monitor.StartTrip(vid, t.sd(), t.start_time).ok()) continue;
          for (traj::EdgeId e : t.edges) {
            point_sw.Start();
            (void)monitor.Feed(vid, e, t.start_time);
            samples.push_back(point_sw.ElapsedNanos());
          }
          (void)monitor.EndTrip(vid);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double s = sw.ElapsedSeconds();
    std::vector<int64_t> all;
    all.reserve(static_cast<size_t>(total_points));
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    const double p50 = Percentile(&all, 0.50);
    const double p99 = Percentile(&all, 0.99);
    const auto stats = monitor.Stats();
    printf("%-8d %14.0f %12.2f %12.2f %10lld %9lld\n", threads,
           static_cast<double>(total_points) / s, p50, p99,
           static_cast<long long>(stats.alerts_emitted),
           static_cast<long long>(stats.trips_evicted));
  }

  printf("\n--- batched ingest (FeedBatch, 64-point batches) ---\n");
  printf("%-8s %14s %10s\n", "Threads", "points/s", "alerts");
  for (int threads : thread_counts) {
    serve::CollectingSink sink;
    serve::FleetMonitor monitor(&model, {}, &sink);
    Stopwatch sw;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int th = 0; th < threads; ++th) {
      workers.emplace_back([&, th] {
        std::vector<serve::FleetPoint> batch;
        batch.reserve(64);
        for (size_t i = static_cast<size_t>(th); i < trips.size();
             i += static_cast<size_t>(threads)) {
          const auto& t = trips[i]->traj;
          const auto vid = static_cast<int64_t>(i);
          if (!monitor.StartTrip(vid, t.sd(), t.start_time).ok()) continue;
          for (traj::EdgeId e : t.edges) {
            batch.push_back({vid, e, t.start_time});
            if (batch.size() == 64) {
              (void)monitor.FeedBatch(batch);
              batch.clear();
            }
          }
          if (!batch.empty()) {
            (void)monitor.FeedBatch(batch);
            batch.clear();
          }
          (void)monitor.EndTrip(vid);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double s = sw.ElapsedSeconds();
    printf("%-8d %14.0f %10zu\n", threads,
           static_cast<double>(total_points) / s, sink.NumAlerts());
  }

  RunBatchSweep(model, trips);

  // Long-trip scaling: replay one real trajectory's edges R times as a
  // single trip. Incremental alert extraction keeps us/point flat; the old
  // full-rescan extraction grew linearly with trip length (quadratic total).
  printf("\n--- per-point cost vs trip length (single thread) ---\n");
  printf("%-10s %14s %12s\n", "Length", "points/s", "us/point");
  const auto* longest = *std::max_element(
      trips.begin(), trips.end(), [](const auto* a, const auto* b) {
        return a->traj.edges.size() < b->traj.edges.size();
      });
  const auto lengths = tiny ? std::vector<size_t>{100, 800}
                            : std::vector<size_t>{100, 800, 3200, 12800};
  for (size_t length : lengths) {
    serve::FleetMonitor monitor(&model, {}, nullptr);
    const auto& edges = longest->traj.edges;
    if (!monitor
             .StartTrip(1, longest->traj.sd(), longest->traj.start_time)
             .ok()) {
      continue;
    }
    Stopwatch sw;
    for (size_t i = 0; i < length; ++i) {
      (void)monitor.Feed(1, edges[i % edges.size()],
                         longest->traj.start_time);
    }
    const double s = sw.ElapsedSeconds();
    (void)monitor.EndTrip(1);
    printf("%-10zu %14.0f %12.2f\n", length,
           static_cast<double>(length) / s,
           s * 1e6 / static_cast<double>(length));
  }
  return 0;
}
