// Service-scale extension bench: fleet-monitor ingest throughput as ingest
// threads scale. The paper's efficiency study (Figure 3) measures one
// trajectory at a time; a deployment runs thousands of concurrent trips.
//
// Three sections:
//   1. Per-point ingest (Feed) sweeping 1 -> 8 threads: aggregate points/s
//      and p50/p99 per-point latency. With two-level locking the model step
//      runs under a per-trip lock, so scaling is bounded by cores, not by
//      shard collisions or a global stats mutex.
//   2. Batched ingest (FeedBatch) at the same thread counts: one shard-lock
//      acquisition per shard per batch instead of one per point.
//   3. Per-point cost vs trip length: alert extraction is incremental
//      (O(1) amortized per point), so the cost of a 12800-segment trip's
//      points matches a 100-segment trip's — the pre-incremental monitor
//      re-postprocessed the whole trip on every run closure, which made
//      alert-heavy long trips quadratic.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "serve/fleet.h"

using namespace rl4oasd;

namespace {

double Percentile(std::vector<int64_t>* ns, double p) {
  if (ns->empty()) return 0.0;
  const size_t k = std::min(ns->size() - 1,
                            static_cast<size_t>(p * static_cast<double>(ns->size())));
  std::nth_element(ns->begin(), ns->begin() + static_cast<ptrdiff_t>(k),
                   ns->end());
  return static_cast<double>((*ns)[k]) / 1e3;  // ns -> us
}

}  // namespace

int main() {
  printf("=== Fleet ingest throughput (threads vs points/s) ===\n\n");
  auto city = bench::MakeChengduLike();
  core::Rl4Oasd model(&city.net, bench::TunedConfig());
  model.Fit(city.train);

  // Pre-slice the replayable trips.
  std::vector<const traj::LabeledTrajectory*> trips;
  for (const auto& lt : city.test.trajs()) {
    if (lt.traj.edges.size() >= 2) trips.push_back(&lt);
  }
  int64_t total_points = 0;
  for (const auto* lt : trips) {
    total_points += static_cast<int64_t>(lt->traj.edges.size());
  }
  printf("fleet: %zu trips, %lld points, model trained on %zu trips\n\n",
         trips.size(), static_cast<long long>(total_points),
         city.train.size());

  const std::vector<int> thread_counts = {1, 2, 4, 8};

  printf("--- per-point ingest (Feed) ---\n");
  printf("%-8s %14s %12s %12s %10s %9s\n", "Threads", "points/s", "p50 us",
         "p99 us", "alerts", "evicted");
  for (int threads : thread_counts) {
    serve::CollectingSink sink;
    serve::FleetMonitor monitor(&model, {}, &sink);
    std::vector<std::vector<int64_t>> lat(static_cast<size_t>(threads));
    Stopwatch sw;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int th = 0; th < threads; ++th) {
      workers.emplace_back([&, th] {
        auto& samples = lat[static_cast<size_t>(th)];
        samples.reserve(static_cast<size_t>(
            total_points / threads + 1));
        Stopwatch point_sw;
        for (size_t i = static_cast<size_t>(th); i < trips.size();
             i += static_cast<size_t>(threads)) {
          const auto& t = trips[i]->traj;
          const auto vid = static_cast<int64_t>(i);
          if (!monitor.StartTrip(vid, t.sd(), t.start_time).ok()) continue;
          for (traj::EdgeId e : t.edges) {
            point_sw.Start();
            (void)monitor.Feed(vid, e, t.start_time);
            samples.push_back(point_sw.ElapsedNanos());
          }
          (void)monitor.EndTrip(vid);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double s = sw.ElapsedSeconds();
    std::vector<int64_t> all;
    all.reserve(static_cast<size_t>(total_points));
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    const double p50 = Percentile(&all, 0.50);
    const double p99 = Percentile(&all, 0.99);
    const auto stats = monitor.Stats();
    printf("%-8d %14.0f %12.2f %12.2f %10lld %9lld\n", threads,
           static_cast<double>(total_points) / s, p50, p99,
           static_cast<long long>(stats.alerts_emitted),
           static_cast<long long>(stats.trips_evicted));
  }

  printf("\n--- batched ingest (FeedBatch, 64-point batches) ---\n");
  printf("%-8s %14s %10s\n", "Threads", "points/s", "alerts");
  for (int threads : thread_counts) {
    serve::CollectingSink sink;
    serve::FleetMonitor monitor(&model, {}, &sink);
    Stopwatch sw;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int th = 0; th < threads; ++th) {
      workers.emplace_back([&, th] {
        std::vector<serve::FleetPoint> batch;
        batch.reserve(64);
        for (size_t i = static_cast<size_t>(th); i < trips.size();
             i += static_cast<size_t>(threads)) {
          const auto& t = trips[i]->traj;
          const auto vid = static_cast<int64_t>(i);
          if (!monitor.StartTrip(vid, t.sd(), t.start_time).ok()) continue;
          for (traj::EdgeId e : t.edges) {
            batch.push_back({vid, e, t.start_time});
            if (batch.size() == 64) {
              (void)monitor.FeedBatch(batch);
              batch.clear();
            }
          }
          if (!batch.empty()) {
            (void)monitor.FeedBatch(batch);
            batch.clear();
          }
          (void)monitor.EndTrip(vid);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double s = sw.ElapsedSeconds();
    printf("%-8d %14.0f %10zu\n", threads,
           static_cast<double>(total_points) / s, sink.NumAlerts());
  }

  // Long-trip scaling: replay one real trajectory's edges R times as a
  // single trip. Incremental alert extraction keeps us/point flat; the old
  // full-rescan extraction grew linearly with trip length (quadratic total).
  printf("\n--- per-point cost vs trip length (single thread) ---\n");
  printf("%-10s %14s %12s\n", "Length", "points/s", "us/point");
  const auto* longest = *std::max_element(
      trips.begin(), trips.end(), [](const auto* a, const auto* b) {
        return a->traj.edges.size() < b->traj.edges.size();
      });
  for (size_t length : {size_t{100}, size_t{800}, size_t{3200}, size_t{12800}}) {
    serve::FleetMonitor monitor(&model, {}, nullptr);
    const auto& edges = longest->traj.edges;
    if (!monitor
             .StartTrip(1, longest->traj.sd(), longest->traj.start_time)
             .ok()) {
      continue;
    }
    Stopwatch sw;
    for (size_t i = 0; i < length; ++i) {
      (void)monitor.Feed(1, edges[i % edges.size()],
                         longest->traj.start_time);
    }
    const double s = sw.ElapsedSeconds();
    (void)monitor.EndTrip(1);
    printf("%-10zu %14.0f %12.2f\n", length,
           static_cast<double>(length) / s,
           s * 1e6 / static_cast<double>(length));
  }
  return 0;
}
