// Service-scale extension bench: fleet-monitor ingest throughput as ingest
// threads scale. The paper's efficiency study (Figure 3) measures one
// trajectory at a time; a deployment runs thousands of concurrent trips.
// Expected shape: near-linear scaling up to the shard/core limit, with
// per-point cost staying far below the 2 s sampling interval.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "serve/fleet.h"

using namespace rl4oasd;

int main() {
  printf("=== Fleet ingest throughput (threads vs points/s) ===\n\n");
  auto city = bench::MakeChengduLike();
  core::Rl4Oasd model(&city.net, bench::TunedConfig());
  model.Fit(city.train);

  // Pre-slice the replayable trips.
  std::vector<const traj::LabeledTrajectory*> trips;
  for (const auto& lt : city.test.trajs()) {
    if (lt.traj.edges.size() >= 2) trips.push_back(&lt);
  }
  int64_t total_points = 0;
  for (const auto* lt : trips) {
    total_points += static_cast<int64_t>(lt->traj.edges.size());
  }
  printf("fleet: %zu trips, %lld points, model trained on %zu trips\n\n",
         trips.size(), static_cast<long long>(total_points),
         city.train.size());
  printf("%-8s %14s %14s %10s\n", "Threads", "points/s", "us/point",
         "alerts");

  for (int threads : {1, 2, 4, 8}) {
    serve::CollectingSink sink;
    serve::FleetMonitor monitor(&model, {}, &sink);
    Stopwatch sw;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int th = 0; th < threads; ++th) {
      workers.emplace_back([&, th] {
        for (size_t i = static_cast<size_t>(th); i < trips.size();
             i += static_cast<size_t>(threads)) {
          const auto& t = trips[i]->traj;
          const auto vid = static_cast<int64_t>(i);
          if (!monitor.StartTrip(vid, t.sd(), t.start_time).ok()) continue;
          for (traj::EdgeId e : t.edges) {
            (void)monitor.Feed(vid, e, t.start_time);
          }
          (void)monitor.EndTrip(vid);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double s = sw.ElapsedSeconds();
    printf("%-8d %14.0f %14.2f %10zu\n", threads,
           static_cast<double>(total_points) / s,
           s * 1e6 / static_cast<double>(total_points), sink.NumAlerts());
  }
  return 0;
}
