// Map-matching hot-path bench: the Table V "MapMatch" stage in isolation.
// Times the seed-era reference kernel against the fast kernel over the same
// sampled GPS workload (plus a gap-heavy variant), sweeps MatchBatch worker
// counts, and measures streaming per-point cost. Every timed comparison
// doubles as an equivalence check — any divergence between reference, fast,
// and streaming output fails the bench with a nonzero exit, so the ctest
// smoke registration guards the exactness contract too.
//
// Flags:
//   --tiny         small workload (seconds; registered with ctest)
//   --json <path>  machine-readable results — CI uploads BENCH_mapmatch.json
//   --threads <n>  max worker count for the MatchBatch sweep (default 8)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "mapmatch/hmm_matcher.h"
#include "mapmatch/streaming_matcher.h"
#include "traj/gps_sampler.h"

using namespace rl4oasd;

namespace {

struct Workload {
  std::string name;
  std::vector<traj::RawTrajectory> raws;
  size_t points = 0;
};

Workload SampleWorkload(const bench::CityData& city, const std::string& name,
                        size_t count, double dropout, uint64_t seed) {
  traj::GpsSamplerConfig gps;
  gps.dropout_prob = dropout;
  traj::GpsSampler sampler(&city.net, gps, seed);
  Workload w;
  w.name = name;
  for (size_t i = 0; i < std::min(count, city.train.size()); ++i) {
    auto raw = sampler.Sample(city.train[i].traj);
    if (raw.points.size() < 3) continue;
    w.points += raw.points.size();
    w.raws.push_back(std::move(raw));
  }
  return w;
}

bool SameResult(const Result<traj::MapMatchedTrajectory>& a,
                const Result<traj::MapMatchedTrajectory>& b) {
  if (a.ok() != b.ok()) return false;
  if (!a.ok()) return a.status().code() == b.status().code();
  return a->edges == b->edges && a->start_time == b->start_time &&
         a->id == b->id;
}

struct StageResult {
  std::string workload;
  size_t trajs = 0;
  size_t points = 0;
  double reference_s = 0.0;
  double fast_s = 0.0;
  double streaming_s = 0.0;
  std::vector<std::pair<int, double>> batch;  // (threads, seconds)
  bool equal = true;
};

StageResult RunWorkload(const mapmatch::HmmMapMatcher& matcher,
                        const Workload& w, int max_threads) {
  StageResult r;
  r.workload = w.name;
  r.trajs = w.raws.size();
  r.points = w.points;

  // Reference kernel (the seed matcher's cost model).
  std::vector<Result<traj::MapMatchedTrajectory>> ref;
  ref.reserve(w.raws.size());
  Stopwatch ref_sw;
  for (const auto& raw : w.raws) ref.push_back(matcher.MatchReference(raw));
  r.reference_s = ref_sw.ElapsedSeconds();

  // Fast kernel, single thread, scratch reused across calls.
  std::vector<Result<traj::MapMatchedTrajectory>> fast;
  fast.reserve(w.raws.size());
  mapmatch::HmmMapMatcher::Scratch scratch;
  Stopwatch fast_sw;
  for (const auto& raw : w.raws) fast.push_back(matcher.Match(raw, &scratch));
  r.fast_s = fast_sw.ElapsedSeconds();
  for (size_t i = 0; i < w.raws.size(); ++i) {
    if (!SameResult(ref[i], fast[i])) {
      std::fprintf(stderr, "MISMATCH fast vs reference: %s traj %zu\n",
                   w.name.c_str(), i);
      r.equal = false;
    }
  }

  // Batch sweep: 1, 2, 4, ... up to max_threads.
  for (int t = 1; t <= max_threads; t *= 2) {
    Stopwatch sw;
    auto batch = matcher.MatchBatch(w.raws, t);
    r.batch.emplace_back(t, sw.ElapsedSeconds());
    for (size_t i = 0; i < w.raws.size(); ++i) {
      if (!SameResult(batch[i], fast[i])) {
        std::fprintf(stderr, "MISMATCH batch(threads=%d) vs fast: %s traj %zu\n",
                     t, w.name.c_str(), i);
        r.equal = false;
      }
    }
  }

  // Streaming: per-point feeding plus one Finish per trajectory.
  mapmatch::StreamingMatcher stream(&matcher);
  std::vector<Result<traj::MapMatchedTrajectory>> streamed;
  streamed.reserve(w.raws.size());
  Stopwatch stream_sw;
  for (const auto& raw : w.raws) {
    stream.Reset(raw.id);
    for (const auto& pt : raw.points) stream.MatchPoint(pt);
    streamed.push_back(stream.Finish());
  }
  r.streaming_s = stream_sw.ElapsedSeconds();
  for (size_t i = 0; i < w.raws.size(); ++i) {
    if (!SameResult(streamed[i], fast[i])) {
      std::fprintf(stderr, "MISMATCH streaming vs fast: %s traj %zu\n",
                   w.name.c_str(), i);
      r.equal = false;
    }
  }
  return r;
}

void PrintStage(const StageResult& r) {
  std::printf("--- workload %-10s (%zu trajs, %zu points) ---\n",
              r.workload.c_str(), r.trajs, r.points);
  std::printf("%-28s %10.3f s  (%8.1f traj/s)\n", "reference (seed kernel)",
              r.reference_s, r.trajs / r.reference_s);
  std::printf("%-28s %10.3f s  (%8.1f traj/s)  speedup %.2fx\n",
              "fast (1 thread)", r.fast_s, r.trajs / r.fast_s,
              r.reference_s / r.fast_s);
  for (const auto& [threads, secs] : r.batch) {
    std::printf("%-21s %2dT %10.3f s  (%8.1f traj/s)  speedup %.2fx\n",
                "batch", threads, secs, r.trajs / secs, r.reference_s / secs);
  }
  std::printf("%-28s %10.3f s  (%8.2f us/point)\n", "streaming",
              r.streaming_s, 1e6 * r.streaming_s / r.points);
  std::printf("%-28s %s\n\n", "outputs identical",
              r.equal ? "yes" : "NO (FAILURE)");
}

void WriteJson(const std::string& path, const std::vector<StageResult>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"mapmatch\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const StageResult& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"trajs\": %zu, \"points\": %zu, "
                 "\"reference_s\": %.4f, \"fast_s\": %.4f, \"speedup\": %.2f, "
                 "\"streaming_s\": %.4f, \"equal\": %s, \"batch\": [",
                 r.workload.c_str(), r.trajs, r.points, r.reference_s,
                 r.fast_s, r.reference_s / r.fast_s, r.streaming_s,
                 r.equal ? "true" : "false");
    for (size_t b = 0; b < r.batch.size(); ++b) {
      std::fprintf(f, "{\"threads\": %d, \"seconds\": %.4f}%s",
                   r.batch[b].first, r.batch[b].second,
                   b + 1 < r.batch.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("bench_mapmatch",
                "Table V map-matching stage: reference vs fast kernel");
  flags.AddBool("tiny", false, "small workload for ctest");
  flags.AddString("json", "", "write machine-readable results to this path");
  flags.AddInt("threads", 8, "max worker count for the MatchBatch sweep");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.message().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;
  const bool tiny = flags.GetBool("tiny");
  const int max_threads = static_cast<int>(flags.GetInt("threads"));
  const size_t count = tiny ? 120 : 600;

  std::printf("=== Map matching: Table V stage attribution ===\n\n");
  auto city = bench::MakeChengduLike(/*num_pairs=*/tiny ? 12 : 40, /*seed=*/12);
  mapmatch::HmmMapMatcher matcher(&city.net);

  // "clean" is the Table V preprocessing workload (continuous GPS); "gappy"
  // adds 20% fix dropout so segment restarts and gap policies are on the
  // timed and checked path as well.
  std::vector<StageResult> rows;
  rows.push_back(RunWorkload(
      matcher, SampleWorkload(city, "clean", count, 0.0, 5), max_threads));
  rows.push_back(RunWorkload(
      matcher, SampleWorkload(city, "gappy", count / 2, 0.2, 6), max_threads));
  for (const auto& r : rows) PrintStage(r);

  if (!flags.GetString("json").empty()) {
    WriteJson(flags.GetString("json"), rows);
  }
  for (const auto& r : rows) {
    if (!r.equal) return 1;  // exactness contract violated
  }
  return 0;
}
