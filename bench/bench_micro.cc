// Microbenchmarks of the hot paths behind the paper's efficiency claims
// (google-benchmark): LSTM streaming step, policy action, the full
// per-point detector Feed, preprocessor lookups, discrete-Frechet row
// update, and bounded shortest paths — plus batch sweeps (B in {1, 8, 32,
// 128}) of the GEMM-backed batched inference path at each layer (LSTM cell,
// RSRNet step, detector FeedBatch), reported per *point* so the batched
// rows read directly against their streaming counterparts.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/detector.h"
#include "io/checkpoint.h"
#include "io/model_io.h"
#include "nn/gru.h"
#include "nn/lstm.h"
#include "roadnet/shortest_path.h"
#include "serve/fleet.h"

using namespace rl4oasd;

namespace {

struct MicroFixture {
  bench::CityData city = bench::MakeChengduLike(12);
  core::Rl4Oasd model{&city.net, [] {
                        auto cfg = bench::TunedConfig();
                        cfg.pretrain_samples = 80;
                        cfg.pretrain_epochs = 2;
                        cfg.joint_samples = 50;
                        return cfg;
                      }()};
  traj::MapMatchedTrajectory long_traj;

  MicroFixture() {
    model.Fit(city.train);
    for (const auto& lt : city.test.trajs()) {
      if (lt.traj.edges.size() > long_traj.edges.size()) long_traj = lt.traj;
    }
  }
};

MicroFixture& Fixture() {
  static MicroFixture f;
  return f;
}

void BM_LstmStreamingStep(benchmark::State& state) {
  auto& f = Fixture();
  core::RsrStream stream(f.model.rsrnet().config().hidden_dim);
  size_t i = 0;
  const auto& edges = f.long_traj.edges;
  for (auto _ : state) {
    auto z = f.model.rsrnet().StepForward(edges[i % edges.size()], 0, &stream,
                                          nullptr);
    benchmark::DoNotOptimize(z.data());
    ++i;
  }
}
BENCHMARK(BM_LstmStreamingStep);

void BM_PolicyAction(benchmark::State& state) {
  auto& f = Fixture();
  nn::Vec z(f.model.rsrnet().z_dim(), 0.1f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.asdnet().GreedyAction(z.data(), 0));
  }
}
BENCHMARK(BM_PolicyAction);

void BM_DetectorPerPoint(benchmark::State& state) {
  auto& f = Fixture();
  const auto& t = f.long_traj;
  auto session = f.model.StartSession(t.sd(), t.start_time);
  size_t i = 0;
  for (auto _ : state) {
    if (i == t.edges.size()) {
      state.PauseTiming();
      session = f.model.StartSession(t.sd(), t.start_time);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(session.Feed(t.edges[i++]));
  }
}
BENCHMARK(BM_DetectorPerPoint);

void BM_TransitionFractionLookup(benchmark::State& state) {
  auto& f = Fixture();
  const auto& t = f.long_traj;
  size_t i = 1;
  for (auto _ : state) {
    if (i + 1 >= t.edges.size()) i = 1;
    benchmark::DoNotOptimize(f.model.preprocessor().TransitionFractionAt(
        t.sd(), t.start_time, t.edges[i - 1], t.edges[i]));
    ++i;
  }
}
BENCHMARK(BM_TransitionFractionLookup);

void BM_FrechetRow(benchmark::State& state) {
  auto& f = Fixture();
  baselines::CtssDetector ctss(&f.city.net);
  ctss.Fit(f.city.train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctss.Scores(f.long_traj));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.long_traj.edges.size()));
}
BENCHMARK(BM_FrechetRow);

void BM_ShortestPathBetweenEdges(benchmark::State& state) {
  auto& f = Fixture();
  const auto& t = f.long_traj;
  for (auto _ : state) {
    benchmark::DoNotOptimize(roadnet::ShortestPathBetweenEdges(
        f.city.net, t.edges.front(), t.edges.back()));
  }
}
BENCHMARK(BM_ShortestPathBetweenEdges);

void BM_RsrTrainStep(benchmark::State& state) {
  auto& f = Fixture();
  const auto& t = f.long_traj;
  const auto nrf = f.model.preprocessor().NormalRouteFeatures(t);
  const auto noisy = f.model.preprocessor().NoisyLabels(t);
  // A scratch network so training does not perturb the shared fixture.
  auto cfg = f.model.rsrnet().config();
  core::RsrNet net(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.TrainStep(t.edges, nrf, noisy));
  }
}
BENCHMARK(BM_RsrTrainStep);

void BM_GruStreamingStep(benchmark::State& state) {
  // GRU counterpart of BM_LstmStreamingStep (same dims as the fixture's
  // RSRNet core) for the architecture-ablation latency claim.
  Rng rng(3);
  auto& f = Fixture();
  const size_t embed = f.model.rsrnet().config().embed_dim;
  const size_t hidden = f.model.rsrnet().config().hidden_dim;
  nn::Gru gru("micro", embed, hidden, &rng);
  nn::GruState gru_state(hidden);
  nn::Vec x(embed, 0.1f);
  for (auto _ : state) {
    gru.StepForward(x.data(), &gru_state);
    benchmark::DoNotOptimize(gru_state.h.data());
  }
}
BENCHMARK(BM_GruStreamingStep);

void BM_FleetFeed(benchmark::State& state) {
  // Per-point cost through the full service layer (shard lock + session +
  // run bookkeeping) vs the bare detector Feed above.
  auto& f = Fixture();
  serve::FleetMonitor monitor(&f.model, {}, nullptr);
  const auto& t = f.long_traj;
  (void)monitor.StartTrip(1, t.sd(), t.start_time);
  size_t i = 0;
  for (auto _ : state) {
    if (i == t.edges.size()) {
      state.PauseTiming();
      (void)monitor.EndTrip(1);
      (void)monitor.StartTrip(1, t.sd(), t.start_time);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(monitor.Feed(1, t.edges[i++], t.start_time));
  }
}
BENCHMARK(BM_FleetFeed);

void BM_LstmStepBatch(benchmark::State& state) {
  // Batched counterpart of BM_LstmStreamingStep: one fused (4H x I) x
  // (I x B) step for B streams. items == points, so time-per-item is the
  // per-point cost to compare against the streaming row.
  Rng rng(3);
  auto& f = Fixture();
  const size_t embed = f.model.rsrnet().config().embed_dim;
  const size_t hidden = f.model.rsrnet().config().hidden_dim;
  const auto B = static_cast<size_t>(state.range(0));
  nn::Lstm lstm("micro", embed, hidden, &rng);
  nn::LstmBatchState batch_state(hidden, B);
  nn::Matrix x(embed, B, 0.1f);
  for (auto _ : state) {
    lstm.StepForwardBatch(x, &batch_state);
    benchmark::DoNotOptimize(batch_state.h.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(B));
}
BENCHMARK(BM_LstmStepBatch)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_RsrStepBatch(benchmark::State& state) {
  // Full batched RSRNet streaming step: embedding gather, fused recurrent
  // GEMMs, state scatter, z assembly.
  auto& f = Fixture();
  const auto B = static_cast<size_t>(state.range(0));
  std::vector<core::RsrStream> streams(B);
  std::vector<core::RsrStream*> ptrs;
  ptrs.reserve(B);
  for (auto& s : streams) ptrs.push_back(&s);
  const auto& edges = f.long_traj.edges;
  std::vector<traj::EdgeId> batch_edges(B);
  std::vector<uint8_t> nrf(B, 0);
  nn::Matrix z;
  size_t i = 0;
  for (auto _ : state) {
    for (size_t b = 0; b < B; ++b) {
      batch_edges[b] = edges[(i + b) % edges.size()];
    }
    f.model.rsrnet().StepForwardBatch(batch_edges, nrf, ptrs, &z);
    benchmark::DoNotOptimize(z.data());
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(B));
}
BENCHMARK(BM_RsrStepBatch)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_DetectorFeedBatch(benchmark::State& state) {
  // Batched counterpart of BM_DetectorPerPoint: B concurrent sessions
  // advanced one segment per call through OnlineDetector::FeedBatch.
  auto& f = Fixture();
  const auto& t = f.long_traj;
  const auto B = static_cast<size_t>(state.range(0));
  std::vector<core::OnlineDetector::Session> sessions;
  std::vector<core::OnlineDetector::Session*> ptrs;
  auto reset = [&] {
    sessions.clear();
    ptrs.clear();
    for (size_t b = 0; b < B; ++b) {
      sessions.push_back(f.model.StartSession(t.sd(), t.start_time));
    }
    for (auto& s : sessions) ptrs.push_back(&s);
  };
  reset();
  std::vector<traj::EdgeId> edges(B);
  size_t i = 0;
  for (auto _ : state) {
    if (i == t.edges.size()) {
      state.PauseTiming();
      reset();
      i = 0;
      state.ResumeTiming();
    }
    std::fill(edges.begin(), edges.end(), t.edges[i++]);
    f.model.detector().FeedBatch(ptrs, edges);
    benchmark::DoNotOptimize(sessions.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(B));
}
BENCHMARK(BM_DetectorFeedBatch)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_GemmKernel(benchmark::State& state) {
  // The raw blocked GEMM at the LSTM gate shape (4H x I) * (I x B).
  auto& f = Fixture();
  const size_t embed = f.model.rsrnet().config().embed_dim;
  const size_t hidden = f.model.rsrnet().config().hidden_dim;
  const auto B = static_cast<size_t>(state.range(0));
  nn::Matrix a(4 * hidden, embed, 0.01f);
  nn::Matrix b(embed, B, 0.1f);
  nn::Matrix c;
  for (auto _ : state) {
    nn::MatMul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(B));
  state.counters["MAC/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(4 * hidden * embed * B),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmKernel)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_ModelBundleSaveLoad(benchmark::State& state) {
  auto& f = Fixture();
  const std::string path = "/tmp/rl4oasd_micro_model.rlmb";
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::SaveModel(f.model, path).ok());
    auto loaded = io::LoadModel(&f.city.net, path);
    benchmark::DoNotOptimize(loaded.ok());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_ModelBundleSaveLoad);

}  // namespace

BENCHMARK_MAIN();
