// Microbenchmarks of the hot paths behind the paper's efficiency claims
// (google-benchmark): LSTM streaming step, policy action, the full
// per-point detector Feed, preprocessor lookups, discrete-Frechet row
// update, and bounded shortest paths.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/detector.h"
#include "io/checkpoint.h"
#include "io/model_io.h"
#include "nn/gru.h"
#include "roadnet/shortest_path.h"
#include "serve/fleet.h"

using namespace rl4oasd;

namespace {

struct MicroFixture {
  bench::CityData city = bench::MakeChengduLike(12);
  core::Rl4Oasd model{&city.net, [] {
                        auto cfg = bench::TunedConfig();
                        cfg.pretrain_samples = 80;
                        cfg.pretrain_epochs = 2;
                        cfg.joint_samples = 50;
                        return cfg;
                      }()};
  traj::MapMatchedTrajectory long_traj;

  MicroFixture() {
    model.Fit(city.train);
    for (const auto& lt : city.test.trajs()) {
      if (lt.traj.edges.size() > long_traj.edges.size()) long_traj = lt.traj;
    }
  }
};

MicroFixture& Fixture() {
  static MicroFixture f;
  return f;
}

void BM_LstmStreamingStep(benchmark::State& state) {
  auto& f = Fixture();
  core::RsrStream stream(f.model.rsrnet().config().hidden_dim);
  size_t i = 0;
  const auto& edges = f.long_traj.edges;
  for (auto _ : state) {
    auto z = f.model.rsrnet().StepForward(edges[i % edges.size()], 0, &stream,
                                          nullptr);
    benchmark::DoNotOptimize(z.data());
    ++i;
  }
}
BENCHMARK(BM_LstmStreamingStep);

void BM_PolicyAction(benchmark::State& state) {
  auto& f = Fixture();
  nn::Vec z(f.model.rsrnet().z_dim(), 0.1f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.asdnet().GreedyAction(z.data(), 0));
  }
}
BENCHMARK(BM_PolicyAction);

void BM_DetectorPerPoint(benchmark::State& state) {
  auto& f = Fixture();
  const auto& t = f.long_traj;
  auto session = f.model.StartSession(t.sd(), t.start_time);
  size_t i = 0;
  for (auto _ : state) {
    if (i == t.edges.size()) {
      state.PauseTiming();
      session = f.model.StartSession(t.sd(), t.start_time);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(session.Feed(t.edges[i++]));
  }
}
BENCHMARK(BM_DetectorPerPoint);

void BM_TransitionFractionLookup(benchmark::State& state) {
  auto& f = Fixture();
  const auto& t = f.long_traj;
  size_t i = 1;
  for (auto _ : state) {
    if (i + 1 >= t.edges.size()) i = 1;
    benchmark::DoNotOptimize(f.model.preprocessor().TransitionFractionAt(
        t.sd(), t.start_time, t.edges[i - 1], t.edges[i]));
    ++i;
  }
}
BENCHMARK(BM_TransitionFractionLookup);

void BM_FrechetRow(benchmark::State& state) {
  auto& f = Fixture();
  baselines::CtssDetector ctss(&f.city.net);
  ctss.Fit(f.city.train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctss.Scores(f.long_traj));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.long_traj.edges.size()));
}
BENCHMARK(BM_FrechetRow);

void BM_ShortestPathBetweenEdges(benchmark::State& state) {
  auto& f = Fixture();
  const auto& t = f.long_traj;
  for (auto _ : state) {
    benchmark::DoNotOptimize(roadnet::ShortestPathBetweenEdges(
        f.city.net, t.edges.front(), t.edges.back()));
  }
}
BENCHMARK(BM_ShortestPathBetweenEdges);

void BM_RsrTrainStep(benchmark::State& state) {
  auto& f = Fixture();
  const auto& t = f.long_traj;
  const auto nrf = f.model.preprocessor().NormalRouteFeatures(t);
  const auto noisy = f.model.preprocessor().NoisyLabels(t);
  // A scratch network so training does not perturb the shared fixture.
  auto cfg = f.model.rsrnet().config();
  core::RsrNet net(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.TrainStep(t.edges, nrf, noisy));
  }
}
BENCHMARK(BM_RsrTrainStep);

void BM_GruStreamingStep(benchmark::State& state) {
  // GRU counterpart of BM_LstmStreamingStep (same dims as the fixture's
  // RSRNet core) for the architecture-ablation latency claim.
  Rng rng(3);
  auto& f = Fixture();
  const size_t embed = f.model.rsrnet().config().embed_dim;
  const size_t hidden = f.model.rsrnet().config().hidden_dim;
  nn::Gru gru("micro", embed, hidden, &rng);
  nn::GruState gru_state(hidden);
  nn::Vec x(embed, 0.1f);
  for (auto _ : state) {
    gru.StepForward(x.data(), &gru_state);
    benchmark::DoNotOptimize(gru_state.h.data());
  }
}
BENCHMARK(BM_GruStreamingStep);

void BM_FleetFeed(benchmark::State& state) {
  // Per-point cost through the full service layer (shard lock + session +
  // run bookkeeping) vs the bare detector Feed above.
  auto& f = Fixture();
  serve::FleetMonitor monitor(&f.model, {}, nullptr);
  const auto& t = f.long_traj;
  (void)monitor.StartTrip(1, t.sd(), t.start_time);
  size_t i = 0;
  for (auto _ : state) {
    if (i == t.edges.size()) {
      state.PauseTiming();
      (void)monitor.EndTrip(1);
      (void)monitor.StartTrip(1, t.sd(), t.start_time);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(monitor.Feed(1, t.edges[i++], t.start_time));
  }
}
BENCHMARK(BM_FleetFeed);

void BM_ModelBundleSaveLoad(benchmark::State& state) {
  auto& f = Fixture();
  const std::string path = "/tmp/rl4oasd_micro_model.rlmb";
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::SaveModel(f.model, path).ok());
    auto loaded = io::LoadModel(&f.city.net, path);
    benchmark::DoNotOptimize(loaded.ok());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_ModelBundleSaveLoad);

}  // namespace

BENCHMARK_MAIN();
