// Parameter study (paper Section V-C / technical report): the effect of
// alpha (noisy-label threshold), delta (normal-route threshold) and D
// (delayed-labeling lookahead). Expected shape: a moderate setting of each
// is best. The optimum for the synthetic workload (alpha~0.1, delta~0.12)
// differs from the paper's 0.5/0.4 because the synthetic route-popularity
// profile differs — see DESIGN.md.
#include <cstdio>

#include "bench_util.h"

using namespace rl4oasd;

namespace {

// A lighter model for the sweeps: alpha/delta changes require a full refit.
core::Rl4OasdConfig SweepConfig() {
  auto cfg = bench::TunedConfig();
  cfg.use_pretrained_embeddings = false;  // skip-gram dominates fit time
  cfg.pretrain_samples = 150;
  cfg.pretrain_epochs = 3;
  cfg.joint_samples = 100;
  return cfg;
}

double FitAndScore(const bench::CityData& city, core::Rl4OasdConfig cfg) {
  core::Rl4Oasd model(&city.net, cfg);
  model.Fit(city.train);
  return bench::Evaluate(city.test,
                         [&](const traj::MapMatchedTrajectory& t) {
                           return model.Detect(t);
                         })
      .overall.f1;
}

}  // namespace

int main() {
  printf("=== Parameter study: alpha, delta, D ===\n\n");
  auto city = bench::MakeChengduLike(28);

  printf("varying alpha (delta = 0.12, D = 4):\n%-8s %8s\n", "alpha", "F1");
  for (double alpha : {0.02, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    auto cfg = SweepConfig();
    cfg.preprocess.alpha = alpha;
    printf("%-8.2f %8.3f\n", alpha, FitAndScore(city, cfg));
  }

  printf("\nvarying delta (alpha = 0.1, D = 4):\n%-8s %8s\n", "delta", "F1");
  for (double delta : {0.02, 0.06, 0.12, 0.2, 0.3, 0.4}) {
    auto cfg = SweepConfig();
    cfg.preprocess.delta = delta;
    printf("%-8.2f %8.3f\n", delta, FitAndScore(city, cfg));
  }

  printf("\nvarying D (alpha = 0.1, delta = 0.12):\n%-8s %8s\n", "D", "F1");
  {
    // D only affects post-processing: train once, re-detect per D.
    auto cfg = SweepConfig();
    for (int d : {0, 1, 2, 4, 8, 16}) {
      auto c = cfg;
      c.detector.delay_d = d;
      c.detector.use_dl = d > 0;
      printf("%-8d %8.3f\n", d, FitAndScore(city, c));
    }
  }
  return 0;
}
