// Table II reproduction: dataset statistics for the two synthetic cities.
#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace rl4oasd;

namespace {

void Describe(const bench::CityData& city) {
  size_t intersections_in_degree = 0;
  for (roadnet::VertexId v = 0;
       v < static_cast<roadnet::VertexId>(city.net.NumVertices()); ++v) {
    intersections_in_degree += city.net.InEdges(v).size();
  }
  size_t total = city.train.size() + city.test.size();
  size_t anomalous = city.train.NumAnomalous() + city.test.NumAnomalous();
  size_t anomalous_routes = 0, labeled_routes = 0;
  {
    // Distinct routes (paper counts labeled routes vs raw trajectories).
    std::map<std::vector<traj::EdgeId>, bool> routes;
    auto scan = [&](const traj::Dataset& ds) {
      for (const auto& lt : ds.trajs()) {
        auto [it, inserted] = routes.try_emplace(lt.traj.edges, false);
        it->second |= lt.HasAnomaly();
      }
    };
    scan(city.train);
    scan(city.test);
    labeled_routes = routes.size();
    for (const auto& [route, anomalous_route] : routes) {
      anomalous_routes += anomalous_route;
    }
  }
  printf("%-28s %10s\n", "Dataset", city.name.c_str());
  printf("%-28s %10zu\n", "# of trajectories", total);
  printf("%-28s %10zu\n", "# of segments", city.net.NumEdges());
  printf("%-28s %10zu\n", "# of intersections", city.net.NumVertices());
  printf("%-28s %6zu (%zu)\n", "# of labeled routes (trajs)", labeled_routes,
         total);
  printf("%-28s %6zu (%zu)\n", "# of anomalous routes (trajs)",
         anomalous_routes, anomalous);
  printf("%-28s %9.1f%%\n", "Anomalous ratio",
         100.0 * static_cast<double>(anomalous) / static_cast<double>(total));
  printf("%-28s %10s\n", "Sampling rate", "2s ~ 4s");
  printf("%-28s %10zu\n", "# of SD pairs",
         city.train.NumSdPairs());
  printf("\n");
}

}  // namespace

int main() {
  printf("=== Table II: dataset statistics (synthetic substitution) ===\n\n");
  Describe(bench::MakeChengduLike());
  Describe(bench::MakeXianLike());
  return 0;
}
