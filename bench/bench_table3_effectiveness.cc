// Table III reproduction: effectiveness (F1 / TF1) of RL4OASD against the
// seven baselines, per trajectory-length group G1..G4 and overall, on both
// cities. The expected shape (paper): RL4OASD best everywhere, CTSS the
// strongest baseline, the VSAE family behind the task-specific methods.
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"

using namespace rl4oasd;

namespace {

void RunCity(bench::CityData city) {
  printf("--- %s (train=%zu test=%zu pairs=%zu) ---\n", city.name.c_str(),
         city.train.size(), city.test.size(), city.train.NumSdPairs());
  printf("%-22s  %-11s  %-11s  %-11s  %-11s  | %-11s\n", "Method",
         "G1 F1 TF1", "G2 F1 TF1", "G3 F1 TF1", "G4 F1 TF1", "Overall");

  const auto dev = bench::DevSet(city.test);

  for (auto& baseline : bench::MakeBaselines(&city.net)) {
    Stopwatch sw;
    baseline->Fit(city.train);
    baseline->Tune(dev);
    const auto scores = bench::Evaluate(
        city.test,
        [&](const traj::MapMatchedTrajectory& t) { return baseline->Detect(t); });
    printf("%s   [fit %.1fs]\n",
           eval::FormatGroupedRow(baseline->name(), scores).c_str(),
           sw.ElapsedSeconds());
  }

  Stopwatch sw;
  core::Rl4Oasd model(&city.net, bench::TunedConfig());
  model.Fit(city.train);
  const auto scores = bench::Evaluate(
      city.test,
      [&](const traj::MapMatchedTrajectory& t) { return model.Detect(t); });
  printf("%s   [fit %.1fs]\n",
         eval::FormatGroupedRow("RL4OASD", scores).c_str(),
         sw.ElapsedSeconds());
  printf("\n");
}

}  // namespace

int main() {
  printf("=== Table III: effectiveness comparison (F1-score, TF1-score) ===\n\n");
  RunCity(bench::MakeChengduLike());
  RunCity(bench::MakeXianLike());
  return 0;
}
