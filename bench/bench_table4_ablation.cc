// Table IV reproduction: ablation study of RL4OASD on the Chengdu-like
// city. Expected shape (paper): the full model is best; removing noisy
// labels or ASDNet hurts most; transition frequency alone is the weakest;
// local/global reward ablations change little.
#include <cstdio>

#include "bench_util.h"

using namespace rl4oasd;

int main() {
  printf("=== Table IV: ablation study (overall F1 on Chengdu-like) ===\n\n");
  auto city = bench::MakeChengduLike();

  struct Variant {
    const char* name;
    std::function<void(core::Rl4OasdConfig*)> tweak;
  };
  const Variant variants[] = {
      {"RL4OASD", [](core::Rl4OasdConfig*) {}},
      {"w/o noisy labels",
       [](core::Rl4OasdConfig* c) { c->use_noisy_labels = false; }},
      {"w/o road segment embeddings",
       [](core::Rl4OasdConfig* c) { c->use_pretrained_embeddings = false; }},
      {"w/o RNEL",
       [](core::Rl4OasdConfig* c) { c->detector.use_rnel = false; }},
      {"w/o DL", [](core::Rl4OasdConfig* c) { c->detector.use_dl = false; }},
      {"w/o boundary trim",
       [](core::Rl4OasdConfig* c) { c->detector.use_boundary_trim = false; }},
      {"w/o local reward",
       [](core::Rl4OasdConfig* c) { c->use_local_reward = false; }},
      {"w/o global reward",
       [](core::Rl4OasdConfig* c) { c->use_global_reward = false; }},
      {"w/o ASDNet",
       [](core::Rl4OasdConfig* c) { c->use_asdnet = false; }},
      {"only transition frequency",
       [](core::Rl4OasdConfig* c) { c->transition_frequency_only = true; }},
  };

  printf("%-30s %8s\n", "Effectiveness", "F1-score");
  for (const auto& variant : variants) {
    auto cfg = bench::TunedConfig();
    variant.tweak(&cfg);
    core::Rl4Oasd model(&city.net, cfg);
    model.Fit(city.train);
    const auto scores = bench::Evaluate(
        city.test,
        [&](const traj::MapMatchedTrajectory& t) { return model.Detect(t); });
    printf("%-30s %8.3f\n", variant.name, scores.overall.f1);
  }
  return 0;
}
