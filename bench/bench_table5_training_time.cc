// Table V reproduction: preprocessing (map matching, noisy labeling) and
// training time as the training-data size grows, plus the F1 the trained
// model reaches. Expected shape (paper): all stages scale linearly with data
// size; F1 saturates. (Sizes are scaled down ~4x from the paper's 4k-12k to
// keep the bench suite fast; the linear trend is the claim under test.)
//
// Flags:
//   --tiny              smoke-run sizes (seconds, registered with ctest)
//   --json <path>       additionally emit machine-readable results (one
//                       object per data size, including the per-phase Fit
//                       breakdown) — CI uploads this as a perf artifact
//   --trainer-threads N data-parallel pretrain workers (default 1; the
//                       headline single-thread speedup claim uses 1)
//   --match-threads N   MatchBatch workers for the map-matching stage
//                       (default 1; results are thread-count invariant)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "mapmatch/hmm_matcher.h"
#include "traj/gps_sampler.h"

using namespace rl4oasd;

namespace {

struct Row {
  size_t size = 0;
  double mapmatch_s = 0.0;
  double noisy_s = 0.0;
  double train_s = 0.0;
  double f1 = 0.0;
  size_t matched = 0;
  size_t noisy_ones = 0;
  core::Rl4Oasd::FitTimings fit;
};

void WriteJson(const std::string& path, const std::vector<Row>& rows,
               int trainer_threads, int match_threads) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"table5_training_time\",\n");
  std::fprintf(f, "  \"trainer_threads\": %d,\n", trainer_threads);
  std::fprintf(f, "  \"match_threads\": %d,\n", match_threads);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"data_size\": %zu, \"mapmatch_s\": %.4f, \"noisy_label_s\": "
        "%.4f, \"train_s\": %.4f, \"f1\": %.4f, \"matched\": %zu, "
        "\"noisy_ones\": %zu,\n"
        "     \"fit\": {\"preprocess_s\": %.4f, \"embed_s\": %.4f, "
        "\"pretrain_rsr_s\": %.4f, \"pretrain_asd_s\": %.4f, \"joint_s\": "
        "%.4f, \"total_s\": %.4f}}%s\n",
        r.size, r.mapmatch_s, r.noisy_s, r.train_s, r.f1, r.matched,
        r.noisy_ones, r.fit.preprocess_s, r.fit.embed_s, r.fit.pretrain_rsr_s,
        r.fit.pretrain_asd_s, r.fit.joint_s, r.fit.total_s,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("bench_table5_training_time",
                "Table V: preprocessing and training time");
  flags.AddBool("tiny", false, "smoke-run sizes for ctest");
  flags.AddString("json", "", "write machine-readable results to this path");
  flags.AddInt("trainer-threads", 1, "data-parallel pretrain workers");
  flags.AddInt("match-threads", 1, "MatchBatch workers for map matching");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.message().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;
  const bool tiny = flags.GetBool("tiny");
  const int trainer_threads =
      static_cast<int>(flags.GetInt("trainer-threads"));
  const int match_threads = static_cast<int>(flags.GetInt("match-threads"));

  printf("=== Table V: preprocessing and training time ===\n\n");
  auto city = bench::MakeChengduLike(/*num_pairs=*/tiny ? 12 : 48,
                                     /*seed=*/12);
  mapmatch::HmmMapMatcher matcher(&city.net);
  traj::GpsSampler sampler(&city.net, {});

  std::vector<size_t> sizes =
      tiny ? std::vector<size_t>{200, 400}
           : std::vector<size_t>{1000, 1500, 2000, 2500, 3000};
  std::vector<Row> rows;
  printf("%-10s %14s %14s %14s %10s\n", "Data size", "MapMatch (s)",
         "NoisyLabel (s)", "Training (s)", "F1-score");
  for (size_t size : sizes) {
    if (size > city.train.size()) break;
    Row row;
    row.size = size;
    traj::Dataset subset;
    for (size_t i = 0; i < size; ++i) subset.Add(city.train[i]);

    // Map matching: raw GPS -> edge sequences (the paper times the FMM C++
    // map matcher over the training data). GPS sampling is excluded from the
    // timed stage; with --match-threads > 1 the stage runs through
    // MatchBatch, which is thread-count invariant.
    std::vector<traj::RawTrajectory> raws;
    raws.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      auto raw = sampler.Sample(subset[i].traj);
      if (raw.points.size() < 3) continue;
      raws.push_back(std::move(raw));
    }
    Stopwatch mm;
    if (match_threads > 1) {
      for (const auto& r : matcher.MatchBatch(raws, match_threads)) {
        row.matched += r.ok();
      }
    } else {
      mapmatch::HmmMapMatcher::Scratch scratch;
      for (const auto& raw : raws) {
        row.matched += matcher.Match(raw, &scratch).ok();
      }
    }
    row.mapmatch_s = mm.ElapsedSeconds();

    // Noisy labeling: grouping + transition fractions + labels.
    Stopwatch nl;
    core::Preprocessor pre(bench::TunedConfig().preprocess);
    pre.Fit(subset);
    for (const auto& lt : subset.trajs()) {
      for (uint8_t l : pre.NoisyLabels(lt.traj)) row.noisy_ones += l;
    }
    row.noisy_s = nl.ElapsedSeconds();

    // Model training (end-to-end Fit: the headline number of this bench).
    auto cfg = bench::TunedConfig();
    cfg.trainer_threads = trainer_threads;
    Stopwatch tr;
    core::Rl4Oasd model(&city.net, cfg);
    model.Fit(subset);
    row.train_s = tr.ElapsedSeconds();
    row.fit = model.fit_timings();

    const auto scores = bench::Evaluate(
        city.test,
        [&](const traj::MapMatchedTrajectory& t) { return model.Detect(t); });
    row.f1 = scores.overall.f1;
    printf("%-10zu %14.2f %14.2f %14.2f %10.3f   (matched %zu, noisy 1s %zu)\n",
           row.size, row.mapmatch_s, row.noisy_s, row.train_s, row.f1,
           row.matched, row.noisy_ones);
    printf("%-10s %s embed %.2fs, pretrain %.2fs (rsr %.2fs + asd %.2fs), "
           "joint %.2fs\n",
           "", "  fit:", row.fit.embed_s,
           row.fit.pretrain_rsr_s + row.fit.pretrain_asd_s,
           row.fit.pretrain_rsr_s, row.fit.pretrain_asd_s, row.fit.joint_s);
    rows.push_back(row);
  }
  if (!flags.GetString("json").empty()) {
    WriteJson(flags.GetString("json"), rows, trainer_threads, match_threads);
  }
  return 0;
}
