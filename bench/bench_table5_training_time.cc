// Table V reproduction: preprocessing (map matching, noisy labeling) and
// training time as the training-data size grows, plus the F1 the trained
// model reaches. Expected shape (paper): all stages scale linearly with data
// size; F1 saturates. (Sizes are scaled down ~4x from the paper's 4k-12k to
// keep the bench suite fast; the linear trend is the claim under test.)
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "mapmatch/hmm_matcher.h"
#include "traj/gps_sampler.h"

using namespace rl4oasd;

int main() {
  printf("=== Table V: preprocessing and training time ===\n\n");
  auto city = bench::MakeChengduLike(/*num_pairs=*/48, /*seed=*/12);
  mapmatch::HmmMapMatcher matcher(&city.net);
  traj::GpsSampler sampler(&city.net, {});

  printf("%-10s %14s %14s %14s %10s\n", "Data size", "MapMatch (s)",
         "NoisyLabel (s)", "Training (s)", "F1-score");
  for (size_t size : {1000u, 1500u, 2000u, 2500u, 3000u}) {
    if (size > city.train.size()) break;
    traj::Dataset subset;
    for (size_t i = 0; i < size; ++i) subset.Add(city.train[i]);

    // Map matching: raw GPS -> edge sequences (the paper times the FMM C++
    // map matcher over the training data).
    Stopwatch mm;
    size_t matched = 0;
    for (size_t i = 0; i < size; ++i) {
      const auto raw = sampler.Sample(subset[i].traj);
      if (raw.points.size() < 3) continue;
      matched += matcher.Match(raw).ok();
    }
    const double mm_s = mm.ElapsedSeconds();

    // Noisy labeling: grouping + transition fractions + labels.
    Stopwatch nl;
    core::Preprocessor pre(bench::TunedConfig().preprocess);
    pre.Fit(subset);
    size_t ones = 0;
    for (const auto& lt : subset.trajs()) {
      for (uint8_t l : pre.NoisyLabels(lt.traj)) ones += l;
    }
    const double nl_s = nl.ElapsedSeconds();

    // Model training.
    Stopwatch tr;
    core::Rl4Oasd model(&city.net, bench::TunedConfig());
    model.Fit(subset);
    const double tr_s = tr.ElapsedSeconds();

    const auto scores = bench::Evaluate(
        city.test,
        [&](const traj::MapMatchedTrajectory& t) { return model.Detect(t); });
    printf("%-10zu %14.2f %14.2f %14.2f %10.3f   (matched %zu, noisy 1s %zu)\n",
           size, mm_s, nl_s, tr_s, scores.overall.f1, matched, ones);
  }
  return 0;
}
