// Table VI reproduction: the cold-start experiment — F1 as a growing
// fraction of historical trajectories is dropped from every SD pair.
// Expected shape (paper): robust; ~6% degradation at an 80% drop because
// the normal-route features are relative fractions.
#include <cstdio>

#include "bench_util.h"

using namespace rl4oasd;

int main() {
  printf("=== Table VI: cold-start (drop rate vs F1) ===\n\n");
  auto city = bench::MakeChengduLike();
  printf("%-10s %10s %12s\n", "Drop rate", "F1-score", "Train size");
  Rng rng(321);
  for (double drop : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const auto train =
        drop == 0.0 ? city.train : city.train.DropFraction(drop, &rng);
    core::Rl4Oasd model(&city.net, bench::TunedConfig());
    model.Fit(train);
    const auto scores = bench::Evaluate(
        city.test,
        [&](const traj::MapMatchedTrajectory& t) { return model.Detect(t); });
    printf("%-10.1f %10.3f %12zu\n", drop, scores.overall.f1, train.size());
  }
  return 0;
}
