// Shared setup for the reproduction benches: the two synthetic cities
// (Chengdu-like and Xi'an-like), the tuned RL4OASD configuration, and the
// baseline registry. Every bench prints the row/series structure of the
// corresponding paper table or figure.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/ctss.h"
#include "baselines/dbtod.h"
#include "baselines/detector_iface.h"
#include "baselines/iboat.h"
#include "baselines/seq_vae.h"
#include "baselines/transition_frequency.h"
#include "core/rl4oasd.h"
#include "eval/metrics.h"
#include "roadnet/grid_city.h"
#include "traj/generator.h"

namespace rl4oasd::bench {

/// One city's worth of benchmark data.
struct CityData {
  std::string name;
  roadnet::RoadNetwork net;
  traj::Dataset train;
  traj::Dataset test;
  traj::GeneratorConfig generator_config;
};

/// Chengdu-like synthetic city (paper Table II: 4,885 segments, anomalous
/// ratio 0.7%; the synthetic anomaly ratio is raised to 4% so the test split
/// holds enough anomalies for stable metric estimates — see EXPERIMENTS.md).
inline CityData MakeChengduLike(int num_pairs = 40, uint64_t seed = 12) {
  CityData city;
  city.name = "Chengdu";
  roadnet::GridCityConfig g;
  g.origin_lat = 30.60;
  g.origin_lon = 104.00;
  g.seed = 7;
  city.net = roadnet::BuildGridCity(g);
  traj::GeneratorConfig t;
  t.num_sd_pairs = num_pairs;
  t.min_trajs_per_pair = 40;
  t.max_trajs_per_pair = 150;
  t.anomaly_ratio = 0.04;
  t.seed = seed;
  city.generator_config = t;
  traj::TrajectoryGenerator gen(&city.net, t);
  auto full = gen.Generate();
  Rng rng(33);
  auto [train, test] = full.Split(full.size() * 7 / 10, &rng);
  city.train = std::move(train);
  city.test = std::move(test);
  return city;
}

/// Xi'an-like synthetic city (5,052 segments, anomalous ratio 1.5% -> 6%;
/// generally shorter trajectories than Chengdu, as in the paper).
inline CityData MakeXianLike(int num_pairs = 32, uint64_t seed = 77) {
  CityData city;
  city.name = "Xi'an";
  roadnet::GridCityConfig g;
  g.rows = 37;
  g.cols = 36;
  g.origin_lat = 34.26;
  g.origin_lon = 108.94;
  g.arterial_every = 6;
  g.seed = 11;
  city.net = roadnet::BuildGridCity(g);
  traj::GeneratorConfig t;
  t.num_sd_pairs = num_pairs;
  t.min_trajs_per_pair = 40;
  t.max_trajs_per_pair = 120;
  t.anomaly_ratio = 0.06;
  t.min_pair_dist_m = 2000;
  t.max_pair_dist_m = 5500;
  t.seed = seed;
  city.generator_config = t;
  traj::TrajectoryGenerator gen(&city.net, t);
  auto full = gen.Generate();
  Rng rng(44);
  auto [train, test] = full.Split(full.size() * 7 / 10, &rng);
  city.train = std::move(train);
  city.test = std::move(test);
  return city;
}

/// The tuned RL4OASD configuration for the synthetic workload. alpha/delta
/// differ from the paper's 0.5/0.4 because the synthetic route-popularity
/// profile differs (3 normal routes at ~0.55/0.27/0.18; the parameter-study
/// bench sweeps both) — see DESIGN.md.
inline core::Rl4OasdConfig TunedConfig() {
  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;
  cfg.rsr.embed_dim = 32;
  cfg.rsr.nrf_dim = 32;
  cfg.rsr.hidden_dim = 32;
  cfg.asd.label_dim = 32;
  cfg.embedding.dim = 32;
  cfg.embedding.epochs = 1;
  cfg.embedding.random_walks_per_edge = 1;
  cfg.pretrain_samples = 200;
  cfg.pretrain_epochs = 4;
  cfg.joint_samples = 400;
  cfg.epochs_per_traj = 1;
  return cfg;
}

/// Builds the seven baselines of Table III, sized so the whole bench suite
/// finishes in minutes.
inline std::vector<std::unique_ptr<baselines::SubtrajectoryDetector>>
MakeBaselines(const roadnet::RoadNetwork* net) {
  std::vector<std::unique_ptr<baselines::SubtrajectoryDetector>> out;
  out.push_back(std::make_unique<baselines::IboatDetector>());
  out.push_back(std::make_unique<baselines::DbtodDetector>(net));
  for (auto v : {baselines::VaeVariant::kGmVsae, baselines::VaeVariant::kSdVsae,
                 baselines::VaeVariant::kSae, baselines::VaeVariant::kVsae}) {
    baselines::SeqVaeConfig cfg;
    cfg.variant = v;
    cfg.epochs = 1;
    cfg.max_train_trajs = 1200;
    out.push_back(std::make_unique<baselines::SeqVaeDetector>(net, cfg));
  }
  out.push_back(std::make_unique<baselines::CtssDetector>(net));
  return out;
}

/// Evaluates a label-producing callback with the paper's grouped metrics.
template <typename DetectFn>
eval::GroupedScores Evaluate(const traj::Dataset& test, DetectFn&& fn) {
  return eval::EvaluateGrouped(test, std::forward<DetectFn>(fn));
}

/// A labeled development set for baseline threshold tuning (paper: 100
/// trajectories with manual labels).
inline traj::Dataset DevSet(const traj::Dataset& test, size_t n = 100) {
  traj::Dataset dev;
  for (size_t i = 0; i < std::min(n, test.size()); ++i) dev.Add(test[i]);
  return dev;
}

}  // namespace rl4oasd::bench
