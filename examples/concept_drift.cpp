// Concept drift: the notion of "normal route" changes during the day (a
// popular route congests, drivers shift to an alternative). A model trained
// on the morning false-positives in the evening; the online learning
// strategy (FineTune on newly recorded data) adapts.
//
//   ./concept_drift
#include <cstdio>

#include "core/rl4oasd.h"
#include "eval/metrics.h"
#include "roadnet/grid_city.h"
#include "traj/generator.h"

using namespace rl4oasd;

namespace {

double EvalOn(const core::Rl4Oasd& model, const traj::Dataset& part) {
  eval::F1Evaluator ev;
  for (const auto& lt : part.trajs()) {
    ev.Add(lt.labels, model.Detect(lt.traj));
  }
  return ev.Compute().f1;
}

}  // namespace

int main() {
  const auto net = roadnet::BuildGridCity({});
  traj::GeneratorConfig gen_cfg;
  gen_cfg.num_sd_pairs = 16;
  gen_cfg.min_trajs_per_pair = 150;
  gen_cfg.max_trajs_per_pair = 300;
  gen_cfg.anomaly_ratio = 0.05;
  gen_cfg.drift_parts = 2;  // morning vs evening popularity rotation
  traj::TrajectoryGenerator generator(&net, gen_cfg);
  const auto full = generator.Generate();

  traj::Dataset morning, evening;
  for (const auto& lt : full.trajs()) {
    (lt.traj.start_time < 43200.0 ? morning : evening).Add(lt);
  }
  printf("morning: %zu trajectories, evening: %zu trajectories\n",
         morning.size(), evening.size());

  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;

  // Model trained on the morning only.
  core::Rl4Oasd stale(&net, cfg);
  stale.Fit(morning);

  // Same starting point, then fine-tuned as evening data is recorded.
  core::Rl4Oasd adapted(&net, cfg);
  adapted.Fit(morning);
  adapted.FineTune(evening, /*max_samples=*/300);

  printf("\n%-24s %10s %10s\n", "", "morning F1", "evening F1");
  printf("%-24s %10.3f %10.3f   <- degrades under drift\n",
         "trained on morning only", EvalOn(stale, morning),
         EvalOn(stale, evening));
  printf("%-24s %10.3f %10.3f   <- online learning adapts\n",
         "fine-tuned on evening", EvalOn(adapted, morning),
         EvalOn(adapted, evening));
  return 0;
}
