// Fleet monitoring: the paper's motivating ride-hailing scenario at service
// scale. A trained detector watches an interleaved stream of GPS-derived
// road segments from hundreds of concurrent trips (multiple ingest
// threads), raising an alert the moment any vehicle's route deviates into
// an anomalous subtrajectory.
//
//   ./fleet_monitoring
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/rl4oasd.h"
#include "roadnet/grid_city.h"
#include "serve/fleet.h"
#include "traj/generator.h"

using namespace rl4oasd;

namespace {

/// Prints each alert as it fires (stdout is line-buffered enough for a demo;
/// a production sink would enqueue to a message bus instead).
class PrintingSink : public serve::AlertSink {
 public:
  void OnAlert(const serve::Alert& alert) override {
    const int n = count_.fetch_add(1) + 1;
    if (n <= 10) {  // show the first few, count the rest
      printf("  ALERT vehicle %lld: anomalous subtrajectory [%d, %d) "
             "(detected at segment %zu)\n",
             static_cast<long long>(alert.vehicle_id), alert.range.begin,
             alert.range.end, alert.position);
    }
  }
  int count() const { return count_.load(); }

 private:
  std::atomic<int> count_{0};
};

}  // namespace

int main() {
  // --- Offline: build the city, train the detector (as in quickstart). ---
  roadnet::GridCityConfig city_cfg;
  city_cfg.rows = 20;
  city_cfg.cols = 20;
  const auto net = roadnet::BuildGridCity(city_cfg);

  traj::GeneratorConfig gen_cfg;
  gen_cfg.num_sd_pairs = 12;
  gen_cfg.min_trajs_per_pair = 60;
  gen_cfg.max_trajs_per_pair = 150;
  gen_cfg.anomaly_ratio = 0.05;
  gen_cfg.min_pair_dist_m = 1200;
  gen_cfg.max_pair_dist_m = 3500;
  traj::TrajectoryGenerator generator(&net, gen_cfg);
  auto dataset = generator.Generate();
  Rng rng(1);
  auto [train, live] = dataset.Split(dataset.size() * 7 / 10, &rng);

  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;
  core::Rl4Oasd model(&net, cfg);
  model.Fit(train);
  printf("detector trained on %zu historical trips.\n\n", train.size());

  // --- Online: every "live" trajectory becomes a concurrent trip. ---
  PrintingSink sink;
  serve::FleetConfig fleet_cfg;
  serve::FleetMonitor monitor(&model, fleet_cfg, &sink);

  printf("streaming %zu concurrent trips from 4 ingest threads...\n",
         live.size());
  Stopwatch sw;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      // Each thread owns a slice of the fleet and interleaves its trips
      // point by point, as an ingest shard would.
      std::vector<size_t> mine;
      for (size_t i = static_cast<size_t>(th); i < live.size();
           i += kThreads) {
        if (live[i].traj.edges.size() >= 2) mine.push_back(i);
      }
      for (size_t i : mine) {
        const auto& t = live[i].traj;
        (void)monitor.StartTrip(static_cast<int64_t>(i), t.sd(),
                                t.start_time);
      }
      bool progressed = true;
      for (size_t step = 0; progressed; ++step) {
        progressed = false;
        for (size_t i : mine) {
          const auto& t = live[i].traj;
          if (step < t.edges.size()) {
            (void)monitor.Feed(static_cast<int64_t>(i), t.edges[step],
                               t.start_time + 2.0 * static_cast<double>(step));
            progressed = true;
          } else if (step == t.edges.size()) {
            (void)monitor.EndTrip(static_cast<int64_t>(i));
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const double elapsed = sw.ElapsedSeconds();

  const serve::FleetStats stats = monitor.Stats();
  printf("\n  ... %d alerts total\n\n", sink.count());
  printf("fleet summary:\n");
  printf("  trips:   %lld started, %lld finished\n",
         static_cast<long long>(stats.trips_started),
         static_cast<long long>(stats.trips_finished));
  printf("  points:  %lld (%.1f us/point across the fleet)\n",
         static_cast<long long>(stats.points_processed),
         elapsed * 1e6 / static_cast<double>(stats.points_processed));
  printf("  alerts:  %lld\n", static_cast<long long>(stats.alerts_emitted));
  printf("  active:  %zu (all trips drained)\n", monitor.ActiveTrips());
  return 0;
}
