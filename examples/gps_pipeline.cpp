// Full-system pipeline: raw GPS fixes -> HMM map matching -> online
// anomalous-subtrajectory detection. This is the complete data path a
// production deployment runs: vehicles emit noisy (lat, lon, t) fixes every
// 2-4 seconds, the map matcher snaps them onto road segments, and RL4OASD
// labels the resulting edge stream.
//
//   ./gps_pipeline
#include <cstdio>

#include "core/rl4oasd.h"
#include "eval/metrics.h"
#include "mapmatch/hmm_matcher.h"
#include "roadnet/grid_city.h"
#include "traj/generator.h"
#include "traj/gps_sampler.h"

using namespace rl4oasd;

int main() {
  const auto net = roadnet::BuildGridCity({});
  traj::GeneratorConfig gen_cfg;
  gen_cfg.num_sd_pairs = 12;
  gen_cfg.min_trajs_per_pair = 60;
  gen_cfg.max_trajs_per_pair = 140;
  gen_cfg.anomaly_ratio = 0.08;
  traj::TrajectoryGenerator generator(&net, gen_cfg);
  auto dataset = generator.Generate();
  Rng rng(1);
  auto [historical, incoming] = dataset.Split(dataset.size() * 8 / 10, &rng);

  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;
  core::Rl4Oasd model(&net, cfg);
  model.Fit(historical);

  // Simulate the GPS receiver and run the full pipeline on incoming trips.
  traj::GpsSamplerConfig gps_cfg;
  gps_cfg.noise_sigma_m = 10.0;  // consumer-grade GPS noise
  traj::GpsSampler gps(&net, gps_cfg);
  mapmatch::HmmMapMatcher matcher(&net);

  int processed = 0, match_failures = 0;
  eval::F1Evaluator evaluator;
  for (const auto& trip : incoming.trajs()) {
    if (processed >= 150) break;
    const auto raw = gps.Sample(trip.traj);  // noisy fixes, 2-4 s apart
    if (raw.points.size() < 5) continue;
    auto matched = matcher.Match(raw);
    if (!matched.ok()) {
      ++match_failures;
      continue;
    }
    const auto labels = model.Detect(*matched);
    ++processed;
    if (processed <= 3) {
      printf("trip %lld: %zu GPS fixes -> %zu matched segments, %zu "
             "anomalous runs\n",
             (long long)trip.traj.id, raw.points.size(),
             matched->edges.size(),
             traj::ExtractAnomalousRuns(labels).size());
    }
    // Evaluate only when map matching recovered the exact segmentation
    // (otherwise ground-truth indices do not line up with the matched path).
    if (matched->edges == trip.traj.edges) {
      evaluator.Add(trip.labels, labels);
    }
  }
  const auto scores = evaluator.Compute();
  printf("\nprocessed %d trips (%d map-matching failures)\n", processed,
         match_failures);
  printf("exact-match subset quality: P=%.3f R=%.3f F1=%.3f\n",
         scores.precision, scores.recall, scores.f1);
  return 0;
}
