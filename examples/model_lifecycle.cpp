// Model lifecycle: train a detector, persist it as a single-file bundle,
// audit the bundle's contents, reload it without the training data, and
// serve detections with evidence explanations — the offline-train /
// online-serve split a deployment uses.
//
//   ./model_lifecycle
#include <cstdio>

#include "core/explainer.h"
#include "core/rl4oasd.h"
#include "io/model_io.h"
#include "roadnet/grid_city.h"
#include "traj/generator.h"

using namespace rl4oasd;

int main() {
  // --- Training side ------------------------------------------------------
  roadnet::GridCityConfig city_cfg;
  city_cfg.rows = 20;
  city_cfg.cols = 20;
  const auto net = roadnet::BuildGridCity(city_cfg);

  traj::GeneratorConfig gen_cfg;
  gen_cfg.num_sd_pairs = 10;
  gen_cfg.min_trajs_per_pair = 60;
  gen_cfg.max_trajs_per_pair = 140;
  gen_cfg.anomaly_ratio = 0.05;
  gen_cfg.min_pair_dist_m = 1200;
  gen_cfg.max_pair_dist_m = 3500;
  traj::TrajectoryGenerator generator(&net, gen_cfg);
  auto dataset = generator.Generate();
  Rng rng(1);
  auto [train, test] = dataset.Split(dataset.size() * 7 / 10, &rng);

  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;
  core::Rl4Oasd trained(&net, cfg);
  trained.Fit(train);

  const std::string bundle = "/tmp/rl4oasd_lifecycle.rlmb";
  if (auto st = io::SaveModel(trained, bundle); !st.ok()) {
    printf("save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  printf("saved bundle: %s\n\n", bundle.c_str());

  // --- Audit: what is inside the bundle? ----------------------------------
  auto desc = io::DescribeModel(bundle);
  if (!desc.ok()) {
    printf("describe failed: %s\n", desc.status().ToString().c_str());
    return 1;
  }
  printf("bundle holds %zu weights across %zu+%zu tensors, statistics from "
         "%lld trips\n\n",
         desc->total_weights, desc->rsr_tensors.size(),
         desc->asd_tensors.size(), static_cast<long long>(desc->num_trajs));

  // --- Serving side: reload with only the road network --------------------
  auto served = io::LoadModel(&net, bundle);
  if (!served.ok()) {
    printf("load failed: %s\n", served.status().ToString().c_str());
    return 1;
  }
  core::AnomalyExplainer explainer(&net, &(*served)->preprocessor());

  int shown = 0;
  for (const auto& lt : test.trajs()) {
    if (lt.traj.edges.size() < 2 || shown >= 3) continue;
    const auto labels = (*served)->Detect(lt.traj);
    const auto reports = explainer.Explain(lt.traj, labels);
    if (reports.empty()) continue;
    printf("trip %lld:\n", static_cast<long long>(lt.traj.id));
    for (const auto& r : reports) {
      printf("  %s\n", r.Summary().c_str());
    }
    ++shown;
  }

  // Loaded and original models agree exactly.
  int mismatches = 0;
  for (size_t i = 0; i < std::min<size_t>(test.size(), 100); ++i) {
    if ((*served)->Detect(test[i].traj) != trained.Detect(test[i].traj)) {
      ++mismatches;
    }
  }
  printf("\nround-trip check: %d/100 label mismatches (expected 0)\n",
         mismatches);
  std::remove(bundle.c_str());
  return mismatches == 0 ? 0 : 1;
}
