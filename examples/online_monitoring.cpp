// Online monitoring: the ride-hailing scenario from the paper's
// introduction. A dispatcher watches ongoing trips; as each newly generated
// road segment arrives, the detector labels it and raises an alert the
// moment an anomalous subtrajectory forms — with per-point latency printed
// (the paper's claim: < 0.1 ms per point).
//
//   ./online_monitoring
#include <cstdio>

#include "common/stopwatch.h"
#include "core/rl4oasd.h"
#include "roadnet/grid_city.h"
#include "traj/generator.h"

using namespace rl4oasd;

int main() {
  const auto net = roadnet::BuildGridCity({});
  traj::GeneratorConfig gen_cfg;
  gen_cfg.num_sd_pairs = 16;
  gen_cfg.min_trajs_per_pair = 60;
  gen_cfg.max_trajs_per_pair = 150;
  gen_cfg.anomaly_ratio = 0.05;
  traj::TrajectoryGenerator generator(&net, gen_cfg);
  auto dataset = generator.Generate();
  Rng rng(1);
  auto [historical, live] = dataset.Split(dataset.size() * 8 / 10, &rng);

  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;
  core::Rl4Oasd model(&net, cfg);
  model.Fit(historical);

  // Watch live trips; stream segments one at a time into a session.
  int trips = 0, alerts = 0;
  TimingAccumulator per_point;
  for (const auto& trip : live.trajs()) {
    if (trips >= 200) break;
    ++trips;
    auto session = model.StartSession(trip.traj.sd(), trip.traj.start_time);
    size_t alerted_runs = 0;
    for (size_t i = 0; i < trip.traj.edges.size(); ++i) {
      Stopwatch sw;
      session.Feed(trip.traj.edges[i]);
      const auto anomalies = session.CurrentAnomalies();
      per_point.Add(sw.ElapsedSeconds());
      if (anomalies.size() > alerted_runs) {
        alerted_runs = anomalies.size();
        ++alerts;
        if (alerts <= 5) {
          const auto& run = anomalies.back();
          printf("ALERT trip %lld: driver off normal route since segment %d "
                 "(now at segment %zu of the trip)\n",
                 (long long)trip.traj.id, run.begin, i);
        }
      }
    }
    session.Finish();
  }
  printf("\nmonitored %d trips, raised %d alerts\n", trips, alerts);
  printf("average per-point latency: %.1f us (paper target < 100 us: %s)\n",
         per_point.MeanSeconds() * 1e6,
         per_point.MeanSeconds() * 1e6 < 100.0 ? "met" : "missed");
  return 0;
}
