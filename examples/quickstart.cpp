// Quickstart: build a synthetic city, generate a trajectory workload, train
// RL4OASD without any labeled data, and detect anomalous subtrajectories.
//
//   ./quickstart
#include <cstdio>

#include "core/rl4oasd.h"
#include "eval/metrics.h"
#include "roadnet/grid_city.h"
#include "traj/generator.h"

using namespace rl4oasd;

int main() {
  // 1. A road network. BuildGridCity gives a ~5,000-segment synthetic city;
  //    RoadNetwork::LoadCsv loads a real one from CSV.
  roadnet::GridCityConfig city_cfg;
  city_cfg.rows = 20;
  city_cfg.cols = 20;
  const auto net = roadnet::BuildGridCity(city_cfg);
  printf("city: %zu segments, %zu intersections\n", net.NumEdges(),
         net.NumVertices());

  // 2. A trajectory workload: SD pairs with a few popular normal routes and
  //    a small fraction of detours (ground truth recorded for evaluation).
  traj::GeneratorConfig gen_cfg;
  gen_cfg.num_sd_pairs = 12;
  gen_cfg.min_trajs_per_pair = 60;
  gen_cfg.max_trajs_per_pair = 150;
  gen_cfg.anomaly_ratio = 0.05;
  gen_cfg.min_pair_dist_m = 1200;
  gen_cfg.max_pair_dist_m = 3500;
  traj::TrajectoryGenerator generator(&net, gen_cfg);
  auto dataset = generator.Generate();
  Rng rng(1);
  auto [train, test] = dataset.Split(dataset.size() * 7 / 10, &rng);
  printf("workload: %zu train / %zu test trajectories over %zu SD pairs\n",
         train.size(), test.size(), train.NumSdPairs());

  // 3. Train RL4OASD. No ground-truth labels are used: the model derives
  //    noisy labels and normal-route features from the historical data.
  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;   // noisy-label threshold
  cfg.preprocess.delta = 0.12;  // normal-route threshold
  cfg.detector.delay_d = 2;
  core::Rl4Oasd model(&net, cfg);
  model.Fit(train);
  printf("model trained.\n\n");

  // 4. Detect: per-segment 0/1 labels; 1-runs are anomalous subtrajectories.
  int shown = 0;
  for (const auto& lt : test.trajs()) {
    if (!lt.HasAnomaly() || shown >= 3) continue;
    const auto labels = model.Detect(lt.traj);
    printf("trajectory %lld (%zu segments):\n", (long long)lt.traj.id,
           lt.traj.edges.size());
    for (const auto& run : traj::ExtractAnomalousRuns(labels)) {
      printf("  anomalous subtrajectory: segments [%d, %d)  edges", run.begin,
             run.end);
      for (int i = run.begin; i < run.end; ++i) {
        printf(" %d", lt.traj.edges[i]);
      }
      printf("\n");
    }
    ++shown;
  }

  // 5. Aggregate quality against the generator's ground truth.
  eval::F1Evaluator evaluator;
  for (const auto& lt : test.trajs()) {
    evaluator.Add(lt.labels, model.Detect(lt.traj));
  }
  const auto scores = evaluator.Compute();
  printf("\ntest set: precision=%.3f recall=%.3f F1=%.3f TF1=%.3f\n",
         scores.precision, scores.recall, scores.f1, scores.tf1);
  return 0;
}
