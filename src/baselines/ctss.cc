#include "baselines/ctss.h"

#include <algorithm>
#include <limits>
#include <map>

namespace rl4oasd::baselines {

void CtssDetector::Fit(const traj::Dataset& train) {
  reference_.clear();
  for (const auto& [sd, idxs] : train.Groups()) {
    // Most frequent edge sequence in the group becomes the reference route.
    std::map<std::vector<traj::EdgeId>, int64_t> counts;
    for (size_t i : idxs) {
      counts[train[i].traj.edges] += 1;
    }
    const std::vector<traj::EdgeId>* best = nullptr;
    int64_t best_count = -1;
    for (const auto& [route, count] : counts) {
      if (count > best_count) {
        best_count = count;
        best = &route;
      }
    }
    if (best != nullptr) reference_[sd] = *best;
  }
}

std::vector<double> CtssDetector::Scores(
    const traj::MapMatchedTrajectory& t) const {
  const size_t n = t.edges.size();
  std::vector<double> scores(n, 0.0);
  auto it = reference_.find(t.sd());
  if (it == reference_.end() || it->second.empty() || n == 0) return scores;
  const auto& ref = it->second;
  const size_t m = ref.size();

  // Midpoint polylines.
  std::vector<roadnet::LatLon> p(n), q(m);
  for (size_t i = 0; i < n; ++i) p[i] = net_->EdgeMidpoint(t.edges[i]);
  for (size_t j = 0; j < m; ++j) q[j] = net_->EdgeMidpoint(ref[j]);

  // Incremental discrete Frechet DP: row i holds dF(P[0..i], Q[0..j]).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(m, kInf), cur(m, kInf);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double d = roadnet::ApproxDistanceMeters(p[i], q[j]);
      double reach;
      if (i == 0 && j == 0) {
        reach = d;
      } else if (i == 0) {
        reach = std::max(cur[j - 1], d);
      } else if (j == 0) {
        reach = std::max(prev[j], d);
      } else {
        reach = std::max(std::min({prev[j - 1], prev[j], cur[j - 1]}), d);
      }
      cur[j] = reach;
    }
    // Deviation of the current partial route: best alignment against any
    // reference prefix.
    scores[i] = *std::min_element(cur.begin(), cur.end());
    std::swap(prev, cur);
    std::fill(cur.begin(), cur.end(), kInf);
  }
  return scores;
}

}  // namespace rl4oasd::baselines
