// CTSS (Zhang et al., TKDE 2020): continuous trajectory similarity search
// for online outlier detection. The ongoing trajectory is compared against a
// reference (most popular) route of its SD pair with discrete Frechet
// distance; the per-point anomaly score is the deviation of the current
// partial route from the best-matching reference prefix. The DP row update
// per incoming point gives the quadratic per-trajectory cost the paper's
// efficiency study observes (Figures 3-4).
#pragma once

#include <unordered_map>
#include <vector>

#include "baselines/detector_iface.h"
#include "roadnet/road_network.h"

namespace rl4oasd::baselines {

class CtssDetector : public ScoreBasedDetector {
 public:
  explicit CtssDetector(const roadnet::RoadNetwork* net) : net_(net) {
    threshold_ = 300.0;  // meters; tuned on the dev set
  }

  std::string name() const override { return "CTSS"; }

  /// Learns the reference route (most frequent) per SD pair.
  void Fit(const traj::Dataset& train) override;

  /// Per-point Frechet deviation (meters) from the reference route.
  std::vector<double> Scores(
      const traj::MapMatchedTrajectory& t) const override;

 private:
  const roadnet::RoadNetwork* net_;
  std::unordered_map<traj::SdPair, std::vector<traj::EdgeId>,
                     traj::SdPairHash>
      reference_;
};

}  // namespace rl4oasd::baselines
