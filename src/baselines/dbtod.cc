#include "baselines/dbtod.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace rl4oasd::baselines {

namespace {
int64_t Key(traj::EdgeId a, traj::EdgeId b) {
  return (static_cast<int64_t>(a) << 32) | static_cast<uint32_t>(b);
}
}  // namespace

DbtodDetector::DbtodDetector(const roadnet::RoadNetwork* net,
                             DbtodConfig config)
    : net_(net), config_(config) {
  threshold_ = 1.5;
}

double DbtodDetector::TurnAngle(traj::EdgeId a, traj::EdgeId b) const {
  const auto& ea = net_->edge(a);
  const auto& eb = net_->edge(b);
  const auto& a0 = net_->vertex(ea.from).pos;
  const auto& a1 = net_->vertex(ea.to).pos;
  const auto& b0 = net_->vertex(eb.from).pos;
  const auto& b1 = net_->vertex(eb.to).pos;
  const double v1x = a1.lon - a0.lon, v1y = a1.lat - a0.lat;
  const double v2x = b1.lon - b0.lon, v2y = b1.lat - b0.lat;
  const double n1 = std::hypot(v1x, v1y), n2 = std::hypot(v2x, v2y);
  if (n1 == 0.0 || n2 == 0.0) return 0.0;
  double c = (v1x * v2x + v1y * v2y) / (n1 * n2);
  c = std::clamp(c, -1.0, 1.0);
  return std::acos(c);
}

void DbtodDetector::Features(traj::EdgeId prev, traj::EdgeId cand,
                             double out[kNumFeatures]) const {
  auto it = transition_count_.find(Key(prev, cand));
  const double pop = it == transition_count_.end() ? 0.0 : it->second;
  out[0] = std::log1p(pop);
  const auto rc = net_->edge(cand).road_class;
  out[1] = rc == roadnet::RoadClass::kArterial ? 1.0 : 0.0;
  out[2] = rc == roadnet::RoadClass::kCollector ? 1.0 : 0.0;
  out[3] = rc == roadnet::RoadClass::kLocal ? 1.0 : 0.0;
  const double angle = TurnAngle(prev, cand);
  out[4] = angle < 0.5 ? 1.0 : 0.0;  // going straight
  out[5] = angle;                    // turning magnitude
  out[6] = net_->edge(cand).road_class == net_->edge(prev).road_class
               ? 1.0
               : 0.0;  // stays on the same road level
}

double DbtodDetector::TransitionLogProb(traj::EdgeId prev,
                                        traj::EdgeId next) const {
  const auto& succ = net_->NextEdges(prev);
  if (succ.empty()) return 0.0;
  double feats[kNumFeatures];
  double max_logit = -1e30;
  std::vector<double> logits(succ.size());
  int next_idx = -1;
  for (size_t k = 0; k < succ.size(); ++k) {
    Features(prev, succ[k], feats);
    double logit = 0.0;
    for (int f = 0; f < kNumFeatures; ++f) logit += weights_[f] * feats[f];
    logits[k] = logit;
    max_logit = std::max(max_logit, logit);
    if (succ[k] == next) next_idx = static_cast<int>(k);
  }
  if (next_idx < 0) return -10.0;  // transition not even on the graph
  double z = 0.0;
  for (double logit : logits) z += std::exp(logit - max_logit);
  return logits[next_idx] - max_logit - std::log(z);
}

void DbtodDetector::Fit(const traj::Dataset& train) {
  transition_count_.clear();
  for (const auto& lt : train.trajs()) {
    const auto& edges = lt.traj.edges;
    for (size_t i = 1; i < edges.size(); ++i) {
      transition_count_[Key(edges[i - 1], edges[i])] += 1.0;
    }
  }
  // Maximum-likelihood training of the multinomial logistic model with SGD.
  std::fill(std::begin(weights_), std::end(weights_), 0.0);
  Rng rng(config_.seed);
  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  double feats[kNumFeatures];
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr = config_.lr / (1.0 + epoch);
    for (size_t idx : order) {
      const auto& edges = train[idx].traj.edges;
      for (size_t i = 1; i < edges.size(); ++i) {
        const auto& succ = net_->NextEdges(edges[i - 1]);
        if (succ.size() < 2) continue;
        // Softmax gradient: sum_k (p_k - 1[k==obs]) * f_k.
        std::vector<double> logits(succ.size());
        double max_logit = -1e30;
        for (size_t k = 0; k < succ.size(); ++k) {
          Features(edges[i - 1], succ[k], feats);
          double logit = 0.0;
          for (int f = 0; f < kNumFeatures; ++f) {
            logit += weights_[f] * feats[f];
          }
          logits[k] = logit;
          max_logit = std::max(max_logit, logit);
        }
        double z = 0.0;
        for (double& logit : logits) {
          logit = std::exp(logit - max_logit);
          z += logit;
        }
        for (size_t k = 0; k < succ.size(); ++k) {
          const double p = logits[k] / z;
          const double indicator = succ[k] == edges[i] ? 1.0 : 0.0;
          Features(edges[i - 1], succ[k], feats);
          for (int f = 0; f < kNumFeatures; ++f) {
            weights_[f] -= lr * (p - indicator) * feats[f];
          }
        }
      }
    }
  }
}

std::vector<double> DbtodDetector::Scores(
    const traj::MapMatchedTrajectory& t) const {
  std::vector<double> scores(t.edges.size(), 0.0);
  for (size_t i = 1; i < t.edges.size(); ++i) {
    scores[i] = -TransitionLogProb(t.edges[i - 1], t.edges[i]);
  }
  return scores;
}

}  // namespace rl4oasd::baselines
