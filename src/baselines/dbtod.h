// DBTOD (Wu et al., CIKM 2017): a probabilistic model of human driving
// behaviour. The probability of taking a successor segment at an
// intersection is a multinomial logistic model over cheap per-candidate
// features (historical transition popularity, road level, turning angle);
// the per-point anomaly score of an ongoing trajectory is the negative
// log-likelihood of the observed transition. A light model with
// low-dimensional features, which is why it is the fastest method in the
// paper's efficiency study.
#pragma once

#include <unordered_map>
#include <vector>

#include "baselines/detector_iface.h"
#include "roadnet/road_network.h"

namespace rl4oasd::baselines {

struct DbtodConfig {
  int epochs = 3;
  double lr = 0.05;
  uint64_t seed = 77;
};

class DbtodDetector : public ScoreBasedDetector {
 public:
  DbtodDetector(const roadnet::RoadNetwork* net, DbtodConfig config = {});

  std::string name() const override { return "DBTOD"; }

  void Fit(const traj::Dataset& train) override;

  std::vector<double> Scores(
      const traj::MapMatchedTrajectory& t) const override;

  static constexpr int kNumFeatures = 7;

 private:
  /// Feature vector of candidate successor `cand` after `prev`.
  void Features(traj::EdgeId prev, traj::EdgeId cand,
                double out[kNumFeatures]) const;

  /// P(cand | prev) over NextEdges(prev) under the current weights.
  double TransitionLogProb(traj::EdgeId prev, traj::EdgeId next) const;

  /// Turning angle (radians, [0, pi]) between two consecutive segments.
  double TurnAngle(traj::EdgeId a, traj::EdgeId b) const;

  const roadnet::RoadNetwork* net_;
  DbtodConfig config_;
  double weights_[kNumFeatures] = {0};
  /// Global transition popularity: count of historical traversals.
  std::unordered_map<int64_t, double> transition_count_;
};

}  // namespace rl4oasd::baselines
