#include "baselines/detector_iface.h"

#include <algorithm>

#include "eval/metrics.h"

namespace rl4oasd::baselines {

std::vector<uint8_t> ScoreBasedDetector::Detect(
    const traj::MapMatchedTrajectory& t) const {
  const auto scores = Scores(t);
  std::vector<uint8_t> labels(scores.size(), 0);
  for (size_t i = 1; i + 1 < scores.size(); ++i) {
    labels[i] = scores[i] > threshold_ ? 1 : 0;
  }
  return labels;
}

void ScoreBasedDetector::Tune(const traj::Dataset& dev) {
  // Gather the dev-set score distribution once.
  std::vector<std::vector<double>> all_scores;
  all_scores.reserve(dev.size());
  std::vector<double> pool;
  for (const auto& lt : dev.trajs()) {
    all_scores.push_back(Scores(lt.traj));
    for (double s : all_scores.back()) pool.push_back(s);
  }
  if (pool.empty()) return;
  std::sort(pool.begin(), pool.end());

  // Candidate thresholds: quantiles of the pooled score distribution.
  std::vector<double> candidates;
  constexpr int kNumQuantiles = 40;
  for (int q = 1; q < kNumQuantiles; ++q) {
    candidates.push_back(
        pool[pool.size() * static_cast<size_t>(q) / kNumQuantiles]);
  }
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  double best_f1 = -1.0;
  double best_threshold = threshold_;
  for (double cand : candidates) {
    eval::F1Evaluator evaluator;
    for (size_t k = 0; k < dev.size(); ++k) {
      const auto& scores = all_scores[k];
      std::vector<uint8_t> labels(scores.size(), 0);
      for (size_t i = 1; i + 1 < scores.size(); ++i) {
        labels[i] = scores[i] > cand ? 1 : 0;
      }
      evaluator.Add(dev[k].labels, labels);
    }
    const double f1 = evaluator.Compute().f1;
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = cand;
    }
  }
  threshold_ = best_threshold;
}

}  // namespace rl4oasd::baselines
