// Common interface for all online anomalous-subtrajectory detectors (the
// baselines of Table III plus RL4OASD itself), and the score-threshold
// machinery used to adapt whole-trajectory methods to the subtrajectory
// task (paper Section V-A, "Baseline"): score-based methods emit a per-point
// anomaly score, and the threshold is tuned on a small labeled development
// set to maximize F1.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "traj/dataset.h"
#include "traj/types.h"

namespace rl4oasd::baselines {

/// A detector labels every road segment of an ongoing trajectory as normal
/// (0) or anomalous (1).
class SubtrajectoryDetector {
 public:
  virtual ~SubtrajectoryDetector() = default;

  virtual std::string name() const = 0;

  /// Trains / fits on historical data.
  virtual void Fit(const traj::Dataset& train) = 0;

  /// Labels one trajectory.
  virtual std::vector<uint8_t> Detect(
      const traj::MapMatchedTrajectory& t) const = 0;

  /// Hook for threshold tuning on a labeled development set. Default: no-op.
  virtual void Tune(const traj::Dataset& dev) { (void)dev; }
};

/// Base for detectors that compute a per-point anomaly score and then apply
/// a tuned threshold (DBTOD, CTSS, the VSAE family, transition frequency).
class ScoreBasedDetector : public SubtrajectoryDetector {
 public:
  /// Per-point anomaly scores (higher = more anomalous).
  virtual std::vector<double> Scores(
      const traj::MapMatchedTrajectory& t) const = 0;

  /// score > threshold -> label 1; source/destination forced to 0.
  std::vector<uint8_t> Detect(
      const traj::MapMatchedTrajectory& t) const override;

  /// Sweeps candidate thresholds (score quantiles on the dev set) and keeps
  /// the one maximizing F1.
  void Tune(const traj::Dataset& dev) override;

  double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }

 protected:
  double threshold_ = 0.5;
};

}  // namespace rl4oasd::baselines
