#include "baselines/iboat.h"

#include <algorithm>

#include "eval/metrics.h"

namespace rl4oasd::baselines {

void IboatDetector::Fit(const traj::Dataset& train) {
  groups_.clear();
  for (const auto& [sd, idxs] : train.Groups()) {
    Group& g = groups_[sd];
    g.num_trajs = static_cast<int64_t>(idxs.size());
    for (int32_t local = 0; local < static_cast<int32_t>(idxs.size());
         ++local) {
      const auto& edges = train[idxs[local]].traj.edges;
      for (size_t i = 1; i < edges.size(); ++i) {
        auto& ids = g.support[TransitionKey(edges[i - 1], edges[i])];
        if (ids.empty() || ids.back() != local) ids.push_back(local);
      }
    }
  }
}

std::vector<uint8_t> IboatDetector::DetectWithThreshold(
    const traj::MapMatchedTrajectory& t, double threshold) const {
  std::vector<uint8_t> labels(t.edges.size(), 0);
  if (t.edges.size() < 2) return labels;
  auto git = groups_.find(t.sd());
  if (git == groups_.end()) return labels;  // unknown SD pair: no evidence
  const Group& g = git->second;

  // Adaptive window: `window` holds the ids of historical trajectories
  // consistent with every transition currently in the window.
  std::vector<int32_t> window;
  bool window_all = true;  // window == all trajectories (initial state)
  std::vector<int32_t> scratch;
  for (size_t i = 1; i < t.edges.size(); ++i) {
    auto it = g.support.find(TransitionKey(t.edges[i - 1], t.edges[i]));
    static const std::vector<int32_t> kEmpty;
    const std::vector<int32_t>& ids =
        it == g.support.end() ? kEmpty : it->second;
    if (window_all) {
      scratch = ids;
    } else {
      scratch.clear();
      std::set_intersection(window.begin(), window.end(), ids.begin(),
                            ids.end(), std::back_inserter(scratch));
    }
    const double support = static_cast<double>(scratch.size()) /
                           static_cast<double>(std::max<int64_t>(1, g.num_trajs));
    if (support < threshold) {
      labels[i] = 1;
      // Shrink the window to only the latest transition.
      window = ids;
      window_all = false;
    } else {
      labels[i] = 0;
      window = std::move(scratch);
      window_all = false;
    }
  }
  labels.front() = 0;
  labels.back() = 0;
  return labels;
}

std::vector<uint8_t> IboatDetector::Detect(
    const traj::MapMatchedTrajectory& t) const {
  return DetectWithThreshold(t, threshold_);
}

void IboatDetector::Tune(const traj::Dataset& dev) {
  static constexpr double kCandidates[] = {0.01, 0.02, 0.05, 0.08, 0.1,
                                           0.15, 0.2,  0.3,  0.4,  0.5};
  double best_f1 = -1.0;
  double best = threshold_;
  for (double cand : kCandidates) {
    eval::F1Evaluator evaluator;
    for (const auto& lt : dev.trajs()) {
      evaluator.Add(lt.labels, DetectWithThreshold(lt.traj, cand));
    }
    const double f1 = evaluator.Compute().f1;
    if (f1 > best_f1) {
      best_f1 = f1;
      best = cand;
    }
  }
  threshold_ = best;
}

}  // namespace rl4oasd::baselines
