// IBOAT (Chen et al., T-ITS 2013): isolation-based online anomalous
// trajectory detection. An adaptive window of the latest incoming transitions
// is checked against the historical trajectories of the same SD pair; when
// the fraction of historical trajectories supporting the window drops below
// a threshold, the incoming point is anomalous and the window shrinks to the
// latest transition.
#pragma once

#include <unordered_map>
#include <vector>

#include "baselines/detector_iface.h"

namespace rl4oasd::baselines {

class IboatDetector : public SubtrajectoryDetector {
 public:
  explicit IboatDetector(double support_threshold = 0.1)
      : threshold_(support_threshold) {}

  std::string name() const override { return "IBOAT"; }

  void Fit(const traj::Dataset& train) override;

  std::vector<uint8_t> Detect(
      const traj::MapMatchedTrajectory& t) const override;

  /// Tunes the support threshold on a labeled dev set (the detection logic
  /// itself depends on the threshold, so this re-runs detection per
  /// candidate).
  void Tune(const traj::Dataset& dev) override;

  double threshold() const { return threshold_; }

 private:
  std::vector<uint8_t> DetectWithThreshold(const traj::MapMatchedTrajectory& t,
                                           double threshold) const;

  struct Group {
    int64_t num_trajs = 0;
    /// transition key -> ids (indices within the group) of trajectories
    /// containing that transition; sorted for fast intersection.
    std::unordered_map<int64_t, std::vector<int32_t>> support;
  };

  static int64_t TransitionKey(traj::EdgeId a, traj::EdgeId b) {
    return (static_cast<int64_t>(a) << 32) | static_cast<uint32_t>(b);
  }

  double threshold_;
  std::unordered_map<traj::SdPair, Group, traj::SdPairHash> groups_;
};

}  // namespace rl4oasd::baselines
