// Adapter exposing the RL4OASD model through the common detector interface
// so benches can iterate over all methods uniformly.
#pragma once

#include <memory>

#include "baselines/detector_iface.h"
#include "core/rl4oasd.h"

namespace rl4oasd::baselines {

class Rl4OasdAdapter : public SubtrajectoryDetector {
 public:
  Rl4OasdAdapter(const roadnet::RoadNetwork* net,
                 core::Rl4OasdConfig config = {})
      : net_(net), config_(config) {}

  std::string name() const override { return "RL4OASD"; }

  void Fit(const traj::Dataset& train) override {
    model_ = std::make_unique<core::Rl4Oasd>(net_, config_);
    model_->Fit(train);
  }

  std::vector<uint8_t> Detect(
      const traj::MapMatchedTrajectory& t) const override {
    return model_->Detect(t);
  }

  core::Rl4Oasd* model() { return model_.get(); }

 private:
  const roadnet::RoadNetwork* net_;
  core::Rl4OasdConfig config_;
  std::unique_ptr<core::Rl4Oasd> model_;
};

}  // namespace rl4oasd::baselines
