#include "baselines/seq_vae.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rl4oasd::baselines {

const char* VaeVariantName(VaeVariant v) {
  switch (v) {
    case VaeVariant::kSae:
      return "SAE";
    case VaeVariant::kVsae:
      return "VSAE";
    case VaeVariant::kGmVsae:
      return "GM-VSAE";
    case VaeVariant::kSdVsae:
      return "SD-VSAE";
  }
  return "?";
}

SeqVaeDetector::SeqVaeDetector(const roadnet::RoadNetwork* net,
                               SeqVaeConfig config)
    : net_(net),
      config_(config),
      rng_(config.seed),
      edge_embed_("vae.embed", net->NumEdges(), config.embed_dim, &rng_),
      out_embed_("vae.out", net->NumEdges(), config.hidden_dim, &rng_),
      encoder_("vae.enc", config.embed_dim, config.hidden_dim, &rng_),
      decoder_("vae.dec", config.embed_dim, config.hidden_dim, &rng_),
      mu_head_("vae.mu", config.hidden_dim, config.latent_dim, &rng_),
      logvar_head_("vae.logvar", config.hidden_dim, config.latent_dim, &rng_),
      z_to_h0_("vae.zproj", config.latent_dim, config.embed_dim, &rng_),
      components_("vae.components", config.num_components,
                  config.latent_dim) {
  components_.UniformInit(&rng_, 0.5f);
  threshold_ = 1.5;
  edge_embed_.RegisterParams(&registry_);
  out_embed_.RegisterParams(&registry_);
  encoder_.RegisterParams(&registry_);
  decoder_.RegisterParams(&registry_);
  mu_head_.RegisterParams(&registry_);
  logvar_head_.RegisterParams(&registry_);
  z_to_h0_.RegisterParams(&registry_);
  registry_.Register(&components_);
  nn::AdamConfig adam;
  adam.lr = config_.lr;
  optimizer_ = std::make_unique<nn::AdamOptimizer>(&registry_, adam);
}

nn::Vec SeqVaeDetector::EncodeMu(
    const std::vector<traj::EdgeId>& edges) const {
  std::vector<const float*> inputs(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    inputs[i] = edge_embed_.Lookup(static_cast<size_t>(edges[i]));
  }
  auto caches = encoder_.Forward(inputs);
  nn::Vec mu(config_.latent_dim);
  mu_head_.Forward(caches.back().h.data(), mu.data());
  return mu;
}

nn::Vec SeqVaeDetector::ComponentMean(int k) const {
  nn::Vec m(config_.latent_dim);
  const float* row = components_.value.Row(static_cast<size_t>(k));
  std::copy(row, row + config_.latent_dim, m.begin());
  return m;
}

int SeqVaeDetector::NearestComponent(const nn::Vec& mu) const {
  int best = 0;
  double best_d = 1e300;
  for (int k = 0; k < config_.num_components; ++k) {
    const float* row = components_.value.Row(static_cast<size_t>(k));
    double d = 0.0;
    for (size_t i = 0; i < config_.latent_dim; ++i) {
      const double diff = mu[i] - row[i];
      d += diff * diff;
    }
    if (d < best_d) {
      best_d = d;
      best = k;
    }
  }
  return best;
}

std::vector<double> SeqVaeDetector::DecodeNll(
    const std::vector<traj::EdgeId>& edges, const nn::Vec& z) const {
  const size_t n = edges.size();
  std::vector<double> nll(n, 0.0);
  if (n < 2) return nll;
  // Latent injection: the decoder's first input is tanh(W z); subsequent
  // inputs are the embeddings of the previous observed edges.
  nn::Vec zproj(config_.embed_dim);
  z_to_h0_.Forward(z.data(), zproj.data());
  for (auto& v : zproj) v = std::tanh(v);
  nn::LstmState state(config_.hidden_dim);
  decoder_.StepForward(zproj.data(), &state);
  for (size_t i = 1; i < n; ++i) {
    decoder_.StepForward(
        edge_embed_.Lookup(static_cast<size_t>(edges[i - 1])), &state);
    const auto& succ = net_->NextEdges(edges[i - 1]);
    if (succ.empty()) continue;
    double max_logit = -1e30;
    std::vector<double> logits(succ.size());
    int obs = -1;
    for (size_t s = 0; s < succ.size(); ++s) {
      logits[s] = nn::Dot(state.h.data(),
                          out_embed_.Lookup(static_cast<size_t>(succ[s])),
                          config_.hidden_dim);
      max_logit = std::max(max_logit, logits[s]);
      if (succ[s] == edges[i]) obs = static_cast<int>(s);
    }
    if (obs < 0) {
      nll[i] = 10.0;  // transition not on the graph
      continue;
    }
    double zsum = 0.0;
    for (double logit : logits) zsum += std::exp(logit - max_logit);
    nll[i] = -(logits[obs] - max_logit - std::log(zsum));
  }
  return nll;
}

double SeqVaeDetector::TrainStep(const std::vector<traj::EdgeId>& edges) {
  const size_t n = edges.size();
  if (n < 3) return 0.0;
  const size_t H = config_.hidden_dim;
  const size_t L = config_.latent_dim;
  const bool variational = config_.variant != VaeVariant::kSae;

  // ---- Encoder forward.
  std::vector<const float*> enc_inputs(n);
  for (size_t i = 0; i < n; ++i) {
    enc_inputs[i] = edge_embed_.Lookup(static_cast<size_t>(edges[i]));
  }
  auto enc_caches = encoder_.Forward(enc_inputs);
  const nn::Vec& h_enc = enc_caches.back().h;
  nn::Vec mu(L), logvar(L, 0.0f), eps(L, 0.0f), z(L);
  mu_head_.Forward(h_enc.data(), mu.data());
  if (variational) {
    logvar_head_.Forward(h_enc.data(), logvar.data());
    for (size_t i = 0; i < L; ++i) {
      eps[i] = static_cast<float>(rng_.Gaussian());
      z[i] = mu[i] + std::exp(0.5f * logvar[i]) * eps[i];
    }
  } else {
    z = mu;
  }

  // KL target: nearest mixture component (GM variants) or standard normal.
  nn::Vec m(L, 0.0f);
  int comp = -1;
  if (variational) {
    if (config_.variant == VaeVariant::kGmVsae ||
        config_.variant == VaeVariant::kSdVsae) {
      comp = NearestComponent(mu);
      m = ComponentMean(comp);
    }
  }

  // ---- Decoder forward (sequence mode for BPTT).
  nn::Vec zproj_pre(config_.embed_dim), zproj(config_.embed_dim);
  z_to_h0_.Forward(z.data(), zproj_pre.data());
  for (size_t i = 0; i < zproj.size(); ++i) {
    zproj[i] = std::tanh(zproj_pre[i]);
  }
  std::vector<const float*> dec_inputs(n);
  dec_inputs[0] = zproj.data();
  for (size_t i = 1; i < n; ++i) {
    dec_inputs[i] = edge_embed_.Lookup(static_cast<size_t>(edges[i - 1]));
  }
  auto dec_caches = decoder_.Forward(dec_inputs);

  // ---- Reconstruction loss + gradient into decoder hiddens / out embeds.
  registry_.ZeroGrad();
  double loss = 0.0;
  std::vector<nn::Vec> d_h(n, nn::Vec(H, 0.0f));
  const float inv_steps = 1.0f / static_cast<float>(n - 1);
  for (size_t i = 1; i < n; ++i) {
    const auto& succ = net_->NextEdges(edges[i - 1]);
    if (succ.empty()) continue;
    const nn::Vec& h = dec_caches[i].h;
    double max_logit = -1e30;
    std::vector<double> logits(succ.size());
    int obs = -1;
    for (size_t s = 0; s < succ.size(); ++s) {
      logits[s] = nn::Dot(
          h.data(), out_embed_.Lookup(static_cast<size_t>(succ[s])), H);
      max_logit = std::max(max_logit, logits[s]);
      if (succ[s] == edges[i]) obs = static_cast<int>(s);
    }
    if (obs < 0) continue;
    double zsum = 0.0;
    for (double logit : logits) zsum += std::exp(logit - max_logit);
    loss -= (logits[obs] - max_logit - std::log(zsum)) * inv_steps;
    nn::Vec grad_row(H);
    for (size_t s = 0; s < succ.size(); ++s) {
      const double p = std::exp(logits[s] - max_logit) / zsum;
      const float g =
          static_cast<float>(p - (static_cast<int>(s) == obs ? 1.0 : 0.0)) *
          inv_steps;
      const float* out_v = out_embed_.Lookup(static_cast<size_t>(succ[s]));
      for (size_t d = 0; d < H; ++d) {
        d_h[i][d] += g * out_v[d];
        grad_row[d] = g * h[d];
      }
      out_embed_.AccumulateGrad(static_cast<size_t>(succ[s]),
                                grad_row.data());
    }
  }

  // ---- Decoder backward.
  std::vector<nn::Vec> d_dec_x;
  decoder_.Backward(dec_caches, d_h, &d_dec_x);
  for (size_t i = 1; i < n; ++i) {
    edge_embed_.AccumulateGrad(static_cast<size_t>(edges[i - 1]),
                               d_dec_x[i].data());
  }
  // d zproj -> through tanh -> z_to_h0_ -> d z.
  nn::Vec d_zproj_pre(config_.embed_dim);
  for (size_t i = 0; i < d_zproj_pre.size(); ++i) {
    d_zproj_pre[i] = d_dec_x[0][i] * (1.0f - zproj[i] * zproj[i]);
  }
  nn::Vec d_z(L, 0.0f);
  z_to_h0_.Backward(z.data(), d_zproj_pre.data(), d_z.data());

  // ---- KL term and gradients into mu / logvar / components.
  nn::Vec d_mu(L, 0.0f), d_logvar(L, 0.0f);
  for (size_t i = 0; i < L; ++i) {
    d_mu[i] = d_z[i];  // z = mu + std * eps
    if (variational) {
      d_logvar[i] = d_z[i] * eps[i] * 0.5f * std::exp(0.5f * logvar[i]);
    }
  }
  if (variational) {
    const float klw = config_.kl_weight;
    double kl = 0.0;
    float* d_comp =
        comp >= 0 ? components_.grad.Row(static_cast<size_t>(comp)) : nullptr;
    for (size_t i = 0; i < L; ++i) {
      const float diff = mu[i] - m[i];
      kl += 0.5 * (std::exp(logvar[i]) + diff * diff - 1.0f - logvar[i]);
      d_mu[i] += klw * diff;
      d_logvar[i] += klw * 0.5f * (std::exp(logvar[i]) - 1.0f);
      if (d_comp != nullptr) d_comp[i] += klw * (-diff);
    }
    loss += klw * kl;
  }

  // ---- Encoder backward.
  nn::Vec d_h_enc(H, 0.0f);
  mu_head_.Backward(h_enc.data(), d_mu.data(), d_h_enc.data());
  if (variational) {
    logvar_head_.Backward(h_enc.data(), d_logvar.data(), d_h_enc.data());
  }
  std::vector<nn::Vec> d_h_encoder(n, nn::Vec(H, 0.0f));
  d_h_encoder.back() = d_h_enc;
  std::vector<nn::Vec> d_enc_x;
  encoder_.Backward(enc_caches, d_h_encoder, &d_enc_x);
  for (size_t i = 0; i < n; ++i) {
    edge_embed_.AccumulateGrad(static_cast<size_t>(edges[i]),
                               d_enc_x[i].data());
  }

  registry_.ClipGradNorm(config_.grad_clip);
  optimizer_->Step();
  return loss;
}

void SeqVaeDetector::Fit(const traj::Dataset& train) {
  std::vector<size_t> order =
      rng_.SampleWithoutReplacement(train.size(),
                                    std::min(train.size(),
                                             config_.max_train_trajs));
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (size_t idx : order) {
      TrainStep(train[idx].traj.edges);
    }
  }
  // Component assignment per SD pair (SD-VSAE's SD module).
  if (config_.variant == VaeVariant::kGmVsae ||
      config_.variant == VaeVariant::kSdVsae) {
    std::unordered_map<traj::SdPair, std::vector<int>, traj::SdPairHash>
        votes;
    std::vector<int> global_votes(config_.num_components, 0);
    for (size_t idx : order) {
      const auto& t = train[idx].traj;
      if (t.edges.size() < 2) continue;
      const int k = NearestComponent(EncodeMu(t.edges));
      auto& v = votes[t.sd()];
      v.resize(config_.num_components, 0);
      v[k] += 1;
      global_votes[k] += 1;
    }
    sd_component_.clear();
    for (const auto& [sd, v] : votes) {
      sd_component_[sd] = static_cast<int>(
          std::distance(v.begin(), std::max_element(v.begin(), v.end())));
    }
    global_best_component_ = static_cast<int>(std::distance(
        global_votes.begin(),
        std::max_element(global_votes.begin(), global_votes.end())));
  }
}

std::vector<double> SeqVaeDetector::Scores(
    const traj::MapMatchedTrajectory& t) const {
  const auto& edges = t.edges;
  if (edges.size() < 2) return std::vector<double>(edges.size(), 0.0);
  switch (config_.variant) {
    case VaeVariant::kSae:
    case VaeVariant::kVsae: {
      // Encoder pass then decoder pass ("scans the trajectory twice").
      return DecodeNll(edges, EncodeMu(edges));
    }
    case VaeVariant::kGmVsae: {
      // Decode under every normal-route category; keep the best-generated
      // likelihood per point.
      std::vector<double> best;
      for (int k = 0; k < config_.num_components; ++k) {
        auto nll = DecodeNll(edges, ComponentMean(k));
        if (best.empty()) {
          best = std::move(nll);
        } else {
          for (size_t i = 0; i < best.size(); ++i) {
            best[i] = std::min(best[i], nll[i]);
          }
        }
      }
      return best;
    }
    case VaeVariant::kSdVsae: {
      // One decoding pass under the SD-selected component.
      auto it = sd_component_.find(t.sd());
      const int k =
          it == sd_component_.end() ? global_best_component_ : it->second;
      return DecodeNll(edges, ComponentMean(k));
    }
  }
  return std::vector<double>(edges.size(), 0.0);
}

}  // namespace rl4oasd::baselines
