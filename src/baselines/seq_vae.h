// The generative sequence-model family of Liu et al. (ICDE 2020), covering
// four baselines of Table III with one implementation:
//   * SAE     — deterministic seq2seq autoencoder (reconstruction error),
//   * VSAE    — variational autoencoder with a single Gaussian latent,
//   * GM-VSAE — Gaussian-mixture latent: each component represents one
//               category of normal routes; detection decodes under every
//               component and keeps the best-generated likelihood,
//   * SD-VSAE — fast variant: a single component is selected per SD pair
//               (one decoding pass instead of K).
// The decoder is an LSTM over edge embeddings whose next-edge distribution
// is a softmax restricted to the road graph's successor edges; the per-point
// anomaly score is the negative log-likelihood of the observed transition.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/detector_iface.h"
#include "nn/adam.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "roadnet/road_network.h"

namespace rl4oasd::baselines {

enum class VaeVariant { kSae, kVsae, kGmVsae, kSdVsae };

const char* VaeVariantName(VaeVariant v);

struct SeqVaeConfig {
  VaeVariant variant = VaeVariant::kGmVsae;
  size_t embed_dim = 32;
  size_t hidden_dim = 32;
  size_t latent_dim = 16;
  int num_components = 5;      // K (GM variants)
  int epochs = 2;
  size_t max_train_trajs = 2000;
  float lr = 0.005f;
  float kl_weight = 0.05f;
  float grad_clip = 5.0f;
  uint64_t seed = 55;
};

class SeqVaeDetector : public ScoreBasedDetector {
 public:
  SeqVaeDetector(const roadnet::RoadNetwork* net, SeqVaeConfig config);

  std::string name() const override { return VaeVariantName(config_.variant); }

  void Fit(const traj::Dataset& train) override;

  std::vector<double> Scores(
      const traj::MapMatchedTrajectory& t) const override;

 private:
  /// One training step on a trajectory; returns (recon + KL) loss.
  double TrainStep(const std::vector<traj::EdgeId>& edges);

  /// Decodes the trajectory under latent z, returning per-point negative
  /// log-likelihoods (index 0 is 0).
  std::vector<double> DecodeNll(const std::vector<traj::EdgeId>& edges,
                                const nn::Vec& z) const;

  /// Runs the encoder and returns mu (mean latent).
  nn::Vec EncodeMu(const std::vector<traj::EdgeId>& edges) const;

  /// Index of the mixture component nearest to mu.
  int NearestComponent(const nn::Vec& mu) const;

  nn::Vec ComponentMean(int k) const;

  const roadnet::RoadNetwork* net_;
  SeqVaeConfig config_;
  Rng rng_;
  nn::Embedding edge_embed_;   // shared encoder/decoder input embedding
  nn::Embedding out_embed_;    // hidden-to-edge output embedding
  nn::Lstm encoder_;
  nn::Lstm decoder_;
  nn::Linear mu_head_;         // hidden -> latent
  nn::Linear logvar_head_;     // hidden -> latent
  nn::Linear z_to_h0_;         // latent -> decoder initial hidden
  nn::Parameter components_;   // K x latent mixture means
  nn::ParameterRegistry registry_;
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
  /// SD-VSAE: per-SD-pair selected component.
  std::unordered_map<traj::SdPair, int, traj::SdPairHash> sd_component_;
  int global_best_component_ = 0;
};

}  // namespace rl4oasd::baselines
