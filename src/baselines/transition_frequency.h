// The simplest detector (Table IV, "only transition frequency"): anomaly
// score of a segment is 1 minus the historical fraction of same-group
// trajectories traveling the incoming transition.
#pragma once

#include "baselines/detector_iface.h"
#include "core/preprocess.h"

namespace rl4oasd::baselines {

class TransitionFrequencyDetector : public ScoreBasedDetector {
 public:
  TransitionFrequencyDetector()
      : preprocessor_(core::PreprocessConfig{}) {
    threshold_ = 0.5;
  }

  std::string name() const override { return "TransitionFrequency"; }

  void Fit(const traj::Dataset& train) override { preprocessor_.Fit(train); }

  std::vector<double> Scores(
      const traj::MapMatchedTrajectory& t) const override {
    std::vector<double> scores(t.edges.size(), 0.0);
    const auto fractions = preprocessor_.TransitionFractions(t);
    for (size_t i = 0; i < fractions.size(); ++i) {
      scores[i] = 1.0 - fractions[i];
    }
    return scores;
  }

 private:
  core::Preprocessor preprocessor_;
};

}  // namespace rl4oasd::baselines
