#include "common/binary.h"

#include <cstdio>
#include <cstring>

namespace rl4oasd {

namespace {

// Generates the reflected CRC-32 lookup table once.
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static const bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void BinaryWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void BinaryWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void BinaryWriter::WriteF32(float v) {
  static_assert(sizeof(float) == 4);
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  WriteU32(bits);
}

void BinaryWriter::WriteF64(double v) {
  static_assert(sizeof(double) == 8);
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  WriteU64(bits);
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void BinaryWriter::WriteBytes(const void* data, size_t n) {
  if (n == 0) return;  // data may be null for empty writes
  buf_.append(static_cast<const char*>(data), n);
}

void BinaryWriter::WriteI32Vector(const std::vector<int32_t>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  for (int32_t x : v) WriteI32(x);
}

void BinaryWriter::WriteF32Vector(const std::vector<float>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  for (float x : v) WriteF32(x);
}

Status BinaryWriter::WriteToFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + tmp);
  }
  const uint32_t crc = Crc32(buf_.data(), buf_.size());
  bool ok = std::fwrite(buf_.data(), 1, buf_.size(), f) == buf_.size();
  char footer[4];
  for (int i = 0; i < 4; ++i) {
    footer[i] = static_cast<char>((crc >> (8 * i)) & 0xFFu);
  }
  ok = ok && std::fwrite(footer, 1, 4, f) == 4;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename into place: " + path);
  }
  return Status::OK();
}

Result<BinaryReader> BinaryReader::OpenFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open: " + path);
  }
  std::string buf;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.append(chunk, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("read error: " + path);
  }
  if (buf.size() < 4) {
    return Status::IOError("file too short for CRC footer: " + path);
  }
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(
                  static_cast<unsigned char>(buf[buf.size() - 4 + i]))
              << (8 * i);
  }
  buf.resize(buf.size() - 4);
  const uint32_t actual = Crc32(buf.data(), buf.size());
  if (stored != actual) {
    return Status::IOError("CRC mismatch (corrupt file): " + path);
  }
  return BinaryReader(std::move(buf));
}

Status BinaryReader::ReadBytes(void* out, size_t n) {
  if (remaining() < n) {
    return Status::OutOfRange("read past end of buffer");
  }
  if (n == 0) return Status::OK();  // out may be null for empty reads
  std::memcpy(out, buf_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::ReadU8(uint8_t* v) { return ReadBytes(v, 1); }

Status BinaryReader::ReadU32(uint32_t* v) {
  unsigned char b[4];
  RL4_RETURN_NOT_OK(ReadBytes(b, 4));
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(b[i]) << (8 * i);
  return Status::OK();
}

Status BinaryReader::ReadU64(uint64_t* v) {
  unsigned char b[8];
  RL4_RETURN_NOT_OK(ReadBytes(b, 8));
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return Status::OK();
}

Status BinaryReader::ReadI32(int32_t* v) {
  uint32_t u;
  RL4_RETURN_NOT_OK(ReadU32(&u));
  *v = static_cast<int32_t>(u);
  return Status::OK();
}

Status BinaryReader::ReadI64(int64_t* v) {
  uint64_t u;
  RL4_RETURN_NOT_OK(ReadU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status BinaryReader::ReadF32(float* v) {
  uint32_t bits;
  RL4_RETURN_NOT_OK(ReadU32(&bits));
  std::memcpy(v, &bits, 4);
  return Status::OK();
}

Status BinaryReader::ReadF64(double* v) {
  uint64_t bits;
  RL4_RETURN_NOT_OK(ReadU64(&bits));
  std::memcpy(v, &bits, 8);
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* s) {
  uint32_t len;
  RL4_RETURN_NOT_OK(ReadU32(&len));
  if (remaining() < len) {
    return Status::OutOfRange("string length exceeds remaining payload");
  }
  s->assign(buf_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status BinaryReader::ReadI32Vector(std::vector<int32_t>* v) {
  uint32_t len;
  RL4_RETURN_NOT_OK(ReadU32(&len));
  if (remaining() < static_cast<size_t>(len) * 4) {
    return Status::OutOfRange("vector length exceeds remaining payload");
  }
  v->resize(len);
  for (uint32_t i = 0; i < len; ++i) RL4_RETURN_NOT_OK(ReadI32(&(*v)[i]));
  return Status::OK();
}

Status BinaryReader::ReadF32Vector(std::vector<float>* v) {
  uint32_t len;
  RL4_RETURN_NOT_OK(ReadU32(&len));
  if (remaining() < static_cast<size_t>(len) * 4) {
    return Status::OutOfRange("vector length exceeds remaining payload");
  }
  v->resize(len);
  for (uint32_t i = 0; i < len; ++i) RL4_RETURN_NOT_OK(ReadF32(&(*v)[i]));
  return Status::OK();
}

}  // namespace rl4oasd
