// Little-endian binary encoding with whole-file CRC32 integrity checking.
// BinaryWriter accumulates an in-memory buffer and appends a CRC32 footer
// when flushed to disk; BinaryReader memory-loads a file, verifies the
// footer, and serves bounds-checked reads. All multi-byte values are
// little-endian regardless of host order, so files are portable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rl4oasd {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of a byte range.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Serializes primitives into a growable byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteF32(float v);
  void WriteF64(double v);
  /// Length-prefixed (u32) byte string.
  void WriteString(std::string_view s);
  void WriteBytes(const void* data, size_t n);

  /// Convenience: length-prefixed vector of fixed-width values.
  void WriteI32Vector(const std::vector<int32_t>& v);
  void WriteF32Vector(const std::vector<float>& v);

  size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }

  /// Writes `buffer() + CRC32(buffer())` to `path` (atomic via rename from a
  /// sibling temporary file).
  Status WriteToFile(const std::string& path) const;

 private:
  std::string buf_;
};

/// Deserializes primitives from a byte buffer with bounds checking. Every
/// read returns OutOfRange past the end — corrupt or truncated input can
/// never read out of bounds.
class BinaryReader {
 public:
  /// Wraps an in-memory buffer (no CRC verification).
  explicit BinaryReader(std::string buf) : buf_(std::move(buf)) {}

  /// Loads `path`, verifies and strips the CRC32 footer.
  static Result<BinaryReader> OpenFile(const std::string& path);

  Status ReadU8(uint8_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadI32(int32_t* v);
  Status ReadI64(int64_t* v);
  Status ReadF32(float* v);
  Status ReadF64(double* v);
  /// Reads a length-prefixed string; the length is validated against the
  /// remaining payload before allocation.
  Status ReadString(std::string* s);
  Status ReadBytes(void* out, size_t n);

  Status ReadI32Vector(std::vector<int32_t>* v);
  Status ReadF32Vector(std::vector<float>* v);

  size_t remaining() const { return buf_.size() - pos_; }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  std::string buf_;
  size_t pos_ = 0;
};

}  // namespace rl4oasd
