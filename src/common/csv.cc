#include "common/csv.h"

#include <fstream>

#include "common/strings.h"

namespace rl4oasd {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<CsvTable> ReadCsv(const std::string& path, char delim,
                         bool has_header) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  CsvTable table;
  std::string line;
  bool header_pending = has_header;
  while (std::getline(in, line)) {
    std::string_view sv = Trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    auto fields = Split(sv, delim);
    if (header_pending) {
      table.header = std::move(fields);
      header_pending = false;
    } else {
      table.rows.push_back(std::move(fields));
    }
  }
  return table;
}

Status WriteCsv(const std::string& path, const CsvTable& table, char delim) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  const std::string sep(1, delim);
  if (!table.header.empty()) {
    out << Join(table.header, sep) << "\n";
  }
  for (const auto& row : table.rows) {
    out << Join(row, sep) << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace rl4oasd
