// Minimal CSV reader/writer used for road-network and trajectory persistence
// and for dumping benchmark series. Intentionally simple: no quoting, fields
// must not contain the delimiter.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace rl4oasd {

/// A parsed CSV file: optional header row plus data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column, or -1 if absent.
  int ColumnIndex(const std::string& name) const;
};

/// Reads a CSV file. If `has_header` the first row populates
/// `CsvTable::header`. Empty lines and lines starting with '#' are skipped.
Result<CsvTable> ReadCsv(const std::string& path, char delim = ',',
                         bool has_header = true);

/// Writes rows (with optional header) to `path`, creating or truncating it.
Status WriteCsv(const std::string& path, const CsvTable& table,
                char delim = ',');

}  // namespace rl4oasd
