#include "common/flags.h"

#include <charconv>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace rl4oasd {

namespace {

bool ParseBoolText(const std::string& s, bool* out) {
  if (s == "true" || s == "1" || s == "yes" || s == "on") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "0" || s == "no" || s == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void FlagSet::Declare(const std::string& name, Flag flag) {
  RL4_CHECK(flags_.emplace(name, std::move(flag)).second)
      << "duplicate flag --" << name;
}

void FlagSet::AddString(const std::string& name, std::string default_value,
                        std::string help) {
  Flag f;
  f.type = Type::kString;
  f.help = std::move(help);
  f.default_text = "\"" + default_value + "\"";
  f.string_value = std::move(default_value);
  Declare(name, std::move(f));
}

void FlagSet::AddInt(const std::string& name, int64_t default_value,
                     std::string help) {
  Flag f;
  f.type = Type::kInt;
  f.help = std::move(help);
  f.int_value = default_value;
  f.default_text = std::to_string(default_value);
  Declare(name, std::move(f));
}

void FlagSet::AddDouble(const std::string& name, double default_value,
                        std::string help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = std::move(help);
  f.double_value = default_value;
  std::ostringstream os;
  os << default_value;
  f.default_text = os.str();
  Declare(name, std::move(f));
}

void FlagSet::AddBool(const std::string& name, bool default_value,
                      std::string help) {
  Flag f;
  f.type = Type::kBool;
  f.help = std::move(help);
  f.bool_value = default_value;
  f.default_text = default_value ? "true" : "false";
  Declare(name, std::move(f));
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& f = it->second;
  switch (f.type) {
    case Type::kString:
      f.string_value = value;
      break;
    case Type::kInt: {
      int64_t v = 0;
      auto [end, ec] =
          std::from_chars(value.data(), value.data() + value.size(), v);
      if (ec != std::errc() || end != value.data() + value.size()) {
        return Status::InvalidArgument("--" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      f.int_value = v;
      break;
    }
    case Type::kDouble: {
      // std::from_chars for doubles is not universally available; strtod with
      // full-consumption check is equivalent here.
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || value.empty()) {
        return Status::InvalidArgument("--" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      f.double_value = v;
      break;
    }
    case Type::kBool: {
      bool v = false;
      if (!ParseBoolText(value, &v)) {
        return Status::InvalidArgument("--" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      f.bool_value = v;
      break;
    }
  }
  f.set = true;
  return Status::OK();
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::OK();
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      RL4_RETURN_NOT_OK(SetValue(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    // --no-name for booleans.
    if (body.rfind("no-", 0) == 0) {
      const std::string name = body.substr(3);
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        it->second.bool_value = false;
        it->second.set = true;
        continue;
      }
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body);
    }
    if (it->second.type == Type::kBool) {
      // Bare boolean: --name. A following true/false token is also accepted.
      if (i + 1 < argc) {
        bool v;
        if (ParseBoolText(argv[i + 1], &v)) {
          it->second.bool_value = v;
          it->second.set = true;
          ++i;
          continue;
        }
      }
      it->second.bool_value = true;
      it->second.set = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + body + " is missing a value");
    }
    RL4_RETURN_NOT_OK(SetValue(body, argv[++i]));
  }
  return Status::OK();
}

const FlagSet::Flag& FlagSet::Get(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  RL4_CHECK(it != flags_.end()) << "undeclared flag --" << name;
  RL4_CHECK(it->second.type == type) << "type mismatch for flag --" << name;
  return it->second;
}

const std::string& FlagSet::GetString(const std::string& name) const {
  return Get(name, Type::kString).string_value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return Get(name, Type::kInt).int_value;
}

double FlagSet::GetDouble(const std::string& name) const {
  return Get(name, Type::kDouble).double_value;
}

bool FlagSet::GetBool(const std::string& name) const {
  return Get(name, Type::kBool).bool_value;
}

bool FlagSet::IsSet(const std::string& name) const {
  auto it = flags_.find(name);
  RL4_CHECK(it != flags_.end()) << "undeclared flag --" << name;
  return it->second.set;
}

std::string FlagSet::Help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, f] : flags_) {
    const char* type = "";
    switch (f.type) {
      case Type::kString:
        type = "string";
        break;
      case Type::kInt:
        type = "int";
        break;
      case Type::kDouble:
        type = "double";
        break;
      case Type::kBool:
        type = "bool";
        break;
    }
    os << "  --" << name << " (" << type << ", default " << f.default_text
       << ")\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace rl4oasd
