// Minimal command-line flag parsing for the tools/ binaries. Supports
// `--name=value`, `--name value`, bare boolean `--name` / `--no-name`,
// `--help`, and positional arguments. Unknown flags are an error (typos must
// not silently fall through to defaults in a training run).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace rl4oasd {

/// A declared-then-parsed flag set for one binary.
class FlagSet {
 public:
  FlagSet(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  FlagSet(const FlagSet&) = delete;
  FlagSet& operator=(const FlagSet&) = delete;

  // Declaration. Each registers a flag with its default and help text.
  void AddString(const std::string& name, std::string default_value,
                 std::string help);
  void AddInt(const std::string& name, int64_t default_value,
              std::string help);
  void AddDouble(const std::string& name, double default_value,
                 std::string help);
  void AddBool(const std::string& name, bool default_value, std::string help);

  /// Parses argv. On `--help` returns OK with help_requested() set; callers
  /// print Help() and exit. Unknown flags, malformed values, and type
  /// mismatches return InvalidArgument.
  Status Parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }

  /// Typed access; the flag must have been declared with the matching Add*.
  const std::string& GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True when the flag appeared on the command line (vs default).
  bool IsSet(const std::string& name) const;

  /// Non-flag arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing every flag with type, default, and help.
  std::string Help() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };

  struct Flag {
    Type type;
    std::string help;
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string default_text;  // rendered for help output
    bool set = false;
  };

  void Declare(const std::string& name, Flag flag);
  const Flag& Get(const std::string& name, Type type) const;
  Status SetValue(const std::string& name, const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace rl4oasd
