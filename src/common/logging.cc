#include "common/logging.h"

#include <atomic>

namespace rl4oasd {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::ostream& out = (level_ >= LogLevel::kWarning) ? std::cerr : std::clog;
  out << stream_.str();
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[FATAL " << base << ":" << line << "] Check failed: " << expr
          << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  std::cerr << stream_.str() << std::flush;
  std::abort();
}

}  // namespace internal
}  // namespace rl4oasd
