#include "common/logging.h"

// The blessed process-wide log sink: everything funnels through here, so
// this is the one file in src/ allowed to touch the global streams.
// oasd-lint: allow-file(iostream)

#include <iostream>

#include <atomic>

#include "common/mutex.h"

namespace rl4oasd {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Serializes the final stream write: without it, two threads logging at
/// once can interleave *within* a line (ostream operator<< is not atomic),
/// which turns a service log into confetti exactly when it matters — under
/// concurrent ingest. kLogging is the highest rank, so logging is legal
/// while holding any other lock in the hierarchy. Leaked on purpose:
/// LogMessage runs from static destructors, after locals would be gone.
common::Mutex& LogMutex() {
  static common::Mutex* mu = new common::Mutex(common::lockrank::kLogging);
  return *mu;
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::ostream& out = (level_ >= LogLevel::kWarning) ? std::cerr : std::clog;
  common::MutexLock lock(&LogMutex());
  out << stream_.str();
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[FATAL " << base << ":" << line << "] Check failed: " << expr
          << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  {
    common::MutexLock lock(&LogMutex());
    std::cerr << stream_.str() << std::flush;
  }
  std::abort();
}

}  // namespace internal
}  // namespace rl4oasd
