// Minimal leveled logging plus CHECK macros (Google-glog style) used for
// internal invariant enforcement.
#pragma once

#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>

namespace rl4oasd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are discarded. Defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define RL4_LOG(level)                                                  \
  if (::rl4oasd::LogLevel::k##level < ::rl4oasd::GetLogLevel()) {       \
  } else                                                                \
    ::rl4oasd::internal::LogMessage(::rl4oasd::LogLevel::k##level,      \
                                    __FILE__, __LINE__)                 \
        .stream()

/// Aborts with a message when `cond` is false. Enabled in all build types:
/// these guard logic invariants, not user input.
#define RL4_CHECK(cond)                                              \
  if (cond) {                                                        \
  } else                                                             \
    ::rl4oasd::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define RL4_CHECK_OP(a, b, op) RL4_CHECK((a)op(b))                   \
    << " (" << (a) << " vs " << (b) << ") "
#define RL4_CHECK_EQ(a, b) RL4_CHECK_OP(a, b, ==)
#define RL4_CHECK_NE(a, b) RL4_CHECK_OP(a, b, !=)
#define RL4_CHECK_LT(a, b) RL4_CHECK_OP(a, b, <)
#define RL4_CHECK_LE(a, b) RL4_CHECK_OP(a, b, <=)
#define RL4_CHECK_GT(a, b) RL4_CHECK_OP(a, b, >)
#define RL4_CHECK_GE(a, b) RL4_CHECK_OP(a, b, >=)

}  // namespace rl4oasd
