#include "common/mutex.h"

#include <mutex>  // oasd-lint: allow(raw-mutex) — adopting the wrapped lock

#ifndef NDEBUG
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>
#endif

namespace rl4oasd::common {

#ifndef NDEBUG

namespace {

struct HeldLock {
  const Mutex* mu;
  int rank;
};

/// The calling thread's currently-held locks, in acquisition order.
/// Function-local so first use from any thread (including during static
/// initialization) constructs it on demand.
std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

/// No logging.h here: logging serializes through a Mutex, and the checker
/// must be able to report while that very lock is mid-diagnosis. Plain
/// stderr + abort keeps the failure path dependency-free and re-entrant.
[[noreturn]] void Die(const char* what, const Mutex* mu, int rank) {
  std::fprintf(stderr,
               "[FATAL common/mutex] lock rank order violation: %s "
               "(mutex %p, rank %d)\n  held by this thread:\n",
               what, static_cast<const void*>(mu), rank);
  for (const HeldLock& held : HeldStack()) {
    std::fprintf(stderr, "    mutex %p, rank %d\n",
                 static_cast<const void*>(held.mu), held.rank);
  }
  std::fprintf(
      stderr,
      "  protocol: acquire in strictly increasing rank, or equal rank in "
      "increasing address order (see common/mutex.h)\n");
  std::abort();
}

void CheckAcquire(const Mutex* mu, int rank) {
  for (const HeldLock& held : HeldStack()) {
    if (held.mu == mu) {
      Die("recursive acquisition of a held mutex", mu, rank);
    }
    const bool ordered =
        held.rank < rank ||
        (held.rank == rank && std::less<const Mutex*>{}(held.mu, mu));
    if (!ordered) {
      Die("acquisition would invert the lock hierarchy", mu, rank);
    }
  }
}

void RecordAcquire(const Mutex* mu, int rank) {
  HeldStack().push_back(HeldLock{mu, rank});
}

void RecordRelease(const Mutex* mu, int rank) {
  auto& stack = HeldStack();
  // Scan from the back: releases are usually LIFO, but UniqueLock sets may
  // release in any order.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mu == mu) {
      stack.erase(std::next(it).base());
      return;
    }
  }
  Die("release of a mutex this thread does not hold", mu, rank);
}

}  // namespace

void Mutex::Lock() {
  CheckAcquire(this, rank_);
  mu_.lock();
  RecordAcquire(this, rank_);
}

void Mutex::Unlock() {
  RecordRelease(this, rank_);
  mu_.unlock();
}

bool Mutex::TryLock() {
  if (!mu_.try_lock()) return false;
  RecordAcquire(this, rank_);
  return true;
}

namespace debug {
size_t HeldLockCount() { return HeldStack().size(); }
}  // namespace debug

#else  // NDEBUG

void Mutex::Lock() { mu_.lock(); }
void Mutex::Unlock() { mu_.unlock(); }
bool Mutex::TryLock() { return mu_.try_lock(); }

namespace debug {
size_t HeldLockCount() { return 0; }
}  // namespace debug

#endif  // NDEBUG

void CondVar::Wait(Mutex* mu) {
  // Adopt the already-held underlying mutex for the duration of the wait.
  // The debug held-lock entry is intentionally left in place: this thread
  // is blocked while the lock is out of its hands, and it owns the lock
  // again before Wait returns, so no acquisition it could observe happens
  // with an inconsistent stack — and the reacquisition needs no rank check
  // (its order was validated when the caller first took the lock).
  std::unique_lock<std::mutex> inner(mu->mu_, std::adopt_lock);
  cv_.wait(inner);
  inner.release();
}

}  // namespace rl4oasd::common
