// Capability-annotated mutex primitives, plus a debug-build lock-order
// checker.
//
// Every lock in this repo outside common/ is one of these wrappers (the
// `raw-mutex` rule in tools/oasd_lint enforces it), which buys two things:
//
//   1. Static checking. Mutex/MutexLock/CondVar carry the Clang Thread
//      Safety Analysis attributes (common/thread_annotations.h), so
//      GUARDED_BY contracts on members are verified at compile time under
//      `clang++ -Wthread-safety -Werror`.
//
//   2. Dynamic checking. In debug builds (!NDEBUG) every thread maintains a
//      stack of the locks it holds, and each acquisition asserts the
//      repo-wide lock hierarchy: a lock may only be acquired while every
//      held lock has a strictly lower rank, or the same rank and a lower
//      address (std::less) — the address-ordered protocol FeedBatch uses to
//      take a whole wave of same-rank trip locks deadlock-free. Rank
//      inversions, recursive acquisition, and foreign unlocks abort with a
//      report of the held stack, so an interleaving that *could* deadlock
//      fails loudly on the first occurrence instead of hanging once in a
//      thousand runs. Release builds compile the tracking out entirely.
//
// The rank hierarchy (see the lock-hierarchy table in docs/ARCHITECTURE.md
// for what each level guards):
//
//   rank   mutex                          acquired while holding
//   50     IngestPipeline::Lane::mu       nothing (staging ops only; the
//                                         workers release it before feeding)
//   100    FleetMonitor::Shard::mu        nothing (map ops only)
//   200    FleetMonitor::Trip::mu         nothing, or same-rank trips in
//                                         ascending address order (waves)
//   250    AlertDeliveryQueue::mu_        trip locks (events are sequenced
//                                         and enqueued under the trip lock)
//   300    FleetMonitor::model_mu_        trip locks (lazy migration)
//   400    DriftAdapter::pending_mu_      trip locks (harvest callback)
//   500    DriftAdapter::state_mu_        nothing
//   1000   kDefault (sinks, caches, ...)  anything ranked below; must not
//                                         nest with each other
//   9900   kLogging (common/logging)      anything — logging is always legal
#pragma once

#include <condition_variable>  // oasd-lint: allow(raw-mutex)
#include <mutex>  // oasd-lint: allow(raw-mutex) — the one blessed wrapper over std::mutex

#include "common/thread_annotations.h"

namespace rl4oasd::common {

namespace lockrank {
/// Staging-queue locks of the async ingest pipeline. Below kFleetShard so a
/// misuse that feeds the monitor while still holding a lane lock fails the
/// checker immediately (the workers drain a wave first, then feed unlocked).
inline constexpr int kFleetIngest = 50;
inline constexpr int kFleetShard = 100;
inline constexpr int kFleetTrip = 200;
/// The async alert-delivery queue: events are sequence-stamped and enqueued
/// while the reporting trip's lock (and, during a FeedBatch wave, the other
/// wave trips' locks) is held, so the rank sits above kFleetTrip; the
/// drainer acquires it holding nothing.
inline constexpr int kFleetDelivery = 250;
inline constexpr int kFleetModel = 300;
inline constexpr int kDriftPending = 400;
inline constexpr int kDriftState = 500;
/// Leaf-ish mutexes with no named place in the hierarchy (sinks, caches,
/// test fixtures). They may be acquired under any lower rank but must not
/// nest with each other (the checker enforces address order if they do).
inline constexpr int kDefault = 1000;
/// The logging serialization lock: RL4_LOG must be callable under any lock.
inline constexpr int kLogging = 9900;
}  // namespace lockrank

/// A standard mutex wearing the Clang TSA capability attribute and, in
/// debug builds, enrolled in the per-thread lock-order checker. Not
/// recursive; not copyable or movable (Trips and Shards hold it by value
/// behind stable heap addresses, which the address-order protocol relies
/// on).
class RL4OASD_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(int rank = lockrank::kDefault) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RL4OASD_ACQUIRE();
  void Unlock() RL4OASD_RELEASE();
  /// Non-blocking acquire. Try-locks cannot deadlock, so the debug checker
  /// records a success but does not enforce rank order on the attempt.
  bool TryLock() RL4OASD_TRY_ACQUIRE(true);

  int rank() const { return rank_; }

 private:
  // CondVar::Wait adopts the underlying std::mutex directly (the state is
  // kept private so repo code cannot sidestep the annotated API with std
  // lock adapters).
  friend class CondVar;

  std::mutex mu_;
  const int rank_;
};

/// Scoped lock (the default way to hold a Mutex).
class RL4OASD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RL4OASD_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RL4OASD_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Movable ownership of one Mutex, for *dynamic* lock sets — FeedBatch
/// holds one per trip of a wave in a vector, released wholesale between
/// waves. Deliberately unannotated: the static analysis cannot model a
/// runtime-sized set of capabilities (that is what the debug address-order
/// checker is for), so the functions that use UniqueLock opt out with a
/// written rationale instead.
class UniqueLock {
 public:
  UniqueLock() = default;
  explicit UniqueLock(Mutex* mu) : mu_(mu) { mu_->Lock(); }
  UniqueLock(UniqueLock&& other) noexcept : mu_(other.mu_) {
    other.mu_ = nullptr;
  }
  UniqueLock& operator=(UniqueLock&& other) noexcept {
    if (this != &other) {
      Release();
      mu_ = other.mu_;
      other.mu_ = nullptr;
    }
    return *this;
  }
  ~UniqueLock() { Release(); }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// Unlocks early (no-op when empty).
  void Release() {
    if (mu_ != nullptr) {
      mu_->Unlock();
      mu_ = nullptr;
    }
  }
  bool owns() const { return mu_ != nullptr; }

 private:
  Mutex* mu_ = nullptr;
};

/// Condition variable bound to common::Mutex. Wait releases and reacquires
/// the underlying mutex without popping the debug held-lock stack: from the
/// waiting thread's point of view the lock is held across the whole block
/// (nothing else runs on that thread meanwhile), so the stack stays
/// consistent and the reacquisition needs no fresh rank check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified; `mu` is held again
  /// on return. Spurious wakeups happen — always wait in a predicate loop.
  void Wait(Mutex* mu) RL4OASD_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

namespace debug {
/// Number of locks the calling thread currently holds (debug builds; always
/// 0 in release). Exposed for tests of the checker itself.
size_t HeldLockCount();
}  // namespace debug

}  // namespace rl4oasd::common
