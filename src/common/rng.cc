#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace rl4oasd {

namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  has_spare_gaussian_ = false;
}

Rng::State Rng::ExportState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_spare_gaussian = has_spare_gaussian_;
  state.spare_gaussian = spare_gaussian_;
  return state;
}

void Rng::ImportState(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_spare_gaussian_ = state.has_spare_gaussian;
  spare_gaussian_ = state.spare_gaussian;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return UniformInt(weights.size());
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

CategoricalSampler::CategoricalSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  weights_.resize(n);
  prefix_.resize(n + 1);
  prefix_[0] = 0.0;
  // The clamped ascending sum is the same chain Categorical computes for
  // `total`, so total_ matches it bit-for-bit.
  for (size_t i = 0; i < n; ++i) {
    weights_[i] = weights[i] > 0.0 ? weights[i] : 0.0;
    prefix_[i + 1] = prefix_[i] + weights_[i];
  }
  total_ = n == 0 ? 0.0 : prefix_[n];
  // Both the subtractive scan and the prefix chain stay within
  // n * ulp(total) / 2 of the real prefix sums; 4x that covers both sides
  // with margin. Draws inside the band replay the exact scan.
  guard_ = 4.0 * static_cast<double>(n) * (total_ * 0x1.0p-52);
}

size_t CategoricalSampler::Sample(Rng* rng) const {
  assert(!weights_.empty());
  const size_t n = weights_.size();
  if (total_ <= 0.0) return rng->UniformInt(n);
  const double r = rng->Uniform() * total_;
  const auto it = std::upper_bound(prefix_.begin() + 1, prefix_.end(), r);
  const size_t idx = static_cast<size_t>(it - prefix_.begin()) - 1;
  if (idx < n && r - prefix_[idx] > guard_ && prefix_[idx + 1] - r > guard_) {
    return idx;
  }
  // Near a prefix boundary (or rounded past the last one): the binary
  // search is not certifiably equal to the scan, so run the scan itself.
  double rem = r;
  for (size_t i = 0; i < n; ++i) {
    if (rem < weights_[i]) return i;
    rem -= weights_[i];
  }
  return n - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    Shuffle(&all);
    return all;
  }
  // Reservoir sampling keeps memory at O(k).
  std::vector<size_t> reservoir(k);
  std::iota(reservoir.begin(), reservoir.end(), size_t{0});
  for (size_t i = k; i < n; ++i) {
    size_t j = UniformInt(i + 1);
    if (j < k) reservoir[j] = i;
  }
  return reservoir;
}

}  // namespace rl4oasd
