// Deterministic pseudo-random number generation. All stochastic components
// (data generation, network init, policy sampling, negative sampling) draw
// from an explicitly seeded Rng so experiments are bit-reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rl4oasd {

/// xoshiro256** PRNG seeded via SplitMix64. Fast, high-quality, and
/// deterministic across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  /// Complete generator state: the xoshiro256** words plus the Box-Muller
  /// spare. Exporting mid-stream and importing into any Rng resumes the
  /// draw sequence exactly where it left off — the piece of per-session
  /// state that makes stochastic detection snapshot/restorable.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_spare_gaussian = false;
    double spare_gaussian = 0.0;
  };

  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator; identical seeds replay identical streams.
  void Seed(uint64_t seed);

  /// Captures the full generator state (stream position included).
  State ExportState() const;

  /// Replaces the generator state with a previously exported one.
  void ImportState(const State& state);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index in [0, weights.size()) proportional to weights.
  /// Non-positive weights are treated as zero; if all are zero, samples
  /// uniformly. O(weights.size()) per draw — for repeated draws from a
  /// fixed weight vector use CategoricalSampler, which replays this exact
  /// draw sequence in O(log n).
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (reservoir when k < n, otherwise
  /// the identity permutation shuffled).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Repeated categorical sampling from a FIXED weight vector, bit-identical
/// to calling rng.Categorical(weights) (same indices, same RNG consumption)
/// but O(log n) per draw instead of O(n).
///
/// Why the results match exactly: Categorical's subtractive scan
/// (r -= w_i until r < w_i) is a monotone step function of the drawn
/// uniform, and its floating-point value stays within a provable error band
/// of the real prefix sums. When the draw lands farther than `guard_` from
/// the two bracketing precomputed prefix sums, the binary-search index and
/// the scan's index are necessarily equal; in the astronomically rare
/// near-boundary case (probability ~n^2 * 2^-50 per draw) the sampler
/// replays the original scan verbatim. Negative-sampling loops (skip-gram)
/// are the intended user.
class CategoricalSampler {
 public:
  explicit CategoricalSampler(const std::vector<double>& weights);

  /// Draws one index; consumes the RNG exactly like Rng::Categorical.
  size_t Sample(Rng* rng) const;

  double total() const { return total_; }

 private:
  std::vector<double> weights_;  // clamped copy (w <= 0 -> 0), scan fallback
  std::vector<double> prefix_;   // prefix_[i] = clamped sum of weights_[0..i)
  double total_ = 0.0;           // == Categorical's own clamped sum
  double guard_ = 0.0;           // boundary band where the scan is replayed
};

}  // namespace rl4oasd
