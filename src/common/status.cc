#include "common/status.h"

namespace rl4oasd {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code());
  s += ": ";
  s += message();
  return s;
}

}  // namespace rl4oasd
