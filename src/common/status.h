// Status and Result<T>: lightweight error propagation in the Arrow/RocksDB
// idiom. Fallible operations return Status (or Result<T> when they produce a
// value); hot paths avoid exceptions entirely.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace rl4oasd {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kNotImplemented,
};

/// Returns a human-readable name for a status code ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation. An OK status carries no allocation; error
/// statuses carry a code and message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_unique<Rep>(Rep{code, std::move(msg)});
    }
  }

  Status(const Status& other) { *this = other; }
  Status& operator=(const Status& other) {
    if (other.rep_) {
      rep_ = std::make_unique<Rep>(*other.rep_);
    } else {
      rep_.reset();
    }
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<Rep> rep_;  // null == OK
};

/// Either a value of type T or an error Status. Access to the value when the
/// result holds an error is a programming bug (asserted in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(var_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(var_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> var_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define RL4_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::rl4oasd::Status _st = (expr);        \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define RL4_ASSIGN_OR_RETURN(lhs, expr)            \
  RL4_ASSIGN_OR_RETURN_IMPL(                       \
      RL4_CONCAT_(_result_, __LINE__), lhs, expr)

#define RL4_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define RL4_CONCAT_(a, b) RL4_CONCAT_IMPL_(a, b)
#define RL4_CONCAT_IMPL_(a, b) a##b

}  // namespace rl4oasd
