// Wall-clock timing helpers for the efficiency experiments (Figures 3-4,
// Table V).
//
// This is the ONE place in src/ allowed to read a clock: serving-side
// control flow must be points-denominated (segment counts, never seconds of
// wall time), so the `clock` rule in tools/oasd_lint bans std::chrono
// everywhere else in src/ and timing flows through Stopwatch, which is only
// ever used for *reporting* (FitTimings, benches), never for decisions.
#pragma once

// oasd-lint: allow-file(clock) — the blessed timing wrapper

#include <chrono>
#include <cstdint>

namespace rl4oasd {

/// High-resolution stopwatch. Start() resets the origin; Elapsed*() report
/// time since the last Start().
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  void Start() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates timing samples and reports mean/total, used by the per-point
/// and per-trajectory runtime benches.
class TimingAccumulator {
 public:
  void Add(double seconds) {
    total_ += seconds;
    ++count_;
  }
  double total_seconds() const { return total_; }
  int64_t count() const { return count_; }
  double MeanSeconds() const { return count_ == 0 ? 0.0 : total_ / count_; }
  double MeanMillis() const { return MeanSeconds() * 1e3; }
  void Reset() {
    total_ = 0.0;
    count_ = 0;
  }

 private:
  double total_ = 0.0;
  int64_t count_ = 0;
};

}  // namespace rl4oasd
