#include "common/strings.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rl4oasd {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace rl4oasd
