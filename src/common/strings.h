// Small string helpers shared by CSV I/O and report formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rl4oasd {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins items with `sep`.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses an integer / double, returning false on any malformed input
/// (including trailing garbage).
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace rl4oasd
