// Clang Thread Safety Analysis capability macros.
//
// These wrap the [[clang::...]] capability attributes so the concurrency
// contracts documented in serve/fleet.h and serve/drift.h ("mu guards
// session, handle, and finished"; "sink callbacks run outside the shard
// lock") are *compiler-checked* on Clang builds: a read of a guarded member
// without its mutex, a call into a REQUIRES function with the lock not
// held, or a double acquisition is a -Wthread-safety diagnostic, and the
// clang CI job promotes those to errors. On GCC (and any compiler without
// the attributes) every macro expands to nothing, so the annotations cost
// zero everywhere else.
//
// Conventions (see docs/STATIC_ANALYSIS.md for the full policy):
//   * Every mutex-guarded member is declared with RL4OASD_GUARDED_BY(mu).
//   * Private helpers whose caller must hold a lock are declared with
//     RL4OASD_REQUIRES(mu) instead of re-locking.
//   * Functions that must NOT be entered with a lock held (they acquire it
//     themselves, or they call out under contract) use RL4OASD_EXCLUDES.
//   * RL4OASD_NO_THREAD_SAFETY_ANALYSIS is a last resort and always carries
//     a written rationale on the line above it.
//
// The macros mirror the canonical mutex.h shipped with the Clang
// documentation; only the spelling prefix is ours.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RL4OASD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RL4OASD_THREAD_ANNOTATION
#define RL4OASD_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability ("mutex" in diagnostics).
#define RL4OASD_CAPABILITY(x) RL4OASD_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define RL4OASD_SCOPED_CAPABILITY RL4OASD_THREAD_ANNOTATION(scoped_lockable)

/// Member is readable/writable only with `x` held.
#define RL4OASD_GUARDED_BY(x) RL4OASD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define RL4OASD_PT_GUARDED_BY(x) RL4OASD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capabilities (exclusively) to call this function.
#define RL4OASD_REQUIRES(...) \
  RL4OASD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capabilities when calling this function.
#define RL4OASD_EXCLUDES(...) \
  RL4OASD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define RL4OASD_ACQUIRE(...) \
  RL4OASD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define RL4OASD_RELEASE(...) \
  RL4OASD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define RL4OASD_TRY_ACQUIRE(ret, ...) \
  RL4OASD_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Runtime assertion that the capability is held (debug bridge for code the
/// static analysis cannot follow).
#define RL4OASD_ASSERT_CAPABILITY(x) \
  RL4OASD_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define RL4OASD_RETURN_CAPABILITY(x) RL4OASD_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis. Always pair with a rationale
/// comment; tools/oasd_lint's `tsa-optout` rule flags bare uses.
#define RL4OASD_NO_THREAD_SAFETY_ANALYSIS \
  RL4OASD_THREAD_ANNOTATION(no_thread_safety_analysis)
