#include "core/asdnet.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace rl4oasd::core {

AsdNet::AsdNet(AsdNetConfig config)
    : config_(config),
      rng_(config.seed),
      label_embed_("asd.label", 2, config.label_dim, &rng_),
      policy_("asd.policy", config.z_dim + config.label_dim, 2, &rng_) {
  label_embed_.RegisterParams(&registry_);
  policy_.RegisterParams(&registry_);
  nn::AdamConfig adam;
  adam.lr = config_.lr;
  optimizer_ = std::make_unique<nn::AdamOptimizer>(&registry_, adam);
}

void AsdNet::BuildState(const float* z, int prev_label, float* state) const {
  std::copy(z, z + config_.z_dim, state);
  const float* v = label_embed_.Lookup(prev_label ? 1 : 0);
  std::copy(v, v + config_.label_dim, state + config_.z_dim);
}

std::array<float, 2> AsdNet::ActionProbs(const float* z,
                                         int prev_label) const {
  nn::Vec state(state_dim());
  BuildState(z, prev_label, state.data());
  float logits[2];
  policy_.Forward(state.data(), logits);
  nn::SoftmaxInPlace(logits, 2);
  return {logits[0], logits[1]};
}

void AsdNet::ActionProbsBatch(const nn::Matrix& z,
                              std::span<const int> prev_labels,
                              nn::Matrix* probs) const {
  const size_t B = z.cols();
  RL4_CHECK_EQ(z.rows(), config_.z_dim);
  RL4_CHECK_EQ(prev_labels.size(), B);
  // State matrix (z_dim + label_dim) x B: the z block is a straight copy
  // (full-width rows), the label embedding scatters per column. Thread-
  // local scratch, every row rewritten per call.
  static thread_local nn::Matrix state;
  state.EnsureShape(state_dim(), B);
  std::memcpy(state.data(), z.data(), config_.z_dim * B * sizeof(float));
  for (size_t b = 0; b < B; ++b) {
    const float* v = label_embed_.Lookup(prev_labels[b] ? 1 : 0);
    float* col = state.data() + config_.z_dim * B + b;
    for (size_t r = 0; r < config_.label_dim; ++r) col[r * B] = v[r];
  }
  policy_.ForwardBatch(state, probs);
  nn::SoftmaxColumnsInPlace(probs);
}

int AsdNet::SampleAction(const float* z, int prev_label, Rng* rng) const {
  const auto probs = ActionProbs(z, prev_label);
  return rng->Uniform() < probs[0] ? 0 : 1;
}

int AsdNet::GreedyAction(const float* z, int prev_label) const {
  const auto probs = ActionProbs(z, prev_label);
  return probs[1] > probs[0] ? 1 : 0;
}

double AsdNet::ReinforceUpdate(const std::vector<AsdStep>& episode,
                               double reward) {
  if (episode.empty()) return reward;
  registry_.ZeroGrad();
  nn::Vec state(state_dim());
  nn::Vec d_state(state_dim());
  for (const AsdStep& step : episode) {
    RL4_CHECK_EQ(step.z.size(), config_.z_dim);
    BuildState(step.z.data(), step.prev_label, state.data());
    float logits[2];
    policy_.Forward(state.data(), logits);
    nn::SoftmaxInPlace(logits, 2);
    // d/d logits of (-R * log pi(a)) = -R * (onehot(a) - p) = R * (p - onehot).
    float d_logits[2] = {
        static_cast<float>(reward) * logits[0],
        static_cast<float>(reward) * logits[1],
    };
    d_logits[step.action] -= static_cast<float>(reward);
    std::fill(d_state.begin(), d_state.end(), 0.0f);
    policy_.Backward(state.data(), d_logits, d_state.data());
    label_embed_.AccumulateGrad(step.prev_label ? 1 : 0,
                                d_state.data() + config_.z_dim);
  }
  registry_.ClipGradNorm(config_.grad_clip);
  optimizer_->Step();
  return reward;
}

double AsdNet::ImitationUpdate(const std::vector<AsdStep>& episode,
                               float positive_weight) {
  if (episode.empty()) return 0.0;
  if (positive_weight <= 0.0f) {
    // Adaptive: balance the two action classes within the episode.
    size_t ones = 0;
    for (const auto& s : episode) ones += s.action;
    positive_weight = ones == 0
                          ? 1.0f
                          : std::min(50.0f, static_cast<float>(
                                                episode.size() - ones) /
                                                static_cast<float>(ones));
  }
  registry_.ZeroGrad();
  nn::Vec state(state_dim());
  nn::Vec d_state(state_dim());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(episode.size());
  for (const AsdStep& step : episode) {
    BuildState(step.z.data(), step.prev_label, state.data());
    float logits[2];
    policy_.Forward(state.data(), logits);
    nn::SoftmaxInPlace(logits, 2);
    loss += nn::CrossEntropy(logits, 2, static_cast<size_t>(step.action));
    const float w = inv_n * (step.action == 1 ? positive_weight : 1.0f);
    float d_logits[2] = {logits[0] * w, logits[1] * w};
    d_logits[step.action] -= w;
    std::fill(d_state.begin(), d_state.end(), 0.0f);
    policy_.Backward(state.data(), d_logits, d_state.data());
    label_embed_.AccumulateGrad(step.prev_label ? 1 : 0,
                                d_state.data() + config_.z_dim);
  }
  registry_.ClipGradNorm(config_.grad_clip);
  optimizer_->Step();
  return loss / static_cast<double>(episode.size());
}

}  // namespace rl4oasd::core
