// ASDNet (paper Section IV-D): the anomalous-subtrajectory detection network.
// Labeling road segments is modeled as an MDP:
//   state  s_i = [z_i ; v(e_{i-1}.l)]  (RSRNet representation + embedded
//                previous label),
//   action a_i in {0, 1} labels segment i as normal/anomalous,
//   reward = mean local continuity reward + global label-quality reward.
// The stochastic policy is a single-layer feedforward network with softmax
// (paper setting), trained with REINFORCE.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "traj/types.h"

namespace rl4oasd::core {

struct AsdNetConfig {
  size_t z_dim = 128;      // must equal RsrNet::z_dim()
  size_t label_dim = 64;   // label-embedding size (paper: 128)
  float lr = 0.001f;       // paper setting
  float grad_clip = 5.0f;
  uint64_t seed = 23;
};

/// One recorded MDP step, kept for the episode's REINFORCE update.
struct AsdStep {
  nn::Vec z;       // representation from RSRNet
  int prev_label;  // label of the previous segment
  int action;      // sampled label for this segment
};

class AsdNet {
 public:
  explicit AsdNet(AsdNetConfig config);

  const AsdNetConfig& config() const { return config_; }
  size_t state_dim() const { return config_.z_dim + config_.label_dim; }

  /// π(a | s): action probabilities for state (z, prev_label).
  std::array<float, 2> ActionProbs(const float* z, int prev_label) const;

  /// Batched policy evaluation: `z` is (z_dim x B) column-per-sample,
  /// `prev_labels` the matching previous labels; `probs` is resized to
  /// (2 x B) with column b equal to ActionProbs on sample b (<= 1e-6
  /// relative; see nn::Gemm's equivalence contract). The policy matmul of
  /// all B samples runs as one GEMM.
  void ActionProbsBatch(const nn::Matrix& z, std::span<const int> prev_labels,
                        nn::Matrix* probs) const;

  /// Samples an action from the stochastic policy.
  int SampleAction(const float* z, int prev_label, Rng* rng) const;

  /// argmax action (used at detection time for determinism).
  int GreedyAction(const float* z, int prev_label) const;

  /// REINFORCE update over one episode: accumulates
  ///   grad = -R * sum_i d/dtheta log pi(a_i | s_i)
  /// (gradient ascent on J) and applies one Adam step. Returns R.
  double ReinforceUpdate(const std::vector<AsdStep>& episode, double reward);

  /// Supervised warm-start (paper: "we specify its actions as the noisy
  /// labels"): cross-entropy imitation of the episode's actions. Anomalous
  /// actions (1) are upweighted by `positive_weight` (<= 0 picks a
  /// class-balancing weight per episode, capped at 50) — anomalous actions are a few
  /// percent of all steps, and an unweighted fit never learns to *start* an
  /// anomalous run. Returns the mean CE loss before the update.
  double ImitationUpdate(const std::vector<AsdStep>& episode,
                         float positive_weight = 0.0f);

  nn::ParameterRegistry* registry() { return &registry_; }
  float lr() const { return optimizer_->lr(); }
  void set_lr(float lr) { optimizer_->set_lr(lr); }

 private:
  void BuildState(const float* z, int prev_label, float* state) const;

  AsdNetConfig config_;
  Rng rng_;
  nn::Embedding label_embed_;  // 2 x label_dim
  nn::Linear policy_;          // state_dim -> 2
  nn::ParameterRegistry registry_;
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
};

}  // namespace rl4oasd::core
