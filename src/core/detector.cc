#include "core/detector.h"

#include "common/logging.h"

namespace rl4oasd::core {

void ApplyDelayedLabeling(std::vector<uint8_t>* labels, int delay_d) {
  if (delay_d <= 0) return;
  auto& l = *labels;
  const int n = static_cast<int>(l.size());
  int last_one = -1;
  for (int i = 0; i < n; ++i) {
    if (!l[i]) continue;
    // A boundary formed at `last_one`; the D-segment lookahead scans D more
    // segments past it, so this 1 at `i` merges when the zero gap
    // (i - last_one - 1) is at most D.
    if (last_one >= 0 && i - last_one <= delay_d + 1 && i - last_one > 1) {
      for (int k = last_one + 1; k < i; ++k) l[k] = 1;
    }
    last_one = i;
  }
}

int RnelDeterministicLabel(const roadnet::RoadNetwork& net,
                           traj::EdgeId prev_edge, int prev_label,
                           traj::EdgeId cur_edge) {
  const int prev_out = net.EdgeOutDegree(prev_edge);
  const int cur_in = net.EdgeInDegree(cur_edge);
  // (1) No alternative transition exists in either direction: the label
  //     cannot change.
  if (prev_out == 1 && cur_in == 1) return prev_label;
  // (2) Leaving a normal segment with no alternative exit cannot start an
  //     anomaly.
  if (prev_out == 1 && cur_in > 1 && prev_label == 0) return 0;
  // (3) Entering a segment with no alternative entrance cannot end an
  //     anomaly.
  if (prev_out > 1 && cur_in == 1 && prev_label == 1) return 1;
  return -1;
}

OnlineDetector::OnlineDetector(const roadnet::RoadNetwork* net,
                               const Preprocessor* preprocessor,
                               const RsrNet* rsr, const AsdNet* asd,
                               DetectorConfig config)
    : net_(net),
      preprocessor_(preprocessor),
      rsr_(rsr),
      asd_(asd),
      config_(config) {
  RL4_CHECK(net != nullptr);
  RL4_CHECK(preprocessor != nullptr);
  RL4_CHECK(rsr != nullptr);
  RL4_CHECK(asd != nullptr);
}

OnlineDetector::Session::Session(const OnlineDetector* owner, traj::SdPair sd,
                                 double start_time)
    : owner_(owner),
      sd_(sd),
      start_time_(start_time),
      stream_(owner->rsr_->config().hidden_dim),
      tracker_(owner->config_.use_dl ? owner->config_.delay_d : 0),
      rng_(owner->config_.seed) {}

int OnlineDetector::Session::Feed(traj::EdgeId edge) {
  int label;
  if (labels_.empty()) {
    // The source segment is normal by definition (Algorithm 1, line 2). The
    // LSTM still consumes it so downstream states see the full history.
    owner_->rsr_->StepForward(edge, /*nrf_bit=*/0, &stream_, nullptr);
    label = 0;
  } else {
    const uint8_t nrf = owner_->preprocessor_->NormalRouteFeatureAt(
        sd_, start_time_, prev_edge_, edge);
    const nn::Vec z =
        owner_->rsr_->StepForward(edge, nrf, &stream_, nullptr);
    int det = -1;
    if (owner_->config_.use_rnel) {
      det = RnelDeterministicLabel(*owner_->net_, prev_edge_, prev_label_,
                                   edge);
    }
    if (det >= 0) {
      label = det;
    } else if (owner_->config_.stochastic) {
      label = owner_->asd_->SampleAction(z.data(), prev_label_, &rng_);
    } else {
      label = owner_->asd_->GreedyAction(z.data(), prev_label_);
    }
    // The destination segment is also normal by definition; Finish()
    // enforces it once the trajectory is known to be complete.
  }
  labels_.push_back(static_cast<uint8_t>(label));
  edges_.push_back(edge);
  prev_edge_ = edge;
  prev_label_ = label;
  if (const auto run = tracker_.Push(label)) RecordClosedRun(*run);
  return label;
}

std::vector<uint8_t> OnlineDetector::Session::Finish() {
  if (!labels_.empty()) labels_.back() = 0;
  Postprocess(&labels_);
  if (!finished_) {
    finished_ = true;
    // Reconcile the incremental run list with the authoritative final
    // labels. Runs already finalized are bit-identical here (the tail was
    // out of their DL reach); anything beyond them — the open tail, or a
    // pending run reshaped by the forced-normal destination — surfaces now.
    // Matching by begin offset guarantees a run is neither re-reported nor
    // skipped.
    size_t known = 0;
    for (const auto& run : traj::ExtractAnomalousRuns(labels_)) {
      if (known < closed_runs_.size() &&
          closed_runs_[known].begin == run.begin) {
        ++known;
        continue;
      }
      closed_runs_.push_back(run);
      newly_closed_.push_back(run);
    }
  }
  return labels_;
}

void OnlineDetector::Session::Postprocess(std::vector<uint8_t>* labels) const {
  if (owner_->config_.use_dl) {
    ApplyDelayedLabeling(labels, owner_->config_.delay_d);
  }
  if (owner_->config_.use_boundary_trim) {
    TrimRunBoundaries(labels);
  }
}

void OnlineDetector::Session::TrimRunBoundaries(
    std::vector<uint8_t>* labels) const {
  auto& l = *labels;
  for (const auto& run : traj::ExtractAnomalousRuns(l)) {
    const traj::Subtrajectory kept = TrimmedRun(run);
    for (int k = run.begin; k < kept.begin; ++k) l[k] = 0;
    for (int k = kept.end; k < run.end; ++k) l[k] = 0;
  }
}

traj::Subtrajectory OnlineDetector::Session::TrimmedRun(
    traj::Subtrajectory run) const {
  // Walk the run ends inward while the boundary edge itself lies on a
  // normal route of the group (the transition into it was rare, the
  // segment is not).
  const auto& pre = *owner_->preprocessor_;
  while (run.begin < run.end &&
         pre.EdgeOnNormalRouteAt(sd_, start_time_, edges_[run.begin])) {
    ++run.begin;
  }
  while (run.end > run.begin &&
         pre.EdgeOnNormalRouteAt(sd_, start_time_, edges_[run.end - 1])) {
    --run.end;
  }
  return run;
}

void OnlineDetector::Session::RecordClosedRun(traj::Subtrajectory run) {
  if (owner_->config_.use_boundary_trim) run = TrimmedRun(run);
  if (run.begin >= run.end) return;  // trimmed away entirely
  closed_runs_.push_back(run);
  newly_closed_.push_back(run);
}

std::vector<traj::Subtrajectory> OnlineDetector::Session::CurrentAnomalies()
    const {
  std::vector<traj::Subtrajectory> runs = closed_runs_;
  if (auto open = OpenRun()) runs.push_back(*open);
  return runs;
}

std::vector<traj::Subtrajectory>
OnlineDetector::Session::TakeNewlyClosedRuns() {
  std::vector<traj::Subtrajectory> taken;
  taken.swap(newly_closed_);
  return taken;
}

std::optional<traj::Subtrajectory> OnlineDetector::Session::OpenRun() const {
  if (finished_) return std::nullopt;  // settled into closed_runs_
  auto run = tracker_.pending();
  if (!run.has_value()) return std::nullopt;
  if (owner_->config_.use_boundary_trim) run = TrimmedRun(*run);
  if (run->begin >= run->end) return std::nullopt;
  return run;
}

void OnlineDetector::FeedBatch(std::span<Session* const> sessions,
                               std::span<const traj::EdgeId> edges,
                               int* labels) const {
  const size_t B = sessions.size();
  RL4_CHECK_EQ(edges.size(), B);
  if (B == 0) return;
  if (B == 1) {  // GEMMs degenerate to the matvec path; skip the plumbing
    const int label = sessions[0]->Feed(edges[0]);
    if (labels != nullptr) labels[0] = label;
    return;
  }

  // Phase 1 (scalar, cheap): per-session NRF bits and deterministic labels.
  // A session's first segment is normal by definition and skips the policy;
  // RNEL decides some of the rest without the policy. The RSRNet step still
  // runs for every session so downstream states see the full history.
  // All scratch is thread-local and fully rewritten per call, so
  // steady-state waves allocate nothing.
  static thread_local std::vector<uint8_t> nrf;
  static thread_local std::vector<int> det;
  static thread_local std::vector<RsrStream*> streams;
  nrf.assign(B, 0);
  det.assign(B, -1);
  streams.resize(B);
  for (size_t b = 0; b < B; ++b) {
    Session* s = sessions[b];
    RL4_CHECK(s->owner_ == this);
    streams[b] = &s->stream_;
    if (s->labels_.empty()) continue;  // first point: nrf 0, label 0
    nrf[b] = preprocessor_->NormalRouteFeatureAt(s->sd_, s->start_time_,
                                                 s->prev_edge_, edges[b]);
    if (config_.use_rnel) {
      det[b] = RnelDeterministicLabel(*net_, s->prev_edge_, s->prev_label_,
                                      edges[b]);
    }
  }

  // Phase 2: one batched RSRNet step across all B sessions.
  static thread_local nn::Matrix z;
  rsr_->StepForwardBatch(edges, nrf, streams, &z);

  // Phase 3: batched policy over the sessions RNEL left undecided.
  static thread_local std::vector<int> decided;
  static thread_local std::vector<size_t> need;
  decided.resize(B);
  need.clear();
  for (size_t b = 0; b < B; ++b) {
    if (sessions[b]->labels_.empty()) {
      decided[b] = 0;
    } else if (det[b] >= 0) {
      decided[b] = det[b];
    } else {
      need.push_back(b);
    }
  }
  if (!need.empty()) {
    const size_t M = need.size();
    const size_t zd = z.rows();
    static thread_local nn::Matrix zsub;
    static thread_local std::vector<int> prev;
    static thread_local nn::Matrix probs;
    zsub.EnsureShape(zd, M);
    prev.resize(M);
    for (size_t m = 0; m < M; ++m) {
      const size_t b = need[m];
      const float* src = z.data() + b;
      float* dst = zsub.data() + m;
      for (size_t r = 0; r < zd; ++r) dst[r * M] = src[r * B];
      prev[m] = sessions[b]->prev_label_;
    }
    asd_->ActionProbsBatch(zsub, prev, &probs);
    for (size_t m = 0; m < M; ++m) {
      const size_t b = need[m];
      const float p0 = probs(0, m);
      const float p1 = probs(1, m);
      if (config_.stochastic) {
        // Same per-session draw as SampleAction, so batched and streaming
        // stochastic runs consume each session's RNG identically.
        decided[b] = sessions[b]->rng_.Uniform() < p0 ? 0 : 1;
      } else {
        decided[b] = p1 > p0 ? 1 : 0;
      }
    }
  }

  // Phase 4 (scalar): per-session bookkeeping, identical to Feed's tail.
  for (size_t b = 0; b < B; ++b) {
    Session* s = sessions[b];
    const int label = decided[b];
    s->labels_.push_back(static_cast<uint8_t>(label));
    s->edges_.push_back(edges[b]);
    s->prev_edge_ = edges[b];
    s->prev_label_ = label;
    if (const auto run = s->tracker_.Push(label)) s->RecordClosedRun(*run);
    if (labels != nullptr) labels[b] = label;
  }
}

std::vector<uint8_t> OnlineDetector::Detect(
    const traj::MapMatchedTrajectory& t) const {
  Session session(this, t.sd(), t.start_time);
  for (traj::EdgeId e : t.edges) session.Feed(e);
  return session.Finish();
}

}  // namespace rl4oasd::core
