#include "core/detector.h"

#include "common/logging.h"

namespace rl4oasd::core {

void ApplyDelayedLabeling(std::vector<uint8_t>* labels, int delay_d) {
  if (delay_d <= 0) return;
  auto& l = *labels;
  const int n = static_cast<int>(l.size());
  int last_one = -1;
  for (int i = 0; i < n; ++i) {
    if (!l[i]) continue;
    // A boundary formed at `last_one`; the D-segment lookahead scans D more
    // segments past it, so this 1 at `i` merges when the zero gap
    // (i - last_one - 1) is at most D.
    if (last_one >= 0 && i - last_one <= delay_d + 1 && i - last_one > 1) {
      for (int k = last_one + 1; k < i; ++k) l[k] = 1;
    }
    last_one = i;
  }
}

int RnelDeterministicLabel(const roadnet::RoadNetwork& net,
                           traj::EdgeId prev_edge, int prev_label,
                           traj::EdgeId cur_edge) {
  const int prev_out = net.EdgeOutDegree(prev_edge);
  const int cur_in = net.EdgeInDegree(cur_edge);
  // (1) No alternative transition exists in either direction: the label
  //     cannot change.
  if (prev_out == 1 && cur_in == 1) return prev_label;
  // (2) Leaving a normal segment with no alternative exit cannot start an
  //     anomaly.
  if (prev_out == 1 && cur_in > 1 && prev_label == 0) return 0;
  // (3) Entering a segment with no alternative entrance cannot end an
  //     anomaly.
  if (prev_out > 1 && cur_in == 1 && prev_label == 1) return 1;
  return -1;
}

OnlineDetector::OnlineDetector(const roadnet::RoadNetwork* net,
                               const Preprocessor* preprocessor,
                               const RsrNet* rsr, const AsdNet* asd,
                               DetectorConfig config)
    : net_(net),
      preprocessor_(preprocessor),
      rsr_(rsr),
      asd_(asd),
      config_(config) {
  RL4_CHECK(net != nullptr);
  RL4_CHECK(preprocessor != nullptr);
  RL4_CHECK(rsr != nullptr);
  RL4_CHECK(asd != nullptr);
}

OnlineDetector::Session::Session(const OnlineDetector* owner, traj::SdPair sd,
                                 double start_time)
    : owner_(owner),
      sd_(sd),
      start_time_(start_time),
      // Full stream_state_size (not hidden_dim): stacked cores carry one
      // slice per layer, and a never-fed session must already export
      // correctly-sized hidden vectors for snapshot/restore.
      stream_(owner->rsr_->stream_state_size()),
      tracker_(owner->config_.use_dl ? owner->config_.delay_d : 0),
      rng_(owner->config_.seed) {}

int OnlineDetector::Session::Feed(traj::EdgeId edge) {
  int label;
  if (labels_.empty()) {
    // The source segment is normal by definition (Algorithm 1, line 2). The
    // LSTM still consumes it so downstream states see the full history.
    owner_->rsr_->StepForward(edge, /*nrf_bit=*/0, &stream_, nullptr);
    label = 0;
  } else {
    const uint8_t nrf = owner_->preprocessor_->NormalRouteFeatureAt(
        sd_, start_time_, prev_edge_, edge);
    const nn::Vec z =
        owner_->rsr_->StepForward(edge, nrf, &stream_, nullptr);
    int det = -1;
    if (owner_->config_.use_rnel) {
      det = RnelDeterministicLabel(*owner_->net_, prev_edge_, prev_label_,
                                   edge);
    }
    if (det >= 0) {
      label = det;
    } else if (owner_->config_.stochastic) {
      label = owner_->asd_->SampleAction(z.data(), prev_label_, &rng_);
    } else {
      label = owner_->asd_->GreedyAction(z.data(), prev_label_);
    }
    // The destination segment is also normal by definition; Finish()
    // enforces it once the trajectory is known to be complete.
  }
  labels_.push_back(static_cast<uint8_t>(label));
  edges_.push_back(edge);
  prev_edge_ = edge;
  prev_label_ = label;
  if (const auto run = tracker_.Push(label)) RecordClosedRun(*run);
  return label;
}

std::vector<uint8_t> OnlineDetector::Session::Finish() {
  if (!labels_.empty()) labels_.back() = 0;
  Postprocess(&labels_);
  if (!finished_) {
    finished_ = true;
    // Reconcile the incremental run list with the authoritative final
    // labels. Runs already finalized are bit-identical here (the tail was
    // out of their DL reach); anything beyond them — the open tail, or a
    // pending run reshaped by the forced-normal destination — surfaces now.
    // Matching by begin offset guarantees a run is neither re-reported nor
    // skipped.
    size_t known = 0;
    for (const auto& run : traj::ExtractAnomalousRuns(labels_)) {
      if (known < closed_runs_.size() &&
          closed_runs_[known].begin == run.begin) {
        ++known;
        continue;
      }
      closed_runs_.push_back(run);
      newly_closed_.push_back(run);
    }
  }
  return labels_;
}

void OnlineDetector::Session::Postprocess(std::vector<uint8_t>* labels) const {
  if (owner_->config_.use_dl) {
    ApplyDelayedLabeling(labels, owner_->config_.delay_d);
  }
  if (owner_->config_.use_boundary_trim) {
    TrimRunBoundaries(labels);
  }
}

void OnlineDetector::Session::TrimRunBoundaries(
    std::vector<uint8_t>* labels) const {
  auto& l = *labels;
  for (const auto& run : traj::ExtractAnomalousRuns(l)) {
    const traj::Subtrajectory kept = TrimmedRun(run);
    for (int k = run.begin; k < kept.begin; ++k) l[k] = 0;
    for (int k = kept.end; k < run.end; ++k) l[k] = 0;
  }
}

traj::Subtrajectory OnlineDetector::Session::TrimmedRun(
    traj::Subtrajectory run) const {
  // Walk the run ends inward while the boundary edge itself lies on a
  // normal route of the group (the transition into it was rare, the
  // segment is not).
  const auto& pre = *owner_->preprocessor_;
  while (run.begin < run.end &&
         pre.EdgeOnNormalRouteAt(sd_, start_time_, edges_[run.begin])) {
    ++run.begin;
  }
  while (run.end > run.begin &&
         pre.EdgeOnNormalRouteAt(sd_, start_time_, edges_[run.end - 1])) {
    --run.end;
  }
  return run;
}

void OnlineDetector::Session::RecordClosedRun(traj::Subtrajectory run) {
  if (owner_->config_.use_boundary_trim) run = TrimmedRun(run);
  if (run.begin >= run.end) return;  // trimmed away entirely
  closed_runs_.push_back(run);
  newly_closed_.push_back(run);
}

std::vector<traj::Subtrajectory> OnlineDetector::Session::CurrentAnomalies()
    const {
  std::vector<traj::Subtrajectory> runs = closed_runs_;
  if (auto open = OpenRun()) runs.push_back(*open);
  return runs;
}

std::vector<traj::Subtrajectory>
OnlineDetector::Session::TakeNewlyClosedRuns() {
  std::vector<traj::Subtrajectory> taken;
  taken.swap(newly_closed_);
  return taken;
}

std::optional<traj::Subtrajectory> OnlineDetector::Session::OpenRun() const {
  if (finished_) return std::nullopt;  // settled into closed_runs_
  auto run = tracker_.pending();
  if (!run.has_value()) return std::nullopt;
  if (owner_->config_.use_boundary_trim) run = TrimmedRun(*run);
  if (run->begin >= run->end) return std::nullopt;
  return run;
}

namespace {

void WriteRuns(const std::vector<traj::Subtrajectory>& runs, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(runs.size()));
  for (const auto& run : runs) {
    w->WriteI32(run.begin);
    w->WriteI32(run.end);
  }
}

Status ReadRuns(BinaryReader* r, size_t num_labels,
                std::vector<traj::Subtrajectory>* runs) {
  uint32_t count;
  RL4_RETURN_NOT_OK(r->ReadU32(&count));
  if (r->remaining() < static_cast<size_t>(count) * 8) {
    return Status::OutOfRange("run count exceeds remaining payload");
  }
  runs->clear();
  runs->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    traj::Subtrajectory run;
    RL4_RETURN_NOT_OK(r->ReadI32(&run.begin));
    RL4_RETURN_NOT_OK(r->ReadI32(&run.end));
    if (run.begin < 0 || run.begin >= run.end ||
        run.end > static_cast<int>(num_labels)) {
      return Status::InvalidArgument("anomalous run out of label bounds");
    }
    runs->push_back(run);
  }
  return Status::OK();
}

}  // namespace

void OnlineDetector::Session::ExportState(BinaryWriter* w) const {
  w->WriteI32(sd_.source);
  w->WriteI32(sd_.dest);
  w->WriteF64(start_time_);
  w->WriteU8(finished_ ? 1 : 0);
  w->WriteU32(static_cast<uint32_t>(labels_.size()));
  w->WriteBytes(labels_.data(), labels_.size());
  w->WriteI32Vector(edges_);
  tracker_.ExportState(w);
  WriteRuns(closed_runs_, w);
  WriteRuns(newly_closed_, w);
  w->WriteF32Vector(stream_.state.h);
  w->WriteF32Vector(stream_.state.c);
  const Rng::State rng = rng_.ExportState();
  for (uint64_t word : rng.s) w->WriteU64(word);
  w->WriteU8(rng.has_spare_gaussian ? 1 : 0);
  w->WriteF64(rng.spare_gaussian);
}

Status OnlineDetector::Session::ImportState(BinaryReader* r) {
  // Parse and validate everything into locals first: a corrupt record must
  // leave the session untouched, and no field may be trusted before its
  // bounds are checked (labels index edges, runs index labels, hidden
  // vectors must match the model architecture).
  traj::SdPair sd;
  double start_time;
  uint8_t finished;
  RL4_RETURN_NOT_OK(r->ReadI32(&sd.source));
  RL4_RETURN_NOT_OK(r->ReadI32(&sd.dest));
  RL4_RETURN_NOT_OK(r->ReadF64(&start_time));
  RL4_RETURN_NOT_OK(r->ReadU8(&finished));
  if (finished > 1) {
    return Status::InvalidArgument("session record corrupt (finished flag)");
  }

  uint32_t num_labels;
  RL4_RETURN_NOT_OK(r->ReadU32(&num_labels));
  if (r->remaining() < num_labels) {
    return Status::OutOfRange("label count exceeds remaining payload");
  }
  std::vector<uint8_t> labels(num_labels);
  RL4_RETURN_NOT_OK(r->ReadBytes(labels.data(), num_labels));
  for (uint8_t l : labels) {
    if (l > 1) return Status::InvalidArgument("label outside {0, 1}");
  }
  std::vector<traj::EdgeId> edges;
  RL4_RETURN_NOT_OK(r->ReadI32Vector(&edges));
  if (edges.size() != labels.size()) {
    return Status::InvalidArgument("edge/label history lengths disagree");
  }
  const auto num_edges = static_cast<traj::EdgeId>(owner_->net_->NumEdges());
  for (traj::EdgeId e : edges) {
    if (e < 0 || e >= num_edges) {
      return Status::InvalidArgument("edge id outside the road network");
    }
  }

  RunTracker tracker(owner_->config_.use_dl ? owner_->config_.delay_d : 0);
  RL4_RETURN_NOT_OK(tracker.ImportState(r));
  if (tracker.position() != static_cast<int>(labels.size())) {
    return Status::InvalidArgument(
        "run tracker position disagrees with label count");
  }
  std::vector<traj::Subtrajectory> closed_runs, newly_closed;
  RL4_RETURN_NOT_OK(ReadRuns(r, labels.size(), &closed_runs));
  RL4_RETURN_NOT_OK(ReadRuns(r, labels.size(), &newly_closed));

  RsrStream stream;
  RL4_RETURN_NOT_OK(r->ReadF32Vector(&stream.state.h));
  RL4_RETURN_NOT_OK(r->ReadF32Vector(&stream.state.c));
  const size_t state_size = owner_->rsr_->stream_state_size();
  if (stream.state.h.size() != state_size ||
      stream.state.c.size() != state_size) {
    return Status::FailedPrecondition(
        "recurrent state size " + std::to_string(stream.state.h.size()) +
        " does not match the serving model (" + std::to_string(state_size) +
        "); was the snapshot taken with a different architecture?");
  }

  Rng::State rng;
  for (uint64_t& word : rng.s) RL4_RETURN_NOT_OK(r->ReadU64(&word));
  uint8_t has_spare;
  RL4_RETURN_NOT_OK(r->ReadU8(&has_spare));
  if (has_spare > 1) {
    return Status::InvalidArgument("session record corrupt (rng spare flag)");
  }
  rng.has_spare_gaussian = has_spare != 0;
  RL4_RETURN_NOT_OK(r->ReadF64(&rng.spare_gaussian));

  sd_ = sd;
  start_time_ = start_time;
  finished_ = finished != 0;
  labels_ = std::move(labels);
  edges_ = std::move(edges);
  prev_edge_ = edges_.empty() ? roadnet::kInvalidEdge : edges_.back();
  prev_label_ = labels_.empty() ? 0 : labels_.back();
  tracker_ = tracker;
  closed_runs_ = std::move(closed_runs);
  newly_closed_ = std::move(newly_closed);
  stream_ = std::move(stream);
  rng_.ImportState(rng);
  return Status::OK();
}

OnlineDetector::Session OnlineDetector::ReprimeSession(
    const Session& old) const {
  Session s(this, old.sd_, old.start_time_);
  // The bookkeeping is history, not model output: carrying it over verbatim
  // (including the tracker's DL window and the RNG stream position) is what
  // guarantees a run already alerted is never re-reported and a pending one
  // is never dropped across the swap.
  s.labels_ = old.labels_;
  s.edges_ = old.edges_;
  s.prev_edge_ = old.prev_edge_;
  s.prev_label_ = old.prev_label_;
  s.tracker_ = old.tracker_;
  s.closed_runs_ = old.closed_runs_;
  s.newly_closed_ = old.newly_closed_;
  s.finished_ = old.finished_;
  s.rng_ = old.rng_;
  // Deterministic re-prime: replay the fed edges through this detector's
  // RSRNet so the hidden state reflects the new weights over the same
  // history (NRF bits recomputed against this detector's preprocessor; the
  // first segment is normal by definition and carries NRF 0, as in Feed).
  traj::EdgeId prev = roadnet::kInvalidEdge;
  for (size_t i = 0; i < s.edges_.size(); ++i) {
    const uint8_t nrf =
        i == 0 ? 0
               : preprocessor_->NormalRouteFeatureAt(s.sd_, s.start_time_,
                                                     prev, s.edges_[i]);
    rsr_->StepForward(s.edges_[i], nrf, &s.stream_, nullptr);
    prev = s.edges_[i];
  }
  return s;
}

void OnlineDetector::FeedBatch(std::span<Session* const> sessions,
                               std::span<const traj::EdgeId> edges,
                               int* labels) const {
  const size_t B = sessions.size();
  RL4_CHECK_EQ(edges.size(), B);
  if (B == 0) return;
  if (B == 1) {  // GEMMs degenerate to the matvec path; skip the plumbing
    const int label = sessions[0]->Feed(edges[0]);
    if (labels != nullptr) labels[0] = label;
    return;
  }

  // Phase 1 (scalar, cheap): per-session NRF bits and deterministic labels.
  // A session's first segment is normal by definition and skips the policy;
  // RNEL decides some of the rest without the policy. The RSRNet step still
  // runs for every session so downstream states see the full history.
  // All scratch is thread-local and fully rewritten per call, so
  // steady-state waves allocate nothing.
  static thread_local std::vector<uint8_t> nrf;
  static thread_local std::vector<int> det;
  static thread_local std::vector<RsrStream*> streams;
  nrf.assign(B, 0);
  det.assign(B, -1);
  streams.resize(B);
  for (size_t b = 0; b < B; ++b) {
    Session* s = sessions[b];
    RL4_CHECK(s->owner_ == this);
    streams[b] = &s->stream_;
    if (s->labels_.empty()) continue;  // first point: nrf 0, label 0
    nrf[b] = preprocessor_->NormalRouteFeatureAt(s->sd_, s->start_time_,
                                                 s->prev_edge_, edges[b]);
    if (config_.use_rnel) {
      det[b] = RnelDeterministicLabel(*net_, s->prev_edge_, s->prev_label_,
                                      edges[b]);
    }
  }

  // Phase 2: one batched RSRNet step across all B sessions.
  static thread_local nn::Matrix z;
  rsr_->StepForwardBatch(edges, nrf, streams, &z);

  // Phase 3: batched policy over the sessions RNEL left undecided.
  static thread_local std::vector<int> decided;
  static thread_local std::vector<size_t> need;
  decided.resize(B);
  need.clear();
  for (size_t b = 0; b < B; ++b) {
    if (sessions[b]->labels_.empty()) {
      decided[b] = 0;
    } else if (det[b] >= 0) {
      decided[b] = det[b];
    } else {
      need.push_back(b);
    }
  }
  if (!need.empty()) {
    const size_t M = need.size();
    const size_t zd = z.rows();
    static thread_local nn::Matrix zsub;
    static thread_local std::vector<int> prev;
    static thread_local nn::Matrix probs;
    zsub.EnsureShape(zd, M);
    prev.resize(M);
    for (size_t m = 0; m < M; ++m) {
      const size_t b = need[m];
      const float* src = z.data() + b;
      float* dst = zsub.data() + m;
      for (size_t r = 0; r < zd; ++r) dst[r * M] = src[r * B];
      prev[m] = sessions[b]->prev_label_;
    }
    asd_->ActionProbsBatch(zsub, prev, &probs);
    for (size_t m = 0; m < M; ++m) {
      const size_t b = need[m];
      const float p0 = probs(0, m);
      const float p1 = probs(1, m);
      if (config_.stochastic) {
        // Same per-session draw as SampleAction, so batched and streaming
        // stochastic runs consume each session's RNG identically.
        decided[b] = sessions[b]->rng_.Uniform() < p0 ? 0 : 1;
      } else {
        decided[b] = p1 > p0 ? 1 : 0;
      }
    }
  }

  // Phase 4 (scalar): per-session bookkeeping, identical to Feed's tail.
  for (size_t b = 0; b < B; ++b) {
    Session* s = sessions[b];
    const int label = decided[b];
    s->labels_.push_back(static_cast<uint8_t>(label));
    s->edges_.push_back(edges[b]);
    s->prev_edge_ = edges[b];
    s->prev_label_ = label;
    if (const auto run = s->tracker_.Push(label)) s->RecordClosedRun(*run);
    if (labels != nullptr) labels[b] = label;
  }
}

std::vector<uint8_t> OnlineDetector::Detect(
    const traj::MapMatchedTrajectory& t) const {
  Session session(this, t.sd(), t.start_time);
  for (traj::EdgeId e : t.edges) session.Feed(e);
  return session.Finish();
}

}  // namespace rl4oasd::core
