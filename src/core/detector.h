// The online RL4OASD detector (paper Algorithm 1) with its two enhancements:
//   * Road Network Enhanced Labeling (RNEL) — degree-based rules make some
//     labels deterministic, skipping the policy network, and
//   * Delayed Labeling (DL) — a D-segment lookahead merges anomalous
//     fragments separated by short normal gaps.
// The detector is streaming: Session consumes one road segment at a time,
// which is what the per-point efficiency experiments (Figure 3) measure.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/binary.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/asdnet.h"
#include "core/preprocess.h"
#include "core/rsrnet.h"
#include "roadnet/road_network.h"
#include "traj/types.h"

namespace rl4oasd::core {

struct DetectorConfig {
  bool use_rnel = true;
  bool use_dl = true;
  int delay_d = 8;          // paper: D = 8
  // Route-level boundary trimming: edges at the ends of a formed anomalous
  // run that lie on an inferred normal route are relabeled normal. A
  // transition-level detector always flags the segment where a detour
  // rejoins the normal route (its incoming transition is rare even though
  // the segment itself is normal); trimming aligns the reported boundary
  // with the route-level ground truth. Uses only historical statistics and
  // one segment of lookahead, so it stays online-compatible.
  bool use_boundary_trim = true;
  bool stochastic = false;  // sample vs argmax actions at detection time
  uint64_t seed = 11;
};

/// Applies the Delayed-Labeling merge to a finished label sequence: a run of
/// 0s of length <= D sandwiched between 1s is converted to 1s (paper: scan D
/// more segments after a boundary and extend to the last 1 found, so a zero
/// gap of exactly D is still within the lookahead).
void ApplyDelayedLabeling(std::vector<uint8_t>* labels, int delay_d);

/// Incrementally maintains the post-Delayed-Labeling run structure of a
/// streaming 0/1 label sequence in O(1) per label. A run becomes *final*
/// once no future label can reach it: DL merges a zero gap of at most D, so
/// a run followed by D+1 zeros can never change again. Feeding the raw
/// per-point labels reproduces exactly the runs that ApplyDelayedLabeling +
/// traj::ExtractAnomalousRuns would compute on the same prefix.
class RunTracker {
 public:
  /// `delay_d` <= 0 disables merging (a run is final at its first zero).
  explicit RunTracker(int delay_d) : d_(delay_d > 0 ? delay_d : 0) {}

  /// Consumes the next label; returns the run that just became final, if
  /// any. Runs are returned in order and exactly once each.
  std::optional<traj::Subtrajectory> Push(int label) {
    const int i = pos_++;
    std::optional<traj::Subtrajectory> closed;
    if (label != 0) {
      if (has_pending_ && i - pending_.end <= d_) {
        pending_.end = i + 1;  // extend (gap 0) or DL-merge (gap <= D)
      } else {
        if (has_pending_) closed = pending_;
        pending_ = {i, i + 1};
        has_pending_ = true;
      }
    } else if (has_pending_ && i >= pending_.end + d_) {
      // The (D+1)-th zero after the run: no future 1 is within DL reach.
      closed = pending_;
      has_pending_ = false;
    }
    return closed;
  }

  /// The run still reachable by future labels (open or inside the DL merge
  /// window), if any.
  std::optional<traj::Subtrajectory> pending() const {
    if (!has_pending_) return std::nullopt;
    return pending_;
  }

  /// Number of labels consumed so far.
  int position() const { return pos_; }

  /// Serializes the tracker position and pending run (the DL merge window)
  /// so a streaming session can be snapshotted mid-trip. `delay_d` is
  /// configuration, not state, and is not written.
  void ExportState(BinaryWriter* w) const {
    w->WriteI32(pos_);
    w->WriteU8(has_pending_ ? 1 : 0);
    w->WriteI32(pending_.begin);
    w->WriteI32(pending_.end);
  }

  /// Restores a previously exported tracker state, validating internal
  /// consistency (a corrupt snapshot must fail cleanly, never restore a
  /// tracker whose pending run points outside the label stream).
  Status ImportState(BinaryReader* r) {
    int32_t pos;
    uint8_t has_pending;
    traj::Subtrajectory pending;
    RL4_RETURN_NOT_OK(r->ReadI32(&pos));
    RL4_RETURN_NOT_OK(r->ReadU8(&has_pending));
    RL4_RETURN_NOT_OK(r->ReadI32(&pending.begin));
    RL4_RETURN_NOT_OK(r->ReadI32(&pending.end));
    if (pos < 0 || has_pending > 1) {
      return Status::InvalidArgument("run tracker state corrupt");
    }
    if (has_pending &&
        (pending.begin < 0 || pending.begin >= pending.end ||
         pending.end > pos)) {
      return Status::InvalidArgument(
          "run tracker pending run out of bounds");
    }
    pos_ = pos;
    has_pending_ = has_pending != 0;
    pending_ = has_pending ? pending : traj::Subtrajectory{0, 0};
    return Status::OK();
  }

 private:
  int d_;
  int pos_ = 0;
  bool has_pending_ = false;
  traj::Subtrajectory pending_{0, 0};
};

/// RNEL rule (paper Section IV-E). Returns 0/1 when the label of the current
/// segment is deterministic given the previous segment's label and the graph
/// degrees, or -1 when the policy must decide.
int RnelDeterministicLabel(const roadnet::RoadNetwork& net,
                           traj::EdgeId prev_edge, int prev_label,
                           traj::EdgeId cur_edge);

class OnlineDetector {
 public:
  OnlineDetector(const roadnet::RoadNetwork* net,
                 const Preprocessor* preprocessor, const RsrNet* rsr,
                 const AsdNet* asd, DetectorConfig config);

  /// Streaming detection session over one trajectory. The SD pair and start
  /// time are known at trip start (ride-hailing setting).
  class Session {
   public:
    Session(const OnlineDetector* owner, traj::SdPair sd, double start_time);

    /// Consumes the next road segment, returning its (pre-DL) label.
    int Feed(traj::EdgeId edge);

    /// Marks the trajectory complete: forces the last label to 0 and applies
    /// Delayed Labeling. Returns the final labels. Any run not yet surfaced
    /// through TakeNewlyClosedRuns (the open tail, a pending run the
    /// forced-normal destination shrank) becomes takable after this call.
    std::vector<uint8_t> Finish();

    /// Anomalous subtrajectories formed so far (with DL applied to the
    /// already-seen prefix). Usable mid-stream for monitoring. O(runs), not
    /// O(points): the run list is maintained incrementally by Feed.
    std::vector<traj::Subtrajectory> CurrentAnomalies() const;

    /// Drains the runs that became final since the last call: Delayed
    /// Labeling can no longer extend or merge them, and boundary trimming
    /// has been applied. Each run is returned exactly once, in stream
    /// order — a caller alerting on these never re-reports or skips a run
    /// when DL merges fragments, and never rescans the trip.
    std::vector<traj::Subtrajectory> TakeNewlyClosedRuns();

    /// The trimmed anomalous run still open or inside the DL merge window,
    /// if any. This is what an eviction must surface so that an in-progress
    /// anomaly is not silently dropped.
    std::optional<traj::Subtrajectory> OpenRun() const;

    const std::vector<uint8_t>& labels() const { return labels_; }

    /// The road segments fed so far, in order (parallel to labels() once the
    /// session is finished). This is the label-harvesting surface for online
    /// learning: a finished trip's (edges, final labels) pair is a fresh
    /// training sample.
    const std::vector<traj::EdgeId>& edges() const { return edges_; }

    traj::SdPair sd() const { return sd_; }
    double start_time() const { return start_time_; }
    bool finished() const { return finished_; }

    /// All runs finalized so far (post-DL, post-trim), in stream order.
    const std::vector<traj::Subtrajectory>& closed_runs() const {
      return closed_runs_;
    }

    /// Serializes every piece of live per-trip state — SD pair, fed
    /// edge/label history, LSTM hidden/cell vectors, RunTracker (the
    /// Delayed-Labeling window), closed/undrained runs, and the RNG stream
    /// position — so that importing into a fresh session of an identical
    /// model resumes the remaining label/alert stream bit-identically.
    void ExportState(BinaryWriter* w) const;

    /// Restores a state exported by ExportState. The session must belong to
    /// a detector with the same road network and recurrent state size as
    /// the exporter (hidden vectors are restored verbatim). Every field of
    /// a corrupt or mismatched record fails with a clean Status; on error
    /// the session is left untouched.
    Status ImportState(BinaryReader* r);

   private:
    friend class OnlineDetector;  // FeedBatch drives sessions directly

    /// DL merge followed by route-level boundary trimming.
    void Postprocess(std::vector<uint8_t>* labels) const;
    void TrimRunBoundaries(std::vector<uint8_t>* labels) const;
    /// Walks `run`'s ends inward past edges lying on a normal route of the
    /// group; may return an empty range.
    traj::Subtrajectory TrimmedRun(traj::Subtrajectory run) const;
    /// Trims a DL-final run and records it (dropped if trimmed to empty).
    void RecordClosedRun(traj::Subtrajectory run);

    const OnlineDetector* owner_;
    traj::SdPair sd_;
    double start_time_;
    RsrStream stream_;
    traj::EdgeId prev_edge_ = roadnet::kInvalidEdge;
    int prev_label_ = 0;
    std::vector<uint8_t> labels_;
    std::vector<traj::EdgeId> edges_;
    RunTracker tracker_;
    std::vector<traj::Subtrajectory> closed_runs_;
    std::vector<traj::Subtrajectory> newly_closed_;
    bool finished_ = false;
    mutable Rng rng_;
  };

  /// Convenience: runs a full trajectory through a session.
  std::vector<uint8_t> Detect(const traj::MapMatchedTrajectory& t) const;

  /// Batched step: advances sessions[b] by edges[b], for B *distinct*
  /// sessions of this detector, producing exactly the labels, run
  /// bookkeeping, and (in stochastic mode) per-session RNG draws that
  /// sessions[b]->Feed(edges[b]) would — but with the RSRNet recurrent step
  /// of all B sessions fused into GEMMs, and the ASDNet policy batched over
  /// the sessions RNEL leaves undecided. `labels` (optional) receives the B
  /// per-point labels. This is the model-step amortization layer under
  /// serve::FleetMonitor's micro-batching.
  void FeedBatch(std::span<Session* const> sessions,
                 std::span<const traj::EdgeId> edges,
                 int* labels = nullptr) const;

  Session StartSession(traj::SdPair sd, double start_time) const {
    return Session(this, sd, start_time);
  }

  /// Rebuilds `old` (a session of any detector over the same road network)
  /// as a session of *this* detector: the label/run/RNG bookkeeping carries
  /// over verbatim — past decisions are history and must not be re-reported
  /// — while the recurrent hidden state is re-primed deterministically by
  /// replaying the fed edge sequence through this detector's RSRNet (NRF
  /// bits recomputed against this detector's preprocessor). This is the
  /// hot-model-swap primitive: future decisions use the new weights with a
  /// hidden state derived from the same history, and no alert is lost or
  /// duplicated because run identity is preserved.
  Session ReprimeSession(const Session& old) const;

  const DetectorConfig& config() const { return config_; }

 private:
  friend class Session;
  const roadnet::RoadNetwork* net_;
  const Preprocessor* preprocessor_;
  const RsrNet* rsr_;
  const AsdNet* asd_;
  DetectorConfig config_;
};

}  // namespace rl4oasd::core
