// The online RL4OASD detector (paper Algorithm 1) with its two enhancements:
//   * Road Network Enhanced Labeling (RNEL) — degree-based rules make some
//     labels deterministic, skipping the policy network, and
//   * Delayed Labeling (DL) — a D-segment lookahead merges anomalous
//     fragments separated by short normal gaps.
// The detector is streaming: Session consumes one road segment at a time,
// which is what the per-point efficiency experiments (Figure 3) measure.
#pragma once

#include <vector>

#include "common/rng.h"
#include "core/asdnet.h"
#include "core/preprocess.h"
#include "core/rsrnet.h"
#include "roadnet/road_network.h"
#include "traj/types.h"

namespace rl4oasd::core {

struct DetectorConfig {
  bool use_rnel = true;
  bool use_dl = true;
  int delay_d = 8;          // paper: D = 8
  // Route-level boundary trimming: edges at the ends of a formed anomalous
  // run that lie on an inferred normal route are relabeled normal. A
  // transition-level detector always flags the segment where a detour
  // rejoins the normal route (its incoming transition is rare even though
  // the segment itself is normal); trimming aligns the reported boundary
  // with the route-level ground truth. Uses only historical statistics and
  // one segment of lookahead, so it stays online-compatible.
  bool use_boundary_trim = true;
  bool stochastic = false;  // sample vs argmax actions at detection time
  uint64_t seed = 11;
};

/// Applies the Delayed-Labeling merge to a finished label sequence: a run of
/// 0s of length < D sandwiched between 1s is converted to 1s (paper: scan D
/// more segments after a boundary and extend to the last 1 found).
void ApplyDelayedLabeling(std::vector<uint8_t>* labels, int delay_d);

/// RNEL rule (paper Section IV-E). Returns 0/1 when the label of the current
/// segment is deterministic given the previous segment's label and the graph
/// degrees, or -1 when the policy must decide.
int RnelDeterministicLabel(const roadnet::RoadNetwork& net,
                           traj::EdgeId prev_edge, int prev_label,
                           traj::EdgeId cur_edge);

class OnlineDetector {
 public:
  OnlineDetector(const roadnet::RoadNetwork* net,
                 const Preprocessor* preprocessor, const RsrNet* rsr,
                 const AsdNet* asd, DetectorConfig config);

  /// Streaming detection session over one trajectory. The SD pair and start
  /// time are known at trip start (ride-hailing setting).
  class Session {
   public:
    Session(const OnlineDetector* owner, traj::SdPair sd, double start_time);

    /// Consumes the next road segment, returning its (pre-DL) label.
    int Feed(traj::EdgeId edge);

    /// Marks the trajectory complete: forces the last label to 0 and applies
    /// Delayed Labeling. Returns the final labels.
    std::vector<uint8_t> Finish();

    /// Anomalous subtrajectories formed so far (with DL applied to the
    /// already-seen prefix). Usable mid-stream for monitoring.
    std::vector<traj::Subtrajectory> CurrentAnomalies() const;

    const std::vector<uint8_t>& labels() const { return labels_; }

   private:
    /// DL merge followed by route-level boundary trimming.
    void Postprocess(std::vector<uint8_t>* labels) const;
    void TrimRunBoundaries(std::vector<uint8_t>* labels) const;

    const OnlineDetector* owner_;
    traj::SdPair sd_;
    double start_time_;
    RsrStream stream_;
    traj::EdgeId prev_edge_ = roadnet::kInvalidEdge;
    int prev_label_ = 0;
    std::vector<uint8_t> labels_;
    std::vector<traj::EdgeId> edges_;
    mutable Rng rng_;
  };

  /// Convenience: runs a full trajectory through a session.
  std::vector<uint8_t> Detect(const traj::MapMatchedTrajectory& t) const;

  Session StartSession(traj::SdPair sd, double start_time) const {
    return Session(this, sd, start_time);
  }

  const DetectorConfig& config() const { return config_; }

 private:
  friend class Session;
  const roadnet::RoadNetwork* net_;
  const Preprocessor* preprocessor_;
  const RsrNet* rsr_;
  const AsdNet* asd_;
  DetectorConfig config_;
};

}  // namespace rl4oasd::core
