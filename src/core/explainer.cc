#include "core/explainer.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "roadnet/shortest_path.h"

namespace rl4oasd::core {

AnomalyExplainer::AnomalyExplainer(const roadnet::RoadNetwork* net,
                                   const Preprocessor* preprocessor)
    : net_(net), preprocessor_(preprocessor) {
  RL4_CHECK(net != nullptr);
  RL4_CHECK(preprocessor != nullptr);
}

std::vector<AnomalyReport> AnomalyExplainer::Explain(
    const traj::MapMatchedTrajectory& t,
    const std::vector<uint8_t>& labels) const {
  RL4_CHECK_EQ(labels.size(), t.edges.size());
  std::vector<AnomalyReport> reports;
  const traj::SdPair sd = t.sd();
  const auto fractions = preprocessor_->TransitionFractions(t);

  for (const traj::Subtrajectory& run : traj::ExtractAnomalousRuns(labels)) {
    AnomalyReport report;
    report.range = run;
    report.edges.assign(t.edges.begin() + run.begin,
                        t.edges.begin() + run.end);

    // Transition-fraction statistics over the run (the incoming transition
    // of each run edge).
    double sum = 0.0;
    double min_frac = 1.0;
    for (int i = run.begin; i < run.end; ++i) {
      sum += fractions[i];
      min_frac = std::min(min_frac, fractions[i]);
    }
    report.mean_transition_fraction = sum / static_cast<double>(run.length());
    report.min_transition_fraction = min_frac;

    // Anchors and detour geometry.
    if (run.begin > 0) report.left_anchor = t.edges[run.begin - 1];
    if (static_cast<size_t>(run.end) < t.edges.size()) {
      report.right_anchor = t.edges[run.end];
    }
    report.detour_length_m = net_->PathLengthMeters(report.edges);

    if (report.left_anchor != roadnet::kInvalidEdge &&
        report.right_anchor != roadnet::kInvalidEdge) {
      // The shortest anchor-to-anchor alternative, excluding the endpoints
      // themselves from the detour comparison (both paths share them).
      const auto alt = roadnet::ShortestPathBetweenEdges(
          *net_, report.left_anchor, report.right_anchor);
      if (alt.size() >= 2) {
        std::vector<traj::EdgeId> interior(alt.begin() + 1, alt.end() - 1);
        report.alternative_length_m = net_->PathLengthMeters(interior);
        report.extra_distance_m =
            report.detour_length_m - report.alternative_length_m;
      }
      // The most popular turn out of the left anchor that the vehicle did
      // not take.
      const traj::EdgeId taken = t.edges[run.begin];
      for (traj::EdgeId successor : net_->NextEdges(report.left_anchor)) {
        if (successor == taken) continue;
        report.best_alternative_popularity =
            std::max(report.best_alternative_popularity,
                     preprocessor_->TransitionFractionAt(
                         sd, t.start_time, report.left_anchor, successor));
      }
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

std::string AnomalyReport::Summary() const {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed;
  os << "anomalous subtrajectory [" << range.begin << ", " << range.end
     << "): " << range.length() << " segments, " << detour_length_m
     << " m traveled";
  if (alternative_length_m >= 0.0) {
    os << " (+" << extra_distance_m << " m vs the " << alternative_length_m
       << " m alternative)";
  }
  os << "; transitions traveled by " << 100.0 * mean_transition_fraction
     << "% of historical trips (min " << 100.0 * min_transition_fraction
     << "%)";
  if (best_alternative_popularity > 0.0) {
    os << "; a turn taken by " << 100.0 * best_alternative_popularity
       << "% of trips was available at the deviation point";
  }
  return os.str();
}

}  // namespace rl4oasd::core
