// Evidence reports for detected anomalous subtrajectories. A label sequence
// tells an operator *where* the detector fired; dispatch and audit teams
// also need *why*. The explainer reconstructs, for each anomalous run, the
// statistical evidence the detection rests on: how rarely the run's
// transitions are traveled within the SD pair, which normal route the
// vehicle left and rejoined, and how much extra distance the detour added
// over the normal alternative between the same anchor segments.
#pragma once

#include <string>
#include <vector>

#include "core/preprocess.h"
#include "roadnet/road_network.h"
#include "traj/types.h"

namespace rl4oasd::core {

/// Evidence for one anomalous run within a trajectory.
struct AnomalyReport {
  /// The run, as indices into the trajectory's edge sequence.
  traj::Subtrajectory range;
  /// The run's edges.
  std::vector<traj::EdgeId> edges;

  /// Mean and minimum historical transition fraction across the run (the
  /// statistic the noisy labels threshold; near 0 = essentially untraveled).
  double mean_transition_fraction = 0.0;
  double min_transition_fraction = 0.0;

  /// Anchor segments: the last normal segment before the run and the first
  /// after it (kInvalidEdge when the run touches the trajectory boundary).
  traj::EdgeId left_anchor = roadnet::kInvalidEdge;
  traj::EdgeId right_anchor = roadnet::kInvalidEdge;

  /// Detour length (meters) along the anomalous run, and the length of the
  /// shortest alternative between the anchors (-1 when no anchor pair or no
  /// alternative exists). extra_distance_m = detour - alternative.
  double detour_length_m = 0.0;
  double alternative_length_m = -1.0;
  double extra_distance_m = 0.0;

  /// Popularity of the best alternative turn the vehicle skipped: the
  /// highest historical transition fraction out of the left anchor over
  /// successors other than the detour's first edge. High values mean a
  /// well-established route was available at the deviation point.
  double best_alternative_popularity = 0.0;

  /// One-line human-readable summary.
  std::string Summary() const;
};

/// Builds AnomalyReports from a labeled trajectory and the trained
/// preprocessor statistics. Stateless apart from the borrowed pointers;
/// thread-safe once the preprocessor caches are warm.
class AnomalyExplainer {
 public:
  AnomalyExplainer(const roadnet::RoadNetwork* net,
                   const Preprocessor* preprocessor);

  /// One report per maximal anomalous run in `labels` (parallel to
  /// `t.edges`).
  std::vector<AnomalyReport> Explain(const traj::MapMatchedTrajectory& t,
                                     const std::vector<uint8_t>& labels) const;

 private:
  const roadnet::RoadNetwork* net_;
  const Preprocessor* preprocessor_;
};

}  // namespace rl4oasd::core
