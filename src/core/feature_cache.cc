#include "core/feature_cache.h"

namespace rl4oasd::core {

namespace {

/// FNV-1a over the edge ids: the part of the fingerprint that cannot
/// collide by coincidence of metadata (dataset generators reuse ids and
/// slot-aligned start times across datasets).
uint64_t EdgeHash(const std::vector<traj::EdgeId>& edges) {
  uint64_t h = 14695981039346656037ull;
  for (traj::EdgeId e : edges) {
    h = (h ^ static_cast<uint64_t>(static_cast<uint32_t>(e))) *
        1099511628211ull;
  }
  return h;
}

}  // namespace

FeatureCache::Entry& FeatureCache::LookupEntry(
    const traj::MapMatchedTrajectory& t) {
  const uint64_t gen = pre_->stats_generation();
  auto it = entries_.find(&t);
  if (it == entries_.end()) {
    if (entries_.size() >= kMaxEntries) {
      // Drop only entries from older statistics generations: they can
      // never be read again, while current-generation entries may have
      // references pinned by a pretrain phase in flight (the training loop
      // relies on same-generation references staying valid). Growth within
      // one generation is bounded by the datasets actually trained on; the
      // cap reclaims memory at every drift/refit boundary.
      std::erase_if(entries_,
                    [gen](const auto& kv) { return kv.second.gen != gen; });
    }
    it = entries_.try_emplace(&t).first;
  }
  Entry& e = it->second;
  const uint64_t edge_hash = EdgeHash(t.edges);
  const bool fresh = e.gen == gen && e.id == t.id &&
                     e.num_edges == t.edges.size() &&
                     e.start_time == t.start_time &&
                     e.edge_hash == edge_hash;
  if (!fresh) {
    e = Entry{};
    e.gen = gen;
    e.id = t.id;
    e.num_edges = t.edges.size();
    e.start_time = t.start_time;
    e.edge_hash = edge_hash;
  }
  return e;
}

const std::vector<uint8_t>& FeatureCache::NoisyLabels(
    const traj::MapMatchedTrajectory& t) {
  common::MutexLock lock(&mu_);
  Entry& e = LookupEntry(t);
  if (!e.has_noisy) {
    e.noisy = pre_->NoisyLabels(t);
    e.has_noisy = true;
  }
  return e.noisy;
}

const std::vector<uint8_t>& FeatureCache::NormalRouteFeatures(
    const traj::MapMatchedTrajectory& t) {
  common::MutexLock lock(&mu_);
  Entry& e = LookupEntry(t);
  if (!e.has_nrf) {
    e.nrf = pre_->NormalRouteFeatures(t);
    e.has_nrf = true;
  }
  return e.nrf;
}

}  // namespace rl4oasd::core
