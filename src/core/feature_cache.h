// Per-trajectory memoization of the preprocessor-derived training features.
// NoisyLabels and NormalRouteFeatures are pure functions of (trajectory,
// historical statistics), yet the training pipeline recomputes them many
// times per trajectory: the Fit warm-start stratification scans the whole
// trainset, every pretrain epoch recomputes both features for every sampled
// trajectory, and every joint-training episode needs the NRF (plus the
// noisy labels whenever the weak-supervision anchor fires). The cache keys
// on the trajectory object and revalidates against
// Preprocessor::stats_generation(), so the concept-drift path
// (Preprocessor::Update during FineTune) invalidates it for free.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/preprocess.h"
#include "traj/types.h"

namespace rl4oasd::core {

/// Memoizes NoisyLabels / NormalRouteFeatures per trajectory. Returned
/// references stay valid until the entry is invalidated (generation bump or
/// fingerprint mismatch) or Clear() is called; the map is node-based, so
/// inserting other trajectories never moves them. Lookups are serialized by
/// an internal mutex, so concurrent readers (e.g. trainer shards warming
/// features in parallel) are safe; the reference-validity contract above is
/// the caller's concurrency obligation — do not Clear() or advance the
/// statistics generation while another thread still holds a reference.
class FeatureCache {
 public:
  explicit FeatureCache(const Preprocessor* pre) : pre_(pre) {}

  /// Cached Preprocessor::NoisyLabels(t).
  const std::vector<uint8_t>& NoisyLabels(const traj::MapMatchedTrajectory& t);

  /// Cached Preprocessor::NormalRouteFeatures(t).
  const std::vector<uint8_t>& NormalRouteFeatures(
      const traj::MapMatchedTrajectory& t);

  /// Drops every entry (e.g. when a caller knows the keyed dataset is gone).
  void Clear() {
    common::MutexLock lock(&mu_);
    entries_.clear();
  }

  size_t size() const {
    common::MutexLock lock(&mu_);
    return entries_.size();
  }

 private:
  /// Growth bound: inserting past this many entries prunes every entry
  /// from an older statistics generation, so perpetual FineTune services
  /// cannot accumulate dead generations without bound. Current-generation
  /// entries are never evicted — the training loop pins references to them
  /// for the duration of a pretrain phase.
  static constexpr size_t kMaxEntries = 1 << 17;

  struct Entry {
    uint64_t gen = 0;
    // Identity fingerprint: entries are keyed by address, and a caller may
    // legitimately free one dataset and train on another whose
    // trajectories land on the same addresses. A stale-generation entry is
    // always recomputed; the fingerprint — including a hash of the edge
    // sequence itself — guards the same-generation case.
    int64_t id = -1;
    size_t num_edges = 0;
    double start_time = 0.0;
    uint64_t edge_hash = 0;
    bool has_noisy = false;
    bool has_nrf = false;
    std::vector<uint8_t> noisy;
    std::vector<uint8_t> nrf;
  };

  /// Finds (or creates) the entry for `t`, resetting it when stale.
  Entry& LookupEntry(const traj::MapMatchedTrajectory& t)
      RL4OASD_REQUIRES(mu_);

  const Preprocessor* pre_;
  /// Leaf lock (kDefault): compute-under-lock only, never calls out to
  /// anything that takes another lock.
  mutable common::Mutex mu_;
  std::unordered_map<const traj::MapMatchedTrajectory*, Entry> entries_
      RL4OASD_GUARDED_BY(mu_);
};

}  // namespace rl4oasd::core
