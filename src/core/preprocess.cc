#include "core/preprocess.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace rl4oasd::core {

Preprocessor::Preprocessor(PreprocessConfig config) : config_(config) {
  RL4_CHECK_GT(config_.time_slot_hours, 0);
}

std::string Preprocessor::RouteKey(const std::vector<traj::EdgeId>& edges) {
  // Compact binary key: 4 bytes per edge id.
  std::string key;
  key.resize(edges.size() * sizeof(traj::EdgeId));
  std::memcpy(key.data(), edges.data(), key.size());
  return key;
}

void Preprocessor::IngestInto(GroupStats* g,
                              const traj::MapMatchedTrajectory& t) {
  g->num_trajs += 1;
  // A trajectory contributes each distinct transition once (the fraction is
  // "how many trajectories of the group travel this transition").
  std::unordered_map<int64_t, bool> seen;
  for (size_t i = 1; i < t.edges.size(); ++i) {
    const int64_t key = TransitionKey(t.edges[i - 1], t.edges[i]);
    if (seen.emplace(key, true).second) {
      g->transition_count[key] += 1;
    }
  }
  g->route_count[RouteKey(t.edges)] += 1;
  g->normal_set_stale = true;
}

void Preprocessor::RebuildNormalSet(const GroupStats& g, double delta) {
  g.normal_transitions.clear();
  g.normal_edges.clear();
  for (const auto& [route_key, count] : g.route_count) {
    const double fraction =
        static_cast<double>(count) / static_cast<double>(g.num_trajs);
    if (fraction <= delta) continue;
    const size_t n = route_key.size() / sizeof(traj::EdgeId);
    const auto* edges =
        reinterpret_cast<const traj::EdgeId*>(route_key.data());
    for (size_t i = 0; i < n; ++i) {
      g.normal_edges[edges[i]] = true;
      if (i > 0) {
        g.normal_transitions[TransitionKey(edges[i - 1], edges[i])] = true;
      }
    }
  }
  g.normal_set_stale = false;
}

bool Preprocessor::EdgeOnNormalRouteAt(const traj::SdPair& sd,
                                       double start_time,
                                       traj::EdgeId edge) const {
  const GroupStats* g = FindGroup(sd, start_time);
  if (g == nullptr || g->num_trajs == 0) return false;
  if (g->normal_set_stale) RebuildNormalSet(*g, config_.delta);
  return g->normal_edges.contains(edge);
}

void Preprocessor::Fit(const traj::Dataset& historical) {
  ++stats_generation_;
  groups_.clear();
  all_slots_.clear();
  for (const auto& lt : historical.trajs()) {
    Update(lt.traj);
  }
}

void Preprocessor::Update(const traj::MapMatchedTrajectory& t) {
  if (t.edges.size() < 2) return;
  ++stats_generation_;
  const GroupKey key{t.sd(),
                     traj::TimeSlotOf(t.start_time, config_.time_slot_hours)};
  IngestInto(&groups_[key], t);
  IngestInto(&all_slots_[t.sd()], t);
}

const GroupStats* Preprocessor::FindGroup(const traj::SdPair& sd,
                                          double start_time) const {
  const GroupKey key{sd,
                     traj::TimeSlotOf(start_time, config_.time_slot_hours)};
  auto it = groups_.find(key);
  if (it != groups_.end() &&
      it->second.num_trajs >= config_.min_slot_support) {
    return &it->second;
  }
  auto it2 = all_slots_.find(sd);
  if (it2 != all_slots_.end()) return &it2->second;
  return nullptr;
}

std::vector<double> Preprocessor::TransitionFractions(
    const traj::MapMatchedTrajectory& t) const {
  std::vector<double> fractions(t.edges.size(), 0.0);
  if (t.edges.empty()) return fractions;
  // Source and destination are always traveled within their group.
  fractions.front() = 1.0;
  fractions.back() = 1.0;
  const GroupStats* g = FindGroup(t.sd(), t.start_time);
  for (size_t i = 1; i + 1 < t.edges.size(); ++i) {
    if (g == nullptr || g->num_trajs == 0) continue;
    auto it = g->transition_count.find(TransitionKey(t.edges[i - 1],
                                                     t.edges[i]));
    if (it != g->transition_count.end()) {
      fractions[i] = static_cast<double>(it->second) /
                     static_cast<double>(g->num_trajs);
    }
  }
  return fractions;
}

std::vector<uint8_t> Preprocessor::NoisyLabels(
    const traj::MapMatchedTrajectory& t) const {
  const auto fractions = TransitionFractions(t);
  std::vector<uint8_t> labels(fractions.size(), 0);
  for (size_t i = 0; i < fractions.size(); ++i) {
    labels[i] = fractions[i] > config_.alpha ? 0 : 1;
  }
  if (!labels.empty()) {
    labels.front() = 0;
    labels.back() = 0;
  }
  return labels;
}

std::vector<uint8_t> Preprocessor::NormalRouteFeatures(
    const traj::MapMatchedTrajectory& t) const {
  std::vector<uint8_t> nrf(t.edges.size(), 1);
  if (t.edges.empty()) return nrf;
  nrf.front() = 0;
  nrf.back() = 0;
  for (size_t i = 1; i + 1 < t.edges.size(); ++i) {
    nrf[i] = NormalRouteFeatureAt(t.sd(), t.start_time, t.edges[i - 1],
                                  t.edges[i]);
  }
  return nrf;
}

double Preprocessor::TransitionFractionAt(const traj::SdPair& sd,
                                          double start_time,
                                          traj::EdgeId prev,
                                          traj::EdgeId cur) const {
  const GroupStats* g = FindGroup(sd, start_time);
  if (g == nullptr || g->num_trajs == 0) return 0.0;
  auto it = g->transition_count.find(TransitionKey(prev, cur));
  if (it == g->transition_count.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(g->num_trajs);
}

uint8_t Preprocessor::NormalRouteFeatureAt(const traj::SdPair& sd,
                                           double start_time,
                                           traj::EdgeId prev,
                                           traj::EdgeId cur) const {
  const GroupStats* g = FindGroup(sd, start_time);
  if (g == nullptr || g->num_trajs == 0) return 1;
  if (g->normal_set_stale) RebuildNormalSet(*g, config_.delta);
  return g->normal_transitions.contains(TransitionKey(prev, cur)) ? 0 : 1;
}

std::vector<GroupSnapshot> Preprocessor::ExportState() const {
  std::vector<GroupSnapshot> out;
  out.reserve(groups_.size() + all_slots_.size());
  auto snapshot_of = [](const traj::SdPair& sd, int slot,
                        const GroupStats& g) {
    GroupSnapshot s;
    s.sd = sd;
    s.slot = slot;
    s.num_trajs = g.num_trajs;
    s.transitions.assign(g.transition_count.begin(), g.transition_count.end());
    std::sort(s.transitions.begin(), s.transitions.end());
    s.routes.assign(g.route_count.begin(), g.route_count.end());
    std::sort(s.routes.begin(), s.routes.end());
    return s;
  };
  for (const auto& [key, g] : groups_) {
    out.push_back(snapshot_of(key.sd, key.slot, g));
  }
  for (const auto& [sd, g] : all_slots_) {
    out.push_back(snapshot_of(sd, -1, g));
  }
  std::sort(out.begin(), out.end(),
            [](const GroupSnapshot& a, const GroupSnapshot& b) {
              if (!(a.sd == b.sd)) return a.sd < b.sd;
              return a.slot < b.slot;
            });
  return out;
}

void Preprocessor::ImportState(const std::vector<GroupSnapshot>& snapshots) {
  ++stats_generation_;
  groups_.clear();
  all_slots_.clear();
  for (const GroupSnapshot& s : snapshots) {
    GroupStats* g = s.slot < 0 ? &all_slots_[s.sd]
                               : &groups_[GroupKey{s.sd, s.slot}];
    g->num_trajs = s.num_trajs;
    g->transition_count.insert(s.transitions.begin(), s.transitions.end());
    g->route_count.insert(s.routes.begin(), s.routes.end());
    g->normal_set_stale = true;
  }
}

void Preprocessor::WarmNormalRouteCaches() const {
  for (const auto& [key, g] : groups_) {
    if (g.normal_set_stale) RebuildNormalSet(g, config_.delta);
  }
  for (const auto& [sd, g] : all_slots_) {
    if (g.normal_set_stale) RebuildNormalSet(g, config_.delta);
  }
}

}  // namespace rl4oasd::core
