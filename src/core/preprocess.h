// Data preprocessing (paper Section IV-B): groups historical map-matched
// trajectories by (SD pair, time slot), computes transition fractions, and
// derives
//   * noisy labels    — per-edge 0/1 via threshold alpha on the fraction of
//                       trajectories in the group that contain the incoming
//                       transition (pre-training signal for RSRNet), and
//   * normal route features (NRF) — per-edge 0/1 via threshold delta on
//                       route-level popularity: an edge is 0 ("normal") when
//                       its incoming transition occurs on an inferred normal
//                       route of the group.
// Also exposes raw transition fractions (the "transition frequency" ablation
// baseline) and supports incremental updates for online learning.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "traj/dataset.h"
#include "traj/types.h"

namespace rl4oasd::core {

struct PreprocessConfig {
  double alpha = 0.5;      // noisy-label threshold on transition fraction
  double delta = 0.4;      // normal-route threshold on route fraction
  int time_slot_hours = 1; // 24 slots, as in the paper
  // Slot-level statistics are only trusted when the (SD pair, slot) group
  // holds at least this many trajectories; sparser groups fall back to the
  // all-slots aggregate of the SD pair. Mirrors the paper's "filter SD
  // pairs with fewer than 25 trajectories" rule at slot granularity (their
  // groups hold ~40 trajectories per slot).
  int64_t min_slot_support = 25;
};

/// Historical statistics for one (SD pair, time slot) group.
struct GroupStats {
  int64_t num_trajs = 0;
  /// Count of trajectories containing transition (prev << 32 | cur).
  std::unordered_map<int64_t, int64_t> transition_count;
  /// Distinct routes and their trajectory counts.
  std::unordered_map<std::string, int64_t> route_count;
  /// Transitions that occur on an inferred normal route (fraction > delta).
  /// A lazily rebuilt cache: mutable so const readers can refresh it.
  mutable std::unordered_map<int64_t, bool> normal_transitions;
  /// Edges that lie on an inferred normal route (same rebuild).
  mutable std::unordered_map<traj::EdgeId, bool> normal_edges;
  mutable bool normal_set_stale = true;
};

/// Serializable snapshot of one group's statistics. `slot == -1` denotes the
/// all-slots aggregate kept per SD pair (the cold-start fallback).
struct GroupSnapshot {
  traj::SdPair sd;
  int slot = 0;
  int64_t num_trajs = 0;
  std::vector<std::pair<int64_t, int64_t>> transitions;  // key -> count
  std::vector<std::pair<std::string, int64_t>> routes;   // route -> count
};

/// Builds and serves per-group historical statistics.
class Preprocessor {
 public:
  explicit Preprocessor(PreprocessConfig config = {});

  /// Ingests a historical dataset (resets previous state).
  void Fit(const traj::Dataset& historical);

  /// Incrementally ingests one more trajectory (online learning / concept
  /// drift: newly recorded data keeps the statistics current).
  void Update(const traj::MapMatchedTrajectory& t);

  /// Step-3 of the paper: per-edge transition fractions. The source and
  /// destination positions are defined to be 1.0.
  std::vector<double> TransitionFractions(
      const traj::MapMatchedTrajectory& t) const;

  /// Step-4: noisy labels (1 when fraction <= alpha).
  std::vector<uint8_t> NoisyLabels(const traj::MapMatchedTrajectory& t) const;

  /// Normal route features: 0 when the incoming transition lies on an
  /// inferred normal route; the source and destination are always 0.
  std::vector<uint8_t> NormalRouteFeatures(
      const traj::MapMatchedTrajectory& t) const;

  /// Streaming variants used by the online detector: the feature of edge at
  /// position `i` given its predecessor. Positions 0 is always normal.
  double TransitionFractionAt(const traj::SdPair& sd, double start_time,
                              traj::EdgeId prev, traj::EdgeId cur) const;
  uint8_t NormalRouteFeatureAt(const traj::SdPair& sd, double start_time,
                               traj::EdgeId prev, traj::EdgeId cur) const;

  /// True when `edge` lies on an inferred normal route of the group (used by
  /// the detector's boundary trimming). Unknown SD pairs return false.
  bool EdgeOnNormalRouteAt(const traj::SdPair& sd, double start_time,
                           traj::EdgeId edge) const;

  const PreprocessConfig& config() const { return config_; }
  size_t NumGroups() const { return groups_.size(); }

  /// Monotonic counter bumped whenever the historical statistics change
  /// (Fit, Update, ImportState). Derived-feature caches (FeatureCache)
  /// compare generations to know when their memoized NoisyLabels /
  /// NormalRouteFeatures are stale — the online-learning path funnels all
  /// drift through Update, so a generation match certifies freshness.
  uint64_t stats_generation() const { return stats_generation_; }

  /// Exports all group statistics in a deterministic order (sorted by SD
  /// pair, then slot; the all-slots aggregates use slot -1). Together with
  /// the config this fully reconstructs the preprocessor.
  std::vector<GroupSnapshot> ExportState() const;

  /// Replaces all statistics with the given snapshots (inverse of
  /// ExportState; derived normal-route caches are rebuilt lazily).
  void ImportState(const std::vector<GroupSnapshot>& snapshots);

  /// Eagerly rebuilds every group's normal-route cache. The caches are
  /// otherwise rebuilt lazily on first (const) query, which is a data race
  /// when multiple threads share one preprocessor — concurrent servers
  /// (serve::FleetMonitor) call this once after Fit/Update/ImportState so
  /// that subsequent const queries are read-only.
  void WarmNormalRouteCaches() const;

 private:
  struct GroupKey {
    traj::SdPair sd;
    int slot;
    bool operator==(const GroupKey&) const = default;
  };
  struct GroupKeyHash {
    size_t operator()(const GroupKey& k) const {
      return traj::SdPairHash()(k.sd) * 1000003u ^
             std::hash<int>()(k.slot);
    }
  };

  static int64_t TransitionKey(traj::EdgeId prev, traj::EdgeId cur) {
    return (static_cast<int64_t>(prev) << 32) | static_cast<uint32_t>(cur);
  }
  static std::string RouteKey(const std::vector<traj::EdgeId>& edges);

  /// Group for (sd, slot of start_time); falls back to the all-slots
  /// aggregate when the slot-specific group is unseen. Null when the SD pair
  /// itself is unseen.
  const GroupStats* FindGroup(const traj::SdPair& sd,
                              double start_time) const;

  void IngestInto(GroupStats* g, const traj::MapMatchedTrajectory& t);
  static void RebuildNormalSet(const GroupStats& g, double delta);

  PreprocessConfig config_;
  uint64_t stats_generation_ = 0;
  std::unordered_map<GroupKey, GroupStats, GroupKeyHash> groups_;
  /// Aggregate over all slots per SD pair (cold-start fallback).
  std::unordered_map<traj::SdPair, GroupStats, traj::SdPairHash> all_slots_;
};

}  // namespace rl4oasd::core
