#include "core/rewards.h"

#include "common/logging.h"

namespace rl4oasd::core {

double EpisodeReward(const std::vector<nn::Vec>& z,
                     const std::vector<uint8_t>& labels, double rsr_loss,
                     bool use_local, bool use_global) {
  RL4_CHECK_EQ(z.size(), labels.size());
  double reward = 0.0;
  if (use_local && z.size() >= 2) {
    double local = 0.0;
    for (size_t i = 1; i < z.size(); ++i) {
      local += LocalReward(z[i - 1], z[i], labels[i - 1], labels[i]);
    }
    reward += local / static_cast<double>(z.size() - 1);
  }
  if (use_global) {
    reward += GlobalReward(rsr_loss);
  }
  return reward;
}

}  // namespace rl4oasd::core
