// Reward functions of the ASDNet MDP (paper Equations 2-5).
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace rl4oasd::core {

/// Local continuity reward at step i (Equation 2):
///   r_i = sign(l_{i-1} == l_i) * cos(z_{i-1}, z_i).
inline double LocalReward(const nn::Vec& z_prev, const nn::Vec& z_cur,
                          int label_prev, int label_cur) {
  const double sign = (label_prev == label_cur) ? 1.0 : -1.0;
  return sign *
         nn::CosineSimilarity(z_prev.data(), z_cur.data(), z_prev.size());
}

/// Global reward (Equation 3): 1 / (1 + L) where L is RSRNet's cross-entropy
/// loss on the refined labels.
inline double GlobalReward(double rsr_loss) { return 1.0 / (1.0 + rsr_loss); }

/// Expected cumulative reward (Equation 5): mean local reward over steps
/// 2..n plus the global reward.
double EpisodeReward(const std::vector<nn::Vec>& z,
                     const std::vector<uint8_t>& labels, double rsr_loss,
                     bool use_local, bool use_global);

}  // namespace rl4oasd::core
