#include "core/rl4oasd.h"

#include <algorithm>
#include <barrier>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/rewards.h"

namespace rl4oasd::core {

namespace {

/// A trajectory with its (main-thread-resolved) cached features: workers
/// must not touch the FeatureCache, so the feature references are pinned
/// before sharding. The references stay valid for the whole phase — the
/// cache is node-based and nothing invalidates it mid-phase.
struct PretrainItem {
  const traj::MapMatchedTrajectory* t;
  const std::vector<uint8_t>* nrf;
  const std::vector<uint8_t>* labels;
};

}  // namespace

Rl4Oasd::Rl4Oasd(const roadnet::RoadNetwork* net, Rl4OasdConfig config)
    : net_(net),
      config_(config),
      rng_(config.seed),
      preprocessor_(config.preprocess) {
  RL4_CHECK(net->built());
  config_.rsr.num_edges = net->NumEdges();
  rsr_ = std::make_unique<RsrNet>(config_.rsr);
  config_.asd.z_dim = rsr_->z_dim();
  asd_ = std::make_unique<AsdNet>(config_.asd);
  detector_ = std::make_unique<OnlineDetector>(
      net_, &preprocessor_, rsr_.get(), asd_.get(), config_.detector);
}

void Rl4Oasd::PretrainRsr(const traj::Dataset& train,
                          const std::vector<size_t>& sample) {
  const int threads = std::max(1, config_.trainer_threads);
  // The coin-flip ablation draws labels from the shared rng stream per
  // sample, which pins it to the sequential path.
  if (threads == 1 || !config_.use_noisy_labels) {
    for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
      for (size_t idx : sample) {
        const auto& t = train[idx].traj;
        if (t.edges.size() < 3) continue;
        // Features come from the cache: the stratification scan already
        // paid for the noisy labels, and later epochs reuse both vectors.
        const auto& nrf = features_.NormalRouteFeatures(t);
        if (config_.use_noisy_labels) {
          rsr_->TrainStep(t.edges, nrf, features_.NoisyLabels(t));
        } else {
          // Ablation: replace the warm-start signal with coin flips.
          std::vector<uint8_t> labels(t.edges.size());
          for (auto& l : labels) l = rng_.Bernoulli(0.5) ? 1 : 0;
          rsr_->TrainStep(t.edges, nrf, labels);
        }
      }
    }
    return;
  }

  // Data-parallel path: waves of up to `threads` samples backprop
  // concurrently through the shared (read-only) weights into worker-local
  // sinks; the main thread then applies one Adam step per sample in the
  // sample order, so the schedule is deterministic regardless of thread
  // timing. Each gradient is computed against weights at most
  // `threads - 1` steps stale. Workers persist across all waves and
  // epochs (two barrier phases per wave: gradients ready, then weights
  // refreshed) — spawning threads per wave would cost more than a short
  // trajectory's backward pass.
  std::vector<PretrainItem> items;
  items.reserve(sample.size());
  for (size_t idx : sample) {
    const auto& t = train[idx].traj;
    if (t.edges.size() < 3) continue;
    items.push_back({&t, &features_.NormalRouteFeatures(t),
                     &features_.NoisyLabels(t)});
  }
  if (items.empty()) return;
  std::vector<std::unique_ptr<nn::GradientSink>> sinks;
  for (int w = 0; w < threads; ++w) {
    sinks.push_back(std::make_unique<nn::GradientSink>(*rsr_->registry()));
  }
  // ApplyWorkerGradients requires (and then maintains) all-zero registry
  // gradients.
  rsr_->registry()->ZeroGrad();
  const size_t stride = static_cast<size_t>(threads);
  const size_t waves_per_epoch = (items.size() + stride - 1) / stride;
  const size_t total_waves =
      waves_per_epoch * static_cast<size_t>(config_.pretrain_epochs);
  std::barrier sync(threads);
  auto accumulate = [this, &items, &sinks, waves_per_epoch,
                     stride](size_t wave, size_t b) {
    const size_t i = (wave % waves_per_epoch) * stride + b;
    if (i >= items.size()) return;
    const PretrainItem& it = items[i];
    rsr_->AccumulateGradients(it.t->edges, *it.nrf, *it.labels,
                              sinks[b].get());
  };
  std::vector<std::thread> pool;
  pool.reserve(stride - 1);
  for (size_t b = 1; b < stride; ++b) {
    pool.emplace_back([&accumulate, &sync, total_waves, b] {
      for (size_t wave = 0; wave < total_waves; ++wave) {
        accumulate(wave, b);
        sync.arrive_and_wait();  // this wave's gradients are ready
        sync.arrive_and_wait();  // the main thread finished applying them
      }
    });
  }
  for (size_t wave = 0; wave < total_waves; ++wave) {
    accumulate(wave, 0);
    sync.arrive_and_wait();
    const size_t base = (wave % waves_per_epoch) * stride;
    const size_t wave_n = std::min(stride, items.size() - base);
    for (size_t b = 0; b < wave_n; ++b) {
      rsr_->ApplyWorkerGradients(sinks[b].get());
    }
    sync.arrive_and_wait();
  }
  for (auto& th : pool) th.join();
}

void Rl4Oasd::PretrainAsd(const traj::Dataset& train,
                          const std::vector<size_t>& sample) {
  // Warm-start the policy by imitating the noisy labels (paper: "we specify
  // its actions as the noisy labels"). Multiple epochs of supervised
  // imitation are required: joint REINFORCE training starting from a policy
  // that rarely emits 1s collapses to labeling everything normal.
  //
  // RSRNet's weights are frozen for the whole phase and the imitation
  // actions are the (cached) noisy labels, so each episode is a pure
  // function of the trajectory: build every episode once — one RSR forward
  // per trajectory — and replay the list across epochs. Bit-identical to
  // recomputing them per epoch, at 1/pretrain_epochs of the forward cost.
  // With trainer_threads > 1 the (forward-dominated) episode builds shard
  // across workers by stripe; since nothing mutates during the builds,
  // even the threaded result is bit-identical to sequential. The tiny
  // ImitationUpdates stay sequential in sample order.
  std::vector<PretrainItem> items;
  static const std::vector<uint8_t> kEmpty;
  for (size_t idx : sample) {
    const auto& t = train[idx].traj;
    if (t.edges.size() < 3) continue;
    items.push_back({&t, &features_.NormalRouteFeatures(t),
                     config_.use_noisy_labels ? &features_.NoisyLabels(t)
                                              : &kEmpty});
  }
  std::vector<std::vector<AsdStep>> episodes(items.size());
  auto build = [&](size_t i) {
    const PretrainItem& it = items[i];
    const size_t n = it.t->edges.size();
    std::vector<uint8_t> zero_labels;
    if (!config_.use_noisy_labels) zero_labels.assign(n, 0);
    const std::vector<uint8_t>& labels =
        config_.use_noisy_labels ? *it.labels : zero_labels;
    const RsrForward fwd = rsr_->Forward(it.t->edges, *it.nrf);
    std::vector<AsdStep>& episode = episodes[i];
    int prev_label = 0;
    for (size_t p = 1; p + 1 < n; ++p) {
      AsdStep step;
      step.z = fwd.z[p];
      step.prev_label = prev_label;
      step.action = labels[p];
      episode.push_back(std::move(step));
      prev_label = labels[p];
    }
  };
  const int threads = std::max(1, config_.trainer_threads);
  if (threads == 1 || items.size() < 2) {
    for (size_t i = 0; i < items.size(); ++i) build(i);
  } else {
    std::vector<std::thread> pool;
    const size_t stripe = static_cast<size_t>(threads);
    for (size_t w = 1; w < stripe; ++w) {
      pool.emplace_back([&build, &items, w, stripe] {
        for (size_t i = w; i < items.size(); i += stripe) build(i);
      });
    }
    for (size_t i = 0; i < items.size(); i += stripe) build(i);
    for (auto& th : pool) th.join();
  }
  for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
    for (const auto& episode : episodes) {
      asd_->ImitationUpdate(episode);
    }
  }
}

std::vector<uint8_t> Rl4Oasd::RolloutLabels(
    const traj::MapMatchedTrajectory& t, const RsrForward& fwd,
    bool stochastic, std::vector<AsdStep>* episode) {
  const size_t n = t.edges.size();
  std::vector<uint8_t> labels(n, 0);
  int prev_label = 0;
  for (size_t i = 1; i < n; ++i) {
    if (i + 1 == n) {
      labels[i] = 0;  // destination is normal by definition
      break;
    }
    int det = -1;
    if (config_.detector.use_rnel) {
      det = RnelDeterministicLabel(*net_, t.edges[i - 1], prev_label,
                                   t.edges[i]);
    }
    int action;
    if (det >= 0) {
      action = det;
    } else if (stochastic) {
      if (rng_.Bernoulli(config_.joint_explore_eps)) {
        action = static_cast<int>(rng_.UniformInt(uint64_t{2}));
      } else {
        action = asd_->SampleAction(fwd.z[i].data(), prev_label, &rng_);
      }
      if (episode != nullptr) {
        AsdStep step;
        step.z = fwd.z[i];
        step.prev_label = prev_label;
        step.action = action;
        episode->push_back(std::move(step));
      }
    } else {
      action = asd_->GreedyAction(fwd.z[i].data(), prev_label);
    }
    labels[i] = static_cast<uint8_t>(action);
    prev_label = action;
  }
  return labels;
}

void Rl4Oasd::JointStep(const traj::MapMatchedTrajectory& t) {
  // One RSR forward per episode: the cached pass feeds the stochastic
  // rollout, the greedy baseline, both reward losses, and (when RSRNet
  // trains in the joint phase) the weight update itself — the weights only
  // move at the very end of the episode, so every reuse is exact.
  const auto& nrf = features_.NormalRouteFeatures(t);
  RsrTrainCache fwd_cache;
  const RsrForward& fwd = rsr_->ForwardCached(t.edges, nrf, &fwd_cache);
  std::vector<AsdStep> episode;
  const auto refined =
      RolloutLabels(t, fwd, /*stochastic=*/true, &episode);
  const double loss = rsr_->Loss(fwd, refined);
  const double reward = EpisodeReward(fwd.z, refined, loss,
                                      config_.use_local_reward,
                                      config_.use_global_reward);
  double advantage = reward;
  ++joint_stats_.episodes;
  int ones_delta = 0;
  if (config_.use_reward_baseline) {
    // Self-critical baseline: compare against the greedy rollout of the
    // same trajectory.
    const auto greedy = RolloutLabels(t, fwd, /*stochastic=*/false, nullptr);
    const double greedy_loss = rsr_->Loss(fwd, greedy);
    advantage = reward - EpisodeReward(fwd.z, greedy, greedy_loss,
                                       config_.use_local_reward,
                                       config_.use_global_reward);
    for (size_t i = 0; i < refined.size(); ++i) {
      ones_delta += static_cast<int>(refined[i]) - static_cast<int>(greedy[i]);
    }
    // Self-imitation: only reinforce rollouts that beat the greedy policy.
    // Under Adam's magnitude normalization, the frequent negative-advantage
    // episodes otherwise dominate the rare positive ones and the policy
    // degenerates to labeling everything normal.
    if (advantage <= 0.0) {
      last_mean_reward_ = reward;
      if (config_.train_rsr_in_joint && config_.use_noisy_labels &&
          rng_.Bernoulli(config_.noisy_anchor_prob)) {
        rsr_->TrainStepCached(t.edges, nrf, features_.NoisyLabels(t),
                              &fwd_cache);
      }
      return;
    }
  }
  ++joint_stats_.applied;
  joint_stats_.advantage_sum += advantage;
  joint_stats_.ones_delta_sum += ones_delta;
  asd_->ReinforceUpdate(episode, advantage);
  // Refined labels retrain RSRNet, which then provides better states. The
  // noisy labels stay in the mix as the weak-supervision anchor (see
  // Rl4OasdConfig::noisy_anchor_prob).
  if (config_.train_rsr_in_joint) {
    if (config_.use_noisy_labels &&
        rng_.Bernoulli(config_.noisy_anchor_prob)) {
      rsr_->TrainStepCached(t.edges, nrf, features_.NoisyLabels(t),
                            &fwd_cache);
    } else {
      rsr_->TrainStepCached(t.edges, nrf, refined, &fwd_cache);
    }
  }
  last_mean_reward_ = reward;
}

void Rl4Oasd::Fit(const traj::Dataset& train) {
  RL4_CHECK(!train.empty());
  fit_timings_ = FitTimings{};
  Stopwatch total;
  Stopwatch phase;
  preprocessor_.Fit(train);
  fit_timings_.preprocess_s = phase.ElapsedSeconds();

  if (config_.transition_frequency_only) {
    fit_timings_.total_s = total.ElapsedSeconds();
    return;  // nothing neural to train
  }

  if (config_.use_pretrained_embeddings) {
    phase.Start();
    embed::SkipGramConfig ecfg = config_.embedding;
    ecfg.dim = config_.rsr.embed_dim;
    embed::SkipGramTrainer trainer(net_, ecfg);
    rsr_->LoadTcfEmbeddings(trainer.Train(train));
    fit_timings_.embed_s = phase.ElapsedSeconds();
  }

  // Warm start on a small sample (paper: 200 trajectories). The sample is
  // stratified so that up to half of it contains noisy-anomalous segments:
  // at realistic anomaly ratios (~1% of segments) a uniform sample starves
  // the warm start of anomalous examples entirely.
  phase.Start();
  const size_t pre_n = std::min<size_t>(config_.pretrain_samples,
                                        train.size());
  std::vector<size_t> pre_sample;
  if (config_.use_noisy_labels) {
    std::vector<size_t> with_anomaly, without;
    for (size_t i = 0; i < train.size(); ++i) {
      const auto& t = train[i].traj;
      if (t.edges.size() < 3) continue;
      // Cached: the warm-start epochs below reuse these labels instead of
      // recomputing them for every sampled trajectory every epoch.
      const auto& noisy = features_.NoisyLabels(t);
      bool any = false;
      for (uint8_t l : noisy) any |= (l != 0);
      (any ? with_anomaly : without).push_back(i);
    }
    rng_.Shuffle(&with_anomaly);
    rng_.Shuffle(&without);
    const size_t take_anomalous = std::min(with_anomaly.size(), pre_n / 2);
    pre_sample.assign(with_anomaly.begin(),
                      with_anomaly.begin() + take_anomalous);
    for (size_t i = 0; i < without.size() && pre_sample.size() < pre_n;
         ++i) {
      pre_sample.push_back(without[i]);
    }
    rng_.Shuffle(&pre_sample);
  } else {
    pre_sample = rng_.SampleWithoutReplacement(train.size(), pre_n);
  }
  // The stratification scan above counts toward the RSR warm start (it
  // resolves the same cached features the epochs consume).
  PretrainRsr(train, pre_sample);
  fit_timings_.pretrain_rsr_s = phase.ElapsedSeconds();
  if (config_.use_asdnet) {
    phase.Start();
    PretrainAsd(train, pre_sample);
    fit_timings_.pretrain_asd_s = phase.ElapsedSeconds();
  }

  if (!config_.use_asdnet) {
    fit_timings_.total_s = total.ElapsedSeconds();
    return;  // classifier-only ablation stops here
  }

  // Joint training (paper: 10,000 sampled trajectories, 5 epochs each).
  phase.Start();
  const size_t joint_n =
      std::min<size_t>(config_.joint_samples, train.size());
  auto joint_sample = rng_.SampleWithoutReplacement(train.size(), joint_n);
  double reward_sum = 0.0;
  int64_t reward_n = 0;
  for (size_t idx : joint_sample) {
    const auto& t = train[idx].traj;
    if (t.edges.size() < 3) continue;
    for (int e = 0; e < config_.epochs_per_traj; ++e) {
      JointStep(t);
      reward_sum += last_mean_reward_;
      ++reward_n;
    }
  }
  if (reward_n > 0) last_mean_reward_ = reward_sum / reward_n;
  fit_timings_.joint_s = phase.ElapsedSeconds();
  fit_timings_.total_s = total.ElapsedSeconds();
}

void Rl4Oasd::JointTrain(const traj::Dataset& data, int max_samples) {
  if (config_.transition_frequency_only || !config_.use_asdnet) return;
  size_t n = data.size();
  if (max_samples >= 0) n = std::min<size_t>(n, max_samples);
  auto sample = rng_.SampleWithoutReplacement(data.size(), n);
  for (size_t idx : sample) {
    const auto& t = data[idx].traj;
    if (t.edges.size() < 3) continue;
    JointStep(t);
  }
}

void Rl4Oasd::FineTune(const traj::Dataset& new_data, int max_samples) {
  // Keep the historical statistics current, then run a light pass of both
  // warm-start training and policy refinement on the new data (the
  // RL4OASD-FT strategy of Section V-G).
  for (const auto& lt : new_data.trajs()) {
    preprocessor_.Update(lt.traj);
  }
  if (config_.transition_frequency_only) return;
  size_t n = new_data.size();
  if (max_samples >= 0) n = std::min<size_t>(n, max_samples);
  auto sample = rng_.SampleWithoutReplacement(new_data.size(), n);
  // The drifted statistics change the noisy labels and NRF features, so the
  // networks re-anchor on them (this is what adapts to concept drift).
  PretrainRsr(new_data, sample);
  if (config_.use_asdnet) {
    PretrainAsd(new_data, sample);
    for (size_t idx : sample) {
      const auto& t = new_data[idx].traj;
      if (t.edges.size() < 3) continue;
      JointStep(t);
    }
  }
}

std::vector<uint8_t> Rl4Oasd::Detect(
    const traj::MapMatchedTrajectory& t) const {
  if (config_.transition_frequency_only) {
    // The paper's "simplest method": raw transition-frequency thresholding,
    // with none of the detector's smoothing.
    return preprocessor_.NoisyLabels(t);
  }
  if (!config_.use_asdnet) {
    // Classifier-only ablation: argmax over RSRNet's softmax head.
    const auto nrf = preprocessor_.NormalRouteFeatures(t);
    const RsrForward fwd = rsr_->Forward(t.edges, nrf);
    std::vector<uint8_t> labels(t.edges.size(), 0);
    for (size_t i = 1; i + 1 < labels.size(); ++i) {
      labels[i] = fwd.probs[i][1] > fwd.probs[i][0] ? 1 : 0;
    }
    if (config_.detector.use_dl) {
      ApplyDelayedLabeling(&labels, config_.detector.delay_d);
    }
    return labels;
  }
  return detector_->Detect(t);
}

OnlineDetector::Session Rl4Oasd::StartSession(traj::SdPair sd,
                                              double start_time) const {
  return detector_->StartSession(sd, start_time);
}

}  // namespace rl4oasd::core
