#include "core/rl4oasd.h"

#include <algorithm>

#include "common/logging.h"
#include "core/rewards.h"

namespace rl4oasd::core {

Rl4Oasd::Rl4Oasd(const roadnet::RoadNetwork* net, Rl4OasdConfig config)
    : net_(net),
      config_(config),
      rng_(config.seed),
      preprocessor_(config.preprocess) {
  RL4_CHECK(net->built());
  config_.rsr.num_edges = net->NumEdges();
  rsr_ = std::make_unique<RsrNet>(config_.rsr);
  config_.asd.z_dim = rsr_->z_dim();
  asd_ = std::make_unique<AsdNet>(config_.asd);
  detector_ = std::make_unique<OnlineDetector>(
      net_, &preprocessor_, rsr_.get(), asd_.get(), config_.detector);
}

void Rl4Oasd::PretrainRsr(const traj::Dataset& train,
                          const std::vector<size_t>& sample) {
  for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
    for (size_t idx : sample) {
      const auto& t = train[idx].traj;
      if (t.edges.size() < 3) continue;
      const auto nrf = preprocessor_.NormalRouteFeatures(t);
      std::vector<uint8_t> labels;
      if (config_.use_noisy_labels) {
        labels = preprocessor_.NoisyLabels(t);
      } else {
        // Ablation: replace the warm-start signal with coin flips.
        labels.resize(t.edges.size());
        for (auto& l : labels) l = rng_.Bernoulli(0.5) ? 1 : 0;
      }
      rsr_->TrainStep(t.edges, nrf, labels);
    }
  }
}

void Rl4Oasd::PretrainAsd(const traj::Dataset& train,
                          const std::vector<size_t>& sample) {
  // Warm-start the policy by imitating the noisy labels (paper: "we specify
  // its actions as the noisy labels"). Multiple epochs of supervised
  // imitation are required: joint REINFORCE training starting from a policy
  // that rarely emits 1s collapses to labeling everything normal.
  for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
    for (size_t idx : sample) {
      const auto& t = train[idx].traj;
      if (t.edges.size() < 3) continue;
      const auto nrf = preprocessor_.NormalRouteFeatures(t);
      std::vector<uint8_t> labels =
          config_.use_noisy_labels
              ? preprocessor_.NoisyLabels(t)
              : std::vector<uint8_t>(t.edges.size(), 0);
      const RsrForward fwd = rsr_->Forward(t.edges, nrf);
      std::vector<AsdStep> episode;
      int prev_label = 0;
      for (size_t i = 1; i + 1 < t.edges.size(); ++i) {
        AsdStep step;
        step.z = fwd.z[i];
        step.prev_label = prev_label;
        step.action = labels[i];
        episode.push_back(std::move(step));
        prev_label = labels[i];
      }
      asd_->ImitationUpdate(episode);
    }
  }
}

std::vector<uint8_t> Rl4Oasd::RolloutLabels(
    const traj::MapMatchedTrajectory& t, const RsrForward& fwd,
    bool stochastic, std::vector<AsdStep>* episode) {
  const size_t n = t.edges.size();
  std::vector<uint8_t> labels(n, 0);
  int prev_label = 0;
  for (size_t i = 1; i < n; ++i) {
    if (i + 1 == n) {
      labels[i] = 0;  // destination is normal by definition
      break;
    }
    int det = -1;
    if (config_.detector.use_rnel) {
      det = RnelDeterministicLabel(*net_, t.edges[i - 1], prev_label,
                                   t.edges[i]);
    }
    int action;
    if (det >= 0) {
      action = det;
    } else if (stochastic) {
      if (rng_.Bernoulli(config_.joint_explore_eps)) {
        action = static_cast<int>(rng_.UniformInt(uint64_t{2}));
      } else {
        action = asd_->SampleAction(fwd.z[i].data(), prev_label, &rng_);
      }
      if (episode != nullptr) {
        AsdStep step;
        step.z = fwd.z[i];
        step.prev_label = prev_label;
        step.action = action;
        episode->push_back(std::move(step));
      }
    } else {
      action = asd_->GreedyAction(fwd.z[i].data(), prev_label);
    }
    labels[i] = static_cast<uint8_t>(action);
    prev_label = action;
  }
  return labels;
}

void Rl4Oasd::JointStep(const traj::MapMatchedTrajectory& t) {
  const auto nrf = preprocessor_.NormalRouteFeatures(t);
  const RsrForward fwd = rsr_->Forward(t.edges, nrf);
  std::vector<AsdStep> episode;
  const auto refined =
      RolloutLabels(t, fwd, /*stochastic=*/true, &episode);
  const double loss = rsr_->Loss(t.edges, nrf, refined);
  const double reward = EpisodeReward(fwd.z, refined, loss,
                                      config_.use_local_reward,
                                      config_.use_global_reward);
  double advantage = reward;
  ++joint_stats_.episodes;
  int ones_delta = 0;
  if (config_.use_reward_baseline) {
    // Self-critical baseline: compare against the greedy rollout of the
    // same trajectory.
    const auto greedy = RolloutLabels(t, fwd, /*stochastic=*/false, nullptr);
    const double greedy_loss = rsr_->Loss(t.edges, nrf, greedy);
    advantage = reward - EpisodeReward(fwd.z, greedy, greedy_loss,
                                       config_.use_local_reward,
                                       config_.use_global_reward);
    for (size_t i = 0; i < refined.size(); ++i) {
      ones_delta += static_cast<int>(refined[i]) - static_cast<int>(greedy[i]);
    }
    // Self-imitation: only reinforce rollouts that beat the greedy policy.
    // Under Adam's magnitude normalization, the frequent negative-advantage
    // episodes otherwise dominate the rare positive ones and the policy
    // degenerates to labeling everything normal.
    if (advantage <= 0.0) {
      last_mean_reward_ = reward;
      if (config_.train_rsr_in_joint && config_.use_noisy_labels &&
          rng_.Bernoulli(config_.noisy_anchor_prob)) {
        rsr_->TrainStep(t.edges, nrf, preprocessor_.NoisyLabels(t));
      }
      return;
    }
  }
  ++joint_stats_.applied;
  joint_stats_.advantage_sum += advantage;
  joint_stats_.ones_delta_sum += ones_delta;
  asd_->ReinforceUpdate(episode, advantage);
  // Refined labels retrain RSRNet, which then provides better states. The
  // noisy labels stay in the mix as the weak-supervision anchor (see
  // Rl4OasdConfig::noisy_anchor_prob).
  if (config_.train_rsr_in_joint) {
    if (config_.use_noisy_labels &&
        rng_.Bernoulli(config_.noisy_anchor_prob)) {
      rsr_->TrainStep(t.edges, nrf, preprocessor_.NoisyLabels(t));
    } else {
      rsr_->TrainStep(t.edges, nrf, refined);
    }
  }
  last_mean_reward_ = reward;
}

void Rl4Oasd::Fit(const traj::Dataset& train) {
  RL4_CHECK(!train.empty());
  preprocessor_.Fit(train);

  if (config_.transition_frequency_only) return;  // nothing neural to train

  if (config_.use_pretrained_embeddings) {
    embed::SkipGramConfig ecfg = config_.embedding;
    ecfg.dim = config_.rsr.embed_dim;
    embed::SkipGramTrainer trainer(net_, ecfg);
    rsr_->LoadTcfEmbeddings(trainer.Train(train));
  }

  // Warm start on a small sample (paper: 200 trajectories). The sample is
  // stratified so that up to half of it contains noisy-anomalous segments:
  // at realistic anomaly ratios (~1% of segments) a uniform sample starves
  // the warm start of anomalous examples entirely.
  const size_t pre_n = std::min<size_t>(config_.pretrain_samples,
                                        train.size());
  std::vector<size_t> pre_sample;
  if (config_.use_noisy_labels) {
    std::vector<size_t> with_anomaly, without;
    for (size_t i = 0; i < train.size(); ++i) {
      const auto& t = train[i].traj;
      if (t.edges.size() < 3) continue;
      const auto noisy = preprocessor_.NoisyLabels(t);
      bool any = false;
      for (uint8_t l : noisy) any |= (l != 0);
      (any ? with_anomaly : without).push_back(i);
    }
    rng_.Shuffle(&with_anomaly);
    rng_.Shuffle(&without);
    const size_t take_anomalous = std::min(with_anomaly.size(), pre_n / 2);
    pre_sample.assign(with_anomaly.begin(),
                      with_anomaly.begin() + take_anomalous);
    for (size_t i = 0; i < without.size() && pre_sample.size() < pre_n;
         ++i) {
      pre_sample.push_back(without[i]);
    }
    rng_.Shuffle(&pre_sample);
  } else {
    pre_sample = rng_.SampleWithoutReplacement(train.size(), pre_n);
  }
  PretrainRsr(train, pre_sample);
  if (config_.use_asdnet) {
    PretrainAsd(train, pre_sample);
  }

  if (!config_.use_asdnet) return;  // classifier-only ablation stops here

  // Joint training (paper: 10,000 sampled trajectories, 5 epochs each).
  const size_t joint_n =
      std::min<size_t>(config_.joint_samples, train.size());
  auto joint_sample = rng_.SampleWithoutReplacement(train.size(), joint_n);
  double reward_sum = 0.0;
  int64_t reward_n = 0;
  for (size_t idx : joint_sample) {
    const auto& t = train[idx].traj;
    if (t.edges.size() < 3) continue;
    for (int e = 0; e < config_.epochs_per_traj; ++e) {
      JointStep(t);
      reward_sum += last_mean_reward_;
      ++reward_n;
    }
  }
  if (reward_n > 0) last_mean_reward_ = reward_sum / reward_n;
}

void Rl4Oasd::JointTrain(const traj::Dataset& data, int max_samples) {
  if (config_.transition_frequency_only || !config_.use_asdnet) return;
  size_t n = data.size();
  if (max_samples >= 0) n = std::min<size_t>(n, max_samples);
  auto sample = rng_.SampleWithoutReplacement(data.size(), n);
  for (size_t idx : sample) {
    const auto& t = data[idx].traj;
    if (t.edges.size() < 3) continue;
    JointStep(t);
  }
}

void Rl4Oasd::FineTune(const traj::Dataset& new_data, int max_samples) {
  // Keep the historical statistics current, then run a light pass of both
  // warm-start training and policy refinement on the new data (the
  // RL4OASD-FT strategy of Section V-G).
  for (const auto& lt : new_data.trajs()) {
    preprocessor_.Update(lt.traj);
  }
  if (config_.transition_frequency_only) return;
  size_t n = new_data.size();
  if (max_samples >= 0) n = std::min<size_t>(n, max_samples);
  auto sample = rng_.SampleWithoutReplacement(new_data.size(), n);
  // The drifted statistics change the noisy labels and NRF features, so the
  // networks re-anchor on them (this is what adapts to concept drift).
  PretrainRsr(new_data, sample);
  if (config_.use_asdnet) {
    PretrainAsd(new_data, sample);
    for (size_t idx : sample) {
      const auto& t = new_data[idx].traj;
      if (t.edges.size() < 3) continue;
      JointStep(t);
    }
  }
}

std::vector<uint8_t> Rl4Oasd::Detect(
    const traj::MapMatchedTrajectory& t) const {
  if (config_.transition_frequency_only) {
    // The paper's "simplest method": raw transition-frequency thresholding,
    // with none of the detector's smoothing.
    return preprocessor_.NoisyLabels(t);
  }
  if (!config_.use_asdnet) {
    // Classifier-only ablation: argmax over RSRNet's softmax head.
    const auto nrf = preprocessor_.NormalRouteFeatures(t);
    const RsrForward fwd = rsr_->Forward(t.edges, nrf);
    std::vector<uint8_t> labels(t.edges.size(), 0);
    for (size_t i = 1; i + 1 < labels.size(); ++i) {
      labels[i] = fwd.probs[i][1] > fwd.probs[i][0] ? 1 : 0;
    }
    if (config_.detector.use_dl) {
      ApplyDelayedLabeling(&labels, config_.detector.delay_d);
    }
    return labels;
  }
  return detector_->Detect(t);
}

OnlineDetector::Session Rl4Oasd::StartSession(traj::SdPair sd,
                                              double start_time) const {
  return detector_->StartSession(sd, start_time);
}

}  // namespace rl4oasd::core
