// The RL4OASD model facade: wires together preprocessing, Toast-substitute
// road embeddings, RSRNet, ASDNet, joint weakly-supervised training
// (Section IV-E), online fine-tuning for concept drift, and the online
// detector. Every ablation row of Table IV is a configuration flag here.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/asdnet.h"
#include "core/detector.h"
#include "core/feature_cache.h"
#include "core/preprocess.h"
#include "core/rsrnet.h"
#include "embed/skipgram.h"
#include "roadnet/road_network.h"
#include "traj/dataset.h"

namespace rl4oasd::core {

struct Rl4OasdConfig {
  PreprocessConfig preprocess;
  RsrNetConfig rsr;   // num_edges is filled in from the road network
  AsdNetConfig asd;   // z_dim is filled in from the RSRNet config
  DetectorConfig detector;
  embed::SkipGramConfig embedding;

  // Training schedule (paper Section IV-D, "Joint Training").
  int pretrain_samples = 200;
  int pretrain_epochs = 3;
  int joint_samples = 10000;
  int epochs_per_traj = 5;

  // Data-parallel warm start: the pretrain phases shard across this many
  // worker threads. Workers backprop through the shared model into
  // worker-local gradient sinks; the main thread applies the per-sample
  // Adam steps in the deterministic sample order. 1 (the default) is the
  // sequential path, bit-identical to historical behaviour. With N > 1,
  // PretrainAsd stays bit-identical (RSRNet is frozen there, so parallel
  // episode building is exact) while PretrainRsr becomes minibatch-stale:
  // each gradient in a wave of N is computed against weights up to N-1
  // steps old — deterministic, but numerically a different (equally valid)
  // optimization path, covered by tolerance-based equivalence tests. The
  // joint REINFORCE phase is inherently sequential and never shards.
  int trainer_threads = 1;

  // Self-critical REINFORCE baseline: the advantage of a sampled rollout is
  // its reward minus the reward of the greedy rollout on the same
  // trajectory. (Not spelled out in the paper, but raw positive episode
  // rewards uniformly reinforce all sampled actions, and a global
  // running-mean baseline is dominated by cross-trajectory reward variance —
  // both collapse the policy to all-normal labeling.)
  bool use_reward_baseline = true;

  // During joint training, RSRNet alternates between the policy's refined
  // labels and the noisy labels with this probability of picking the noisy
  // ones. Pure self-training (0.0) drifts to the trivial all-normal
  // equilibrium: labeling everything normal maximizes the continuity reward
  // and RSRNet then learns to agree with it. Keeping the weak-supervision
  // anchor in the loop preserves the paper's iterative-refinement behaviour.
  double noisy_anchor_prob = 0.5;

  // Whether RSRNet keeps training during the joint phase. The paper trains
  // the two networks iteratively; in practice the uniform joint stream is
  // ~95% anomaly-free and continued RSRNet training drifts its decision
  // prior toward "normal", silently invalidating the (frozen) policy's
  // learned mapping from z. Off by default: RSRNet is trained in the warm
  // start (and by FineTune for concept drift), the joint phase refines the
  // policy against a stationary reward.
  bool train_rsr_in_joint = false;

  // Exploration rate for joint-training rollouts: each non-RNEL action is
  // flipped to a uniform random one with this probability. The imitation
  // warm start leaves the policy nearly deterministic, so without forced
  // exploration the sampled rollout equals the greedy one and the joint
  // phase never finds an improving episode.
  double joint_explore_eps = 0.1;

  // Ablation switches (Table IV).
  bool use_noisy_labels = true;            // false: random pretrain labels
  bool use_pretrained_embeddings = true;   // false: random embedding init
  bool use_local_reward = true;
  bool use_global_reward = true;
  bool use_asdnet = true;                  // false: RSRNet classifier alone
  bool transition_frequency_only = false;  // the simplest detector

  uint64_t seed = 5;
};

class Rl4Oasd {
 public:
  Rl4Oasd(const roadnet::RoadNetwork* net, Rl4OasdConfig config);

  /// Full training pipeline on a historical dataset: preprocessing,
  /// embedding pre-training, warm-start pre-training, joint training.
  void Fit(const traj::Dataset& train);

  /// Joint-training pass over (a sample of) the given data without touching
  /// the historical statistics. Fit() calls this once; callers can invoke it
  /// again to continue refining the policy.
  void JointTrain(const traj::Dataset& data, int max_samples = -1);

  /// Online learning for concept drift: ingests newly recorded trajectories
  /// into the historical statistics, then fine-tunes on them.
  void FineTune(const traj::Dataset& new_data, int max_samples = -1);

  /// Labels a trajectory (0 normal / 1 anomalous per segment).
  std::vector<uint8_t> Detect(const traj::MapMatchedTrajectory& t) const;

  /// Streaming session access (per-point online detection).
  OnlineDetector::Session StartSession(traj::SdPair sd,
                                       double start_time) const;

  /// The road network the model was built over (non-owning; outlives the
  /// model). Serving-side consumers — e.g. the ingest guard's teleport
  /// check — share this graph rather than carrying their own copy.
  const roadnet::RoadNetwork* network() const { return net_; }

  const Preprocessor& preprocessor() const { return preprocessor_; }
  Preprocessor* mutable_preprocessor() { return &preprocessor_; }
  const RsrNet& rsrnet() const { return *rsr_; }
  const AsdNet& asdnet() const { return *asd_; }
  RsrNet* mutable_rsrnet() { return rsr_.get(); }
  AsdNet* mutable_asdnet() { return asd_.get(); }
  const OnlineDetector& detector() const { return *detector_; }
  const Rl4OasdConfig& config() const { return config_; }

  /// Mean episode reward observed over the last joint-training pass
  /// (exposed for tests and training-curve reporting).
  double last_mean_reward() const { return last_mean_reward_; }

  /// Counters over all joint-training steps so far (training diagnostics).
  struct JointStats {
    int64_t episodes = 0;         // total JointStep calls
    int64_t applied = 0;          // policy updates applied (advantage > 0)
    double advantage_sum = 0.0;   // over applied updates
    double ones_delta_sum = 0.0;  // #1s(sampled) - #1s(greedy), applied only
  };
  const JointStats& joint_stats() const { return joint_stats_; }

  /// Wall-clock breakdown of the last Fit() call (training-time
  /// observability for oasd_train --time and the Table V bench).
  struct FitTimings {
    double preprocess_s = 0.0;    // statistics fit + warm-start features
    double embed_s = 0.0;         // Toast-substitute skip-gram training
    double pretrain_rsr_s = 0.0;  // RSRNet warm start
    double pretrain_asd_s = 0.0;  // ASDNet imitation warm start
    double joint_s = 0.0;         // joint REINFORCE refinement
    double total_s = 0.0;
  };
  const FitTimings& fit_timings() const { return fit_timings_; }

 private:
  /// One joint-training step on a single trajectory: sample refined labels
  /// with the current policy, compute rewards, REINFORCE-update ASDNet, and
  /// retrain RSRNet on the refined labels.
  void JointStep(const traj::MapMatchedTrajectory& t);

  /// Rolls out labels with the current policy (training-time version of
  /// Algorithm 1; respects RNEL). When `stochastic`, actions are sampled and
  /// the non-RNEL decisions are appended to `episode` (which may be null for
  /// greedy rollouts).
  std::vector<uint8_t> RolloutLabels(const traj::MapMatchedTrajectory& t,
                                     const RsrForward& fwd, bool stochastic,
                                     std::vector<AsdStep>* episode);

  void PretrainRsr(const traj::Dataset& train,
                   const std::vector<size_t>& sample);
  void PretrainAsd(const traj::Dataset& train,
                   const std::vector<size_t>& sample);

  const roadnet::RoadNetwork* net_;
  Rl4OasdConfig config_;
  Rng rng_;
  Preprocessor preprocessor_;
  /// Memoized NoisyLabels / NormalRouteFeatures over preprocessor_ —
  /// shared by the stratification scan, both pretrain phases, and every
  /// joint episode; invalidated by generation whenever the preprocessor
  /// statistics move (Fit / FineTune drift updates).
  FeatureCache features_{&preprocessor_};
  std::unique_ptr<RsrNet> rsr_;
  std::unique_ptr<AsdNet> asd_;
  std::unique_ptr<OnlineDetector> detector_;
  double last_mean_reward_ = 0.0;
  JointStats joint_stats_;
  FitTimings fit_timings_;
};

}  // namespace rl4oasd::core
