#include "core/route_generator.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>

#include "common/logging.h"
#include "roadnet/shortest_path.h"

namespace rl4oasd::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Route identity key for deduplication.
uint64_t RouteHash(const std::vector<traj::EdgeId>& route) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (traj::EdgeId e : route) {
    h ^= static_cast<uint32_t>(e);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

RouteGenerator::RouteGenerator(const roadnet::RoadNetwork* net,
                               RouteGeneratorConfig config)
    : net_(net), config_(config) {
  RL4_CHECK(net->built());
  RL4_CHECK_GT(config_.routes_per_pair, 0);
  transition_counts_.resize(net->NumEdges());
  for (size_t e = 0; e < net->NumEdges(); ++e) {
    transition_counts_[e].assign(
        net->NextEdges(static_cast<traj::EdgeId>(e)).size(), 0);
  }
}

void RouteGenerator::Fit(const traj::Dataset& historical) {
  for (auto& counts : transition_counts_) {
    std::fill(counts.begin(), counts.end(), 0);
  }
  total_transitions_ = 0;
  for (const traj::LabeledTrajectory& lt : historical.trajs()) {
    const auto& edges = lt.traj.edges;
    for (size_t i = 1; i < edges.size(); ++i) {
      const traj::EdgeId prev = edges[i - 1];
      if (prev < 0 || static_cast<size_t>(prev) >= transition_counts_.size()) {
        continue;
      }
      const auto& successors = net_->NextEdges(prev);
      for (size_t k = 0; k < successors.size(); ++k) {
        if (successors[k] == edges[i]) {
          transition_counts_[prev][k] += 1;
          total_transitions_ += 1;
          break;
        }
      }
    }
  }
}

std::vector<double> RouteGenerator::DistanceToDestination(
    traj::EdgeId dst) const {
  std::vector<double> dist(net_->NumEdges(), kInf);
  using Item = std::pair<double, traj::EdgeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[dst] = net_->edge(dst).length_m;
  heap.emplace(dist[dst], dst);
  while (!heap.empty()) {
    auto [d, e] = heap.top();
    heap.pop();
    if (d > dist[e]) continue;
    for (traj::EdgeId p : net_->PrevEdges(e)) {
      const double nd = d + net_->edge(p).length_m;
      if (nd < dist[p]) {
        dist[p] = nd;
        heap.emplace(nd, p);
      }
    }
  }
  return dist;
}

std::vector<traj::EdgeId> RouteGenerator::SampleRoute(traj::EdgeId src,
                                                      traj::EdgeId dst,
                                                      Rng* rng) const {
  const std::vector<double> to_dst = DistanceToDestination(dst);
  if (to_dst[src] == kInf) return {};  // disconnected

  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    std::vector<traj::EdgeId> route = {src};
    std::unordered_set<traj::EdgeId> visited = {src};
    traj::EdgeId cur = src;
    bool ok = false;
    for (int step = 0; step < config_.max_steps; ++step) {
      if (cur == dst) {
        ok = true;
        break;
      }
      const auto& successors = net_->NextEdges(cur);
      const auto& counts = transition_counts_[cur];
      std::vector<double> weights(successors.size(), 0.0);
      for (size_t k = 0; k < successors.size(); ++k) {
        const traj::EdgeId next = successors[k];
        if (visited.contains(next) || to_dst[next] == kInf) continue;
        double w = static_cast<double>(counts[k]) + config_.smoothing;
        // Destination guidance: boost successors that make progress.
        if (to_dst[next] < to_dst[cur]) w *= config_.greedy_bias;
        weights[k] = w;
      }
      double sum = 0.0;
      for (double w : weights) sum += w;
      if (sum <= 0.0) break;  // dead end: every successor visited/unreachable
      const size_t pick = rng->Categorical(weights);
      cur = successors[pick];
      route.push_back(cur);
      visited.insert(cur);
    }
    if (ok || (route.size() > 1 && route.back() == dst)) return route;
  }
  return {};
}

std::vector<std::vector<traj::EdgeId>> RouteGenerator::GenerateRoutes(
    traj::EdgeId src, traj::EdgeId dst, int k) const {
  Rng rng(config_.seed ^ (static_cast<uint64_t>(src) << 32) ^
          static_cast<uint32_t>(dst));
  std::vector<std::vector<traj::EdgeId>> routes;
  std::unordered_set<uint64_t> seen;
  for (int i = 0; i < k * config_.max_attempts &&
                  static_cast<int>(routes.size()) < k;
       ++i) {
    std::vector<traj::EdgeId> route = SampleRoute(src, dst, &rng);
    if (route.empty()) break;
    if (seen.insert(RouteHash(route)).second) {
      routes.push_back(std::move(route));
    }
  }
  if (routes.empty()) {
    // Markov sampling failed (e.g., an empty corpus on a sparse graph):
    // the shortest path is always an acceptable normal route.
    std::vector<traj::EdgeId> sp =
        roadnet::ShortestPathBetweenEdges(*net_, src, dst);
    if (!sp.empty()) routes.push_back(std::move(sp));
  }
  return routes;
}

traj::Dataset RouteGenerator::AugmentSparsePairs(
    const traj::Dataset& data) const {
  traj::Dataset out = data;
  Rng rng(config_.seed + 1);
  int64_t synthetic_id = -1;
  for (const auto& [sd, indices] : data.Groups()) {
    const int64_t missing =
        config_.target_support - static_cast<int64_t>(indices.size());
    if (missing <= 0) continue;
    const auto routes =
        GenerateRoutes(sd.source, sd.dest, config_.routes_per_pair);
    if (routes.empty()) continue;
    // Spread synthetic trips over the day so every time slot falls back to
    // well-supported statistics, favoring earlier (more popular) routes.
    for (int64_t i = 0; i < missing; ++i) {
      const auto& route = routes[i % routes.size()];
      traj::LabeledTrajectory lt;
      lt.traj.id = synthetic_id--;
      lt.traj.edges = route;
      lt.traj.start_time = rng.Uniform(0.0, 24 * 3600.0);
      lt.labels.assign(route.size(), 0);
      out.Add(std::move(lt));
    }
  }
  return out;
}

}  // namespace rl4oasd::core
