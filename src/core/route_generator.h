// Generative route synthesis for the cold-start problem (the paper's stated
// future work: "some generative methods, e.g., to generate some routes
// within the sparse SD pairs, can possibly be leveraged to overcome the
// issue").
//
// The generator fits a global first-order Markov model over edge
// transitions from the whole historical corpus — transition behaviour
// (which turn drivers take at an intersection) generalizes across SD pairs
// even when a specific pair has almost no data. Sparse pairs are then
// augmented with synthetic trajectories sampled from this model, guided
// toward the destination by a backward-Dijkstra distance field, and the
// augmented dataset trains the preprocessor as usual.
#pragma once

#include <vector>

#include "common/rng.h"
#include "roadnet/road_network.h"
#include "traj/dataset.h"
#include "traj/types.h"

namespace rl4oasd::core {

struct RouteGeneratorConfig {
  /// Sparse pairs are topped up to this many trajectories.
  int target_support = 25;
  /// Synthetic routes sampled per sparse pair (trajectories are distributed
  /// over them round-robin, mirroring the popularity skew of real pairs).
  int routes_per_pair = 3;
  /// Per-route sampling attempts before falling back to the shortest path.
  int max_attempts = 8;
  /// Hard cap on route length, in edges.
  int max_steps = 400;
  /// Multiplier applied to a successor's sampling weight when it strictly
  /// decreases the remaining network distance to the destination. 1.0 turns
  /// the guidance off; larger values make walks beeline.
  double greedy_bias = 4.0;
  /// Add-k smoothing over graph successors, so turns never observed in the
  /// corpus remain possible.
  double smoothing = 0.25;
  uint64_t seed = 47;
};

/// Markov-chain route generator with destination guidance.
class RouteGenerator {
 public:
  RouteGenerator(const roadnet::RoadNetwork* net, RouteGeneratorConfig config);

  /// Builds global transition counts from every trajectory in `historical`.
  void Fit(const traj::Dataset& historical);

  /// Total transition observations ingested (diagnostics).
  int64_t total_transitions() const { return total_transitions_; }

  /// Samples one route from `src` to `dst` (both edge ids, inclusive).
  /// Returns an empty vector when no route is found within max_steps.
  std::vector<traj::EdgeId> SampleRoute(traj::EdgeId src, traj::EdgeId dst,
                                        Rng* rng) const;

  /// Up to `k` distinct routes; falls back to the shortest path when
  /// sampling fails, so the result is empty only for disconnected pairs.
  std::vector<std::vector<traj::EdgeId>> GenerateRoutes(traj::EdgeId src,
                                                        traj::EdgeId dst,
                                                        int k) const;

  /// Returns a copy of `data` where every SD pair with fewer than
  /// `config.target_support` trajectories is topped up with synthetic
  /// all-normal trajectories along generated routes. Synthetic trajectories
  /// get negative ids so downstream code can tell them apart.
  traj::Dataset AugmentSparsePairs(const traj::Dataset& data) const;

 private:
  /// Distance (meters) from every edge to `dst` along directed paths,
  /// entering-edge inclusive; +inf where unreachable. Backward Dijkstra over
  /// the edge graph.
  std::vector<double> DistanceToDestination(traj::EdgeId dst) const;

  const roadnet::RoadNetwork* net_;
  RouteGeneratorConfig config_;
  /// transition_counts_[e] holds counts aligned with net_->NextEdges(e).
  std::vector<std::vector<int64_t>> transition_counts_;
  int64_t total_transitions_ = 0;
};

}  // namespace rl4oasd::core
