#include "core/rsrnet.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "nn/stacked.h"

namespace rl4oasd::core {

RsrNet::RsrNet(RsrNetConfig config)
    : config_(config),
      rng_(config.seed),
      tcf_embed_("rsr.tcf", config.num_edges, config.embed_dim, &rng_),
      nrf_embed_("rsr.nrf", 2, config.nrf_dim, &rng_),
      rnn_(config.num_layers > 1
               ? std::make_unique<nn::StackedRnn>(
                     config.rnn_kind, "rsr", config.embed_dim,
                     config.hidden_dim, config.num_layers, &rng_)
               : nn::MakeRecurrentNet(config.rnn_kind, "rsr",
                                      config.embed_dim, config.hidden_dim,
                                      &rng_)),
      head_("rsr.head", config.hidden_dim + config.nrf_dim, 2, &rng_) {
  RL4_CHECK_GT(config_.num_edges, 0u);
  tcf_embed_.RegisterParams(&registry_);
  nrf_embed_.RegisterParams(&registry_);
  rnn_->RegisterParams(&registry_);
  head_.RegisterParams(&registry_);
  nn::AdamConfig adam;
  adam.lr = config_.lr;
  optimizer_ = std::make_unique<nn::AdamOptimizer>(&registry_, adam);
}

void RsrNet::LoadTcfEmbeddings(const nn::Matrix& table) {
  RL4_CHECK_EQ(table.rows(), tcf_embed_.vocab());
  RL4_CHECK_GE(table.cols(), tcf_embed_.dim());
  for (size_t r = 0; r < table.rows(); ++r) {
    tcf_embed_.SetRow(r, table.Row(r));
  }
}

RsrForward RsrNet::ForwardImpl(const std::vector<traj::EdgeId>& edges,
                               const std::vector<uint8_t>& nrf,
                               std::unique_ptr<nn::RecurrentNet::SeqCache>*
                                   caches) const {
  RL4_CHECK_EQ(edges.size(), nrf.size());
  RsrForward out;
  const size_t n = edges.size();
  std::vector<const float*> inputs(n);
  for (size_t i = 0; i < n; ++i) {
    inputs[i] = tcf_embed_.Lookup(static_cast<size_t>(edges[i]));
  }
  auto local_caches = rnn_->Forward(inputs);
  out.z.resize(n);
  out.probs.resize(n);
  const size_t H = config_.hidden_dim;
  const size_t N = config_.nrf_dim;
  for (size_t i = 0; i < n; ++i) {
    out.z[i].resize(H + N);
    const nn::Vec& h = local_caches->h(i);
    std::copy(h.begin(), h.end(), out.z[i].begin());
    const float* nv = nrf_embed_.Lookup(nrf[i] ? 1 : 0);
    std::copy(nv, nv + N, out.z[i].begin() + H);
    float logits[2];
    head_.Forward(out.z[i].data(), logits);
    nn::SoftmaxInPlace(logits, 2);
    out.probs[i] = {logits[0], logits[1]};
  }
  if (caches != nullptr) *caches = std::move(local_caches);
  return out;
}

RsrForward RsrNet::Forward(const std::vector<traj::EdgeId>& edges,
                           const std::vector<uint8_t>& nrf) const {
  return ForwardImpl(edges, nrf, nullptr);
}

const RsrForward& RsrNet::ForwardCached(const std::vector<traj::EdgeId>& edges,
                                        const std::vector<uint8_t>& nrf,
                                        RsrTrainCache* cache) const {
  cache->fwd = ForwardImpl(edges, nrf, &cache->rnn_cache);
  return cache->fwd;
}

double RsrNet::Loss(const std::vector<traj::EdgeId>& edges,
                    const std::vector<uint8_t>& nrf,
                    const std::vector<uint8_t>& labels) const {
  RL4_CHECK_EQ(edges.size(), labels.size());
  if (edges.empty()) return 0.0;
  return Loss(Forward(edges, nrf), labels);
}

double RsrNet::Loss(const RsrForward& fwd,
                    const std::vector<uint8_t>& labels) const {
  RL4_CHECK_EQ(fwd.probs.size(), labels.size());
  if (labels.empty()) return 0.0;
  double loss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    loss += nn::CrossEntropy(fwd.probs[i].data(), 2, labels[i] ? 1 : 0);
  }
  return loss / static_cast<double>(labels.size());
}

double RsrNet::TrainStep(const std::vector<traj::EdgeId>& edges,
                         const std::vector<uint8_t>& nrf,
                         const std::vector<uint8_t>& labels) {
  RsrTrainCache cache;
  ForwardCached(edges, nrf, &cache);
  return TrainStepCached(edges, nrf, labels, &cache);
}

double RsrNet::TrainStepCached(const std::vector<traj::EdgeId>& edges,
                               const std::vector<uint8_t>& nrf,
                               const std::vector<uint8_t>& labels,
                               RsrTrainCache* cache) {
  RL4_CHECK_EQ(edges.size(), labels.size());
  if (edges.empty()) return 0.0;
  RL4_CHECK(cache->valid());
  auto caches = std::move(cache->rnn_cache);
  registry_.ZeroGrad();
  const double loss =
      ComputeGradients(edges, nrf, labels, cache->fwd, *caches, nullptr);
  registry_.ClipGradNorm(config_.grad_clip);
  optimizer_->Step();
  return loss;
}

double RsrNet::AccumulateGradients(const std::vector<traj::EdgeId>& edges,
                                   const std::vector<uint8_t>& nrf,
                                   const std::vector<uint8_t>& labels,
                                   nn::GradientSink* sink) {
  RL4_CHECK_EQ(edges.size(), labels.size());
  if (edges.empty()) return 0.0;
  RsrTrainCache cache;
  ForwardCached(edges, nrf, &cache);
  return ComputeGradients(edges, nrf, labels, cache.fwd, *cache.rnn_cache,
                          sink);
}

void RsrNet::ApplyWorkerGradients(nn::GradientSink* sink) {
  sink->AddToParams();
  registry_.ClipGradNorm(config_.grad_clip);
  optimizer_->Step();
  registry_.ZeroGrad();
  sink->Reset();
}

double RsrNet::ComputeGradients(const std::vector<traj::EdgeId>& edges,
                                const std::vector<uint8_t>& nrf,
                                const std::vector<uint8_t>& labels,
                                const RsrForward& fwd,
                                const nn::RecurrentNet::SeqCache& caches,
                                nn::GradientSink* sink) {
  const size_t n = edges.size();
  const size_t H = config_.hidden_dim;
  const size_t N = config_.nrf_dim;
  const float inv_n = 1.0f / static_cast<float>(n);
  float positive_weight = config_.positive_weight;
  if (positive_weight <= 0.0f) {
    size_t ones = 0;
    for (uint8_t l : labels) ones += l ? 1 : 0;
    positive_weight =
        ones == 0 ? 1.0f
                  : std::min(50.0f, static_cast<float>(n - ones) /
                                        static_cast<float>(ones));
  }
  // Timestep-packed head backward: one GEMM over all positions instead of
  // n rank-1 updates (bit-identical; see Linear::BackwardSeq). All scratch
  // is thread-local, so concurrent workers (each with its own sink) don't
  // interfere.
  static thread_local nn::Matrix z_seq;       // n x (H + N)
  static thread_local nn::Matrix d_logits;    // n x 2
  static thread_local nn::Matrix d_z_seq;     // n x (H + N)
  static thread_local nn::Matrix d_h_seq;     // n x H
  static thread_local nn::Matrix d_x_seq;     // n x embed_dim
  static thread_local std::vector<size_t> ids;
  z_seq.EnsureShape(n, H + N);
  d_logits.EnsureShape(n, 2);
  double loss = 0.0;
  const float s = config_.label_smoothing;
  for (size_t i = 0; i < n; ++i) {
    const size_t target = labels[i] ? 1 : 0;
    loss += nn::CrossEntropy(fwd.probs[i].data(), 2, target);
    // d logits = w * (p - smoothed onehot) / n, with anomalous positions
    // upweighted.
    const float w = inv_n * (target == 1 ? positive_weight : 1.0f);
    float soft[2] = {target == 0 ? 1.0f - s : s, target == 1 ? 1.0f - s : s};
    float* dl = d_logits.Row(i);
    dl[0] = (fwd.probs[i][0] - soft[0]) * w;
    dl[1] = (fwd.probs[i][1] - soft[1]) * w;
    std::copy(fwd.z[i].begin(), fwd.z[i].end(), z_seq.Row(i));
  }
  head_.BackwardSeq(z_seq, d_logits, &d_z_seq, sink);
  // Split the z gradient into the recurrent hidden part and the NRF
  // embedding part.
  d_h_seq.EnsureShape(n, H);
  for (size_t i = 0; i < n; ++i) {
    const float* dz = d_z_seq.Row(i);
    std::copy(dz, dz + H, d_h_seq.Row(i));
    nrf_embed_.AccumulateGrad(nrf[i] ? 1 : 0, dz + H, sink);
  }
  rnn_->BackwardSeq(caches, d_h_seq, &d_x_seq, sink);
  ids.resize(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<size_t>(edges[i]);
  tcf_embed_.AccumulateGradSeq(ids, d_x_seq, sink);
  return loss / static_cast<double>(n);
}

size_t RsrNet::stream_state_size() const { return rnn_->state_size(); }

nn::Vec RsrNet::StepForward(traj::EdgeId edge, uint8_t nrf_bit,
                            RsrStream* stream,
                            std::array<float, 2>* probs) const {
  if (stream->state.h.size() != rnn_->state_size()) {
    stream->state = nn::RnnState(rnn_->state_size());
  }
  rnn_->StepForward(tcf_embed_.Lookup(static_cast<size_t>(edge)),
                    &stream->state);
  const size_t H = config_.hidden_dim;
  const size_t N = config_.nrf_dim;
  nn::Vec z(H + N);
  // Multi-layer cores pack one slice per layer; the top layer's hidden
  // output occupies the last H entries.
  const float* h_top = stream->state.h.data() + stream->state.h.size() - H;
  std::copy(h_top, h_top + H, z.begin());
  const float* nv = nrf_embed_.Lookup(nrf_bit ? 1 : 0);
  std::copy(nv, nv + N, z.begin() + H);
  if (probs != nullptr) {
    float logits[2];
    head_.Forward(z.data(), logits);
    nn::SoftmaxInPlace(logits, 2);
    (*probs) = {logits[0], logits[1]};
  }
  return z;
}

void RsrNet::StepForwardBatch(std::span<const traj::EdgeId> edges,
                              std::span<const uint8_t> nrf_bits,
                              std::span<RsrStream* const> streams,
                              nn::Matrix* z, nn::Matrix* probs) const {
  const size_t B = edges.size();
  RL4_CHECK_EQ(nrf_bits.size(), B);
  RL4_CHECK_EQ(streams.size(), B);
  const size_t H = config_.hidden_dim;
  const size_t N = config_.nrf_dim;
  const size_t S = rnn_->state_size();

  // Gather: embedding columns and per-stream recurrent states (fresh
  // streams are sized here, like the scalar path). Scratch buffers are
  // thread-local and fully overwritten, so steady-state waves allocate
  // nothing.
  static thread_local std::vector<size_t> ids;
  static thread_local std::vector<nn::RnnState*> states;
  static thread_local nn::Matrix x;  // embed_dim x B
  static thread_local nn::RnnBatchState batch_state;
  ids.resize(B);
  states.resize(B);
  for (size_t b = 0; b < B; ++b) {
    ids[b] = static_cast<size_t>(edges[b]);
    if (streams[b]->state.h.size() != S) {
      streams[b]->state = nn::RnnState(S);
    }
    states[b] = &streams[b]->state;
  }
  tcf_embed_.LookupBatch(ids, &x);
  batch_state.Gather(states, S);

  rnn_->StepForwardBatch(x, &batch_state);

  batch_state.Scatter(states);

  // z = [h_top; nrf]: the top layer's hidden block is the last H rows of
  // the packed state (contiguous, full width), the NRF embedding scatters
  // per column.
  z->EnsureShape(H + N, B);
  std::memcpy(z->data(), batch_state.h.Row(S - H), H * B * sizeof(float));
  for (size_t b = 0; b < B; ++b) {
    const float* nv = nrf_embed_.Lookup(nrf_bits[b] ? 1 : 0);
    float* col = z->data() + H * B + b;
    for (size_t r = 0; r < N; ++r) col[r * B] = nv[r];
  }
  if (probs != nullptr) {
    head_.ForwardBatch(*z, probs);
    nn::SoftmaxColumnsInPlace(probs);
  }
}

}  // namespace rl4oasd::core
