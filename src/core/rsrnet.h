// RSRNet (paper Section IV-C): road segment representation network.
// An LSTM consumes pre-trained traffic-context-feature (TCF) embeddings of
// the road segments; its hidden state h_i is concatenated with an embedded
// normal-route feature (NRF) to form the representation z_i = [h_i; x^n_i].
// A softmax head predicts a normal/anomalous label per segment; the network
// is trained with cross-entropy against noisy labels (pre-training) and
// against ASDNet's refined labels (joint training).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/rnn.h"
#include "traj/types.h"

namespace rl4oasd::core {

struct RsrNetConfig {
  size_t num_edges = 0;    // road-network vocabulary (required)
  size_t embed_dim = 64;   // TCF embedding size (paper: 128)
  size_t nrf_dim = 64;     // NRF embedding size
  size_t hidden_dim = 64;  // LSTM hidden units (paper: 128)
  float lr = 0.01f;        // paper setting
  float grad_clip = 5.0f;
  // Cross-entropy weight on anomalous-label positions (<= 0 picks a
  // class-balancing weight per sequence, capped at 50). The default is
  // unweighted: RSRNet's features separate the classes cleanly, and an
  // unweighted fit keeps the probabilities calibrated — the global reward
  // divides by this network's loss, and inflated p(anomalous) at borderline
  // positions drags the policy toward over-labeling.
  float positive_weight = 1.0f;
  // Label smoothing for TrainStep targets: the hard target (0,1) becomes
  // (smoothing, 1 - smoothing). Keeps the network from collapsing its
  // cross-entropy to zero — the ASDNet global reward divides by this loss,
  // and an overconfident RSRNet leaves the policy no room to refine
  // boundaries.
  float label_smoothing = 0.05f;
  // Recurrent core: LSTM (paper setting) or GRU (architecture ablation).
  nn::RnnKind rnn_kind = nn::RnnKind::kLstm;
  // Stacked recurrent layers (1 = the paper's single-layer setting).
  size_t num_layers = 1;
  uint64_t seed = 17;
};

/// Output of a full-sequence forward pass.
struct RsrForward {
  /// z_i = [h_i; nrf_embed_i], one per segment (dim = hidden + nrf_dim).
  std::vector<nn::Vec> z;
  /// Class probabilities per segment: {p(normal), p(anomalous)}.
  std::vector<std::array<float, 2>> probs;
};

/// Streaming state for the online detector: one recurrent state per
/// trajectory.
struct RsrStream {
  nn::RnnState state;
  explicit RsrStream(size_t hidden = 0) : state(hidden) {}
};

/// A forward pass retained for training: the consumer-visible outputs plus
/// the recurrent BPTT caches. Produced by RsrNet::ForwardCached, consumed
/// (at most once) by RsrNet::TrainStepCached — the joint-training loop
/// computes one forward per episode and reuses it for the rollout, both
/// reward losses, and the weight update.
struct RsrTrainCache {
  RsrForward fwd;
  std::unique_ptr<nn::RecurrentNet::SeqCache> rnn_cache;

  /// True until TrainStepCached consumes the BPTT caches (the weights
  /// change on the update, so the forward cannot be reused afterwards).
  bool valid() const { return rnn_cache != nullptr; }
};

class RsrNet {
 public:
  explicit RsrNet(RsrNetConfig config);

  size_t z_dim() const { return config_.hidden_dim + config_.nrf_dim; }
  const RsrNetConfig& config() const { return config_; }

  /// Length of the RsrStream state vectors the recurrent core carries
  /// (num_layers * hidden for stacked cores). Snapshot restore validates
  /// imported hidden states against this before accepting them.
  size_t stream_state_size() const;

  /// Loads pre-trained TCF embeddings (rows must match num_edges; extra
  /// columns are truncated, missing columns are an error).
  void LoadTcfEmbeddings(const nn::Matrix& table);

  /// Full-sequence forward (no gradients retained).
  RsrForward Forward(const std::vector<traj::EdgeId>& edges,
                     const std::vector<uint8_t>& nrf) const;

  /// Full-sequence forward retaining the BPTT caches in `cache` so a later
  /// TrainStepCached (and any number of Loss evaluations) can reuse it.
  /// Returns a reference to cache->fwd. Identical outputs to Forward().
  const RsrForward& ForwardCached(const std::vector<traj::EdgeId>& edges,
                                  const std::vector<uint8_t>& nrf,
                                  RsrTrainCache* cache) const;

  /// Mean cross-entropy of the sequence against `labels` (Equation 1).
  double Loss(const std::vector<traj::EdgeId>& edges,
              const std::vector<uint8_t>& nrf,
              const std::vector<uint8_t>& labels) const;

  /// Same loss from an already-computed forward pass (no re-forward; the
  /// probabilities fully determine it).
  double Loss(const RsrForward& fwd, const std::vector<uint8_t>& labels) const;

  /// One Adam step of cross-entropy training; returns the pre-update loss.
  double TrainStep(const std::vector<traj::EdgeId>& edges,
                   const std::vector<uint8_t>& nrf,
                   const std::vector<uint8_t>& labels);

  /// As TrainStep, but reuses the forward pass in `cache` (from
  /// ForwardCached on the same edges/nrf with the current weights) instead
  /// of re-running it. Consumes the cache: `cache->valid()` is false
  /// afterwards, because the Adam step invalidates the stored activations.
  double TrainStepCached(const std::vector<traj::EdgeId>& edges,
                         const std::vector<uint8_t>& nrf,
                         const std::vector<uint8_t>& labels,
                         RsrTrainCache* cache);

  /// Forward + backward for one sequence with every parameter gradient
  /// routed into `sink` instead of the model; returns the mean loss and
  /// does NOT update weights. Safe to call concurrently from multiple
  /// worker threads as long as each passes its own sink: the weights are
  /// only read and all scratch is thread-local. Pair with
  /// ApplyWorkerGradients on the owning thread.
  double AccumulateGradients(const std::vector<traj::EdgeId>& edges,
                             const std::vector<uint8_t>& nrf,
                             const std::vector<uint8_t>& labels,
                             nn::GradientSink* sink);

  /// Applies one worker's accumulated gradients exactly as TrainStep's
  /// update phase would (fold into the registry, clip, Adam step).
  /// Requires the registry gradients to be all-zero on entry — call
  /// registry()->ZeroGrad() once before the first apply — and restores
  /// that invariant before returning; the sink is Reset() for reuse. With
  /// a single worker, AccumulateGradients + ApplyWorkerGradients is
  /// bit-identical to TrainStep.
  void ApplyWorkerGradients(nn::GradientSink* sink);

  /// Streaming step: consumes one segment and its NRF bit, returns z_i and
  /// fills `probs`. O(hidden * (hidden + embed)) per call.
  nn::Vec StepForward(traj::EdgeId edge, uint8_t nrf_bit, RsrStream* stream,
                      std::array<float, 2>* probs) const;

  /// Batched streaming step over B independent trip streams: advances
  /// streams[b] by edges[b]/nrf_bits[b] exactly as StepForward would
  /// (<= 1e-6 relative; see nn::Gemm's equivalence contract), but with the
  /// recurrent gate matmuls of all B streams fused into GEMMs. `z` is
  /// resized to (z_dim x B), column b = z_b; `probs` (optional) is resized
  /// to (2 x B) of softmaxed class probabilities. Streams may differ per
  /// call — the caller gathers whichever trips have a point to process, so
  /// ragged final batches are just smaller B.
  void StepForwardBatch(std::span<const traj::EdgeId> edges,
                        std::span<const uint8_t> nrf_bits,
                        std::span<RsrStream* const> streams, nn::Matrix* z,
                        nn::Matrix* probs = nullptr) const;

  nn::ParameterRegistry* registry() { return &registry_; }
  float lr() const { return optimizer_->lr(); }
  void set_lr(float lr) { optimizer_->set_lr(lr); }

 private:
  /// Shared forward that optionally retains caches for backprop.
  RsrForward ForwardImpl(
      const std::vector<traj::EdgeId>& edges, const std::vector<uint8_t>& nrf,
      std::unique_ptr<nn::RecurrentNet::SeqCache>* caches) const;

  /// Cross-entropy loss plus all parameter gradients via the sequence-level
  /// (GEMM-backed) backward passes. With `sink` null, gradients accumulate
  /// into the registry parameters (the single-thread training path, bit-
  /// identical to the historical per-step backward from zeroed gradients).
  /// With a sink, every gradient lands in the worker-local buffers instead,
  /// which makes concurrent calls safe: weights are only read, and all
  /// scratch is thread-local.
  double ComputeGradients(const std::vector<traj::EdgeId>& edges,
                          const std::vector<uint8_t>& nrf,
                          const std::vector<uint8_t>& labels,
                          const RsrForward& fwd,
                          const nn::RecurrentNet::SeqCache& caches,
                          nn::GradientSink* sink);

  RsrNetConfig config_;
  Rng rng_;
  nn::Embedding tcf_embed_;  // num_edges x embed_dim
  nn::Embedding nrf_embed_;  // 2 x nrf_dim
  std::unique_ptr<nn::RecurrentNet> rnn_;  // embed_dim -> hidden_dim
  nn::Linear head_;          // (hidden + nrf_dim) -> 2
  nn::ParameterRegistry registry_;
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
};

}  // namespace rl4oasd::core
