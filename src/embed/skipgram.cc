#include "embed/skipgram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rl4oasd::embed {

using roadnet::EdgeId;

SkipGramTrainer::SkipGramTrainer(const roadnet::RoadNetwork* net,
                                 SkipGramConfig config)
    : net_(net), config_(config), rng_(config.seed) {
  const size_t n = net->NumEdges();
  in_.Resize(n, config_.dim);
  out_.Resize(n, config_.dim);
  aux_w_.Resize(3, config_.dim);
  const float scale = 0.5f / static_cast<float>(config_.dim);
  for (size_t i = 0; i < in_.size(); ++i) {
    in_.data()[i] = static_cast<float>(rng_.Uniform(-scale, scale));
  }
  for (size_t i = 0; i < aux_w_.size(); ++i) {
    aux_w_.data()[i] = static_cast<float>(rng_.Uniform(-scale, scale));
  }
  unigram_.assign(n, 1.0);
}

std::vector<std::vector<EdgeId>> SkipGramTrainer::BuildCorpus(
    const traj::Dataset& dataset) {
  std::vector<std::vector<EdgeId>> corpus;
  corpus.reserve(dataset.size() +
                 net_->NumEdges() * config_.random_walks_per_edge);
  // Travel semantics: the trajectories themselves.
  for (const auto& lt : dataset.trajs()) {
    if (lt.traj.edges.size() >= 2) corpus.push_back(lt.traj.edges);
  }
  // Topology: random walks on the edge graph.
  for (int w = 0; w < config_.random_walks_per_edge; ++w) {
    for (EdgeId start = 0;
         start < static_cast<EdgeId>(net_->NumEdges()); ++start) {
      std::vector<EdgeId> walk{start};
      EdgeId cur = start;
      for (int s = 1; s < config_.walk_length; ++s) {
        const auto& next = net_->NextEdges(cur);
        if (next.empty()) break;
        cur = next[rng_.UniformInt(next.size())];
        walk.push_back(cur);
      }
      if (walk.size() >= 2) corpus.push_back(std::move(walk));
    }
  }
  // Unigram counts (smoothed to 0.75 power, word2vec-style).
  std::fill(unigram_.begin(), unigram_.end(), 0.0);
  for (const auto& seq : corpus) {
    for (EdgeId e : seq) unigram_[e] += 1.0;
  }
  for (double& u : unigram_) u = std::pow(u + 1.0, 0.75);
  return corpus;
}

double SkipGramTrainer::UpdatePair(EdgeId center, EdgeId context, double lr) {
  const size_t dim = config_.dim;
  float* v_in = in_.Row(center);
  std::vector<float> grad_in(dim, 0.0f);
  double loss = 0.0;

  auto step = [&](EdgeId target, float label) {
    float* v_out = out_.Row(target);
    const float dot = nn::Dot(v_in, v_out, dim);
    const float p = nn::Sigmoid(dot);
    loss += -(label > 0.5f ? std::log(std::max(p, 1e-7f))
                           : std::log(std::max(1.0f - p, 1e-7f)));
    const float g = (p - label) * static_cast<float>(lr);
    for (size_t d = 0; d < dim; ++d) {
      grad_in[d] += g * v_out[d];
      v_out[d] -= g * v_in[d];
    }
  };

  step(context, 1.0f);
  for (int k = 0; k < config_.negatives; ++k) {
    // Negative sampling is the inner loop of the whole embed phase;
    // neg_sampler_ replays rng_.Categorical(unigram_) draw-for-draw in
    // O(log n) instead of two O(n) passes.
    EdgeId neg = static_cast<EdgeId>(neg_sampler_->Sample(&rng_));
    if (neg == context || neg == center) continue;
    step(neg, 0.0f);
  }
  for (size_t d = 0; d < dim; ++d) v_in[d] -= grad_in[d];
  return loss;
}

void SkipGramTrainer::UpdateAux(EdgeId center, double lr) {
  const size_t dim = config_.dim;
  float* v_in = in_.Row(center);
  float logits[3];
  nn::MatVec(aux_w_, v_in, logits);
  nn::SoftmaxInPlace(logits, 3);
  const int target = static_cast<int>(net_->edge(center).road_class);
  const float scale = static_cast<float>(lr * config_.aux_weight);
  for (int c = 0; c < 3; ++c) {
    const float g = (logits[c] - (c == target ? 1.0f : 0.0f)) * scale;
    float* w = aux_w_.Row(c);
    for (size_t d = 0; d < dim; ++d) {
      const float gin = g * w[d];
      w[d] -= g * v_in[d];
      v_in[d] -= gin;
    }
  }
}

nn::Matrix SkipGramTrainer::Train(const traj::Dataset& dataset) {
  auto corpus = BuildCorpus(dataset);
  RL4_CHECK(!corpus.empty());
  // unigram_ is fixed for the rest of training; precompute the sampler.
  neg_sampler_ = std::make_unique<CategoricalSampler>(unigram_);
  size_t total_tokens = 0;
  for (const auto& seq : corpus) total_tokens += seq.size();
  const size_t total_steps =
      std::max<size_t>(1, total_tokens * config_.epochs);
  size_t step_count = 0;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&corpus);
    for (const auto& seq : corpus) {
      for (size_t i = 0; i < seq.size(); ++i) {
        const double progress =
            static_cast<double>(step_count++) / total_steps;
        const double lr =
            std::max(config_.min_lr, config_.lr * (1.0 - progress));
        const int win = 1 + static_cast<int>(rng_.UniformInt(
                                static_cast<uint64_t>(config_.window)));
        for (int d = -win; d <= win; ++d) {
          if (d == 0) continue;
          const int64_t j = static_cast<int64_t>(i) + d;
          if (j < 0 || j >= static_cast<int64_t>(seq.size())) continue;
          UpdatePair(seq[i], seq[j], lr);
        }
        UpdateAux(seq[i], lr);
      }
    }
  }
  return in_;
}

}  // namespace rl4oasd::embed
