// Road-segment representation learning: substitute for Toast (Chen et al.
// 2021). RL4OASD only needs traffic-context-aware vectors to warm-start
// RSRNet's embedding layer; we learn them with skip-gram + negative sampling
// over two corpora that carry the same signal Toast uses:
//   * observed trajectory transitions (travel semantics), and
//   * random walks on the road graph (network topology),
// plus an auxiliary linear head predicting each segment's road class and
// speed class (traffic context), trained jointly.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"
#include "roadnet/road_network.h"
#include "traj/dataset.h"

namespace rl4oasd::embed {

struct SkipGramConfig {
  size_t dim = 64;
  int window = 4;
  int negatives = 5;
  int epochs = 2;
  double lr = 0.025;
  double min_lr = 0.0005;
  int random_walks_per_edge = 2;
  int walk_length = 20;
  // Weight of the road-attribute auxiliary loss. Kept small: most edges in
  // a city share a road class, so a strong pull toward per-class centroids
  // collapses all vectors onto one direction.
  double aux_weight = 0.005;
  uint64_t seed = 31;
};

/// Trains road-segment embeddings; the result is a NumEdges x dim matrix
/// whose rows initialize RSRNet's TCF embedding layer.
class SkipGramTrainer {
 public:
  SkipGramTrainer(const roadnet::RoadNetwork* net, SkipGramConfig config);

  /// Trains on the dataset's trajectories plus random walks. Returns the
  /// input-vector table.
  nn::Matrix Train(const traj::Dataset& dataset);

 private:
  /// Builds the training corpus: trajectory edge sequences + random walks.
  std::vector<std::vector<roadnet::EdgeId>> BuildCorpus(
      const traj::Dataset& dataset);

  /// One (center, context) positive update with `negatives` sampled
  /// negatives. Returns the skip-gram loss contribution.
  double UpdatePair(roadnet::EdgeId center, roadnet::EdgeId context,
                    double lr);

  /// Auxiliary step: nudge the center vector toward predicting its road
  /// class (3-way softmax).
  void UpdateAux(roadnet::EdgeId center, double lr);

  const roadnet::RoadNetwork* net_;
  SkipGramConfig config_;
  Rng rng_;
  nn::Matrix in_;    // NumEdges x dim
  nn::Matrix out_;   // NumEdges x dim
  nn::Matrix aux_w_; // 3 x dim road-class head
  std::vector<double> unigram_;  // negative-sampling distribution (pow 0.75)
  /// O(log n) negative sampler over unigram_, rebuilt by Train after
  /// BuildCorpus; bit-identical to rng_.Categorical(unigram_).
  std::unique_ptr<CategoricalSampler> neg_sampler_;
};

}  // namespace rl4oasd::embed
