#include "eval/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rl4oasd::eval {

BootstrapEvaluator::BootstrapEvaluator(int resamples, double confidence,
                                       uint64_t seed)
    : resamples_(resamples), confidence_(confidence), seed_(seed) {
  RL4_CHECK_GT(resamples, 0);
  RL4_CHECK_GT(confidence, 0.0);
  RL4_CHECK_LT(confidence, 1.0);
}

void BootstrapEvaluator::Add(std::vector<uint8_t> ground_truth,
                             std::vector<uint8_t> predicted) {
  RL4_CHECK_EQ(ground_truth.size(), predicted.size());
  pairs_.push_back({std::move(ground_truth), std::move(predicted)});
}

Scores BootstrapEvaluator::ScoresOf(const std::vector<size_t>& indices) const {
  F1Evaluator ev;
  for (size_t i : indices) {
    ev.Add(pairs_[i].gt, pairs_[i].pred);
  }
  return ev.Compute();
}

Scores BootstrapEvaluator::PointEstimate() const {
  std::vector<size_t> all(pairs_.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return ScoresOf(all);
}

BootstrapCi BootstrapEvaluator::Ci(MetricFn metric) const {
  BootstrapCi ci;
  ci.point = metric(PointEstimate());
  if (pairs_.empty()) return ci;

  Rng rng(seed_);
  std::vector<double> values;
  values.reserve(resamples_);
  std::vector<size_t> sample(pairs_.size());
  for (int b = 0; b < resamples_; ++b) {
    for (auto& idx : sample) idx = rng.UniformInt(pairs_.size());
    values.push_back(metric(ScoresOf(sample)));
  }
  std::sort(values.begin(), values.end());
  const double tail = (1.0 - confidence_) / 2.0;
  const auto at = [&](double quantile) {
    const double pos = quantile * static_cast<double>(values.size() - 1);
    const size_t k = static_cast<size_t>(pos);
    const double frac = pos - static_cast<double>(k);
    if (k + 1 >= values.size()) return values.back();
    return values[k] * (1.0 - frac) + values[k + 1] * frac;
  };
  ci.lo = at(tail);
  ci.hi = at(1.0 - tail);
  return ci;
}

BootstrapCi BootstrapEvaluator::F1Ci() const {
  return Ci([](const Scores& s) { return s.f1; });
}

BootstrapCi BootstrapEvaluator::Tf1Ci() const {
  return Ci([](const Scores& s) { return s.tf1; });
}

}  // namespace rl4oasd::eval
