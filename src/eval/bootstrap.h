// Percentile-bootstrap confidence intervals for the subtrajectory metrics.
// The paper reports point estimates only; on synthetic workloads with a few
// hundred test anomalies, an F1 difference of a few points can be noise —
// EXPERIMENTS.md quotes these intervals alongside each reproduced table.
//
// Resampling is at trajectory granularity (the exchangeable unit of the
// evaluation), with the metric recomputed per resample.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "eval/metrics.h"

namespace rl4oasd::eval {

/// A two-sided percentile interval around a point estimate.
struct BootstrapCi {
  double point = 0.0;  // metric on the full sample
  double lo = 0.0;     // lower percentile bound
  double hi = 0.0;     // upper percentile bound

  double width() const { return hi - lo; }
};

/// Accumulates per-trajectory (ground truth, prediction) label pairs and
/// bootstraps any of the Scores metrics over them.
class BootstrapEvaluator {
 public:
  /// `resamples` bootstrap draws at `confidence` (e.g. 0.95), seeded for
  /// reproducibility.
  explicit BootstrapEvaluator(int resamples = 1000, double confidence = 0.95,
                              uint64_t seed = 7);

  /// Accumulates one trajectory (vectors must be the same length).
  void Add(std::vector<uint8_t> ground_truth, std::vector<uint8_t> predicted);

  size_t size() const { return pairs_.size(); }

  /// Metric selector applied to each resample's Scores.
  using MetricFn = double (*)(const Scores&);

  /// CI for an arbitrary metric of Scores.
  BootstrapCi Ci(MetricFn metric) const;

  /// Convenience selectors for the headline metrics.
  BootstrapCi F1Ci() const;
  BootstrapCi Tf1Ci() const;

  /// Scores over the full (un-resampled) sample.
  Scores PointEstimate() const;

 private:
  struct LabelPair {
    std::vector<uint8_t> gt;
    std::vector<uint8_t> pred;
  };

  Scores ScoresOf(const std::vector<size_t>& indices) const;

  int resamples_;
  double confidence_;
  uint64_t seed_;
  std::vector<LabelPair> pairs_;
};

}  // namespace rl4oasd::eval
