#include "eval/metrics.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace rl4oasd::eval {

const char* const kLengthGroupNames[kNumLengthGroups] = {"G1", "G2", "G3",
                                                         "G4"};

void F1Evaluator::Add(const std::vector<uint8_t>& ground_truth,
                      const std::vector<uint8_t>& predicted) {
  RL4_CHECK_EQ(ground_truth.size(), predicted.size());
  const auto gt_runs = traj::ExtractAnomalousRuns(ground_truth);
  const auto pred_runs = traj::ExtractAnomalousRuns(predicted);
  num_gt_runs_ += static_cast<int64_t>(gt_runs.size());
  num_pred_runs_ += static_cast<int64_t>(pred_runs.size());

  for (const auto& g : gt_runs) {
    // C_o,i: the union of predicted runs overlapping this ground-truth
    // anomaly. Jaccard is computed on road-segment positions (the 1s).
    int64_t inter = 0;
    int64_t pred_in_union = 0;
    for (const auto& p : pred_runs) {
      const int lo = std::max(g.begin, p.begin);
      const int hi = std::min(g.end, p.end);
      if (lo >= hi) continue;  // no overlap
      inter += hi - lo;
      pred_in_union += p.length();
    }
    if (inter == 0) continue;  // missed anomaly contributes 0
    const int64_t uni = g.length() + pred_in_union - inter;
    const double jaccard =
        static_cast<double>(inter) / static_cast<double>(uni);
    jaccard_sum_ += jaccard;
    if (jaccard >= phi_) ++jaccard_above_phi_;
  }
}

Scores F1Evaluator::Compute() const {
  Scores s;
  s.num_gt_anomalies = num_gt_runs_;
  s.num_detected = num_pred_runs_;
  auto safe_div = [](double a, double b) { return b > 0.0 ? a / b : 0.0; };
  s.precision = safe_div(jaccard_sum_, static_cast<double>(num_pred_runs_));
  s.recall = safe_div(jaccard_sum_, static_cast<double>(num_gt_runs_));
  s.f1 = safe_div(2.0 * s.precision * s.recall, s.precision + s.recall);
  s.tprecision = safe_div(static_cast<double>(jaccard_above_phi_),
                          static_cast<double>(num_pred_runs_));
  s.trecall = safe_div(static_cast<double>(jaccard_above_phi_),
                       static_cast<double>(num_gt_runs_));
  s.tf1 = safe_div(2.0 * s.tprecision * s.trecall,
                   s.tprecision + s.trecall);
  return s;
}

void F1Evaluator::Reset() {
  jaccard_sum_ = 0.0;
  jaccard_above_phi_ = 0;
  num_gt_runs_ = 0;
  num_pred_runs_ = 0;
}

int LengthGroupOf(size_t trajectory_length) {
  if (trajectory_length < 15) return 0;
  if (trajectory_length < 30) return 1;
  if (trajectory_length < 45) return 2;
  return 3;
}

std::string FormatGroupedRow(const std::string& method,
                             const GroupedScores& scores) {
  std::string row = StrFormat("%-22s", method.c_str());
  for (int g = 0; g < kNumLengthGroups; ++g) {
    row += StrFormat("  %.3f %.3f", scores.groups[g].f1,
                     scores.groups[g].tf1);
  }
  row += StrFormat("  | %.3f %.3f", scores.overall.f1, scores.overall.tf1);
  return row;
}

}  // namespace rl4oasd::eval
