// Evaluation metrics (paper Section V-A): NER-style precision/recall/F1 over
// anomalous subtrajectories, where per-anomaly overlap is measured with
// Jaccard similarity on road-segment positions, plus the TF1 variant that
// counts an anomaly as detected only when its Jaccard exceeds phi = 0.5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "traj/dataset.h"
#include "traj/types.h"

namespace rl4oasd::eval {

/// Scores of one evaluation run.
struct Scores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double tprecision = 0.0;
  double trecall = 0.0;
  double tf1 = 0.0;
  int64_t num_gt_anomalies = 0;
  int64_t num_detected = 0;
};

/// Streaming evaluator: feed (ground truth, predicted) label sequences one
/// trajectory at a time, then call Compute().
class F1Evaluator {
 public:
  explicit F1Evaluator(double phi = 0.5) : phi_(phi) {}

  /// Accumulates one trajectory. Label vectors must be the same length.
  void Add(const std::vector<uint8_t>& ground_truth,
           const std::vector<uint8_t>& predicted);

  Scores Compute() const;

  void Reset();

 private:
  double phi_;
  double jaccard_sum_ = 0.0;
  int64_t jaccard_above_phi_ = 0;
  int64_t num_gt_runs_ = 0;
  int64_t num_pred_runs_ = 0;
};

/// Length-group index of the paper's Table III: G1 (<15), G2 (15-30),
/// G3 (30-45), G4 (>=45). Returns 0..3.
int LengthGroupOf(size_t trajectory_length);
inline constexpr int kNumLengthGroups = 4;
extern const char* const kLengthGroupNames[kNumLengthGroups];

/// Per-group plus overall scores (the row structure of Table III).
struct GroupedScores {
  Scores groups[kNumLengthGroups];
  Scores overall;
};

/// Evaluates a detector callback over a dataset, grouped by length.
template <typename DetectFn>
GroupedScores EvaluateGrouped(const traj::Dataset& test, DetectFn&& detect,
                              double phi = 0.5) {
  F1Evaluator per_group[kNumLengthGroups] = {
      F1Evaluator(phi), F1Evaluator(phi), F1Evaluator(phi), F1Evaluator(phi)};
  F1Evaluator overall(phi);
  for (const auto& lt : test.trajs()) {
    const std::vector<uint8_t> pred = detect(lt.traj);
    const int g = LengthGroupOf(lt.traj.edges.size());
    per_group[g].Add(lt.labels, pred);
    overall.Add(lt.labels, pred);
  }
  GroupedScores out;
  for (int g = 0; g < kNumLengthGroups; ++g) {
    out.groups[g] = per_group[g].Compute();
  }
  out.overall = overall.Compute();
  return out;
}

/// Formats a GroupedScores row as the paper prints Table III cells
/// ("F1 TF1" per group, then overall).
std::string FormatGroupedRow(const std::string& method,
                             const GroupedScores& scores);

}  // namespace rl4oasd::eval
