#include "io/checkpoint.h"

#include <unordered_map>

namespace rl4oasd::io {

namespace {

constexpr char kMagic[4] = {'R', 'L', 'T', 'F'};

void WriteTensorPayload(const std::string& name, const nn::Matrix& m,
                        BinaryWriter* w) {
  w->WriteString(name);
  w->WriteU64(m.rows());
  w->WriteU64(m.cols());
  for (size_t i = 0; i < m.size(); ++i) w->WriteF32(m.data()[i]);
}

Status CheckMagicAndVersion(BinaryReader* r) {
  char magic[4];
  RL4_RETURN_NOT_OK(r->ReadBytes(magic, 4));
  if (std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    return Status::IOError("not a tensor checkpoint (bad magic)");
  }
  uint32_t version;
  RL4_RETURN_NOT_OK(r->ReadU32(&version));
  if (version != kTensorFormatVersion) {
    return Status::IOError("unsupported checkpoint version " +
                           std::to_string(version));
  }
  return Status::OK();
}

}  // namespace

void WriteRegistry(const nn::ParameterRegistry& registry, BinaryWriter* w) {
  w->WriteBytes(kMagic, 4);
  w->WriteU32(kTensorFormatVersion);
  w->WriteU32(static_cast<uint32_t>(registry.params().size()));
  for (const nn::Parameter* p : registry.params()) {
    WriteTensorPayload(p->name, p->value, w);
  }
}

Status ReadRegistry(BinaryReader* r, nn::ParameterRegistry* registry) {
  RL4_RETURN_NOT_OK(CheckMagicAndVersion(r));
  uint32_t count;
  RL4_RETURN_NOT_OK(r->ReadU32(&count));

  std::unordered_map<std::string, nn::Parameter*> by_name;
  for (nn::Parameter* p : registry->params()) {
    if (!by_name.emplace(p->name, p).second) {
      return Status::FailedPrecondition("duplicate parameter name: " +
                                        p->name);
    }
  }
  if (count != by_name.size()) {
    return Status::IOError("checkpoint holds " + std::to_string(count) +
                           " tensors, model expects " +
                           std::to_string(by_name.size()));
  }

  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    RL4_RETURN_NOT_OK(r->ReadString(&name));
    uint64_t rows, cols;
    RL4_RETURN_NOT_OK(r->ReadU64(&rows));
    RL4_RETURN_NOT_OK(r->ReadU64(&cols));
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::IOError("checkpoint tensor not in model: " + name);
    }
    nn::Matrix& dst = it->second->value;
    if (dst.rows() != rows || dst.cols() != cols) {
      return Status::IOError(
          "shape mismatch for " + name + ": checkpoint " +
          std::to_string(rows) + "x" + std::to_string(cols) + ", model " +
          std::to_string(dst.rows()) + "x" + std::to_string(dst.cols()));
    }
    for (size_t k = 0; k < dst.size(); ++k) {
      RL4_RETURN_NOT_OK(r->ReadF32(&dst.data()[k]));
    }
    by_name.erase(it);
  }
  // count == by_name initial size and each hit erased one entry, so an empty
  // map here means exact coverage.
  if (!by_name.empty()) {
    return Status::IOError("checkpoint repeats a tensor and misses: " +
                           by_name.begin()->first);
  }
  return Status::OK();
}

Status SaveRegistry(const nn::ParameterRegistry& registry,
                    const std::string& path) {
  BinaryWriter w;
  WriteRegistry(registry, &w);
  return w.WriteToFile(path);
}

Status LoadRegistry(const std::string& path, nn::ParameterRegistry* registry) {
  RL4_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::OpenFile(path));
  return ReadRegistry(&r, registry);
}

void WriteMatrix(const nn::Matrix& m, BinaryWriter* w) {
  w->WriteBytes(kMagic, 4);
  w->WriteU32(kTensorFormatVersion);
  w->WriteU32(1);
  WriteTensorPayload("matrix", m, w);
}

Status ReadMatrix(BinaryReader* r, nn::Matrix* m) {
  RL4_RETURN_NOT_OK(CheckMagicAndVersion(r));
  uint32_t count;
  RL4_RETURN_NOT_OK(r->ReadU32(&count));
  if (count != 1) {
    return Status::IOError("expected a single-tensor file, found " +
                           std::to_string(count));
  }
  std::string name;
  RL4_RETURN_NOT_OK(r->ReadString(&name));
  uint64_t rows, cols;
  RL4_RETURN_NOT_OK(r->ReadU64(&rows));
  RL4_RETURN_NOT_OK(r->ReadU64(&cols));
  m->Resize(rows, cols);
  for (size_t k = 0; k < m->size(); ++k) {
    RL4_RETURN_NOT_OK(r->ReadF32(&m->data()[k]));
  }
  return Status::OK();
}

Status SaveMatrix(const nn::Matrix& m, const std::string& path) {
  BinaryWriter w;
  WriteMatrix(m, &w);
  return w.WriteToFile(path);
}

Result<nn::Matrix> LoadMatrix(const std::string& path) {
  RL4_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::OpenFile(path));
  nn::Matrix m;
  RL4_RETURN_NOT_OK(ReadMatrix(&r, &m));
  return m;
}

}  // namespace rl4oasd::io
