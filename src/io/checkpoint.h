// Named-tensor checkpoint format for nn::ParameterRegistry and standalone
// matrices. Layout (inside a CRC32-protected BinaryWriter payload):
//
//   magic "RLTF" | u32 format version | u32 tensor count |
//   per tensor: name | u64 rows | u64 cols | rows*cols f32 values
//
// Loading into a registry is strict: every stored tensor must match a
// registered parameter by name and shape, and every registered parameter
// must be present. This catches architecture/config drift between the
// training and serving binaries instead of silently mis-assigning weights.
#pragma once

#include <string>

#include "common/binary.h"
#include "common/status.h"
#include "nn/param.h"
#include "nn/tensor.h"

namespace rl4oasd::io {

inline constexpr uint32_t kTensorFormatVersion = 1;

/// Appends all registry parameters (values only, not gradients) to `w`.
void WriteRegistry(const nn::ParameterRegistry& registry, BinaryWriter* w);

/// Reads tensors from `r` into the matching registered parameters.
Status ReadRegistry(BinaryReader* r, nn::ParameterRegistry* registry);

/// Saves a registry alone to `path` (one model per file).
Status SaveRegistry(const nn::ParameterRegistry& registry,
                    const std::string& path);
Status LoadRegistry(const std::string& path, nn::ParameterRegistry* registry);

/// Appends / reads a single unnamed matrix (used for pre-trained road
/// embedding tables, which exist outside any registry).
void WriteMatrix(const nn::Matrix& m, BinaryWriter* w);
Status ReadMatrix(BinaryReader* r, nn::Matrix* m);

Status SaveMatrix(const nn::Matrix& m, const std::string& path);
Result<nn::Matrix> LoadMatrix(const std::string& path);

}  // namespace rl4oasd::io
