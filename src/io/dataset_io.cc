#include "io/dataset_io.h"

#include <string_view>
#include <vector>

#include "common/binary.h"

namespace rl4oasd::io {

namespace {

constexpr char kDatasetMagic[4] = {'R', 'L', 'D', 'S'};
constexpr char kRoadNetMagic[4] = {'R', 'L', 'R', 'N'};

Status ExpectMagic(BinaryReader* r, const char* magic, const char* what) {
  char got[4];
  RL4_RETURN_NOT_OK(r->ReadBytes(got, 4));
  if (std::string_view(got, 4) != std::string_view(magic, 4)) {
    return Status::IOError(std::string("not a ") + what + " file (bad magic)");
  }
  return Status::OK();
}

Status ExpectVersion(BinaryReader* r, uint32_t expected, const char* what) {
  uint32_t version;
  RL4_RETURN_NOT_OK(r->ReadU32(&version));
  if (version != expected) {
    return Status::IOError(std::string("unsupported ") + what + " version " +
                           std::to_string(version));
  }
  return Status::OK();
}

}  // namespace

Status SaveDataset(const traj::Dataset& dataset, const std::string& path) {
  BinaryWriter w;
  w.WriteBytes(kDatasetMagic, 4);
  w.WriteU32(kDatasetFormatVersion);
  w.WriteU32(static_cast<uint32_t>(dataset.size()));
  for (const traj::LabeledTrajectory& lt : dataset.trajs()) {
    if (lt.labels.size() != lt.traj.edges.size()) {
      return Status::InvalidArgument(
          "trajectory " + std::to_string(lt.traj.id) +
          ": labels and edges differ in length");
    }
    w.WriteI64(lt.traj.id);
    w.WriteF64(lt.traj.start_time);
    w.WriteI32Vector(lt.traj.edges);
    // Labels are 0/1: bit-pack, LSB-first within each byte.
    const size_t n = lt.labels.size();
    for (size_t base = 0; base < n; base += 8) {
      uint8_t byte = 0;
      for (size_t k = 0; k < 8 && base + k < n; ++k) {
        if (lt.labels[base + k]) byte |= static_cast<uint8_t>(1u << k);
      }
      w.WriteU8(byte);
    }
  }
  return w.WriteToFile(path);
}

Result<traj::Dataset> LoadDataset(const std::string& path) {
  RL4_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::OpenFile(path));
  RL4_RETURN_NOT_OK(ExpectMagic(&r, kDatasetMagic, "dataset"));
  RL4_RETURN_NOT_OK(ExpectVersion(&r, kDatasetFormatVersion, "dataset"));
  uint32_t count;
  RL4_RETURN_NOT_OK(r.ReadU32(&count));
  std::vector<traj::LabeledTrajectory> trajs;
  trajs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    traj::LabeledTrajectory lt;
    RL4_RETURN_NOT_OK(r.ReadI64(&lt.traj.id));
    RL4_RETURN_NOT_OK(r.ReadF64(&lt.traj.start_time));
    RL4_RETURN_NOT_OK(r.ReadI32Vector(&lt.traj.edges));
    const size_t n = lt.traj.edges.size();
    lt.labels.resize(n);
    for (size_t base = 0; base < n; base += 8) {
      uint8_t byte;
      RL4_RETURN_NOT_OK(r.ReadU8(&byte));
      for (size_t k = 0; k < 8 && base + k < n; ++k) {
        lt.labels[base + k] = (byte >> k) & 1u;
      }
    }
    trajs.push_back(std::move(lt));
  }
  if (!r.AtEnd()) {
    return Status::IOError("trailing bytes after dataset payload");
  }
  return traj::Dataset(std::move(trajs));
}

Status SaveRoadNetwork(const roadnet::RoadNetwork& net,
                       const std::string& path) {
  BinaryWriter w;
  w.WriteBytes(kRoadNetMagic, 4);
  w.WriteU32(kRoadNetFormatVersion);
  w.WriteU32(static_cast<uint32_t>(net.NumVertices()));
  for (size_t v = 0; v < net.NumVertices(); ++v) {
    const roadnet::Vertex& vx = net.vertex(static_cast<roadnet::VertexId>(v));
    w.WriteF64(vx.pos.lat);
    w.WriteF64(vx.pos.lon);
  }
  w.WriteU32(static_cast<uint32_t>(net.NumEdges()));
  for (size_t e = 0; e < net.NumEdges(); ++e) {
    const roadnet::Edge& ed = net.edge(static_cast<roadnet::EdgeId>(e));
    w.WriteI32(ed.from);
    w.WriteI32(ed.to);
    w.WriteF64(ed.length_m);
    w.WriteF64(ed.speed_limit_mps);
    w.WriteU8(static_cast<uint8_t>(ed.road_class));
  }
  return w.WriteToFile(path);
}

Result<roadnet::RoadNetwork> LoadRoadNetwork(const std::string& path) {
  RL4_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::OpenFile(path));
  RL4_RETURN_NOT_OK(ExpectMagic(&r, kRoadNetMagic, "road network"));
  RL4_RETURN_NOT_OK(ExpectVersion(&r, kRoadNetFormatVersion, "road network"));
  roadnet::RoadNetwork net;
  uint32_t num_vertices;
  RL4_RETURN_NOT_OK(r.ReadU32(&num_vertices));
  for (uint32_t v = 0; v < num_vertices; ++v) {
    roadnet::LatLon pos;
    RL4_RETURN_NOT_OK(r.ReadF64(&pos.lat));
    RL4_RETURN_NOT_OK(r.ReadF64(&pos.lon));
    net.AddVertex(pos);
  }
  uint32_t num_edges;
  RL4_RETURN_NOT_OK(r.ReadU32(&num_edges));
  for (uint32_t e = 0; e < num_edges; ++e) {
    int32_t from, to;
    double length_m, speed;
    uint8_t road_class;
    RL4_RETURN_NOT_OK(r.ReadI32(&from));
    RL4_RETURN_NOT_OK(r.ReadI32(&to));
    RL4_RETURN_NOT_OK(r.ReadF64(&length_m));
    RL4_RETURN_NOT_OK(r.ReadF64(&speed));
    RL4_RETURN_NOT_OK(r.ReadU8(&road_class));
    if (from < 0 || to < 0 || from >= static_cast<int32_t>(num_vertices) ||
        to >= static_cast<int32_t>(num_vertices)) {
      return Status::IOError("edge endpoint out of range");
    }
    if (road_class > static_cast<uint8_t>(roadnet::RoadClass::kLocal)) {
      return Status::IOError("invalid road class value " +
                             std::to_string(road_class));
    }
    net.AddEdge(from, to, length_m, speed,
                static_cast<roadnet::RoadClass>(road_class));
  }
  if (!r.AtEnd()) {
    return Status::IOError("trailing bytes after road network payload");
  }
  net.Build();
  return net;
}

}  // namespace rl4oasd::io
