// Compact binary persistence for trajectory datasets and road networks.
// Both formats are CRC32-protected (see common/binary.h) and little-endian.
//
// Dataset layout:  magic "RLDS" | version | u32 count |
//   per trajectory: i64 id | f64 start_time | i32 edge vector |
//                   bit-packed labels (ceil(n/8) bytes).
// Road network layout: magic "RLRN" | version | vertices (id, lat, lon) |
//   edges (from, to, length_m, road_class, speed_limit).
//
// The binary dataset is ~6x smaller than the CSV form and loads without
// string parsing, which matters for the 10k-trajectory training sets the
// paper uses; CSV remains the interchange format.
#pragma once

#include <string>

#include "common/status.h"
#include "roadnet/road_network.h"
#include "traj/dataset.h"

namespace rl4oasd::io {

inline constexpr uint32_t kDatasetFormatVersion = 1;
inline constexpr uint32_t kRoadNetFormatVersion = 1;

Status SaveDataset(const traj::Dataset& dataset, const std::string& path);
Result<traj::Dataset> LoadDataset(const std::string& path);

Status SaveRoadNetwork(const roadnet::RoadNetwork& net,
                       const std::string& path);
Result<roadnet::RoadNetwork> LoadRoadNetwork(const std::string& path);

}  // namespace rl4oasd::io
