#include "io/fleet_snapshot.h"

#include <fstream>
#include <string_view>

#include "common/binary.h"

namespace rl4oasd::io {

Status ReadFleetSnapshotHeader(BinaryReader* r, FleetSnapshotHeader* header) {
  char magic[4];
  RL4_RETURN_NOT_OK(r->ReadBytes(magic, 4));
  if (std::string_view(magic, 4) !=
      std::string_view(kFleetSnapshotMagic, 4)) {
    return Status::IOError("not a fleet snapshot (bad magic)");
  }
  uint32_t version;
  RL4_RETURN_NOT_OK(r->ReadU32(&version));
  if (version != kFleetSnapshotVersion) {
    return Status::IOError(
        "unsupported fleet snapshot version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kFleetSnapshotVersion) + ")");
  }
  RL4_RETURN_NOT_OK(r->ReadU64(&header->model_fingerprint));
  RL4_RETURN_NOT_OK(r->ReadString(&header->user_meta));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->trips_started));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->trips_finished));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->points_processed));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->alerts_emitted));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->trips_evicted));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->guard_duplicates));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->guard_out_of_order));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->guard_clock_skew));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->guard_dropout_gaps));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->guard_teleports));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->guard_invalid_edges));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->points_repaired));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->points_rejected));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->points_quarantine_dropped));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->trips_quarantined));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->trips_recovered));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->quarantine_evictions));
  return Status::OK();
}

Status ReadFleetSnapshotTripCount(BinaryReader* r, uint64_t* num_trips) {
  RL4_RETURN_NOT_OK(r->ReadU64(num_trips));
  // Minimum record: i64 vehicle (8) + f64 last_update (8) + u32 session
  // blob length (4) + u32 guard blob length (4). Division avoids
  // overflowing the product for lying counts.
  if (*num_trips > r->remaining() / 24) {
    return Status::OutOfRange("trip count exceeds remaining payload");
  }
  return Status::OK();
}

Result<FleetSnapshotInfo> DescribeFleetSnapshot(const std::string& path) {
  RL4_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::OpenFile(path));
  FleetSnapshotHeader header;
  RL4_RETURN_NOT_OK(ReadFleetSnapshotHeader(&r, &header));
  FleetSnapshotInfo info;
  info.version = kFleetSnapshotVersion;
  info.model_fingerprint = header.model_fingerprint;
  info.user_meta = std::move(header.user_meta);
  info.trips_started = header.trips_started;
  info.trips_finished = header.trips_finished;
  info.points_processed = header.points_processed;
  info.alerts_emitted = header.alerts_emitted;
  info.trips_evicted = header.trips_evicted;
  info.guard_duplicates = header.guard_duplicates;
  info.guard_out_of_order = header.guard_out_of_order;
  info.guard_clock_skew = header.guard_clock_skew;
  info.guard_dropout_gaps = header.guard_dropout_gaps;
  info.guard_teleports = header.guard_teleports;
  info.guard_invalid_edges = header.guard_invalid_edges;
  info.points_repaired = header.points_repaired;
  info.points_rejected = header.points_rejected;
  info.points_quarantine_dropped = header.points_quarantine_dropped;
  info.trips_quarantined = header.trips_quarantined;
  info.trips_recovered = header.trips_recovered;
  info.quarantine_evictions = header.quarantine_evictions;

  uint64_t num_trips;
  RL4_RETURN_NOT_OK(ReadFleetSnapshotTripCount(&r, &num_trips));
  info.trips.reserve(num_trips);
  for (uint64_t i = 0; i < num_trips; ++i) {
    FleetSnapshotTrip trip;
    RL4_RETURN_NOT_OK(r.ReadI64(&trip.vehicle_id));
    RL4_RETURN_NOT_OK(r.ReadF64(&trip.last_update));
    std::string blob;
    RL4_RETURN_NOT_OK(r.ReadString(&blob));
    // Skim the session record's fixed prefix (see Session::ExportState):
    // SD pair, start time, finished flag, label count.
    BinaryReader session(std::move(blob));
    int32_t sd_source, sd_dest;
    uint8_t finished;
    uint32_t num_labels;
    RL4_RETURN_NOT_OK(session.ReadI32(&sd_source));
    RL4_RETURN_NOT_OK(session.ReadI32(&sd_dest));
    RL4_RETURN_NOT_OK(session.ReadF64(&trip.start_time));
    RL4_RETURN_NOT_OK(session.ReadU8(&finished));
    RL4_RETURN_NOT_OK(session.ReadU32(&num_labels));
    if (session.remaining() < num_labels) {
      return Status::OutOfRange("label count exceeds trip record");
    }
    trip.points_fed = num_labels;
    info.total_points += num_labels;
    // Skim the guard record's trailing quarantine flag (the layout is owned
    // by serve::IngestGuard::State::ExportState: two f64s, two i32s, four
    // u32s, then has_arrival and quarantined as u8s — 42 bytes).
    std::string guard_blob;
    RL4_RETURN_NOT_OK(r.ReadString(&guard_blob));
    BinaryReader guard(std::move(guard_blob));
    double f64_field;
    int32_t i32_field;
    uint32_t u32_field;
    for (int j = 0; j < 2; ++j) RL4_RETURN_NOT_OK(guard.ReadF64(&f64_field));
    for (int j = 0; j < 2; ++j) RL4_RETURN_NOT_OK(guard.ReadI32(&i32_field));
    for (int j = 0; j < 4; ++j) RL4_RETURN_NOT_OK(guard.ReadU32(&u32_field));
    uint8_t has_arrival;
    uint8_t quarantined;
    RL4_RETURN_NOT_OK(guard.ReadU8(&has_arrival));
    RL4_RETURN_NOT_OK(guard.ReadU8(&quarantined));
    if (!guard.AtEnd()) {
      return Status::IOError("trailing bytes in trip guard record");
    }
    if (quarantined > 1) {
      return Status::InvalidArgument("guard quarantine flag out of range");
    }
    trip.quarantined = quarantined != 0;
    if (trip.quarantined) ++info.quarantined_trips;
    info.trips.push_back(trip);
  }
  if (!r.AtEnd()) {
    return Status::IOError("trailing bytes after fleet snapshot payload");
  }
  return info;
}

bool LooksLikeFleetSnapshot(const std::string& path) {
  // Dispatch needs only the magic: peek 4 bytes instead of slurping and
  // CRC-verifying the whole file (the describe path that follows does the
  // full verified read anyway).
  std::ifstream f(path, std::ios::binary);
  char magic[4];
  if (!f.read(magic, 4)) return false;
  return std::string_view(magic, 4) ==
         std::string_view(kFleetSnapshotMagic, 4);
}

}  // namespace rl4oasd::io
