#include "io/fleet_snapshot.h"

#include <fstream>
#include <string_view>

#include "common/binary.h"

namespace rl4oasd::io {

Status ReadFleetSnapshotHeader(BinaryReader* r, FleetSnapshotHeader* header) {
  char magic[4];
  RL4_RETURN_NOT_OK(r->ReadBytes(magic, 4));
  if (std::string_view(magic, 4) !=
      std::string_view(kFleetSnapshotMagic, 4)) {
    return Status::IOError("not a fleet snapshot (bad magic)");
  }
  uint32_t version;
  RL4_RETURN_NOT_OK(r->ReadU32(&version));
  if (version != kFleetSnapshotVersion) {
    return Status::IOError(
        "unsupported fleet snapshot version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kFleetSnapshotVersion) + ")");
  }
  RL4_RETURN_NOT_OK(r->ReadU64(&header->model_fingerprint));
  RL4_RETURN_NOT_OK(r->ReadString(&header->user_meta));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->trips_started));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->trips_finished));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->points_processed));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->alerts_emitted));
  RL4_RETURN_NOT_OK(r->ReadI64(&header->trips_evicted));
  return Status::OK();
}

Status ReadFleetSnapshotTripCount(BinaryReader* r, uint64_t* num_trips) {
  RL4_RETURN_NOT_OK(r->ReadU64(num_trips));
  // Minimum record: i64 vehicle (8) + f64 last_update (8) + u32 blob
  // length (4). Division avoids overflowing the product for lying counts.
  if (*num_trips > r->remaining() / 20) {
    return Status::OutOfRange("trip count exceeds remaining payload");
  }
  return Status::OK();
}

Result<FleetSnapshotInfo> DescribeFleetSnapshot(const std::string& path) {
  RL4_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::OpenFile(path));
  FleetSnapshotHeader header;
  RL4_RETURN_NOT_OK(ReadFleetSnapshotHeader(&r, &header));
  FleetSnapshotInfo info;
  info.version = kFleetSnapshotVersion;
  info.model_fingerprint = header.model_fingerprint;
  info.user_meta = std::move(header.user_meta);
  info.trips_started = header.trips_started;
  info.trips_finished = header.trips_finished;
  info.points_processed = header.points_processed;
  info.alerts_emitted = header.alerts_emitted;
  info.trips_evicted = header.trips_evicted;

  uint64_t num_trips;
  RL4_RETURN_NOT_OK(ReadFleetSnapshotTripCount(&r, &num_trips));
  info.trips.reserve(num_trips);
  for (uint64_t i = 0; i < num_trips; ++i) {
    FleetSnapshotTrip trip;
    RL4_RETURN_NOT_OK(r.ReadI64(&trip.vehicle_id));
    RL4_RETURN_NOT_OK(r.ReadF64(&trip.last_update));
    std::string blob;
    RL4_RETURN_NOT_OK(r.ReadString(&blob));
    // Skim the session record's fixed prefix (see Session::ExportState):
    // SD pair, start time, finished flag, label count.
    BinaryReader session(std::move(blob));
    int32_t sd_source, sd_dest;
    uint8_t finished;
    uint32_t num_labels;
    RL4_RETURN_NOT_OK(session.ReadI32(&sd_source));
    RL4_RETURN_NOT_OK(session.ReadI32(&sd_dest));
    RL4_RETURN_NOT_OK(session.ReadF64(&trip.start_time));
    RL4_RETURN_NOT_OK(session.ReadU8(&finished));
    RL4_RETURN_NOT_OK(session.ReadU32(&num_labels));
    if (session.remaining() < num_labels) {
      return Status::OutOfRange("label count exceeds trip record");
    }
    trip.points_fed = num_labels;
    info.total_points += num_labels;
    info.trips.push_back(trip);
  }
  if (!r.AtEnd()) {
    return Status::IOError("trailing bytes after fleet snapshot payload");
  }
  return info;
}

bool LooksLikeFleetSnapshot(const std::string& path) {
  // Dispatch needs only the magic: peek 4 bytes instead of slurping and
  // CRC-verifying the whole file (the describe path that follows does the
  // full verified read anyway).
  std::ifstream f(path, std::ios::binary);
  char magic[4];
  if (!f.read(magic, 4)) return false;
  return std::string_view(magic, 4) ==
         std::string_view(kFleetSnapshotMagic, 4);
}

}  // namespace rl4oasd::io
