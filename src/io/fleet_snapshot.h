// The durable fleet snapshot format: every piece of live serving state of a
// serve::FleetMonitor — per-trip detection sessions (LSTM hidden states,
// label/edge history, Delayed-Labeling windows, undrained runs, RNG stream
// positions), service counters, and an application metadata string — in one
// CRC32-protected file. Layout (inside a BinaryWriter payload):
//
//   magic "RLFS" | u32 format version | u64 model-bundle fingerprint |
//   user metadata string | 17 x i64 service counters |
//   u64 trip count | per trip: i64 vehicle_id | f64 last_update |
//                              length-prefixed session record |
//                              length-prefixed ingest-guard record
//
// Version history: v1 carried 5 service counters and no guard record;
// v2 (current) appends the 12 ingest-guard counters after the original 5
// and a per-trip serve::IngestGuard::State blob after the session record,
// so quarantine state round-trips through restore. Older versions are
// rejected with a descriptive error (snapshots are ephemeral hand-off
// state, not archives — see serve::FleetMonitor::Restore).
//
// The session record is written by core::OnlineDetector::Session::ExportState
// and is opaque at this level; length-prefixing lets tooling (oasd_inspect)
// describe a snapshot without reconstructing the fleet. The fingerprint is
// io::ModelFingerprint of the serving model at snapshot time: restore
// refuses a snapshot stamped by a different model, because replaying hidden
// states against other weights would silently diverge instead of honoring
// the restore-equivalence contract (see serve::FleetMonitor::Snapshot).
//
// Writing and restoring live in serve::FleetMonitor (Snapshot/Restore);
// this header owns the format constants and the model-free inspector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/binary.h"
#include "common/status.h"

namespace rl4oasd::io {

inline constexpr char kFleetSnapshotMagic[4] = {'R', 'L', 'F', 'S'};
inline constexpr uint32_t kFleetSnapshotVersion = 2;

/// Per-trip header readable without the model or road network.
struct FleetSnapshotTrip {
  int64_t vehicle_id = 0;
  double last_update = 0.0;
  double start_time = 0.0;
  uint64_t points_fed = 0;  // labels recorded when the snapshot was taken
  /// The trip was quarantined by the ingest guard when the snapshot was
  /// taken (skimmed from the guard record's trailing flag).
  bool quarantined = false;
};

/// Snapshot metadata readable without reconstructing the fleet — backs the
/// oasd_inspect tool and CI triage.
struct FleetSnapshotInfo {
  uint32_t version = 0;
  uint64_t model_fingerprint = 0;
  std::string user_meta;
  // Service counters at snapshot time (mirrors serve::FleetStats).
  int64_t trips_started = 0;
  int64_t trips_finished = 0;
  int64_t points_processed = 0;
  int64_t alerts_emitted = 0;
  int64_t trips_evicted = 0;
  // Ingest-guard counters (format v2; mirrors serve::FleetStats).
  int64_t guard_duplicates = 0;
  int64_t guard_out_of_order = 0;
  int64_t guard_clock_skew = 0;
  int64_t guard_dropout_gaps = 0;
  int64_t guard_teleports = 0;
  int64_t guard_invalid_edges = 0;
  int64_t points_repaired = 0;
  int64_t points_rejected = 0;
  int64_t points_quarantine_dropped = 0;
  int64_t trips_quarantined = 0;
  int64_t trips_recovered = 0;
  int64_t quarantine_evictions = 0;
  std::vector<FleetSnapshotTrip> trips;
  uint64_t total_points = 0;       // sum of points_fed over all live trips
  uint64_t quarantined_trips = 0;  // live trips snapshotted mid-quarantine
};

/// The fixed header that precedes the trip array. One parser
/// (ReadFleetSnapshotHeader) serves both serve::FleetMonitor::Restore and
/// DescribeFleetSnapshot, so the layout lives in exactly one place.
struct FleetSnapshotHeader {
  uint64_t model_fingerprint = 0;
  std::string user_meta;
  int64_t trips_started = 0;
  int64_t trips_finished = 0;
  int64_t points_processed = 0;
  int64_t alerts_emitted = 0;
  int64_t trips_evicted = 0;
  // Ingest-guard counters (format v2; mirrors serve::FleetStats).
  int64_t guard_duplicates = 0;
  int64_t guard_out_of_order = 0;
  int64_t guard_clock_skew = 0;
  int64_t guard_dropout_gaps = 0;
  int64_t guard_teleports = 0;
  int64_t guard_invalid_edges = 0;
  int64_t points_repaired = 0;
  int64_t points_rejected = 0;
  int64_t points_quarantine_dropped = 0;
  int64_t trips_quarantined = 0;
  int64_t trips_recovered = 0;
  int64_t quarantine_evictions = 0;
};

/// Reads magic, version, fingerprint, user metadata, and the service
/// counters from `r`, leaving it positioned at the trip count. Bad magic
/// and unknown versions return descriptive errors.
Status ReadFleetSnapshotHeader(BinaryReader* r, FleetSnapshotHeader* header);

/// Reads the trip count that follows the header, rejecting counts that
/// cannot fit in the remaining payload (each record is at least a vehicle
/// id, a timestamp, and an empty length-prefixed session blob) before any
/// caller reserves memory for them.
Status ReadFleetSnapshotTripCount(BinaryReader* r, uint64_t* num_trips);

/// Parses a snapshot's structure (CRC-verified) without a model: the trip
/// session records are skimmed for their headers, not reconstructed.
Result<FleetSnapshotInfo> DescribeFleetSnapshot(const std::string& path);

/// True when `path` starts with the fleet-snapshot magic — a cheap 4-byte
/// peek (no CRC verification) that lets tooling dispatch between bundle
/// kinds; the describe/restore path that follows does the full verified
/// read.
bool LooksLikeFleetSnapshot(const std::string& path);

}  // namespace rl4oasd::io
