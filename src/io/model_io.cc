#include "io/model_io.h"

#include <functional>
#include <map>
#include <vector>

#include "io/checkpoint.h"

namespace rl4oasd::io {

namespace {

constexpr char kMagic[4] = {'R', 'L', 'M', 'B'};

/// Flat key->double view of every tunable in Rl4OasdConfig. Pointers into
/// the config let one table serve both directions.
class ConfigKvView {
 public:
  explicit ConfigKvView(core::Rl4OasdConfig* c) {
    // Mirror integral/bool fields through doubles (exact for the ranges
    // involved).
    Bind("preprocess.alpha", &c->preprocess.alpha);
    Bind("preprocess.delta", &c->preprocess.delta);
    BindInt("preprocess.time_slot_hours", &c->preprocess.time_slot_hours);
    BindI64("preprocess.min_slot_support", &c->preprocess.min_slot_support);

    BindSize("rsr.num_edges", &c->rsr.num_edges);
    BindSize("rsr.embed_dim", &c->rsr.embed_dim);
    BindSize("rsr.nrf_dim", &c->rsr.nrf_dim);
    BindSize("rsr.hidden_dim", &c->rsr.hidden_dim);
    BindFloat("rsr.lr", &c->rsr.lr);
    BindFloat("rsr.grad_clip", &c->rsr.grad_clip);
    BindFloat("rsr.positive_weight", &c->rsr.positive_weight);
    BindFloat("rsr.label_smoothing", &c->rsr.label_smoothing);
    BindU64("rsr.seed", &c->rsr.seed);
    BindRnnKind("rsr.rnn_kind", &c->rsr.rnn_kind);
    BindSize("rsr.num_layers", &c->rsr.num_layers);

    BindSize("asd.label_dim", &c->asd.label_dim);
    BindFloat("asd.lr", &c->asd.lr);
    BindFloat("asd.grad_clip", &c->asd.grad_clip);
    BindU64("asd.seed", &c->asd.seed);

    BindBool("detector.use_rnel", &c->detector.use_rnel);
    BindBool("detector.use_dl", &c->detector.use_dl);
    BindInt("detector.delay_d", &c->detector.delay_d);
    BindBool("detector.use_boundary_trim", &c->detector.use_boundary_trim);
    BindBool("detector.stochastic", &c->detector.stochastic);
    BindU64("detector.seed", &c->detector.seed);

    BindSize("embedding.dim", &c->embedding.dim);
    BindInt("embedding.window", &c->embedding.window);
    BindInt("embedding.negatives", &c->embedding.negatives);
    BindInt("embedding.epochs", &c->embedding.epochs);
    Bind("embedding.lr", &c->embedding.lr);
    Bind("embedding.min_lr", &c->embedding.min_lr);
    BindInt("embedding.random_walks_per_edge",
            &c->embedding.random_walks_per_edge);
    BindInt("embedding.walk_length", &c->embedding.walk_length);
    Bind("embedding.aux_weight", &c->embedding.aux_weight);
    BindU64("embedding.seed", &c->embedding.seed);

    BindInt("train.pretrain_samples", &c->pretrain_samples);
    BindInt("train.pretrain_epochs", &c->pretrain_epochs);
    BindInt("train.joint_samples", &c->joint_samples);
    BindInt("train.epochs_per_traj", &c->epochs_per_traj);
    BindBool("train.use_reward_baseline", &c->use_reward_baseline);
    Bind("train.noisy_anchor_prob", &c->noisy_anchor_prob);
    BindBool("train.train_rsr_in_joint", &c->train_rsr_in_joint);
    Bind("train.joint_explore_eps", &c->joint_explore_eps);

    BindBool("ablation.use_noisy_labels", &c->use_noisy_labels);
    BindBool("ablation.use_pretrained_embeddings",
             &c->use_pretrained_embeddings);
    BindBool("ablation.use_local_reward", &c->use_local_reward);
    BindBool("ablation.use_global_reward", &c->use_global_reward);
    BindBool("ablation.use_asdnet", &c->use_asdnet);
    BindBool("ablation.transition_frequency_only",
             &c->transition_frequency_only);
    BindU64("seed", &c->seed);
  }

  void Write(BinaryWriter* w) const {
    w->WriteU32(static_cast<uint32_t>(getters_.size()));
    for (const auto& [key, get] : getters_) {
      w->WriteString(key);
      w->WriteF64(get());
    }
  }

  Status Read(BinaryReader* r) {
    uint32_t count;
    RL4_RETURN_NOT_OK(r->ReadU32(&count));
    for (uint32_t i = 0; i < count; ++i) {
      std::string key;
      double value;
      RL4_RETURN_NOT_OK(r->ReadString(&key));
      RL4_RETURN_NOT_OK(r->ReadF64(&value));
      // Unknown keys are skipped: bundles written by newer builds still load.
      auto it = setters_.find(key);
      if (it != setters_.end()) it->second(value);
    }
    return Status::OK();
  }

 private:
  void Bind(const char* key, double* p) {
    getters_.emplace(key, [p] { return *p; });
    setters_.emplace(key, [p](double v) { *p = v; });
  }
  void BindFloat(const char* key, float* p) {
    getters_.emplace(key, [p] { return static_cast<double>(*p); });
    setters_.emplace(key, [p](double v) { *p = static_cast<float>(v); });
  }
  void BindInt(const char* key, int* p) {
    getters_.emplace(key, [p] { return static_cast<double>(*p); });
    setters_.emplace(key, [p](double v) { *p = static_cast<int>(v); });
  }
  void BindI64(const char* key, int64_t* p) {
    getters_.emplace(key, [p] { return static_cast<double>(*p); });
    setters_.emplace(key, [p](double v) { *p = static_cast<int64_t>(v); });
  }
  void BindSize(const char* key, size_t* p) {
    getters_.emplace(key, [p] { return static_cast<double>(*p); });
    setters_.emplace(key, [p](double v) { *p = static_cast<size_t>(v); });
  }
  void BindU64(const char* key, uint64_t* p) {
    getters_.emplace(key, [p] { return static_cast<double>(*p); });
    setters_.emplace(key, [p](double v) { *p = static_cast<uint64_t>(v); });
  }
  void BindRnnKind(const char* key, nn::RnnKind* p) {
    getters_.emplace(key, [p] { return static_cast<double>(*p); });
    setters_.emplace(key, [p](double v) {
      *p = v != 0.0 ? nn::RnnKind::kGru : nn::RnnKind::kLstm;
    });
  }
  void BindBool(const char* key, bool* p) {
    getters_.emplace(key, [p] { return *p ? 1.0 : 0.0; });
    setters_.emplace(key, [p](double v) { *p = v != 0.0; });
  }

  std::map<std::string, std::function<double()>> getters_;
  std::map<std::string, std::function<void(double)>> setters_;
};

void WriteSnapshots(const std::vector<core::GroupSnapshot>& snaps,
                    BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(snaps.size()));
  for (const core::GroupSnapshot& s : snaps) {
    w->WriteI32(s.sd.source);
    w->WriteI32(s.sd.dest);
    w->WriteI32(s.slot);
    w->WriteI64(s.num_trajs);
    w->WriteU32(static_cast<uint32_t>(s.transitions.size()));
    for (const auto& [key, count] : s.transitions) {
      w->WriteI64(key);
      w->WriteI64(count);
    }
    w->WriteU32(static_cast<uint32_t>(s.routes.size()));
    for (const auto& [route, count] : s.routes) {
      w->WriteString(route);
      w->WriteI64(count);
    }
  }
}

Status ReadSnapshots(BinaryReader* r,
                     std::vector<core::GroupSnapshot>* snaps) {
  uint32_t count;
  RL4_RETURN_NOT_OK(r->ReadU32(&count));
  snaps->clear();
  snaps->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    core::GroupSnapshot s;
    RL4_RETURN_NOT_OK(r->ReadI32(&s.sd.source));
    RL4_RETURN_NOT_OK(r->ReadI32(&s.sd.dest));
    RL4_RETURN_NOT_OK(r->ReadI32(&s.slot));
    RL4_RETURN_NOT_OK(r->ReadI64(&s.num_trajs));
    uint32_t num_transitions;
    RL4_RETURN_NOT_OK(r->ReadU32(&num_transitions));
    s.transitions.resize(num_transitions);
    for (auto& [key, c] : s.transitions) {
      RL4_RETURN_NOT_OK(r->ReadI64(&key));
      RL4_RETURN_NOT_OK(r->ReadI64(&c));
    }
    uint32_t num_routes;
    RL4_RETURN_NOT_OK(r->ReadU32(&num_routes));
    s.routes.resize(num_routes);
    for (auto& [route, c] : s.routes) {
      RL4_RETURN_NOT_OK(r->ReadString(&route));
      RL4_RETURN_NOT_OK(r->ReadI64(&c));
    }
    snaps->push_back(std::move(s));
  }
  return Status::OK();
}

}  // namespace

void WriteConfigKv(const core::Rl4OasdConfig& config, BinaryWriter* w) {
  core::Rl4OasdConfig copy = config;
  ConfigKvView(&copy).Write(w);
}

Status ReadConfigKv(BinaryReader* r, core::Rl4OasdConfig* config) {
  return ConfigKvView(config).Read(r);
}

namespace {

void WriteModelPayload(const core::Rl4Oasd& model, BinaryWriter* w) {
  w->WriteBytes(kMagic, 4);
  w->WriteU32(kModelBundleVersion);
  WriteConfigKv(model.config(), w);
  WriteSnapshots(model.preprocessor().ExportState(), w);
  // Registries are const-correct at the layer level but parameter access for
  // serialization is value-only.
  WriteRegistry(*const_cast<core::Rl4Oasd&>(model).mutable_rsrnet()->registry(),
                w);
  WriteRegistry(*const_cast<core::Rl4Oasd&>(model).mutable_asdnet()->registry(),
                w);
}

}  // namespace

void WriteModelBundle(const core::Rl4Oasd& model, BinaryWriter* w) {
  WriteModelPayload(model, w);
}

Status SaveModel(const core::Rl4Oasd& model, const std::string& path) {
  BinaryWriter w;
  WriteModelPayload(model, &w);
  return w.WriteToFile(path);
}

uint64_t ModelFingerprint(const core::Rl4Oasd& model) {
  BinaryWriter w;
  WriteModelPayload(model, &w);
  const std::string& buf = w.buffer();
  // FNV-1a 64 over the exact SaveModel bytes. A genuine 64-bit hash, not
  // two seeded CRC32 passes: CRCs over the same polynomial are affine in
  // the seed, so a seed pair collides whenever one half does and buys no
  // extra resistance. Accidental collisions between fine-tuned bundles are
  // what the stamp guards against (not adversaries), and 2^-64 per pair
  // keeps them out of reach across any realistic model registry.
  uint64_t h = 14695981039346656037ULL;
  for (const char c : buf) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

Result<std::unique_ptr<core::Rl4Oasd>> ReadModelBundle(
    const roadnet::RoadNetwork* net, BinaryReader* r) {
  char magic[4];
  RL4_RETURN_NOT_OK(r->ReadBytes(magic, 4));
  if (std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    return Status::IOError("not a model bundle (bad magic)");
  }
  uint32_t version;
  RL4_RETURN_NOT_OK(r->ReadU32(&version));
  if (version != kModelBundleVersion) {
    return Status::IOError("unsupported model bundle version " +
                           std::to_string(version));
  }
  core::Rl4OasdConfig config;
  RL4_RETURN_NOT_OK(ReadConfigKv(r, &config));
  if (config.rsr.num_edges != 0 && config.rsr.num_edges != net->NumEdges()) {
    return Status::FailedPrecondition(
        "bundle was trained on a network with " +
        std::to_string(config.rsr.num_edges) + " edges; this network has " +
        std::to_string(net->NumEdges()));
  }
  auto model = std::make_unique<core::Rl4Oasd>(net, config);

  std::vector<core::GroupSnapshot> snaps;
  RL4_RETURN_NOT_OK(ReadSnapshots(r, &snaps));
  model->mutable_preprocessor()->ImportState(snaps);

  RL4_RETURN_NOT_OK(ReadRegistry(r, model->mutable_rsrnet()->registry()));
  RL4_RETURN_NOT_OK(ReadRegistry(r, model->mutable_asdnet()->registry()));
  return model;
}

Result<std::unique_ptr<core::Rl4Oasd>> LoadModel(
    const roadnet::RoadNetwork* net, const std::string& path) {
  RL4_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::OpenFile(path));
  auto model = ReadModelBundle(net, &r);
  if (model.ok() && !r.AtEnd()) {
    return Status::IOError("trailing bytes after model bundle payload: " +
                           path);
  }
  return model;
}

Result<std::unique_ptr<core::Rl4Oasd>> CloneModel(
    const roadnet::RoadNetwork* net, const core::Rl4Oasd& model) {
  BinaryWriter w;
  WriteModelPayload(model, &w);
  BinaryReader r(w.buffer());
  auto clone = ReadModelBundle(net, &r);
  // The writer and reader are this function's own; a mismatch here is a
  // serialization bug, not hostile input, but fail cleanly all the same.
  if (clone.ok() && !r.AtEnd()) {
    return Status::Internal("trailing bytes after cloned model payload");
  }
  return clone;
}


namespace {

/// Reads one tensor section (as written by WriteRegistry), keeping headers
/// and skipping the float payloads.
Status SkimTensors(BinaryReader* r, std::vector<TensorInfo>* out,
                   size_t* total_weights) {
  char magic[4];
  RL4_RETURN_NOT_OK(r->ReadBytes(magic, 4));
  if (std::string_view(magic, 4) != "RLTF") {
    return Status::IOError("expected a tensor section");
  }
  uint32_t version, count;
  RL4_RETURN_NOT_OK(r->ReadU32(&version));
  RL4_RETURN_NOT_OK(r->ReadU32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    TensorInfo info;
    RL4_RETURN_NOT_OK(r->ReadString(&info.name));
    RL4_RETURN_NOT_OK(r->ReadU64(&info.rows));
    RL4_RETURN_NOT_OK(r->ReadU64(&info.cols));
    const uint64_t n = info.rows * info.cols;
    if (r->remaining() < n * 4) {
      return Status::OutOfRange("tensor payload exceeds file");
    }
    for (uint64_t k = 0; k < n; ++k) {
      float unused;
      RL4_RETURN_NOT_OK(r->ReadF32(&unused));
    }
    *total_weights += n;
    out->push_back(std::move(info));
  }
  return Status::OK();
}

}  // namespace

Result<ModelDescription> DescribeModel(const std::string& path) {
  RL4_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::OpenFile(path));
  char magic[4];
  RL4_RETURN_NOT_OK(r.ReadBytes(magic, 4));
  if (std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    return Status::IOError("not a model bundle (bad magic): " + path);
  }
  ModelDescription desc;
  RL4_RETURN_NOT_OK(r.ReadU32(&desc.version));

  uint32_t kv_count;
  RL4_RETURN_NOT_OK(r.ReadU32(&kv_count));
  for (uint32_t i = 0; i < kv_count; ++i) {
    std::string key;
    double value;
    RL4_RETURN_NOT_OK(r.ReadString(&key));
    RL4_RETURN_NOT_OK(r.ReadF64(&value));
    desc.config.emplace_back(std::move(key), value);
  }

  std::vector<core::GroupSnapshot> snaps;
  RL4_RETURN_NOT_OK(ReadSnapshots(&r, &snaps));
  for (const auto& s : snaps) {
    if (s.slot >= 0) {
      desc.num_groups += 1;
    } else {
      // The all-slots aggregates count each trajectory exactly once.
      desc.num_trajs += s.num_trajs;
    }
  }

  RL4_RETURN_NOT_OK(SkimTensors(&r, &desc.rsr_tensors, &desc.total_weights));
  RL4_RETURN_NOT_OK(SkimTensors(&r, &desc.asd_tensors, &desc.total_weights));
  if (!r.AtEnd()) {
    return Status::IOError("trailing bytes after model bundle payload");
  }
  return desc;
}

}  // namespace rl4oasd::io
