// Whole-model persistence for a trained Rl4Oasd detector. A model bundle is
// one CRC32-protected file holding
//   magic "RLMB" | format version | config (key-value doubles) |
//   preprocessor statistics | RSRNet tensors | ASDNet tensors.
//
// The config travels as an extensible string->double map, so adding a field
// never invalidates existing bundles: absent keys keep the compiled-in
// default. Loading reconstructs a ready-to-serve detector without access to
// the training data.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/binary.h"
#include "common/status.h"
#include "core/rl4oasd.h"
#include "roadnet/road_network.h"

namespace rl4oasd::io {

inline constexpr uint32_t kModelBundleVersion = 1;

/// Serializes a trained model (config, historical statistics, both
/// networks) to `path`.
Status SaveModel(const core::Rl4Oasd& model, const std::string& path);

/// Restores a model bundle against the road network it was trained on. The
/// network must have the same number of edges as at save time.
Result<std::unique_ptr<core::Rl4Oasd>> LoadModel(
    const roadnet::RoadNetwork* net, const std::string& path);

/// Appends the model-bundle payload — the exact bytes SaveModel writes,
/// minus the CRC32 file footer — to `w`.
void WriteModelBundle(const core::Rl4Oasd& model, BinaryWriter* w);

/// Reads a payload written by WriteModelBundle from `r` (the streaming
/// counterpart of LoadModel; does not require the reader to be at end
/// afterwards, so bundles can be embedded in larger records).
Result<std::unique_ptr<core::Rl4Oasd>> ReadModelBundle(
    const roadnet::RoadNetwork* net, BinaryReader* r);

/// Deep-copies a model by round-tripping the bundle bytes through memory:
/// the clone has identical config, historical statistics, and weights (its
/// ModelFingerprint equals the original's), but is an independent instance —
/// safe to FineTune while the original keeps serving. Like LoadModel, the
/// clone's training RNG restarts from the configured seed (a clone behaves
/// exactly like a process restart from a saved bundle). This is the
/// background fine-tune primitive of the drift-adaptation loop.
Result<std::unique_ptr<core::Rl4Oasd>> CloneModel(
    const roadnet::RoadNetwork* net, const core::Rl4Oasd& model);

/// Order-sensitive fingerprint over everything that determines a model's
/// detection behaviour: the config, the preprocessor's historical
/// statistics, and both networks' weights (the exact bytes SaveModel would
/// write). Fleet snapshots are stamped with it, so restoring live trip
/// state against a different model fails loudly instead of silently
/// replaying hidden states that no longer match the weights.
uint64_t ModelFingerprint(const core::Rl4Oasd& model);

/// Config <-> key-value-double conversion (exposed for tests and tooling).
void WriteConfigKv(const core::Rl4OasdConfig& config, BinaryWriter* w);
Status ReadConfigKv(BinaryReader* r, core::Rl4OasdConfig* config);

/// Shape metadata of one stored tensor.
struct TensorInfo {
  std::string name;
  uint64_t rows = 0;
  uint64_t cols = 0;
};

/// Bundle metadata readable without reconstructing the model (and without
/// the road network it was trained on) — backs the oasd_inspect tool.
struct ModelDescription {
  uint32_t version = 0;
  std::vector<std::pair<std::string, double>> config;  // sorted by key
  size_t num_groups = 0;         // preprocessor (SD pair, slot) groups
  int64_t num_trajs = 0;         // historical trajectories ingested
  std::vector<TensorInfo> rsr_tensors;
  std::vector<TensorInfo> asd_tensors;
  size_t total_weights = 0;
};

/// Parses a bundle's structure (CRC-verified) without building the model.
Result<ModelDescription> DescribeModel(const std::string& path);

}  // namespace rl4oasd::io
