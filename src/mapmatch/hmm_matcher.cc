#include "mapmatch/hmm_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <thread>
#include <unordered_map>
#include <utility>

#include "roadnet/geometry.h"
#include "roadnet/shortest_path.h"

namespace rl4oasd::mapmatch {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// The seed-era bounded Dijkstra: a fresh hash map per search. Kept verbatim
/// as the cost model MatchReference() preserves — the fast kernel's
/// EdgeDijkstra must produce the same distances (both are exact bounded
/// Dijkstras over identical relaxations, so per-path float sums agree
/// bit-for-bit and the min over paths is order-independent).
std::unordered_map<roadnet::EdgeId, double> BoundedEdgeDistances(
    const roadnet::RoadNetwork& net, roadnet::EdgeId src, double max_dist_m) {
  std::unordered_map<roadnet::EdgeId, double> dist;
  using Entry = std::pair<double, roadnet::EdgeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    auto [d, e] = pq.top();
    pq.pop();
    auto it = dist.find(e);
    if (it != dist.end() && d > it->second) continue;
    for (roadnet::EdgeId next : net.NextEdges(e)) {
      const double nd = d + net.edge(next).length_m;
      if (nd > max_dist_m) continue;
      auto [nit, inserted] = dist.try_emplace(next, nd);
      if (!inserted && nit->second <= nd) continue;
      nit->second = nd;
      pq.push({nd, next});
    }
  }
  return dist;
}

double LogEmission(double d, double sigma) {
  return -0.5 * (d / sigma) * (d / sigma);
}

/// First maximum over a layer's score slice — the pinned segment-end
/// tie-break (lowest candidate index in the (distance, edge id) order).
uint32_t ArgmaxLayer(const internal::Lattice& lat, size_t t) {
  const internal::Layer& ly = lat.layers[t];
  uint32_t best = 0;
  for (uint32_t c = 1; c < ly.count; ++c) {
    if (lat.score[ly.first + c] > lat.score[ly.first + best]) best = c;
  }
  return best;
}

}  // namespace

namespace internal {

bool AppendLayer(const HmmMapMatcher& matcher, const traj::RawPoint& pt,
                 size_t point_index, Kernel kernel, MatchScratch* scratch,
                 Lattice* lat) {
  const HmmConfig& cfg = matcher.config();
  const roadnet::RoadNetwork& net = *matcher.network();

  if (kernel == Kernel::kFast) {
    matcher.index().QueryInto(pt.pos, cfg.candidate_radius_m,
                              cfg.max_candidates, &scratch->query,
                              &scratch->qcands);
  } else {
    // The reference kernel also pays the seed query's cost model (full cell
    // square, hash-set dedup, per-call allocations); the candidates are
    // identical either way.
    scratch->qcands = matcher.index().QueryReference(
        pt.pos, cfg.candidate_radius_m, cfg.max_candidates);
  }
  if (scratch->qcands.empty()) return false;

  Layer ly;
  ly.point_index = point_index;
  ly.pos = pt.pos;
  ly.t = pt.t;
  ly.first = static_cast<uint32_t>(lat->cands.size());
  ly.count = static_cast<uint32_t>(scratch->qcands.size());
  lat->cands.insert(lat->cands.end(), scratch->qcands.begin(),
                    scratch->qcands.end());
  lat->score.resize(lat->cands.size(), kNegInf);
  lat->back.resize(lat->cands.size(), -1);

  double* score = lat->score.data() + ly.first;
  int32_t* back = lat->back.data() + ly.first;
  const EdgeCandidate* cand = lat->cands.data() + ly.first;

  if (lat->layers.empty()) {
    ly.segment_start = true;
    for (uint32_t c = 0; c < ly.count; ++c) {
      score[c] = LogEmission(cand[c].distance_m, cfg.gps_sigma_m);
    }
    lat->layers.push_back(ly);
    return true;
  }

  const Layer& prev = lat->layers.back();
  const double* score_prev = lat->score.data() + prev.first;
  const EdgeCandidate* cand_prev = lat->cands.data() + prev.first;
  const double gc = roadnet::ApproxDistanceMeters(prev.pos, ly.pos);
  const double beta_m = 50.0 * cfg.transition_beta;
  const double max_net = std::max(gc * cfg.max_network_detour, gc + 300.0);

  if (kernel == Kernel::kFast) {
    // Transition distances come from the precomputed table when the layer's
    // detour bound fits under it (the common case: consecutive fixes),
    // otherwise from one reusable bounded Dijkstra per previous candidate,
    // early-terminated once every current-layer candidate is settled. Both
    // sources yield the same distances: a table entry is a settled
    // EdgeDijkstra distance, a table miss or an entry beyond max_net means
    // a live search bounded by max_net would not reach the edge either.
    // score[] doubles as the running best transition score per candidate
    // until emissions are added.
    const roadnet::EdgeDistanceTable& table = matcher.transition_table();
    const bool use_table = table.built() && max_net <= table.bound_m();
    if (!use_table) {
      scratch->targets.clear();
      for (uint32_t c = 0; c < ly.count; ++c) {
        scratch->targets.push_back(cand[c].edge);
      }
      scratch->dijkstra.Attach(&net);
      scratch->dijkstra.SetTargets(scratch->targets.data(),
                                   scratch->targets.size());
    }
    for (uint32_t p = 0; p < prev.count; ++p) {
      if (score_prev[p] == kNegInf) continue;
      // Exact dominance pruning: log_trans <= 0, so p's best possible score
      // is score_prev[p]; when even that cannot beat (strict >) the weakest
      // current best, p cannot change any candidate's score or back pointer.
      double min_best = score[0];
      for (uint32_t c = 1; c < ly.count; ++c) {
        min_best = std::min(min_best, score[c]);
      }
      if (score_prev[p] <= min_best) continue;
      if (!use_table) scratch->dijkstra.Run(cand_prev[p].edge, max_net);
      for (uint32_t c = 0; c < ly.count; ++c) {
        const double d = use_table
                             ? table.DistanceTo(cand_prev[p].edge, cand[c].edge)
                             : scratch->dijkstra.DistanceTo(cand[c].edge);
        if (d < 0.0 || d > max_net) continue;
        const double s = score_prev[p] - std::abs(gc - d) / beta_m;
        // Strict >: ties keep the lowest p, matching the reference kernel's
        // first-max over ascending p.
        if (s > score[c]) {
          score[c] = s;
          back[c] = static_cast<int32_t>(p);
        }
      }
    }
  } else {
    // Reference kernel: the seed's per-(layer, candidate) fresh-map searches
    // and candidate-outer loop order, preserved as the equivalence oracle.
    std::vector<std::unordered_map<roadnet::EdgeId, double>> netdist(
        prev.count);
    for (uint32_t p = 0; p < prev.count; ++p) {
      netdist[p] = BoundedEdgeDistances(net, cand_prev[p].edge, max_net);
    }
    for (uint32_t c = 0; c < ly.count; ++c) {
      double best = kNegInf;
      int32_t best_p = -1;
      for (uint32_t p = 0; p < prev.count; ++p) {
        if (score_prev[p] == kNegInf) continue;
        auto it = netdist[p].find(cand[c].edge);
        if (it == netdist[p].end()) continue;
        const double s = score_prev[p] - std::abs(gc - it->second) / beta_m;
        if (s > best) {
          best = s;
          best_p = static_cast<int32_t>(p);
        }
      }
      score[c] = best;
      back[c] = best_p;
    }
  }

  bool any = false;
  for (uint32_t c = 0; c < ly.count; ++c) {
    if (back[c] >= 0) {
      any = true;
      break;
    }
  }
  if (any) {
    for (uint32_t c = 0; c < ly.count; ++c) {
      if (back[c] >= 0) {
        score[c] += LogEmission(cand[c].distance_m, cfg.gps_sigma_m);
      } else {
        score[c] = kNegInf;
      }
    }
  } else {
    // GPS gap: no current candidate is network-reachable from the previous
    // layer within the detour bound. Start a new Viterbi segment from
    // emission-only scores; the gap policy decides bridging at decode time.
    ly.segment_start = true;
    for (uint32_t c = 0; c < ly.count; ++c) {
      score[c] = LogEmission(cand[c].distance_m, cfg.gps_sigma_m);
      back[c] = -1;
    }
  }
  lat->layers.push_back(ly);
  return true;
}

Result<DecodedPieces> Decode(const HmmMapMatcher& matcher, const Lattice& lat,
                             int64_t id) {
  if (lat.layers.empty()) {
    return Status::NotFound("no candidate segments near any GPS fix");
  }
  const roadnet::RoadNetwork& net = *matcher.network();
  const GapPolicy policy = matcher.config().gap_policy;
  const size_t num_layers = lat.layers.size();

  // Backtrack. Segment boundaries are explicit (Layer::segment_start), so a
  // chosen candidate in a non-starting layer always has a valid back
  // pointer; at a boundary the finished segment's end is re-anchored at the
  // previous layer's argmax (segmented Viterbi).
  std::vector<uint32_t> chosen(num_layers);
  uint32_t cur = ArgmaxLayer(lat, num_layers - 1);
  for (size_t t = num_layers; t-- > 0;) {
    chosen[t] = cur;
    if (t == 0) break;
    if (lat.layers[t].segment_start) {
      cur = ArgmaxLayer(lat, t - 1);
    } else {
      cur = static_cast<uint32_t>(lat.back[lat.layers[t].first + cur]);
    }
  }

  // Assemble pieces: collapse repeats, stitch non-adjacent consecutive edges
  // with shortest paths, and split where the gap policy says so (or where a
  // boundary bridge does not exist).
  DecodedPieces out;
  std::vector<size_t> piece_fixes;
  traj::MapMatchedTrajectory piece;
  size_t fixes = 0;
  auto flush = [&]() -> Status {
    if (piece.edges.empty()) return Status::OK();
    if (!net.IsConnectedPath(piece.edges)) {
      return Status::Internal("matched trajectory is not connected");
    }
    piece_fixes.push_back(fixes);
    out.pieces.push_back(std::move(piece));
    piece = traj::MapMatchedTrajectory{};
    return Status::OK();
  };

  for (size_t t = 0; t < num_layers; ++t) {
    const Layer& ly = lat.layers[t];
    const roadnet::EdgeId e = lat.cands[ly.first + chosen[t]].edge;
    const bool boundary = t > 0 && ly.segment_start;
    if (boundary && policy == GapPolicy::kSplit) {
      RL4_RETURN_NOT_OK(flush());
    }
    if (!piece.edges.empty()) {
      if (piece.edges.back() == e) {
        ++fixes;
        continue;
      }
      if (!net.AreConsecutive(piece.edges.back(), e)) {
        auto bridge = roadnet::ShortestPathBetweenEdges(net, piece.edges.back(), e);
        if (bridge.size() >= 2) {
          // Skip the first (already present) and last (pushed below).
          for (size_t k = 1; k + 1 < bridge.size(); ++k) {
            piece.edges.push_back(bridge[k]);
          }
        } else if (boundary) {
          // Unbridgeable gap (e.g. disconnected subgraphs): degrade to a
          // split instead of failing the whole trajectory.
          RL4_RETURN_NOT_OK(flush());
        } else {
          // Within a segment reachability was proven by the transition
          // search, so a missing bridge is a real invariant violation.
          return Status::Internal("could not stitch matched edges");
        }
      }
    }
    if (piece.edges.empty()) {
      piece.id = id;
      piece.start_time = ly.t;  // first *matched* fix of this piece
      fixes = 0;
    }
    piece.edges.push_back(e);
    ++fixes;
  }
  RL4_RETURN_NOT_OK(flush());

  for (size_t i = 1; i < piece_fixes.size(); ++i) {
    // Strict >: ties keep the earliest piece.
    if (piece_fixes[i] > piece_fixes[out.best]) out.best = i;
  }
  return out;
}

}  // namespace internal

HmmMapMatcher::HmmMapMatcher(const roadnet::RoadNetwork* net, HmmConfig config)
    : net_(net), config_(config), index_(net) {
  if (config_.transition_table_bound_m > 0.0) {
    table_.Build(*net, config_.transition_table_bound_m);
  }
}

Result<traj::MapMatchedTrajectory> HmmMapMatcher::MatchImpl(
    const traj::RawTrajectory& raw, internal::Kernel kernel,
    Scratch* scratch) const {
  if (raw.points.empty()) {
    return Status::InvalidArgument("empty raw trajectory");
  }
  internal::Lattice& lat = scratch->lattice;
  lat.Clear();
  for (size_t i = 0; i < raw.points.size(); ++i) {
    internal::AppendLayer(*this, raw.points[i], i, kernel, scratch, &lat);
  }
  RL4_ASSIGN_OR_RETURN(internal::DecodedPieces decoded,
                       internal::Decode(*this, lat, raw.id));
  return std::move(decoded.pieces[decoded.best]);
}

Result<traj::MapMatchedTrajectory> HmmMapMatcher::Match(
    const traj::RawTrajectory& raw) const {
  Scratch scratch;
  return MatchImpl(raw, internal::Kernel::kFast, &scratch);
}

Result<traj::MapMatchedTrajectory> HmmMapMatcher::Match(
    const traj::RawTrajectory& raw, Scratch* scratch) const {
  return MatchImpl(raw, internal::Kernel::kFast, scratch);
}

Result<traj::MapMatchedTrajectory> HmmMapMatcher::MatchReference(
    const traj::RawTrajectory& raw) const {
  Scratch scratch;
  return MatchImpl(raw, internal::Kernel::kReference, &scratch);
}

Result<std::vector<traj::MapMatchedTrajectory>> HmmMapMatcher::MatchSegments(
    const traj::RawTrajectory& raw, Scratch* scratch) const {
  Scratch local;
  if (scratch == nullptr) scratch = &local;
  if (raw.points.empty()) {
    return Status::InvalidArgument("empty raw trajectory");
  }
  internal::Lattice& lat = scratch->lattice;
  lat.Clear();
  for (size_t i = 0; i < raw.points.size(); ++i) {
    internal::AppendLayer(*this, raw.points[i], i, internal::Kernel::kFast,
                          scratch, &lat);
  }
  RL4_ASSIGN_OR_RETURN(internal::DecodedPieces decoded,
                       internal::Decode(*this, lat, raw.id));
  return std::move(decoded.pieces);
}

std::vector<Result<traj::MapMatchedTrajectory>> HmmMapMatcher::MatchBatch(
    const std::vector<traj::RawTrajectory>& raws, int threads) const {
  const size_t n = raws.size();
  // Result<T> has no default constructor; prefill every slot with an error
  // so workers can plain-assign into disjoint indices.
  std::vector<Result<traj::MapMatchedTrajectory>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.emplace_back(Status::Internal("batch slot not matched"));
  }
  size_t num_workers = threads < 1 ? 1 : static_cast<size_t>(threads);
  num_workers = std::min(num_workers, n == 0 ? size_t{1} : n);
  if (num_workers <= 1) {
    Scratch scratch;
    for (size_t i = 0; i < n; ++i) {
      out[i] = MatchImpl(raws[i], internal::Kernel::kFast, &scratch);
    }
    return out;
  }
  // Strided sharding; each worker owns its scratch and writes only its own
  // slots, so no synchronization is needed beyond the joins. Results are
  // keyed by input index, making output thread-count invariant.
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers.emplace_back([this, &raws, &out, n, num_workers, w] {
      Scratch scratch;
      for (size_t i = w; i < n; i += num_workers) {
        out[i] = MatchImpl(raws[i], internal::Kernel::kFast, &scratch);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  return out;
}

}  // namespace rl4oasd::mapmatch
