#include "mapmatch/hmm_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

#include "roadnet/shortest_path.h"

namespace rl4oasd::mapmatch {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Bounded Dijkstra on the edge graph: distance (meters of edges traversed
/// after `src`) from `src` to every edge within `max_dist_m`.
std::unordered_map<roadnet::EdgeId, double> BoundedEdgeDistances(
    const roadnet::RoadNetwork& net, roadnet::EdgeId src, double max_dist_m) {
  std::unordered_map<roadnet::EdgeId, double> dist;
  using Entry = std::pair<double, roadnet::EdgeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    auto [d, e] = pq.top();
    pq.pop();
    auto it = dist.find(e);
    if (it != dist.end() && d > it->second) continue;
    for (roadnet::EdgeId next : net.NextEdges(e)) {
      const double nd = d + net.edge(next).length_m;
      if (nd > max_dist_m) continue;
      auto [nit, inserted] = dist.try_emplace(next, nd);
      if (!inserted && nit->second <= nd) continue;
      nit->second = nd;
      pq.push({nd, next});
    }
  }
  return dist;
}

}  // namespace

HmmMapMatcher::HmmMapMatcher(const roadnet::RoadNetwork* net, HmmConfig config)
    : net_(net), config_(config), index_(net) {}

Result<traj::MapMatchedTrajectory> HmmMapMatcher::Match(
    const traj::RawTrajectory& raw) const {
  if (raw.points.empty()) {
    return Status::InvalidArgument("empty raw trajectory");
  }

  // Build the candidate lattice, skipping fixes with no nearby segment.
  struct Layer {
    size_t point_index;
    std::vector<EdgeCandidate> candidates;
  };
  std::vector<Layer> lattice;
  for (size_t i = 0; i < raw.points.size(); ++i) {
    auto cands = index_.Query(raw.points[i].pos, config_.candidate_radius_m,
                              config_.max_candidates);
    if (!cands.empty()) lattice.push_back({i, std::move(cands)});
  }
  if (lattice.empty()) {
    return Status::NotFound("no candidate segments near any GPS fix");
  }

  // Viterbi in log space.
  const double sigma = config_.gps_sigma_m;
  auto log_emission = [sigma](double d) {
    return -0.5 * (d / sigma) * (d / sigma);
  };
  const double beta_m = 50.0 * config_.transition_beta;

  std::vector<std::vector<double>> score(lattice.size());
  std::vector<std::vector<int>> back(lattice.size());
  score[0].resize(lattice[0].candidates.size());
  back[0].assign(lattice[0].candidates.size(), -1);
  for (size_t c = 0; c < lattice[0].candidates.size(); ++c) {
    score[0][c] = log_emission(lattice[0].candidates[c].distance_m);
  }

  for (size_t t = 1; t < lattice.size(); ++t) {
    const auto& prev_pt = raw.points[lattice[t - 1].point_index].pos;
    const auto& cur_pt = raw.points[lattice[t].point_index].pos;
    const double gc = roadnet::ApproxDistanceMeters(prev_pt, cur_pt);
    const double max_net =
        std::max(gc * config_.max_network_detour, gc + 300.0);

    // One bounded Dijkstra per previous candidate covers all transitions.
    std::vector<std::unordered_map<roadnet::EdgeId, double>> netdist(
        lattice[t - 1].candidates.size());
    for (size_t p = 0; p < lattice[t - 1].candidates.size(); ++p) {
      netdist[p] = BoundedEdgeDistances(
          *net_, lattice[t - 1].candidates[p].edge, max_net);
    }

    score[t].assign(lattice[t].candidates.size(), kNegInf);
    back[t].assign(lattice[t].candidates.size(), -1);
    for (size_t c = 0; c < lattice[t].candidates.size(); ++c) {
      const roadnet::EdgeId ce = lattice[t].candidates[c].edge;
      double best = kNegInf;
      int best_p = -1;
      for (size_t p = 0; p < lattice[t - 1].candidates.size(); ++p) {
        if (score[t - 1][p] == kNegInf) continue;
        auto it = netdist[p].find(ce);
        if (it == netdist[p].end()) continue;
        const double log_trans = -std::abs(gc - it->second) / beta_m;
        const double s = score[t - 1][p] + log_trans;
        if (s > best) {
          best = s;
          best_p = static_cast<int>(p);
        }
      }
      if (best_p >= 0) {
        score[t][c] = best + log_emission(lattice[t].candidates[c].distance_m);
        back[t][c] = best_p;
      }
    }
    // If the whole layer is unreachable (GPS gap), restart from emissions;
    // the gap is stitched with a shortest path afterwards.
    bool any = std::any_of(score[t].begin(), score[t].end(),
                           [](double s) { return s != kNegInf; });
    if (!any) {
      for (size_t c = 0; c < lattice[t].candidates.size(); ++c) {
        score[t][c] = log_emission(lattice[t].candidates[c].distance_m);
        back[t][c] = -1;
      }
    }
  }

  // Backtrack.
  std::vector<roadnet::EdgeId> matched(lattice.size());
  int cur = static_cast<int>(std::distance(
      score.back().begin(),
      std::max_element(score.back().begin(), score.back().end())));
  for (size_t t = lattice.size(); t-- > 0;) {
    matched[t] = lattice[t].candidates[cur].edge;
    cur = back[t][cur];
    if (cur < 0 && t > 0) {
      // Restarted layer: greedily pick the best-scoring candidate below.
      cur = static_cast<int>(std::distance(
          score[t - 1].begin(),
          std::max_element(score[t - 1].begin(), score[t - 1].end())));
    }
  }

  // Collapse duplicates and stitch non-adjacent consecutive edges.
  traj::MapMatchedTrajectory out;
  out.id = raw.id;
  out.start_time = raw.points.front().t;
  for (roadnet::EdgeId e : matched) {
    if (!out.edges.empty() && out.edges.back() == e) continue;
    if (!out.edges.empty() && !net_->AreConsecutive(out.edges.back(), e)) {
      auto bridge = roadnet::ShortestPathBetweenEdges(*net_, out.edges.back(), e);
      if (bridge.size() >= 2) {
        // Skip the first (already present) and append the rest.
        for (size_t k = 1; k + 1 < bridge.size(); ++k) {
          out.edges.push_back(bridge[k]);
        }
      } else {
        return Status::Internal("could not stitch matched edges");
      }
    }
    out.edges.push_back(e);
  }
  if (!net_->IsConnectedPath(out.edges)) {
    return Status::Internal("matched trajectory is not connected");
  }
  return out;
}

}  // namespace rl4oasd::mapmatch
