// HMM map matching in the style of FMM (Yang & Gidófalvi 2018) / Newson &
// Krumm: hidden states are candidate road segments per GPS fix, emission
// probabilities are Gaussian in point-to-segment distance, transition
// probabilities compare great-circle displacement to network distance, and
// Viterbi decodes the most likely segment sequence. Gaps in the decoded
// sequence are stitched with shortest paths so the output is a connected
// map-matched trajectory.
#pragma once

#include "common/status.h"
#include "mapmatch/spatial_index.h"
#include "roadnet/road_network.h"
#include "traj/types.h"

namespace rl4oasd::mapmatch {

struct HmmConfig {
  double gps_sigma_m = 15.0;       // emission noise scale
  double candidate_radius_m = 60;  // candidate search radius
  size_t max_candidates = 6;
  double transition_beta = 2.0;    // penalty scale for route-length mismatch
  double max_network_detour = 5.0; // bound on network/GC distance ratio
};

/// Stateless matcher; Match() can be called concurrently from one thread
/// each.
class HmmMapMatcher {
 public:
  HmmMapMatcher(const roadnet::RoadNetwork* net, HmmConfig config = {});

  /// Matches one raw trajectory. Fails if no candidate lattice can be built
  /// (e.g. all fixes are off-network).
  Result<traj::MapMatchedTrajectory> Match(
      const traj::RawTrajectory& raw) const;

 private:
  const roadnet::RoadNetwork* net_;
  HmmConfig config_;
  SpatialIndex index_;
};

}  // namespace rl4oasd::mapmatch
