// HMM map matching in the style of FMM (Yang & Gidófalvi 2018) / Newson &
// Krumm: hidden states are candidate road segments per GPS fix, emission
// probabilities are Gaussian in point-to-segment distance, transition
// probabilities compare great-circle displacement to network distance, and
// Viterbi decodes the most likely segment sequence. Gaps in the decoded
// sequence are stitched with shortest paths so the output is a connected
// map-matched trajectory.
//
// Decoding semantics (pinned; see docs/ARCHITECTURE.md "Map matching" and
// tests/mapmatch_equiv_test.cc):
//   * Fixes with no candidate within `candidate_radius_m` are dropped from
//     the lattice; the output's `start_time` is the first *matched* fix's
//     timestamp.
//   * When no current-layer candidate is network-reachable from the
//     previous layer within the detour bound (a GPS gap), the lattice is
//     partitioned: a new segment starts from emission-only scores. Each
//     maximal segment is decoded by its own Viterbi pass — the output over
//     a segment equals what matching that segment's fixes alone would
//     produce — and a segment's final layer contributes its
//     highest-scoring candidate (ties: lowest candidate index in the
//     (distance, edge id) candidate order).
//   * Across a segment boundary, `GapPolicy::kBridge` (default) stitches
//     with an unbounded shortest path when one exists and otherwise splits
//     the output; `GapPolicy::kSplit` always splits. Match() returns the
//     piece spanning the most matched fixes (ties: earliest); use
//     MatchSegments() for all pieces. A whole-trajectory failure now
//     requires an empty candidate lattice, not merely one unbridgeable gap.
//
// Two transition kernels produce identical output by contract: the fast
// kernel (reusable epoch-stamped bounded Dijkstra with target early-
// termination and exact dominance pruning) behind Match()/MatchBatch(), and
// the seed-era reference kernel (one fresh hash-map Dijkstra per
// (layer, candidate)) behind MatchReference(), kept as the equivalence
// oracle for tests and benches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "mapmatch/spatial_index.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"
#include "traj/types.h"

namespace rl4oasd::mapmatch {

/// What to do at a GPS gap (a lattice segment boundary) when assembling the
/// output edge sequence.
enum class GapPolicy : uint8_t {
  kBridge = 0,  // stitch with a shortest path when one exists, else split
  kSplit = 1,   // always split into independent pieces at the gap
};

struct HmmConfig {
  double gps_sigma_m = 15.0;       // emission noise scale
  double candidate_radius_m = 60;  // candidate search radius
  size_t max_candidates = 6;
  double transition_beta = 2.0;    // penalty scale for route-length mismatch
  double max_network_detour = 5.0; // bound on network/GC distance ratio
  GapPolicy gap_policy = GapPolicy::kBridge;
  // Bound (meters) of the precomputed edge-distance table built at matcher
  // construction (FMM's UBODT). Layers whose detour bound fits under it
  // answer transitions by table lookup; wider layers fall back to the live
  // bounded Dijkstra, with identical distances either way. 0 disables the
  // table (and its one-time O(E) build).
  double transition_table_bound_m = 600.0;
};

class HmmMapMatcher;

namespace internal {

/// One lattice layer: the scored candidates of one retained GPS fix.
struct Layer {
  size_t point_index = 0;    // index of the fix in the raw point stream
  roadnet::LatLon pos;       // fix position (transition great-circle anchor)
  double t = 0.0;            // fix timestamp (piece start times)
  uint32_t first = 0;        // offset into the flattened per-candidate arrays
  uint32_t count = 0;
  bool segment_start = false;  // no scored transition from the previous layer
};

/// Flattened Viterbi lattice, grown one layer at a time (the streaming
/// matcher appends as fixes arrive; batch matching appends in a loop).
struct Lattice {
  std::vector<Layer> layers;
  std::vector<EdgeCandidate> cands;  // flattened, layer-major
  std::vector<double> score;         // parallel to cands
  std::vector<int32_t> back;         // parallel to cands; -1 = segment start

  void Clear() {
    layers.clear();
    cands.clear();
    score.clear();
    back.clear();
  }
};

/// Reusable per-thread match state: query buffers, the bounded edge-graph
/// Dijkstra's epoch-stamped arrays, and the lattice storage. One instance
/// per thread; reusing one across consecutive Match() calls makes matching
/// allocation-free in steady state.
struct MatchScratch {
  SpatialIndex::QueryScratch query;
  std::vector<EdgeCandidate> qcands;  // per-fix candidate query output
  roadnet::EdgeDijkstra dijkstra;
  std::vector<roadnet::EdgeId> targets;
  Lattice lattice;
};

enum class Kernel : uint8_t { kFast = 0, kReference = 1 };

/// Queries candidates for `pt` and appends one scored layer to `lat`.
/// Returns false (lattice unchanged) when no candidate is in range.
bool AppendLayer(const HmmMapMatcher& matcher, const traj::RawPoint& pt,
                 size_t point_index, Kernel kernel, MatchScratch* scratch,
                 Lattice* lat);

/// Backtracks the lattice and assembles the output pieces under the
/// matcher's gap policy. `best` indexes the piece with the most matched
/// fixes (ties: earliest). Pure function of the lattice: calling it does
/// not invalidate the lattice, so a streaming caller may decode mid-stream
/// and keep feeding.
struct DecodedPieces {
  std::vector<traj::MapMatchedTrajectory> pieces;
  size_t best = 0;
};
Result<DecodedPieces> Decode(const HmmMapMatcher& matcher, const Lattice& lat,
                             int64_t id);

}  // namespace internal

/// Stateless matcher: Match()/MatchBatch()/MatchSegments() are const and
/// safe to call concurrently (each call uses its own scratch, or the one the
/// caller passes in — pass one scratch per thread).
class HmmMapMatcher {
 public:
  using Scratch = internal::MatchScratch;

  explicit HmmMapMatcher(const roadnet::RoadNetwork* net, HmmConfig config = {});

  /// Matches one raw trajectory with the fast kernel. Fails if no candidate
  /// lattice can be built (e.g. all fixes are off-network). With multiple
  /// gap-split pieces, returns the piece spanning the most matched fixes.
  Result<traj::MapMatchedTrajectory> Match(const traj::RawTrajectory& raw) const;

  /// Same, reusing the caller's scratch (allocation-free in steady state).
  Result<traj::MapMatchedTrajectory> Match(const traj::RawTrajectory& raw,
                                           Scratch* scratch) const;

  /// Matches one raw trajectory into every gap-split piece, in time order
  /// (one piece when the trajectory has no unbridged gap). Each piece is
  /// connected and carries the timestamp of its own first matched fix.
  Result<std::vector<traj::MapMatchedTrajectory>> MatchSegments(
      const traj::RawTrajectory& raw, Scratch* scratch = nullptr) const;

  /// Matches a batch of trajectories across `threads` workers (clamped to
  /// [1, batch size]). Output order is deterministic and thread-count
  /// invariant: result i corresponds to input i and is identical to
  /// Match(raw[i]).
  std::vector<Result<traj::MapMatchedTrajectory>> MatchBatch(
      const std::vector<traj::RawTrajectory>& raws, int threads = 1) const;

  /// The seed-era reference kernel (fresh hash-map bounded Dijkstra per
  /// (layer, candidate)). Contract: output identical to Match() — this is
  /// the oracle the equivalence suite and bench_mapmatch compare against.
  Result<traj::MapMatchedTrajectory> MatchReference(
      const traj::RawTrajectory& raw) const;

  const roadnet::RoadNetwork* network() const { return net_; }
  const HmmConfig& config() const { return config_; }
  const SpatialIndex& index() const { return index_; }
  const roadnet::EdgeDistanceTable& transition_table() const { return table_; }

 private:
  Result<traj::MapMatchedTrajectory> MatchImpl(const traj::RawTrajectory& raw,
                                               internal::Kernel kernel,
                                               Scratch* scratch) const;

  const roadnet::RoadNetwork* net_;
  HmmConfig config_;
  SpatialIndex index_;
  roadnet::EdgeDistanceTable table_;  // immutable after ctor; shared by threads
};

}  // namespace rl4oasd::mapmatch
