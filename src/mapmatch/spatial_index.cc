#include "mapmatch/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rl4oasd::mapmatch {

namespace {
constexpr double kMetersPerDegLat = 111320.0;
}

SpatialIndex::SpatialIndex(const roadnet::RoadNetwork* net,
                           double cell_size_m)
    : net_(net) {
  // Use the latitude of the first vertex to fix the longitude scale; city
  // extents are small enough that one scale suffices.
  double ref_lat = 0.0;
  if (net->NumVertices() > 0) ref_lat = net->vertex(0).pos.lat;
  meters_per_deg_lon_ =
      kMetersPerDegLat * std::cos(ref_lat * 3.14159265358979 / 180.0);
  cell_deg_lat_ = cell_size_m / kMetersPerDegLat;
  cell_deg_lon_ = cell_size_m / meters_per_deg_lon_;

  boxes_.reserve(net->NumEdges());
  for (roadnet::EdgeId e = 0; e < static_cast<roadnet::EdgeId>(net->NumEdges());
       ++e) {
    const auto& edge = net->edge(e);
    const auto& a = net->vertex(edge.from).pos;
    const auto& b = net->vertex(edge.to).pos;
    boxes_.push_back({std::min(a.lat, b.lat), std::max(a.lat, b.lat),
                      std::min(a.lon, b.lon), std::max(a.lon, b.lon)});
    const int x0 = CellX(std::min(a.lon, b.lon));
    const int x1 = CellX(std::max(a.lon, b.lon));
    const int y0 = CellY(std::min(a.lat, b.lat));
    const int y1 = CellY(std::max(a.lat, b.lat));
    for (int cx = x0; cx <= x1; ++cx) {
      for (int cy = y0; cy <= y1; ++cy) {
        cells_[CellKey(cx, cy)].push_back(e);
      }
    }
  }
}

int SpatialIndex::CellX(double lon) const {
  return static_cast<int>(std::floor(lon / cell_deg_lon_));
}
int SpatialIndex::CellY(double lat) const {
  return static_cast<int>(std::floor(lat / cell_deg_lat_));
}

std::vector<EdgeCandidate> SpatialIndex::Query(const roadnet::LatLon& p,
                                               double radius_m,
                                               size_t max_candidates) const {
  QueryScratch scratch;
  std::vector<EdgeCandidate> out;
  QueryInto(p, radius_m, max_candidates, &scratch, &out);
  return out;
}

void SpatialIndex::QueryInto(const roadnet::LatLon& p, double radius_m,
                             size_t max_candidates, QueryScratch* scratch,
                             std::vector<EdgeCandidate>* out) const {
  out->clear();
  if (max_candidates == 0 || radius_m < 0.0) return;

  // Exact ring iteration: an edge within `radius_m` of `p` passes through at
  // least one cell whose rectangle comes within `radius_m` of `p` (the edge
  // is registered in every cell its bounding box overlaps, including the one
  // containing its closest point to `p`). So it suffices to visit, per cell
  // row, the contiguous dx range whose rectangle-to-point distance is within
  // the radius. The per-cell bound is made slightly conservative (inflated
  // radius) to absorb the difference between this planar scale and the
  // equirectangular metric used for the exact per-edge distances below;
  // extra cells cost a lookup, a skipped qualifying cell would cost
  // correctness.
  const double slack_m = radius_m * 0.02 + 1.0;
  const int cx = CellX(p.lon);
  const int cy = CellY(p.lat);
  const int ry =
      static_cast<int>(std::ceil((radius_m + slack_m) /
                                 (cell_deg_lat_ * kMetersPerDegLat)));
  std::vector<roadnet::EdgeId>& ids = scratch->ids_;
  ids.clear();
  for (int dy = -ry; dy <= ry; ++dy) {
    // Meters from p.lat to the nearest latitude of cell row (cy + dy).
    double lat_gap_deg = 0.0;
    if (dy > 0) {
      lat_gap_deg = static_cast<double>(cy + dy) * cell_deg_lat_ - p.lat;
    } else if (dy < 0) {
      lat_gap_deg = p.lat - static_cast<double>(cy + dy + 1) * cell_deg_lat_;
    }
    const double lat_gap_m = std::max(0.0, lat_gap_deg) * kMetersPerDegLat;
    if (lat_gap_m > radius_m + slack_m) continue;
    // Within this row, the reachable dx range: lon gap shrinks the budget
    // left after the lat gap.
    const double lon_budget_m =
        std::sqrt(std::max(0.0, (radius_m + slack_m) * (radius_m + slack_m) -
                                    lat_gap_m * lat_gap_m));
    const int rx = static_cast<int>(
        std::ceil(lon_budget_m / (cell_deg_lon_ * meters_per_deg_lon_)));
    for (int dx = -rx; dx <= rx; ++dx) {
      auto it = cells_.find(CellKey(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      ids.insert(ids.end(), it->second.begin(), it->second.end());
    }
  }
  if (ids.empty()) return;
  // Dedup edges seen from multiple cells. The per-cell lists are ascending,
  // so after one sort the duplicates are adjacent.
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  // Prescreen with per-edge bounding boxes before paying for the exact
  // point-to-segment distance: the box-to-point distance lower-bounds the
  // segment distance, and the same conservative slack absorbs the planar
  // scale difference, so no qualifying edge can be prescreened away.
  const double screen_m = radius_m + slack_m;
  const double screen_sq = screen_m * screen_m;
  for (roadnet::EdgeId e : ids) {
    const EdgeBox& box = boxes_[static_cast<size_t>(e)];
    const double dlat_deg =
        std::max({box.min_lat - p.lat, p.lat - box.max_lat, 0.0});
    const double dlon_deg =
        std::max({box.min_lon - p.lon, p.lon - box.max_lon, 0.0});
    const double dy = dlat_deg * kMetersPerDegLat;
    const double dx = dlon_deg * meters_per_deg_lon_;
    if (dy * dy + dx * dx > screen_sq) continue;
    const auto& edge = net_->edge(e);
    const double d = roadnet::PointToSegmentMeters(
        p, net_->vertex(edge.from).pos, net_->vertex(edge.to).pos);
    if (d <= radius_m) out->push_back({e, d});
  }
  // (distance, edge id) is a total order over distinct edges, so the result
  // sequence — including which candidates survive the cap — is fully
  // deterministic.
  std::sort(out->begin(), out->end(),
            [](const EdgeCandidate& a, const EdgeCandidate& b) {
              return a.distance_m != b.distance_m ? a.distance_m < b.distance_m
                                                  : a.edge < b.edge;
            });
  if (out->size() > max_candidates) out->resize(max_candidates);
}

std::vector<EdgeCandidate> SpatialIndex::QueryReference(
    const roadnet::LatLon& p, double radius_m, size_t max_candidates) const {
  // Seed-era query, kept verbatim as the reference kernel's cost model:
  // scan the full (2r+1)^2 cell square, dedup through a hash set, and take
  // the exact distance of every edge touched. Only the final comparator
  // departs from the seed (total order on (distance, edge id) instead of
  // distance alone) so both kernels share one pinned tie order.
  const int rx = static_cast<int>(
                     std::ceil(radius_m / kMetersPerDegLat / cell_deg_lat_)) +
                 1;
  const int cx = CellX(p.lon);
  const int cy = CellY(p.lat);
  std::unordered_set<roadnet::EdgeId> seen;
  std::vector<EdgeCandidate> out;
  for (int dx = -rx; dx <= rx; ++dx) {
    for (int dy = -rx; dy <= rx; ++dy) {
      auto it = cells_.find(CellKey(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      for (roadnet::EdgeId e : it->second) {
        if (!seen.insert(e).second) continue;
        const auto& edge = net_->edge(e);
        const double d = roadnet::PointToSegmentMeters(
            p, net_->vertex(edge.from).pos, net_->vertex(edge.to).pos);
        if (d <= radius_m) out.push_back({e, d});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EdgeCandidate& a, const EdgeCandidate& b) {
              return a.distance_m != b.distance_m ? a.distance_m < b.distance_m
                                                  : a.edge < b.edge;
            });
  if (out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

}  // namespace rl4oasd::mapmatch
