#include "mapmatch/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rl4oasd::mapmatch {

namespace {
constexpr double kMetersPerDegLat = 111320.0;
}

SpatialIndex::SpatialIndex(const roadnet::RoadNetwork* net,
                           double cell_size_m)
    : net_(net) {
  // Use the latitude of the first vertex to fix the longitude scale; city
  // extents are small enough that one scale suffices.
  double ref_lat = 0.0;
  if (net->NumVertices() > 0) ref_lat = net->vertex(0).pos.lat;
  const double meters_per_deg_lon =
      kMetersPerDegLat * std::cos(ref_lat * 3.14159265358979 / 180.0);
  cell_deg_lat_ = cell_size_m / kMetersPerDegLat;
  cell_deg_lon_ = cell_size_m / meters_per_deg_lon;

  for (roadnet::EdgeId e = 0; e < static_cast<roadnet::EdgeId>(net->NumEdges());
       ++e) {
    const auto& edge = net->edge(e);
    const auto& a = net->vertex(edge.from).pos;
    const auto& b = net->vertex(edge.to).pos;
    const int x0 = CellX(std::min(a.lon, b.lon));
    const int x1 = CellX(std::max(a.lon, b.lon));
    const int y0 = CellY(std::min(a.lat, b.lat));
    const int y1 = CellY(std::max(a.lat, b.lat));
    for (int cx = x0; cx <= x1; ++cx) {
      for (int cy = y0; cy <= y1; ++cy) {
        cells_[CellKey(cx, cy)].push_back(e);
      }
    }
  }
}

int SpatialIndex::CellX(double lon) const {
  return static_cast<int>(std::floor(lon / cell_deg_lon_));
}
int SpatialIndex::CellY(double lat) const {
  return static_cast<int>(std::floor(lat / cell_deg_lat_));
}

std::vector<EdgeCandidate> SpatialIndex::Query(const roadnet::LatLon& p,
                                               double radius_m,
                                               size_t max_candidates) const {
  const int rx = static_cast<int>(
                     std::ceil(radius_m / kMetersPerDegLat / cell_deg_lat_)) +
                 1;
  const int cx = CellX(p.lon);
  const int cy = CellY(p.lat);
  std::unordered_set<roadnet::EdgeId> seen;
  std::vector<EdgeCandidate> out;
  for (int dx = -rx; dx <= rx; ++dx) {
    for (int dy = -rx; dy <= rx; ++dy) {
      auto it = cells_.find(CellKey(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      for (roadnet::EdgeId e : it->second) {
        if (!seen.insert(e).second) continue;
        const auto& edge = net_->edge(e);
        const double d = roadnet::PointToSegmentMeters(
            p, net_->vertex(edge.from).pos, net_->vertex(edge.to).pos);
        if (d <= radius_m) out.push_back({e, d});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EdgeCandidate& a, const EdgeCandidate& b) {
              return a.distance_m < b.distance_m;
            });
  if (out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

}  // namespace rl4oasd::mapmatch
