// Uniform-grid spatial index over road segments, used to find candidate
// edges near a GPS fix in O(1) expected time.
#pragma once

#include <unordered_map>
#include <vector>

#include "roadnet/road_network.h"

namespace rl4oasd::mapmatch {

/// A candidate edge near a query point.
struct EdgeCandidate {
  roadnet::EdgeId edge = roadnet::kInvalidEdge;
  double distance_m = 0.0;  // point-to-segment distance
};

/// Buckets edges by the grid cells their bounding boxes overlap.
class SpatialIndex {
 public:
  /// Builds the index with the given cell size (meters).
  SpatialIndex(const roadnet::RoadNetwork* net, double cell_size_m = 250.0);

  /// Returns up to `max_candidates` edges within `radius_m` of `p`, sorted by
  /// distance (closest first).
  std::vector<EdgeCandidate> Query(const roadnet::LatLon& p, double radius_m,
                                   size_t max_candidates = 8) const;

 private:
  int64_t CellKey(int cx, int cy) const {
    return (static_cast<int64_t>(cx) << 32) ^ static_cast<uint32_t>(cy);
  }
  int CellX(double lon) const;
  int CellY(double lat) const;

  const roadnet::RoadNetwork* net_;
  double cell_deg_lat_;
  double cell_deg_lon_;
  std::unordered_map<int64_t, std::vector<roadnet::EdgeId>> cells_;
};

}  // namespace rl4oasd::mapmatch
