// Uniform-grid spatial index over road segments, used to find candidate
// edges near a GPS fix in O(1) expected time. Queries are exact (identical
// candidate sets to a brute-force scan over all edges) and deterministic:
// results are ordered by (distance, edge id), a total order, so neither the
// cell iteration order nor sort stability can leak into downstream
// tie-breaking — the map matcher's Viterbi tie-breaks are pinned to this
// ordering (see docs/ARCHITECTURE.md, "Map matching").
#pragma once

#include <unordered_map>
#include <vector>

#include "roadnet/road_network.h"

namespace rl4oasd::mapmatch {

/// A candidate edge near a query point.
struct EdgeCandidate {
  roadnet::EdgeId edge = roadnet::kInvalidEdge;
  double distance_m = 0.0;  // point-to-segment distance
};

/// Buckets edges by the grid cells their bounding boxes overlap.
class SpatialIndex {
 public:
  /// Reusable per-thread query buffers. QueryInto with a caller-owned
  /// scratch allocates nothing in steady state; the index itself stays
  /// immutable, so any number of threads can query one index as long as
  /// each brings its own scratch.
  class QueryScratch {
   public:
    QueryScratch() = default;

   private:
    friend class SpatialIndex;
    std::vector<roadnet::EdgeId> ids_;
  };

  /// Builds the index with the given cell size (meters).
  explicit SpatialIndex(const roadnet::RoadNetwork* net,
                        double cell_size_m = 250.0);

  /// Returns up to `max_candidates` edges within `radius_m` of `p`, ordered
  /// by (distance, edge id). Convenience wrapper over QueryInto.
  std::vector<EdgeCandidate> Query(const roadnet::LatLon& p, double radius_m,
                                   size_t max_candidates = 8) const;

  /// Allocation-free query into `out` (cleared first), using the caller's
  /// scratch buffers. Same results as Query.
  void QueryInto(const roadnet::LatLon& p, double radius_m,
                 size_t max_candidates, QueryScratch* scratch,
                 std::vector<EdgeCandidate>* out) const;

  /// The seed-era query, preserved as the reference cost model for
  /// bench_mapmatch: full (2r+1)^2 cell square, hash-set dedup, exact
  /// distance for every touched edge, fresh allocations per call. Returns
  /// the same candidates as Query — the only departure from the seed code
  /// is the final (distance, edge id) sort, which pins the tie order both
  /// kernels share (the seed's distance-only unstable sort left edge order
  /// at equal distance unspecified).
  std::vector<EdgeCandidate> QueryReference(const roadnet::LatLon& p,
                                            double radius_m,
                                            size_t max_candidates = 8) const;

 private:
  int64_t CellKey(int cx, int cy) const {
    return (static_cast<int64_t>(cx) << 32) ^ static_cast<uint32_t>(cy);
  }
  int CellX(double lon) const;
  int CellY(double lat) const;

  struct EdgeBox {
    double min_lat, max_lat, min_lon, max_lon;
  };

  const roadnet::RoadNetwork* net_;
  double cell_deg_lat_;
  double cell_deg_lon_;
  double meters_per_deg_lon_;
  // Values are ascending edge-id lists (edges are inserted in id order at
  // build time), so concatenation + sort + unique dedups cheaply.
  std::unordered_map<int64_t, std::vector<roadnet::EdgeId>> cells_;
  // Per-edge bounding boxes for the query prescreen: box distance lower-
  // bounds segment distance, so edges whose box is (conservatively) outside
  // the radius skip the exact point-to-segment evaluation.
  std::vector<EdgeBox> boxes_;
};

}  // namespace rl4oasd::mapmatch
