#include "mapmatch/streaming_matcher.h"

#include <utility>
#include <vector>

namespace rl4oasd::mapmatch {

bool StreamingMatcher::MatchPoint(const traj::RawPoint& pt) {
  const size_t point_index = points_fed_++;
  return internal::AppendLayer(*matcher_, pt, point_index,
                               internal::Kernel::kFast, &scratch_,
                               &scratch_.lattice);
}

Result<traj::MapMatchedTrajectory> StreamingMatcher::Finish() {
  if (points_fed_ == 0) {
    return Status::InvalidArgument("empty raw trajectory");
  }
  RL4_ASSIGN_OR_RETURN(internal::DecodedPieces decoded,
                       internal::Decode(*matcher_, scratch_.lattice, id_));
  return std::move(decoded.pieces[decoded.best]);
}

Result<std::vector<traj::MapMatchedTrajectory>>
StreamingMatcher::FinishSegments() {
  if (points_fed_ == 0) {
    return Status::InvalidArgument("empty raw trajectory");
  }
  RL4_ASSIGN_OR_RETURN(internal::DecodedPieces decoded,
                       internal::Decode(*matcher_, scratch_.lattice, id_));
  return std::move(decoded.pieces);
}

}  // namespace rl4oasd::mapmatch
