// Streaming (online) map matching: feed GPS fixes one at a time as they
// arrive and decode on demand. The lattice grows incrementally — each
// MatchPoint() does exactly the per-fix work batch matching would do (one
// candidate query plus one scored Viterbi layer), so per-point cost is O(1)
// in trajectory length and a fix's cost is paid when it arrives, not at
// Finish().
//
// Exactness contract (enforced by tests/mapmatch_equiv_test.cc): after
// feeding the points of a raw trajectory in order, Finish() returns a result
// bit-identical to HmmMapMatcher::Match() on that trajectory — same edges,
// same start_time, same error. Finish() is non-destructive: it decodes the
// lattice built so far, so callers may decode mid-stream (e.g. for
// provisional routes) and keep feeding.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "mapmatch/hmm_matcher.h"
#include "traj/types.h"

namespace rl4oasd::mapmatch {

/// One instance tracks one vehicle's in-flight trajectory. Not thread-safe;
/// use one instance per stream (they share the matcher's immutable index).
class StreamingMatcher {
 public:
  /// The matcher supplies the network, config, and spatial index; it must
  /// outlive this object.
  explicit StreamingMatcher(const HmmMapMatcher* matcher) : matcher_(matcher) {}

  /// Starts a new trajectory, discarding any in-flight state.
  void Reset(int64_t trajectory_id) {
    id_ = trajectory_id;
    points_fed_ = 0;
    scratch_.lattice.Clear();
  }

  /// Feeds the next GPS fix. Returns true if the fix produced a lattice
  /// layer (false: no road within the candidate radius — the fix is dropped,
  /// exactly as batch matching drops it).
  bool MatchPoint(const traj::RawPoint& pt);

  /// Decodes the lattice built so far; bit-identical to batch Match() over
  /// the fixes fed since Reset(). Non-destructive.
  Result<traj::MapMatchedTrajectory> Finish();

  /// All gap-split pieces, in time order; bit-identical to batch
  /// MatchSegments(). Non-destructive.
  Result<std::vector<traj::MapMatchedTrajectory>> FinishSegments();

  int64_t trajectory_id() const { return id_; }
  size_t points_fed() const { return points_fed_; }
  size_t num_layers() const { return scratch_.lattice.layers.size(); }

 private:
  const HmmMapMatcher* matcher_;
  int64_t id_ = 0;
  size_t points_fed_ = 0;
  internal::MatchScratch scratch_;
};

}  // namespace rl4oasd::mapmatch
