#include "nn/adam.h"

#include <cmath>

namespace rl4oasd::nn {

AdamOptimizer::AdamOptimizer(ParameterRegistry* registry, AdamConfig config)
    : registry_(registry), config_(config) {
  m_.reserve(registry->params().size());
  v_.reserve(registry->params().size());
  for (const auto* p : registry->params()) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void AdamOptimizer::Step() {
  ++t_;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const auto& params = registry_->params();
  for (size_t k = 0; k < params.size(); ++k) {
    Parameter* p = params[k];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    const size_t n = p->value.size();
    for (size_t i = 0; i < n; ++i) {
      float gi = g[i] + config_.weight_decay * w[i];
      m[i] = b1 * m[i] + (1.0f - b1) * gi;
      v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
      const float mhat = m[i] / bias1;
      const float vhat = v[i] / bias2;
      w[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

void SgdOptimizer::Step() {
  for (Parameter* p : registry_->params()) {
    float* w = p->value.data();
    const float* g = p->grad.data();
    for (size_t i = 0; i < p->value.size(); ++i) w[i] -= lr_ * g[i];
  }
}

}  // namespace rl4oasd::nn
