#include "nn/adam.h"

#include <cmath>

namespace rl4oasd::nn {

AdamOptimizer::AdamOptimizer(ParameterRegistry* registry, AdamConfig config)
    : registry_(registry), config_(config) {
  m_.reserve(registry->params().size());
  v_.reserve(registry->params().size());
  for (const auto* p : registry->params()) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void AdamOptimizer::Step() {
  ++t_;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const auto& params = registry_->params();
  if (active_rows_.empty()) active_rows_.resize(params.size());
  for (size_t k = 0; k < params.size(); ++k) {
    Parameter* p = params[k];
    auto update_row = [&](float* w, const float* g, float* m, float* v,
                          size_t n) {
      for (size_t i = 0; i < n; ++i) {
        float gi = g[i] + config_.weight_decay * w[i];
        m[i] = b1 * m[i] + (1.0f - b1) * gi;
        v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
        const float mhat = m[i] / bias1;
        const float vhat = v[i] / bias2;
        w[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
      }
    };
    // Row-sparse parameters (embedding tables): a row whose gradient is
    // zero AND whose moments are zero is an exact fixed point of the
    // update when weight decay is off (m and v stay 0, the step is
    // lr * 0 / (sqrt(0) + eps) = 0, and w - 0.0f == w for every float), so
    // only rows ever touched since this optimizer started need work. The
    // active set is sticky: once a row has nonzero moments they decay
    // multiplicatively and must keep updating every step.
    if (p->row_sparse && config_.weight_decay == 0.0f) {
      auto& active = active_rows_[k];
      if (active.empty()) active.resize(p->touched_bits.size(), 0);
      const size_t cols = p->value.cols();
      for (size_t wd = 0; wd < active.size(); ++wd) {
        active[wd] |= p->touched_bits[wd];
      }
      ForEachSetRow(active, [&](size_t r) {
        update_row(p->value.Row(r), p->grad.Row(r), m_[k].Row(r),
                   v_[k].Row(r), cols);
      });
    } else {
      update_row(p->value.data(), p->grad.data(), m_[k].data(), v_[k].data(),
                 p->value.size());
    }
  }
}

void SgdOptimizer::Step() {
  for (Parameter* p : registry_->params()) {
    // Zero-gradient rows of row-sparse parameters are exact no-ops.
    if (p->row_sparse) {
      const size_t cols = p->value.cols();
      ForEachSetRow(p->touched_bits, [&](size_t r) {
        float* w = p->value.Row(r);
        const float* g = p->grad.Row(r);
        for (size_t c = 0; c < cols; ++c) w[c] -= lr_ * g[c];
      });
      continue;
    }
    float* w = p->value.data();
    const float* g = p->grad.data();
    for (size_t i = 0; i < p->value.size(); ++i) w[i] -= lr_ * g[i];
  }
}

}  // namespace rl4oasd::nn
