// Adam and plain SGD optimizers over a ParameterRegistry.
#pragma once

#include <vector>

#include "nn/param.h"

namespace rl4oasd::nn {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

/// Adam (Kingma & Ba) with bias correction. Maintains per-parameter first and
/// second moment estimates keyed by registry position, so the registry must
/// not change between Step() calls.
class AdamOptimizer {
 public:
  AdamOptimizer(ParameterRegistry* registry, AdamConfig config);

  /// Applies one update from the accumulated gradients (does not zero them).
  void Step();

  /// Current learning rate (mutable for schedules / fine-tuning).
  float lr() const { return config_.lr; }
  void set_lr(float lr) { config_.lr = lr; }

  int64_t step_count() const { return t_; }

 private:
  ParameterRegistry* registry_;
  AdamConfig config_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;  // first moments, parallel to registry params
  std::vector<Matrix> v_;  // second moments
  /// Per-parameter bitmap of rows with (potentially) nonzero moments, for
  /// row-sparse parameters: only these plus newly-touched rows need the
  /// per-step decay walk (exact skip; see Step()).
  std::vector<std::vector<uint64_t>> active_rows_;
};

/// Vanilla SGD, used for cheap online fine-tuning (concept drift).
class SgdOptimizer {
 public:
  SgdOptimizer(ParameterRegistry* registry, float lr)
      : registry_(registry), lr_(lr) {}

  void Step();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  ParameterRegistry* registry_;
  float lr_;
};

}  // namespace rl4oasd::nn
