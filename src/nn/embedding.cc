#include "nn/embedding.h"

namespace rl4oasd::nn {

Embedding::Embedding(std::string name, size_t vocab, size_t dim,
                     rl4oasd::Rng* rng)
    : param_(std::move(name), vocab, dim) {
  param_.UniformInit(rng, 0.5f / static_cast<float>(dim));
  // Embedding backward touches one row per looked-up id; opting into
  // row-sparse tracking lets ZeroGrad / clipping / the optimizers skip the
  // untouched (all-zero) rest of the table exactly.
  param_.EnableRowSparseGrads();
}

void Embedding::LookupBatch(std::span<const size_t> ids, Matrix* out) const {
  const size_t d = dim();
  const size_t batch = ids.size();
  out->EnsureShape(d, batch);
  // Transposing gather: embedding rows scatter into columns of the
  // feature-major batch matrix.
  for (size_t b = 0; b < batch; ++b) {
    const float* row = Lookup(ids[b]);
    float* col = out->data() + b;
    for (size_t r = 0; r < d; ++r) col[r * batch] = row[r];
  }
}

}  // namespace rl4oasd::nn
