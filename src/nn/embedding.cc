#include "nn/embedding.h"

namespace rl4oasd::nn {

Embedding::Embedding(std::string name, size_t vocab, size_t dim,
                     rl4oasd::Rng* rng)
    : param_(std::move(name), vocab, dim) {
  param_.UniformInit(rng, 0.5f / static_cast<float>(dim));
}

}  // namespace rl4oasd::nn
