// Trainable embedding table: token id -> dense vector.
#pragma once

#include <span>
#include <string>

#include "nn/param.h"

namespace rl4oasd::nn {

/// Embedding lookup layer. Rows of `table()` are the vectors; gradients are
/// accumulated sparsely into the parameter's grad buffer via AccumulateGrad.
class Embedding {
 public:
  /// Creates a `vocab x dim` table initialized U(-0.5/dim, 0.5/dim).
  Embedding(std::string name, size_t vocab, size_t dim, rl4oasd::Rng* rng);

  size_t vocab() const { return param_.value.rows(); }
  size_t dim() const { return param_.value.cols(); }

  /// Pointer to the embedding row for `id` (valid until the table is resized).
  const float* Lookup(size_t id) const {
    RL4_CHECK_LT(id, vocab());
    return param_.value.Row(id);
  }
  float* MutableLookup(size_t id) {
    RL4_CHECK_LT(id, vocab());
    return param_.value.Row(id);
  }

  /// Batched gather: `out` is resized to (dim x ids.size()) feature-major —
  /// column b holds the embedding of ids[b] — ready to feed the batched
  /// GEMM path as the (I x B) input block.
  void LookupBatch(std::span<const size_t> ids, Matrix* out) const;

  /// Adds `grad` (length dim()) into the gradient row for `id`; `sink`
  /// (optional) redirects it into worker-local buffers with row tracking.
  void AccumulateGrad(size_t id, const float* grad,
                      GradientSink* sink = nullptr) {
    RL4_CHECK_LT(id, vocab());
    float* row;
    if (sink != nullptr) {
      row = sink->Find(&param_)->Row(id);
      sink->TouchRow(&param_, id);
    } else {
      row = param_.grad.Row(id);
      param_.TouchGradRow(id);
    }
    for (size_t i = 0; i < dim(); ++i) row[i] += grad[i];
  }

  /// Sequence accumulation: adds row t of `grads` (ids.size() x dim) into
  /// the gradient row for ids[t], in ascending t — the exact per-step
  /// AccumulateGrad order (the scatter is inherently sparse; there is no
  /// GEMM to route through, only one pass). The sink path resolves the
  /// sink slot once for the whole sequence.
  void AccumulateGradSeq(std::span<const size_t> ids, const Matrix& grads,
                         GradientSink* sink = nullptr) {
    RL4_CHECK_EQ(grads.rows(), ids.size());
    RL4_CHECK_EQ(grads.cols(), dim());
    if (sink != nullptr) {
      sink->AccumulateRows(&param_, ids, grads);
      return;
    }
    const size_t d = dim();
    for (size_t t = 0; t < ids.size(); ++t) {
      const size_t id = ids[t];
      RL4_CHECK_LT(id, vocab());
      float* row = param_.grad.Row(id);
      param_.TouchGradRow(id);
      const float* src = grads.Row(t);
      for (size_t i = 0; i < d; ++i) row[i] += src[i];
    }
  }

  /// Overwrites the row for `id` with an externally pre-trained vector
  /// (used to load Toast-substitute embeddings into RSRNet).
  void SetRow(size_t id, const float* v) {
    float* row = param_.value.Row(id);
    for (size_t i = 0; i < dim(); ++i) row[i] = v[i];
  }

  Parameter* param() { return &param_; }
  const Parameter& param() const { return param_; }

  void RegisterParams(ParameterRegistry* registry) {
    registry->Register(&param_);
  }

 private:
  Parameter param_;
};

}  // namespace rl4oasd::nn
