// Trainable embedding table: token id -> dense vector.
#pragma once

#include <span>
#include <string>

#include "nn/param.h"

namespace rl4oasd::nn {

/// Embedding lookup layer. Rows of `table()` are the vectors; gradients are
/// accumulated sparsely into the parameter's grad buffer via AccumulateGrad.
class Embedding {
 public:
  /// Creates a `vocab x dim` table initialized U(-0.5/dim, 0.5/dim).
  Embedding(std::string name, size_t vocab, size_t dim, rl4oasd::Rng* rng);

  size_t vocab() const { return param_.value.rows(); }
  size_t dim() const { return param_.value.cols(); }

  /// Pointer to the embedding row for `id` (valid until the table is resized).
  const float* Lookup(size_t id) const {
    RL4_CHECK_LT(id, vocab());
    return param_.value.Row(id);
  }
  float* MutableLookup(size_t id) {
    RL4_CHECK_LT(id, vocab());
    return param_.value.Row(id);
  }

  /// Batched gather: `out` is resized to (dim x ids.size()) feature-major —
  /// column b holds the embedding of ids[b] — ready to feed the batched
  /// GEMM path as the (I x B) input block.
  void LookupBatch(std::span<const size_t> ids, Matrix* out) const;

  /// Adds `grad` (length dim()) into the gradient row for `id`.
  void AccumulateGrad(size_t id, const float* grad) {
    RL4_CHECK_LT(id, vocab());
    float* row = param_.grad.Row(id);
    for (size_t i = 0; i < dim(); ++i) row[i] += grad[i];
  }

  /// Overwrites the row for `id` with an externally pre-trained vector
  /// (used to load Toast-substitute embeddings into RSRNet).
  void SetRow(size_t id, const float* v) {
    float* row = param_.value.Row(id);
    for (size_t i = 0; i < dim(); ++i) row[i] = v[i];
  }

  Parameter* param() { return &param_; }
  const Parameter& param() const { return param_; }

  void RegisterParams(ParameterRegistry* registry) {
    registry->Register(&param_);
  }

 private:
  Parameter param_;
};

}  // namespace rl4oasd::nn
