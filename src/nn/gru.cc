#include "nn/gru.h"

#include <cmath>

#include "common/logging.h"

namespace rl4oasd::nn {

Gru::Gru(std::string name, size_t input_dim, size_t hidden_dim,
         rl4oasd::Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_(name + ".wx", 3 * hidden_dim, input_dim),
      wh_(name + ".wh", 3 * hidden_dim, hidden_dim),
      b_(name + ".b", 1, 3 * hidden_dim) {
  wx_.XavierInit(rng);
  wh_.XavierInit(rng);
  // Positive update-gate bias starts the network close to h = h_prev
  // (identity), the GRU analogue of the LSTM forget-bias trick.
  for (size_t i = 0; i < hidden_dim_; ++i) {
    b_.value(0, i) = 1.0f;
  }
}

void Gru::ComputeGates(const float* x, const float* h_prev, float* gates,
                       float* q) const {
  // Pre-activations from the input path for all three blocks. Recurrent
  // contributions are summed as their own product chains and added once —
  // the association the batched GEMM path uses, so the paths agree
  // bit-for-bit.
  MatVec(wx_.value, x, gates);
  FinishGates(h_prev, gates, q);
}

void Gru::FinishGates(const float* h_prev, float* gates, float* q) const {
  const size_t H = hidden_dim_;
  // z and r blocks: (Wx x + b) + U h_prev, then sigmoid.
  for (size_t r = 0; r < 2 * H; ++r) {
    gates[r] = Sigmoid(gates[r] + b_.value(0, r) +
                       Dot(wh_.value.Row(r), h_prev, H));
  }
  // q = r ⊙ h_prev feeds the candidate's recurrent term.
  for (size_t i = 0; i < H; ++i) q[i] = gates[H + i] * h_prev[i];
  // n block: (Wx x + b) + Un q, then tanh.
  for (size_t r = 2 * H; r < 3 * H; ++r) {
    gates[r] = Tanh(gates[r] + b_.value(0, r) +
                         Dot(wh_.value.Row(r), q, H));
  }
}

void Gru::StepForward(const float* x, GruState* state) const {
  const size_t H = hidden_dim_;
  Vec gates(3 * H);
  Vec q(H);
  ComputeGates(x, state->h.data(), gates.data(), q.data());
  const float* z = gates.data();
  const float* n = gates.data() + 2 * H;
  for (size_t i = 0; i < H; ++i) {
    state->h[i] = (1.0f - z[i]) * n[i] + z[i] * state->h[i];
  }
}

void Gru::StepForwardBatch(const Matrix& x, Matrix* h_mat) const {
  const size_t H = hidden_dim_;
  const size_t B = x.cols();
  RL4_CHECK_EQ(x.rows(), input_dim_);
  RL4_CHECK_EQ(h_mat->rows(), H);
  RL4_CHECK_EQ(h_mat->cols(), B);
  // Mirrors the scalar ComputeGates accumulation order per gate block:
  // Wx x, then + b, then + U (h_prev or q), then the activation.
  // Thread-local scratch, fully overwritten every call.
  static thread_local Matrix gates;  // 3H x B
  MatMul(wx_.value, x, &gates);
  AddBiasPerRow(&gates, b_.value.Row(0));
  const size_t hb = H * B;
  float* g = gates.data();
  const float* h_prev = h_mat->data();
  // z and r blocks (rows [0, 2H)): += U h_prev, sigmoid.
  Gemm(wh_.value.data(), 2 * H, H, wh_.value.cols(), h_prev, B, B, g, B,
       /*accumulate=*/true);
  for (size_t i = 0; i < 2 * hb; ++i) g[i] = Sigmoid(g[i]);
  // q = r ⊙ h_prev feeds the candidate's recurrent term.
  static thread_local Matrix q;
  q.EnsureShape(H, B);
  const float* r = g + hb;
  float* qd = q.data();
  for (size_t i = 0; i < hb; ++i) qd[i] = r[i] * h_prev[i];
  // n block (rows [2H, 3H)): += Un q, tanh.
  Gemm(wh_.value.Row(2 * H), H, H, wh_.value.cols(), qd, B, B, g + 2 * hb, B,
       /*accumulate=*/true);
  for (size_t i = 2 * hb; i < 3 * hb; ++i) g[i] = Tanh(g[i]);
  // Blend: h = (1 - z) ⊙ n + z ⊙ h_prev.
  const float* z = g;
  const float* n = g + 2 * hb;
  float* h = h_mat->data();
  for (size_t i = 0; i < hb; ++i) {
    h[i] = (1.0f - z[i]) * n[i] + z[i] * h[i];
  }
}

std::vector<GruStepCache> Gru::Forward(
    const std::vector<const float*>& inputs) const {
  const size_t H = hidden_dim_;
  const size_t T = inputs.size();
  std::vector<GruStepCache> caches(T);
  if (T == 0) return caches;
  // Input projection for all timesteps in one GEMM (see Lstm::Forward).
  static thread_local Matrix xf;   // I x T
  static thread_local Matrix wxx;  // 3H x T
  xf.EnsureShape(input_dim_, T);
  for (size_t t = 0; t < T; ++t) {
    const float* x = inputs[t];
    float* col = xf.data() + t;
    for (size_t r = 0; r < input_dim_; ++r) col[r * T] = x[r];
  }
  MatMul(wx_.value, xf, &wxx);
  Vec h_prev(H, 0.0f);
  for (size_t t = 0; t < T; ++t) {
    GruStepCache& cache = caches[t];
    cache.x.assign(inputs[t], inputs[t] + input_dim_);
    cache.gates.resize(3 * H);
    cache.q.resize(H);
    const float* wcol = wxx.data() + t;
    for (size_t r = 0; r < 3 * H; ++r) cache.gates[r] = wcol[r * T];
    FinishGates(h_prev.data(), cache.gates.data(), cache.q.data());
    cache.h.resize(H);
    const float* z = cache.gates.data();
    const float* n = cache.gates.data() + 2 * H;
    for (size_t i = 0; i < H; ++i) {
      cache.h[i] = (1.0f - z[i]) * n[i] + z[i] * h_prev[i];
    }
    h_prev = cache.h;
  }
  return caches;
}

void Gru::Backward(const std::vector<GruStepCache>& caches,
                   const std::vector<Vec>& d_h, std::vector<Vec>* d_x) {
  RL4_CHECK_EQ(caches.size(), d_h.size());
  const size_t H = hidden_dim_;
  const size_t T = caches.size();
  if (d_x != nullptr) {
    d_x->assign(T, Vec(input_dim_, 0.0f));
  }
  Vec dh_next(H, 0.0f);   // recurrent gradient from step t+1
  Vec d_gates(3 * H);     // pre-activation gradients [dz, dr, dn]
  Vec d_q(H);
  const Vec zero(H, 0.0f);
  for (size_t t = T; t-- > 0;) {
    const GruStepCache& cache = caches[t];
    const float* h_prev = (t == 0) ? zero.data() : caches[t - 1].h.data();
    const float* z = cache.gates.data();
    const float* r = cache.gates.data() + H;
    const float* n = cache.gates.data() + 2 * H;

    // dn (pre-activation) and the direct h_prev path through the blend.
    Vec dh_prev(H, 0.0f);
    for (size_t i = 0; i < H; ++i) {
      const float dh = d_h[t][i] + dh_next[i];
      const float dz = dh * (h_prev[i] - n[i]);
      const float dn = dh * (1.0f - z[i]);
      dh_prev[i] = dh * z[i];
      d_gates[i] = dz * z[i] * (1.0f - z[i]);
      d_gates[2 * H + i] = dn * (1.0f - n[i] * n[i]);
    }
    // d_q = Un^T dn_pre; then dr = d_q ⊙ h_prev and dh_prev += d_q ⊙ r.
    std::fill(d_q.begin(), d_q.end(), 0.0f);
    for (size_t row = 0; row < H; ++row) {
      const float g = d_gates[2 * H + row];
      const float* w = wh_.value.Row(2 * H + row);
      for (size_t c = 0; c < H; ++c) d_q[c] += w[c] * g;
    }
    for (size_t i = 0; i < H; ++i) {
      const float dr = d_q[i] * h_prev[i];
      d_gates[H + i] = dr * r[i] * (1.0f - r[i]);
      dh_prev[i] += d_q[i] * r[i];
    }

    // Parameter gradients. wx and b take the full 3H gate-gradient block;
    // wh splits: z/r rows pair with h_prev, n rows pair with q.
    OuterAccum(&wx_.grad, d_gates.data(), cache.x.data());
    float* db = b_.grad.Row(0);
    for (size_t i = 0; i < 3 * H; ++i) db[i] += d_gates[i];
    for (size_t row = 0; row < 2 * H; ++row) {
      const float g = d_gates[row];
      float* w = wh_.grad.Row(row);
      for (size_t c = 0; c < H; ++c) w[c] += g * h_prev[c];
    }
    for (size_t row = 0; row < H; ++row) {
      const float g = d_gates[2 * H + row];
      float* w = wh_.grad.Row(2 * H + row);
      for (size_t c = 0; c < H; ++c) w[c] += g * cache.q[c];
    }

    // Input gradient.
    if (d_x != nullptr) {
      MatTransVecAccum(wx_.value, d_gates.data(), (*d_x)[t].data());
    }

    // Recurrent gradient into step t-1: the blend path (dh_prev) plus the
    // z and r pre-activation paths through Uz/Ur.
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    if (t > 0) {
      for (size_t row = 0; row < 2 * H; ++row) {
        const float g = d_gates[row];
        const float* w = wh_.value.Row(row);
        for (size_t c = 0; c < H; ++c) dh_next[c] += w[c] * g;
      }
      for (size_t i = 0; i < H; ++i) dh_next[i] += dh_prev[i];
    }
  }
}

void Gru::BackwardSeq(const std::vector<GruStepCache>& caches,
                      const Matrix& d_h, Matrix* d_x, GradientSink* sink) {
  const size_t H = hidden_dim_;
  const size_t I = input_dim_;
  const size_t T = caches.size();
  RL4_CHECK_EQ(d_h.rows(), T);
  if (T == 0) {
    if (d_x != nullptr) d_x->EnsureShape(0, I);
    return;
  }
  RL4_CHECK_EQ(d_h.cols(), H);
  Matrix* wx_g = sink != nullptr ? sink->Find(&wx_) : &wx_.grad;
  Matrix* wh_g = sink != nullptr ? sink->Find(&wh_) : &wh_.grad;
  Matrix* b_g = sink != nullptr ? sink->Find(&b_) : &b_.grad;
  if (sink != nullptr) {
    sink->TouchAll(&wx_);
    sink->TouchAll(&wh_);
    sink->TouchAll(&b_);
  }

  // Timestep-packed layouts, reversed-time columns/rows so the GEMM
  // product chains replay the per-step descending-t accumulation order
  // (see Lstm::BackwardSeq). wh splits: z/r rows pair with h_prev (all T
  // steps; t = 0 pairs with the zero state, exactly as the per-step loop
  // does), n rows pair with q.
  static thread_local Matrix dg;          // 3H x T, column j <-> t = T-1-j
  static thread_local Matrix dg_t;        // T x 3H, row t
  static thread_local Matrix x_rev;       // T x I, row j <-> x at t = T-1-j
  static thread_local Matrix h_prev_rev;  // T x H, row j <-> h_prev at t
  static thread_local Matrix q_rev;       // T x H, row j <-> q at t = T-1-j
  dg.EnsureShape(3 * H, T);
  dg_t.EnsureShape(T, 3 * H);
  x_rev.EnsureShape(T, I);
  h_prev_rev.EnsureShape(T, H);
  q_rev.EnsureShape(T, H);

  Vec dh_next(H, 0.0f);
  Vec d_q(H);
  Vec dh_prev(H);
  const Vec zero(H, 0.0f);
  for (size_t t = T; t-- > 0;) {
    const GruStepCache& cache = caches[t];
    const size_t j = T - 1 - t;
    const float* h_prev = (t == 0) ? zero.data() : caches[t - 1].h.data();
    const float* z = cache.gates.data();
    const float* r = cache.gates.data() + H;
    const float* n = cache.gates.data() + 2 * H;
    float* d_gates = dg_t.Row(t);
    const float* dht = d_h.Row(t);

    // dz / dn (pre-activation) and the direct h_prev path through the
    // blend — the exact per-step math.
    for (size_t i = 0; i < H; ++i) {
      const float dh = dht[i] + dh_next[i];
      const float dz = dh * (h_prev[i] - n[i]);
      const float dn = dh * (1.0f - z[i]);
      dh_prev[i] = dh * z[i];
      d_gates[i] = dz * z[i] * (1.0f - z[i]);
      d_gates[2 * H + i] = dn * (1.0f - n[i] * n[i]);
    }
    // d_q = Un^T dn_pre; then dr = d_q ⊙ h_prev and dh_prev += d_q ⊙ r.
    std::fill(d_q.begin(), d_q.end(), 0.0f);
    for (size_t row = 0; row < H; ++row) {
      const float g = d_gates[2 * H + row];
      const float* w = wh_.value.Row(2 * H + row);
      for (size_t c = 0; c < H; ++c) d_q[c] += w[c] * g;
    }
    for (size_t i = 0; i < H; ++i) {
      const float dr = d_q[i] * h_prev[i];
      d_gates[H + i] = dr * r[i] * (1.0f - r[i]);
      dh_prev[i] += d_q[i] * r[i];
    }

    // Scatter into the reversed-time layouts.
    {
      float* col = dg.data() + j;
      for (size_t row = 0; row < 3 * H; ++row) col[row * T] = d_gates[row];
    }
    std::copy(cache.x.begin(), cache.x.end(), x_rev.Row(j));
    std::copy(h_prev, h_prev + H, h_prev_rev.Row(j));
    std::copy(cache.q.begin(), cache.q.end(), q_rev.Row(j));

    // Bias gradient in the per-step order.
    float* db = b_g->Row(0);
    for (size_t i = 0; i < 3 * H; ++i) db[i] += d_gates[i];

    // Recurrent gradient into step t-1 (per-step code).
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    if (t > 0) {
      for (size_t row = 0; row < 2 * H; ++row) {
        const float g = d_gates[row];
        const float* w = wh_.value.Row(row);
        for (size_t c = 0; c < H; ++c) dh_next[c] += w[c] * g;
      }
      for (size_t i = 0; i < H; ++i) dh_next[i] += dh_prev[i];
    }
  }

  // Weight gradients as GEMMs: wx over all gates, wh split per pairing.
  Gemm(dg.data(), 3 * H, T, T, x_rev.data(), I, I, wx_g->data(), I,
       /*accumulate=*/true);
  Gemm(dg.data(), 2 * H, T, T, h_prev_rev.data(), H, H, wh_g->data(), H,
       /*accumulate=*/true);
  Gemm(dg.Row(2 * H), H, T, T, q_rev.data(), H, H, wh_g->Row(2 * H), H,
       /*accumulate=*/true);
  // d_x = DG_t * Wx.
  if (d_x != nullptr) {
    d_x->EnsureShape(T, I);
    Gemm(dg_t.data(), T, 3 * H, 3 * H, wx_.value.data(), I, I, d_x->data(),
         I, /*accumulate=*/false);
  }
}

}  // namespace rl4oasd::nn
