// GRU (Cho et al. 2014) with full backpropagation through time, mirroring
// the Lstm class. The paper uses an LSTM in RSRNet; the GRU is provided for
// the architecture-ablation bench (one fewer gate, ~25% fewer recurrent
// weights, same streaming O(H^2) step).
#pragma once

#include <string>
#include <vector>

#include "nn/param.h"

namespace rl4oasd::nn {

/// Recurrent state of a streaming GRU: hidden vector only (no cell state).
struct GruState {
  Vec h;

  explicit GruState(size_t hidden = 0) : h(hidden, 0.0f) {}
  void Reset() { std::fill(h.begin(), h.end(), 0.0f); }
};

/// Recurrent state of a batch of B streaming GRUs: a feature-major (H x B)
/// matrix whose column b is sample b's hidden state.
struct GruBatchState {
  Matrix h;  // H x B

  GruBatchState() = default;
  GruBatchState(size_t hidden, size_t batch) : h(hidden, batch) {}
  void Reset() { h.SetZero(); }
};

/// Per-step cache retained by sequence-mode forward for BPTT.
struct GruStepCache {
  Vec x;      // input at this step
  Vec gates;  // post-activation [z, r, n], length 3H
  Vec q;      // r ⊙ h_prev (input to the candidate's recurrent term)
  Vec h;      // hidden output
};

/// Single-layer GRU:
///   z = σ(Wz x + Uz h⁻ + bz)          (update gate)
///   r = σ(Wr x + Ur h⁻ + br)          (reset gate)
///   n = tanh(Wn x + Un (r ⊙ h⁻) + bn)  (candidate)
///   h = (1 − z) ⊙ n + z ⊙ h⁻
class Gru {
 public:
  Gru(std::string name, size_t input_dim, size_t hidden_dim,
      rl4oasd::Rng* rng);

  size_t input_dim() const { return input_dim_; }
  size_t hidden_dim() const { return hidden_dim_; }

  /// Streaming step (inference only; no caches kept).
  void StepForward(const float* x, GruState* state) const;

  /// Batched streaming step over B independent streams: x is (input_dim x B)
  /// column-per-sample, `state->h` is (H x B), updated in place. The gate
  /// matmuls become (3H x I) * (I x B) / (2H x H) * (H x B) / (H x H) *
  /// (H x B) GEMMs; column b matches StepForward on sample b (<= 1e-6
  /// relative; see Gemm's equivalence contract). Inference only.
  void StepForwardBatch(const Matrix& x, GruBatchState* state) const {
    StepForwardBatch(x, &state->h);
  }

  /// As above on a raw (H x B) hidden matrix.
  void StepForwardBatch(const Matrix& x, Matrix* h) const;

  /// Sequence forward from the zero state. The input projection of all
  /// timesteps runs as one (3H x I) * (I x T) GEMM; bit-identical to
  /// stepping ComputeGates.
  std::vector<GruStepCache> Forward(
      const std::vector<const float*>& inputs) const;

  /// Per-step reference BPTT: `d_h` is the gradient flowing into each
  /// step's hidden output. Parameter gradients accumulate; `d_x`
  /// (optional) receives per-step input gradients. Production training
  /// uses BackwardSeq; this stays as the audited reference it is tested
  /// against.
  void Backward(const std::vector<GruStepCache>& caches,
                const std::vector<Vec>& d_h, std::vector<Vec>* d_x);

  /// GEMM-backed BPTT over (T x H) `d_h` rows; `d_x` (optional) resized to
  /// (T x input_dim). Weight gradients run as GEMMs over reversed-time-
  /// packed matrices (z/r rows pair with h_prev, n rows with q), input
  /// gradients as one forward-order GEMM. Bit-identical to Backward from
  /// zeroed gradient buffers; `sink` redirects parameter gradients for the
  /// concurrent worker path (weights are only read).
  void BackwardSeq(const std::vector<GruStepCache>& caches, const Matrix& d_h,
                   Matrix* d_x, GradientSink* sink = nullptr);

  void RegisterParams(ParameterRegistry* registry) {
    registry->Register(&wx_);
    registry->Register(&wh_);
    registry->Register(&b_);
  }

 private:
  /// Computes post-activation gates [z, r, n] and q for one step.
  void ComputeGates(const float* x, const float* h_prev, float* gates,
                    float* q) const;

  /// The recurrent tail of ComputeGates: `gates` already holds Wx x and
  /// gets + b + recurrent terms and the activations.
  void FinishGates(const float* h_prev, float* gates, float* q) const;

  size_t input_dim_;
  size_t hidden_dim_;
  Parameter wx_;  // 3H x input_dim
  Parameter wh_;  // 3H x hidden_dim (rows [2H,3H) multiply q, not h_prev)
  Parameter b_;   // 1 x 3H
};

}  // namespace rl4oasd::nn
