#include "nn/linear.h"

namespace rl4oasd::nn {

Linear::Linear(std::string name, size_t in_dim, size_t out_dim,
               rl4oasd::Rng* rng)
    : w_(name + ".w", out_dim, in_dim), b_(name + ".b", 1, out_dim) {
  w_.XavierInit(rng);
}

void Linear::Forward(const float* x, float* out) const {
  MatVec(w_.value, x, out);
  const float* b = b_.value.Row(0);
  for (size_t i = 0; i < out_dim(); ++i) out[i] += b[i];
}

void Linear::ForwardBatch(const Matrix& x, Matrix* out) const {
  RL4_CHECK_EQ(x.rows(), in_dim());
  MatMul(w_.value, x, out);
  AddBiasPerRow(out, b_.value.Row(0));
}

void Linear::Backward(const float* x, const float* d_out, float* d_x) {
  OuterAccum(&w_.grad, d_out, x);
  float* db = b_.grad.Row(0);
  for (size_t i = 0; i < out_dim(); ++i) db[i] += d_out[i];
  if (d_x != nullptr) {
    MatTransVecAccum(w_.value, d_out, d_x);
  }
}

}  // namespace rl4oasd::nn
