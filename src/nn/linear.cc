#include "nn/linear.h"

namespace rl4oasd::nn {

Linear::Linear(std::string name, size_t in_dim, size_t out_dim,
               rl4oasd::Rng* rng)
    : w_(name + ".w", out_dim, in_dim), b_(name + ".b", 1, out_dim) {
  w_.XavierInit(rng);
}

void Linear::Forward(const float* x, float* out) const {
  MatVec(w_.value, x, out);
  const float* b = b_.value.Row(0);
  for (size_t i = 0; i < out_dim(); ++i) out[i] += b[i];
}

void Linear::ForwardBatch(const Matrix& x, Matrix* out) const {
  RL4_CHECK_EQ(x.rows(), in_dim());
  MatMul(w_.value, x, out);
  AddBiasPerRow(out, b_.value.Row(0));
}

void Linear::Backward(const float* x, const float* d_out, float* d_x) {
  OuterAccum(&w_.grad, d_out, x);
  float* db = b_.grad.Row(0);
  for (size_t i = 0; i < out_dim(); ++i) db[i] += d_out[i];
  if (d_x != nullptr) {
    MatTransVecAccum(w_.value, d_out, d_x);
  }
}

void Linear::BackwardSeq(const Matrix& x_seq, const Matrix& d_out_seq,
                         Matrix* d_x_seq, GradientSink* sink) {
  const size_t T = x_seq.rows();
  const size_t in = in_dim();
  const size_t out = out_dim();
  RL4_CHECK_EQ(x_seq.cols(), in);
  RL4_CHECK_EQ(d_out_seq.rows(), T);
  RL4_CHECK_EQ(d_out_seq.cols(), out);
  Matrix* w_g = sink != nullptr ? sink->Find(&w_) : &w_.grad;
  Matrix* b_g = sink != nullptr ? sink->Find(&b_) : &b_.grad;
  if (sink != nullptr) {
    sink->TouchAll(&w_);
    sink->TouchAll(&b_);
  }
  if (T == 0) {
    if (d_x_seq != nullptr) d_x_seq->EnsureShape(0, in);
    return;
  }
  // dW += d_out^T * x as one GEMM; the ascending-k chain is the ascending-
  // position order of the per-step OuterAccum calls.
  static thread_local Matrix d_out_fm;  // out x T
  d_out_fm.EnsureShape(out, T);
  for (size_t t = 0; t < T; ++t) {
    const float* row = d_out_seq.Row(t);
    float* col = d_out_fm.data() + t;
    for (size_t r = 0; r < out; ++r) col[r * T] = row[r];
  }
  Gemm(d_out_fm.data(), out, T, T, x_seq.data(), in, in, w_g->data(), in,
       /*accumulate=*/true);
  float* db = b_g->Row(0);
  for (size_t r = 0; r < out; ++r) {
    const float* row = d_out_fm.Row(r);
    for (size_t t = 0; t < T; ++t) db[r] += row[t];
  }
  if (d_x_seq != nullptr) {
    d_x_seq->EnsureShape(T, in);
    Gemm(d_out_seq.data(), T, out, out, w_.value.data(), in, in,
         d_x_seq->data(), in, /*accumulate=*/false);
  }
}

}  // namespace rl4oasd::nn
