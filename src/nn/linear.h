// Fully connected layer y = W x + b with manual forward/backward.
#pragma once

#include <string>

#include "nn/param.h"

namespace rl4oasd::nn {

/// Affine layer. Forward writes `out` (length out_dim); Backward accumulates
/// weight/bias gradients and optionally the input gradient.
class Linear {
 public:
  Linear(std::string name, size_t in_dim, size_t out_dim, rl4oasd::Rng* rng);

  size_t in_dim() const { return w_.value.cols(); }
  size_t out_dim() const { return w_.value.rows(); }

  /// out = W x + b.
  void Forward(const float* x, float* out) const;

  /// Batched forward: x is (in_dim x B) column-per-sample; out is resized to
  /// (out_dim x B) with column b equal to Forward on x's column b (<= 1e-6
  /// relative; see Gemm's equivalence contract).
  void ForwardBatch(const Matrix& x, Matrix* out) const;

  /// Given d(out), accumulates dW += d_out outer x, db += d_out, and (when
  /// `d_x` is non-null) d_x += W^T d_out.
  void Backward(const float* x, const float* d_out, float* d_x);

  /// Sequence backward over T positions: `x_seq` is (T x in_dim) and
  /// `d_out_seq` (T x out_dim), row per position. The per-position outer
  /// products run as one GEMM (ascending positions — bit-identical to
  /// calling Backward per row on zeroed gradients); `d_x_seq` (optional)
  /// is resized to (T x in_dim). `sink` redirects the parameter gradients
  /// (worker-local accumulation; weights are only read).
  void BackwardSeq(const Matrix& x_seq, const Matrix& d_out_seq,
                   Matrix* d_x_seq, GradientSink* sink = nullptr);

  Parameter* weight() { return &w_; }
  Parameter* bias() { return &b_; }

  void RegisterParams(ParameterRegistry* registry) {
    registry->Register(&w_);
    registry->Register(&b_);
  }

 private:
  Parameter w_;  // out_dim x in_dim
  Parameter b_;  // 1 x out_dim
};

}  // namespace rl4oasd::nn
