#include "nn/lstm.h"

#include <cmath>

namespace rl4oasd::nn {

Lstm::Lstm(std::string name, size_t input_dim, size_t hidden_dim,
           rl4oasd::Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_(name + ".wx", 4 * hidden_dim, input_dim),
      wh_(name + ".wh", 4 * hidden_dim, hidden_dim),
      b_(name + ".b", 1, 4 * hidden_dim) {
  wx_.XavierInit(rng);
  wh_.XavierInit(rng);
  // Forget-gate bias of 1.0 is the standard trick for gradient flow early in
  // training.
  for (size_t i = 0; i < hidden_dim_; ++i) {
    b_.value(0, hidden_dim_ + i) = 1.0f;
  }
}

void Lstm::ComputeGates(const float* x, const float* h_prev,
                        float* gates) const {
  const size_t h4 = 4 * hidden_dim_;
  MatVec(wx_.value, x, gates);
  // gates = (Wx x + b) + Wh h_prev, with the recurrent dot product summed
  // on its own before the single add — the same association the batched
  // GEMM path uses (fresh product chain, added to C once), so the two
  // paths agree bit-for-bit.
  for (size_t r = 0; r < h4; ++r) {
    gates[r] = gates[r] + b_.value(0, r) +
               Dot(wh_.value.Row(r), h_prev, hidden_dim_);
  }
  // Activations: [i, f] sigmoid, [g] tanh, [o] sigmoid.
  const size_t H = hidden_dim_;
  for (size_t i = 0; i < H; ++i) gates[i] = Sigmoid(gates[i]);
  for (size_t i = H; i < 2 * H; ++i) gates[i] = Sigmoid(gates[i]);
  for (size_t i = 2 * H; i < 3 * H; ++i) gates[i] = Tanh(gates[i]);
  for (size_t i = 3 * H; i < 4 * H; ++i) gates[i] = Sigmoid(gates[i]);
}

void Lstm::StepForward(const float* x, LstmState* state) const {
  const size_t H = hidden_dim_;
  Vec gates(4 * H);
  ComputeGates(x, state->h.data(), gates.data());
  const float* ig = gates.data();
  const float* fg = gates.data() + H;
  const float* gg = gates.data() + 2 * H;
  const float* og = gates.data() + 3 * H;
  for (size_t i = 0; i < H; ++i) {
    state->c[i] = fg[i] * state->c[i] + ig[i] * gg[i];
    state->h[i] = og[i] * Tanh(state->c[i]);
  }
}

void Lstm::StepForwardBatch(const Matrix& x, Matrix* h_mat,
                            Matrix* c_mat) const {
  const size_t H = hidden_dim_;
  const size_t B = x.cols();
  RL4_CHECK_EQ(x.rows(), input_dim_);
  RL4_CHECK_EQ(h_mat->rows(), H);
  RL4_CHECK_EQ(h_mat->cols(), B);
  RL4_CHECK_EQ(c_mat->rows(), H);
  RL4_CHECK_EQ(c_mat->cols(), B);
  // Same accumulation order as the scalar ComputeGates: Wx x, then + b,
  // then + Wh h_prev, then the activations. Thread-local scratch: fully
  // overwritten every call (MatMul resizes), so steady-state waves do no
  // allocation.
  static thread_local Matrix gates;  // 4H x B
  MatMul(wx_.value, x, &gates);
  AddBiasPerRow(&gates, b_.value.Row(0));
  MatMulAccum(wh_.value, *h_mat, &gates);
  float* g = gates.data();
  const size_t hb = H * B;
  for (size_t i = 0; i < hb; ++i) g[i] = Sigmoid(g[i]);                // i
  for (size_t i = hb; i < 2 * hb; ++i) g[i] = Sigmoid(g[i]);           // f
  for (size_t i = 2 * hb; i < 3 * hb; ++i) g[i] = Tanh(g[i]);     // g
  for (size_t i = 3 * hb; i < 4 * hb; ++i) g[i] = Sigmoid(g[i]);       // o
  const float* ig = g;
  const float* fg = g + hb;
  const float* gg = g + 2 * hb;
  const float* og = g + 3 * hb;
  float* c = c_mat->data();
  float* h = h_mat->data();
  for (size_t i = 0; i < hb; ++i) {
    c[i] = fg[i] * c[i] + ig[i] * gg[i];
    h[i] = og[i] * Tanh(c[i]);
  }
}

std::vector<LstmStepCache> Lstm::Forward(
    const std::vector<const float*>& inputs) const {
  const size_t H = hidden_dim_;
  std::vector<LstmStepCache> caches(inputs.size());
  Vec h_prev(H, 0.0f);
  Vec c_prev(H, 0.0f);
  for (size_t t = 0; t < inputs.size(); ++t) {
    LstmStepCache& cache = caches[t];
    cache.x.assign(inputs[t], inputs[t] + input_dim_);
    cache.gates.resize(4 * H);
    ComputeGates(inputs[t], h_prev.data(), cache.gates.data());
    cache.c_prev = c_prev;
    cache.c.resize(H);
    cache.tanh_c.resize(H);
    cache.h.resize(H);
    const float* ig = cache.gates.data();
    const float* fg = cache.gates.data() + H;
    const float* gg = cache.gates.data() + 2 * H;
    const float* og = cache.gates.data() + 3 * H;
    for (size_t i = 0; i < H; ++i) {
      cache.c[i] = fg[i] * c_prev[i] + ig[i] * gg[i];
      cache.tanh_c[i] = Tanh(cache.c[i]);
      cache.h[i] = og[i] * cache.tanh_c[i];
    }
    h_prev = cache.h;
    c_prev = cache.c;
  }
  return caches;
}

void Lstm::Backward(const std::vector<LstmStepCache>& caches,
                    const std::vector<Vec>& d_h, std::vector<Vec>* d_x) {
  RL4_CHECK_EQ(caches.size(), d_h.size());
  const size_t H = hidden_dim_;
  const size_t T = caches.size();
  if (d_x != nullptr) {
    d_x->assign(T, Vec(input_dim_, 0.0f));
  }
  Vec dc_next(H, 0.0f);   // dL/dc flowing from step t+1
  Vec dh_next(H, 0.0f);   // dL/dh flowing from step t+1 (recurrent path)
  Vec d_gates(4 * H);     // pre-activation gate gradients
  for (size_t t = T; t-- > 0;) {
    const LstmStepCache& cache = caches[t];
    const float* ig = cache.gates.data();
    const float* fg = cache.gates.data() + H;
    const float* gg = cache.gates.data() + 2 * H;
    const float* og = cache.gates.data() + 3 * H;
    for (size_t i = 0; i < H; ++i) {
      const float dh = d_h[t][i] + dh_next[i];
      const float dc = dh * og[i] * (1.0f - cache.tanh_c[i] * cache.tanh_c[i]) +
                       dc_next[i];
      const float di = dc * gg[i];
      const float df = dc * cache.c_prev[i];
      const float dg = dc * ig[i];
      const float dout = dh * cache.tanh_c[i];
      // Pre-activation gradients through sigmoid/tanh.
      d_gates[i] = di * ig[i] * (1.0f - ig[i]);
      d_gates[H + i] = df * fg[i] * (1.0f - fg[i]);
      d_gates[2 * H + i] = dg * (1.0f - gg[i] * gg[i]);
      d_gates[3 * H + i] = dout * og[i] * (1.0f - og[i]);
      dc_next[i] = dc * fg[i];
    }
    // Parameter gradients.
    OuterAccum(&wx_.grad, d_gates.data(), cache.x.data());
    const float* h_prev =
        (t == 0) ? nullptr : caches[t - 1].h.data();
    if (h_prev != nullptr) {
      OuterAccum(&wh_.grad, d_gates.data(), h_prev);
    }
    float* db = b_.grad.Row(0);
    for (size_t i = 0; i < 4 * H; ++i) db[i] += d_gates[i];
    // Input gradient.
    if (d_x != nullptr) {
      MatTransVecAccum(wx_.value, d_gates.data(), (*d_x)[t].data());
    }
    // Recurrent hidden gradient for step t-1.
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    if (t > 0) {
      MatTransVecAccum(wh_.value, d_gates.data(), dh_next.data());
    }
  }
}

}  // namespace rl4oasd::nn
