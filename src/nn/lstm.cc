#include "nn/lstm.h"

#include <cmath>

namespace rl4oasd::nn {

Lstm::Lstm(std::string name, size_t input_dim, size_t hidden_dim,
           rl4oasd::Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_(name + ".wx", 4 * hidden_dim, input_dim),
      wh_(name + ".wh", 4 * hidden_dim, hidden_dim),
      b_(name + ".b", 1, 4 * hidden_dim) {
  wx_.XavierInit(rng);
  wh_.XavierInit(rng);
  // Forget-gate bias of 1.0 is the standard trick for gradient flow early in
  // training.
  for (size_t i = 0; i < hidden_dim_; ++i) {
    b_.value(0, hidden_dim_ + i) = 1.0f;
  }
}

void Lstm::ComputeGates(const float* x, const float* h_prev,
                        float* gates) const {
  MatVec(wx_.value, x, gates);
  FinishGates(h_prev, gates);
}

void Lstm::FinishGates(const float* h_prev, float* gates) const {
  const size_t h4 = 4 * hidden_dim_;
  // gates = (Wx x + b) + Wh h_prev, with the recurrent dot product summed
  // on its own before the single add — the same association the batched
  // GEMM path uses (fresh product chain, added to C once), so the two
  // paths agree bit-for-bit.
  for (size_t r = 0; r < h4; ++r) {
    gates[r] = gates[r] + b_.value(0, r) +
               Dot(wh_.value.Row(r), h_prev, hidden_dim_);
  }
  // Activations: [i, f] sigmoid, [g] tanh, [o] sigmoid.
  const size_t H = hidden_dim_;
  for (size_t i = 0; i < H; ++i) gates[i] = Sigmoid(gates[i]);
  for (size_t i = H; i < 2 * H; ++i) gates[i] = Sigmoid(gates[i]);
  for (size_t i = 2 * H; i < 3 * H; ++i) gates[i] = Tanh(gates[i]);
  for (size_t i = 3 * H; i < 4 * H; ++i) gates[i] = Sigmoid(gates[i]);
}

void Lstm::StepForward(const float* x, LstmState* state) const {
  const size_t H = hidden_dim_;
  Vec gates(4 * H);
  ComputeGates(x, state->h.data(), gates.data());
  const float* ig = gates.data();
  const float* fg = gates.data() + H;
  const float* gg = gates.data() + 2 * H;
  const float* og = gates.data() + 3 * H;
  for (size_t i = 0; i < H; ++i) {
    state->c[i] = fg[i] * state->c[i] + ig[i] * gg[i];
    state->h[i] = og[i] * Tanh(state->c[i]);
  }
}

void Lstm::StepForwardBatch(const Matrix& x, Matrix* h_mat,
                            Matrix* c_mat) const {
  const size_t H = hidden_dim_;
  const size_t B = x.cols();
  RL4_CHECK_EQ(x.rows(), input_dim_);
  RL4_CHECK_EQ(h_mat->rows(), H);
  RL4_CHECK_EQ(h_mat->cols(), B);
  RL4_CHECK_EQ(c_mat->rows(), H);
  RL4_CHECK_EQ(c_mat->cols(), B);
  // Same accumulation order as the scalar ComputeGates: Wx x, then + b,
  // then + Wh h_prev, then the activations. Thread-local scratch: fully
  // overwritten every call (MatMul resizes), so steady-state waves do no
  // allocation.
  static thread_local Matrix gates;  // 4H x B
  MatMul(wx_.value, x, &gates);
  AddBiasPerRow(&gates, b_.value.Row(0));
  MatMulAccum(wh_.value, *h_mat, &gates);
  float* g = gates.data();
  const size_t hb = H * B;
  for (size_t i = 0; i < hb; ++i) g[i] = Sigmoid(g[i]);                // i
  for (size_t i = hb; i < 2 * hb; ++i) g[i] = Sigmoid(g[i]);           // f
  for (size_t i = 2 * hb; i < 3 * hb; ++i) g[i] = Tanh(g[i]);     // g
  for (size_t i = 3 * hb; i < 4 * hb; ++i) g[i] = Sigmoid(g[i]);       // o
  const float* ig = g;
  const float* fg = g + hb;
  const float* gg = g + 2 * hb;
  const float* og = g + 3 * hb;
  float* c = c_mat->data();
  float* h = h_mat->data();
  for (size_t i = 0; i < hb; ++i) {
    c[i] = fg[i] * c[i] + ig[i] * gg[i];
    h[i] = og[i] * Tanh(c[i]);
  }
}

std::vector<LstmStepCache> Lstm::Forward(
    const std::vector<const float*>& inputs) const {
  const size_t H = hidden_dim_;
  const size_t T = inputs.size();
  std::vector<LstmStepCache> caches(T);
  if (T == 0) return caches;
  // Input projection for all timesteps in one GEMM: pack the inputs
  // feature-major (I x T) and compute Wx * X as (4H x T). Each element is
  // the same ascending-k dot chain MatVec runs per step, so the gates are
  // bit-identical to stepping ComputeGates.
  static thread_local Matrix xf;  // I x T
  static thread_local Matrix wxx;  // 4H x T
  xf.EnsureShape(input_dim_, T);
  for (size_t t = 0; t < T; ++t) {
    const float* x = inputs[t];
    float* col = xf.data() + t;
    for (size_t r = 0; r < input_dim_; ++r) col[r * T] = x[r];
  }
  MatMul(wx_.value, xf, &wxx);
  Vec h_prev(H, 0.0f);
  Vec c_prev(H, 0.0f);
  for (size_t t = 0; t < T; ++t) {
    LstmStepCache& cache = caches[t];
    cache.x.assign(inputs[t], inputs[t] + input_dim_);
    cache.gates.resize(4 * H);
    const float* wcol = wxx.data() + t;
    for (size_t r = 0; r < 4 * H; ++r) cache.gates[r] = wcol[r * T];
    FinishGates(h_prev.data(), cache.gates.data());
    cache.c_prev = c_prev;
    cache.c.resize(H);
    cache.tanh_c.resize(H);
    cache.h.resize(H);
    const float* ig = cache.gates.data();
    const float* fg = cache.gates.data() + H;
    const float* gg = cache.gates.data() + 2 * H;
    const float* og = cache.gates.data() + 3 * H;
    for (size_t i = 0; i < H; ++i) {
      cache.c[i] = fg[i] * c_prev[i] + ig[i] * gg[i];
      cache.tanh_c[i] = Tanh(cache.c[i]);
      cache.h[i] = og[i] * cache.tanh_c[i];
    }
    h_prev = cache.h;
    c_prev = cache.c;
  }
  return caches;
}

void Lstm::Backward(const std::vector<LstmStepCache>& caches,
                    const std::vector<Vec>& d_h, std::vector<Vec>* d_x) {
  RL4_CHECK_EQ(caches.size(), d_h.size());
  const size_t H = hidden_dim_;
  const size_t T = caches.size();
  if (d_x != nullptr) {
    d_x->assign(T, Vec(input_dim_, 0.0f));
  }
  Vec dc_next(H, 0.0f);   // dL/dc flowing from step t+1
  Vec dh_next(H, 0.0f);   // dL/dh flowing from step t+1 (recurrent path)
  Vec d_gates(4 * H);     // pre-activation gate gradients
  for (size_t t = T; t-- > 0;) {
    const LstmStepCache& cache = caches[t];
    const float* ig = cache.gates.data();
    const float* fg = cache.gates.data() + H;
    const float* gg = cache.gates.data() + 2 * H;
    const float* og = cache.gates.data() + 3 * H;
    for (size_t i = 0; i < H; ++i) {
      const float dh = d_h[t][i] + dh_next[i];
      const float dc = dh * og[i] * (1.0f - cache.tanh_c[i] * cache.tanh_c[i]) +
                       dc_next[i];
      const float di = dc * gg[i];
      const float df = dc * cache.c_prev[i];
      const float dg = dc * ig[i];
      const float dout = dh * cache.tanh_c[i];
      // Pre-activation gradients through sigmoid/tanh.
      d_gates[i] = di * ig[i] * (1.0f - ig[i]);
      d_gates[H + i] = df * fg[i] * (1.0f - fg[i]);
      d_gates[2 * H + i] = dg * (1.0f - gg[i] * gg[i]);
      d_gates[3 * H + i] = dout * og[i] * (1.0f - og[i]);
      dc_next[i] = dc * fg[i];
    }
    // Parameter gradients.
    OuterAccum(&wx_.grad, d_gates.data(), cache.x.data());
    const float* h_prev =
        (t == 0) ? nullptr : caches[t - 1].h.data();
    if (h_prev != nullptr) {
      OuterAccum(&wh_.grad, d_gates.data(), h_prev);
    }
    float* db = b_.grad.Row(0);
    for (size_t i = 0; i < 4 * H; ++i) db[i] += d_gates[i];
    // Input gradient.
    if (d_x != nullptr) {
      MatTransVecAccum(wx_.value, d_gates.data(), (*d_x)[t].data());
    }
    // Recurrent hidden gradient for step t-1.
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    if (t > 0) {
      MatTransVecAccum(wh_.value, d_gates.data(), dh_next.data());
    }
  }
}

void Lstm::BackwardSeq(const std::vector<LstmStepCache>& caches,
                       const Matrix& d_h, Matrix* d_x, GradientSink* sink) {
  const size_t H = hidden_dim_;
  const size_t I = input_dim_;
  const size_t T = caches.size();
  RL4_CHECK_EQ(d_h.rows(), T);
  if (T == 0) {
    if (d_x != nullptr) d_x->EnsureShape(0, I);
    return;
  }
  RL4_CHECK_EQ(d_h.cols(), H);
  Matrix* wx_g = sink != nullptr ? sink->Find(&wx_) : &wx_.grad;
  Matrix* wh_g = sink != nullptr ? sink->Find(&wh_) : &wh_.grad;
  Matrix* b_g = sink != nullptr ? sink->Find(&b_) : &b_.grad;
  if (sink != nullptr) {
    sink->TouchAll(&wx_);
    sink->TouchAll(&wh_);
    sink->TouchAll(&b_);
  }

  // Timestep-packed gradient matrices. dg holds the pre-activation gate
  // gradients twice: column j = T-1-t of the (4H x T) layout drives the
  // weight-gradient GEMMs — ascending k there replays the per-step
  // backward's descending-t accumulation order, so (from zeroed gradient
  // buffers) every weight-gradient element is the exact same product
  // chain — and row t of the (T x 4H) layout drives the input-gradient
  // GEMM, whose ascending-k chain is MatTransVecAccum's ascending-row
  // order. Thread-local scratch: fully rewritten, steady state allocates
  // nothing.
  static thread_local Matrix dg;       // 4H x T, column j <-> t = T-1-j
  static thread_local Matrix dg_t;     // T x 4H, row t
  static thread_local Matrix x_rev;    // T x I, row j <-> x at t = T-1-j
  static thread_local Matrix h_prev_rev;  // (T-1) x H, row j <-> h_{T-2-j}
  dg.EnsureShape(4 * H, T);
  dg_t.EnsureShape(T, 4 * H);
  x_rev.EnsureShape(T, I);
  if (T > 1) h_prev_rev.EnsureShape(T - 1, H);

  // The gate-gradient recursion is inherently sequential (dh/dc of step t
  // feed step t-1) and runs exactly the per-step code; only the parameter
  // and input gradients are deferred to the GEMMs below.
  Vec dc_next(H, 0.0f);
  Vec dh_next(H, 0.0f);
  for (size_t t = T; t-- > 0;) {
    const LstmStepCache& cache = caches[t];
    const size_t j = T - 1 - t;
    float* d_gates = dg_t.Row(t);
    const float* ig = cache.gates.data();
    const float* fg = cache.gates.data() + H;
    const float* gg = cache.gates.data() + 2 * H;
    const float* og = cache.gates.data() + 3 * H;
    const float* dht = d_h.Row(t);
    for (size_t i = 0; i < H; ++i) {
      const float dh = dht[i] + dh_next[i];
      const float dc = dh * og[i] * (1.0f - cache.tanh_c[i] * cache.tanh_c[i]) +
                       dc_next[i];
      const float di = dc * gg[i];
      const float df = dc * cache.c_prev[i];
      const float dgv = dc * ig[i];
      const float dout = dh * cache.tanh_c[i];
      d_gates[i] = di * ig[i] * (1.0f - ig[i]);
      d_gates[H + i] = df * fg[i] * (1.0f - fg[i]);
      d_gates[2 * H + i] = dgv * (1.0f - gg[i] * gg[i]);
      d_gates[3 * H + i] = dout * og[i] * (1.0f - og[i]);
      dc_next[i] = dc * fg[i];
    }
    // Scatter into the reversed-time layouts for the post-loop GEMMs.
    {
      float* col = dg.data() + j;
      for (size_t r = 0; r < 4 * H; ++r) col[r * T] = d_gates[r];
    }
    std::copy(cache.x.begin(), cache.x.end(), x_rev.Row(j));
    if (t > 0) {
      const Vec& hp = caches[t - 1].h;
      std::copy(hp.begin(), hp.end(), h_prev_rev.Row(j));
    }
    // Bias gradient: element-wise accumulation in the per-step order.
    float* db = b_g->Row(0);
    for (size_t i = 0; i < 4 * H; ++i) db[i] += d_gates[i];
    // Recurrent hidden gradient for step t-1 (same per-step matvec).
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    if (t > 0) {
      MatTransVecAccum(wh_.value, d_gates, dh_next.data());
    }
  }

  // dWx += DG * X^T and dWh += DG[:, :T-1] * Hprev^T as single GEMMs.
  Gemm(dg.data(), 4 * H, T, T, x_rev.data(), I, I, wx_g->data(), I,
       /*accumulate=*/true);
  if (T > 1) {
    Gemm(dg.data(), 4 * H, T - 1, T, h_prev_rev.data(), H, H, wh_g->data(),
         H, /*accumulate=*/true);
  }
  // d_x = DG_t * Wx in one GEMM (rows are independent chains, so forward
  // row order is fine).
  if (d_x != nullptr) {
    d_x->EnsureShape(T, I);
    Gemm(dg_t.data(), T, 4 * H, 4 * H, wx_.value.data(), I, I, d_x->data(),
         I, /*accumulate=*/false);
  }
}

}  // namespace rl4oasd::nn
