// LSTM (Hochreiter & Schmidhuber) with full backpropagation through time.
// Two usage modes:
//   * Sequence mode (training): Lstm::Forward stores per-step caches so
//     Lstm::Backward can run BPTT over the whole trajectory.
//   * Streaming mode (online detection): LstmState carries (h, c) across
//     incoming road segments; StepForward advances one segment in O(H^2).
#pragma once

#include <string>
#include <vector>

#include "nn/param.h"

namespace rl4oasd::nn {

/// Recurrent state of a streaming LSTM: hidden and cell vectors.
struct LstmState {
  Vec h;
  Vec c;

  explicit LstmState(size_t hidden = 0) : h(hidden, 0.0f), c(hidden, 0.0f) {}
  void Reset() {
    std::fill(h.begin(), h.end(), 0.0f);
    std::fill(c.begin(), c.end(), 0.0f);
  }
};

/// Recurrent state of a batch of B streaming LSTMs: feature-major (H x B)
/// matrices whose column b is sample b's state, so the gate pre-activations
/// of the whole batch are two GEMMs.
struct LstmBatchState {
  Matrix h;  // H x B
  Matrix c;  // H x B

  LstmBatchState() = default;
  LstmBatchState(size_t hidden, size_t batch)
      : h(hidden, batch), c(hidden, batch) {}
  void Reset() {
    h.SetZero();
    c.SetZero();
  }
};

/// Per-step cache retained by sequence-mode forward for BPTT.
struct LstmStepCache {
  Vec x;        // input at this step
  Vec gates;    // post-activation [i, f, g, o], length 4H
  Vec c_prev;   // cell state entering the step
  Vec c;        // cell state leaving the step
  Vec tanh_c;   // tanh(c)
  Vec h;        // hidden output
};

/// Single-layer LSTM.
class Lstm {
 public:
  Lstm(std::string name, size_t input_dim, size_t hidden_dim,
       rl4oasd::Rng* rng);

  size_t input_dim() const { return input_dim_; }
  size_t hidden_dim() const { return hidden_dim_; }

  /// Streaming step: consumes x (length input_dim), updates `state` in place.
  /// No caches are kept; use for inference only.
  void StepForward(const float* x, LstmState* state) const;

  /// Batched streaming step over B independent streams: x is (input_dim x B)
  /// with sample b in column b, and `state` carries (H x B) hidden/cell
  /// matrices updated in place. The four gate matmuls of all B streams run
  /// as one (4H x I) * (I x B) GEMM (plus the recurrent (4H x H) * (H x B)),
  /// and column b's result matches StepForward on sample b's state (<= 1e-6
  /// relative; see Gemm's equivalence contract). Inference only.
  void StepForwardBatch(const Matrix& x, LstmBatchState* state) const {
    StepForwardBatch(x, &state->h, &state->c);
  }

  /// As above on raw (H x B) hidden/cell matrices (the RecurrentNet adapter
  /// and StackedRnn own their state storage directly).
  void StepForwardBatch(const Matrix& x, Matrix* h, Matrix* c) const;

  /// Sequence forward from the zero state. Returns per-step caches (the
  /// hidden output of step t is caches[t].h). The input projection of all
  /// timesteps runs as one (4H x I) * (I x T) GEMM; the recurrent part is
  /// inherently sequential. Bit-identical to stepping ComputeGates.
  std::vector<LstmStepCache> Forward(
      const std::vector<const float*>& inputs) const;

  /// Per-step reference BPTT. `d_h` holds the gradient flowing into each
  /// step's hidden output (same length as caches). Parameter gradients are
  /// accumulated; if `d_x` is non-null it receives per-step input gradients
  /// (resized internally). Kept as the plainly-auditable reference that
  /// BackwardSeq is tested against — production training uses BackwardSeq.
  void Backward(const std::vector<LstmStepCache>& caches,
                const std::vector<Vec>& d_h, std::vector<Vec>* d_x);

  /// GEMM-backed BPTT. `d_h` is (T x H) with row t the gradient into step
  /// t's hidden output; `d_x` (optional) is resized to (T x input_dim).
  /// The per-step gate-gradient recursion stays sequential, but the weight
  /// gradients become two GEMMs over timestep-packed matrices (reversed-
  /// time columns, so each product chain replays the per-step accumulation
  /// order) and the input gradients one more. Starting from zeroed
  /// gradient buffers this is bit-identical to Backward; `sink` (optional)
  /// redirects every parameter gradient into worker-local buffers, which
  /// makes concurrent calls on one Lstm safe (weights are only read).
  void BackwardSeq(const std::vector<LstmStepCache>& caches,
                   const Matrix& d_h, Matrix* d_x,
                   GradientSink* sink = nullptr);

  void RegisterParams(ParameterRegistry* registry) {
    registry->Register(&wx_);
    registry->Register(&wh_);
    registry->Register(&b_);
  }

 private:
  /// Computes post-activation gates for one step into `gates` (length 4H).
  void ComputeGates(const float* x, const float* h_prev, float* gates) const;

  /// The recurrent tail of ComputeGates: `gates` already holds Wx x and
  /// gets + b + Wh h_prev and the activations (shared by the streaming
  /// step and the GEMM-projected sequence forward).
  void FinishGates(const float* h_prev, float* gates) const;

  size_t input_dim_;
  size_t hidden_dim_;
  Parameter wx_;  // 4H x input_dim
  Parameter wh_;  // 4H x hidden_dim
  Parameter b_;   // 1 x 4H
};

}  // namespace rl4oasd::nn
