#include "nn/param.h"

#include <cmath>

namespace rl4oasd::nn {

void Parameter::XavierInit(rl4oasd::Rng* rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(value.rows() + value.cols()));
  for (size_t i = 0; i < value.size(); ++i) {
    value.data()[i] = static_cast<float>(rng->Uniform(-limit, limit));
  }
}

void Parameter::UniformInit(rl4oasd::Rng* rng, float scale) {
  for (size_t i = 0; i < value.size(); ++i) {
    value.data()[i] = static_cast<float>(rng->Uniform(-scale, scale));
  }
}

GradientSink::GradientSink(const ParameterRegistry& registry) {
  slots_.reserve(registry.params().size());
  for (Parameter* p : registry.params()) {
    Slot slot;
    slot.param = p;
    slot.buf.Resize(p->grad.rows(), p->grad.cols());
    slot.touched_bit.assign(p->grad.rows(), 0);
    slots_.push_back(std::move(slot));
    index_.emplace(p, slots_.size() - 1);
  }
}

GradientSink::Slot& GradientSink::SlotFor(const Parameter* p) {
  auto it = index_.find(p);
  RL4_CHECK(it != index_.end())
      << "parameter not in the sink's source registry: " << p->name;
  return slots_[it->second];
}

Matrix* GradientSink::Find(const Parameter* p) { return &SlotFor(p).buf; }

void GradientSink::TouchRow(const Parameter* p, size_t row) {
  Slot& slot = SlotFor(p);
  if (slot.all_touched || slot.touched_bit[row]) return;
  slot.touched_bit[row] = 1;
  slot.touched.push_back(static_cast<uint32_t>(row));
}

void GradientSink::TouchAll(const Parameter* p) {
  SlotFor(p).all_touched = true;
}

void GradientSink::AccumulateRows(const Parameter* p,
                                  std::span<const size_t> ids,
                                  const Matrix& grads) {
  Slot& slot = SlotFor(p);
  const size_t cols = slot.buf.cols();
  RL4_CHECK_EQ(grads.cols(), cols);
  for (size_t t = 0; t < ids.size(); ++t) {
    const size_t r = ids[t];
    RL4_CHECK_LT(r, slot.buf.rows());
    float* dst = slot.buf.Row(r);
    const float* src = grads.Row(t);
    for (size_t c = 0; c < cols; ++c) dst[c] += src[c];
    if (!slot.all_touched && !slot.touched_bit[r]) {
      slot.touched_bit[r] = 1;
      slot.touched.push_back(static_cast<uint32_t>(r));
    }
  }
}

void GradientSink::AddToParams() {
  for (Slot& slot : slots_) {
    const size_t cols = slot.buf.cols();
    auto add_row = [&](size_t r) {
      float* dst = slot.param->grad.Row(r);
      const float* src = slot.buf.Row(r);
      for (size_t c = 0; c < cols; ++c) dst[c] += src[c];
      if (slot.param->row_sparse) slot.param->TouchGradRow(r);
    };
    if (slot.all_touched) {
      for (size_t r = 0; r < slot.buf.rows(); ++r) add_row(r);
    } else {
      for (uint32_t r : slot.touched) add_row(r);
    }
  }
}

void GradientSink::Reset() {
  for (Slot& slot : slots_) {
    const size_t cols = slot.buf.cols();
    if (slot.all_touched) {
      slot.buf.SetZero();
      slot.all_touched = false;
    } else {
      for (uint32_t r : slot.touched) {
        float* row = slot.buf.Row(r);
        std::fill(row, row + cols, 0.0f);
      }
    }
    for (uint32_t r : slot.touched) slot.touched_bit[r] = 0;
    slot.touched.clear();
  }
}

float ParameterRegistry::ClipGradNorm(float max_norm) {
  double sq = 0.0;
  // Row-sparse parameters contribute only their touched rows: the skipped
  // rows are exactly zero, and zero squares are +0 terms that cannot move
  // the (non-negative) running sum, so the result is bit-identical to the
  // full walk — the bitmap iterates ascending, preserving the order of the
  // nonzero terms.
  for (auto* p : params_) {
    if (p->row_sparse) {
      const size_t cols = p->grad.cols();
      ForEachSetRow(p->touched_bits, [&](size_t r) {
        const float* g = p->grad.Row(r);
        for (size_t c = 0; c < cols; ++c) sq += double(g[c]) * g[c];
      });
    } else {
      const float* g = p->grad.data();
      for (size_t i = 0; i < p->grad.size(); ++i) sq += double(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto* p : params_) {
      if (p->row_sparse) {
        const size_t cols = p->grad.cols();
        ForEachSetRow(p->touched_bits, [&](size_t r) {
          float* g = p->grad.Row(r);
          for (size_t c = 0; c < cols; ++c) g[c] *= scale;
        });
      } else {
        float* g = p->grad.data();
        for (size_t i = 0; i < p->grad.size(); ++i) g[i] *= scale;
      }
    }
  }
  return norm;
}

}  // namespace rl4oasd::nn
