#include "nn/param.h"

#include <cmath>

namespace rl4oasd::nn {

void Parameter::XavierInit(rl4oasd::Rng* rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(value.rows() + value.cols()));
  for (size_t i = 0; i < value.size(); ++i) {
    value.data()[i] = static_cast<float>(rng->Uniform(-limit, limit));
  }
}

void Parameter::UniformInit(rl4oasd::Rng* rng, float scale) {
  for (size_t i = 0; i < value.size(); ++i) {
    value.data()[i] = static_cast<float>(rng->Uniform(-scale, scale));
  }
}

float ParameterRegistry::ClipGradNorm(float max_norm) {
  double sq = 0.0;
  for (auto* p : params_) {
    const float* g = p->grad.data();
    for (size_t i = 0; i < p->grad.size(); ++i) sq += double(g[i]) * g[i];
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto* p : params_) {
      float* g = p->grad.data();
      for (size_t i = 0; i < p->grad.size(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

}  // namespace rl4oasd::nn
