// Trainable parameter = value matrix + gradient accumulator. Layers register
// their parameters in a ParameterRegistry; optimizers walk the registry.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace rl4oasd::nn {

/// A named trainable tensor with a same-shaped gradient buffer.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  Parameter() = default;
  Parameter(std::string n, size_t rows, size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void ZeroGrad() { grad.SetZero(); }

  /// Glorot/Xavier uniform initialization: U(-limit, limit) with
  /// limit = sqrt(6 / (fan_in + fan_out)).
  void XavierInit(rl4oasd::Rng* rng);

  /// U(-scale, scale) initialization (used for embedding tables).
  void UniformInit(rl4oasd::Rng* rng, float scale);
};

/// Non-owning collection of parameters belonging to one model.
class ParameterRegistry {
 public:
  void Register(Parameter* p) { params_.push_back(p); }
  const std::vector<Parameter*>& params() const { return params_; }

  void ZeroGrad() {
    for (auto* p : params_) p->ZeroGrad();
  }

  /// Total number of scalar weights.
  size_t NumWeights() const {
    size_t n = 0;
    for (auto* p : params_) n += p->value.size();
    return n;
  }

  /// Global L2 gradient-norm clipping; returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

 private:
  std::vector<Parameter*> params_;
};

}  // namespace rl4oasd::nn
