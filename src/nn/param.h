// Trainable parameter = value matrix + gradient accumulator. Layers register
// their parameters in a ParameterRegistry; optimizers walk the registry.
// GradientSink provides detached, worker-local gradient buffers for the
// data-parallel training path.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace rl4oasd::nn {

/// Calls fn(row_index) for every set bit of a row bitmap, in ascending
/// order. Ascending matters wherever floating-point accumulation order is
/// part of a bit-exactness contract (e.g. the clip-norm sum).
template <typename Fn>
inline void ForEachSetRow(std::span<const uint64_t> words, Fn&& fn) {
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      fn((w << 6) + static_cast<size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
}

/// A named trainable tensor with a same-shaped gradient buffer.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  /// Row-sparse gradient tracking, opted into by embedding-style layers
  /// whose backward touches a handful of rows per step while the table
  /// holds thousands: every writer marks the rows it touches, the
  /// untouched rest of `grad` is guaranteed all-zero, and ZeroGrad /
  /// ClipGradNorm / the optimizers skip the zero rows. The skips are
  /// bit-exact, not approximate: zero gradient entries contribute exactly
  /// nothing to the clip norm (+0 terms never move an IEEE sum of
  /// squares), scale to themselves under clipping, and leave Adam rows
  /// with zero moments as exact fixed points (see AdamOptimizer::Step).
  bool row_sparse = false;
  std::vector<uint64_t> touched_bits;  // ceil(rows/64) words, row bitmap

  Parameter() = default;
  Parameter(std::string n, size_t rows, size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  /// Turns on row-sparse tracking (call once, before any grad writes).
  void EnableRowSparseGrads() {
    row_sparse = true;
    touched_bits.assign((value.rows() + 63) / 64, 0);
  }

  /// Marks row r as holding gradient content since the last ZeroGrad.
  void TouchGradRow(size_t r) { touched_bits[r >> 6] |= 1ull << (r & 63); }

  void ZeroGrad() {
    if (!row_sparse) {
      grad.SetZero();
      return;
    }
    // Only touched rows can be nonzero; zero them and clear the bitmap.
    const size_t cols = grad.cols();
    ForEachSetRow(touched_bits, [this, cols](size_t r) {
      float* row = grad.Row(r);
      std::fill(row, row + cols, 0.0f);
    });
    std::fill(touched_bits.begin(), touched_bits.end(), 0);
  }

  /// Glorot/Xavier uniform initialization: U(-limit, limit) with
  /// limit = sqrt(6 / (fan_in + fan_out)).
  void XavierInit(rl4oasd::Rng* rng);

  /// U(-scale, scale) initialization (used for embedding tables).
  void UniformInit(rl4oasd::Rng* rng, float scale);
};

/// Non-owning collection of parameters belonging to one model.
class ParameterRegistry {
 public:
  void Register(Parameter* p) { params_.push_back(p); }
  const std::vector<Parameter*>& params() const { return params_; }

  void ZeroGrad() {
    for (auto* p : params_) p->ZeroGrad();
  }

  /// Total number of scalar weights.
  size_t NumWeights() const {
    size_t n = 0;
    for (auto* p : params_) n += p->value.size();
    return n;
  }

  /// Global L2 gradient-norm clipping; returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

 private:
  std::vector<Parameter*> params_;
};

/// A detached set of gradient buffers shadowing a registry's parameters.
/// The sequence-level backward passes accept an optional sink; when given,
/// every parameter gradient lands in the sink's buffers instead of the
/// parameters' own, so N training workers can backprop through the SAME
/// model concurrently (weights are read-only during backward) into N sinks,
/// and the applying thread folds them back in a deterministic order.
///
/// Embedding-style parameters touch only a handful of rows per sequence;
/// the sink tracks touched rows so Reset()/AddToParams() cost O(touched),
/// not O(table).
class GradientSink {
 public:
  explicit GradientSink(const ParameterRegistry& registry);

  /// The sink buffer standing in for p->grad. p must belong to the source
  /// registry.
  Matrix* Find(const Parameter* p);

  /// Records that `row` of p's buffer now holds gradient content.
  void TouchRow(const Parameter* p, size_t row);

  /// Adds row t of `grads` (ids.size() x p->grad.cols()) into the sink row
  /// for ids[t], ascending t, touching each row — one slot lookup for the
  /// whole sequence (the embedding-backward hot path).
  void AccumulateRows(const Parameter* p, std::span<const size_t> ids,
                      const Matrix& grads);

  /// Records that every row of p's buffer holds content (dense layers).
  void TouchAll(const Parameter* p);

  /// Adds the touched sink contents into the parameters' own grad buffers.
  /// Call from the applying thread only.
  void AddToParams();

  /// Zeroes the touched rows and forgets the touch sets, restoring the
  /// all-zero invariant for the next accumulation.
  void Reset();

 private:
  struct Slot {
    Parameter* param;
    Matrix buf;                        // same shape as param->grad, zeroed
    std::vector<uint32_t> touched;     // touched row indices (no dups)
    std::vector<uint8_t> touched_bit;  // bitmap over rows
    bool all_touched = false;
  };

  Slot& SlotFor(const Parameter* p);

  std::vector<Slot> slots_;
  std::unordered_map<const Parameter*, size_t> index_;
};

}  // namespace rl4oasd::nn
