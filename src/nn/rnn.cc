#include "nn/rnn.h"

#include "common/logging.h"
#include "nn/gru.h"
#include "nn/lstm.h"

namespace rl4oasd::nn {

void RnnBatchState::Gather(std::span<const RnnState* const> states,
                           size_t state_size) {
  const size_t batch = states.size();
  if (h.rows() != state_size || h.cols() != batch) {
    h.Resize(state_size, batch);
    c.Resize(state_size, batch);
  }
  for (size_t b = 0; b < batch; ++b) {
    RL4_CHECK_EQ(states[b]->h.size(), state_size);
    float* hcol = h.data() + b;
    float* ccol = c.data() + b;
    const float* sh = states[b]->h.data();
    const float* sc = states[b]->c.data();
    for (size_t r = 0; r < state_size; ++r) {
      hcol[r * batch] = sh[r];
      ccol[r * batch] = sc[r];
    }
  }
}

void RnnBatchState::Scatter(std::span<RnnState* const> states) const {
  const size_t batch = states.size();
  RL4_CHECK_EQ(batch, h.cols());
  const size_t state_size = h.rows();
  for (size_t b = 0; b < batch; ++b) {
    RL4_CHECK_EQ(states[b]->h.size(), state_size);
    const float* hcol = h.data() + b;
    const float* ccol = c.data() + b;
    float* sh = states[b]->h.data();
    float* sc = states[b]->c.data();
    for (size_t r = 0; r < state_size; ++r) {
      sh[r] = hcol[r * batch];
      sc[r] = ccol[r * batch];
    }
  }
}

namespace {

class LstmNet : public RecurrentNet {
 public:
  LstmNet(const std::string& name, size_t input_dim, size_t hidden_dim,
          rl4oasd::Rng* rng)
      : lstm_(name + ".lstm", input_dim, hidden_dim, rng) {}

  class Cache : public SeqCache {
   public:
    explicit Cache(std::vector<LstmStepCache> steps)
        : steps_(std::move(steps)) {}
    size_t size() const override { return steps_.size(); }
    const Vec& h(size_t t) const override { return steps_[t].h; }
    const std::vector<LstmStepCache>& steps() const { return steps_; }

   private:
    std::vector<LstmStepCache> steps_;
  };

  size_t input_dim() const override { return lstm_.input_dim(); }
  size_t hidden_dim() const override { return lstm_.hidden_dim(); }

  void StepForward(const float* x, RnnState* state) const override {
    // Borrow the state vectors for the step to avoid copies.
    LstmState s;
    s.h = std::move(state->h);
    s.c = std::move(state->c);
    lstm_.StepForward(x, &s);
    state->h = std::move(s.h);
    state->c = std::move(s.c);
  }

  void StepForwardBatch(const Matrix& x, RnnBatchState* state) const override {
    lstm_.StepForwardBatch(x, &state->h, &state->c);
  }

  std::unique_ptr<SeqCache> Forward(
      const std::vector<const float*>& inputs) const override {
    return std::make_unique<Cache>(lstm_.Forward(inputs));
  }

  void Backward(const SeqCache& cache, const std::vector<Vec>& d_h,
                std::vector<Vec>* d_x) override {
    lstm_.Backward(static_cast<const Cache&>(cache).steps(), d_h, d_x);
  }

  void BackwardSeq(const SeqCache& cache, const Matrix& d_h, Matrix* d_x,
                   GradientSink* sink) override {
    lstm_.BackwardSeq(static_cast<const Cache&>(cache).steps(), d_h, d_x,
                      sink);
  }

  void RegisterParams(ParameterRegistry* registry) override {
    lstm_.RegisterParams(registry);
  }

 private:
  Lstm lstm_;
};

class GruNet : public RecurrentNet {
 public:
  GruNet(const std::string& name, size_t input_dim, size_t hidden_dim,
         rl4oasd::Rng* rng)
      : gru_(name + ".gru", input_dim, hidden_dim, rng) {}

  class Cache : public SeqCache {
   public:
    explicit Cache(std::vector<GruStepCache> steps)
        : steps_(std::move(steps)) {}
    size_t size() const override { return steps_.size(); }
    const Vec& h(size_t t) const override { return steps_[t].h; }
    const std::vector<GruStepCache>& steps() const { return steps_; }

   private:
    std::vector<GruStepCache> steps_;
  };

  size_t input_dim() const override { return gru_.input_dim(); }
  size_t hidden_dim() const override { return gru_.hidden_dim(); }

  void StepForward(const float* x, RnnState* state) const override {
    GruState s;
    s.h = std::move(state->h);
    gru_.StepForward(x, &s);
    state->h = std::move(s.h);
  }

  void StepForwardBatch(const Matrix& x, RnnBatchState* state) const override {
    gru_.StepForwardBatch(x, &state->h);
  }

  std::unique_ptr<SeqCache> Forward(
      const std::vector<const float*>& inputs) const override {
    return std::make_unique<Cache>(gru_.Forward(inputs));
  }

  void Backward(const SeqCache& cache, const std::vector<Vec>& d_h,
                std::vector<Vec>* d_x) override {
    gru_.Backward(static_cast<const Cache&>(cache).steps(), d_h, d_x);
  }

  void BackwardSeq(const SeqCache& cache, const Matrix& d_h, Matrix* d_x,
                   GradientSink* sink) override {
    gru_.BackwardSeq(static_cast<const Cache&>(cache).steps(), d_h, d_x,
                     sink);
  }

  void RegisterParams(ParameterRegistry* registry) override {
    gru_.RegisterParams(registry);
  }

 private:
  Gru gru_;
};

}  // namespace

const char* RnnKindName(RnnKind kind) {
  switch (kind) {
    case RnnKind::kLstm:
      return "lstm";
    case RnnKind::kGru:
      return "gru";
  }
  return "unknown";
}

std::unique_ptr<RecurrentNet> MakeRecurrentNet(RnnKind kind,
                                               const std::string& name,
                                               size_t input_dim,
                                               size_t hidden_dim,
                                               rl4oasd::Rng* rng) {
  switch (kind) {
    case RnnKind::kLstm:
      return std::make_unique<LstmNet>(name, input_dim, hidden_dim, rng);
    case RnnKind::kGru:
      return std::make_unique<GruNet>(name, input_dim, hidden_dim, rng);
  }
  RL4_CHECK(false) << "unknown RnnKind";
  return nullptr;
}

}  // namespace rl4oasd::nn
