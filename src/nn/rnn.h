// Recurrent-core abstraction over Lstm and Gru so RSRNet can swap its
// sequence encoder (architecture ablation). The interface mirrors the two
// concrete classes: a streaming step over an opaque RnnState, a sequence
// forward that returns an opaque BPTT cache, and a Backward over that cache.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/param.h"

namespace rl4oasd::nn {

/// Which recurrent core to build.
enum class RnnKind {
  kLstm = 0,  // paper setting
  kGru = 1,   // ablation alternative
};

const char* RnnKindName(RnnKind kind);

/// Streaming state: hidden vector plus (LSTM only) cell vector.
struct RnnState {
  Vec h;
  Vec c;  // unused by GRU

  explicit RnnState(size_t hidden = 0) : h(hidden, 0.0f), c(hidden, 0.0f) {}
  void Reset() {
    std::fill(h.begin(), h.end(), 0.0f);
    std::fill(c.begin(), c.end(), 0.0f);
  }
};

/// Streaming state of B independent streams stacked feature-major: column b
/// of the (state_size x B) matrices is stream b's RnnState vectors. Built by
/// gathering per-stream states, advanced by StepForwardBatch, scattered back.
struct RnnBatchState {
  Matrix h;
  Matrix c;  // unused by GRU

  RnnBatchState() = default;
  RnnBatchState(size_t state_size, size_t batch)
      : h(state_size, batch), c(state_size, batch) {}

  size_t batch() const { return h.cols(); }

  /// Copies states[b] (each of length state_size) into column b.
  void Gather(std::span<const RnnState* const> states, size_t state_size);
  /// Copies column b back into states[b].
  void Scatter(std::span<RnnState* const> states) const;
};

/// Abstract single-layer recurrent network.
class RecurrentNet {
 public:
  /// Opaque per-sequence BPTT cache; consumers only read hidden outputs.
  class SeqCache {
   public:
    virtual ~SeqCache() = default;
    virtual size_t size() const = 0;
    virtual const Vec& h(size_t t) const = 0;
  };

  virtual ~RecurrentNet() = default;

  virtual size_t input_dim() const = 0;
  virtual size_t hidden_dim() const = 0;

  /// Length of the streaming-state vectors this core needs (multi-layer
  /// cores pack one slice per layer; the top layer's slice is last).
  virtual size_t state_size() const { return hidden_dim(); }

  /// Streaming step: consumes x (length input_dim), updates `state`.
  virtual void StepForward(const float* x, RnnState* state) const = 0;

  /// Batched streaming step over B independent streams: x is
  /// (input_dim x B) column-per-sample and `state` carries
  /// (state_size x B) matrices. Column b's result matches StepForward on
  /// stream b (<= 1e-6 relative; see Gemm's equivalence contract).
  virtual void StepForwardBatch(const Matrix& x,
                                RnnBatchState* state) const = 0;

  /// Sequence forward from the zero state, retaining caches for Backward.
  virtual std::unique_ptr<SeqCache> Forward(
      const std::vector<const float*>& inputs) const = 0;

  /// Per-step reference BPTT over a cache previously returned by this
  /// object's Forward. Production training uses BackwardSeq; this stays as
  /// the audited per-step reference the GEMM path is tested against.
  virtual void Backward(const SeqCache& cache, const std::vector<Vec>& d_h,
                        std::vector<Vec>* d_x) = 0;

  /// GEMM-backed BPTT: `d_h` is (T x hidden) with row t the gradient into
  /// step t's hidden output; `d_x` (optional) is resized to
  /// (T x input_dim). Bit-identical to Backward when the gradient buffers
  /// start zeroed. `sink` (optional) redirects every parameter gradient
  /// into worker-local buffers, making concurrent calls safe (weights are
  /// only read).
  virtual void BackwardSeq(const SeqCache& cache, const Matrix& d_h,
                           Matrix* d_x, GradientSink* sink = nullptr) = 0;

  virtual void RegisterParams(ParameterRegistry* registry) = 0;
};

/// Factory. Parameter names are derived from `name` and the kind, so
/// checkpoints reject silently loading one architecture into the other.
std::unique_ptr<RecurrentNet> MakeRecurrentNet(RnnKind kind,
                                               const std::string& name,
                                               size_t input_dim,
                                               size_t hidden_dim,
                                               rl4oasd::Rng* rng);

}  // namespace rl4oasd::nn
