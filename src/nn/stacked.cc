#include "nn/stacked.h"

#include <cstring>
#include <utility>

#include "common/logging.h"

namespace rl4oasd::nn {

class StackedRnn::Cache : public RecurrentNet::SeqCache {
 public:
  explicit Cache(std::vector<std::unique_ptr<SeqCache>> layers)
      : layers_(std::move(layers)) {}

  size_t size() const override { return layers_.back()->size(); }
  const Vec& h(size_t t) const override { return layers_.back()->h(t); }

  const std::vector<std::unique_ptr<SeqCache>>& layers() const {
    return layers_;
  }

 private:
  std::vector<std::unique_ptr<SeqCache>> layers_;
};

StackedRnn::StackedRnn(RnnKind kind, const std::string& name,
                       size_t input_dim, size_t hidden_dim, size_t layers,
                       rl4oasd::Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  RL4_CHECK_GE(layers, 1u);
  cores_.reserve(layers);
  for (size_t l = 0; l < layers; ++l) {
    const size_t in = l == 0 ? input_dim : hidden_dim;
    cores_.push_back(MakeRecurrentNet(
        kind, name + ".l" + std::to_string(l), in, hidden_dim, rng));
  }
}

void StackedRnn::StepForward(const float* x, RnnState* state) const {
  const size_t H = hidden_dim_;
  const size_t L = cores_.size();
  RL4_CHECK_EQ(state->h.size(), L * H);
  Vec input(x, x + input_dim_);
  RnnState layer_state(H);
  for (size_t l = 0; l < L; ++l) {
    std::memcpy(layer_state.h.data(), state->h.data() + l * H,
                H * sizeof(float));
    std::memcpy(layer_state.c.data(), state->c.data() + l * H,
                H * sizeof(float));
    cores_[l]->StepForward(input.data(), &layer_state);
    std::memcpy(state->h.data() + l * H, layer_state.h.data(),
                H * sizeof(float));
    std::memcpy(state->c.data() + l * H, layer_state.c.data(),
                H * sizeof(float));
    input = layer_state.h;  // feeds the next layer
  }
  // Expose the top layer's hidden output where single-layer consumers read
  // it: the last H entries already hold it (layer L-1's slice).
}

void StackedRnn::StepForwardBatch(const Matrix& x,
                                  RnnBatchState* state) const {
  const size_t H = hidden_dim_;
  const size_t L = cores_.size();
  const size_t B = x.cols();
  RL4_CHECK_EQ(state->h.rows(), L * H);
  RL4_CHECK_EQ(state->h.cols(), B);
  // Layer slices are full-width row blocks, so each (H x B) layer state is
  // one contiguous chunk of the packed matrices. Each layer's output is
  // swapped (O(1)) into `carry` to feed the next layer; the state matrices
  // get it via the write-back memcpy, so no full input copies are made.
  // Thread-local scratch (fully rewritten per layer), so steady-state
  // waves allocate nothing.
  static thread_local RnnBatchState layer_state;
  static thread_local Matrix carry;
  layer_state.h.EnsureShape(H, B);
  layer_state.c.EnsureShape(H, B);
  const Matrix* input = &x;
  const size_t block = H * B;
  for (size_t l = 0; l < L; ++l) {
    std::memcpy(layer_state.h.data(), state->h.Row(l * H),
                block * sizeof(float));
    std::memcpy(layer_state.c.data(), state->c.Row(l * H),
                block * sizeof(float));
    cores_[l]->StepForwardBatch(*input, &layer_state);
    std::memcpy(state->h.Row(l * H), layer_state.h.data(),
                block * sizeof(float));
    std::memcpy(state->c.Row(l * H), layer_state.c.data(),
                block * sizeof(float));
    if (l + 1 < L) {
      std::swap(carry, layer_state.h);  // feeds the next layer
      layer_state.h.EnsureShape(H, B);  // swap may leave a stale shape
      input = &carry;
    }
  }
}

std::unique_ptr<RecurrentNet::SeqCache> StackedRnn::Forward(
    const std::vector<const float*>& inputs) const {
  std::vector<std::unique_ptr<SeqCache>> layer_caches;
  layer_caches.reserve(cores_.size());
  std::vector<const float*> layer_inputs = inputs;
  for (const auto& core : cores_) {
    auto cache = core->Forward(layer_inputs);
    layer_inputs.clear();
    layer_inputs.reserve(cache->size());
    for (size_t t = 0; t < cache->size(); ++t) {
      layer_inputs.push_back(cache->h(t).data());
    }
    layer_caches.push_back(std::move(cache));
  }
  return std::make_unique<Cache>(std::move(layer_caches));
}

void StackedRnn::Backward(const SeqCache& cache, const std::vector<Vec>& d_h,
                          std::vector<Vec>* d_x) {
  const auto& stacked = static_cast<const Cache&>(cache);
  RL4_CHECK_EQ(stacked.layers().size(), cores_.size());
  std::vector<Vec> grad = d_h;
  for (size_t l = cores_.size(); l-- > 0;) {
    std::vector<Vec> d_in;
    std::vector<Vec>* sink = (l == 0) ? d_x : &d_in;
    cores_[l]->Backward(*stacked.layers()[l], grad, sink);
    if (l > 0) grad = std::move(d_in);
  }
}

void StackedRnn::BackwardSeq(const SeqCache& cache, const Matrix& d_h,
                             Matrix* d_x, GradientSink* sink) {
  const auto& stacked = static_cast<const Cache&>(cache);
  RL4_CHECK_EQ(stacked.layers().size(), cores_.size());
  // Inter-layer gradients ping-pong between two scratch matrices (the
  // cores never read their d_x output, so input/output must be distinct
  // buffers, never the same one).
  static thread_local Matrix grad_a;
  static thread_local Matrix grad_b;
  const Matrix* grad = &d_h;
  Matrix* spare = &grad_a;
  for (size_t l = cores_.size(); l-- > 0;) {
    Matrix* out = (l == 0) ? d_x : spare;
    cores_[l]->BackwardSeq(*stacked.layers()[l], *grad, out, sink);
    if (l > 0) {
      spare = (out == &grad_a) ? &grad_b : &grad_a;
      grad = out;
    }
  }
}

void StackedRnn::RegisterParams(ParameterRegistry* registry) {
  for (const auto& core : cores_) {
    core->RegisterParams(registry);
  }
}

}  // namespace rl4oasd::nn
