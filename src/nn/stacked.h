// Stacked recurrent network: N single-layer cores (LSTM or GRU) where layer
// k consumes layer k-1's hidden sequence. Implements the same RecurrentNet
// interface, so RSRNet can trade depth for capacity (`rsr.num_layers`)
// without any other change. Streaming state packs all layers' vectors into
// one RnnState (h and c are L*H long); hidden_dim() reports the top layer's
// width, which is what downstream consumers see.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/rnn.h"

namespace rl4oasd::nn {

class StackedRnn : public RecurrentNet {
 public:
  /// `layers` >= 1 cores of `kind`; the first maps input_dim -> hidden_dim,
  /// the rest hidden_dim -> hidden_dim.
  StackedRnn(RnnKind kind, const std::string& name, size_t input_dim,
             size_t hidden_dim, size_t layers, rl4oasd::Rng* rng);

  size_t input_dim() const override { return input_dim_; }
  size_t hidden_dim() const override { return hidden_dim_; }
  size_t num_layers() const { return cores_.size(); }

  /// Total streaming-state length (layers * hidden per vector).
  size_t state_size() const override { return cores_.size() * hidden_dim_; }

  void StepForward(const float* x, RnnState* state) const override;

  /// Batched streaming step: state matrices are (layers * hidden) x B with
  /// layer l's slice in rows [l*H, (l+1)*H) — the same packing as the
  /// scalar state vectors, so the top layer's output is the last H rows.
  void StepForwardBatch(const Matrix& x, RnnBatchState* state) const override;

  std::unique_ptr<SeqCache> Forward(
      const std::vector<const float*>& inputs) const override;

  void Backward(const SeqCache& cache, const std::vector<Vec>& d_h,
                std::vector<Vec>* d_x) override;

  /// GEMM-backed BPTT top-down through the stack: layer l's input
  /// gradients become layer l-1's hidden gradients, as (T x H) matrices
  /// with no per-step vectors in between.
  void BackwardSeq(const SeqCache& cache, const Matrix& d_h, Matrix* d_x,
                   GradientSink* sink = nullptr) override;

  void RegisterParams(ParameterRegistry* registry) override;

 private:
  class Cache;

  size_t input_dim_;
  size_t hidden_dim_;
  std::vector<std::unique_ptr<RecurrentNet>> cores_;
};

}  // namespace rl4oasd::nn
