#include "nn/tensor.h"

#include <algorithm>
#include <cmath>

namespace rl4oasd::nn {

void MatVec(const Matrix& m, const float* x, float* y) {
  const size_t rows = m.rows();
  const size_t cols = m.cols();
  for (size_t r = 0; r < rows; ++r) {
    const float* row = m.Row(r);
    float acc = 0.0f;
    for (size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

namespace {

// The row-tile helpers are always_inline so each ISA-specific Gemm body
// below compiles them with its own vector width.
#if defined(__GNUC__)
#define RL4_ALWAYS_INLINE __attribute__((always_inline)) inline
#else
#define RL4_ALWAYS_INLINE inline
#endif

/// One C tile of TILE consecutive columns for row i, accumulated in
/// registers across the whole k extent: per element this is the plain
/// ascending-k sum starting from zero — exactly the scalar dot-product
/// chain — written (or added) to C once at the end. Constant trip count on
/// the inner loop keeps the accumulators in vector registers.
template <size_t TILE>
RL4_ALWAYS_INLINE void GemmRowTile(const float* ai, size_t k, const float* b,
                                   size_t ldb, float* ci, bool accumulate) {
  float acc[TILE] = {};
  for (size_t kx = 0; kx < k; ++kx) {
    const float aik = ai[kx];
    const float* bk = b + kx * ldb;
    for (size_t t = 0; t < TILE; ++t) acc[t] += aik * bk[t];
  }
  if (accumulate) {
    for (size_t t = 0; t < TILE; ++t) ci[t] += acc[t];
  } else {
    for (size_t t = 0; t < TILE; ++t) ci[t] = acc[t];
  }
}

/// Variable-width tail tile (j extents not divisible by the register tile).
RL4_ALWAYS_INLINE void GemmRowTail(const float* ai, size_t k, const float* b,
                                   size_t ldb, size_t width, float* ci,
                                   bool accumulate) {
  float acc[7] = {};  // width < 8 by construction
  for (size_t kx = 0; kx < k; ++kx) {
    const float aik = ai[kx];
    const float* bk = b + kx * ldb;
    for (size_t t = 0; t < width; ++t) acc[t] += aik * bk[t];
  }
  if (accumulate) {
    for (size_t t = 0; t < width; ++t) ci[t] += acc[t];
  } else {
    for (size_t t = 0; t < width; ++t) ci[t] = acc[t];
  }
}

/// The GEMM loop nest, always_inline so each ISA-specific wrapper below
/// compiles it (and the tile helpers) at its own vector width. Column
/// tiles accumulate in registers over the full k extent, so each C element
/// is the plain ascending-k product chain (the scalar dot-product order);
/// with `accumulate` the finished chain is added to C in one step. The
/// batch (j) dimension is the contiguous, auto-vectorized axis.
RL4_ALWAYS_INLINE void GemmLoop(const float* a, size_t m, size_t k,
                                size_t lda, const float* b, size_t n,
                                size_t ldb, float* c, size_t ldc,
                                bool accumulate) {
  for (size_t j0 = 0; j0 < n;) {
    const size_t left = n - j0;
    const size_t tile = left >= 64 ? 64 : left >= 16 ? 16 : left >= 8 ? 8 : left;
    for (size_t i = 0; i < m; ++i) {
      const float* ai = a + i * lda;
      float* ci = c + i * ldc + j0;
      const float* bj = b + j0;
      switch (tile) {
        case 64:
          GemmRowTile<64>(ai, k, bj, ldb, ci, accumulate);
          break;
        case 16:
          GemmRowTile<16>(ai, k, bj, ldb, ci, accumulate);
          break;
        case 8:
          GemmRowTile<8>(ai, k, bj, ldb, ci, accumulate);
          break;
        default:
          GemmRowTail(ai, k, bj, ldb, tile, ci, accumulate);
          break;
      }
    }
    j0 += tile;
  }
}

// AVX2 variant — AVX2 *without* FMA, so both variants execute the
// identical multiply-then-add sequence (no contraction) and results stay
// bit-identical across machines; only the register width differs.
// Dispatch is a plain runtime branch on cpuid rather than target_clones:
// the ifunc resolver target_clones emits runs before sanitizer runtimes
// initialize and crashes under TSAN.
#if defined(__GNUC__) && defined(__x86_64__) && !defined(__clang__)
#define RL4_GEMM_AVX2 1
__attribute__((target("avx2"))) void GemmAvx2(const float* a, size_t m,
                                              size_t k, size_t lda,
                                              const float* b, size_t n,
                                              size_t ldb, float* c,
                                              size_t ldc, bool accumulate) {
  GemmLoop(a, m, k, lda, b, n, ldb, c, ldc, accumulate);
}
#endif

}  // namespace

void Gemm(const float* a, size_t m, size_t k, size_t lda, const float* b,
          size_t n, size_t ldb, float* c, size_t ldc, bool accumulate) {
#ifdef RL4_GEMM_AVX2
  static const bool use_avx2 = __builtin_cpu_supports("avx2") != 0;
  if (use_avx2) {
    GemmAvx2(a, m, k, lda, b, n, ldb, c, ldc, accumulate);
    return;
  }
#endif
  GemmLoop(a, m, k, lda, b, n, ldb, c, ldc, accumulate);
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* c) {
  RL4_CHECK_EQ(a.cols(), b.rows());
  c->EnsureShape(a.rows(), b.cols());
  Gemm(a.data(), a.rows(), a.cols(), a.cols(), b.data(), b.cols(), b.cols(),
       c->data(), c->cols(), /*accumulate=*/false);
}

void MatMulAccum(const Matrix& a, const Matrix& b, Matrix* c) {
  RL4_CHECK_EQ(a.cols(), b.rows());
  RL4_CHECK_EQ(c->rows(), a.rows());
  RL4_CHECK_EQ(c->cols(), b.cols());
  Gemm(a.data(), a.rows(), a.cols(), a.cols(), b.data(), b.cols(), b.cols(),
       c->data(), c->cols(), /*accumulate=*/true);
}

void AddBiasPerRow(Matrix* c, const float* bias) {
  const size_t rows = c->rows();
  const size_t cols = c->cols();
  for (size_t r = 0; r < rows; ++r) {
    float* row = c->Row(r);
    const float b = bias[r];
    for (size_t j = 0; j < cols; ++j) row[j] += b;
  }
}

void SoftmaxColumnsInPlace(Matrix* logits) {
  const size_t rows = logits->rows();
  const size_t cols = logits->cols();
  float* data = logits->data();
  for (size_t j = 0; j < cols; ++j) {
    float mx = data[j];
    for (size_t r = 1; r < rows; ++r) mx = std::max(mx, data[r * cols + j]);
    float sum = 0.0f;
    for (size_t r = 0; r < rows; ++r) {
      float& v = data[r * cols + j];
      v = std::exp(v - mx);
      sum += v;
    }
    for (size_t r = 0; r < rows; ++r) data[r * cols + j] /= sum;
  }
}

void MatTransVecAccum(const Matrix& m, const float* g, float* y) {
  const size_t rows = m.rows();
  const size_t cols = m.cols();
  for (size_t r = 0; r < rows; ++r) {
    const float gr = g[r];
    if (gr == 0.0f) continue;
    const float* row = m.Row(r);
    for (size_t c = 0; c < cols; ++c) y[c] += gr * row[c];
  }
}

void OuterAccum(Matrix* m, const float* g, const float* x) {
  const size_t rows = m->rows();
  const size_t cols = m->cols();
  for (size_t r = 0; r < rows; ++r) {
    const float gr = g[r];
    if (gr == 0.0f) continue;
    float* row = m->Row(r);
    for (size_t c = 0; c < cols; ++c) row[c] += gr * x[c];
  }
}

float Dot(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float Norm(const float* a, size_t n) { return std::sqrt(Dot(a, a, n)); }

float CosineSimilarity(const float* a, const float* b, size_t n) {
  const float na = Norm(a, n);
  const float nb = Norm(b, n);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return Dot(a, b, n) / (na * nb);
}

void SoftmaxInPlace(float* logits, size_t n) {
  float mx = logits[0];
  for (size_t i = 1; i < n; ++i) mx = std::max(mx, logits[i]);
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    logits[i] = std::exp(logits[i] - mx);
    sum += logits[i];
  }
  for (size_t i = 0; i < n; ++i) logits[i] /= sum;
}

float CrossEntropy(const float* probs, size_t n, size_t target) {
  RL4_CHECK_LT(target, n);
  const float p = std::max(probs[target], 1e-12f);
  return -std::log(p);
}

}  // namespace rl4oasd::nn
