#include "nn/tensor.h"

#include <algorithm>
#include <cmath>

namespace rl4oasd::nn {

void MatVec(const Matrix& m, const float* x, float* y) {
  const size_t rows = m.rows();
  const size_t cols = m.cols();
  for (size_t r = 0; r < rows; ++r) {
    const float* row = m.Row(r);
    float acc = 0.0f;
    for (size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void MatTransVecAccum(const Matrix& m, const float* g, float* y) {
  const size_t rows = m.rows();
  const size_t cols = m.cols();
  for (size_t r = 0; r < rows; ++r) {
    const float gr = g[r];
    if (gr == 0.0f) continue;
    const float* row = m.Row(r);
    for (size_t c = 0; c < cols; ++c) y[c] += gr * row[c];
  }
}

void OuterAccum(Matrix* m, const float* g, const float* x) {
  const size_t rows = m->rows();
  const size_t cols = m->cols();
  for (size_t r = 0; r < rows; ++r) {
    const float gr = g[r];
    if (gr == 0.0f) continue;
    float* row = m->Row(r);
    for (size_t c = 0; c < cols; ++c) row[c] += gr * x[c];
  }
}

float Dot(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float Norm(const float* a, size_t n) { return std::sqrt(Dot(a, a, n)); }

float CosineSimilarity(const float* a, const float* b, size_t n) {
  const float na = Norm(a, n);
  const float nb = Norm(b, n);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return Dot(a, b, n) / (na * nb);
}

void SoftmaxInPlace(float* logits, size_t n) {
  float mx = logits[0];
  for (size_t i = 1; i < n; ++i) mx = std::max(mx, logits[i]);
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    logits[i] = std::exp(logits[i] - mx);
    sum += logits[i];
  }
  for (size_t i = 0; i < n; ++i) logits[i] /= sum;
}

float CrossEntropy(const float* probs, size_t n, size_t target) {
  RL4_CHECK_LT(target, n);
  const float p = std::max(probs[target], 1e-12f);
  return -std::log(p);
}

}  // namespace rl4oasd::nn
