// Dense row-major float matrix plus the vector and matrix kernels the
// networks need: matrix-vector products and elementwise ops for the
// streaming (single-sample) paths, and a blocked GEMM for the batched
// inference path, where B stacked samples are laid out column-wise so the
// recurrent gate matmuls become one (4H x I) * (I x B) product.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace rl4oasd::nn {

/// A dense vector of floats.
using Vec = std::vector<float>;

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(size_t r, size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(size_t r, size_t c) const {
    return data_[r * cols_ + c];
  }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void SetZero() { std::fill(data_.begin(), data_.end(), 0.0f); }

  /// Resizes and fills (previous content is discarded).
  void Resize(size_t rows, size_t cols, float fill = 0.0f) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  /// Ensures the shape without initializing: a no-op when the shape already
  /// matches (content preserved), otherwise a resize leaving the content
  /// undefined. For scratch buffers that are fully overwritten — the
  /// batched-inference hot path reuses its gate/output matrices every wave.
  void EnsureShape(size_t rows, size_t cols) {
    if (rows_ == rows && cols_ == cols) return;
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// y = M x  (M: m x n, x: n, y: m). `y` is overwritten.
void MatVec(const Matrix& m, const float* x, float* y);

/// Blocked row-major GEMM on raw pointers: C (m x n) = A (m x k) * B (k x n),
/// or C += A * B when `accumulate`. `lda`/`ldb`/`ldc` are leading dimensions
/// (row strides), so callers can multiply row sub-blocks of larger matrices.
///
/// Equivalence contract: for every output element the products are added in
/// ascending-k order as ONE unbroken chain, exactly like the scalar MatVec
/// dot loop, so the batched inference path reproduces the streaming path's
/// floating-point results (tests enforce <= 1e-6 relative; on one toolchain
/// the results are typically bit-identical). The kernel tiles the
/// contiguous `n` (batch) dimension into register accumulators and
/// auto-vectorizes over it; k deliberately runs unblocked — splitting k
/// into partial sums would reassociate the chains and break the contract.
void Gemm(const float* a, size_t m, size_t k, size_t lda, const float* b,
          size_t n, size_t ldb, float* c, size_t ldc, bool accumulate);

/// C = A * B. C is resized to (A.rows x B.cols).
void MatMul(const Matrix& a, const Matrix& b, Matrix* c);

/// C += A * B. C must already be (A.rows x B.cols).
void MatMulAccum(const Matrix& a, const Matrix& b, Matrix* c);

/// Adds bias[r] to every element of row r (broadcast over the batch
/// dimension of a feature-major batch matrix).
void AddBiasPerRow(Matrix* c, const float* bias);

/// Column-wise numerically stable softmax over an (n_classes x batch)
/// logits matrix, in place: each column b is softmaxed independently, with
/// the same operation order as SoftmaxInPlace on that column.
void SoftmaxColumnsInPlace(Matrix* logits);

/// y += M^T g  (accumulates input gradient: M: m x n, g: m, y: n).
void MatTransVecAccum(const Matrix& m, const float* g, float* y);

/// M += g outer x  (rank-1 update: g: m, x: n).
void OuterAccum(Matrix* m, const float* g, const float* x);

/// Dot product of two length-n vectors.
float Dot(const float* a, const float* b, size_t n);

/// L2 norm.
float Norm(const float* a, size_t n);

/// Cosine similarity; returns 0 when either vector is all-zero.
float CosineSimilarity(const float* a, const float* b, size_t n);

/// Numerically stable in-place softmax over n logits.
void SoftmaxInPlace(float* logits, size_t n);

/// Cross-entropy -log p[target] for a probability vector (already softmaxed).
/// Probabilities are clamped away from zero for stability.
float CrossEntropy(const float* probs, size_t n, size_t target);

/// Fast exp(x) for the network activations: branchless (no libm call, no
/// data-dependent branch), so activation loops over gate blocks
/// auto-vectorize in both the streaming and the batched path. ~2e-7
/// relative accuracy via Cody-Waite argument reduction, a degree-6
/// exp polynomial, and exponent assembly in the float bit pattern; NaN
/// propagates like std::exp. The streaming and batched paths share this
/// exact function, so activations never contribute a batch-vs-streaming
/// difference.
inline float FastExp(float x) {
  // NaN fails both clamp comparisons and would reach the float->int cast
  // below (UB); route it through as 0 and select the original back at the
  // end, so NaN propagates like std::exp — still branchless (compare +
  // blend), so the surrounding loop stays vectorizable.
  const bool not_nan = x == x;
  float xc = not_nan ? x : 0.0f;
  // Clamp to the comfortably-finite range (exp(±87) is near float min/max
  // normal).
  xc = xc < -87.0f ? -87.0f : xc;
  xc = xc > 87.0f ? 87.0f : xc;
  const float t = xc * 1.44269504088896341f;  // x / ln 2
  // Round-to-nearest integer without a libm call: adding 1.5 * 2^23 pushes
  // the fraction bits out (valid since |t| < 2^22).
  const float r = (t + 12582912.0f) - 12582912.0f;
  // Cody-Waite two-constant reduction: f = x - r ln2 stays accurate at
  // large |x|. The hi constant has only 12 significant bits, so r * hi is
  // exact for the integer |r| <= 126 reached here and the subtraction
  // cancels without rounding; a single rounded ln2 constant would lose
  // ~|x| * 1e-7 relative.
  const float f = (xc - r * 0.693359375f) - r * (-2.12194440e-4f);
  // e^f, Taylor to degree 6 on [-ln2/2, ln2/2] (remainder < 2e-7).
  float p = 1.0f / 720.0f;
  p = p * f + 1.0f / 120.0f;
  p = p * f + 1.0f / 24.0f;
  p = p * f + 1.0f / 6.0f;
  p = p * f + 0.5f;
  p = p * f + 1.0f;
  p = p * f + 1.0f;
  // Scale by 2^r: add the integer exponent directly into the bit pattern
  // (p is in [0.70, 1.42] and r in [-126, 126], so the result stays normal).
  const auto bits =
      std::bit_cast<int32_t>(p) + (static_cast<int32_t>(r) << 23);
  return not_nan ? std::bit_cast<float>(bits) : x;
}

inline float Sigmoid(float x) { return 1.0f / (1.0f + FastExp(-x)); }

/// tanh via FastExp (same vectorization and shared-path properties). The
/// absolute error stays ~1e-7 everywhere; near zero the *relative* error
/// grows as usual for the exp formulation, which is harmless to the
/// networks (they respond to absolute activation differences).
inline float Tanh(float x) {
  const float e = FastExp(2.0f * x);
  return (e - 1.0f) / (e + 1.0f);
}

}  // namespace rl4oasd::nn
