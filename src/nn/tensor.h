// Dense row-major float matrix plus the handful of vector helpers the
// networks need. Deliberately minimal: the networks in this repo (LSTM,
// embedding, linear, softmax) only require matrix-vector products and
// elementwise ops.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace rl4oasd::nn {

/// A dense vector of floats.
using Vec = std::vector<float>;

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(size_t r, size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(size_t r, size_t c) const {
    return data_[r * cols_ + c];
  }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void SetZero() { std::fill(data_.begin(), data_.end(), 0.0f); }

  /// Resizes (content becomes undefined apart from `fill`).
  void Resize(size_t rows, size_t cols, float fill = 0.0f) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// y = M x  (M: m x n, x: n, y: m). `y` is overwritten.
void MatVec(const Matrix& m, const float* x, float* y);

/// y += M^T g  (accumulates input gradient: M: m x n, g: m, y: n).
void MatTransVecAccum(const Matrix& m, const float* g, float* y);

/// M += g outer x  (rank-1 update: g: m, x: n).
void OuterAccum(Matrix* m, const float* g, const float* x);

/// Dot product of two length-n vectors.
float Dot(const float* a, const float* b, size_t n);

/// L2 norm.
float Norm(const float* a, size_t n);

/// Cosine similarity; returns 0 when either vector is all-zero.
float CosineSimilarity(const float* a, const float* b, size_t n);

/// Numerically stable in-place softmax over n logits.
void SoftmaxInPlace(float* logits, size_t n);

/// Cross-entropy -log p[target] for a probability vector (already softmaxed).
/// Probabilities are clamped away from zero for stability.
float CrossEntropy(const float* probs, size_t n, size_t target);

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace rl4oasd::nn
