#include "roadnet/geometry.h"

#include <algorithm>

namespace rl4oasd::roadnet {

namespace {
constexpr double kEarthRadiusMeters = 6371000.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}  // namespace

double HaversineMeters(const LatLon& a, const LatLon& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double ApproxDistanceMeters(const LatLon& a, const LatLon& b) {
  const double mean_lat = 0.5 * (a.lat + b.lat) * kDegToRad;
  const double dx = (b.lon - a.lon) * kDegToRad * std::cos(mean_lat);
  const double dy = (b.lat - a.lat) * kDegToRad;
  return kEarthRadiusMeters * std::sqrt(dx * dx + dy * dy);
}

double ProjectOntoSegment(const LatLon& p, const LatLon& a, const LatLon& b,
                          LatLon* closest) {
  // Work in an equirectangular local frame anchored at `a`.
  const double mean_lat = 0.5 * (a.lat + b.lat) * kDegToRad;
  const double cos_lat = std::cos(mean_lat);
  const double ax = 0.0, ay = 0.0;
  const double bx = (b.lon - a.lon) * cos_lat;
  const double by = (b.lat - a.lat);
  const double px = (p.lon - a.lon) * cos_lat;
  const double py = (p.lat - a.lat);
  const double vx = bx - ax, vy = by - ay;
  const double len2 = vx * vx + vy * vy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = ((px - ax) * vx + (py - ay) * vy) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  if (closest != nullptr) *closest = Lerp(a, b, t);
  return t;
}

double PointToSegmentMeters(const LatLon& p, const LatLon& a,
                            const LatLon& b) {
  LatLon closest;
  ProjectOntoSegment(p, a, b, &closest);
  return ApproxDistanceMeters(p, closest);
}

}  // namespace rl4oasd::roadnet
