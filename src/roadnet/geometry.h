// Planar/spherical geometry helpers for road networks and GPS trajectories.
#pragma once

#include <cmath>

namespace rl4oasd::roadnet {

/// WGS84 coordinate (degrees).
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance in meters (haversine).
double HaversineMeters(const LatLon& a, const LatLon& b);

/// Fast equirectangular approximation of distance in meters; accurate to a
/// fraction of a percent at city scale, used on hot paths (map matching).
double ApproxDistanceMeters(const LatLon& a, const LatLon& b);

/// Projects point p onto segment (a, b). Returns the clamped interpolation
/// parameter t in [0, 1]; *closest receives the projected coordinate.
double ProjectOntoSegment(const LatLon& p, const LatLon& a, const LatLon& b,
                          LatLon* closest);

/// Distance in meters from p to segment (a, b).
double PointToSegmentMeters(const LatLon& p, const LatLon& a, const LatLon& b);

/// Linear interpolation between two coordinates.
inline LatLon Lerp(const LatLon& a, const LatLon& b, double t) {
  return {a.lat + (b.lat - a.lat) * t, a.lon + (b.lon - a.lon) * t};
}

}  // namespace rl4oasd::roadnet
