#include "roadnet/grid_city.h"

#include <vector>

namespace rl4oasd::roadnet {

namespace {

// Meters-to-degrees conversions near the anchor latitude.
constexpr double kMetersPerDegLat = 111320.0;

RoadClass ClassOf(bool a_arterial, bool b_arterial, bool mid_arterial) {
  if (mid_arterial) return RoadClass::kArterial;
  if (a_arterial || b_arterial) return RoadClass::kCollector;
  return RoadClass::kLocal;
}

double SpeedOf(RoadClass rc) {
  switch (rc) {
    case RoadClass::kArterial:
      return 16.7;  // 60 km/h
    case RoadClass::kCollector:
      return 11.1;  // 40 km/h
    case RoadClass::kLocal:
      return 8.3;   // 30 km/h
  }
  return 8.3;
}

}  // namespace

RoadNetwork BuildGridCity(const GridCityConfig& config) {
  Rng rng(config.seed);
  RoadNetwork net;
  const double meters_per_deg_lon =
      kMetersPerDegLat * std::cos(config.origin_lat * 3.14159265358979 / 180.0);

  std::vector<std::vector<VertexId>> grid(
      config.rows, std::vector<VertexId>(config.cols, kInvalidVertex));
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c < config.cols; ++c) {
      const double jx =
          rng.Uniform(-config.jitter_frac, config.jitter_frac) *
          config.spacing_m;
      const double jy =
          rng.Uniform(-config.jitter_frac, config.jitter_frac) *
          config.spacing_m;
      const double lat =
          config.origin_lat + (r * config.spacing_m + jy) / kMetersPerDegLat;
      const double lon =
          config.origin_lon + (c * config.spacing_m + jx) / meters_per_deg_lon;
      grid[r][c] = net.AddVertex({lat, lon});
    }
  }

  auto is_arterial_row = [&](int r) {
    return config.arterial_every > 0 && r % config.arterial_every == 0;
  };
  auto is_arterial_col = [&](int c) {
    return config.arterial_every > 0 && c % config.arterial_every == 0;
  };

  auto add_bidirectional = [&](VertexId a, VertexId b, RoadClass rc) {
    const double speed = SpeedOf(rc);
    net.AddEdge(a, b, -1.0, speed, rc);
    net.AddEdge(b, a, -1.0, speed, rc);
  };

  // Horizontal streets: the segment (r,c)-(r,c+1) lies along row r.
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c + 1 < config.cols; ++c) {
      const bool mid_arterial = is_arterial_row(r);
      const RoadClass rc =
          ClassOf(is_arterial_col(c), is_arterial_col(c + 1), mid_arterial);
      if (rc == RoadClass::kLocal && rng.Bernoulli(config.removal_prob)) {
        continue;  // irregular city fabric: drop some local streets
      }
      add_bidirectional(grid[r][c], grid[r][c + 1], rc);
    }
  }
  // Vertical streets: the segment (r,c)-(r+1,c) lies along column c.
  for (int c = 0; c < config.cols; ++c) {
    for (int r = 0; r + 1 < config.rows; ++r) {
      const bool mid_arterial = is_arterial_col(c);
      const RoadClass rc =
          ClassOf(is_arterial_row(r), is_arterial_row(r + 1), mid_arterial);
      if (rc == RoadClass::kLocal && rng.Bernoulli(config.removal_prob)) {
        continue;
      }
      add_bidirectional(grid[r][c], grid[r + 1][c], rc);
    }
  }

  net.Build();
  return net;
}

}  // namespace rl4oasd::roadnet
