// Synthetic city road-network builder. Substitutes the OpenStreetMap
// Chengdu/Xi'an networks with a perturbed grid of comparable size: arterial
// rows/columns (fast, popular), collector and local streets, random edge
// removals for irregularity, and bidirectional segments (two directed edges).
#pragma once

#include "common/rng.h"
#include "roadnet/road_network.h"

namespace rl4oasd::roadnet {

/// Parameters of the synthetic city.
struct GridCityConfig {
  int rows = 36;                 // intersections per column
  int cols = 36;                 // intersections per row
  double spacing_m = 200.0;      // nominal block edge length
  double jitter_frac = 0.15;     // positional jitter as fraction of spacing
  int arterial_every = 5;        // every k-th row/col is an arterial
  double removal_prob = 0.03;    // fraction of local streets removed
  double origin_lat = 30.60;     // Chengdu-ish anchor
  double origin_lon = 104.00;
  uint64_t seed = 7;
};

/// Builds the network. The result has rows*cols vertices and roughly
/// 2 * (2*rows*cols - rows - cols) * (1 - removal_prob) directed edges; with
/// the default 36x36 grid that is ~4,900 segments, matching the paper's
/// dataset scale (Table II: 4,885 / 5,052 segments).
RoadNetwork BuildGridCity(const GridCityConfig& config);

}  // namespace rl4oasd::roadnet
