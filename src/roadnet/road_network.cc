#include "roadnet/road_network.h"

#include "common/csv.h"
#include "common/logging.h"
#include "common/strings.h"

namespace rl4oasd::roadnet {

VertexId RoadNetwork::AddVertex(LatLon pos) {
  RL4_CHECK(!built_) << "AddVertex after Build()";
  vertices_.push_back(Vertex{pos});
  return static_cast<VertexId>(vertices_.size() - 1);
}

EdgeId RoadNetwork::AddEdge(VertexId from, VertexId to, double length_m,
                            double speed_limit_mps, RoadClass road_class) {
  RL4_CHECK(!built_) << "AddEdge after Build()";
  RL4_CHECK_GE(from, 0);
  RL4_CHECK_LT(static_cast<size_t>(from), vertices_.size());
  RL4_CHECK_GE(to, 0);
  RL4_CHECK_LT(static_cast<size_t>(to), vertices_.size());
  Edge e;
  e.from = from;
  e.to = to;
  e.length_m = length_m > 0.0
                   ? length_m
                   : HaversineMeters(vertices_[from].pos, vertices_[to].pos);
  e.speed_limit_mps = speed_limit_mps;
  e.road_class = road_class;
  edges_.push_back(e);
  return static_cast<EdgeId>(edges_.size() - 1);
}

void RoadNetwork::Build() {
  RL4_CHECK(!built_);
  out_edges_.assign(vertices_.size(), {});
  in_edges_.assign(vertices_.size(), {});
  for (EdgeId e = 0; e < static_cast<EdgeId>(edges_.size()); ++e) {
    out_edges_[edges_[e].from].push_back(e);
    in_edges_[edges_[e].to].push_back(e);
  }
  built_ = true;
}

double RoadNetwork::PathLengthMeters(const std::vector<EdgeId>& path) const {
  double total = 0.0;
  for (EdgeId e : path) total += edges_[e].length_m;
  return total;
}

bool RoadNetwork::IsConnectedPath(const std::vector<EdgeId>& path) const {
  for (size_t i = 1; i < path.size(); ++i) {
    if (!AreConsecutive(path[i - 1], path[i])) return false;
  }
  return true;
}

Status RoadNetwork::SaveCsv(const std::string& prefix) const {
  CsvTable vt;
  vt.header = {"id", "lat", "lon"};
  for (size_t v = 0; v < vertices_.size(); ++v) {
    vt.rows.push_back({std::to_string(v),
                       StrFormat("%.7f", vertices_[v].pos.lat),
                       StrFormat("%.7f", vertices_[v].pos.lon)});
  }
  RL4_RETURN_NOT_OK(WriteCsv(prefix + ".vertices.csv", vt));

  CsvTable et;
  et.header = {"id", "from", "to", "length_m", "speed_mps", "class"};
  for (size_t e = 0; e < edges_.size(); ++e) {
    const Edge& ed = edges_[e];
    et.rows.push_back({std::to_string(e), std::to_string(ed.from),
                       std::to_string(ed.to), StrFormat("%.2f", ed.length_m),
                       StrFormat("%.2f", ed.speed_limit_mps),
                       std::to_string(static_cast<int>(ed.road_class))});
  }
  return WriteCsv(prefix + ".edges.csv", et);
}

Result<RoadNetwork> RoadNetwork::LoadCsv(const std::string& prefix) {
  RL4_ASSIGN_OR_RETURN(CsvTable vt, ReadCsv(prefix + ".vertices.csv"));
  RL4_ASSIGN_OR_RETURN(CsvTable et, ReadCsv(prefix + ".edges.csv"));
  RoadNetwork net;
  for (const auto& row : vt.rows) {
    if (row.size() < 3) return Status::IOError("bad vertex row");
    double lat, lon;
    if (!ParseDouble(row[1], &lat) || !ParseDouble(row[2], &lon)) {
      return Status::IOError("bad vertex coordinates");
    }
    net.AddVertex({lat, lon});
  }
  for (const auto& row : et.rows) {
    if (row.size() < 6) return Status::IOError("bad edge row");
    int64_t from, to, cls;
    double len, speed;
    if (!ParseInt64(row[1], &from) || !ParseInt64(row[2], &to) ||
        !ParseDouble(row[3], &len) || !ParseDouble(row[4], &speed) ||
        !ParseInt64(row[5], &cls)) {
      return Status::IOError("bad edge fields");
    }
    if (from < 0 || to < 0 ||
        static_cast<size_t>(from) >= net.NumVertices() ||
        static_cast<size_t>(to) >= net.NumVertices()) {
      return Status::IOError("edge endpoint out of range");
    }
    net.AddEdge(static_cast<VertexId>(from), static_cast<VertexId>(to), len,
                speed, static_cast<RoadClass>(cls));
  }
  net.Build();
  return net;
}

}  // namespace rl4oasd::roadnet
