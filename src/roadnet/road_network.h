// Directed road-network graph G(V, E): vertices are intersections, edges are
// road segments. This is the substrate that map matching, noisy labeling,
// RNEL, and route generation operate on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "roadnet/geometry.h"

namespace rl4oasd::roadnet {

using VertexId = int32_t;
using EdgeId = int32_t;
inline constexpr VertexId kInvalidVertex = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// Functional class of a road segment (affects speed and route popularity).
enum class RoadClass : uint8_t {
  kArterial = 0,
  kCollector = 1,
  kLocal = 2,
};

/// An intersection.
struct Vertex {
  LatLon pos;
};

/// A directed road segment from vertex `from` to vertex `to`.
struct Edge {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  double length_m = 0.0;
  double speed_limit_mps = 13.9;  // ~50 km/h default
  RoadClass road_class = RoadClass::kLocal;
};

/// Immutable after Build(): a directed graph with edge-level adjacency,
/// supporting the paper's `e.in` / `e.out` degree queries (RNEL) and
/// successor enumeration (route generation, map matching).
class RoadNetwork {
 public:
  /// Adds a vertex, returning its id.
  VertexId AddVertex(LatLon pos);

  /// Adds a directed edge; length is computed from endpoint geometry if
  /// `length_m` <= 0. Returns the edge id.
  EdgeId AddEdge(VertexId from, VertexId to, double length_m = -1.0,
                 double speed_limit_mps = 13.9,
                 RoadClass road_class = RoadClass::kLocal);

  /// Finalizes adjacency indices. Must be called once after all Add* calls
  /// and before any query.
  void Build();
  bool built() const { return built_; }

  size_t NumVertices() const { return vertices_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  const Vertex& vertex(VertexId v) const { return vertices_[v]; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// Edges leaving / entering a vertex.
  const std::vector<EdgeId>& OutEdges(VertexId v) const {
    return out_edges_[v];
  }
  const std::vector<EdgeId>& InEdges(VertexId v) const { return in_edges_[v]; }

  /// Paper notation: e.out = number of possible successor segments (out
  /// degree of e's end vertex); e.in = number of possible predecessor
  /// segments (in degree of e's start vertex).
  int EdgeOutDegree(EdgeId e) const {
    return static_cast<int>(out_edges_[edges_[e].to].size());
  }
  int EdgeInDegree(EdgeId e) const {
    return static_cast<int>(in_edges_[edges_[e].from].size());
  }

  /// Segments that can directly follow / precede `e` on the graph.
  const std::vector<EdgeId>& NextEdges(EdgeId e) const {
    return out_edges_[edges_[e].to];
  }
  const std::vector<EdgeId>& PrevEdges(EdgeId e) const {
    return in_edges_[edges_[e].from];
  }

  /// True if edge `b` can directly follow edge `a`.
  bool AreConsecutive(EdgeId a, EdgeId b) const {
    return edges_[a].to == edges_[b].from;
  }

  /// Midpoint coordinate of an edge (used by visualization and case studies).
  LatLon EdgeMidpoint(EdgeId e) const {
    const Edge& ed = edges_[e];
    return Lerp(vertices_[ed.from].pos, vertices_[ed.to].pos, 0.5);
  }

  /// Total length of a path of edge ids (does not check connectivity).
  double PathLengthMeters(const std::vector<EdgeId>& path) const;

  /// Validates that `path` is a connected sequence of edges.
  bool IsConnectedPath(const std::vector<EdgeId>& path) const;

  /// Persistence (two CSV files: <prefix>.vertices.csv, <prefix>.edges.csv).
  Status SaveCsv(const std::string& prefix) const;
  static Result<RoadNetwork> LoadCsv(const std::string& prefix);

 private:
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  bool built_ = false;
};

}  // namespace rl4oasd::roadnet
