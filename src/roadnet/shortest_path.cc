#include "roadnet/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace rl4oasd::roadnet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double cost;
  int32_t node;
  bool operator>(const QueueEntry& other) const { return cost > other.cost; }
};

using MinQueue =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

double WeightOf(const RoadNetwork& net, const EdgeWeightFn& weight, EdgeId e) {
  return weight ? weight(e) : net.edge(e).length_m;
}

}  // namespace

std::vector<EdgeId> ShortestPath(const RoadNetwork& net, VertexId src,
                                 VertexId dst, const EdgeWeightFn& weight) {
  const size_t n = net.NumVertices();
  std::vector<double> dist(n, kInf);
  std::vector<EdgeId> parent_edge(n, kInvalidEdge);
  MinQueue pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    auto [cost, v] = pq.top();
    pq.pop();
    if (cost > dist[v]) continue;
    if (v == dst) break;
    for (EdgeId e : net.OutEdges(v)) {
      const double w = WeightOf(net, weight, e);
      const VertexId u = net.edge(e).to;
      if (cost + w < dist[u]) {
        dist[u] = cost + w;
        parent_edge[u] = e;
        pq.push({dist[u], u});
      }
    }
  }
  if (dist[dst] == kInf) return {};
  std::vector<EdgeId> path;
  VertexId v = dst;
  while (v != src) {
    const EdgeId e = parent_edge[v];
    if (e == kInvalidEdge) return {};
    path.push_back(e);
    v = net.edge(e).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<EdgeId> ShortestPathBetweenEdges(const RoadNetwork& net,
                                             EdgeId src_edge, EdgeId dst_edge,
                                             const EdgeWeightFn& weight) {
  // Dijkstra over the edge graph: a node is an edge; moving to a successor
  // edge costs that successor's weight. The source edge's own weight anchors
  // the start cost so route comparisons remain consistent.
  const size_t n = net.NumEdges();
  std::vector<double> dist(n, kInf);
  std::vector<EdgeId> parent(n, kInvalidEdge);
  MinQueue pq;
  dist[src_edge] = WeightOf(net, weight, src_edge);
  pq.push({dist[src_edge], src_edge});
  while (!pq.empty()) {
    auto [cost, e] = pq.top();
    pq.pop();
    if (cost > dist[e]) continue;
    if (e == dst_edge) break;
    for (EdgeId next : net.NextEdges(e)) {
      const double w = WeightOf(net, weight, next);
      if (cost + w < dist[next]) {
        dist[next] = cost + w;
        parent[next] = e;
        pq.push({dist[next], next});
      }
    }
  }
  if (dist[dst_edge] == kInf) return {};
  std::vector<EdgeId> path;
  EdgeId e = dst_edge;
  while (e != kInvalidEdge) {
    path.push_back(e);
    if (e == src_edge) break;
    e = parent[e];
  }
  if (path.back() != src_edge) return {};
  std::reverse(path.begin(), path.end());
  return path;
}

double NetworkDistanceMeters(const RoadNetwork& net, EdgeId src_edge,
                             EdgeId dst_edge) {
  if (src_edge == dst_edge) return 0.0;
  auto path = ShortestPathBetweenEdges(net, src_edge, dst_edge);
  if (path.empty()) return -1.0;
  // Distance travelled after finishing src_edge up to finishing dst_edge.
  double d = 0.0;
  for (size_t i = 1; i < path.size(); ++i) d += net.edge(path[i]).length_m;
  return d;
}

void EdgeDijkstra::Attach(const RoadNetwork* net) {
  if (net_ == net) return;
  net_ = net;
  const size_t n = net == nullptr ? 0 : net->NumEdges();
  dist_.assign(n, 0.0);
  reached_epoch_.assign(n, 0);
  finished_epoch_.assign(n, 0);
  target_epoch_.assign(n, 0);
  run_epoch_ = 0;
  target_gen_ = 0;
  num_targets_ = 0;
}

void EdgeDijkstra::BumpRunEpoch() {
  // The run epoch doubles as the "reached"/"finished" stamp; on the (in
  // practice unreachable) wrap, clear the stamps so a stale epoch from 4
  // billion runs ago cannot alias a live one.
  if (run_epoch_ == std::numeric_limits<uint32_t>::max()) {
    std::fill(reached_epoch_.begin(), reached_epoch_.end(), 0u);
    std::fill(finished_epoch_.begin(), finished_epoch_.end(), 0u);
    run_epoch_ = 0;
  }
  ++run_epoch_;
}

void EdgeDijkstra::SetTargets(const EdgeId* targets, size_t count) {
  if (target_gen_ == std::numeric_limits<uint32_t>::max()) {
    std::fill(target_epoch_.begin(), target_epoch_.end(), 0u);
    target_gen_ = 0;
  }
  ++target_gen_;
  num_targets_ = count;
  for (size_t i = 0; i < count; ++i) {
    target_epoch_[static_cast<size_t>(targets[i])] = target_gen_;
  }
}

void EdgeDijkstra::Run(EdgeId src, double max_dist_m) {
  BumpRunEpoch();
  heap_.clear();
  const auto cmp = [](const std::pair<double, EdgeId>& a,
                      const std::pair<double, EdgeId>& b) {
    return a.first > b.first;  // min-heap on distance
  };
  size_t targets_left = num_targets_;
  const size_t s = static_cast<size_t>(src);
  dist_[s] = 0.0;
  reached_epoch_[s] = run_epoch_;
  heap_.emplace_back(0.0, src);
  while (!heap_.empty()) {
    const auto [d, e] = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    heap_.pop_back();
    const size_t ei = static_cast<size_t>(e);
    if (d > dist_[ei]) continue;  // lazy deletion of a superseded entry
    if (finished_epoch_[ei] != run_epoch_) {
      finished_epoch_[ei] = run_epoch_;
      if (targets_left > 0 && target_epoch_[ei] == target_gen_ &&
          --targets_left == 0) {
        return;  // every declared target settled — its distance is final
      }
    }
    for (EdgeId next : net_->NextEdges(e)) {
      const double nd = d + net_->edge(next).length_m;
      if (nd > max_dist_m) continue;
      const size_t ni = static_cast<size_t>(next);
      if (reached_epoch_[ni] == run_epoch_ && dist_[ni] <= nd) continue;
      dist_[ni] = nd;
      reached_epoch_[ni] = run_epoch_;
      heap_.emplace_back(nd, next);
      std::push_heap(heap_.begin(), heap_.end(), cmp);
    }
  }
}

void EdgeDistanceTable::Build(const RoadNetwork& net, double bound_m) {
  bound_m_ = bound_m;
  const size_t n = net.NumEdges();
  offsets_.assign(n + 1, 0);
  entries_.clear();
  // Reuses EdgeDijkstra rather than a private search so a table entry is the
  // product of the exact same relaxation sequence as a live query — the
  // bit-equality contract between the two lookup paths is structural, not a
  // numerical coincidence.
  EdgeDijkstra search(&net);
  for (EdgeId src = 0; src < static_cast<EdgeId>(n); ++src) {
    offsets_[static_cast<size_t>(src)] = entries_.size();
    search.Run(src, bound_m);
    for (size_t e = 0; e < n; ++e) {
      const double d = search.DistanceTo(static_cast<EdgeId>(e));
      if (d >= 0.0) entries_.push_back({static_cast<EdgeId>(e), d});
    }
  }
  offsets_[n] = entries_.size();
}

std::vector<std::vector<EdgeId>> AlternativeRoutes(const RoadNetwork& net,
                                                   EdgeId src_edge,
                                                   EdgeId dst_edge, int k,
                                                   double penalty) {
  std::vector<std::vector<EdgeId>> routes;
  std::set<std::vector<EdgeId>> seen;
  std::vector<double> factor(net.NumEdges(), 1.0);
  auto weight = [&](EdgeId e) { return net.edge(e).length_m * factor[e]; };
  for (int i = 0; i < k * 3 && static_cast<int>(routes.size()) < k; ++i) {
    auto path = ShortestPathBetweenEdges(net, src_edge, dst_edge, weight);
    if (path.empty()) break;
    if (seen.insert(path).second) {
      routes.push_back(path);
    }
    for (EdgeId e : path) factor[e] *= penalty;
  }
  return routes;
}

}  // namespace rl4oasd::roadnet
