#include "roadnet/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace rl4oasd::roadnet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double cost;
  int32_t node;
  bool operator>(const QueueEntry& other) const { return cost > other.cost; }
};

using MinQueue =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

double WeightOf(const RoadNetwork& net, const EdgeWeightFn& weight, EdgeId e) {
  return weight ? weight(e) : net.edge(e).length_m;
}

}  // namespace

std::vector<EdgeId> ShortestPath(const RoadNetwork& net, VertexId src,
                                 VertexId dst, const EdgeWeightFn& weight) {
  const size_t n = net.NumVertices();
  std::vector<double> dist(n, kInf);
  std::vector<EdgeId> parent_edge(n, kInvalidEdge);
  MinQueue pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    auto [cost, v] = pq.top();
    pq.pop();
    if (cost > dist[v]) continue;
    if (v == dst) break;
    for (EdgeId e : net.OutEdges(v)) {
      const double w = WeightOf(net, weight, e);
      const VertexId u = net.edge(e).to;
      if (cost + w < dist[u]) {
        dist[u] = cost + w;
        parent_edge[u] = e;
        pq.push({dist[u], u});
      }
    }
  }
  if (dist[dst] == kInf) return {};
  std::vector<EdgeId> path;
  VertexId v = dst;
  while (v != src) {
    const EdgeId e = parent_edge[v];
    if (e == kInvalidEdge) return {};
    path.push_back(e);
    v = net.edge(e).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<EdgeId> ShortestPathBetweenEdges(const RoadNetwork& net,
                                             EdgeId src_edge, EdgeId dst_edge,
                                             const EdgeWeightFn& weight) {
  // Dijkstra over the edge graph: a node is an edge; moving to a successor
  // edge costs that successor's weight. The source edge's own weight anchors
  // the start cost so route comparisons remain consistent.
  const size_t n = net.NumEdges();
  std::vector<double> dist(n, kInf);
  std::vector<EdgeId> parent(n, kInvalidEdge);
  MinQueue pq;
  dist[src_edge] = WeightOf(net, weight, src_edge);
  pq.push({dist[src_edge], src_edge});
  while (!pq.empty()) {
    auto [cost, e] = pq.top();
    pq.pop();
    if (cost > dist[e]) continue;
    if (e == dst_edge) break;
    for (EdgeId next : net.NextEdges(e)) {
      const double w = WeightOf(net, weight, next);
      if (cost + w < dist[next]) {
        dist[next] = cost + w;
        parent[next] = e;
        pq.push({dist[next], next});
      }
    }
  }
  if (dist[dst_edge] == kInf) return {};
  std::vector<EdgeId> path;
  EdgeId e = dst_edge;
  while (e != kInvalidEdge) {
    path.push_back(e);
    if (e == src_edge) break;
    e = parent[e];
  }
  if (path.back() != src_edge) return {};
  std::reverse(path.begin(), path.end());
  return path;
}

double NetworkDistanceMeters(const RoadNetwork& net, EdgeId src_edge,
                             EdgeId dst_edge) {
  if (src_edge == dst_edge) return 0.0;
  auto path = ShortestPathBetweenEdges(net, src_edge, dst_edge);
  if (path.empty()) return -1.0;
  // Distance travelled after finishing src_edge up to finishing dst_edge.
  double d = 0.0;
  for (size_t i = 1; i < path.size(); ++i) d += net.edge(path[i]).length_m;
  return d;
}

std::vector<std::vector<EdgeId>> AlternativeRoutes(const RoadNetwork& net,
                                                   EdgeId src_edge,
                                                   EdgeId dst_edge, int k,
                                                   double penalty) {
  std::vector<std::vector<EdgeId>> routes;
  std::set<std::vector<EdgeId>> seen;
  std::vector<double> factor(net.NumEdges(), 1.0);
  auto weight = [&](EdgeId e) { return net.edge(e).length_m * factor[e]; };
  for (int i = 0; i < k * 3 && static_cast<int>(routes.size()) < k; ++i) {
    auto path = ShortestPathBetweenEdges(net, src_edge, dst_edge, weight);
    if (path.empty()) break;
    if (seen.insert(path).second) {
      routes.push_back(path);
    }
    for (EdgeId e : path) factor[e] *= penalty;
  }
  return routes;
}

}  // namespace rl4oasd::roadnet
