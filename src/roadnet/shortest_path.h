// Shortest paths on the road network, expressed as edge sequences (the
// trajectory representation used throughout the paper). Includes a
// penalty-based k-alternative-routes generator used to synthesize the
// "several distinct normal routes per SD pair" structure.
#pragma once

#include <functional>
#include <vector>

#include "roadnet/road_network.h"

namespace rl4oasd::roadnet {

/// Weight callback: cost of traversing an edge. Defaults to edge length.
using EdgeWeightFn = std::function<double(EdgeId)>;

/// Dijkstra over vertices. Returns the edge sequence of a least-cost path
/// from `src` vertex to `dst` vertex, or an empty vector if unreachable.
std::vector<EdgeId> ShortestPath(const RoadNetwork& net, VertexId src,
                                 VertexId dst,
                                 const EdgeWeightFn& weight = nullptr);

/// Least-cost path between two edges: starts by traversing `src_edge` and
/// ends by traversing `dst_edge` (inclusive on both ends). Empty if
/// unreachable.
std::vector<EdgeId> ShortestPathBetweenEdges(
    const RoadNetwork& net, EdgeId src_edge, EdgeId dst_edge,
    const EdgeWeightFn& weight = nullptr);

/// Unweighted network distance (meters) between two edges, used by the map
/// matcher's transition model. Returns a negative value if unreachable.
double NetworkDistanceMeters(const RoadNetwork& net, EdgeId src_edge,
                             EdgeId dst_edge);

/// Generates up to k maximally-distinct routes between two edges by
/// iteratively penalizing edges of previously found routes (multiplying
/// their weight by `penalty`). Routes are deduplicated; the first one is the
/// true shortest path. This produces the "T1, T2 normal route" structure of
/// the paper's Figure 1.
std::vector<std::vector<EdgeId>> AlternativeRoutes(const RoadNetwork& net,
                                                   EdgeId src_edge,
                                                   EdgeId dst_edge, int k,
                                                   double penalty = 2.5);

}  // namespace rl4oasd::roadnet
