// Shortest paths on the road network, expressed as edge sequences (the
// trajectory representation used throughout the paper). Includes a
// penalty-based k-alternative-routes generator used to synthesize the
// "several distinct normal routes per SD pair" structure.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "roadnet/road_network.h"

namespace rl4oasd::roadnet {

/// Weight callback: cost of traversing an edge. Defaults to edge length.
using EdgeWeightFn = std::function<double(EdgeId)>;

/// Dijkstra over vertices. Returns the edge sequence of a least-cost path
/// from `src` vertex to `dst` vertex, or an empty vector if unreachable.
std::vector<EdgeId> ShortestPath(const RoadNetwork& net, VertexId src,
                                 VertexId dst,
                                 const EdgeWeightFn& weight = nullptr);

/// Least-cost path between two edges: starts by traversing `src_edge` and
/// ends by traversing `dst_edge` (inclusive on both ends). Empty if
/// unreachable.
std::vector<EdgeId> ShortestPathBetweenEdges(
    const RoadNetwork& net, EdgeId src_edge, EdgeId dst_edge,
    const EdgeWeightFn& weight = nullptr);

/// Unweighted network distance (meters) between two edges, used by the map
/// matcher's transition model. Returns a negative value if unreachable.
double NetworkDistanceMeters(const RoadNetwork& net, EdgeId src_edge,
                             EdgeId dst_edge);

/// Reusable bounded Dijkstra over the edge graph (nodes are edges; stepping
/// onto a successor edge costs that successor's length). Distances are
/// "meters of edges traversed after `src`", the map matcher's transition
/// metric. The search state lives in epoch-stamped flat arrays sized to the
/// network plus one shared heap buffer, so back-to-back runs allocate
/// nothing and reset in O(1) — this replaces the seed matcher's fresh
/// `unordered_map` per (layer, candidate) search.
///
/// Optionally, a target set can be declared before a batch of runs; each run
/// then terminates as soon as every target is settled (its distance is
/// final), instead of flooding the whole `max_dist_m` ball. Early
/// termination is exact: a settled distance equals what the exhaustive
/// search would produce, and targets not reached within the bound are
/// reported unreachable either way.
///
/// Not thread-safe; use one instance per thread.
class EdgeDijkstra {
 public:
  EdgeDijkstra() = default;
  explicit EdgeDijkstra(const RoadNetwork* net) { Attach(net); }

  /// Binds the search to a network (re-binding resizes the scratch arrays).
  void Attach(const RoadNetwork* net);

  /// Declares the target set for subsequent Run() calls. Targets must be
  /// distinct edge ids. An empty set disables early termination.
  void SetTargets(const EdgeId* targets, size_t count);

  /// Bounded search from `src`: after this, DistanceTo(e) is valid for every
  /// edge settled within `max_dist_m`. With targets declared, stops as soon
  /// as all of them are settled.
  void Run(EdgeId src, double max_dist_m);

  /// Distance from the last Run()'s source to `e` (0 for the source itself),
  /// or a negative value if `e` was not reached within the bound.
  double DistanceTo(EdgeId e) const {
    return finished_epoch_[static_cast<size_t>(e)] == run_epoch_
               ? dist_[static_cast<size_t>(e)]
               : -1.0;
  }

 private:
  void BumpRunEpoch();

  const RoadNetwork* net_ = nullptr;
  std::vector<double> dist_;
  std::vector<uint32_t> reached_epoch_;   // dist_[e] is a live tentative value
  std::vector<uint32_t> finished_epoch_;  // dist_[e] is settled (final)
  std::vector<uint32_t> target_epoch_;    // e is in the declared target set
  uint32_t run_epoch_ = 0;
  uint32_t target_gen_ = 0;
  size_t num_targets_ = 0;
  std::vector<std::pair<double, EdgeId>> heap_;  // min-heap buffer, reused
};

/// Precomputed bounded all-pairs edge distances — the FMM accelerator
/// (an upper-bounded origin-destination table): one bounded Dijkstra per
/// source edge at build time, then every (src, dst) distance within
/// `bound_m` is a binary search in a CSR row. Exact by construction: an
/// entry is the same settled distance EdgeDijkstra::Run computes, and a
/// missing entry means the true distance exceeds `bound_m` (bounded-search
/// reachability equals a true-distance comparison because prefix sums of
/// non-negative edge lengths are monotone). Immutable after Build, so any
/// number of threads may share one table.
class EdgeDistanceTable {
 public:
  EdgeDistanceTable() = default;

  /// Builds the table over all source edges (O(E) bounded searches).
  void Build(const RoadNetwork& net, double bound_m);

  bool built() const { return !offsets_.empty(); }
  double bound_m() const { return bound_m_; }
  size_t NumEntries() const { return entries_.size(); }

  /// Distance from `src` to `dst` (0 for src == dst), or a negative value
  /// if it exceeds bound_m. Only valid after Build.
  double DistanceTo(EdgeId src, EdgeId dst) const {
    const Entry* lo = entries_.data() + offsets_[static_cast<size_t>(src)];
    const Entry* hi = entries_.data() + offsets_[static_cast<size_t>(src) + 1];
    while (lo < hi) {
      const Entry* mid = lo + (hi - lo) / 2;
      if (mid->dst < dst) {
        lo = mid + 1;
      } else if (mid->dst > dst) {
        hi = mid;
      } else {
        return mid->dist;
      }
    }
    return -1.0;
  }

 private:
  struct Entry {
    EdgeId dst;
    double dist;
  };
  std::vector<size_t> offsets_;  // per-source row bounds into entries_
  std::vector<Entry> entries_;   // rows sorted by dst (built in id order)
  double bound_m_ = 0.0;
};

/// Generates up to k maximally-distinct routes between two edges by
/// iteratively penalizing edges of previously found routes (multiplying
/// their weight by `penalty`). Routes are deduplicated; the first one is the
/// true shortest path. This produces the "T1, T2 normal route" structure of
/// the paper's Figure 1.
std::vector<std::vector<EdgeId>> AlternativeRoutes(const RoadNetwork& net,
                                                   EdgeId src_edge,
                                                   EdgeId dst_edge, int k,
                                                   double penalty = 2.5);

}  // namespace rl4oasd::roadnet
