#include "serve/chaos.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "serve/ingest_guard.h"

namespace rl4oasd::serve {

namespace {

Status ParseDouble(std::string_view key, std::string_view value,
                   double* out) {
  const std::string v(value);
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size()) {
    return Status::InvalidArgument("chaos spec: bad number for '" +
                                   std::string(key) + "': '" + v + "'");
  }
  *out = d;
  return Status::OK();
}

Status ParseProb(std::string_view key, std::string_view value, double* out) {
  RL4_RETURN_NOT_OK(ParseDouble(key, value, out));
  if (*out < 0.0 || *out > 1.0) {
    return Status::InvalidArgument("chaos spec: '" + std::string(key) +
                                   "' must be a probability in [0, 1]");
  }
  return Status::OK();
}

Status ParsePositiveInt(std::string_view key, std::string_view value,
                        int* out) {
  double d;
  RL4_RETURN_NOT_OK(ParseDouble(key, value, &d));
  if (d < 1.0 || d != static_cast<double>(static_cast<int>(d))) {
    return Status::InvalidArgument("chaos spec: '" + std::string(key) +
                                   "' must be a positive integer");
  }
  *out = static_cast<int>(d);
  return Status::OK();
}

}  // namespace

Result<ChaosSpec> ParseChaosSpec(std::string_view spec) {
  ChaosSpec out;
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string_view item =
        comma == std::string_view::npos ? spec.substr(pos)
                                        : spec.substr(pos, comma - pos);
    pos = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          "chaos spec: expected key=value, got '" + std::string(item) + "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "drop") {
      RL4_RETURN_NOT_OK(ParseProb(key, value, &out.drop_prob));
    } else if (key == "dup") {
      RL4_RETURN_NOT_OK(ParseProb(key, value, &out.dup_prob));
    } else if (key == "reorder") {
      RL4_RETURN_NOT_OK(ParseProb(key, value, &out.reorder_prob));
    } else if (key == "skew") {
      RL4_RETURN_NOT_OK(ParseProb(key, value, &out.skew_prob));
    } else if (key == "teleport") {
      RL4_RETURN_NOT_OK(ParseProb(key, value, &out.teleport_prob));
    } else if (key == "window") {
      RL4_RETURN_NOT_OK(ParsePositiveInt(key, value, &out.reorder_window));
    } else if (key == "skew_offset") {
      RL4_RETURN_NOT_OK(ParseDouble(key, value, &out.skew_offset_s));
      if (out.skew_offset_s <= 0.0) {
        return Status::InvalidArgument(
            "chaos spec: 'skew_offset' must be positive");
      }
    } else if (key == "hops") {
      RL4_RETURN_NOT_OK(ParsePositiveInt(key, value, &out.teleport_min_hops));
    } else if (key == "seed") {
      double d;
      RL4_RETURN_NOT_OK(ParseDouble(key, value, &d));
      if (d < 0.0 || d != static_cast<double>(static_cast<uint64_t>(d))) {
        return Status::InvalidArgument(
            "chaos spec: 'seed' must be a non-negative integer");
      }
      out.seed = static_cast<uint64_t>(d);
    } else {
      return Status::InvalidArgument("chaos spec: unknown key '" +
                                     std::string(key) + "'");
    }
  }
  const double sum = out.drop_prob + out.dup_prob + out.reorder_prob +
                     out.skew_prob + out.teleport_prob;
  if (sum > 1.0) {
    return Status::InvalidArgument(
        "chaos spec: perturbation probabilities sum to " +
        std::to_string(sum) + " > 1 (one draw per point)");
  }
  return out;
}

ChaosInjector::ChaosInjector(ChaosSpec spec, const roadnet::RoadNetwork* net)
    : spec_(spec), net_(net), rng_(spec.seed) {}

traj::EdgeId ChaosInjector::DrawTeleportEdge(traj::EdgeId from) {
  if (net_ == nullptr || from == roadnet::kInvalidEdge) {
    return roadnet::kInvalidEdge;
  }
  const size_t n = net_->NumEdges();
  if (n < 2) return roadnet::kInvalidEdge;
  // Rejection-sample a provably unreachable edge. A graph so connected that
  // 64 draws all land within the hop ball simply yields no teleport for
  // this point (clean fallback, not counted) — exactness over coverage.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto e =
        static_cast<traj::EdgeId>(rng_.UniformInt(static_cast<uint64_t>(n)));
    if (e == from) continue;
    if (!IngestGuard::ReachableWithinHops(*net_, from, e,
                                          spec_.teleport_min_hops)) {
      return e;
    }
  }
  return roadnet::kInvalidEdge;
}

void ChaosInjector::Emit(const FleetPoint& p, bool teleported,
                         VehicleState* vs, std::vector<FleetPoint>* out) {
  if (vs->pending_gap) {
    // The drop run is now exposed: the guard will see this point's forward
    // gap. One run, one gap event, charged exactly once.
    ++counts_.drop_gaps;
    vs->pending_gap = false;
  }
  out->push_back(p);
  ++counts_.emitted;
  if (!teleported) vs->last_clean_edge = p.edge;
  if (vs->held.empty()) return;
  // This emission overtakes every live hold; a hold that filled its window
  // is released right behind it. Releases do not advance other holds
  // (bounded displacement, no cascades).
  size_t keep = 0;
  for (size_t i = 0; i < vs->held.size(); ++i) {
    Held h = vs->held[i];
    ++h.overtaken;
    if (h.overtaken >= spec_.reorder_window) {
      out->push_back(h.point);
      ++counts_.emitted;
      ++counts_.reordered;
      ++perturbed_[h.point.vehicle_id];
    } else {
      vs->held[keep++] = h;
    }
  }
  vs->held.resize(keep);
}

std::vector<FleetPoint> ChaosInjector::Perturb(
    std::span<const FleetPoint> clean) {
  counts_ = ChaosCounts{};
  perturbed_.clear();
  vehicles_.clear();
  std::vector<int64_t> vehicle_order;  // deterministic flush order
  std::vector<FleetPoint> out;
  out.reserve(clean.size() + clean.size() / 8);
  for (const FleetPoint& p : clean) {
    ++counts_.input;
    auto [it, inserted] = vehicles_.try_emplace(p.vehicle_id);
    if (inserted) vehicle_order.push_back(p.vehicle_id);
    VehicleState& vs = it->second;
    const double u = rng_.Uniform();
    double edge = spec_.drop_prob;
    if (u < edge) {
      ++counts_.dropped;
      ++perturbed_[p.vehicle_id];
      vs.pending_gap = true;
      continue;
    }
    if (u < (edge += spec_.dup_prob)) {
      // Original then an identical retransmit: the guard's exact
      // duplicate definition (same edge, same timestamp, back-to-back).
      Emit(p, /*teleported=*/false, &vs, &out);
      Emit(p, /*teleported=*/false, &vs, &out);
      ++counts_.duplicated;
      ++perturbed_[p.vehicle_id];
      continue;
    }
    if (u < (edge += spec_.reorder_prob)) {
      // Held now, counted only when released displaced (Emit / flush).
      vs.held.push_back(Held{p, 0});
      continue;
    }
    if (u < (edge += spec_.skew_prob)) {
      FleetPoint q = p;
      q.timestamp += spec_.skew_offset_s;
      ++counts_.skewed;
      ++perturbed_[p.vehicle_id];
      Emit(q, /*teleported=*/false, &vs, &out);
      continue;
    }
    if (u < (edge += spec_.teleport_prob)) {
      const traj::EdgeId target = DrawTeleportEdge(vs.last_clean_edge);
      if (target != roadnet::kInvalidEdge) {
        FleetPoint q = p;
        q.edge = target;
        ++counts_.teleported;
        ++perturbed_[p.vehicle_id];
        Emit(q, /*teleported=*/true, &vs, &out);
        continue;
      }
      // No manufacturable teleport (first point of the vehicle, or the
      // graph is too connected): emit clean, count nothing.
    }
    Emit(p, /*teleported=*/false, &vs, &out);
  }
  // Flush the holds the stream ended on, in first-seen vehicle order so the
  // output is deterministic across standard-library implementations. A hold
  // nothing overtook lands in order and is NOT counted as reordered.
  for (const int64_t vehicle : vehicle_order) {
    VehicleState& vs = vehicles_.at(vehicle);
    for (const Held& h : vs.held) {
      if (vs.pending_gap) {
        ++counts_.drop_gaps;
        vs.pending_gap = false;
      }
      out.push_back(h.point);
      ++counts_.emitted;
      if (h.overtaken > 0) {
        ++counts_.reordered;
        ++perturbed_[h.point.vehicle_id];
      }
    }
    vs.held.clear();
  }
  return out;
}

}  // namespace rl4oasd::serve
