// Chaos injection for the ingest boundary: a seeded, deterministic stream
// perturber that degrades a clean replay stream in exactly the ways the
// ingest guard (serve/ingest_guard.h) classifies — dropout, duplication,
// bounded reorder, clock skew, and teleports — while keeping exact ground
// truth about what it injected.
//
// The injector is the adversarial half of the robustness contract: a
// metamorphic test perturbs a clean stream, replays both through a
// FleetMonitor, and checks (a) the guard's per-class counters against the
// injector's ground-truth counts, (b) conservation identities
// (started == finished + evicted + active; offered == processed + rejected
// + quarantine-dropped), and (c) bounded per-vehicle alert divergence
// against the clean run. The perturbations are constructed so single-mode
// runs are *exactly* countable:
//
//   * drop       — the point is withheld. A run of consecutive drops of one
//                  vehicle counts as ONE expected dropout-gap event, charged
//                  when the next point of that vehicle is actually emitted
//                  (a trailing drop run that no later point exposes is not
//                  charged — the guard can never see it).
//   * duplicate  — the point is emitted twice back-to-back (identical edge
//                  and timestamp), the guard's definition of a retransmit.
//   * reorder    — the point is held and re-emitted after `reorder_window`
//                  later points of the same vehicle; it is counted as
//                  reordered only if at least one point actually overtook it
//                  (a hold flushed at stream end with nothing past it lands
//                  in order and is not counted).
//   * skew       — the timestamp jumps forward by `skew_offset_s` (choose it
//                  above the guard's skew_tolerance_s to guarantee the
//                  class).
//   * teleport   — the edge is replaced by one provably NOT reachable from
//                  the vehicle's last clean edge within `teleport_min_hops`
//                  adjacency hops (IngestGuard::ReachableWithinHops, the
//                  same predicate the guard runs — set min_hops >= the
//                  guard's teleport_hop_bound for exact counting). A first
//                  point (no reference edge yet) or a graph too connected to
//                  offer an unreachable edge is left clean rather than
//                  counted wrong.
//
// At most one perturbation applies per input point (a single uniform draw
// partitioned by the cumulative probabilities), so ground-truth counts
// partition the input. Determinism: same spec (seed included) + same input
// stream => bit-identical perturbed stream, via common::Rng only.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "roadnet/road_network.h"
#include "serve/fleet.h"

namespace rl4oasd::serve {

/// Perturbation probabilities and shape parameters. Probabilities must be
/// in [0, 1] with sum <= 1 (one draw per point picks at most one class).
struct ChaosSpec {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double reorder_prob = 0.0;
  double skew_prob = 0.0;
  double teleport_prob = 0.0;
  /// A reordered point is re-emitted after this many later same-vehicle
  /// points (bounded displacement).
  int reorder_window = 4;
  /// Forward jump applied to a skewed timestamp. The default clears the
  /// guard's default skew_tolerance_s (3600).
  double skew_offset_s = 7200.0;
  /// A teleport edge must be unreachable within this many hops of the
  /// vehicle's last clean edge. Match (or exceed) the guard's
  /// teleport_hop_bound for exact per-class accounting.
  int teleport_min_hops = 2;
  uint64_t seed = 1;
};

/// Parses "drop=0.01,dup=0.02,reorder=0.01,skew=0.005,teleport=0.001,
/// seed=9,window=4,skew_offset=7200,hops=2" (any subset, any order) into a
/// ChaosSpec. Unknown keys, malformed numbers, out-of-range probabilities,
/// or a probability sum above 1 return InvalidArgument. This is the
/// oasd_simulate --chaos=<spec> syntax.
Result<ChaosSpec> ParseChaosSpec(std::string_view spec);

/// Ground truth about one Perturb call.
struct ChaosCounts {
  int64_t input = 0;    // clean points offered
  int64_t emitted = 0;  // perturbed points produced (dup adds, drop removes)
  int64_t dropped = 0;
  int64_t duplicated = 0;
  /// Held points that at least one later point actually overtook.
  int64_t reordered = 0;
  int64_t skewed = 0;
  int64_t teleported = 0;
  /// Expected guard dropout-gap events: drop runs exposed by a later
  /// emitted point of the same vehicle.
  int64_t drop_gaps = 0;
};

/// Deterministic stream perturber. Not thread-safe; one injector per
/// stream (per-thread in concurrent harnesses, seeded distinctly).
class ChaosInjector {
 public:
  /// `net` must outlive the injector (teleport manufacturing; may be null
  /// when teleport_prob == 0).
  ChaosInjector(ChaosSpec spec, const roadnet::RoadNetwork* net);

  /// Perturbs one complete stream: counts and per-vehicle tallies reset at
  /// entry, holds flush at exit (each call is a self-contained run; the RNG
  /// stream continues across calls). Points of one vehicle must arrive in
  /// timestamp order — the property trips guarantee and chaos then breaks.
  std::vector<FleetPoint> Perturb(std::span<const FleetPoint> clean);

  /// Ground truth for the most recent Perturb call.
  const ChaosCounts& counts() const { return counts_; }

  /// Per-vehicle perturbed-point counts from the most recent Perturb call
  /// (drop + dup + reorder + skew + teleport), for per-vehicle divergence
  /// bounds in metamorphic tests.
  const std::unordered_map<int64_t, int64_t>& perturbed_by_vehicle() const {
    return perturbed_;
  }

  const ChaosSpec& spec() const { return spec_; }

 private:
  /// A reorder hold: re-emitted once `overtaken` reaches reorder_window.
  struct Held {
    FleetPoint point;
    int overtaken = 0;
  };
  struct VehicleState {
    /// Last emitted non-teleport edge: the reference both for manufacturing
    /// the next teleport and for what the guard's position will be.
    traj::EdgeId last_clean_edge = roadnet::kInvalidEdge;
    /// An unexposed drop run awaits the vehicle's next emission.
    bool pending_gap = false;
    std::vector<Held> held;
  };

  /// Emits one point: charges a pending drop gap, appends, and advances
  /// this vehicle's reorder holds (releasing any that filled its window).
  void Emit(const FleetPoint& p, bool teleported, VehicleState* vs,
            std::vector<FleetPoint>* out);

  /// Draws an edge unreachable from `from` within teleport_min_hops, or
  /// kInvalidEdge when the bounded attempts find none.
  traj::EdgeId DrawTeleportEdge(traj::EdgeId from);

  ChaosSpec spec_;
  const roadnet::RoadNetwork* net_;
  Rng rng_;
  ChaosCounts counts_;
  std::unordered_map<int64_t, int64_t> perturbed_;
  std::unordered_map<int64_t, VehicleState> vehicles_;
};

}  // namespace rl4oasd::serve
