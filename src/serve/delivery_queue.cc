#include "serve/delivery_queue.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "common/logging.h"

namespace rl4oasd::serve {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
/// Events moved out per drain round: large enough to amortize the lock,
/// small enough that Flush and backpressured enqueuers see space promptly.
constexpr size_t kDrainChunk = 64;
}  // namespace

AlertDeliveryQueue::AlertDeliveryQueue(AlertSink* sink, size_t capacity)
    : sink_(sink), capacity_(capacity == 0 ? 1 : capacity) {
  RL4_CHECK(sink != nullptr);
  drainer_ = std::thread([this] { DrainLoop(); });
}

AlertDeliveryQueue::~AlertDeliveryQueue() {
  {
    common::MutexLock lock(&mu_);
    stop_ = true;
    items_cv_.NotifyAll();
  }
  // The drainer delivers everything still queued before it exits, so
  // destruction never loses an event.
  drainer_.join();
}

void AlertDeliveryQueue::Enqueue(DeliveryEvent event) {
  common::MutexLock lock(&mu_);
  // Bounded + blocking: a sink that cannot keep up slows ingest down rather
  // than dropping lifecycle events (which would break the conservation
  // counters and the drift harvest). The drainer never takes a fleet lock,
  // so it always makes progress and frees space.
  while (queue_.size() >= capacity_ && !stop_) {
    space_cv_.Wait(&mu_);
  }
  event.seq = next_seq_++;
  event.enqueue_ns = clock_.ElapsedNanos();
  queue_.push_back(std::move(event));
  items_cv_.NotifyOne();
}

void AlertDeliveryQueue::Flush() {
  common::MutexLock lock(&mu_);
  while (!queue_.empty() || busy_) {
    idle_cv_.Wait(&mu_);
  }
}

int64_t AlertDeliveryQueue::AlertsDelivered() const {
  return alerts_delivered_.load(kRelaxed);
}

int64_t AlertDeliveryQueue::EventsDelivered() const {
  return events_delivered_.load(kRelaxed);
}

std::vector<int64_t> AlertDeliveryQueue::TakeLatencySamplesNs() {
  common::MutexLock lock(&mu_);
  std::vector<int64_t> out;
  if (latency_wrapped_) {
    out = latency_ns_;
  } else {
    out.assign(latency_ns_.begin(), latency_ns_.begin() +
                                        static_cast<ptrdiff_t>(latency_next_));
  }
  latency_next_ = 0;
  latency_wrapped_ = false;
  return out;
}

void AlertDeliveryQueue::Deliver(const DeliveryEvent& event) {
  switch (event.kind) {
    case DeliveryEvent::Kind::kAlert:
      sink_->OnAlert(event.alert);
      alerts_delivered_.fetch_add(1, kRelaxed);
      break;
    case DeliveryEvent::Kind::kTripEnd:
      sink_->OnTripEnd(event.vehicle_id, event.labels);
      break;
    case DeliveryEvent::Kind::kTripEvicted:
      sink_->OnTripEvicted(event.vehicle_id, event.start_time, event.labels);
      break;
    case DeliveryEvent::Kind::kTripFinalized:
      sink_->OnTripFinalized(event.vehicle_id, event.sd, event.start_time,
                             event.edges, event.labels);
      break;
    case DeliveryEvent::Kind::kTripQuarantined:
      sink_->OnTripQuarantined(event.vehicle_id, event.start_time,
                               event.malformed);
      break;
  }
  events_delivered_.fetch_add(1, kRelaxed);
}

void AlertDeliveryQueue::DrainLoop() {
  std::vector<DeliveryEvent> chunk;
  chunk.reserve(kDrainChunk);
  for (;;) {
    bool stopping = false;
    {
      common::MutexLock lock(&mu_);
      while (queue_.empty() && !stop_) {
        items_cv_.Wait(&mu_);
      }
      stopping = stop_;
      const size_t n = std::min(queue_.size(), kDrainChunk);
      chunk.clear();
      for (size_t i = 0; i < n; ++i) {
        chunk.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      busy_ = !chunk.empty();
      if (n > 0) space_cv_.NotifyAll();
    }
    // Deliver with no lock held: the sink may be arbitrarily slow without
    // stalling enqueuers (until the queue refills) and runs outside every
    // monitor lock, per the async AlertSink contract.
    for (DeliveryEvent& event : chunk) {
      // FIFO + sequence stamped under mu_ makes delivery order the enqueue
      // order; the check pins the in-order contract at runtime.
      RL4_CHECK_EQ(event.seq, last_delivered_seq_ + 1);
      last_delivered_seq_ = event.seq;
      const int64_t start_ns = event.enqueue_ns;
      Deliver(event);
      const int64_t latency = clock_.ElapsedNanos() - start_ns;
      common::MutexLock lock(&mu_);
      if (latency_ns_.size() < kLatencyWindow) {
        latency_ns_.push_back(latency);
        ++latency_next_;
      } else {
        latency_ns_[latency_next_] = latency;
        latency_next_ = (latency_next_ + 1) % kLatencyWindow;
        latency_wrapped_ = true;
      }
    }
    {
      common::MutexLock lock(&mu_);
      busy_ = false;
      if (queue_.empty()) {
        idle_cv_.NotifyAll();
        if (stopping) return;
      }
    }
  }
}

}  // namespace rl4oasd::serve
