// Asynchronous alert delivery: a bounded, sequence-ordered event queue with
// one drainer thread per sink.
//
// The synchronous fleet paths invoke AlertSink callbacks under the reporting
// trip's lock — and during a FeedBatch wave under the *other* wave trips'
// locks too — so one slow sink stalls up to micro_batch trips. With
// FleetConfig::async_alerts the monitor instead enqueues a value-copied
// DeliveryEvent while it still holds the trip lock (which is what stamps the
// event with its global sequence number) and returns; a dedicated drainer
// thread pops events in sequence order and invokes the sink with **no
// monitor lock held**. Because every event of one trip is enqueued under
// that trip's lock, FIFO delivery preserves the in-order-per-trip contract
// documented on AlertSink.
//
// The queue is bounded (FleetConfig::alert_queue_capacity) and never drops:
// lifecycle events (trip end / eviction / finalization) are load-bearing for
// the conservation counters and for DriftAdapter's harvest, so when the sink
// cannot keep up the *enqueuer* blocks — backpressure, not data loss. The
// drainer needs no fleet lock to make progress, so a blocked enqueuer (even
// one holding a whole wave of trip locks) always unblocks.
//
// Determinism contract: the queue reads a wall clock only to timestamp
// events for the delivery-latency histogram (common/stopwatch.h, the
// blessed reporting wrapper) — no control flow depends on it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "serve/fleet.h"

namespace rl4oasd::serve {

/// One sink callback, captured by value so it can outlive the trip that
/// produced it (the session is gone by delivery time for end/evict events).
struct DeliveryEvent {
  enum class Kind : uint8_t {
    kAlert,
    kTripEnd,
    kTripEvicted,
    kTripFinalized,
    kTripQuarantined,
  };
  Kind kind = Kind::kAlert;
  /// Global delivery order, stamped at enqueue time — i.e. under the
  /// reporting trip's lock — and asserted monotonic by the drainer.
  uint64_t seq = 0;
  Alert alert;  // kAlert only
  int64_t vehicle_id = 0;
  traj::SdPair sd;          // kTripFinalized
  double start_time = 0.0;  // kTripEvicted / kTripFinalized / kTripQuarantined
  std::vector<uint8_t> labels;
  std::vector<traj::EdgeId> edges;  // kTripFinalized
  /// Lifetime malformed-point count at quarantine entry (kTripQuarantined).
  int64_t malformed = 0;
  /// Reporting-only enqueue timestamp for the latency histogram.
  int64_t enqueue_ns = 0;
};

/// Bounded FIFO of DeliveryEvents with one owned drainer thread. Thread-safe;
/// the destructor delivers everything still queued, then joins.
class AlertDeliveryQueue {
 public:
  /// `sink` must be non-null and outlive the queue. `capacity` bounds the
  /// number of undelivered events; Enqueue blocks while at capacity.
  AlertDeliveryQueue(AlertSink* sink, size_t capacity);
  ~AlertDeliveryQueue();
  AlertDeliveryQueue(const AlertDeliveryQueue&) = delete;
  AlertDeliveryQueue& operator=(const AlertDeliveryQueue&) = delete;

  /// Stamps `event.seq` and `event.enqueue_ns`, then appends. Blocks while
  /// the queue is full. Safe to call while holding trip locks (rank
  /// kFleetDelivery > kFleetTrip); the caller must hold no lock ranked at or
  /// above kFleetDelivery.
  void Enqueue(DeliveryEvent event);

  /// Blocks until every event enqueued before the call has been delivered
  /// (queue empty and the drainer idle).
  void Flush();

  /// OnAlert callbacks completed by the drainer (monotonic).
  int64_t AlertsDelivered() const;
  /// Events of any kind completed by the drainer (monotonic).
  int64_t EventsDelivered() const;

  /// Drains the enqueue→delivery latency samples collected so far (a
  /// sliding window of the most recent kLatencyWindow deliveries;
  /// nanoseconds, unordered). Reporting surface for bench_fleet_soak.
  std::vector<int64_t> TakeLatencySamplesNs();

 private:
  /// Most recent deliveries whose latency is retained for percentiles.
  static constexpr size_t kLatencyWindow = 1 << 16;

  void DrainLoop();
  void Deliver(const DeliveryEvent& event);

  AlertSink* const sink_;
  const size_t capacity_;
  Stopwatch clock_;  // reporting only: latency histogram timestamps

  mutable common::Mutex mu_{common::lockrank::kFleetDelivery};
  common::CondVar items_cv_;
  common::CondVar space_cv_;
  common::CondVar idle_cv_;
  std::deque<DeliveryEvent> queue_ RL4OASD_GUARDED_BY(mu_);
  uint64_t next_seq_ RL4OASD_GUARDED_BY(mu_) = 1;
  bool busy_ RL4OASD_GUARDED_BY(mu_) = false;
  bool stop_ RL4OASD_GUARDED_BY(mu_) = false;
  /// Ring buffer of the last kLatencyWindow delivery latencies.
  std::vector<int64_t> latency_ns_ RL4OASD_GUARDED_BY(mu_);
  size_t latency_next_ RL4OASD_GUARDED_BY(mu_) = 0;
  bool latency_wrapped_ RL4OASD_GUARDED_BY(mu_) = false;

  std::atomic<int64_t> alerts_delivered_{0};
  std::atomic<int64_t> events_delivered_{0};
  uint64_t last_delivered_seq_ = 0;  // drainer thread only

  std::thread drainer_;
};

}  // namespace rl4oasd::serve
