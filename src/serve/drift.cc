#include "serve/drift.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>

#include "common/logging.h"
#include "core/detector.h"
#include "core/preprocess.h"
#include "eval/metrics.h"
#include "io/model_io.h"

namespace rl4oasd::serve {

// ---------------------------------------------------------------------------
// DriftDetector

bool DriftDetector::ObserveTrip(size_t segments, size_t anomalous_segments,
                                size_t nrf_anomalous_segments) {
  if (segments == 0) return false;
  // Post-swap cooldown: swallow whole trips until the budget drains, so the
  // new reference is collected from post-transition traffic only. Trip
  // granularity (rather than splitting a trip across the boundary) keeps
  // every window's statistics internally consistent.
  if (stats_.cooldown_points_remaining > 0) {
    const size_t used = std::min(stats_.cooldown_points_remaining, segments);
    stats_.cooldown_points_remaining -= used;
    return false;
  }
  const bool was_fired = fired_;
  win_segments_ += segments;
  win_anomalous_ += anomalous_segments;
  win_nrf_ += nrf_anomalous_segments;
  if (win_segments_ >= config_.window_points) CloseWindow();
  return fired_ && !was_fired;
}

void DriftDetector::CloseWindow() {
  const double n = static_cast<double>(win_segments_);
  const double alert_rate = static_cast<double>(win_anomalous_) / n;
  const double nrf_rate = static_cast<double>(win_nrf_) / n;
  win_segments_ = 0;
  win_anomalous_ = 0;
  win_nrf_ = 0;
  ++stats_.windows_completed;
  stats_.last_alert_rate = alert_rate;
  stats_.last_nrf_rate = nrf_rate;

  if (!armed_) {
    ref_alert_sum_ += alert_rate;
    ref_nrf_sum_ += nrf_rate;
    if (++ref_windows_seen_ >= config_.reference_windows) {
      armed_ = true;
      stats_.ref_alert_rate = ref_alert_sum_ / ref_windows_seen_;
      stats_.ref_nrf_rate = ref_nrf_sum_ / ref_windows_seen_;
    }
    return;
  }

  // One-sided CUSUM (accumulated excess over reference + allowance) plus an
  // immediate two-window ratio test, per channel. Either crossing latches.
  const auto shifted = [this](double rate, double ref, double* cusum) {
    *cusum = std::max(0.0, *cusum + (rate - ref - config_.cusum_k));
    if (*cusum > config_.cusum_h) return true;
    return rate > ref * config_.ratio_threshold &&
           rate - ref > config_.min_abs_shift;
  };
  const bool alert_shift =
      shifted(alert_rate, stats_.ref_alert_rate, &stats_.cusum_alert);
  const bool nrf_shift =
      shifted(nrf_rate, stats_.ref_nrf_rate, &stats_.cusum_nrf);
  if (alert_shift || nrf_shift) fired_ = true;
}

void DriftDetector::Reset(size_t cooldown_points) {
  const uint64_t windows = stats_.windows_completed;
  stats_ = Stats{};
  stats_.windows_completed = windows;
  stats_.cooldown_points_remaining = cooldown_points;
  armed_ = false;
  fired_ = false;
  win_segments_ = win_anomalous_ = win_nrf_ = 0;
  ref_windows_seen_ = 0;
  ref_alert_sum_ = ref_nrf_sum_ = 0.0;
}

// ---------------------------------------------------------------------------
// DriftAdapter

DriftAdapter::DriftAdapter(const roadnet::RoadNetwork* net,
                           std::shared_ptr<const core::Rl4Oasd> model,
                           FleetConfig fleet_config, DriftConfig drift_config,
                           AlertSink* downstream)
    : net_(net),
      fleet_config_(fleet_config),
      config_(std::move(drift_config)),
      downstream_(downstream),
      detector_(config_) {
  monitor_ = std::make_unique<FleetMonitor>(std::move(model), fleet_config_,
                                            this);
  if (config_.background) {
    worker_ = std::thread(&DriftAdapter::WorkerLoop, this);
  }
}

DriftAdapter::~DriftAdapter() {
  {
    common::MutexLock lock(&pending_mu_);
    stop_ = true;
  }
  pending_cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
}

void DriftAdapter::OnAlert(const Alert& alert) {
  if (downstream_ != nullptr) downstream_->OnAlert(alert);
}

void DriftAdapter::OnTripEnd(int64_t vehicle_id,
                             const std::vector<uint8_t>& final_labels) {
  if (downstream_ != nullptr) downstream_->OnTripEnd(vehicle_id, final_labels);
}

void DriftAdapter::OnTripEvicted(int64_t vehicle_id, double trip_start_time,
                                 const std::vector<uint8_t>& labels_so_far) {
  if (downstream_ != nullptr) {
    downstream_->OnTripEvicted(vehicle_id, trip_start_time, labels_so_far);
  }
}

void DriftAdapter::OnTripFinalized(int64_t vehicle_id, traj::SdPair sd,
                                   double start_time,
                                   const std::vector<traj::EdgeId>& edges,
                                   const std::vector<uint8_t>& final_labels) {
  if (downstream_ != nullptr) {
    downstream_->OnTripFinalized(vehicle_id, sd, start_time, edges,
                                 final_labels);
  }
  // Under the reporting trip's lock (possibly a whole FeedBatch wave's trip
  // locks): only buffer, never touch the monitor or the loop state.
  traj::LabeledTrajectory lt;
  lt.traj.id = vehicle_id;
  lt.traj.edges = edges;
  lt.traj.start_time = start_time;
  lt.labels = final_labels;
  {
    common::MutexLock lock(&pending_mu_);
    pending_.push_back(std::move(lt));
  }
  pending_cv_.NotifyOne();
}

bool DriftAdapter::Poll() {
  if (config_.background) return false;
  return DrainAndMaybeAdapt();
}

bool DriftAdapter::DrainAndMaybeAdapt() {
  std::deque<traj::LabeledTrajectory> drained;
  {
    common::MutexLock lock(&pending_mu_);
    drained.swap(pending_);
  }
  // NRF counts are computed at drain time against the *current* model's
  // statistics (not at finalize time): the NRF channel asks "does the live
  // historical picture recognize this route as normal", which is exactly
  // what a swap refreshes.
  const std::shared_ptr<const core::Rl4Oasd> live = monitor_->model();
  bool run_cycle = false;
  {
    common::MutexLock lock(&state_mu_);
    for (auto& lt : drained) {
      const size_t segments = lt.traj.edges.size();
      size_t anomalous = 0;
      for (uint8_t l : lt.labels) anomalous += l;
      size_t nrf_anomalous = 0;
      for (uint8_t f : live->preprocessor().NormalRouteFeatures(lt.traj)) {
        nrf_anomalous += f;
      }
      if (backoff_points_ > 0) {
        backoff_points_ -= std::min(backoff_points_, segments);
      }
      if (detector_.ObserveTrip(segments, anomalous, nrf_anomalous)) {
        ++status_.drift_events;
        // The change point is behind us: everything harvested before the
        // trigger is pre-drift traffic that would dilute the fine-tune
        // statistics (route fractions must clear delta on *post-drift*
        // data), so the buffer restarts at the trigger.
        buffer_.clear();
      }
      ++status_.trips_harvested;
      buffer_.push_back(std::move(lt));
      if (buffer_.size() > config_.max_buffer_trips) {
        buffer_.pop_front();
        ++status_.buffer_evictions;
      }
    }
    if (detector_.fired() && backoff_points_ == 0 &&
        buffer_.size() >= config_.min_buffer_trips) {
      run_cycle = true;
      ++status_.cycles_started;
    }
  }
  if (!run_cycle) return false;
  RunAdaptationCycle();
  return true;
}

void DriftAdapter::RunAdaptationCycle() {
  std::vector<traj::LabeledTrajectory> buffer_copy;
  {
    common::MutexLock lock(&state_mu_);
    buffer_copy.assign(buffer_.begin(), buffer_.end());
  }
  const std::shared_ptr<const core::Rl4Oasd> live = monitor_->model();
  const traj::Dataset buffer_ds(buffer_copy);

  // Abort one cycle without losing the drift signal: back off so the loop
  // does not spin, keep the CUSUM saturated so a persisting drift retries
  // after the backoff drains.
  // `rl4oasd::Status` spelled in full: the Status() accessor shadows the
  // type name inside DriftAdapter's member scope.
  const auto abort_cycle = [this](const char* what,
                                  const rl4oasd::Status& why) {
    RL4_LOG(Warning) << "drift adaptation cycle aborted (" << what
                     << "): " << why.ToString();
    common::MutexLock lock(&state_mu_);
    ++status_.cycle_errors;
    backoff_points_ = config_.reject_backoff_points;
    detector_.ClearFire();
  };

  // --- fine-tune: candidate = clone of the serving model, trained on the
  // post-change-point buffer, entirely off the ingest path.
  std::shared_ptr<core::Rl4Oasd> candidate;
  if (config_.candidate_factory) {
    candidate = config_.candidate_factory(*live, buffer_ds);
  } else {
    auto cloned = io::CloneModel(net_, *live);
    if (!cloned.ok()) {
      abort_cycle("clone", cloned.status());
      return;
    }
    candidate = std::move(cloned).value();
    candidate->FineTune(buffer_ds, config_.fine_tune_max_samples);
  }
  if (candidate == nullptr) {
    abort_cycle("candidate factory",
                rl4oasd::Status::Internal("factory returned null"));
    return;
  }
  if (io::ModelFingerprint(*candidate) == io::ModelFingerprint(*live)) {
    // Byte-identical candidate: it cannot change served behaviour, and
    // SwapModel would rightly reject it as a degenerate self-swap.
    RecordGateResult(/*promoted=*/false, 0.0, 0.0, 0);
    return;
  }
  candidate->preprocessor().WarmNormalRouteCaches();

  // --- gate reference: weak-supervision labels from a preprocessor fitted
  // on the post-drift buffer alone — the freshest unbiased statistics both
  // contestants are scored against (neither model's own labels referee).
  core::Preprocessor gate_pp(live->config().preprocess);
  gate_pp.Fit(buffer_ds);
  const int delay_d = live->config().detector.delay_d;
  const size_t n_shadow = std::min(config_.shadow_trips, buffer_copy.size());
  const std::vector<traj::LabeledTrajectory> shadow(
      buffer_copy.end() - static_cast<ptrdiff_t>(n_shadow), buffer_copy.end());
  std::vector<std::vector<uint8_t>> reference;
  reference.reserve(shadow.size());
  for (const auto& lt : shadow) {
    std::vector<uint8_t> labels = gate_pp.NoisyLabels(lt.traj);
    core::ApplyDelayedLabeling(&labels, delay_d);
    reference.push_back(std::move(labels));
  }

  // --- shadow fork: snapshot the live fleet and restore it twice, so both
  // contestants replay the exact same stream from the exact same in-flight
  // state. The candidate shadow swaps to the candidate and takes a
  // throwaway snapshot, which forces every restored trip through a
  // re-prime — proving the candidate can serve the live state before the
  // real fleet ever sees it.
  BinaryWriter snap;
  rl4oasd::Status st = monitor_->Snapshot(&snap);
  if (!st.ok()) {
    abort_cycle("snapshot", st);
    return;
  }
  FleetConfig shadow_cfg = fleet_config_;
  shadow_cfg.max_active_trips = fleet_config_.max_active_trips + n_shadow + 16;

  FleetMonitor live_shadow(live, shadow_cfg, nullptr);
  BinaryReader live_reader(snap.buffer());
  st = live_shadow.Restore(&live_reader);
  if (!st.ok()) {
    abort_cycle("live-shadow restore", st);
    return;
  }
  FleetMonitor cand_shadow(live, shadow_cfg, nullptr);
  BinaryReader cand_reader(snap.buffer());
  st = cand_shadow.Restore(&cand_reader);
  if (!st.ok()) {
    abort_cycle("candidate-shadow restore", st);
    return;
  }
  cand_shadow.SwapModel(candidate);
  BinaryWriter reprime_probe;
  st = cand_shadow.Snapshot(&reprime_probe);
  if (!st.ok()) {
    abort_cycle("candidate re-prime", st);
    return;
  }

  const std::vector<std::vector<uint8_t>> live_labels =
      ReplayShadow(&live_shadow, shadow);
  const std::vector<std::vector<uint8_t>> cand_labels =
      ReplayShadow(&cand_shadow, shadow);

  eval::F1Evaluator live_eval;
  eval::F1Evaluator cand_eval;
  uint64_t divergent = 0;
  for (size_t i = 0; i < shadow.size(); ++i) {
    if (live_labels[i].size() != reference[i].size() ||
        cand_labels[i].size() != reference[i].size()) {
      continue;  // trip could not be replayed in one of the shadows
    }
    live_eval.Add(reference[i], live_labels[i]);
    cand_eval.Add(reference[i], cand_labels[i]);
    if (live_labels[i] != cand_labels[i]) ++divergent;
  }
  const double live_f1 = live_eval.Compute().f1;
  const double cand_f1 = cand_eval.Compute().f1;
  const bool promote = cand_f1 >= live_f1 + config_.promote_min_gain;

  if (promote) monitor_->SwapModel(std::move(candidate));
  RecordGateResult(promote, live_f1, cand_f1, divergent);
}

void DriftAdapter::RecordGateResult(bool promoted, double live_f1,
                                    double cand_f1, uint64_t divergent) {
  common::MutexLock lock(&state_mu_);
  status_.last_live_score = live_f1;
  status_.last_candidate_score = cand_f1;
  status_.last_shadow_divergent_trips = divergent;
  if (promoted) {
    ++status_.promotions;
    // New model, new stationary regime: re-arm from scratch and let the
    // buffer refill with traffic labeled by the promoted model.
    buffer_.clear();
    backoff_points_ = 0;
    detector_.Reset(config_.post_swap_cooldown_points);
  } else {
    ++status_.rejections;
    backoff_points_ = config_.reject_backoff_points;
    detector_.ClearFire();
  }
}

std::vector<std::vector<uint8_t>> DriftAdapter::ReplayShadow(
    FleetMonitor* m, const std::vector<traj::LabeledTrajectory>& trips) {
  std::vector<std::vector<uint8_t>> out;
  out.reserve(trips.size());
  // Synthetic vehicle ids far above any real fleet's range, so shadow trips
  // can never collide with the restored live trips.
  int64_t vehicle_id = int64_t{1} << 62;
  for (const auto& lt : trips) {
    const traj::MapMatchedTrajectory& t = lt.traj;
    if (t.edges.size() < 2) {
      out.emplace_back();
      continue;
    }
    ++vehicle_id;
    if (!m->StartTrip(vehicle_id, t.sd(), t.start_time).ok()) {
      out.emplace_back();
      continue;
    }
    double ts = t.start_time;
    for (const traj::EdgeId edge : t.edges) {
      (void)m->Feed(vehicle_id, edge, ts);
      ts += 1.0;
    }
    auto final_labels = m->EndTrip(vehicle_id);
    out.push_back(final_labels.ok() ? std::move(final_labels).value()
                                    : std::vector<uint8_t>{});
  }
  return out;
}

void DriftAdapter::WorkerLoop() {
  for (;;) {
    {
      common::MutexLock lock(&pending_mu_);
      while (!stop_ && pending_.empty()) pending_cv_.Wait(&pending_mu_);
      if (stop_ && pending_.empty()) return;
    }
    DrainAndMaybeAdapt();
  }
}

std::string DriftAdapter::DumpMetrics() const {
  std::string out = monitor_->DumpMetrics();
  const DriftStatus s = Status();
  const auto line = [&out](std::string_view name, int64_t value) {
    out.append(name);
    out.push_back(' ');
    out.append(std::to_string(value));
    out.push_back('\n');
  };
  line("harvest_trips", static_cast<int64_t>(s.trips_harvested));
  line("harvest_buffer_trips", static_cast<int64_t>(s.buffer_trips));
  line("harvest_buffer_evictions", static_cast<int64_t>(s.buffer_evictions));
  line("harvest_pending_trips", static_cast<int64_t>(s.pending_trips));
  line("drift_detector_armed", s.detector_armed ? 1 : 0);
  line("drift_pending", s.drift_pending ? 1 : 0);
  line("drift_events", static_cast<int64_t>(s.drift_events));
  line("drift_cycles_started", static_cast<int64_t>(s.cycles_started));
  line("drift_promotions", static_cast<int64_t>(s.promotions));
  line("drift_rejections", static_cast<int64_t>(s.rejections));
  line("drift_cycle_errors", static_cast<int64_t>(s.cycle_errors));
  line("drift_backoff_points_remaining",
       static_cast<int64_t>(s.backoff_points_remaining));
  line("drift_detector_windows",
       static_cast<int64_t>(s.detector.windows_completed));
  return out;
}

DriftStatus DriftAdapter::Status() const {
  DriftStatus s;
  {
    common::MutexLock lock(&state_mu_);
    s = status_;
    s.buffer_trips = buffer_.size();
    s.detector_armed = detector_.armed();
    s.drift_pending = detector_.fired();
    s.backoff_points_remaining = backoff_points_;
    s.detector = detector_.stats();
  }
  {
    common::MutexLock lock(&pending_mu_);
    s.pending_trips = pending_.size();
  }
  s.model_generation = monitor_->ModelGeneration();
  return s;
}

}  // namespace rl4oasd::serve
