// The drift-adaptation loop: turns a FleetMonitor into a self-updating
// service (paper Section V-G, Figures 6/7 — "RL4OASD-FT" run online).
//
//   detector  ──fires──▶  harvester buffer  ──warm──▶  background fine-tune
//        ▲                                                     │
//        │                                             shadow evaluation
//   re-arm on swap  ◀──── SwapModel (promote) ◀──gate passes───┘
//
// Four pieces, each independently testable:
//   * DriftDetector — windowed alert-rate and NRF-distribution shift
//     statistics (one-sided CUSUM plus a two-window ratio test) over the
//     live service's finalized-label stream;
//   * the label harvester — AlertSink::OnTripFinalized drains each finished
//     trip's post-Delayed-Labeling (edges, labels) pair exactly once into a
//     bounded training buffer;
//   * the fine-tune worker — clones the serving model (io::CloneModel),
//     runs Rl4Oasd::FineTune on the harvest buffer off the hot path, and
//   * the shadow gate — forks the live fleet state with the snapshot
//     machinery, replays the most recent harvested trips through the old
//     and candidate models, and promotes via FleetMonitor::SwapModel only
//     when the candidate's score is at least the live model's.
//
// Everything is driven by observed points, never wall-clock: detection
// windows, backoff, and cooldown all count road segments, and the loop is
// stepped either synchronously by the ingest driver (Poll) or by a
// condition-variable worker thread (DriftConfig::background) — so tests
// replay the whole detect → retrain → gate → swap cycle deterministically,
// with no sleeps.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/rl4oasd.h"
#include "roadnet/road_network.h"
#include "serve/fleet.h"
#include "traj/dataset.h"
#include "traj/types.h"

namespace rl4oasd::serve {

struct DriftConfig {
  // --- detector -----------------------------------------------------------
  /// Tumbling statistics-window size, in road segments of finalized trips.
  size_t window_points = 512;
  /// Completed windows whose mean freezes the stationary reference rates.
  size_t reference_windows = 2;
  /// CUSUM allowance: per-window rate excess over the reference that is
  /// considered noise (in rate units, i.e. fraction of segments).
  double cusum_k = 0.02;
  /// CUSUM decision threshold on the accumulated excess. With k = 0.02 and
  /// h = 0.10, a sustained +7pp rate shift fires after two windows.
  double cusum_h = 0.10;
  /// Two-window ratio test: fire immediately when a window's rate exceeds
  /// ratio_threshold * reference AND reference + min_abs_shift (the floor
  /// guards near-zero references against tiny absolute flutters).
  double ratio_threshold = 2.0;
  double min_abs_shift = 0.05;

  // --- label harvester ----------------------------------------------------
  /// Bounded training buffer: beyond this many finished trips the oldest is
  /// evicted (the buffer always holds the most recent traffic).
  size_t max_buffer_trips = 512;
  /// Trips the buffer must hold before a triggered fine-tune actually runs.
  /// The buffer is cleared when the detector fires, so these are all
  /// post-change-point samples.
  size_t min_buffer_trips = 64;

  // --- fine-tune + shadow gate -------------------------------------------
  /// Passed through to Rl4Oasd::FineTune on the candidate.
  int fine_tune_max_samples = 200;
  /// Most recent harvested trips replayed through both models by the gate.
  size_t shadow_trips = 48;
  /// The candidate is promoted when its shadow F1 is at least the live
  /// model's plus this margin (0 promotes ties; negative tolerates a small
  /// regression in exchange for fresher statistics).
  double promote_min_gain = 0.0;
  /// After a rejected candidate, ignore further triggers until this many
  /// more segments have been observed (the CUSUM stays saturated, so a real
  /// drift re-fires on the first window after the backoff drains).
  size_t reject_backoff_points = 2048;
  /// After a promotion, discard this many segments before the detector
  /// starts collecting its new reference (mid-transition traffic would
  /// otherwise contaminate the post-swap baseline).
  size_t post_swap_cooldown_points = 0;

  // --- execution ----------------------------------------------------------
  /// false: the owner drives the loop by calling Poll() between ingest
  /// waves (deterministic; what tests and single-threaded replays use).
  /// true: a background worker thread waits on a condition variable and
  /// runs the loop as trips finalize, off the ingest hot path.
  bool background = false;

  /// Builds the candidate model for one adaptation cycle from the live
  /// model and the harvested buffer. Defaults (when null) to
  /// io::CloneModel + FineTune(buffer, fine_tune_max_samples). Exposed so
  /// deployments can substitute a full retrain — and so tests can inject a
  /// deliberately degraded candidate to pin the gate's reject path. A null
  /// return aborts the cycle (counted as a rejection).
  std::function<std::shared_ptr<core::Rl4Oasd>(const core::Rl4Oasd& live,
                                               const traj::Dataset& buffer)>
      candidate_factory;
};

/// Windowed drift statistics over the finalized-label stream. Consumes one
/// record per finished trip — segment count, post-DL anomalous segments,
/// and segments whose Normal Route Feature says "off every normal route" —
/// and maintains two tumbling-window rates: the alert-label rate (how much
/// of the traffic the detector flags) and the NRF rate (how much of the
/// traffic the *historical statistics* have never seen as normal; this is
/// the label-free statistic that moves first under a route-popularity
/// shift, because the newly popular route is absent from the stats). The
/// first `reference_windows` completed windows freeze the stationary
/// reference; each later window feeds a one-sided CUSUM and a two-window
/// ratio test per channel, and either crossing latches fired().
class DriftDetector {
 public:
  explicit DriftDetector(const DriftConfig& config) : config_(config) {}

  /// Observes one finished trip. Returns true when this observation latched
  /// the fired state (the rising edge).
  bool ObserveTrip(size_t segments, size_t anomalous_segments,
                   size_t nrf_anomalous_segments);

  /// Reference rates are frozen and windows are being tested.
  bool armed() const { return armed_; }
  /// A shift statistic crossed its threshold; latched until ClearFire or
  /// Reset.
  bool fired() const { return fired_; }

  /// Un-latches fired() but keeps the reference and CUSUM state: a real,
  /// persisting drift re-fires on the next completed window. Used after a
  /// rejected candidate.
  void ClearFire() { fired_ = false; }

  /// Full re-arm after a model swap: drops windows, reference, and CUSUM
  /// state, and discards the next `cooldown_points` segments before the new
  /// reference starts collecting.
  void Reset(size_t cooldown_points);

  struct Stats {
    uint64_t windows_completed = 0;
    double ref_alert_rate = 0.0;
    double ref_nrf_rate = 0.0;
    double last_alert_rate = 0.0;
    double last_nrf_rate = 0.0;
    double cusum_alert = 0.0;
    double cusum_nrf = 0.0;
    size_t cooldown_points_remaining = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Closes the accumulated window and runs the shift tests.
  void CloseWindow();

  DriftConfig config_;
  Stats stats_;
  bool armed_ = false;
  bool fired_ = false;
  // Current (accumulating) window.
  size_t win_segments_ = 0;
  size_t win_anomalous_ = 0;
  size_t win_nrf_ = 0;
  // Reference accumulation (first `reference_windows` windows).
  size_t ref_windows_seen_ = 0;
  double ref_alert_sum_ = 0.0;
  double ref_nrf_sum_ = 0.0;
};

/// Counters and gauges of the adaptation loop (Status()).
struct DriftStatus {
  uint64_t trips_harvested = 0;       // finished trips drained so far
  uint64_t buffer_evictions = 0;      // oldest-trip drops at capacity
  size_t buffer_trips = 0;            // current training-buffer size
  size_t pending_trips = 0;           // harvested, not yet drained
  bool detector_armed = false;
  bool drift_pending = false;         // fired, adaptation not yet run
  uint64_t drift_events = 0;          // detector rising edges
  uint64_t cycles_started = 0;        // fine-tune cycles begun
  uint64_t promotions = 0;            // candidates swapped in
  uint64_t rejections = 0;            // candidates discarded by the gate
  uint64_t cycle_errors = 0;          // cycles aborted (snapshot/clone fail)
  double last_live_score = 0.0;       // shadow F1 of the incumbent
  double last_candidate_score = 0.0;  // shadow F1 of the candidate
  uint64_t last_shadow_divergent_trips = 0;  // trips whose labels differed
  size_t backoff_points_remaining = 0;
  uint64_t model_generation = 0;      // mirrors FleetMonitor::ModelGeneration
  DriftDetector::Stats detector;
};

/// Owns a FleetMonitor and closes the concept-drift loop around it. The
/// adapter installs itself as the monitor's sink (forwarding every callback
/// to the downstream sink unchanged, so alert delivery semantics — order,
/// exactly-once, conservation — are exactly the monitor's), harvests
/// finalized trips, and when drift is detected fine-tunes a clone of the
/// serving model in the background, gates it in shadow, and hot-swaps it in
/// with zero downtime. Ingest goes straight to monitor(); the adapter never
/// sits on the per-point path.
class DriftAdapter final : public AlertSink {
 public:
  /// `downstream` may be null (alerts are then only counted by the
  /// monitor). The road network must outlive the adapter; it is what
  /// candidate models are rebuilt against.
  DriftAdapter(const roadnet::RoadNetwork* net,
               std::shared_ptr<const core::Rl4Oasd> model,
               FleetConfig fleet_config, DriftConfig drift_config,
               AlertSink* downstream);
  ~DriftAdapter() override;

  DriftAdapter(const DriftAdapter&) = delete;
  DriftAdapter& operator=(const DriftAdapter&) = delete;

  /// The monitored fleet. StartTrip/Feed/FeedBatch/EndTrip on it directly.
  FleetMonitor* monitor() { return monitor_.get(); }

  /// Synchronous drive (background == false): drains harvested trips into
  /// the detector and buffer, and — when the detector has fired, the buffer
  /// is warm, and no backoff is pending — runs one full fine-tune → shadow
  /// gate → swap cycle before returning. Returns true when a cycle ran.
  /// Call between ingest waves; never from inside a sink callback. No-op
  /// (returns false) when a background worker owns the loop.
  bool Poll();

  DriftStatus Status() const;

  /// Plain-text metrics dump: the monitor's FleetMonitor::DumpMetrics lines
  /// followed by the drift-loop counters (`drift_*` / `harvest_*` lines,
  /// same `name value` format). One call, one consistent text block for the
  /// end-of-run summary and scrape-style tooling.
  std::string DumpMetrics() const;

  // AlertSink: forwards to the downstream sink; OnTripFinalized also
  // enqueues the trip for harvesting. Callbacks only buffer under their own
  // lock — they never call back into the monitor (the AlertSink contract).
  void OnAlert(const Alert& alert) override;
  void OnTripEnd(int64_t vehicle_id,
                 const std::vector<uint8_t>& final_labels) override;
  void OnTripEvicted(int64_t vehicle_id, double trip_start_time,
                     const std::vector<uint8_t>& labels_so_far) override;
  void OnTripFinalized(int64_t vehicle_id, traj::SdPair sd, double start_time,
                       const std::vector<traj::EdgeId>& edges,
                       const std::vector<uint8_t>& final_labels) override;

 private:
  /// Drains the pending queue into detector + buffer, then runs one
  /// adaptation cycle if due. Shared by Poll and the worker loop. Returns
  /// true when a cycle ran.
  bool DrainAndMaybeAdapt();

  /// One fine-tune → shadow gate → swap cycle. Called with no locks held.
  void RunAdaptationCycle();

  /// Applies a gate verdict to the loop state: counters, backoff, detector
  /// re-arm (promotion) or un-latch (rejection).
  void RecordGateResult(bool promoted, double live_f1, double cand_f1,
                        uint64_t divergent);

  /// Replays `trips` through a monitor as synthetic vehicles and returns
  /// each trip's final labels (empty vector for a trip that could not be
  /// replayed). Scalar feeds — deterministic regardless of micro-batching.
  static std::vector<std::vector<uint8_t>> ReplayShadow(
      FleetMonitor* m, const std::vector<traj::LabeledTrajectory>& trips);

  void WorkerLoop();

  const roadnet::RoadNetwork* net_;
  FleetConfig fleet_config_;
  DriftConfig config_;
  AlertSink* downstream_;
  std::unique_ptr<FleetMonitor> monitor_;

  /// Finished trips enqueued by OnTripFinalized (under trip locks — hence
  /// rank kDriftPending > kFleetTrip), drained by Poll/worker. Guarded by
  /// pending_mu_; pending_cv_ signals the worker.
  mutable common::Mutex pending_mu_{common::lockrank::kDriftPending};
  common::CondVar pending_cv_;
  std::deque<traj::LabeledTrajectory> pending_ RL4OASD_GUARDED_BY(pending_mu_);
  bool stop_ RL4OASD_GUARDED_BY(pending_mu_) = false;

  /// Loop state: detector, buffer, counters. Guarded by state_mu_ (never
  /// held together with any monitor lock — the loop drains under
  /// pending_mu_, releases, then updates state). Only Poll/worker mutate it
  /// (single consumer); Status() reads it.
  mutable common::Mutex state_mu_{common::lockrank::kDriftState};
  DriftDetector detector_ RL4OASD_GUARDED_BY(state_mu_);
  std::deque<traj::LabeledTrajectory> buffer_ RL4OASD_GUARDED_BY(state_mu_);
  DriftStatus status_ RL4OASD_GUARDED_BY(state_mu_);
  size_t backoff_points_ RL4OASD_GUARDED_BY(state_mu_) = 0;

  std::thread worker_;  // joined by the destructor (background mode only)
};

}  // namespace rl4oasd::serve
