#include "serve/fleet.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace rl4oasd::serve {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// Rounds up to a power of two (shard indexing uses a bitmask).
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FleetMonitor::FleetMonitor(const core::Rl4Oasd* model, FleetConfig config,
                           AlertSink* sink)
    : model_(model),
      config_(config),
      sink_(sink),
      shards_(RoundUpPow2(std::max<size_t>(config.num_shards, 1))) {
  RL4_CHECK(model != nullptr);
  RL4_CHECK_GT(config_.max_active_trips, 0u);
  // The preprocessor's normal-route caches rebuild lazily under const; warm
  // them now so concurrent sessions only ever read. The model must not be
  // retrained (Fit/FineTune) while this monitor is serving.
  model_->preprocessor().WarmNormalRouteCaches();
}

Status FleetMonitor::StartTrip(int64_t vehicle_id, traj::SdPair sd,
                               double start_time) {
  Shard& shard = ShardOf(vehicle_id);
  const std::string precondition_msg =
      "vehicle " + std::to_string(vehicle_id) +
      " already has an active trip (EndTrip it first)";
  // Reject duplicates before making room: a failing call must not evict a
  // live trip. (A racing double-start can still reach the emplace below,
  // which stays authoritative.)
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.trips.contains(vehicle_id)) {
      return Status::FailedPrecondition(precondition_msg);
    }
  }
  if (active_trips_.load(kRelaxed) >=
      static_cast<int64_t>(config_.max_active_trips)) {
    EvictStalest();
  }
  // The session (LSTM state allocation) is built before any lock is taken.
  auto trip = std::make_shared<Trip>(model_->StartSession(sd, start_time), sd,
                                     start_time);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [it, inserted] = shard.trips.emplace(vehicle_id, trip);
    if (!inserted) {
      return Status::FailedPrecondition(precondition_msg);
    }
  }
  shard.counters.trips_started.fetch_add(1, kRelaxed);
  active_trips_.fetch_add(1, kRelaxed);
  return Status::OK();
}

std::shared_ptr<FleetMonitor::Trip> FleetMonitor::ResolveTrip(
    Shard& shard, int64_t vehicle_id) {
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.trips.find(vehicle_id);
  return it == shard.trips.end() ? nullptr : it->second;
}

void FleetMonitor::EmitNewRuns(int64_t vehicle_id, Trip* trip, Shard* shard,
                               double timestamp) {
  const auto runs = trip->session.TakeNewlyClosedRuns();
  if (runs.empty()) return;
  const size_t position = trip->session.labels().size();
  for (const auto& run : runs) {
    if (sink_ != nullptr) {
      sink_->OnAlert(Alert{vehicle_id, trip->sd, trip->start_time, run,
                           timestamp, position});
    }
  }
  shard->counters.alerts_emitted.fetch_add(static_cast<int64_t>(runs.size()),
                                           kRelaxed);
}

Result<int> FleetMonitor::Feed(int64_t vehicle_id, traj::EdgeId edge,
                               double timestamp) {
  Shard& shard = ShardOf(vehicle_id);
  for (;;) {
    const std::shared_ptr<Trip> trip = ResolveTrip(shard, vehicle_id);
    if (trip == nullptr) {
      return Status::NotFound("vehicle " + std::to_string(vehicle_id) +
                              " has no active trip");
    }
    std::lock_guard<std::mutex> lock(trip->mu);
    // A finisher (EndTrip/eviction) erases the trip from the shard map
    // *before* setting finished, so observing the flag here means a fresh
    // resolve sees either nothing or the vehicle's next trip — retry
    // rather than dropping a point the vehicle's live trip should get.
    if (trip->finished) continue;
    const int label = trip->session.Feed(edge);
    trip->last_update.store(timestamp, kRelaxed);
    EmitNewRuns(vehicle_id, trip.get(), &shard, timestamp);
    shard.counters.points_processed.fetch_add(1, kRelaxed);
    return label;
  }
}

size_t FleetMonitor::FeedBatch(std::span<const FleetPoint> points) {
  if (points.empty()) return 0;
  const size_t num_shards = shards_.size();
  // Counting-sort point indices by shard — stable, so a vehicle's points
  // keep their relative order — then resolve every point's trip with one
  // shard-lock acquisition per shard.
  std::vector<size_t> offsets(num_shards + 1, 0);
  for (const FleetPoint& p : points) ++offsets[ShardIndexOf(p.vehicle_id) + 1];
  for (size_t s = 0; s < num_shards; ++s) offsets[s + 1] += offsets[s];
  std::vector<size_t> order(points.size());
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t i = 0; i < points.size(); ++i) {
    order[cursor[ShardIndexOf(points[i].vehicle_id)]++] = i;
  }
  std::vector<std::shared_ptr<Trip>> resolved(points.size());
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = offsets[s];
    const size_t end = offsets[s + 1];
    if (begin == end) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t k = begin; k < end; ++k) {
      const auto it = shard.trips.find(points[order[k]].vehicle_id);
      if (it != shard.trips.end()) resolved[k] = it->second;
    }
  }

  // Group each trip's points into a per-trip queue by sorting (trip
  // address, arrival index) pairs: one O(n log n) pass, no per-trip
  // allocations, and the resulting group order doubles as the global
  // lock-acquisition order. One resolve pass per batch means every point
  // of a vehicle maps to the same Trip pointer; restarts mid-batch surface
  // as `finished` below. `resolved` keeps every grouped Trip alive for the
  // whole call.
  std::vector<std::pair<Trip*, size_t>> items;  // (trip, index into points)
  items.reserve(points.size());
  for (size_t k = 0; k < points.size(); ++k) {
    if (resolved[k] != nullptr) {
      items.emplace_back(resolved[k].get(), order[k]);
    }
  }
  // std::less, not raw `<`: deadlock freedom needs every concurrent caller
  // to agree on one total order over unrelated Trip pointers, which only
  // std::less guarantees.
  std::sort(items.begin(), items.end(),
            [](const std::pair<Trip*, size_t>& a,
               const std::pair<Trip*, size_t>& b) {
              if (a.first != b.first) {
                return std::less<Trip*>{}(a.first, b.first);
              }
              return a.second < b.second;
            });
  struct TripGroup {
    size_t next;   // current queue position in `items`
    size_t end;    // one past the queue's last position
    Shard* shard;
    bool fallback = false;  // trip ended mid-batch; rest goes through Feed
  };
  std::vector<TripGroup> groups;
  for (size_t begin = 0; begin < items.size();) {
    size_t end = begin + 1;
    while (end < items.size() && items[end].first == items[begin].first) {
      ++end;
    }
    groups.push_back(TripGroup{
        begin, end, &ShardOf(points[items[begin].second].vehicle_id)});
    begin = end;
  }

  // Wave loop: each round takes the next point of every still-active trip
  // and fuses up to `micro_batch` of those model steps into one batched
  // detector forward. All of a chunk's trip locks are held across the fused
  // step; groups are visited in Trip-address order, so concurrent FeedBatch
  // callers (and the single-lock paths) cannot deadlock.
  const size_t wave_cap = std::max<size_t>(size_t{1}, config_.micro_batch);
  std::vector<int64_t> shard_fed(num_shards, 0);
  size_t fed = 0;
  // `active` holds the still-live group indices and is compacted once per
  // round (not rebuilt), so a skewed batch — one deep per-trip queue among
  // many short ones — costs O(total points), not O(rounds * groups).
  std::vector<size_t> active;
  active.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) active.push_back(g);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(std::min(wave_cap, groups.size()));
  std::vector<size_t> live;
  std::vector<core::OnlineDetector::Session*> sessions;
  std::vector<traj::EdgeId> edges;
  while (!active.empty()) {
    for (size_t chunk = 0; chunk < active.size(); chunk += wave_cap) {
      const size_t chunk_end = std::min(active.size(), chunk + wave_cap);
      locks.clear();
      live.clear();
      sessions.clear();
      edges.clear();
      for (size_t i = chunk; i < chunk_end; ++i) {
        TripGroup& g = groups[active[i]];
        Trip* trip = items[g.next].first;
        locks.emplace_back(trip->mu);
        if (trip->finished) {
          // Ended under us (EndTrip or eviction, possibly followed by a
          // same-vehicle restart): release the lock and route this trip's
          // remaining points through Feed, which re-resolves.
          g.fallback = true;
          locks.pop_back();
          continue;
        }
        live.push_back(active[i]);
        sessions.push_back(&trip->session);
        edges.push_back(points[items[g.next].second].edge);
      }
      if (!sessions.empty()) {
        model_->detector().FeedBatch(sessions, edges);
        for (const size_t gi : live) {
          TripGroup& g = groups[gi];
          Trip* trip = items[g.next].first;
          const FleetPoint& p = points[items[g.next].second];
          trip->last_update.store(p.timestamp, kRelaxed);
          EmitNewRuns(p.vehicle_id, trip, g.shard, p.timestamp);
          ++shard_fed[ShardIndexOf(p.vehicle_id)];
          ++g.next;
        }
      }
      locks.clear();
    }
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](size_t g) {
                                  return groups[g].fallback ||
                                         groups[g].next >= groups[g].end;
                                }),
                 active.end());
  }

  for (size_t s = 0; s < num_shards; ++s) {
    if (shard_fed[s] != 0) {
      shards_[s].counters.points_processed.fetch_add(shard_fed[s], kRelaxed);
      fed += static_cast<size_t>(shard_fed[s]);
    }
  }
  // Deferred fallback: trips that ended mid-batch. Feed counts the points
  // it accepts itself.
  for (const TripGroup& g : groups) {
    if (!g.fallback) continue;
    for (size_t k = g.next; k < g.end; ++k) {
      const FleetPoint& p = points[items[k].second];
      if (Feed(p.vehicle_id, p.edge, p.timestamp).ok()) ++fed;
    }
  }
  return fed;
}

Result<std::vector<uint8_t>> FleetMonitor::EndTrip(int64_t vehicle_id) {
  Shard& shard = ShardOf(vehicle_id);
  std::shared_ptr<Trip> trip;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.trips.find(vehicle_id);
    if (it == shard.trips.end()) {
      return Status::NotFound("vehicle " + std::to_string(vehicle_id) +
                              " has no active trip");
    }
    trip = std::move(it->second);
    shard.trips.erase(it);
  }
  active_trips_.fetch_sub(1, kRelaxed);
  std::vector<uint8_t> labels;
  {
    std::lock_guard<std::mutex> lock(trip->mu);
    trip->finished = true;
    // Finish settles Delayed Labeling over the whole trip; any run not yet
    // alerted (including one still open: reaching the destination closes it
    // by definition) becomes takable and is emitted here.
    labels = trip->session.Finish();
    EmitNewRuns(vehicle_id, trip.get(), &shard,
                trip->last_update.load(kRelaxed));
    if (sink_ != nullptr) sink_->OnTripEnd(vehicle_id, labels);
  }
  shard.counters.trips_finished.fetch_add(1, kRelaxed);
  return labels;
}

void FleetMonitor::FinishEvicted(int64_t vehicle_id, Trip* trip,
                                 Shard* shard) {
  active_trips_.fetch_sub(1, kRelaxed);
  {
    std::lock_guard<std::mutex> lock(trip->mu);
    trip->finished = true;
    const double ts = trip->last_update.load(kRelaxed);
    // Runs that became final but were never drained, then the still-open
    // tail: eviction must not silently drop an anomaly in progress.
    EmitNewRuns(vehicle_id, trip, shard, ts);
    if (const auto open = trip->session.OpenRun()) {
      if (sink_ != nullptr) {
        sink_->OnAlert(Alert{vehicle_id, trip->sd, trip->start_time, *open,
                             ts, trip->session.labels().size()});
      }
      shard->counters.alerts_emitted.fetch_add(1, kRelaxed);
    }
    if (sink_ != nullptr) {
      sink_->OnTripEvicted(vehicle_id, trip->start_time,
                           trip->session.labels());
    }
  }
  shard->counters.trips_evicted.fetch_add(1, kRelaxed);
}

size_t FleetMonitor::EvictStale(double now) {
  size_t evicted = 0;
  for (Shard& shard : shards_) {
    std::vector<std::pair<int64_t, std::shared_ptr<Trip>>> victims;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.trips.begin(); it != shard.trips.end();) {
        if (now - it->second->last_update.load(kRelaxed) >
            config_.trip_timeout_s) {
          victims.emplace_back(it->first, std::move(it->second));
          it = shard.trips.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Notify outside the shard lock so other vehicles keep flowing while
    // the sink handles the evictions.
    for (auto& [vehicle, trip] : victims) {
      FinishEvicted(vehicle, trip.get(), &shard);
    }
    evicted += victims.size();
  }
  return evicted;
}

void FleetMonitor::EvictStalest() {
  // Two passes: find the globally stalest trip, then remove it. A trip that
  // ended (or was replaced by a same-vehicle restart) between the passes is
  // simply spared — the cap is advisory, not exact — which is why pass 2
  // rechecks the trip's identity, not just the vehicle id.
  int64_t victim = 0;
  std::shared_ptr<Trip> observed;
  double oldest = std::numeric_limits<double>::infinity();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [vehicle, trip] : shard.trips) {
      const double last = trip->last_update.load(kRelaxed);
      if (last < oldest) {
        oldest = last;
        victim = vehicle;
        observed = trip;
      }
    }
  }
  if (observed == nullptr) return;
  Shard& shard = ShardOf(victim);
  std::shared_ptr<Trip> trip;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.trips.find(victim);
    if (it == shard.trips.end() || it->second != observed) return;
    trip = std::move(it->second);
    shard.trips.erase(it);
  }
  FinishEvicted(victim, trip.get(), &shard);
}

size_t FleetMonitor::ActiveTrips() const {
  const int64_t n = active_trips_.load(kRelaxed);
  return n > 0 ? static_cast<size_t>(n) : 0;
}

FleetStats FleetMonitor::Stats() const {
  FleetStats stats;
  for (const Shard& shard : shards_) {
    stats.trips_started += shard.counters.trips_started.load(kRelaxed);
    stats.trips_finished += shard.counters.trips_finished.load(kRelaxed);
    stats.points_processed += shard.counters.points_processed.load(kRelaxed);
    stats.alerts_emitted += shard.counters.alerts_emitted.load(kRelaxed);
    stats.trips_evicted += shard.counters.trips_evicted.load(kRelaxed);
  }
  return stats;
}

}  // namespace rl4oasd::serve
