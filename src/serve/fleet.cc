#include "serve/fleet.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace rl4oasd::serve {

namespace {

/// Rounds up to a power of two (shard indexing uses a bitmask).
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FleetMonitor::FleetMonitor(const core::Rl4Oasd* model, FleetConfig config,
                           AlertSink* sink)
    : model_(model),
      config_(config),
      sink_(sink),
      shards_(RoundUpPow2(std::max<size_t>(config.num_shards, 1))) {
  RL4_CHECK(model != nullptr);
  RL4_CHECK_GT(config_.max_active_trips, 0u);
  // The preprocessor's normal-route caches rebuild lazily under const; warm
  // them now so concurrent sessions only ever read. The model must not be
  // retrained (Fit/FineTune) while this monitor is serving.
  model_->preprocessor().WarmNormalRouteCaches();
}

Status FleetMonitor::StartTrip(int64_t vehicle_id, traj::SdPair sd,
                               double start_time) {
  if (ActiveTrips() >= config_.max_active_trips) EvictStalest();
  Shard& shard = ShardOf(vehicle_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.trips.contains(vehicle_id)) {
    return Status::FailedPrecondition(
        "vehicle " + std::to_string(vehicle_id) +
        " already has an active trip (EndTrip it first)");
  }
  Trip trip{model_->StartSession(sd, start_time), sd, start_time, 0, 0, 0};
  shard.trips.emplace(vehicle_id, std::move(trip));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.trips_started += 1;
  }
  return Status::OK();
}

void FleetMonitor::EmitClosedRuns(int64_t vehicle_id, Trip* trip,
                                  double timestamp, bool include_open_tail) {
  const auto runs = trip->session.CurrentAnomalies();
  const size_t n = trip->session.labels().size();
  size_t emitted = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const bool closed = static_cast<size_t>(runs[i].end) < n;
    if (i < trip->alerted_runs) continue;  // already reported
    if (!closed && !include_open_tail) continue;
    Alert alert;
    alert.vehicle_id = vehicle_id;
    alert.sd = trip->sd;
    alert.range = runs[i];
    alert.timestamp = timestamp;
    alert.position = n;
    if (sink_ != nullptr) sink_->OnAlert(alert);
    trip->alerted_runs = i + 1;
    ++emitted;
  }
  if (emitted > 0) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.alerts_emitted += static_cast<int64_t>(emitted);
  }
}

Result<int> FleetMonitor::Feed(int64_t vehicle_id, traj::EdgeId edge,
                               double timestamp) {
  Shard& shard = ShardOf(vehicle_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.trips.find(vehicle_id);
  if (it == shard.trips.end()) {
    return Status::NotFound("vehicle " + std::to_string(vehicle_id) +
                            " has no active trip");
  }
  Trip& trip = it->second;
  const int label = trip.session.Feed(edge);
  trip.last_update = timestamp;
  trip.points += 1;
  // An anomalous run can only close on a 1 -> 0 transition; skip the
  // (comparatively expensive) run extraction otherwise.
  if (trip.prev_label == 1 && label == 0) {
    EmitClosedRuns(vehicle_id, &trip, timestamp, /*include_open_tail=*/false);
  }
  trip.prev_label = label;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.points_processed += 1;
  }
  return label;
}

Result<std::vector<uint8_t>> FleetMonitor::EndTrip(int64_t vehicle_id) {
  Shard& shard = ShardOf(vehicle_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.trips.find(vehicle_id);
  if (it == shard.trips.end()) {
    return Status::NotFound("vehicle " + std::to_string(vehicle_id) +
                            " has no active trip");
  }
  Trip& trip = it->second;
  // Report any run not yet alerted (including one still open: reaching the
  // destination closes it by definition) before finishing.
  EmitClosedRuns(vehicle_id, &trip, trip.last_update,
                 /*include_open_tail=*/true);
  std::vector<uint8_t> labels = trip.session.Finish();
  if (sink_ != nullptr) sink_->OnTripEnd(vehicle_id, labels);
  shard.trips.erase(it);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.trips_finished += 1;
  }
  return labels;
}

size_t FleetMonitor::EvictStale(double now) {
  size_t evicted = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.trips.begin(); it != shard.trips.end();) {
      if (now - it->second.last_update > config_.trip_timeout_s) {
        it = shard.trips.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  if (evicted > 0) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.trips_evicted += static_cast<int64_t>(evicted);
  }
  return evicted;
}

void FleetMonitor::EvictStalest() {
  // Two passes: find the globally stalest trip, then erase it. A trip fed
  // between the passes is simply spared — the cap is advisory, not exact.
  int64_t victim = 0;
  double oldest = std::numeric_limits<double>::infinity();
  bool found = false;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [vehicle, trip] : shard.trips) {
      if (trip.last_update < oldest) {
        oldest = trip.last_update;
        victim = vehicle;
        found = true;
      }
    }
  }
  if (!found) return;
  Shard& shard = ShardOf(victim);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.trips.erase(victim) > 0) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.trips_evicted += 1;
  }
}

size_t FleetMonitor::ActiveTrips() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.trips.size();
  }
  return n;
}

FleetStats FleetMonitor::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace rl4oasd::serve
