#include "serve/fleet.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "io/fleet_snapshot.h"
#include "io/model_io.h"
#include "serve/delivery_queue.h"
#include "serve/ingest_queue.h"

namespace rl4oasd::serve {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// Rounds up to a power of two (shard indexing uses a bitmask).
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FleetMonitor::FleetMonitor(std::shared_ptr<const core::Rl4Oasd> model,
                           FleetConfig config, AlertSink* sink)
    : config_(config),
      sink_(sink),
      guard_(config.guard,
             model == nullptr ? nullptr : model->network()),
      shards_(RoundUpPow2(std::max<size_t>(config.num_shards, 1))) {
  RL4_CHECK(model != nullptr);
  RL4_CHECK_GT(config_.max_active_trips, 0u);
  // The preprocessor's normal-route caches rebuild lazily under const; warm
  // them now so concurrent sessions only ever read. The model must not be
  // retrained (Fit/FineTune) while this monitor is serving it — fine-tuned
  // refreshes come in through SwapModel as separate instances.
  model->preprocessor().WarmNormalRouteCaches();
  auto handle = std::make_shared<ModelHandle>();
  handle->generation = 1;
  handle->model = std::move(model);
  model_handle_ = std::move(handle);
  current_generation_.store(1, kRelaxed);
  // Async plumbing last: the ingest workers capture `this`, so every other
  // member must already be live when they start.
  if (sink_ != nullptr && config_.async_alerts) {
    delivery_ = std::make_unique<AlertDeliveryQueue>(
        sink_, config_.alert_queue_capacity);
  }
  if (config_.ingest_workers > 0) {
    ingest_ = std::make_unique<IngestPipeline>(this, config_, shards_.size());
  }
}

FleetMonitor::~FleetMonitor() {
  // Producers first: the ingest workers drain their lanes and may enqueue
  // delivery events while doing so; the delivery queue then flushes its
  // backlog. Reversing this order would lose the drained points' alerts.
  ingest_.reset();
  delivery_.reset();
}

FleetMonitor::FleetMonitor(const core::Rl4Oasd* model, FleetConfig config,
                           AlertSink* sink)
    : FleetMonitor(std::shared_ptr<const core::Rl4Oasd>(
                       model, [](const core::Rl4Oasd*) {}),
                   config, sink) {}

uint64_t FleetMonitor::ModelHandle::Fingerprint() const {
  std::call_once(fingerprint_once_,
                 [this] { fingerprint_ = io::ModelFingerprint(*model); });
  return fingerprint_;
}

std::shared_ptr<const FleetMonitor::ModelHandle> FleetMonitor::CurrentHandle()
    const {
  common::MutexLock lock(&model_mu_);
  return model_handle_;
}

std::shared_ptr<const core::Rl4Oasd> FleetMonitor::model() const {
  return CurrentHandle()->model;
}

uint64_t FleetMonitor::ModelGeneration() const {
  return CurrentHandle()->generation;
}

std::shared_ptr<const core::Rl4Oasd> FleetMonitor::SwapModel(
    std::shared_ptr<const core::Rl4Oasd> model) {
  RL4_CHECK(model != nullptr);
  auto fresh = std::make_shared<ModelHandle>();
  fresh->model = std::move(model);
  // Degenerate self-swap check: "fine-tuned refreshes come in through
  // SwapModel as separate instances" is an enforced contract, not a comment.
  // Identical bytes would re-prime every in-flight trip for nothing, so a
  // fingerprint-equal handle is rejected as a no-op — the incoming model is
  // handed straight back as if retired immediately. (Fingerprinting
  // serializes both models once; swaps are rare and the current handle's
  // fingerprint is memoized, so the snapshot path reuses it.)
  if (fresh->Fingerprint() == CurrentHandle()->Fingerprint()) {
    RL4_LOG(Warning) << "SwapModel called with a fingerprint-identical "
                        "model; rejecting the self-swap as a no-op";
    return fresh->model;
  }
  // Warm the lazy caches before publishing, so concurrent ingest never
  // observes a half-initialized handle.
  fresh->model->preprocessor().WarmNormalRouteCaches();
  std::shared_ptr<const ModelHandle> old;
  {
    common::MutexLock lock(&model_mu_);
    fresh->generation = model_handle_->generation + 1;
    current_generation_.store(fresh->generation, kRelaxed);
    old = std::move(model_handle_);
    model_handle_ = std::move(fresh);
  }
  return old->model;
}

void FleetMonitor::ReprimeLocked(
    Trip* trip, const std::shared_ptr<const ModelHandle>& handle) {
  trip->session = handle->model->detector().ReprimeSession(trip->session);
  trip->handle = handle;
}

Status FleetMonitor::StartTrip(int64_t vehicle_id, traj::SdPair sd,
                               double start_time) {
  Shard& shard = ShardOf(vehicle_id);
  const std::string precondition_msg =
      "vehicle " + std::to_string(vehicle_id) +
      " already has an active trip (EndTrip it first)";
  // Reject duplicates early so the common failure is cheap. (A racing
  // double-start can still reach the emplace below, which stays
  // authoritative.)
  {
    common::MutexLock lock(&shard.mu);
    if (shard.trips.contains(vehicle_id)) {
      return Status::FailedPrecondition(precondition_msg);
    }
  }
  // The session (LSTM state allocation) is built before any lock is taken.
  auto handle = CurrentHandle();
  auto trip = std::make_shared<Trip>(
      handle->model->StartSession(sd, start_time), sd, start_time,
      std::move(handle));
  // Slot reservation is atomic with admission: the emplace is the single
  // admission point, and the active-trip counter bumps under the same shard
  // lock only for an inserted trip. N concurrent admissions therefore read
  // N *distinct* reservation indices, so exactly the admissions past the
  // cap know they owe an eviction — the old check-then-insert admitted up
  // to cap + N - 1 trips with nobody evicting. A failed (duplicate) start
  // never touches the counter and never evicts; the old code evicted
  // *before* the insert, so a racing duplicate start could sacrifice an
  // innocent stalest trip and then fail anyway. (Reserving before the
  // insert and undoing on failure has the same flaw one level down: the
  // loser's transient reservation inflates a concurrent winner's count and
  // makes *it* over-evict.)
  const int64_t cap = static_cast<int64_t>(config_.max_active_trips);
  int64_t reserved = 0;
  {
    common::MutexLock lock(&shard.mu);
    const auto [it, inserted] = shard.trips.emplace(vehicle_id, trip);
    if (!inserted) {
      return Status::FailedPrecondition(precondition_msg);
    }
    reserved = active_trips_.fetch_add(1, kRelaxed) + 1;
  }
  shard.counters.trips_started.fetch_add(1, kRelaxed);
  if (reserved > cap) {
    // This admission overflowed the cap, so it pays for exactly one
    // eviction. The count can transiently sit above the cap (by the number
    // of in-flight admissions), but every over-cap admission evicts once,
    // so quiescent active <= cap is exact. A concurrent EndTrip can make
    // this eviction redundant (active dips below the cap); low is the safe
    // side — the cap bounds memory.
    (void)EvictStalest();
  }
  return Status::OK();
}

std::shared_ptr<FleetMonitor::Trip> FleetMonitor::ResolveTrip(
    Shard& shard, int64_t vehicle_id) {
  common::MutexLock lock(&shard.mu);
  const auto it = shard.trips.find(vehicle_id);
  return it == shard.trips.end() ? nullptr : it->second;
}

void FleetMonitor::EmitNewRuns(int64_t vehicle_id, Trip* trip, Shard* shard,
                               double timestamp) {
  const auto runs = trip->session.TakeNewlyClosedRuns();
  if (runs.empty()) return;
  const size_t position = trip->session.labels().size();
  for (const auto& run : runs) {
    SinkAlert(Alert{vehicle_id, trip->sd, trip->start_time, run, timestamp,
                    position});
  }
  shard->counters.alerts_emitted.fetch_add(static_cast<int64_t>(runs.size()),
                                           kRelaxed);
}

// The Sink* helpers run under the reporting trip's lock (their callers are
// the EmitNewRuns/EndTrip/FinishEvicted critical sections); enqueueing on
// the delivery queue there is rank-legal (kFleetDelivery > kFleetTrip) and
// is precisely what stamps the event sequence "under the trip lock".

void FleetMonitor::SinkAlert(const Alert& alert) {
  if (sink_ == nullptr) return;
  if (delivery_ != nullptr) {
    DeliveryEvent event;
    event.kind = DeliveryEvent::Kind::kAlert;
    event.alert = alert;
    event.vehicle_id = alert.vehicle_id;
    delivery_->Enqueue(std::move(event));
    return;
  }
  sink_->OnAlert(alert);
}

void FleetMonitor::SinkTripEnd(int64_t vehicle_id,
                               const std::vector<uint8_t>& labels) {
  if (sink_ == nullptr) return;
  if (delivery_ != nullptr) {
    DeliveryEvent event;
    event.kind = DeliveryEvent::Kind::kTripEnd;
    event.vehicle_id = vehicle_id;
    event.labels = labels;
    delivery_->Enqueue(std::move(event));
    return;
  }
  sink_->OnTripEnd(vehicle_id, labels);
}

void FleetMonitor::SinkTripEvicted(int64_t vehicle_id, double start_time,
                                   const std::vector<uint8_t>& labels) {
  if (sink_ == nullptr) return;
  if (delivery_ != nullptr) {
    DeliveryEvent event;
    event.kind = DeliveryEvent::Kind::kTripEvicted;
    event.vehicle_id = vehicle_id;
    event.start_time = start_time;
    event.labels = labels;
    delivery_->Enqueue(std::move(event));
    return;
  }
  sink_->OnTripEvicted(vehicle_id, start_time, labels);
}

void FleetMonitor::SinkTripFinalized(int64_t vehicle_id, traj::SdPair sd,
                                     double start_time,
                                     const std::vector<traj::EdgeId>& edges,
                                     const std::vector<uint8_t>& labels) {
  if (sink_ == nullptr) return;
  if (delivery_ != nullptr) {
    DeliveryEvent event;
    event.kind = DeliveryEvent::Kind::kTripFinalized;
    event.vehicle_id = vehicle_id;
    event.sd = sd;
    event.start_time = start_time;
    event.edges = edges;
    event.labels = labels;
    delivery_->Enqueue(std::move(event));
    return;
  }
  sink_->OnTripFinalized(vehicle_id, sd, start_time, edges, labels);
}

void FleetMonitor::SinkTripQuarantined(int64_t vehicle_id, double start_time,
                                       int64_t malformed_points) {
  if (sink_ == nullptr) return;
  if (delivery_ != nullptr) {
    DeliveryEvent event;
    event.kind = DeliveryEvent::Kind::kTripQuarantined;
    event.vehicle_id = vehicle_id;
    event.start_time = start_time;
    event.malformed = malformed_points;
    delivery_->Enqueue(std::move(event));
    return;
  }
  sink_->OnTripQuarantined(vehicle_id, start_time, malformed_points);
}

FleetMonitor::GuardVerdict FleetMonitor::ApplyGuard(int64_t vehicle_id,
                                                    Trip* trip, Shard* shard,
                                                    traj::EdgeId edge,
                                                    double* timestamp) {
  const IngestGuard::Decision d = guard_.Check(&trip->guard, edge,
                                               *timestamp);
  ShardCounters& c = shard->counters;
  switch (d.anomaly) {
    case IngestGuard::Anomaly::kNone:
      break;
    case IngestGuard::Anomaly::kInvalidEdge:
      c.guard_invalid_edges.fetch_add(1, kRelaxed);
      break;
    case IngestGuard::Anomaly::kDuplicate:
      c.guard_duplicates.fetch_add(1, kRelaxed);
      break;
    case IngestGuard::Anomaly::kOutOfOrder:
      c.guard_out_of_order.fetch_add(1, kRelaxed);
      break;
    case IngestGuard::Anomaly::kClockSkew:
      c.guard_clock_skew.fetch_add(1, kRelaxed);
      break;
    case IngestGuard::Anomaly::kDropout:
      c.guard_dropout_gaps.fetch_add(1, kRelaxed);
      break;
    case IngestGuard::Anomaly::kTeleport:
      c.guard_teleports.fetch_add(1, kRelaxed);
      break;
  }
  if (d.repaired) c.points_repaired.fetch_add(1, kRelaxed);
  if (!d.accept) {
    if (d.quarantine_dropped) {
      c.points_quarantine_dropped.fetch_add(1, kRelaxed);
    } else {
      c.points_rejected.fetch_add(1, kRelaxed);
    }
  }
  if (d.entered_quarantine) {
    c.trips_quarantined.fetch_add(1, kRelaxed);
    // Fired here, under the trip lock, so the quarantine notice is
    // sequenced against the trip's alerts exactly like every other
    // lifecycle event.
    SinkTripQuarantined(vehicle_id, trip->start_time,
                        trip->guard.malformed_total);
  }
  if (d.recovered) c.trips_recovered.fetch_add(1, kRelaxed);
  *timestamp = d.timestamp;
  return GuardVerdict{d.accept, d.evict};
}

Result<int> FleetMonitor::Feed(int64_t vehicle_id, traj::EdgeId edge,
                               double timestamp) {
  Shard& shard = ShardOf(vehicle_id);
  for (;;) {
    const std::shared_ptr<Trip> trip = ResolveTrip(shard, vehicle_id);
    if (trip == nullptr) {
      return Status::NotFound("vehicle " + std::to_string(vehicle_id) +
                              " has no active trip");
    }
    Trip* const t = trip.get();
    bool evict = false;
    bool quarantine_dropped = false;
    {
      common::MutexLock lock(&t->mu);
      // A finisher (EndTrip/eviction) erases the trip from the shard map
      // *before* setting finished, so observing the flag here means a fresh
      // resolve sees either nothing or the vehicle's next trip — retry
      // rather than dropping a point the vehicle's live trip should get.
      if (t->finished) continue;
      // Lazy hot-swap migration: a trip still primed against a retired
      // model replays its history through the current one before this
      // point. The relaxed generation hint keeps the steady-state path free
      // of the model mutex and handle refcount; a trip already *newer* than
      // the fetched handle (SwapModel raced us) just proceeds on its own
      // session.
      if (t->handle->generation < current_generation_.load(kRelaxed)) {
        const auto handle = CurrentHandle();
        if (t->handle->generation < handle->generation) {
          ReprimeLocked(t, handle);
        }
      }
      // The input contract runs before the session sees anything. The
      // timestamp comes back rewritten to the trip's monotone clock, which
      // is what staleness and alert timestamps record — one skewed or
      // negative client timestamp can no longer mark the trip stalest.
      double ts = timestamp;
      const GuardVerdict v = ApplyGuard(vehicle_id, t, &shard, edge, &ts);
      t->last_update.store(ts, kRelaxed);
      if (v.accept) {
        const int label = t->session.Feed(edge);
        EmitNewRuns(vehicle_id, t, &shard, ts);
        shard.counters.points_processed.fetch_add(1, kRelaxed);
        return label;
      }
      evict = v.evict;
      quarantine_dropped = t->guard.quarantined || evict;
    }
    // The quarantine point budget ran out: remove the trip with no trip
    // lock held (shard rank sits below trip rank). `trip` keeps it alive.
    if (evict) EvictQuarantined(vehicle_id, t);
    if (quarantine_dropped) {
      return Status::ResourceExhausted(
          "vehicle " + std::to_string(vehicle_id) +
          " is quarantined (malformed-point budget exceeded); point dropped");
    }
    return Status::InvalidArgument(
        "point rejected by the ingest guard for vehicle " +
        std::to_string(vehicle_id));
  }
}

// Analysis opt-out rationale: a wave holds a *runtime-sized set* of trip
// locks in one std::vector<common::UniqueLock>, which Clang TSA cannot
// model (capabilities must be compile-time expressions). The protocol is
// enforced elsewhere on both axes: the debug-build rank checker asserts the
// ascending-address same-rank acquisition order at runtime on every wave,
// and the TSAN CI job stresses concurrent FeedBatch callers.
size_t FleetMonitor::FeedBatch(std::span<const FleetPoint> points)
    RL4OASD_NO_THREAD_SAFETY_ANALYSIS {
  if (points.empty()) return 0;
  const size_t num_shards = shards_.size();
  // Counting-sort point indices by shard — stable, so a vehicle's points
  // keep their relative order — then resolve every point's trip with one
  // shard-lock acquisition per shard.
  std::vector<size_t> offsets(num_shards + 1, 0);
  for (const FleetPoint& p : points) ++offsets[ShardIndexOf(p.vehicle_id) + 1];
  for (size_t s = 0; s < num_shards; ++s) offsets[s + 1] += offsets[s];
  std::vector<size_t> order(points.size());
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t i = 0; i < points.size(); ++i) {
    order[cursor[ShardIndexOf(points[i].vehicle_id)]++] = i;
  }
  std::vector<std::shared_ptr<Trip>> resolved(points.size());
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = offsets[s];
    const size_t end = offsets[s + 1];
    if (begin == end) continue;
    Shard& shard = shards_[s];
    common::MutexLock lock(&shard.mu);
    for (size_t k = begin; k < end; ++k) {
      const auto it = shard.trips.find(points[order[k]].vehicle_id);
      if (it != shard.trips.end()) resolved[k] = it->second;
    }
  }

  // Group each trip's points into a per-trip queue by sorting (trip
  // address, arrival index) pairs: one O(n log n) pass, no per-trip
  // allocations, and the resulting group order doubles as the global
  // lock-acquisition order. One resolve pass per batch means every point
  // of a vehicle maps to the same Trip pointer; restarts mid-batch surface
  // as `finished` below. `resolved` keeps every grouped Trip alive for the
  // whole call.
  std::vector<std::pair<Trip*, size_t>> items;  // (trip, index into points)
  items.reserve(points.size());
  for (size_t k = 0; k < points.size(); ++k) {
    if (resolved[k] != nullptr) {
      items.emplace_back(resolved[k].get(), order[k]);
    }
  }
  // std::less, not raw `<`: deadlock freedom needs every concurrent caller
  // to agree on one total order over unrelated Trip pointers, which only
  // std::less guarantees.
  std::sort(items.begin(), items.end(),
            [](const std::pair<Trip*, size_t>& a,
               const std::pair<Trip*, size_t>& b) {
              if (a.first != b.first) {
                return std::less<Trip*>{}(a.first, b.first);
              }
              return a.second < b.second;
            });
  struct TripGroup {
    size_t next;   // current queue position in `items`
    size_t end;    // one past the queue's last position
    Shard* shard;
    bool fallback = false;  // trip ended mid-batch; rest goes through Feed
  };
  std::vector<TripGroup> groups;
  for (size_t begin = 0; begin < items.size();) {
    size_t end = begin + 1;
    while (end < items.size() && items[end].first == items[begin].first) {
      ++end;
    }
    groups.push_back(TripGroup{
        begin, end, &ShardOf(points[items[begin].second].vehicle_id)});
    begin = end;
  }

  // Wave loop: each round takes the next point of every still-active trip
  // and fuses up to `micro_batch` of those model steps into one batched
  // detector forward. All of a chunk's trip locks are held across the fused
  // step; groups are visited in Trip-address order, so concurrent FeedBatch
  // callers (and the single-lock paths) cannot deadlock.
  const size_t wave_cap = std::max<size_t>(size_t{1}, config_.micro_batch);
  std::vector<int64_t> shard_fed(num_shards, 0);
  size_t fed = 0;
  // `active` holds the still-live group indices and is compacted once per
  // round (not rebuilt), so a skewed batch — one deep per-trip queue among
  // many short ones — costs O(total points), not O(rounds * groups).
  std::vector<size_t> active;
  active.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) active.push_back(g);
  std::vector<common::UniqueLock> locks;
  locks.reserve(std::min(wave_cap, groups.size()));
  std::vector<size_t> live;
  std::vector<core::OnlineDetector::Session*> sessions;
  std::vector<traj::EdgeId> edges;
  std::vector<double> live_ts;
  // Quarantine evictions decided during a wave are deferred until the
  // chunk's locks are released: eviction re-acquires shard then trip locks,
  // which the rank hierarchy forbids while any wave lock is held. The
  // `resolved` vector keeps every victim alive until then.
  std::vector<std::pair<int64_t, Trip*>> quarantine_victims;
  while (!active.empty()) {
    for (size_t chunk = 0; chunk < active.size(); chunk += wave_cap) {
      const size_t chunk_end = std::min(active.size(), chunk + wave_cap);
      // One model handle per wave chunk: every fused session is primed
      // against it, so the batched detector call never mixes weights.
      const auto handle = CurrentHandle();
      locks.clear();
      live.clear();
      sessions.clear();
      edges.clear();
      live_ts.clear();
      for (size_t i = chunk; i < chunk_end; ++i) {
        TripGroup& g = groups[active[i]];
        Trip* trip = items[g.next].first;
        locks.emplace_back(&trip->mu);
        if (trip->finished) {
          // Ended under us (EndTrip or eviction, possibly followed by a
          // same-vehicle restart): release the lock and route this trip's
          // remaining points through Feed, which re-resolves.
          g.fallback = true;
          locks.pop_back();
          continue;
        }
        if (trip->handle->generation < handle->generation) {
          ReprimeLocked(trip, handle);
        }
        // The same input contract as Feed, applied before the fusion
        // decision so sync and async ingest stay point-for-point
        // equivalent.
        const FleetPoint& p = points[items[g.next].second];
        double ts = p.timestamp;
        const GuardVerdict v =
            ApplyGuard(p.vehicle_id, trip, g.shard, p.edge, &ts);
        trip->last_update.store(ts, kRelaxed);
        if (!v.accept) {
          if (v.evict) quarantine_victims.emplace_back(p.vehicle_id, trip);
          ++g.next;
          locks.pop_back();
          continue;
        }
        if (trip->handle != handle) {
          // A racing SwapModel moved this trip past our handle between the
          // fetch above and taking its lock: its session belongs to a newer
          // detector, so it cannot fuse into this wave. Feed it scalar on
          // its own (newer) model instead — same bookkeeping, no fusion.
          (void)trip->session.Feed(p.edge);
          EmitNewRuns(p.vehicle_id, trip, g.shard, ts);
          ++shard_fed[ShardIndexOf(p.vehicle_id)];
          ++g.next;
          continue;
        }
        live.push_back(active[i]);
        sessions.push_back(&trip->session);
        edges.push_back(p.edge);
        live_ts.push_back(ts);
      }
      if (!sessions.empty()) {
        handle->model->detector().FeedBatch(sessions, edges);
        for (size_t li = 0; li < live.size(); ++li) {
          TripGroup& g = groups[live[li]];
          Trip* trip = items[g.next].first;
          const FleetPoint& p = points[items[g.next].second];
          EmitNewRuns(p.vehicle_id, trip, g.shard, live_ts[li]);
          ++shard_fed[ShardIndexOf(p.vehicle_id)];
          ++g.next;
        }
      }
      locks.clear();
      // No wave lock held: finish this chunk's quarantine evictions. A
      // victim's remaining points hit its `finished` flag next round and
      // fall back to Feed, which re-resolves (NotFound, or the vehicle's
      // next trip).
      for (const auto& [vehicle, victim] : quarantine_victims) {
        EvictQuarantined(vehicle, victim);
      }
      quarantine_victims.clear();
    }
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](size_t g) {
                                  return groups[g].fallback ||
                                         groups[g].next >= groups[g].end;
                                }),
                 active.end());
  }

  for (size_t s = 0; s < num_shards; ++s) {
    if (shard_fed[s] != 0) {
      shards_[s].counters.points_processed.fetch_add(shard_fed[s], kRelaxed);
      fed += static_cast<size_t>(shard_fed[s]);
    }
  }
  // Deferred fallback: trips that ended mid-batch. Feed counts the points
  // it accepts itself.
  for (const TripGroup& g : groups) {
    if (!g.fallback) continue;
    for (size_t k = g.next; k < g.end; ++k) {
      const FleetPoint& p = points[items[k].second];
      if (Feed(p.vehicle_id, p.edge, p.timestamp).ok()) ++fed;
    }
  }
  return fed;
}

Status FleetMonitor::Submit(const FleetPoint& point) {
  if (ingest_ == nullptr) {
    return Status::FailedPrecondition(
        "async ingest is disabled (FleetConfig::ingest_workers == 0); use "
        "Feed/FeedBatch or configure workers");
  }
  if (!ingest_->Submit(point)) {
    return Status::ResourceExhausted(
        "ingest lane full; point shed (OverloadPolicy::kShed)");
  }
  return Status::OK();
}

size_t FleetMonitor::SubmitBatch(std::span<const FleetPoint> points) {
  if (ingest_ == nullptr) return 0;
  return ingest_->SubmitBatch(points);
}

Status FleetMonitor::SubmitEndTrip(int64_t vehicle_id) {
  if (ingest_ == nullptr) {
    return Status::FailedPrecondition(
        "async ingest is disabled (FleetConfig::ingest_workers == 0); use "
        "EndTrip");
  }
  ingest_->SubmitEnd(vehicle_id);
  return Status::OK();
}

void FleetMonitor::Quiesce() {
  // Order matters: draining the lanes can enqueue delivery events, so the
  // delivery flush must come second to cover them.
  if (ingest_ != nullptr) ingest_->Quiesce();
  if (delivery_ != nullptr) delivery_->Flush();
}

Result<std::vector<uint8_t>> FleetMonitor::EndTrip(int64_t vehicle_id) {
  Shard& shard = ShardOf(vehicle_id);
  std::shared_ptr<Trip> trip;
  {
    common::MutexLock lock(&shard.mu);
    const auto it = shard.trips.find(vehicle_id);
    if (it == shard.trips.end()) {
      return Status::NotFound("vehicle " + std::to_string(vehicle_id) +
                              " has no active trip");
    }
    trip = std::move(it->second);
    shard.trips.erase(it);
  }
  active_trips_.fetch_sub(1, kRelaxed);
  std::vector<uint8_t> labels;
  {
    Trip* const t = trip.get();
    common::MutexLock lock(&t->mu);
    t->finished = true;
    // Finish settles Delayed Labeling over the whole trip; any run not yet
    // alerted (including one still open: reaching the destination closes it
    // by definition) becomes takable and is emitted here.
    labels = t->session.Finish();
    EmitNewRuns(vehicle_id, t, &shard, t->last_update.load(kRelaxed));
    SinkTripEnd(vehicle_id, labels);
    // The harvesting callback: a completed trip's (edges, final labels)
    // pair is a ready-made training sample for online learning. Exactly
    // once per trip — `finished` above makes this EndTrip the only one
    // that reaches here.
    SinkTripFinalized(vehicle_id, t->sd, t->start_time, t->session.edges(),
                      labels);
  }
  shard.counters.trips_finished.fetch_add(1, kRelaxed);
  return labels;
}

void FleetMonitor::FinishEvicted(int64_t vehicle_id, Trip* trip,
                                 Shard* shard) {
  active_trips_.fetch_sub(1, kRelaxed);
  {
    common::MutexLock lock(&trip->mu);
    trip->finished = true;
    const double ts = trip->last_update.load(kRelaxed);
    // Runs that became final but were never drained, then the still-open
    // tail: eviction must not silently drop an anomaly in progress.
    EmitNewRuns(vehicle_id, trip, shard, ts);
    if (const auto open = trip->session.OpenRun()) {
      SinkAlert(Alert{vehicle_id, trip->sd, trip->start_time, *open, ts,
                      trip->session.labels().size()});
      shard->counters.alerts_emitted.fetch_add(1, kRelaxed);
    }
    SinkTripEvicted(vehicle_id, trip->start_time, trip->session.labels());
  }
  shard->counters.trips_evicted.fetch_add(1, kRelaxed);
}

void FleetMonitor::EvictQuarantined(int64_t vehicle_id, Trip* trip) {
  Shard& shard = ShardOf(vehicle_id);
  {
    common::MutexLock lock(&shard.mu);
    const auto it = shard.trips.find(vehicle_id);
    // Identity check, not just vehicle id: EndTrip, a stale/stalest
    // eviction, or a duplicate quarantine-evict signal may have removed
    // this trip already (and the vehicle may even be on a new trip). Losing
    // the race means someone else finished the trip — nothing owed here.
    if (it == shard.trips.end() || it->second.get() != trip) return;
    shard.trips.erase(it);
  }
  FinishEvicted(vehicle_id, trip, &shard);
  shard.counters.quarantine_evictions.fetch_add(1, kRelaxed);
}

size_t FleetMonitor::EvictStale(double now) {
  size_t evicted = 0;
  for (Shard& shard : shards_) {
    std::vector<std::pair<int64_t, std::shared_ptr<Trip>>> victims;
    {
      common::MutexLock lock(&shard.mu);
      for (auto it = shard.trips.begin(); it != shard.trips.end();) {
        if (now - it->second->last_update.load(kRelaxed) >
            config_.trip_timeout_s) {
          victims.emplace_back(it->first, std::move(it->second));
          it = shard.trips.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Notify outside the shard lock so other vehicles keep flowing while
    // the sink handles the evictions.
    for (auto& [vehicle, trip] : victims) {
      FinishEvicted(vehicle, trip.get(), &shard);
    }
    evicted += victims.size();
  }
  return evicted;
}

bool FleetMonitor::EvictStalest() {
  // Two passes per attempt: find the globally stalest trip, then remove it,
  // rechecking the trip's *identity* (not just the vehicle id) — a trip
  // that ended or was replaced by a same-vehicle restart between the passes
  // must be spared. Losing that race retries the scan: the caller is an
  // over-cap admission that still owes the hierarchy one eviction, so
  // "someone else removed my victim" must not silently count as mine.
  for (;;) {
    int64_t victim = 0;
    std::shared_ptr<Trip> observed;
    double oldest = std::numeric_limits<double>::infinity();
    for (Shard& shard : shards_) {
      common::MutexLock lock(&shard.mu);
      for (const auto& [vehicle, trip] : shard.trips) {
        const double last = trip->last_update.load(kRelaxed);
        if (last < oldest) {
          oldest = last;
          victim = vehicle;
          observed = trip;
        }
      }
    }
    if (observed == nullptr) return false;
    Shard& shard = ShardOf(victim);
    std::shared_ptr<Trip> trip;
    {
      common::MutexLock lock(&shard.mu);
      const auto it = shard.trips.find(victim);
      if (it == shard.trips.end() || it->second != observed) continue;
      trip = std::move(it->second);
      shard.trips.erase(it);
    }
    FinishEvicted(victim, trip.get(), &shard);
    return true;
  }
}

size_t FleetMonitor::ActiveTrips() const {
  const int64_t n = active_trips_.load(kRelaxed);
  return n > 0 ? static_cast<size_t>(n) : 0;
}

FleetStats FleetMonitor::Stats() const {
  FleetStats stats;
  for (const Shard& shard : shards_) {
    const ShardCounters& c = shard.counters;
    stats.trips_started += c.trips_started.load(kRelaxed);
    stats.trips_finished += c.trips_finished.load(kRelaxed);
    stats.points_processed += c.points_processed.load(kRelaxed);
    stats.alerts_emitted += c.alerts_emitted.load(kRelaxed);
    stats.trips_evicted += c.trips_evicted.load(kRelaxed);
    stats.guard_duplicates += c.guard_duplicates.load(kRelaxed);
    stats.guard_out_of_order += c.guard_out_of_order.load(kRelaxed);
    stats.guard_clock_skew += c.guard_clock_skew.load(kRelaxed);
    stats.guard_dropout_gaps += c.guard_dropout_gaps.load(kRelaxed);
    stats.guard_teleports += c.guard_teleports.load(kRelaxed);
    stats.guard_invalid_edges += c.guard_invalid_edges.load(kRelaxed);
    stats.points_repaired += c.points_repaired.load(kRelaxed);
    stats.points_rejected += c.points_rejected.load(kRelaxed);
    stats.points_quarantine_dropped +=
        c.points_quarantine_dropped.load(kRelaxed);
    stats.trips_quarantined += c.trips_quarantined.load(kRelaxed);
    stats.trips_recovered += c.trips_recovered.load(kRelaxed);
    stats.quarantine_evictions += c.quarantine_evictions.load(kRelaxed);
  }
  if (ingest_ != nullptr) {
    stats.points_submitted = ingest_->PointsSubmitted();
    stats.points_shed = ingest_->PointsShed();
  }
  stats.alerts_delivered = delivery_ != nullptr ? delivery_->AlertsDelivered()
                                                : stats.alerts_emitted;
  return stats;
}

Result<double> FleetMonitor::TripHealth(int64_t vehicle_id) {
  Shard& shard = ShardOf(vehicle_id);
  const std::shared_ptr<Trip> trip = ResolveTrip(shard, vehicle_id);
  if (trip == nullptr) {
    return Status::NotFound("vehicle " + std::to_string(vehicle_id) +
                            " has no active trip");
  }
  common::MutexLock lock(&trip->mu);
  return guard_.HealthScore(trip->guard);
}

Result<bool> FleetMonitor::TripQuarantined(int64_t vehicle_id) {
  Shard& shard = ShardOf(vehicle_id);
  const std::shared_ptr<Trip> trip = ResolveTrip(shard, vehicle_id);
  if (trip == nullptr) {
    return Status::NotFound("vehicle " + std::to_string(vehicle_id) +
                            " has no active trip");
  }
  common::MutexLock lock(&trip->mu);
  return trip->guard.quarantined;
}

std::string FleetMonitor::DumpMetrics() const {
  const FleetStats s = Stats();
  std::string out;
  out.reserve(1024);
  const auto line = [&out](std::string_view name, int64_t value) {
    out.append(name);
    out.push_back(' ');
    out.append(std::to_string(value));
    out.push_back('\n');
  };
  line("fleet_trips_started", s.trips_started);
  line("fleet_trips_finished", s.trips_finished);
  line("fleet_trips_evicted", s.trips_evicted);
  line("fleet_trips_active", static_cast<int64_t>(ActiveTrips()));
  line("fleet_points_processed", s.points_processed);
  line("fleet_points_submitted", s.points_submitted);
  line("fleet_points_shed", s.points_shed);
  line("fleet_alerts_emitted", s.alerts_emitted);
  line("fleet_alerts_delivered", s.alerts_delivered);
  line("guard_duplicates", s.guard_duplicates);
  line("guard_out_of_order", s.guard_out_of_order);
  line("guard_clock_skew", s.guard_clock_skew);
  line("guard_dropout_gaps", s.guard_dropout_gaps);
  line("guard_teleports", s.guard_teleports);
  line("guard_invalid_edges", s.guard_invalid_edges);
  line("guard_points_repaired", s.points_repaired);
  line("guard_points_rejected", s.points_rejected);
  line("guard_points_quarantine_dropped", s.points_quarantine_dropped);
  line("guard_trips_quarantined", s.trips_quarantined);
  line("guard_trips_recovered", s.trips_recovered);
  line("guard_quarantine_evictions", s.quarantine_evictions);
  line("model_generation", static_cast<int64_t>(ModelGeneration()));
  return out;
}

std::vector<int64_t> FleetMonitor::TakeAlertLatencySamplesNs() {
  if (delivery_ == nullptr) return {};
  return delivery_->TakeLatencySamplesNs();
}

Status FleetMonitor::Snapshot(BinaryWriter* w, std::string_view user_meta) {
  const auto handle = CurrentHandle();
  const FleetStats stats = Stats();

  // Quiesce shard by shard: the trip list is copied under the shard lock
  // (map mutations pause for microseconds), then every trip serializes
  // under only its own lock — ingest for all other trips keeps flowing.
  std::vector<std::tuple<int64_t, double, std::string, std::string>> records;
  std::vector<std::pair<int64_t, std::shared_ptr<Trip>>> shard_trips;
  for (Shard& shard : shards_) {
    shard_trips.clear();
    {
      common::MutexLock lock(&shard.mu);
      shard_trips.reserve(shard.trips.size());
      for (const auto& [vehicle, trip] : shard.trips) {
        shard_trips.emplace_back(vehicle, trip);
      }
    }
    for (auto& [vehicle, trip] : shard_trips) {
      common::MutexLock lock(&trip->mu);
      if (trip->finished) continue;  // ended while we walked the shard
      // Migrate stragglers first so every record is primed against the
      // fingerprint stamped in the header.
      if (trip->handle->generation < handle->generation) {
        ReprimeLocked(trip.get(), handle);
      }
      if (trip->handle != handle) {
        return Status::FailedPrecondition(
            "model was hot-swapped while the snapshot was being taken; "
            "retry the snapshot");
      }
      BinaryWriter session;
      trip->session.ExportState(&session);
      BinaryWriter guard_state;
      trip->guard.ExportState(&guard_state);
      records.emplace_back(vehicle, trip->last_update.load(kRelaxed),
                           session.buffer(), guard_state.buffer());
    }
  }

  // Canonical record order: shard-map iteration order depends on insertion
  // history, so sort by vehicle id — snapshotting a restored fleet then
  // reproduces the original snapshot bit for bit.
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) {
              return std::get<0>(a) < std::get<0>(b);
            });

  // Assemble into a local writer and publish all-or-nothing: an aborted
  // snapshot (mid-swap above) must not leave a partial header in the
  // caller's buffer, which would corrupt a retry into the same writer.
  BinaryWriter out;
  out.WriteBytes(io::kFleetSnapshotMagic, 4);
  out.WriteU32(io::kFleetSnapshotVersion);
  out.WriteU64(handle->Fingerprint());
  out.WriteString(user_meta);
  out.WriteI64(stats.trips_started);
  out.WriteI64(stats.trips_finished);
  out.WriteI64(stats.points_processed);
  out.WriteI64(stats.alerts_emitted);
  out.WriteI64(stats.trips_evicted);
  out.WriteI64(stats.guard_duplicates);
  out.WriteI64(stats.guard_out_of_order);
  out.WriteI64(stats.guard_clock_skew);
  out.WriteI64(stats.guard_dropout_gaps);
  out.WriteI64(stats.guard_teleports);
  out.WriteI64(stats.guard_invalid_edges);
  out.WriteI64(stats.points_repaired);
  out.WriteI64(stats.points_rejected);
  out.WriteI64(stats.points_quarantine_dropped);
  out.WriteI64(stats.trips_quarantined);
  out.WriteI64(stats.trips_recovered);
  out.WriteI64(stats.quarantine_evictions);
  out.WriteU64(records.size());
  for (const auto& [vehicle, last_update, blob, guard_blob] : records) {
    out.WriteI64(vehicle);
    out.WriteF64(last_update);
    out.WriteString(blob);
    out.WriteString(guard_blob);
  }
  w->WriteBytes(out.buffer().data(), out.buffer().size());
  return Status::OK();
}

Status FleetMonitor::Restore(BinaryReader* r, RestoreInfo* info) {
  const auto handle = CurrentHandle();
  io::FleetSnapshotHeader header;
  RL4_RETURN_NOT_OK(io::ReadFleetSnapshotHeader(r, &header));
  if (header.model_fingerprint != handle->Fingerprint()) {
    return Status::FailedPrecondition(
        "snapshot was taken with a different model bundle (fingerprint " +
        std::to_string(header.model_fingerprint) + ", serving " +
        std::to_string(handle->Fingerprint()) +
        "); restoring live LSTM states against other weights would "
        "silently diverge");
  }
  std::string user_meta = std::move(header.user_meta);
  FleetStats stats;
  stats.trips_started = header.trips_started;
  stats.trips_finished = header.trips_finished;
  stats.points_processed = header.points_processed;
  stats.alerts_emitted = header.alerts_emitted;
  stats.trips_evicted = header.trips_evicted;
  stats.guard_duplicates = header.guard_duplicates;
  stats.guard_out_of_order = header.guard_out_of_order;
  stats.guard_clock_skew = header.guard_clock_skew;
  stats.guard_dropout_gaps = header.guard_dropout_gaps;
  stats.guard_teleports = header.guard_teleports;
  stats.guard_invalid_edges = header.guard_invalid_edges;
  stats.points_repaired = header.points_repaired;
  stats.points_rejected = header.points_rejected;
  stats.points_quarantine_dropped = header.points_quarantine_dropped;
  stats.trips_quarantined = header.trips_quarantined;
  stats.trips_recovered = header.trips_recovered;
  stats.quarantine_evictions = header.quarantine_evictions;
  // Counters are hostile input like everything else: a lying negative
  // value would poison Stats() and the conservation identity forever.
  if (stats.trips_started < 0 || stats.trips_finished < 0 ||
      stats.points_processed < 0 || stats.alerts_emitted < 0 ||
      stats.trips_evicted < 0 || stats.guard_duplicates < 0 ||
      stats.guard_out_of_order < 0 || stats.guard_clock_skew < 0 ||
      stats.guard_dropout_gaps < 0 || stats.guard_teleports < 0 ||
      stats.guard_invalid_edges < 0 || stats.points_repaired < 0 ||
      stats.points_rejected < 0 || stats.points_quarantine_dropped < 0 ||
      stats.trips_quarantined < 0 || stats.trips_recovered < 0 ||
      stats.quarantine_evictions < 0) {
    return Status::InvalidArgument(
        "snapshot service counters are negative (corrupt or forged header)");
  }

  uint64_t num_trips;
  RL4_RETURN_NOT_OK(io::ReadFleetSnapshotTripCount(r, &num_trips));

  // Two-phase restore: parse and validate every trip first, publish only
  // when the whole snapshot checked out — a corrupt record must not leave
  // a half-restored fleet behind.
  std::vector<std::shared_ptr<Trip>> parsed;
  std::vector<RestoredTrip> restored;
  std::unordered_set<int64_t> seen;
  parsed.reserve(num_trips);
  restored.reserve(num_trips);
  for (uint64_t i = 0; i < num_trips; ++i) {
    int64_t vehicle;
    double last_update;
    std::string blob;
    std::string guard_blob;
    RL4_RETURN_NOT_OK(r->ReadI64(&vehicle));
    RL4_RETURN_NOT_OK(r->ReadF64(&last_update));
    RL4_RETURN_NOT_OK(r->ReadString(&blob));
    RL4_RETURN_NOT_OK(r->ReadString(&guard_blob));
    if (!seen.insert(vehicle).second) {
      return Status::InvalidArgument(
          "snapshot lists vehicle " + std::to_string(vehicle) + " twice");
    }
    BinaryReader session_reader(std::move(blob));
    auto session = handle->model->StartSession({}, 0.0);
    RL4_RETURN_NOT_OK(session.ImportState(&session_reader));
    if (!session_reader.AtEnd()) {
      return Status::IOError("trailing bytes in trip session record");
    }
    if (session.finished()) {
      return Status::InvalidArgument(
          "snapshot contains an already-finished trip");
    }
    BinaryReader guard_reader(std::move(guard_blob));
    IngestGuard::State guard_state;
    RL4_RETURN_NOT_OK(guard_state.ImportState(
        &guard_reader, handle->model->network()->NumEdges()));
    if (!guard_reader.AtEnd()) {
      return Status::IOError("trailing bytes in trip guard record");
    }
    const traj::SdPair sd = session.sd();
    const double start_time = session.start_time();
    const size_t points_fed = session.labels().size();
    auto trip = std::make_shared<Trip>(std::move(session), sd, start_time,
                                       handle);
    trip->last_update.store(last_update, kRelaxed);
    {
      // Not yet published (this monitor is still empty), but the lock keeps
      // the GUARDED_BY contract analysis-clean and costs nothing here.
      common::MutexLock lock(&trip->mu);
      trip->guard = guard_state;
    }
    parsed.push_back(std::move(trip));
    restored.push_back(RestoredTrip{vehicle, sd, start_time, points_fed});
  }
  if (!r->AtEnd()) {
    return Status::IOError("trailing bytes after fleet snapshot payload");
  }
  for (Shard& shard : shards_) {
    common::MutexLock lock(&shard.mu);
    if (!shard.trips.empty()) {
      return Status::FailedPrecondition(
          "restore requires an empty monitor (fresh-process restore)");
    }
  }

  for (size_t i = 0; i < parsed.size(); ++i) {
    Shard& shard = ShardOf(restored[i].vehicle_id);
    common::MutexLock lock(&shard.mu);
    shard.trips.emplace(restored[i].vehicle_id, std::move(parsed[i]));
  }
  active_trips_.fetch_add(static_cast<int64_t>(parsed.size()), kRelaxed);
  // Resume the service counters where the snapshot left them (folded into
  // shard 0; Stats() aggregates), so conservation spans the restart. The
  // started count is re-derived from the conservation identity rather than
  // trusted: a snapshot taken under live ingest reads its counters and
  // walks its shards at slightly different instants, so the stored value
  // can be offset by in-flight starts — deriving it keeps
  // started == finished + evicted + active exact after every restore (and
  // is identical to the stored value for a quiesced snapshot).
  stats.trips_started = stats.trips_finished + stats.trips_evicted +
                        static_cast<int64_t>(parsed.size());
  ShardCounters& counters = shards_[0].counters;
  counters.trips_started.fetch_add(stats.trips_started, kRelaxed);
  counters.trips_finished.fetch_add(stats.trips_finished, kRelaxed);
  counters.points_processed.fetch_add(stats.points_processed, kRelaxed);
  counters.alerts_emitted.fetch_add(stats.alerts_emitted, kRelaxed);
  counters.trips_evicted.fetch_add(stats.trips_evicted, kRelaxed);
  counters.guard_duplicates.fetch_add(stats.guard_duplicates, kRelaxed);
  counters.guard_out_of_order.fetch_add(stats.guard_out_of_order, kRelaxed);
  counters.guard_clock_skew.fetch_add(stats.guard_clock_skew, kRelaxed);
  counters.guard_dropout_gaps.fetch_add(stats.guard_dropout_gaps, kRelaxed);
  counters.guard_teleports.fetch_add(stats.guard_teleports, kRelaxed);
  counters.guard_invalid_edges.fetch_add(stats.guard_invalid_edges, kRelaxed);
  counters.points_repaired.fetch_add(stats.points_repaired, kRelaxed);
  counters.points_rejected.fetch_add(stats.points_rejected, kRelaxed);
  counters.points_quarantine_dropped.fetch_add(
      stats.points_quarantine_dropped, kRelaxed);
  counters.trips_quarantined.fetch_add(stats.trips_quarantined, kRelaxed);
  counters.trips_recovered.fetch_add(stats.trips_recovered, kRelaxed);
  counters.quarantine_evictions.fetch_add(stats.quarantine_evictions,
                                          kRelaxed);

  if (info != nullptr) {
    info->user_meta = std::move(user_meta);
    info->trips = std::move(restored);
  }
  return Status::OK();
}

}  // namespace rl4oasd::serve
