// Fleet monitoring service: concurrent online detection over many vehicles.
//
// The paper's motivating scenario is a ride-hailing operator that "can
// immediately spot an abnormal driver when his/her trajectory starts to
// deviate from the normal route". A deployment therefore runs one detection
// session per *active trip*, fed by an interleaved stream of GPS-derived
// road segments from the whole fleet. FleetMonitor owns that bookkeeping:
// trip lifecycle, thread-safe ingest (vehicle-sharded locks), stale-trip
// eviction, alert delivery, and service counters.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/rl4oasd.h"
#include "traj/types.h"

namespace rl4oasd::serve {

/// An anomalous subtrajectory alert for one vehicle. Emitted as soon as the
/// detector closes an anomalous run (paper Algorithm 1, line 9: "return the
/// subtrajectory when it is formed") and again at trip end for a run still
/// open at the destination.
struct Alert {
  int64_t vehicle_id = 0;
  traj::SdPair sd;
  /// Segment-index range of the anomalous run within the trip so far.
  traj::Subtrajectory range;
  /// Timestamp of the point that closed the run.
  double timestamp = 0.0;
  /// Number of segments fed when the alert fired (detection latency metric:
  /// position - range.end counts segments between formation and alerting).
  size_t position = 0;
};

/// Alert delivery interface. Callbacks are invoked under the shard lock of
/// the reporting vehicle — implementations must not call back into the
/// monitor and should hand off to a queue if processing is slow.
class AlertSink {
 public:
  virtual ~AlertSink() = default;
  virtual void OnAlert(const Alert& alert) = 0;
  /// Called when a trip completes, with the final (post-DL) labels.
  virtual void OnTripEnd(int64_t vehicle_id,
                         const std::vector<uint8_t>& final_labels) {
    (void)vehicle_id;
    (void)final_labels;
  }
};

/// Thread-safe in-memory sink (tests, examples, tooling).
class CollectingSink : public AlertSink {
 public:
  void OnAlert(const Alert& alert) override {
    std::lock_guard<std::mutex> lock(mu_);
    alerts_.push_back(alert);
  }
  void OnTripEnd(int64_t vehicle_id,
                 const std::vector<uint8_t>& final_labels) override {
    std::lock_guard<std::mutex> lock(mu_);
    finished_.emplace_back(vehicle_id, final_labels);
  }

  std::vector<Alert> TakeAlerts() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(alerts_);
  }
  size_t NumAlerts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return alerts_.size();
  }
  size_t NumFinished() const {
    std::lock_guard<std::mutex> lock(mu_);
    return finished_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Alert> alerts_;
  std::vector<std::pair<int64_t, std::vector<uint8_t>>> finished_;
};

struct FleetConfig {
  /// Hard cap on simultaneously active trips; StartTrip beyond it evicts the
  /// stalest trip first.
  size_t max_active_trips = 100000;
  /// Trips with no Feed for this long are evictable by EvictStale.
  double trip_timeout_s = 2 * 3600.0;
  /// Number of lock shards (power of two). One shard per ingest thread is
  /// plenty; contention only occurs between vehicles hashing to one shard.
  size_t num_shards = 16;
};

/// Service counters (monotonic since construction).
struct FleetStats {
  int64_t trips_started = 0;
  int64_t trips_finished = 0;
  int64_t points_processed = 0;
  int64_t alerts_emitted = 0;
  int64_t trips_evicted = 0;
};

/// Concurrent multi-trip online detector over one trained model.
class FleetMonitor {
 public:
  /// `model` must outlive the monitor and be fully trained; `sink` may be
  /// null (alerts are then only counted).
  FleetMonitor(const core::Rl4Oasd* model, FleetConfig config,
               AlertSink* sink);

  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  /// Begins a trip for a vehicle. The SD pair is known at trip start in the
  /// ride-hailing setting. Fails if the vehicle already has an active trip.
  Status StartTrip(int64_t vehicle_id, traj::SdPair sd, double start_time);

  /// Feeds the next road segment of a vehicle's active trip. Returns the
  /// (pre-delayed-labeling) label of the segment, emitting alerts to the
  /// sink when an anomalous run closes.
  Result<int> Feed(int64_t vehicle_id, traj::EdgeId edge, double timestamp);

  /// Completes a trip, returning the final post-processed labels. An
  /// anomalous run still open at the destination is alerted before return.
  Result<std::vector<uint8_t>> EndTrip(int64_t vehicle_id);

  /// Drops trips whose last update is older than `now - trip_timeout_s`
  /// (vehicles that vanished mid-trip). Returns the number evicted.
  size_t EvictStale(double now);

  size_t ActiveTrips() const;
  FleetStats Stats() const;

 private:
  struct Trip {
    core::OnlineDetector::Session session;
    traj::SdPair sd;
    double last_update = 0.0;
    size_t points = 0;
    /// Number of anomalous runs already alerted (so a closing run is
    /// reported exactly once).
    size_t alerted_runs = 0;
    int prev_label = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<int64_t, Trip> trips;
  };

  Shard& ShardOf(int64_t vehicle_id) {
    return shards_[static_cast<uint64_t>(vehicle_id) & (shards_.size() - 1)];
  }
  const Shard& ShardOf(int64_t vehicle_id) const {
    return shards_[static_cast<uint64_t>(vehicle_id) & (shards_.size() - 1)];
  }

  /// Emits alerts for every closed-and-unreported anomalous run. Caller
  /// holds the shard lock.
  void EmitClosedRuns(int64_t vehicle_id, Trip* trip, double timestamp,
                      bool include_open_tail);

  /// Evicts the least-recently-updated trip across all shards (requires no
  /// shard lock held by the caller).
  void EvictStalest();

  const core::Rl4Oasd* model_;
  FleetConfig config_;
  AlertSink* sink_;
  std::vector<Shard> shards_;

  mutable std::mutex stats_mu_;
  FleetStats stats_;
};

}  // namespace rl4oasd::serve
