// Fleet monitoring service: concurrent online detection over many vehicles.
//
// The paper's motivating scenario is a ride-hailing operator that "can
// immediately spot an abnormal driver when his/her trajectory starts to
// deviate from the normal route". A deployment therefore runs one detection
// session per *active trip*, fed by an interleaved stream of GPS-derived
// road segments from the whole fleet. FleetMonitor owns that bookkeeping:
// trip lifecycle, thread-safe ingest (synchronous Feed/FeedBatch and the
// self-batching Submit pipeline of serve/ingest_queue.h), stale-trip
// eviction, alert delivery (inline or via the bounded async queue of
// serve/delivery_queue.h), and service counters.
//
// Locking is two-level so throughput scales with cores:
//   * a per-shard mutex guards only the vehicle -> trip map (insert, lookup,
//     erase — microseconds), and
//   * a per-trip mutex guards the detection session itself, so the LSTM
//     forward + policy step and sink callbacks run outside the shard lock
//     and two vehicles hashing to one shard never serialize on model work.
// Service counters are per-shard relaxed atomics aggregated by Stats(), and
// the active-trip count is a single approximate atomic, so the per-point
// path takes no global lock at all.
//
// These contracts are machine-checked, not just documented: every guarded
// member carries an RL4OASD_GUARDED_BY annotation verified by Clang's
// -Wthread-safety (the clang CI job builds with it as -Werror), and in
// debug builds the common::Mutex rank checker asserts the
// shard -> trip -> model acquisition hierarchy — including FeedBatch's
// address-ordered same-rank wave locking — at runtime. See
// docs/STATIC_ANALYSIS.md and the lock-hierarchy table in
// docs/ARCHITECTURE.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>  // oasd-lint: allow(raw-mutex) — std::once_flag only (fingerprint memoization)
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/binary.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/rl4oasd.h"
#include "serve/ingest_guard.h"
#include "traj/types.h"

namespace rl4oasd::serve {

class AlertDeliveryQueue;  // serve/delivery_queue.h
class IngestPipeline;      // serve/ingest_queue.h

/// An anomalous subtrajectory alert for one vehicle. Emitted as soon as the
/// detector finalizes an anomalous run — Delayed Labeling scans D more
/// segments past a boundary, so a run is reported once no future segment
/// can extend or merge it (at most D+1 segments after its last anomalous
/// point) — and at trip end or eviction for a run still open. Each run is
/// reported exactly once: run identity is maintained incrementally by the
/// session, so a DL merge can never re-report or skip a run.
struct Alert {
  int64_t vehicle_id = 0;
  traj::SdPair sd;
  /// Start time of the trip the alert belongs to. Together with vehicle_id
  /// this identifies the trip: delivery happens outside the shard lock, so
  /// an eviction notice for a vanished trip can arrive after the same
  /// vehicle already started a new one (see AlertSink).
  double trip_start_time = 0.0;
  /// Segment-index range of the anomalous run within the trip so far.
  traj::Subtrajectory range;
  /// Timestamp of the point that finalized the run.
  double timestamp = 0.0;
  /// Number of segments fed when the alert fired (detection latency metric:
  /// position - range.end counts segments between formation and alerting,
  /// including the D-segment Delayed-Labeling confirmation window).
  size_t position = 0;
};

/// Alert delivery interface. Delivery has two modes:
///
///   * Synchronous (default, FleetConfig::async_alerts == false): callbacks
///     are invoked under the reporting trip's lock — never under a shard
///     lock — and during a FeedBatch wave the other wave trips' locks (up
///     to FleetConfig::micro_batch of them) are also held, so a slow sink
///     stalls the whole wave, not just one trip.
///
///   * Asynchronous (FleetConfig::async_alerts == true): every callback is
///     captured by value as a DeliveryEvent, sequence-numbered *under the
///     reporting trip's lock*, and enqueued on a bounded delivery queue
///     (serve/delivery_queue.h); a dedicated drainer thread invokes the
///     sink in sequence order with **no monitor lock held**, so a slow sink
///     backs up only the queue — ingest keeps flowing until the queue
///     itself fills, at which point enqueueing blocks (bounded memory,
///     never a dropped event). Use FleetMonitor::Quiesce() to wait until
///     everything emitted so far has been delivered; the monitor's
///     destructor delivers the backlog before returning.
///
/// In both modes, implementations must not call back into the monitor: the
/// synchronous path would re-enter while holding trip locks, and an async
/// sink that feeds the monitor can deadlock against a full delivery queue
/// it is itself responsible for draining.
///
/// Delivery ordering (both modes): within one trip, callbacks arrive in
/// order — synchronously because they run under the trip's lock, and
/// asynchronously because events are sequenced under that same lock and the
/// drainer preserves sequence order. Across trips of the *same vehicle*
/// there is one caveat — a trip is removed from the routing table before
/// its final callbacks are delivered, so when an evicted vehicle
/// immediately starts a new trip, the old trip's OnAlert/OnTripEvicted can
/// interleave with the new trip's callbacks. Sinks that key state by
/// vehicle must use (vehicle_id, trip_start_time) as the trip identity.
class AlertSink {
 public:
  virtual ~AlertSink() = default;
  virtual void OnAlert(const Alert& alert) = 0;
  /// Called when a trip completes, with the final (post-DL) labels.
  virtual void OnTripEnd(int64_t vehicle_id,
                         const std::vector<uint8_t>& final_labels) {
    (void)vehicle_id;
    (void)final_labels;
  }
  /// Called when a trip is evicted (the vehicle vanished mid-trip, or the
  /// active-trip cap forced the stalest trip out) with the labels seen so
  /// far. An anomalous run still open at eviction is OnAlert-ed immediately
  /// before this call — eviction never silently drops an anomaly.
  virtual void OnTripEvicted(int64_t vehicle_id, double trip_start_time,
                             const std::vector<uint8_t>& labels_so_far) {
    (void)vehicle_id;
    (void)trip_start_time;
    (void)labels_so_far;
  }
  /// Called when a trip completes normally (EndTrip), immediately after
  /// OnTripEnd under the same trip lock, with the trip's full edge sequence
  /// alongside the final post-Delayed-Labeling labels. This is the label
  /// harvesting surface for online learning (serve::DriftAdapter): each
  /// finished trip is delivered exactly once, as a ready-made training
  /// sample. Evicted trips are *not* finalized — their labels are partial —
  /// so they fire OnTripEvicted only.
  virtual void OnTripFinalized(int64_t vehicle_id, traj::SdPair sd,
                               double start_time,
                               const std::vector<traj::EdgeId>& edges,
                               const std::vector<uint8_t>& final_labels) {
    (void)vehicle_id;
    (void)sd;
    (void)start_time;
    (void)edges;
    (void)final_labels;
  }
  /// Called when a trip exceeds its malformed-point budget and is
  /// quarantined (the detector stops consuming its points — see
  /// serve/ingest_guard.h for the lifecycle). Fires exactly once per
  /// quarantine episode, with the trip's lifetime malformed-point count at
  /// that moment. The trip later either recovers silently (points flow
  /// again) or is evicted through the usual OnTripEvicted path.
  virtual void OnTripQuarantined(int64_t vehicle_id, double trip_start_time,
                                 int64_t malformed_points) {
    (void)vehicle_id;
    (void)trip_start_time;
    (void)malformed_points;
  }
};

/// Thread-safe in-memory sink (tests, examples, tooling). Callbacks arrive
/// under trip locks (rank kFleetTrip), so mu_ sits at the default leaf rank.
class CollectingSink : public AlertSink {
 public:
  void OnAlert(const Alert& alert) override {
    common::MutexLock lock(&mu_);
    alerts_.push_back(alert);
  }
  void OnTripEnd(int64_t vehicle_id,
                 const std::vector<uint8_t>& final_labels) override {
    common::MutexLock lock(&mu_);
    finished_.emplace_back(vehicle_id, final_labels);
  }
  void OnTripEvicted(int64_t vehicle_id, double /*trip_start_time*/,
                     const std::vector<uint8_t>& labels_so_far) override {
    common::MutexLock lock(&mu_);
    evicted_.emplace_back(vehicle_id, labels_so_far);
  }

  std::vector<Alert> TakeAlerts() {
    common::MutexLock lock(&mu_);
    return std::move(alerts_);
  }
  size_t NumAlerts() const {
    common::MutexLock lock(&mu_);
    return alerts_.size();
  }
  size_t NumFinished() const {
    common::MutexLock lock(&mu_);
    return finished_.size();
  }
  size_t NumEvicted() const {
    common::MutexLock lock(&mu_);
    return evicted_.size();
  }
  std::vector<std::pair<int64_t, std::vector<uint8_t>>> TakeEvicted() {
    common::MutexLock lock(&mu_);
    return std::move(evicted_);
  }
  void OnTripQuarantined(int64_t vehicle_id, double trip_start_time,
                         int64_t malformed_points) override {
    common::MutexLock lock(&mu_);
    quarantined_.emplace_back(vehicle_id, trip_start_time);
    (void)malformed_points;
  }
  size_t NumQuarantined() const {
    common::MutexLock lock(&mu_);
    return quarantined_.size();
  }
  std::vector<std::pair<int64_t, double>> TakeQuarantined() {
    common::MutexLock lock(&mu_);
    return std::move(quarantined_);
  }

 private:
  mutable common::Mutex mu_;
  std::vector<Alert> alerts_ RL4OASD_GUARDED_BY(mu_);
  std::vector<std::pair<int64_t, std::vector<uint8_t>>> finished_
      RL4OASD_GUARDED_BY(mu_);
  std::vector<std::pair<int64_t, std::vector<uint8_t>>> evicted_
      RL4OASD_GUARDED_BY(mu_);
  std::vector<std::pair<int64_t, double>> quarantined_
      RL4OASD_GUARDED_BY(mu_);
};

/// One GPS-derived road segment of one vehicle, for batched ingest.
struct FleetPoint {
  int64_t vehicle_id = 0;
  traj::EdgeId edge = 0;
  double timestamp = 0.0;
};

/// What Submit does when a staging lane is full (see ingest_queue.h).
enum class OverloadPolicy {
  /// Wait for space: lossless, backpressure propagates to the submitter.
  kBlock,
  /// Drop the point and count it in FleetStats::points_shed: bounded
  /// latency, explicit loss. End-of-trip markers are never shed.
  kShed,
};

struct FleetConfig {
  /// Cap on simultaneously active trips. A StartTrip that admits a trip
  /// beyond it evicts the stalest trip. Slot reservation is atomic with
  /// admission (counted under the shard lock at insert), so concurrent
  /// admissions read distinct reservation indices and every over-cap
  /// admission pays for exactly one eviction: the count may transiently
  /// exceed the cap by the number of in-flight StartTrip calls, but in
  /// quiescence active <= max_active_trips holds exactly. A StartTrip that
  /// fails (duplicate vehicle) never touches the count and never evicts.
  size_t max_active_trips = 100000;
  /// Trips with no Feed for this long are evictable by EvictStale.
  double trip_timeout_s = 2 * 3600.0;
  /// Number of lock shards (power of two). Shard locks are held only for
  /// map mutation; model work runs under per-trip locks, so this bounds
  /// lookup contention, not detection parallelism.
  size_t num_shards = 16;
  /// Maximum number of trips whose model steps FeedBatch fuses into one
  /// batched forward (the micro-batch width). 1 disables fusion (every
  /// point takes the scalar streaming path). Larger widths amortize the
  /// RSRNet/ASDNet matmuls across trips but hold that many trip locks for
  /// the duration of one fused step.
  size_t micro_batch = 128;
  /// Number of ingest worker threads behind Submit/SubmitBatch. 0 disables
  /// the async ingest pipeline entirely (Submit fails; Feed/FeedBatch are
  /// the only ingest paths). Clamped to num_shards; shard s is served by
  /// lane s % ingest_workers, which preserves per-vehicle order.
  size_t ingest_workers = 0;
  /// Bound on staged points per ingest lane; overflow behavior is
  /// overload_policy. Sized in points: ~24 bytes each.
  size_t ingest_queue_capacity = 8192;
  /// Adaptive flush age for partial ingest waves, denominated in *points*
  /// (later submissions to the same lane), never wall time — the repo's
  /// determinism contract bans clock-driven control flow. 0 (default):
  /// flush any non-empty lane as soon as its worker is free (lowest
  /// latency; waves still widen under load because they accumulate behind
  /// the previous wave). N > 0: hold a sub-micro_batch wave until its
  /// oldest point has seen N later submissions, trading latency for wider
  /// fused batches under sparse arrivals. A tail younger than N waits for
  /// Quiesce()/destruction.
  size_t ingest_flush_age_points = 0;
  /// Full-lane behavior for Submit/SubmitBatch.
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Deliver AlertSink callbacks asynchronously (see the AlertSink contract
  /// above). Off by default: the synchronous path is the deterministic
  /// reference, and existing callers observe sink effects immediately on
  /// return from Feed/EndTrip.
  bool async_alerts = false;
  /// Bound on undelivered async sink events; enqueueing blocks when full
  /// (events are never dropped — see AlertSink).
  size_t alert_queue_capacity = 16384;
  /// The ingest input contract: per-anomaly-class policies, thresholds, and
  /// the quarantine budget (serve/ingest_guard.h). The defaults are
  /// observe-only — detection counters tick, nothing is dropped or
  /// repaired, quarantine is off — except that trip staleness is always
  /// routed through the guard's monotone per-trip clock, so a skewed or
  /// negative client timestamp can never mark a live trip stalest.
  IngestGuardConfig guard;
};

/// Service counters (monotonic since construction).
struct FleetStats {
  int64_t trips_started = 0;
  int64_t trips_finished = 0;
  int64_t points_processed = 0;
  int64_t alerts_emitted = 0;
  int64_t trips_evicted = 0;
  /// Submit-path points accepted into a staging lane (0 when
  /// ingest_workers == 0; Feed/FeedBatch points count only in
  /// points_processed). After Quiesce, points_submitted ==
  /// points_processed' + skipped, where points_processed' is the
  /// Submit-path share and skipped are points whose vehicle had no trip.
  int64_t points_submitted = 0;
  /// Points dropped by OverloadPolicy::kShed (the overload signal; always 0
  /// under kBlock).
  int64_t points_shed = 0;
  /// OnAlert callbacks completed by the async delivery worker. Equals
  /// alerts_emitted once Quiesce returns; lags it by the queue backlog
  /// under load. With async_alerts off, mirrors alerts_emitted.
  int64_t alerts_delivered = 0;

  // -- Ingest-guard counters (serve/ingest_guard.h) ------------------------
  //
  // Per-class detections tick under every policy (kPassThrough included).
  // Disposition counters partition the points the guard removed:
  //   points offered to Feed/FeedBatch ==
  //       points_processed + points_rejected + points_quarantine_dropped
  // for points whose vehicle had an active trip.
  int64_t guard_duplicates = 0;
  int64_t guard_out_of_order = 0;
  int64_t guard_clock_skew = 0;
  int64_t guard_dropout_gaps = 0;
  int64_t guard_teleports = 0;
  int64_t guard_invalid_edges = 0;
  /// Points accepted with a repaired (clamped) timestamp.
  int64_t points_repaired = 0;
  /// Points dropped by a kReject/kRepair policy outside quarantine.
  int64_t points_rejected = 0;
  /// Points dropped because their trip was quarantined (including the
  /// tipping point).
  int64_t points_quarantine_dropped = 0;
  /// Quarantine episodes entered / recovered from; evictions forced by the
  /// quarantine point budget (a subset of trips_evicted).
  int64_t trips_quarantined = 0;
  int64_t trips_recovered = 0;
  int64_t quarantine_evictions = 0;
};

/// Concurrent multi-trip online detector over one trained model. The model
/// can be hot-swapped while serving (SwapModel), and the whole live state —
/// every in-flight trip's session plus the service counters — can be
/// snapshotted to a durable file and restored in a fresh process
/// (Snapshot/Restore) with a bit-identical remaining alert stream.
class FleetMonitor {
 public:
  /// Non-owning: `model` must outlive the monitor (and every model a later
  /// SwapModel retires must outlive the trips still pinned to it). `sink`
  /// may be null (alerts are then only counted).
  FleetMonitor(const core::Rl4Oasd* model, FleetConfig config,
               AlertSink* sink);

  /// Owning variant: the monitor shares ownership of the model, which is
  /// what SwapModel's retire-when-last-trip-releases semantics want.
  FleetMonitor(std::shared_ptr<const core::Rl4Oasd> model, FleetConfig config,
               AlertSink* sink);

  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  /// Stops the ingest workers (after they drain every staged point) and
  /// delivers any queued async sink events, in that order.
  ~FleetMonitor();

  /// Begins a trip for a vehicle. The SD pair is known at trip start in the
  /// ride-hailing setting. Fails if the vehicle already has an active trip.
  Status StartTrip(int64_t vehicle_id, traj::SdPair sd, double start_time);

  /// Feeds the next road segment of a vehicle's active trip. Returns the
  /// (pre-delayed-labeling) label of the segment, emitting alerts to the
  /// sink when an anomalous run becomes final.
  Result<int> Feed(int64_t vehicle_id, traj::EdgeId edge, double timestamp);

  /// Batched ingest with micro-batching: resolves every point's trip with
  /// one shard-lock acquisition per shard, then advances the trips in
  /// *waves* — one point per trip per wave, with the model steps of up to
  /// `micro_batch` trips fused into one batched forward
  /// (OnlineDetector::FeedBatch), so the recurrent gate matmuls of the
  /// whole wave run as GEMMs instead of per-trip matvecs. Per-trip results
  /// (labels, alerts, run boundaries, counters) are identical to feeding
  /// each point through Feed; a vehicle's points keep their relative order
  /// (successive points of one vehicle land in successive waves). Points
  /// without an active trip are skipped; points whose trip ends mid-batch
  /// fall back to Feed, which re-resolves (delivering to the vehicle's next
  /// trip if one already started). Returns the number of points fed.
  ///
  /// A wave locks all its trips for the duration of the fused step, in a
  /// globally consistent order (Trip address), so concurrent FeedBatch
  /// calls cannot deadlock; sink callbacks during a wave therefore run
  /// with other trips' locks also held and must not call back into the
  /// monitor (already the AlertSink contract).
  size_t FeedBatch(std::span<const FleetPoint> points);

  /// Completes a trip, returning the final post-processed labels. Runs not
  /// yet alerted (including one still open at the destination) are alerted
  /// before return.
  Result<std::vector<uint8_t>> EndTrip(int64_t vehicle_id);

  // -- Asynchronous ingest (requires FleetConfig::ingest_workers > 0) ------
  //
  // Submit* stage work on bounded per-shard lanes and return; worker
  // threads assemble the staged points into FeedBatch waves adaptively (see
  // serve/ingest_queue.h for the width/age flush policy and the ordering
  // guarantees). Feed/FeedBatch above remain the synchronous reference
  // path: after Quiesce(), a Submit-driven run produces the identical
  // per-vehicle label/alert/trip-end sequences.

  /// Stages one point for the vehicle's active trip. Non-blocking except
  /// for backpressure: under OverloadPolicy::kBlock a full lane makes it
  /// wait for space; under kShed a full lane drops the point, counts it in
  /// points_shed, and returns ResourceExhausted. FailedPrecondition when
  /// the pipeline is disabled (ingest_workers == 0).
  Status Submit(const FleetPoint& point);

  /// Stages a batch (split across lanes by vehicle; per-vehicle order
  /// preserved). Returns the number of points accepted — equal to
  /// points.size() under kBlock, possibly fewer under kShed. Returns 0 if
  /// the pipeline is disabled.
  size_t SubmitBatch(std::span<const FleetPoint> points);

  /// Stages an end-of-trip marker behind everything the vehicle has
  /// submitted so far; the lane worker calls EndTrip once the points ahead
  /// of it are fed (final labels go to the sink, not returned). Never shed.
  /// FailedPrecondition when the pipeline is disabled.
  Status SubmitEndTrip(int64_t vehicle_id);

  /// Drains the pipeline: blocks until every staged point/end marker has
  /// been fed AND every async sink event emitted by that work has been
  /// delivered. After Quiesce, Stats() and sink contents are exact (the
  /// conservation identity holds) and a Submit-driven run is comparable
  /// point-for-point with the synchronous reference. No-op when both
  /// features are off.
  void Quiesce();

  /// Drops trips whose last update is older than `now - trip_timeout_s`
  /// (vehicles that vanished mid-trip). A still-open anomalous run is
  /// alerted and the sink's OnTripEvicted hook fires for every dropped
  /// trip. Returns the number evicted.
  size_t EvictStale(double now);

  /// Active-trip count, maintained as an O(1) approximate counter: exact in
  /// quiescence, momentarily off by in-flight starts/ends under concurrency.
  size_t ActiveTrips() const;
  FleetStats Stats() const;

  /// Input health of a vehicle's active trip in [0, 1]: 1 with an empty
  /// strike bucket, 0 when quarantined (IngestGuard::HealthScore). NotFound
  /// when the vehicle has no active trip.
  Result<double> TripHealth(int64_t vehicle_id);

  /// True when the vehicle's active trip is currently quarantined.
  Result<bool> TripQuarantined(int64_t vehicle_id);

  /// Plain-text metrics dump: every FleetStats counter plus the active-trip
  /// gauge and model generation, one `name value` line each, sorted stable.
  /// The serving-side metrics endpoint (oasd_simulate prints it in its
  /// end-of-run summary; DriftAdapter::DumpMetrics appends the drift loop).
  std::string DumpMetrics() const;

  /// Drains the async delivery queue's enqueue→delivery latency samples
  /// (nanoseconds, most recent window; reporting-only — see
  /// delivery_queue.h). Empty when async_alerts is off.
  std::vector<int64_t> TakeAlertLatencySamplesNs();

  /// Atomically hot-reloads a new model bundle under concurrent ingest and
  /// returns the retired model. New trips start on the new model
  /// immediately; each in-flight trip migrates lazily, under its own trip
  /// lock, the next time a point reaches it: its hidden state is re-primed
  /// deterministically by replaying the trip's edge history through the new
  /// RSRNet, while the label/run/RNG bookkeeping carries over verbatim — so
  /// no alert is lost or duplicated across the swap
  /// (core::OnlineDetector::ReprimeSession). The old model is retired via
  /// shared_ptr handoff: it is destroyed once the last trip still pinned to
  /// it migrates or finishes (immediately, for the returned handle's last
  /// owner). The new model must serve the same road network; in-flight
  /// trips keep their original Delayed-Labeling window, so swaps assume an
  /// unchanged detector config (the concept-drift refresh case).
  ///
  /// Fine-tuned refreshes come in as *separate instances with different
  /// bytes* — that contract is enforced: a handle whose io::ModelFingerprint
  /// equals the current one is rejected as a no-op (the incoming model is
  /// returned unchanged, the generation does not advance, and no trip pays a
  /// pointless re-prime). A degenerate self-swap logs a warning; it is a
  /// caller bug, not a served state change.
  ///
  /// A std::unique_ptr<core::Rl4Oasd> converts implicitly — pass a freshly
  /// fine-tuned model straight in.
  std::shared_ptr<const core::Rl4Oasd> SwapModel(
      std::shared_ptr<const core::Rl4Oasd> model);

  /// The model currently serving new points (shared ownership; the pointer
  /// outlives a concurrent SwapModel).
  std::shared_ptr<const core::Rl4Oasd> model() const;

  /// Monotonic model generation: 1 for the construction model, +1 per
  /// SwapModel. Exposed for tests and observability.
  uint64_t ModelGeneration() const;

  /// Serializes the full live state — header (format version, the current
  /// model's io::ModelFingerprint, `user_meta`), service counters, and
  /// every in-flight trip's session — into `w` (io::fleet_snapshot.h owns
  /// the format; append to a file with BinaryWriter::WriteToFile, which
  /// adds the CRC32 footer). Shard by shard, the trip map is copied under
  /// the shard lock and each trip is then serialized under its own trip
  /// lock, so ingest keeps flowing for every other trip while a snapshot is
  /// taken; a trip pinned to an older model is migrated to the current one
  /// first, so the whole snapshot is stamped by one fingerprint.
  ///
  /// The restore-equivalence contract: snapshot at any point of a quiesced
  /// monitor (or any per-trip feed boundary), Restore into a fresh monitor
  /// over a model with the same fingerprint, and the remaining
  /// alert/trip-end/eviction stream is bit-identical to the uninterrupted
  /// run. Under live ingest each trip record is internally consistent (it
  /// serializes at a feed boundary), but the counters and different trips
  /// may be offset by in-flight points.
  Status Snapshot(BinaryWriter* w, std::string_view user_meta = {});

  /// One restored trip, reported so replay drivers (oasd_simulate
  /// --resume-from) can rebuild their cursors.
  struct RestoredTrip {
    int64_t vehicle_id = 0;
    traj::SdPair sd;
    double start_time = 0.0;
    size_t points_fed = 0;
  };
  struct RestoreInfo {
    std::string user_meta;
    std::vector<RestoredTrip> trips;
  };

  /// Restores a snapshot written by Snapshot into this monitor, which must
  /// be empty (fresh-process restore) and must serve a model whose
  /// fingerprint equals the snapshot's stamp — a mismatch, a bad magic, an
  /// unknown format version, or any corrupt/lying field returns a
  /// descriptive error without crashing, and a failed restore leaves the
  /// monitor empty. Service counters resume from their snapshot values so
  /// conservation (started == finished + evicted + active) spans the
  /// restart. Not thread-safe against concurrent ingest (call before
  /// serving starts).
  Status Restore(BinaryReader* r, RestoreInfo* info = nullptr);

 private:
  /// A model plus its swap bookkeeping. Trips pin the handle they were last
  /// primed against; the monitor holds the current one. Logically immutable
  /// after construction, so readers only need the pointer; the fingerprint
  /// is computed lazily (it serializes the whole model, which monitors that
  /// never snapshot should not pay for) and memoized thread-safely.
  struct ModelHandle {
    std::shared_ptr<const core::Rl4Oasd> model;
    uint64_t generation = 0;

    /// io::ModelFingerprint of `model`, computed on first use.
    uint64_t Fingerprint() const;

   private:
    mutable std::once_flag fingerprint_once_;
    mutable uint64_t fingerprint_ = 0;
  };

  struct Trip {
    Trip(core::OnlineDetector::Session s, traj::SdPair sd_in, double t0,
         std::shared_ptr<const ModelHandle> h)
        : session(std::move(s)),
          handle(std::move(h)),
          sd(sd_in),
          start_time(t0),
          last_update(t0) {
      guard.mono_ts = t0;  // the monotone clock seeds from trip start
    }

    /// Guards session, handle, and finished. Rank kFleetTrip: multiple trip
    /// locks are held together only by FeedBatch waves, in ascending
    /// address order (what the debug checker's same-rank rule asserts).
    common::Mutex mu{common::lockrank::kFleetTrip};
    core::OnlineDetector::Session session RL4OASD_GUARDED_BY(mu);
    /// The model the session is currently primed against. Lags the
    /// monitor's current handle until the next point reaches this trip
    /// (lazy migration); keeps the retired model alive until then.
    std::shared_ptr<const ModelHandle> handle RL4OASD_GUARDED_BY(mu);
    const traj::SdPair sd;
    const double start_time;
    /// Atomic so eviction scans can read it without the trip lock.
    /// Relaxed ordering is deliberate: readers (EvictStale/EvictStalest)
    /// only rank staleness, so a stale value merely delays or spares one
    /// eviction — it never corrupts state.
    std::atomic<double> last_update;
    /// Set (under mu) by whichever caller removed the trip from its shard
    /// map — EndTrip or an eviction. A Feed that resolved the trip pointer
    /// before removal observes it and re-resolves from the map instead of
    /// feeding a dead session (delivering the point to the vehicle's next
    /// trip if one already started, else reporting NotFound).
    bool finished RL4OASD_GUARDED_BY(mu) = false;
    /// Ingest-guard validator state (monotone clock, position, strike
    /// bucket, quarantine lifecycle). Serialized with the session into
    /// fleet snapshots.
    IngestGuard::State guard RL4OASD_GUARDED_BY(mu);
  };

  /// Monotonic service counters, bumped with relaxed ordering. Relaxed is
  /// deliberate (audited): each counter is independent — nothing reads two
  /// of them transactionally — and Stats() only needs per-counter totals,
  /// which the quiesce/join edge preceding any exact assertion already
  /// orders. Per-shard so concurrent ingest never contends on one line.
  struct ShardCounters {
    std::atomic<int64_t> trips_started{0};
    std::atomic<int64_t> trips_finished{0};
    std::atomic<int64_t> points_processed{0};
    std::atomic<int64_t> alerts_emitted{0};
    std::atomic<int64_t> trips_evicted{0};
    // Ingest-guard counters (see FleetStats for semantics).
    std::atomic<int64_t> guard_duplicates{0};
    std::atomic<int64_t> guard_out_of_order{0};
    std::atomic<int64_t> guard_clock_skew{0};
    std::atomic<int64_t> guard_dropout_gaps{0};
    std::atomic<int64_t> guard_teleports{0};
    std::atomic<int64_t> guard_invalid_edges{0};
    std::atomic<int64_t> points_repaired{0};
    std::atomic<int64_t> points_rejected{0};
    std::atomic<int64_t> points_quarantine_dropped{0};
    std::atomic<int64_t> trips_quarantined{0};
    std::atomic<int64_t> trips_recovered{0};
    std::atomic<int64_t> quarantine_evictions{0};
  };

  struct alignas(64) Shard {
    /// Guards `trips` (the map itself, never the Trips behind the
    /// pointers). Held only for insert/lookup/erase — rank kFleetShard, the
    /// bottom of the hierarchy, so nothing else may be acquired under it.
    mutable common::Mutex mu{common::lockrank::kFleetShard};
    std::unordered_map<int64_t, std::shared_ptr<Trip>> trips
        RL4OASD_GUARDED_BY(mu);
    ShardCounters counters;
  };

  size_t ShardIndexOf(int64_t vehicle_id) const {
    return static_cast<uint64_t>(vehicle_id) & (shards_.size() - 1);
  }
  Shard& ShardOf(int64_t vehicle_id) { return shards_[ShardIndexOf(vehicle_id)]; }

  /// Looks up a trip under the shard lock; null when absent.
  std::shared_ptr<Trip> ResolveTrip(Shard& shard, int64_t vehicle_id);

  /// Drains the session's newly finalized runs and delivers them to the
  /// sink. Caller holds trip->mu (compiler-enforced).
  void EmitNewRuns(int64_t vehicle_id, Trip* trip, Shard* shard,
                   double timestamp) RL4OASD_REQUIRES(trip->mu);

  /// Finishes a trip already removed from its shard map by eviction:
  /// alerts the open tail, fires OnTripEvicted, updates counters. Acquires
  /// trip->mu itself — callers must not hold it.
  void FinishEvicted(int64_t vehicle_id, Trip* trip, Shard* shard)
      RL4OASD_EXCLUDES(trip->mu);

  /// Evicts the least-recently-updated trip across all shards (requires no
  /// lock held by the caller). Retries internally when a race removes the
  /// chosen victim first; returns false only when no evictable trip was
  /// found at all, so over-cap admissions can loop until the cap holds.
  bool EvictStalest();

  /// What the per-point guard application tells the ingest path to do.
  struct GuardVerdict {
    bool accept = true;
    /// The trip exhausted its quarantine point budget; the caller must
    /// remove it (with no trip lock held — EvictQuarantined).
    bool evict = false;
  };

  /// Runs the ingest guard over one point under the trip's lock: advances
  /// the trip's guard state, bumps the per-class/disposition counters,
  /// fires OnTripQuarantined on a quarantine entry, and rewrites
  /// `*timestamp` to the trip's monotone clock (what last_update and alert
  /// timestamps record).
  GuardVerdict ApplyGuard(int64_t vehicle_id, Trip* trip, Shard* shard,
                          traj::EdgeId edge, double* timestamp)
      RL4OASD_REQUIRES(trip->mu);

  /// Identity-checked removal of a quarantine-evicted trip: erases it from
  /// its shard map (no-op if EndTrip or another eviction won the race) and
  /// finishes it with the silent-eviction guarantees. Caller must hold no
  /// trip or shard lock; `trip` must be kept alive by the caller.
  void EvictQuarantined(int64_t vehicle_id, Trip* trip)
      RL4OASD_EXCLUDES(trip->mu);

  // Sink dispatch: inline under the caller's trip lock (synchronous mode)
  // or value-captured onto the delivery queue (async_alerts). All no-ops
  // when sink_ is null. Counter bumps stay at the call sites.
  void SinkAlert(const Alert& alert);
  void SinkTripEnd(int64_t vehicle_id, const std::vector<uint8_t>& labels);
  void SinkTripEvicted(int64_t vehicle_id, double start_time,
                       const std::vector<uint8_t>& labels);
  void SinkTripFinalized(int64_t vehicle_id, traj::SdPair sd,
                         double start_time,
                         const std::vector<traj::EdgeId>& edges,
                         const std::vector<uint8_t>& labels);
  void SinkTripQuarantined(int64_t vehicle_id, double start_time,
                           int64_t malformed_points);

  /// The current model handle (shared_ptr copy under model_mu_, so a
  /// concurrent SwapModel can never hand out a torn read).
  std::shared_ptr<const ModelHandle> CurrentHandle() const;

  /// Migrates a trip to `handle` by re-priming its session against that
  /// model. Caller holds trip->mu (compiler-enforced).
  void ReprimeLocked(Trip* trip,
                     const std::shared_ptr<const ModelHandle>& handle)
      RL4OASD_REQUIRES(trip->mu);

  FleetConfig config_;
  AlertSink* sink_;
  /// The input-contract validator (stateless; per-trip state lives in
  /// Trip::guard). Pinned to the construction model's road network, which
  /// SwapModel requires to stay unchanged.
  IngestGuard guard_;
  std::vector<Shard> shards_;
  std::atomic<int64_t> active_trips_{0};
  /// Async alert delivery (async_alerts && sink). Declared before ingest_
  /// and torn down after it in ~FleetMonitor: the ingest workers are
  /// producers of delivery events, so they must stop first.
  std::unique_ptr<AlertDeliveryQueue> delivery_;
  /// Async ingest lanes + workers (ingest_workers > 0).
  std::unique_ptr<IngestPipeline> ingest_;
  /// Guards model_handle_ (the pointer only). Rank kFleetModel: acquired
  /// under a trip lock by the lazy-migration path.
  mutable common::Mutex model_mu_{common::lockrank::kFleetModel};
  std::shared_ptr<const ModelHandle> model_handle_
      RL4OASD_GUARDED_BY(model_mu_);
  /// Mirror of model_handle_->generation, readable without model_mu_: the
  /// per-point Feed path compares it against the trip's pinned generation
  /// and only pays the mutex + shared_ptr copy when a swap actually
  /// happened (a stale read just delays migration by one point, which is
  /// indistinguishable from the point arriving before the swap).
  std::atomic<uint64_t> current_generation_{0};
};

}  // namespace rl4oasd::serve
