#include "serve/ingest_guard.h"

#include <algorithm>
#include <vector>

namespace rl4oasd::serve {

IngestGuard::IngestGuard(IngestGuardConfig config,
                         const roadnet::RoadNetwork* net)
    : config_(config), net_(net) {}

bool IngestGuard::ReachableWithinHops(const roadnet::RoadNetwork& net,
                                      traj::EdgeId from, traj::EdgeId to,
                                      int hops) {
  if (from == to) return true;
  if (hops <= 0) return false;
  // Bounded BFS over edge adjacency. The frontier after h hops holds at
  // most (max out-degree)^h edges; hop bounds are small (2-3), so a flat
  // vector + linear dedup against the visited set beats hashing.
  std::vector<traj::EdgeId> frontier{from};
  std::vector<traj::EdgeId> visited{from};
  std::vector<traj::EdgeId> next;
  for (int h = 0; h < hops; ++h) {
    next.clear();
    for (const traj::EdgeId e : frontier) {
      for (const traj::EdgeId succ : net.NextEdges(e)) {
        if (succ == to) return true;
        if (std::find(visited.begin(), visited.end(), succ) ==
            visited.end()) {
          visited.push_back(succ);
          next.push_back(succ);
        }
      }
    }
    if (next.empty()) return false;
    frontier.swap(next);
  }
  return false;
}

IngestGuard::Anomaly IngestGuard::Classify(const State& state,
                                           traj::EdgeId edge,
                                           double timestamp) const {
  if (edge < 0 || static_cast<size_t>(edge) >= net_->NumEdges()) {
    return Anomaly::kInvalidEdge;
  }
  if (state.has_arrival && edge == state.last_arrival_edge &&
      timestamp == state.last_arrival_ts) {
    return Anomaly::kDuplicate;
  }
  if (timestamp < state.mono_ts) return Anomaly::kOutOfOrder;
  const double gap = timestamp - state.mono_ts;
  if (gap > config_.skew_tolerance_s) return Anomaly::kClockSkew;
  if (gap > config_.dropout_gap_s) return Anomaly::kDropout;
  if (state.position != roadnet::kInvalidEdge && edge != state.position &&
      !net_->AreConsecutive(state.position, edge) &&
      !ReachableWithinHops(*net_, state.position, edge,
                           config_.teleport_hop_bound)) {
    return Anomaly::kTeleport;
  }
  return Anomaly::kNone;
}

GuardPolicy IngestGuard::PolicyFor(Anomaly anomaly) const {
  switch (anomaly) {
    case Anomaly::kDuplicate:
      return config_.duplicate_policy;
    case Anomaly::kOutOfOrder:
      return config_.out_of_order_policy;
    case Anomaly::kClockSkew:
      return config_.skew_policy;
    case Anomaly::kDropout:
      return config_.dropout_policy;
    case Anomaly::kTeleport:
      return config_.teleport_policy;
    case Anomaly::kInvalidEdge:
    case Anomaly::kNone:
      break;
  }
  // An out-of-range edge would index past the embedding table: rejected
  // under every policy.
  return GuardPolicy::kReject;
}

IngestGuard::Decision IngestGuard::Check(State* s, traj::EdgeId edge,
                                         double timestamp) const {
  Decision d;
  d.anomaly = Classify(*s, edge, timestamp);
  const bool clean = d.anomaly == Anomaly::kNone;
  // The duplicate check compares raw arrivals, so the arrival memo updates
  // unconditionally — a second retransmission of a dropped copy is still a
  // duplicate.
  s->last_arrival_edge = edge;
  s->last_arrival_ts = timestamp;
  s->has_arrival = true;

  if (s->quarantined) {
    // Validate but never feed: the session's hidden state is protected
    // until the stream proves itself clean again.
    ++s->quarantine_points;
    d.accept = false;
    d.quarantine_dropped = true;
    if (clean) {
      // A credible point moves the trip's clock and position even though
      // the detector never sees it: liveness and the next spatial check
      // track the vehicle, not the session.
      s->mono_ts = timestamp;
      if (edge != roadnet::kInvalidEdge) s->position = edge;
      if (++s->clean_streak >= config_.quarantine_recovery_points) {
        s->quarantined = false;
        s->clean_streak = 0;
        s->quarantine_points = 0;
        s->strikes = 0;
        // The recovering point itself is fed: recovery is immediate.
        d.accept = true;
        d.quarantine_dropped = false;
        d.recovered = true;
      }
    } else {
      ++s->malformed_total;
      s->clean_streak = 0;
      if (config_.quarantine_evict_points > 0 &&
          s->quarantine_points >= config_.quarantine_evict_points) {
        d.evict = true;
      }
    }
    d.timestamp = s->mono_ts;
    return d;
  }

  if (clean) {
    s->mono_ts = timestamp;
    s->position = edge;
    if (s->strikes > 0) --s->strikes;
    d.timestamp = s->mono_ts;
    return d;
  }

  ++s->malformed_total;
  ++s->strikes;
  if (config_.malformed_budget > 0 &&
      s->strikes > config_.malformed_budget) {
    // The tipping point is dropped along with everything that follows
    // until the stream recovers.
    s->quarantined = true;
    s->clean_streak = 0;
    s->quarantine_points = 0;
    d.accept = false;
    d.entered_quarantine = true;
    d.quarantine_dropped = true;
    d.timestamp = s->mono_ts;
    return d;
  }

  switch (PolicyFor(d.anomaly)) {
    case GuardPolicy::kPassThrough:
      // Faithful raw behavior: the point is fed as-is and advances the
      // clock/position wherever it credibly can. A regressing timestamp
      // still cannot pull the monotone clock backwards.
      d.accept = true;
      s->mono_ts = std::max(s->mono_ts, timestamp);
      if (d.anomaly != Anomaly::kInvalidEdge) s->position = edge;
      break;
    case GuardPolicy::kRepair:
      switch (d.anomaly) {
        case Anomaly::kDuplicate:
        case Anomaly::kTeleport:
          // Nothing to clamp onto: drop, keep clock and position.
          d.accept = false;
          break;
        case Anomaly::kOutOfOrder:
          // Clamp the late point to "now"; its segment is still evidence.
          // The position stays: a historical point says nothing about
          // where the vehicle currently is.
          d.accept = true;
          d.repaired = true;
          break;
        case Anomaly::kClockSkew:
          d.accept = true;
          d.repaired = true;
          s->mono_ts += config_.skew_clamp_s;
          s->position = edge;
          break;
        case Anomaly::kDropout:
          // The point after a gap is credible; the gap itself is the
          // anomaly and cannot be repaired.
          d.accept = true;
          s->mono_ts = timestamp;
          s->position = edge;
          break;
        case Anomaly::kInvalidEdge:
        case Anomaly::kNone:
          d.accept = false;
          break;
      }
      break;
    case GuardPolicy::kReject:
      d.accept = false;
      break;
  }
  d.timestamp = s->mono_ts;
  return d;
}

double IngestGuard::HealthScore(const State& state) const {
  const uint32_t scale = config_.malformed_budget > 0
                             ? config_.malformed_budget
                             : kDefaultHealthScale;
  if (state.quarantined) return 0.0;
  const double load = static_cast<double>(state.strikes) / scale;
  return 1.0 - std::min(1.0, load);
}

void IngestGuard::State::ExportState(BinaryWriter* w) const {
  w->WriteF64(mono_ts);
  w->WriteF64(last_arrival_ts);
  w->WriteI32(last_arrival_edge);
  w->WriteI32(position);
  w->WriteU32(strikes);
  w->WriteU32(clean_streak);
  w->WriteU32(quarantine_points);
  w->WriteU32(malformed_total);
  w->WriteU8(has_arrival ? 1 : 0);
  w->WriteU8(quarantined ? 1 : 0);
}

Status IngestGuard::State::ImportState(BinaryReader* r, size_t num_edges) {
  RL4_RETURN_NOT_OK(r->ReadF64(&mono_ts));
  RL4_RETURN_NOT_OK(r->ReadF64(&last_arrival_ts));
  RL4_RETURN_NOT_OK(r->ReadI32(&last_arrival_edge));
  RL4_RETURN_NOT_OK(r->ReadI32(&position));
  RL4_RETURN_NOT_OK(r->ReadU32(&strikes));
  RL4_RETURN_NOT_OK(r->ReadU32(&clean_streak));
  RL4_RETURN_NOT_OK(r->ReadU32(&quarantine_points));
  RL4_RETURN_NOT_OK(r->ReadU32(&malformed_total));
  uint8_t arrival_flag = 0;
  uint8_t quarantine_flag = 0;
  RL4_RETURN_NOT_OK(r->ReadU8(&arrival_flag));
  RL4_RETURN_NOT_OK(r->ReadU8(&quarantine_flag));
  if (arrival_flag > 1 || quarantine_flag > 1) {
    return Status::InvalidArgument("guard state flags out of range");
  }
  const auto valid_edge = [num_edges](traj::EdgeId e) {
    return e == roadnet::kInvalidEdge ||
           (e >= 0 && static_cast<size_t>(e) < num_edges);
  };
  if (!valid_edge(last_arrival_edge) || !valid_edge(position)) {
    return Status::InvalidArgument(
        "guard state edge id out of range for the serving road network");
  }
  has_arrival = arrival_flag != 0;
  quarantined = quarantine_flag != 0;
  return Status::OK();
}

}  // namespace rl4oasd::serve
