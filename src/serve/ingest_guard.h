// The ingest input contract: per-trip validation of every point entering
// FleetMonitor::Feed/FeedBatch (and therefore the async Submit drain path,
// which feeds through FeedBatch — sync and async stay equivalent by
// construction).
//
// The paper's serving scenario is a live GPS stream from a whole fleet of
// devices, and live device streams degrade in a handful of well-known ways.
// The guard classifies each arriving point against the trip's *monotone
// clock* (the max timestamp it has accepted so far) and its last accepted
// road segment:
//
//   * duplicate     — same edge AND same timestamp as the previous arrival
//                     (a retransmitted packet). Repair: drop the copy.
//   * out-of-order  — timestamp regresses below the monotone clock (late
//                     delivery / device clock stepping backwards). Repair:
//                     clamp the timestamp to the monotone clock and accept
//                     the segment; the trip's *position* is not moved (a
//                     late historical point says nothing about where the
//                     vehicle is now).
//   * clock skew    — timestamp jumps forward past the monotone clock by
//                     more than skew_tolerance_s (a device clock jumped).
//                     Repair: clamp to one nominal sampling interval
//                     (skew_clamp_s) past the monotone clock.
//   * dropout gap   — a forward gap larger than dropout_gap_s but within
//                     skew tolerance: plausible missing data. The point
//                     itself is credible, so repair accepts it unchanged;
//                     the gap still counts as an anomaly (the detector's
//                     hidden state has a blind spot).
//   * teleport      — an edge not reachable from the trip's current
//                     position within teleport_hop_bound hops of
//                     roadnet::RoadNetwork adjacency. No plausible path
//                     exists to repair onto, so repair drops the point and
//                     keeps the position.
//
// An out-of-range edge id is a sixth, unconditional class: it cannot be fed
// (the embedding lookup would be out of bounds), so it is rejected under
// every policy.
//
// Exactly one class is reported per point, in the precedence order above
// (time before space: a reordered point usually looks spatially wrong too,
// and the timestamp is the primary evidence). Each class has its own
// GuardPolicy knob; kPassThrough accepts the raw point (detection counters
// still tick — observability is free), kRepair applies the documented
// repair, kReject drops the point.
//
// Quarantine: every detected anomaly adds a strike to a per-trip leaky
// bucket (a clean point removes one). When strikes exceed malformed_budget
// the trip is quarantined — the detector stops consuming its points, so a
// garbage stream cannot pollute RSRNet hidden state or fabricate alerts —
// and AlertSink::OnTripQuarantined fires. While quarantined, points are
// validated but dropped; quarantine_recovery_points consecutive clean
// points end the quarantine (the streak's last point is fed), and
// quarantine_evict_points total points without recovery evict the trip with
// the usual silent-eviction guarantees. malformed_budget == 0 disables
// quarantine entirely.
//
// The guard's State is part of the trip's durable identity: it round-trips
// through fleet snapshots (io/fleet_snapshot.h format v2) so a restored
// fleet resumes mid-quarantine exactly where it left off.
#pragma once

#include <cstdint>

#include "common/binary.h"
#include "common/status.h"
#include "roadnet/road_network.h"
#include "traj/types.h"

namespace rl4oasd::serve {

/// What to do with a point once an anomaly class is detected.
enum class GuardPolicy : uint8_t {
  /// Accept the raw point unchanged (detection counters still tick).
  kPassThrough = 0,
  /// Apply the class's documented repair (clamp / drop), then accept what
  /// survives.
  kRepair = 1,
  /// Drop the point.
  kReject = 2,
};

/// Per-class policies and thresholds. Defaults are observe-only (every
/// policy kPassThrough, quarantine disabled): enabling the guard changes no
/// served behavior until a policy is opted into.
struct IngestGuardConfig {
  GuardPolicy duplicate_policy = GuardPolicy::kPassThrough;
  GuardPolicy out_of_order_policy = GuardPolicy::kPassThrough;
  GuardPolicy skew_policy = GuardPolicy::kPassThrough;
  GuardPolicy dropout_policy = GuardPolicy::kPassThrough;
  GuardPolicy teleport_policy = GuardPolicy::kPassThrough;
  /// Forward jumps beyond this are clock skew, not dropout.
  double skew_tolerance_s = 3600.0;
  /// Where kRepair clamps a skewed timestamp: one nominal sampling interval
  /// past the trip's monotone clock.
  double skew_clamp_s = 2.0;
  /// Forward gaps beyond this (but within skew tolerance) are dropout gaps.
  double dropout_gap_s = 60.0;
  /// A new edge must be reachable from the trip's position within this many
  /// adjacency hops; clean streams are connected paths, so the common case
  /// is one O(1) AreConsecutive check and never searches.
  int teleport_hop_bound = 2;
  /// Leaky-bucket strike budget before quarantine; 0 disables quarantine.
  uint32_t malformed_budget = 0;
  /// Consecutive clean points that end a quarantine.
  uint32_t quarantine_recovery_points = 16;
  /// Points observed in quarantine without recovery before the trip is
  /// evicted; 0 means never evict (quarantine until recovery or timeout).
  uint32_t quarantine_evict_points = 256;
};

class IngestGuard {
 public:
  /// Anomaly classes in detection-precedence order.
  enum class Anomaly : uint8_t {
    kNone = 0,
    kInvalidEdge,
    kDuplicate,
    kOutOfOrder,
    kClockSkew,
    kDropout,
    kTeleport,
  };

  /// Per-trip validator state. Lives inside serve::FleetMonitor's Trip,
  /// guarded by the trip mutex, and serializes into fleet snapshots.
  struct State {
    /// Monotone per-trip clock: max accepted (or credible) timestamp so
    /// far. Seeds from the trip's start_time. FleetMonitor routes trip
    /// staleness (last_update) through this clock, so one skewed or
    /// negative client timestamp can never make a live trip the
    /// EvictStalest victim.
    double mono_ts = 0.0;
    /// Raw (edge, timestamp) of the previous arrival, accepted or not —
    /// the duplicate check compares against what the device actually sent.
    double last_arrival_ts = 0.0;
    traj::EdgeId last_arrival_edge = roadnet::kInvalidEdge;
    /// The trip's current position: the last accepted credible edge.
    /// Dropped points (duplicates, teleports, quarantined garbage) and
    /// repaired out-of-order points do not move it.
    traj::EdgeId position = roadnet::kInvalidEdge;
    /// Leaky-bucket strike count (anomaly +1, clean point -1).
    uint32_t strikes = 0;
    /// Consecutive clean points observed while quarantined.
    uint32_t clean_streak = 0;
    /// Points observed (and dropped) since quarantine began.
    uint32_t quarantine_points = 0;
    /// Total anomalous points detected over the trip's lifetime.
    uint32_t malformed_total = 0;
    bool has_arrival = false;
    bool quarantined = false;

    void ExportState(BinaryWriter* w) const;
    /// Hostile-input tolerant: every field is validated (edges against
    /// `num_edges`, flags against {0,1}) and a lie returns a descriptive
    /// error, never UB.
    Status ImportState(BinaryReader* r, size_t num_edges);
  };

  /// What the guard decided about one point.
  struct Decision {
    Anomaly anomaly = Anomaly::kNone;
    /// Feed the point to the detection session?
    bool accept = true;
    /// The accepted timestamp was modified (clamped) by kRepair.
    bool repaired = false;
    /// Dropped because the trip is (or just became) quarantined.
    bool quarantine_dropped = false;
    /// This point tipped the trip into quarantine (fire OnTripQuarantined).
    bool entered_quarantine = false;
    /// This point completed the clean streak and ended the quarantine.
    bool recovered = false;
    /// The quarantine exceeded its point budget: evict the trip.
    bool evict = false;
    /// The trip's monotone clock after this point — what last_update and
    /// alert timestamps should record. Never regresses.
    double timestamp = 0.0;
  };

  /// `net` must outlive the guard (SwapModel requires an unchanged road
  /// network, so the construction-time network stays authoritative).
  IngestGuard(IngestGuardConfig config, const roadnet::RoadNetwork* net);

  /// Classifies one arriving point and advances `state`. Caller holds the
  /// owning trip's lock; the guard itself is stateless and const.
  Decision Check(State* state, traj::EdgeId edge, double timestamp) const;

  /// Trip input health in [0, 1]: 1 when the strike bucket is empty, 0 at
  /// (or past) the quarantine threshold. With quarantine disabled the
  /// bucket is scored against kDefaultHealthScale strikes.
  double HealthScore(const State& state) const;

  /// True when `to` is reachable from `from` within `hops` directed
  /// adjacency hops (bounded BFS over RoadNetwork::NextEdges; `from == to`
  /// counts as reachable). Shared with the chaos injector, which uses it to
  /// manufacture guaranteed-unreachable teleports.
  static bool ReachableWithinHops(const roadnet::RoadNetwork& net,
                                  traj::EdgeId from, traj::EdgeId to,
                                  int hops);

  const IngestGuardConfig& config() const { return config_; }

 private:
  static constexpr uint32_t kDefaultHealthScale = 8;

  /// Classification only (no state mutation): first matching class in
  /// precedence order.
  Anomaly Classify(const State& state, traj::EdgeId edge,
                   double timestamp) const;
  GuardPolicy PolicyFor(Anomaly anomaly) const;

  IngestGuardConfig config_;
  const roadnet::RoadNetwork* net_;
};

}  // namespace rl4oasd::serve
