#include "serve/ingest_queue.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/logging.h"

namespace rl4oasd::serve {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

IngestPipeline::IngestPipeline(FleetMonitor* monitor,
                               const FleetConfig& config, size_t num_shards)
    : monitor_(monitor),
      capacity_(std::max<size_t>(config.ingest_queue_capacity, 1)),
      flush_width_(std::max<size_t>(config.micro_batch, 1)),
      flush_age_(config.ingest_flush_age_points),
      shed_(config.overload_policy == OverloadPolicy::kShed),
      shard_mask_(num_shards - 1) {
  RL4_CHECK(monitor != nullptr);
  RL4_CHECK_GT(num_shards, 0u);
  const size_t workers =
      std::min(std::max<size_t>(config.ingest_workers, 1), num_shards);
  lanes_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(lanes_[i].get()); });
  }
}

IngestPipeline::~IngestPipeline() {
  for (auto& lane : lanes_) {
    common::MutexLock lock(&lane->mu);
    lane->stop = true;
    lane->items_cv.NotifyAll();
    // Unblock Submit callers stuck waiting for space (caller bug to race
    // the destructor, but a hang would hide it).
    lane->space_cv.NotifyAll();
  }
  // Workers drain everything still staged before exiting, so destruction
  // processes every accepted point.
  for (std::thread& w : workers_) w.join();
}

IngestPipeline::Lane& IngestPipeline::LaneOf(int64_t vehicle_id) {
  // Same mapping as FleetMonitor::ShardIndexOf folded onto the lanes: one
  // vehicle -> one shard -> one lane, which is what keeps per-vehicle
  // submission order end to end.
  const size_t shard = static_cast<uint64_t>(vehicle_id) & shard_mask_;
  return *lanes_[shard % lanes_.size()];
}

bool IngestPipeline::Ripe(const Lane& lane) const {
  if (lane.staged.empty()) return false;
  if (lane.flush || lane.stop) return true;
  if (lane.staged.size() >= flush_width_) return true;
  // Points-denominated age: how many later submissions the oldest staged
  // item has seen. flush_age_ == 0 means any non-empty lane is ripe (greedy
  // low-latency default); larger values hold partial waves back so sparse
  // arrivals still fuse into wider batches.
  return lane.submit_seq - lane.staged.front().seq >= flush_age_;
}

bool IngestPipeline::Stage(Lane& lane, Item item, bool droppable) {
  common::MutexLock lock(&lane.mu);
  if (shed_ && droppable) {
    if (lane.stop || lane.staged.size() >= capacity_) {
      lane.shed.fetch_add(1, kRelaxed);
      return false;
    }
  } else {
    while (lane.staged.size() >= capacity_ && !lane.stop) {
      lane.space_cv.Wait(&lane.mu);
    }
    if (lane.stop) return false;
  }
  const bool is_point = !item.end_marker;
  item.seq = lane.submit_seq++;
  lane.staged.push_back(item);
  if (is_point) lane.submitted.fetch_add(1, kRelaxed);
  if (Ripe(lane)) lane.items_cv.NotifyOne();
  return true;
}

bool IngestPipeline::Submit(const FleetPoint& point) {
  return Stage(LaneOf(point.vehicle_id), Item{point, /*end_marker=*/false, 0},
               /*droppable=*/true);
}

size_t IngestPipeline::SubmitBatch(std::span<const FleetPoint> points) {
  size_t accepted = 0;
  for (const FleetPoint& p : points) {
    if (Submit(p)) ++accepted;
  }
  return accepted;
}

void IngestPipeline::SubmitEnd(int64_t vehicle_id) {
  (void)Stage(LaneOf(vehicle_id),
              Item{FleetPoint{vehicle_id, 0, 0.0}, /*end_marker=*/true, 0},
              /*droppable=*/false);
}

void IngestPipeline::Quiesce() {
  for (auto& lane : lanes_) {
    common::MutexLock lock(&lane->mu);
    lane->flush = true;
    lane->items_cv.NotifyAll();
    while (!lane->staged.empty() || lane->busy) {
      lane->idle_cv.Wait(&lane->mu);
    }
    lane->flush = false;
  }
}

int64_t IngestPipeline::PointsSubmitted() const {
  int64_t total = 0;
  for (const auto& lane : lanes_) total += lane->submitted.load(kRelaxed);
  return total;
}

int64_t IngestPipeline::PointsShed() const {
  int64_t total = 0;
  for (const auto& lane : lanes_) total += lane->shed.load(kRelaxed);
  return total;
}

void IngestPipeline::ProcessWave(std::vector<Item>* wave) {
  // One FeedBatch per run of consecutive points; an end marker first
  // flushes the run (the vehicle's own points are inside it, and a lane is
  // FIFO, so the trip ends strictly after its points), then ends the trip.
  // EndTrip may legitimately fail: the trip can have been evicted, or the
  // marker can belong to a vehicle whose points were all shed.
  std::vector<FleetPoint> run;
  run.reserve(wave->size());
  for (const Item& item : *wave) {
    if (!item.end_marker) {
      run.push_back(item.point);
      continue;
    }
    if (!run.empty()) {
      (void)monitor_->FeedBatch(run);
      run.clear();
    }
    (void)monitor_->EndTrip(item.point.vehicle_id);
  }
  if (!run.empty()) (void)monitor_->FeedBatch(run);
}

void IngestPipeline::WorkerLoop(Lane* lane) {
  std::vector<Item> wave;
  for (;;) {
    bool stopping = false;
    {
      common::MutexLock lock(&lane->mu);
      while (!Ripe(*lane) && !lane->stop) {
        lane->items_cv.Wait(&lane->mu);
      }
      stopping = lane->stop;
      // Drain the whole lane: everything that accumulated while the last
      // wave was being fed becomes the next wave (the self-batching step).
      // FeedBatch itself chunks the model work at micro_batch width.
      wave.clear();
      std::move(lane->staged.begin(), lane->staged.end(),
                std::back_inserter(wave));
      lane->staged.clear();
      lane->busy = !wave.empty();
      if (!wave.empty()) lane->space_cv.NotifyAll();
    }
    // Feed with no lane lock held (rank kFleetIngest sits *below* the shard
    // and trip ranks precisely so holding it here would abort the debug
    // rank checker — the lock ordering makes this release mandatory).
    ProcessWave(&wave);
    {
      common::MutexLock lock(&lane->mu);
      lane->busy = false;
      if (lane->staged.empty()) {
        lane->idle_cv.NotifyAll();
        if (stopping) return;
      }
    }
  }
}

}  // namespace rl4oasd::serve
