// Self-batching shard ingest: bounded staging lanes plus worker threads
// that assemble FeedBatch waves adaptively under irregular arrivals.
//
// The synchronous FeedBatch path is fast only when the *caller* assembles a
// wide batch — but the paper's deployment receives one interleaved point at
// a time from the whole fleet. IngestPipeline closes that gap: Submit stages
// a point into its shard's lane (a small bounded deque) and returns; a lane
// worker drains whatever has accumulated into one FeedBatch call. Batches
// therefore form *by themselves* under load — while a worker is busy with
// one wave the next one accumulates behind it — and stay width-1 at low
// load, so latency is never traded away by a fixed batching delay.
//
// Flush policy (all points-denominated — no wall clocks, per the repo's
// determinism contract):
//   * width:  a lane with >= FleetConfig::micro_batch staged points is ripe;
//   * age:    with ingest_flush_age_points > 0 a partial wave also ripens
//             once its oldest staged point has seen that many *later*
//             submissions to the lane (age measured in points, not seconds);
//             with the default 0 any non-empty lane is ripe immediately;
//   * flush:  Quiesce (and the destructor) ripen everything unconditionally.
// A lane whose age bound never fires (arrivals stopped) holds its tail until
// Quiesce — callers that want every submitted point processed call
// FleetMonitor::Quiesce() before reading results.
//
// Ordering: a vehicle always maps to the same lane (by shard index), the
// lane is FIFO, and FeedBatch preserves per-vehicle point order within one
// call, so per-vehicle order is exactly the Submit order. End-of-trip
// markers (SubmitEnd) ride the same lane, so a trip's end is processed after
// all its points.
//
// Backpressure: lanes are bounded (FleetConfig::ingest_queue_capacity).
// OverloadPolicy::kBlock makes Submit wait for space (lossless);
// OverloadPolicy::kShed makes Submit drop the point and count it
// (FleetStats::points_shed). End markers are lifecycle events and are never
// shed — they block for space under either policy.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/fleet.h"

namespace rl4oasd::serve {

/// Per-shard staging lanes + worker threads feeding one FleetMonitor.
/// Thread-safe; the destructor drains every lane, then joins.
class IngestPipeline {
 public:
  /// `monitor` must outlive the pipeline. `workers` >= 1; shard s of the
  /// monitor is served by lane s % workers, so per-vehicle order holds.
  IngestPipeline(FleetMonitor* monitor, const FleetConfig& config,
                 size_t num_shards);
  ~IngestPipeline();
  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Stages one point. Returns false iff the point was shed (kShed policy,
  /// lane full); under kBlock it waits for space and always returns true.
  bool Submit(const FleetPoint& point);

  /// Stages a batch; returns the number accepted (== points.size() under
  /// kBlock). Points of one vehicle keep their relative order.
  size_t SubmitBatch(std::span<const FleetPoint> points);

  /// Stages an end-of-trip marker behind every point the vehicle has
  /// submitted so far; the lane worker calls EndTrip in turn. Never shed.
  void SubmitEnd(int64_t vehicle_id);

  /// Blocks until every lane is empty and every worker idle: all points
  /// staged before the call are fully fed (and their alerts emitted or
  /// enqueued for delivery).
  void Quiesce();

  /// Points accepted into a lane (monotonic; excludes shed ones).
  int64_t PointsSubmitted() const;
  /// Points dropped by the kShed policy (monotonic).
  int64_t PointsShed() const;

 private:
  struct Item {
    FleetPoint point;
    bool end_marker = false;
    /// Lane submission index at staging time: the age of the lane's front
    /// item is `submit_seq - front.seq` — submissions since it was staged.
    uint64_t seq = 0;
  };

  struct alignas(64) Lane {
    common::Mutex mu{common::lockrank::kFleetIngest};
    common::CondVar items_cv;
    common::CondVar space_cv;
    common::CondVar idle_cv;
    std::deque<Item> staged RL4OASD_GUARDED_BY(mu);
    uint64_t submit_seq RL4OASD_GUARDED_BY(mu) = 0;
    bool busy RL4OASD_GUARDED_BY(mu) = false;
    bool stop RL4OASD_GUARDED_BY(mu) = false;
    bool flush RL4OASD_GUARDED_BY(mu) = false;
    std::atomic<int64_t> submitted{0};
    std::atomic<int64_t> shed{0};
  };

  Lane& LaneOf(int64_t vehicle_id);
  /// True when the lane has a ripe wave under the width/age/flush policy.
  bool Ripe(const Lane& lane) const RL4OASD_REQUIRES(lane.mu);
  bool Stage(Lane& lane, Item item, bool droppable);
  void WorkerLoop(Lane* lane);
  /// Feeds a drained wave: FeedBatch over point runs, EndTrip at markers.
  void ProcessWave(std::vector<Item>* wave);

  FleetMonitor* const monitor_;
  const size_t capacity_;
  const size_t flush_width_;
  const size_t flush_age_;
  const bool shed_;
  const uint64_t shard_mask_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;
};

}  // namespace rl4oasd::serve
