#include "traj/dataset.h"

#include <algorithm>

#include "common/csv.h"
#include "common/strings.h"

namespace rl4oasd::traj {

void Dataset::RebuildIndex() const {
  groups_.clear();
  for (size_t i = 0; i < trajs_.size(); ++i) {
    if (trajs_[i].traj.empty()) continue;
    groups_[trajs_[i].traj.sd()].push_back(i);
  }
  index_stale_ = false;
}

const std::unordered_map<SdPair, std::vector<size_t>, SdPairHash>&
Dataset::Groups() const {
  if (index_stale_) RebuildIndex();
  return groups_;
}

const std::vector<size_t>& Dataset::Group(const SdPair& sd) const {
  static const std::vector<size_t> kEmpty;
  const auto& groups = Groups();
  auto it = groups.find(sd);
  return it == groups.end() ? kEmpty : it->second;
}

size_t Dataset::NumAnomalous() const {
  size_t n = 0;
  for (const auto& t : trajs_) {
    if (t.HasAnomaly()) ++n;
  }
  return n;
}

void Dataset::FilterSparsePairs(size_t min_count) {
  const auto& groups = Groups();
  std::vector<LabeledTrajectory> kept;
  kept.reserve(trajs_.size());
  for (const auto& [sd, idxs] : groups) {
    if (idxs.size() < min_count) continue;
    for (size_t i : idxs) kept.push_back(std::move(trajs_[i]));
  }
  trajs_ = std::move(kept);
  index_stale_ = true;
}

std::pair<Dataset, Dataset> Dataset::Split(size_t train_size, Rng* rng) const {
  std::vector<size_t> order(trajs_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  Dataset train, test;
  for (size_t k = 0; k < order.size(); ++k) {
    if (k < train_size) {
      train.Add(trajs_[order[k]]);
    } else {
      test.Add(trajs_[order[k]]);
    }
  }
  return {std::move(train), std::move(test)};
}

Dataset Dataset::DropFraction(double drop_rate, Rng* rng) const {
  Dataset out;
  for (const auto& [sd, idxs] : Groups()) {
    // Keep at least one trajectory per pair so the pair still exists.
    size_t keep = idxs.size() -
                  static_cast<size_t>(drop_rate * static_cast<double>(idxs.size()));
    if (keep == 0) keep = 1;
    auto chosen = rng->SampleWithoutReplacement(idxs.size(), keep);
    for (size_t c : chosen) out.Add(trajs_[idxs[c]]);
  }
  return out;
}

Status Dataset::SaveCsv(const std::string& path) const {
  CsvTable t;
  t.header = {"id", "start_time", "edges", "labels"};
  for (const auto& lt : trajs_) {
    std::string edges;
    for (size_t i = 0; i < lt.traj.edges.size(); ++i) {
      if (i) edges += ' ';
      edges += std::to_string(lt.traj.edges[i]);
    }
    std::string labels(lt.labels.size(), '0');
    for (size_t i = 0; i < lt.labels.size(); ++i) {
      labels[i] = lt.labels[i] ? '1' : '0';
    }
    t.rows.push_back({std::to_string(lt.traj.id),
                      StrFormat("%.1f", lt.traj.start_time), edges, labels});
  }
  return WriteCsv(path, t);
}

Result<Dataset> Dataset::LoadCsv(const std::string& path) {
  RL4_ASSIGN_OR_RETURN(CsvTable t, ReadCsv(path));
  Dataset ds;
  for (const auto& row : t.rows) {
    if (row.size() < 4) return Status::IOError("bad trajectory row");
    LabeledTrajectory lt;
    int64_t id;
    double st;
    if (!ParseInt64(row[0], &id) || !ParseDouble(row[1], &st)) {
      return Status::IOError("bad trajectory id/start_time");
    }
    lt.traj.id = id;
    lt.traj.start_time = st;
    for (const auto& tok : ::rl4oasd::Split(row[2], ' ')) {
      if (tok.empty()) continue;
      int64_t e;
      if (!ParseInt64(tok, &e)) return Status::IOError("bad edge id");
      lt.traj.edges.push_back(static_cast<EdgeId>(e));
    }
    lt.labels.reserve(row[3].size());
    for (char c : row[3]) {
      if (c != '0' && c != '1') return Status::IOError("bad label char");
      lt.labels.push_back(c == '1');
    }
    if (lt.labels.size() != lt.traj.edges.size()) {
      return Status::IOError("label/edge length mismatch");
    }
    ds.Add(std::move(lt));
  }
  return ds;
}

}  // namespace rl4oasd::traj
