// Trajectory dataset container: labeled trajectories grouped by SD pair,
// with train/test splitting and CSV persistence.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "traj/types.h"

namespace rl4oasd::traj {

/// A collection of labeled, map-matched trajectories over one road network.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<LabeledTrajectory> trajs)
      : trajs_(std::move(trajs)) {
    RebuildIndex();
  }

  void Add(LabeledTrajectory t) {
    trajs_.push_back(std::move(t));
    index_stale_ = true;
  }

  size_t size() const { return trajs_.size(); }
  bool empty() const { return trajs_.empty(); }
  const LabeledTrajectory& operator[](size_t i) const { return trajs_[i]; }
  LabeledTrajectory& operator[](size_t i) { return trajs_[i]; }
  const std::vector<LabeledTrajectory>& trajs() const { return trajs_; }

  /// Indices of trajectories for each SD pair (built lazily).
  const std::unordered_map<SdPair, std::vector<size_t>, SdPairHash>& Groups()
      const;

  /// Indices of trajectories in one SD pair (empty if absent).
  const std::vector<size_t>& Group(const SdPair& sd) const;

  /// Number of distinct SD pairs.
  size_t NumSdPairs() const { return Groups().size(); }

  /// Count of trajectories whose ground truth has at least one anomalous
  /// edge.
  size_t NumAnomalous() const;

  /// Removes SD pairs that have fewer than `min_count` trajectories (paper:
  /// "filter those SD-pairs that contain less than 25 trajectories").
  void FilterSparsePairs(size_t min_count);

  /// Splits into (train, test): `train_size` random trajectories go to train,
  /// the rest to test. Deterministic for a given rng state.
  std::pair<Dataset, Dataset> Split(size_t train_size, Rng* rng) const;

  /// Randomly drops a fraction of trajectories in every SD pair (cold-start
  /// experiment, Table VI). Keeps at least one per pair.
  Dataset DropFraction(double drop_rate, Rng* rng) const;

  /// CSV persistence. Row: id,start_time,edges(space-sep),labels(compact).
  Status SaveCsv(const std::string& path) const;
  static Result<Dataset> LoadCsv(const std::string& path);

 private:
  void RebuildIndex() const;

  std::vector<LabeledTrajectory> trajs_;
  mutable std::unordered_map<SdPair, std::vector<size_t>, SdPairHash> groups_;
  mutable bool index_stale_ = true;
};

}  // namespace rl4oasd::traj
