#include "traj/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "roadnet/shortest_path.h"

namespace rl4oasd::traj {

using roadnet::kInvalidEdge;

TrajectoryGenerator::TrajectoryGenerator(const roadnet::RoadNetwork* net,
                                         GeneratorConfig config)
    : net_(net), config_(config), rng_(config.seed) {
  RL4_CHECK(net->built());
  RL4_CHECK_GE(config_.routes_per_pair, 1);
}

void TrajectoryGenerator::BuildPairs() {
  pairs_.clear();
  const int max_attempts = config_.num_sd_pairs * 30;
  int attempts = 0;
  std::unordered_set<int64_t> used;  // avoid duplicate SD pairs
  while (static_cast<int>(pairs_.size()) < config_.num_sd_pairs &&
         attempts++ < max_attempts) {
    const EdgeId src =
        static_cast<EdgeId>(rng_.UniformInt(net_->NumEdges()));
    const EdgeId dst =
        static_cast<EdgeId>(rng_.UniformInt(net_->NumEdges()));
    if (src == dst) continue;
    const int64_t key =
        (static_cast<int64_t>(src) << 32) | static_cast<uint32_t>(dst);
    if (used.contains(key)) continue;
    // Cheap geometric prefilter before the expensive route computation.
    const double geo = roadnet::ApproxDistanceMeters(
        net_->EdgeMidpoint(src), net_->EdgeMidpoint(dst));
    if (geo < config_.min_pair_dist_m || geo > config_.max_pair_dist_m) {
      continue;
    }
    auto routes = roadnet::AlternativeRoutes(*net_, src, dst,
                                             config_.routes_per_pair);
    if (routes.empty() ||
        static_cast<int>(routes[0].size()) < config_.min_route_edges) {
      continue;
    }
    used.insert(key);
    SdPairInfo info;
    info.sd = SdPair{src, dst};
    info.normal_routes = std::move(routes);
    double total = 0.0;
    for (size_t r = 0; r < info.normal_routes.size(); ++r) {
      const double w =
          1.0 / std::pow(static_cast<double>(r + 1), config_.popularity_skew);
      info.base_popularity.push_back(w);
      total += w;
    }
    for (double& w : info.base_popularity) w /= total;
    pairs_.push_back(std::move(info));
  }
  RL4_CHECK(!pairs_.empty()) << "could not place any SD pair";
}

std::vector<double> TrajectoryGenerator::EffectivePopularity(
    const SdPairInfo& info, double start_time) const {
  std::vector<double> w = info.base_popularity;
  if (config_.drift_parts > 1) {
    // Rotate route popularities by the day-part index: the most popular
    // route in part 0 becomes unpopular in part 1, etc. This is the
    // "popular route gets congested, drivers move to another" drift of
    // Section V-G.
    const double part_seconds = 86400.0 / config_.drift_parts;
    const int part = std::min(
        config_.drift_parts - 1,
        static_cast<int>(start_time / part_seconds));
    std::rotate(w.begin(), w.begin() + (part % w.size()), w.end());
  }
  return w;
}

bool TrajectoryGenerator::SpliceDetour(const SdPairInfo& info,
                                       LabeledTrajectory* lt) {
  auto& edges = lt->traj.edges;
  const int n = static_cast<int>(edges.size());
  if (n < config_.min_route_edges) return false;

  // Edges belonging to any normal route of this pair: a detour must leave
  // this set, and ground-truth 1s are exactly the off-normal spliced edges.
  std::unordered_set<EdgeId> normal_edges;
  for (const auto& route : info.normal_routes) {
    normal_edges.insert(route.begin(), route.end());
  }

  for (int attempt = 0; attempt < 8; ++attempt) {
    const double frac =
        rng_.Uniform(config_.detour_frac_min, config_.detour_frac_max);
    int span = std::max(2, static_cast<int>(frac * n));
    if (span > n - 4) span = n - 4;
    if (span < 2) return false;
    const int i = static_cast<int>(rng_.UniformInt(1, n - 3 - span));
    const int j = i + span;  // replace the open interval (i, j)

    // Penalize normal-route edges so the alternative path actually deviates.
    auto weight = [&](EdgeId e) {
      const double base = net_->edge(e).length_m;
      return normal_edges.contains(e) ? base * config_.detour_penalty : base;
    };
    auto alt =
        roadnet::ShortestPathBetweenEdges(*net_, edges[i], edges[j], weight);
    if (alt.size() < 3) continue;

    // Count how many interior alt edges are off the normal routes; require a
    // real deviation.
    int off_normal = 0;
    for (size_t k = 1; k + 1 < alt.size(); ++k) {
      if (!normal_edges.contains(alt[k])) ++off_normal;
    }
    if (off_normal < 2) continue;

    std::vector<EdgeId> new_edges(edges.begin(), edges.begin() + i);
    std::vector<uint8_t> new_labels(lt->labels.begin(),
                                    lt->labels.begin() + i);
    for (size_t k = 0; k < alt.size(); ++k) {
      new_edges.push_back(alt[k]);
      // The whole interior of the splice is ground-truth anomalous, as a
      // human labeler marks a detour contiguously (the vehicle is off its
      // normal route even while briefly crossing a normal segment).
      const bool interior = k > 0 && k + 1 < alt.size();
      new_labels.push_back(interior ? 1 : 0);
    }
    new_edges.insert(new_edges.end(), edges.begin() + j + 1, edges.end());
    new_labels.insert(new_labels.end(), lt->labels.begin() + j + 1,
                      lt->labels.end());
    RL4_CHECK_EQ(new_edges.size(), new_labels.size());
    edges = std::move(new_edges);
    lt->labels = std::move(new_labels);
    return true;
  }
  return false;
}

std::optional<LabeledTrajectory> TrajectoryGenerator::MakeTrajectory(
    const SdPairInfo& info, int route_index, double start_time,
    bool inject_detour) {
  LabeledTrajectory lt;
  lt.traj.id = next_id_++;
  lt.traj.start_time = start_time;
  lt.traj.edges = info.normal_routes[route_index];
  lt.labels.assign(lt.traj.edges.size(), 0);
  if (inject_detour) {
    if (!SpliceDetour(info, &lt)) return std::nullopt;
    if (rng_.Bernoulli(config_.second_detour_prob)) {
      SpliceDetour(info, &lt);  // best effort; single detour is fine
    }
  }
  return lt;
}

Dataset TrajectoryGenerator::Generate() {
  BuildPairs();
  Dataset ds;
  for (const auto& info : pairs_) {
    const int count = static_cast<int>(rng_.UniformInt(
        config_.min_trajs_per_pair, config_.max_trajs_per_pair));
    for (int t = 0; t < count; ++t) {
      const double start_time = rng_.Uniform(0.0, 86400.0);
      const auto weights = EffectivePopularity(info, start_time);
      const int route = static_cast<int>(rng_.Categorical(weights));
      const bool anomalous = rng_.Bernoulli(config_.anomaly_ratio);
      auto lt = MakeTrajectory(info, route, start_time, anomalous);
      if (!lt.has_value()) {
        lt = MakeTrajectory(info, route, start_time, false);
      }
      ds.Add(std::move(*lt));
    }
  }
  return ds;
}

}  // namespace rl4oasd::traj
