// Synthetic trajectory workload generator. Substitutes the proprietary DiDi
// Chengdu/Xi'an taxi data with a controllable workload that has the same
// statistical structure the detection task depends on:
//   * a set of SD pairs, each with a handful of distinct "normal" routes
//     followed by the overwhelming majority of trajectories (with a skewed
//     popularity distribution over routes),
//   * a small fraction of trajectories containing one or two contiguous
//     detour subtrajectories off the normal routes,
//   * ground-truth per-edge anomaly labels recorded at injection time
//     (substituting the paper's manual labeling), and
//   * optional time-of-day popularity drift for the concept-drift
//     experiments (Figures 6-7).
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "roadnet/road_network.h"
#include "traj/dataset.h"
#include "traj/types.h"

namespace rl4oasd::traj {

struct GeneratorConfig {
  int num_sd_pairs = 100;
  int min_trajs_per_pair = 30;
  int max_trajs_per_pair = 120;
  int routes_per_pair = 3;        // distinct normal routes per SD pair
  double popularity_skew = 1.0;   // route r gets weight 1/(r+1)^skew
  double anomaly_ratio = 0.05;    // fraction of trajectories with a detour
  double second_detour_prob = 0.25;  // anomalous trips with two detours
  double detour_frac_min = 0.15;  // detour span as a fraction of route length
  double detour_frac_max = 0.35;
  double detour_penalty = 8.0;    // weight multiplier that pushes detours off
                                  // normal-route edges
  double min_pair_dist_m = 2500;  // SD pairs must be at least this far apart
  double max_pair_dist_m = 7000;
  int min_route_edges = 10;       // discard degenerate pairs
  int drift_parts = 0;            // >1 enables popularity rotation per
                                  // day-part (concept drift)
  uint64_t seed = 123;
};

/// Everything known about one generated SD pair (exposed for tests, benches,
/// and the case studies).
struct SdPairInfo {
  SdPair sd;
  std::vector<std::vector<EdgeId>> normal_routes;  // most popular first
  std::vector<double> base_popularity;             // sums to 1
};

/// Deterministic workload generator over one road network.
class TrajectoryGenerator {
 public:
  TrajectoryGenerator(const roadnet::RoadNetwork* net, GeneratorConfig config);

  /// Generates the whole dataset. Trajectory ids are assigned sequentially.
  Dataset Generate();

  /// SD pair metadata populated by Generate().
  const std::vector<SdPairInfo>& pairs() const { return pairs_; }

  /// Generates one trajectory on a specific pair/route (exposed for tests).
  /// If `inject_detour`, a detour is spliced in; returns std::nullopt when
  /// detour injection fails repeatedly (caller should fall back to normal).
  std::optional<LabeledTrajectory> MakeTrajectory(const SdPairInfo& info,
                                                  int route_index,
                                                  double start_time,
                                                  bool inject_detour);

  /// Route popularity weights effective at `start_time`, accounting for
  /// drift (popularity rotation across day parts when drift_parts > 1).
  std::vector<double> EffectivePopularity(const SdPairInfo& info,
                                          double start_time) const;

 private:
  /// Picks SD pairs and computes their normal routes.
  void BuildPairs();

  /// Splices one detour into `lt` between two anchor indices; returns false
  /// if no deviating alternative path exists.
  bool SpliceDetour(const SdPairInfo& info, LabeledTrajectory* lt);

  const roadnet::RoadNetwork* net_;
  GeneratorConfig config_;
  Rng rng_;
  std::vector<SdPairInfo> pairs_;
  int64_t next_id_ = 0;
};

}  // namespace rl4oasd::traj
