#include "traj/gps_sampler.h"

#include <cmath>

namespace rl4oasd::traj {

namespace {
constexpr double kMetersPerDegLat = 111320.0;
}

GpsSampler::GpsSampler(const roadnet::RoadNetwork* net,
                       GpsSamplerConfig config, uint64_t seed)
    : net_(net), config_(config), rng_(seed) {}

RawTrajectory GpsSampler::Sample(const MapMatchedTrajectory& traj) {
  RawTrajectory raw;
  raw.id = traj.id;
  if (traj.edges.empty()) return raw;

  const double speed_factor =
      rng_.Uniform(config_.speed_factor_min, config_.speed_factor_max);

  double t = traj.start_time;
  double next_sample = t;
  // Drive each edge from its start vertex to its end vertex.
  for (EdgeId e : traj.edges) {
    const auto& edge = net_->edge(e);
    const auto& a = net_->vertex(edge.from).pos;
    const auto& b = net_->vertex(edge.to).pos;
    const double speed = edge.speed_limit_mps * speed_factor;
    const double duration = edge.length_m / std::max(speed, 0.1);
    const double t_end = t + duration;
    while (next_sample <= t_end) {
      const double frac = duration > 0.0 ? (next_sample - t) / duration : 0.0;
      roadnet::LatLon p = roadnet::Lerp(a, b, frac);
      // Add isotropic Gaussian noise in a local meter frame.
      const double meters_per_deg_lon =
          kMetersPerDegLat * std::cos(p.lat * 3.14159265358979 / 180.0);
      p.lat += rng_.Gaussian(0.0, config_.noise_sigma_m) / kMetersPerDegLat;
      p.lon += rng_.Gaussian(0.0, config_.noise_sigma_m) / meters_per_deg_lon;
      // Only draw for dropout when enabled, so dropout_prob == 0 leaves the
      // RNG stream (and thus every seeded dataset) unchanged.
      const bool dropped = config_.dropout_prob > 0.0 &&
                           rng_.Uniform(0.0, 1.0) < config_.dropout_prob;
      if (!dropped) raw.points.push_back(RawPoint{p, next_sample});
      next_sample +=
          rng_.Uniform(config_.min_interval_s, config_.max_interval_s);
    }
    t = t_end;
  }
  return raw;
}

}  // namespace rl4oasd::traj
