// Simulates raw GPS traces from map-matched trajectories: a virtual vehicle
// drives the edge sequence at each segment's speed while a receiver samples
// noisy fixes every 2-4 seconds (the paper's sampling rate, Table II). Used
// to exercise the map-matching substrate end to end.
#pragma once

#include "common/rng.h"
#include "roadnet/road_network.h"
#include "traj/types.h"

namespace rl4oasd::traj {

struct GpsSamplerConfig {
  double min_interval_s = 2.0;
  double max_interval_s = 4.0;
  double noise_sigma_m = 10.0;   // GPS position noise (std dev)
  double speed_factor_min = 0.7; // vehicles drive at 70-110% of limit
  double speed_factor_max = 1.1;
  // Probability that a generated fix is dropped (receiver outage). Useful
  // for exercising the map matcher's gap handling; 0 keeps the RNG stream
  // identical to earlier configs.
  double dropout_prob = 0.0;
};

/// Samples a noisy raw trajectory from a map-matched one.
class GpsSampler {
 public:
  GpsSampler(const roadnet::RoadNetwork* net, GpsSamplerConfig config,
             uint64_t seed = 99);

  RawTrajectory Sample(const MapMatchedTrajectory& traj);

 private:
  const roadnet::RoadNetwork* net_;
  GpsSamplerConfig config_;
  Rng rng_;
};

}  // namespace rl4oasd::traj
