#include "traj/types.h"

#include "common/logging.h"

namespace rl4oasd::traj {

std::vector<Subtrajectory> ExtractAnomalousRuns(
    const std::vector<uint8_t>& labels) {
  std::vector<Subtrajectory> runs;
  int begin = -1;
  for (int i = 0; i < static_cast<int>(labels.size()); ++i) {
    if (labels[i] && begin < 0) {
      begin = i;
    } else if (!labels[i] && begin >= 0) {
      runs.push_back({begin, i});
      begin = -1;
    }
  }
  if (begin >= 0) runs.push_back({begin, static_cast<int>(labels.size())});
  return runs;
}

int TimeSlotOf(double start_time_seconds, int granularity_hours) {
  RL4_CHECK_GT(granularity_hours, 0);
  int slot = static_cast<int>(start_time_seconds / 3600.0) / granularity_hours;
  const int n = NumTimeSlots(granularity_hours);
  if (slot < 0) slot = 0;
  if (slot >= n) slot = n - 1;
  return slot;
}

int NumTimeSlots(int granularity_hours) {
  return (24 + granularity_hours - 1) / granularity_hours;
}

}  // namespace rl4oasd::traj
