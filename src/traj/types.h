// Core trajectory data types: raw GPS trajectories, map-matched trajectories
// (edge sequences), SD pairs, time slots, and labeled subtrajectories.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "roadnet/road_network.h"

namespace rl4oasd::traj {

using roadnet::EdgeId;

/// One GPS fix.
struct RawPoint {
  roadnet::LatLon pos;
  double t = 0.0;  // seconds since midnight
};

/// A raw (pre-map-matching) trajectory.
struct RawTrajectory {
  int64_t id = -1;
  std::vector<RawPoint> points;
};

/// Source-destination pair, identified by the first and last road segment.
struct SdPair {
  EdgeId source = roadnet::kInvalidEdge;
  EdgeId dest = roadnet::kInvalidEdge;

  bool operator==(const SdPair&) const = default;
  bool operator<(const SdPair& o) const {
    return source != o.source ? source < o.source : dest < o.dest;
  }
};

struct SdPairHash {
  size_t operator()(const SdPair& p) const {
    return std::hash<int64_t>()((static_cast<int64_t>(p.source) << 32) ^
                                static_cast<uint32_t>(p.dest));
  }
};

/// A map-matched trajectory: a connected sequence of road segments plus the
/// trip's starting time (used for time-slot grouping).
struct MapMatchedTrajectory {
  int64_t id = -1;
  std::vector<EdgeId> edges;
  double start_time = 0.0;  // seconds since midnight

  size_t size() const { return edges.size(); }
  bool empty() const { return edges.empty(); }
  SdPair sd() const {
    if (edges.empty()) return {};
    return SdPair{edges.front(), edges.back()};
  }
};

/// Half-open index range [begin, end) into a trajectory's edge sequence,
/// denoting one contiguous anomalous subtrajectory.
struct Subtrajectory {
  int begin = 0;
  int end = 0;  // exclusive

  int length() const { return end - begin; }
  bool operator==(const Subtrajectory&) const = default;
};

/// A map-matched trajectory with per-edge ground-truth anomaly labels
/// (0 = normal, 1 = anomalous).
struct LabeledTrajectory {
  MapMatchedTrajectory traj;
  std::vector<uint8_t> labels;  // parallel to traj.edges

  bool HasAnomaly() const {
    for (uint8_t l : labels)
      if (l) return true;
    return false;
  }
};

/// Extracts maximal runs of label 1 as subtrajectories.
std::vector<Subtrajectory> ExtractAnomalousRuns(
    const std::vector<uint8_t>& labels);

/// Time-slot index of a trip start time. `granularity_hours` divides the day;
/// the default 1-hour granularity yields 24 slots as in the paper.
int TimeSlotOf(double start_time_seconds, int granularity_hours = 1);

/// Number of slots for a granularity.
int NumTimeSlots(int granularity_hours = 1);

}  // namespace rl4oasd::traj
