// Baseline detector tests: each method trains, labels trajectories with the
// required invariants, beats chance on an easy synthetic task, and the
// threshold tuner improves F1.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/ctss.h"
#include "baselines/dbtod.h"
#include "baselines/detector_iface.h"
#include "baselines/iboat.h"
#include "baselines/seq_vae.h"
#include "baselines/transition_frequency.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace rl4oasd::baselines {
namespace {

using ::rl4oasd::testing::SmallDataset;
using ::rl4oasd::testing::SmallGrid;

struct BaselineCase {
  std::string name;
  std::function<std::unique_ptr<SubtrajectoryDetector>(
      const roadnet::RoadNetwork*)>
      make;
};

std::vector<BaselineCase> AllBaselines() {
  std::vector<BaselineCase> cases;
  cases.push_back({"TransitionFrequency", [](const roadnet::RoadNetwork*) {
                     return std::make_unique<TransitionFrequencyDetector>();
                   }});
  cases.push_back({"IBOAT", [](const roadnet::RoadNetwork*) {
                     return std::make_unique<IboatDetector>();
                   }});
  cases.push_back({"CTSS", [](const roadnet::RoadNetwork* net) {
                     return std::make_unique<CtssDetector>(net);
                   }});
  cases.push_back({"DBTOD", [](const roadnet::RoadNetwork* net) {
                     DbtodConfig cfg;
                     cfg.epochs = 2;
                     return std::make_unique<DbtodDetector>(net, cfg);
                   }});
  for (VaeVariant v : {VaeVariant::kSae, VaeVariant::kVsae,
                       VaeVariant::kGmVsae, VaeVariant::kSdVsae}) {
    cases.push_back({VaeVariantName(v), [v](const roadnet::RoadNetwork* net) {
                       SeqVaeConfig cfg;
                       cfg.variant = v;
                       cfg.embed_dim = 12;
                       cfg.hidden_dim = 12;
                       cfg.latent_dim = 6;
                       cfg.epochs = 1;
                       cfg.max_train_trajs = 150;
                       return std::make_unique<SeqVaeDetector>(net, cfg);
                     }});
  }
  return cases;
}

class BaselineSuite : public ::testing::TestWithParam<size_t> {
 protected:
  static void SetUpTestSuite() {
    net_ = new roadnet::RoadNetwork(SmallGrid());
    auto full = SmallDataset(*net_, 6, 0.25, 4242);
    Rng rng(9);
    auto [train, test] = full.Split(full.size() * 2 / 3, &rng);
    train_ = new traj::Dataset(std::move(train));
    test_ = new traj::Dataset(std::move(test));
  }
  static void TearDownTestSuite() {
    delete net_;
    delete train_;
    delete test_;
    net_ = nullptr;
    train_ = nullptr;
    test_ = nullptr;
  }

  static roadnet::RoadNetwork* net_;
  static traj::Dataset* train_;
  static traj::Dataset* test_;
};

roadnet::RoadNetwork* BaselineSuite::net_ = nullptr;
traj::Dataset* BaselineSuite::train_ = nullptr;
traj::Dataset* BaselineSuite::test_ = nullptr;

TEST_P(BaselineSuite, TrainsAndDetectsWithValidLabels) {
  const auto cases = AllBaselines();
  const auto& c = cases[GetParam()];
  auto detector = c.make(net_);
  EXPECT_EQ(detector->name(), c.name);
  detector->Fit(*train_);
  for (size_t k = 0; k < std::min<size_t>(test_->size(), 20); ++k) {
    const auto& t = (*test_)[k].traj;
    const auto labels = detector->Detect(t);
    ASSERT_EQ(labels.size(), t.edges.size());
    for (uint8_t l : labels) EXPECT_LE(l, 1);
  }
}

TEST_P(BaselineSuite, TunedDetectorBeatsChanceOnEasyTask) {
  const auto cases = AllBaselines();
  const auto& c = cases[GetParam()];
  auto detector = c.make(net_);
  detector->Fit(*train_);
  detector->Tune(*test_);
  eval::F1Evaluator ev;
  for (const auto& lt : test_->trajs()) {
    ev.Add(lt.labels, detector->Detect(lt.traj));
  }
  const auto s = ev.Compute();
  // Not all baselines are good at this task (that is the paper's point),
  // but every method should clear a low bar on an easy synthetic workload.
  EXPECT_GT(s.f1, 0.05) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllMethods, BaselineSuite,
                         ::testing::Range<size_t>(0, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           std::string n = AllBaselines()[info.param].name;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(TransitionFrequencyTest, DetourScoresHigherThanNormal) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 4, 0.3, 7);
  TransitionFrequencyDetector det;
  det.Fit(ds);
  // Ground-truth anomalous edges should receive higher scores on average.
  double anom = 0.0, norm = 0.0;
  int anom_n = 0, norm_n = 0;
  for (const auto& lt : ds.trajs()) {
    const auto scores = det.Scores(lt.traj);
    for (size_t i = 1; i + 1 < scores.size(); ++i) {
      if (lt.labels[i]) {
        anom += scores[i];
        ++anom_n;
      } else {
        norm += scores[i];
        ++norm_n;
      }
    }
  }
  ASSERT_GT(anom_n, 0);
  ASSERT_GT(norm_n, 0);
  EXPECT_GT(anom / anom_n, norm / norm_n + 0.2);
}

TEST(IboatTest, UnknownSdPairAllNormal) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 3);
  IboatDetector det;
  det.Fit(ds);
  traj::MapMatchedTrajectory t;
  t.edges = {0, 1, 2};  // SD pair never seen in training
  t.start_time = 0;
  const auto labels = det.Detect(t);
  EXPECT_EQ(labels, std::vector<uint8_t>(3, 0));
}

TEST(IboatTest, TuneSelectsFromCandidates) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 4, 0.25, 11);
  IboatDetector det;
  det.Fit(ds);
  det.Tune(ds);
  EXPECT_GT(det.threshold(), 0.0);
  EXPECT_LE(det.threshold(), 0.5);
}

TEST(CtssTest, ReferenceRouteScoresNearZero) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 4, 0.15, 21);
  CtssDetector det(&net);
  det.Fit(ds);
  // The most popular route in each pair has (near-)zero Frechet deviation
  // from itself.
  for (const auto& [sd, idxs] : ds.Groups()) {
    // Find a trajectory with no anomaly (likely on a normal route).
    for (size_t i : idxs) {
      if (!ds[i].HasAnomaly()) {
        const auto scores = det.Scores(ds[i].traj);
        // Normal trajectories stay within a block of the reference.
        EXPECT_LT(scores.back(), 600.0);
        break;
      }
    }
    break;
  }
}

TEST(CtssTest, DetourScoresRise) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 5, 0.3, 31);
  CtssDetector det(&net);
  det.Fit(ds);
  double anom = 0.0, norm = 0.0;
  int anom_n = 0, norm_n = 0;
  for (const auto& lt : ds.trajs()) {
    const auto scores = det.Scores(lt.traj);
    for (size_t i = 1; i + 1 < scores.size(); ++i) {
      if (lt.labels[i]) {
        anom += scores[i];
        ++anom_n;
      } else {
        norm += scores[i];
        ++norm_n;
      }
    }
  }
  ASSERT_GT(anom_n, 0);
  EXPECT_GT(anom / anom_n, norm / norm_n);
}

TEST(DbtodTest, PopularTransitionMoreLikely) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 5, 0.2, 41);
  DbtodConfig cfg;
  cfg.epochs = 2;
  DbtodDetector det(&net, cfg);
  det.Fit(ds);
  // Scores on observed (frequent) transitions should be lower than the max.
  const auto& t = ds[0].traj;
  const auto scores = det.Scores(t);
  ASSERT_GT(scores.size(), 2u);
  for (size_t i = 1; i < scores.size(); ++i) {
    EXPECT_GE(scores[i], 0.0);
    EXPECT_LT(scores[i], 11.0);
  }
}

TEST(SeqVaeTest, TrainingReducesScoreOnNormalRoutes) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 3, 0.1, 51);
  SeqVaeConfig cfg;
  cfg.variant = VaeVariant::kVsae;
  cfg.embed_dim = 12;
  cfg.hidden_dim = 12;
  cfg.latent_dim = 6;
  cfg.epochs = 0;  // untrained
  cfg.max_train_trajs = 100;
  SeqVaeDetector untrained(&net, cfg);
  untrained.Fit(ds);
  cfg.epochs = 2;
  SeqVaeDetector trained(&net, cfg);
  trained.Fit(ds);
  double untrained_sum = 0.0, trained_sum = 0.0;
  int n = 0;
  for (size_t k = 0; k < std::min<size_t>(ds.size(), 20); ++k) {
    if (ds[k].HasAnomaly()) continue;
    const auto a = untrained.Scores(ds[k].traj);
    const auto b = trained.Scores(ds[k].traj);
    for (size_t i = 1; i < a.size(); ++i) {
      untrained_sum += a[i];
      trained_sum += b[i];
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(trained_sum, untrained_sum);
}

TEST(ScoreThresholdTest, DetectForcesEndpointsNormal) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 3);
  TransitionFrequencyDetector det;
  det.Fit(ds);
  det.set_threshold(-1.0);  // everything above threshold
  const auto labels = det.Detect(ds[0].traj);
  EXPECT_EQ(labels.front(), 0);
  EXPECT_EQ(labels.back(), 0);
  bool has_one = false;
  for (uint8_t l : labels) has_one |= l;
  EXPECT_TRUE(has_one);
}

}  // namespace
}  // namespace rl4oasd::baselines
