// Tests for the bootstrap confidence-interval evaluator.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/bootstrap.h"

namespace rl4oasd::eval {
namespace {

std::vector<uint8_t> Labels(std::initializer_list<int> l) {
  return std::vector<uint8_t>(l.begin(), l.end());
}

TEST(BootstrapTest, EmptyEvaluatorIsZero) {
  BootstrapEvaluator ev;
  const BootstrapCi ci = ev.F1Ci();
  EXPECT_EQ(ci.point, 0.0);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 0.0);
}

TEST(BootstrapTest, PerfectPredictionsGiveDegenerateInterval) {
  BootstrapEvaluator ev(200);
  for (int i = 0; i < 20; ++i) {
    const auto l = Labels({0, 1, 1, 0, 0, 1, 0});
    ev.Add(l, l);
  }
  const BootstrapCi ci = ev.F1Ci();
  EXPECT_DOUBLE_EQ(ci.point, 1.0);
  EXPECT_DOUBLE_EQ(ci.lo, 1.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
  EXPECT_DOUBLE_EQ(ci.width(), 0.0);
}

TEST(BootstrapTest, IntervalContainsPointEstimateAndIsOrdered) {
  Rng rng(12);
  BootstrapEvaluator ev(500);
  for (int t = 0; t < 40; ++t) {
    std::vector<uint8_t> gt(20), pred(20);
    for (size_t i = 0; i < gt.size(); ++i) {
      gt[i] = rng.Bernoulli(0.3) ? 1 : 0;
      pred[i] = rng.Bernoulli(0.8) ? gt[i] : 1 - gt[i];  // 80% agreement
    }
    ev.Add(std::move(gt), std::move(pred));
  }
  const BootstrapCi ci = ev.F1Ci();
  EXPECT_LE(ci.lo, ci.hi);
  EXPECT_GE(ci.point, ci.lo - 0.05);
  EXPECT_LE(ci.point, ci.hi + 0.05);
  EXPECT_GT(ci.point, 0.0);
  EXPECT_LT(ci.point, 1.0);
  EXPECT_GT(ci.width(), 0.0);  // noisy predictions: genuine uncertainty
}

TEST(BootstrapTest, MoreDataNarrowsTheInterval) {
  auto make = [](int trajs) {
    Rng rng(99);
    BootstrapEvaluator ev(400, 0.95, /*seed=*/5);
    for (int t = 0; t < trajs; ++t) {
      std::vector<uint8_t> gt(15), pred(15);
      for (size_t i = 0; i < gt.size(); ++i) {
        gt[i] = rng.Bernoulli(0.3) ? 1 : 0;
        pred[i] = rng.Bernoulli(0.75) ? gt[i] : 1 - gt[i];
      }
      ev.Add(std::move(gt), std::move(pred));
    }
    return ev.F1Ci();
  };
  const BootstrapCi small = make(15);
  const BootstrapCi large = make(400);
  EXPECT_LT(large.width(), small.width());
}

TEST(BootstrapTest, DeterministicForFixedSeed) {
  auto make = [] {
    BootstrapEvaluator ev(100, 0.9, /*seed=*/17);
    ev.Add(Labels({0, 1, 1, 0}), Labels({0, 1, 0, 0}));
    ev.Add(Labels({0, 0, 1, 0}), Labels({0, 0, 1, 0}));
    ev.Add(Labels({0, 1, 0, 0}), Labels({0, 0, 0, 0}));
    return ev.F1Ci();
  };
  const BootstrapCi a = make();
  const BootstrapCi b = make();
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_EQ(a.point, b.point);
}

TEST(BootstrapTest, WiderConfidenceGivesWiderInterval) {
  auto make = [](double conf) {
    Rng rng(7);
    BootstrapEvaluator ev(400, conf, /*seed=*/3);
    for (int t = 0; t < 30; ++t) {
      std::vector<uint8_t> gt(12), pred(12);
      for (size_t i = 0; i < gt.size(); ++i) {
        gt[i] = rng.Bernoulli(0.35) ? 1 : 0;
        pred[i] = rng.Bernoulli(0.7) ? gt[i] : 1 - gt[i];
      }
      ev.Add(std::move(gt), std::move(pred));
    }
    return ev.F1Ci();
  };
  EXPECT_LE(make(0.5).width(), make(0.99).width() + 1e-12);
}

TEST(BootstrapTest, Tf1AndCustomMetricSelectors) {
  BootstrapEvaluator ev(100);
  ev.Add(Labels({0, 1, 1, 0}), Labels({0, 1, 1, 0}));
  EXPECT_DOUBLE_EQ(ev.Tf1Ci().point, 1.0);
  const BootstrapCi recall =
      ev.Ci([](const Scores& s) { return s.recall; });
  EXPECT_DOUBLE_EQ(recall.point, 1.0);
}

}  // namespace
}  // namespace rl4oasd::eval
