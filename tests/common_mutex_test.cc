// Tests for the annotated mutex wrappers and the debug-build lock-order
// checker (common/mutex.h): the rank hierarchy, the same-rank
// address-order protocol FeedBatch's wave locking relies on, CondVar
// wait/notify, and the torn-log-line regression fixed by serializing the
// logging sink. Death tests only run in debug builds — release compiles
// the checker out entirely.
#include "common/mutex.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace rl4oasd::common {
namespace {

TEST(MutexTest, AscendingRankOrderIsLegal) {
  Mutex shard(lockrank::kFleetShard);
  Mutex trip(lockrank::kFleetTrip);
  Mutex log(lockrank::kLogging);
  {
    MutexLock a(&shard);
    MutexLock b(&trip);
    MutexLock c(&log);  // logging is legal under anything
#ifndef NDEBUG
    EXPECT_EQ(debug::HeldLockCount(), 3u);
#endif
  }
#ifndef NDEBUG
  EXPECT_EQ(debug::HeldLockCount(), 0u);
#endif
}

TEST(MutexTest, SameRankAscendingAddressIsLegal) {
  // The FeedBatch wave protocol in miniature: a runtime-sized set of
  // same-rank trip locks taken in ascending address order via UniqueLock.
  std::vector<std::unique_ptr<Mutex>> trips;
  for (int i = 0; i < 8; ++i) {
    trips.push_back(std::make_unique<Mutex>(lockrank::kFleetTrip));
  }
  std::vector<Mutex*> wave;
  for (const auto& mu : trips) wave.push_back(mu.get());
  std::sort(wave.begin(), wave.end(), std::less<Mutex*>());

  std::vector<UniqueLock> locks;
  for (Mutex* mu : wave) locks.emplace_back(mu);
#ifndef NDEBUG
  EXPECT_EQ(debug::HeldLockCount(), wave.size());
#endif
  locks.clear();
#ifndef NDEBUG
  EXPECT_EQ(debug::HeldLockCount(), 0u);
#endif
}

TEST(MutexTest, UniqueLockMoveAndOutOfOrderRelease) {
  Mutex a(lockrank::kFleetTrip);
  Mutex b(lockrank::kFleetModel);
  UniqueLock la(&a);
  UniqueLock lb(&b);
  EXPECT_TRUE(la.owns());
  UniqueLock moved(std::move(la));
  EXPECT_FALSE(la.owns());  // NOLINT(bugprone-use-after-move) — tested
  EXPECT_TRUE(moved.owns());
  // Release the *earlier* acquisition first: the checker tolerates
  // non-LIFO release (wave teardown order is unspecified).
  moved.Release();
  EXPECT_FALSE(moved.owns());
#ifndef NDEBUG
  EXPECT_EQ(debug::HeldLockCount(), 1u);
#endif
  lb.Release();
#ifndef NDEBUG
  EXPECT_EQ(debug::HeldLockCount(), 0u);
#endif
}

TEST(MutexTest, TryLockContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // A second thread must fail while we hold it, and succeed once released.
  bool second = true;
  std::thread([&mu, &second] { second = mu.TryLock(); }).join();
  EXPECT_FALSE(second);
  mu.Unlock();
  std::thread([&mu, &second] {
    second = mu.TryLock();
    if (second) mu.Unlock();
  }).join();
  EXPECT_TRUE(second);
}

TEST(MutexTest, CondVarWakesWaiter) {
  Mutex mu(lockrank::kDriftPending);
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
#ifndef NDEBUG
    // The lock is held again after Wait returns, stack intact.
    EXPECT_EQ(debug::HeldLockCount(), 1u);
#endif
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)

TEST(MutexDeathTest, RankInversionDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex trip(lockrank::kFleetTrip);
  Mutex shard(lockrank::kFleetShard);
  MutexLock a(&trip);
  EXPECT_DEATH(MutexLock b(&shard), "lock rank order violation");
}

TEST(MutexDeathTest, SameRankDescendingAddressDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex m1(lockrank::kFleetTrip);
  Mutex m2(lockrank::kFleetTrip);
  Mutex* lo = std::less<Mutex*>()(&m1, &m2) ? &m1 : &m2;
  Mutex* hi = lo == &m1 ? &m2 : &m1;
  MutexLock a(hi);
  EXPECT_DEATH(MutexLock b(lo), "lock rank order violation");
}

TEST(MutexDeathTest, RecursiveAcquireDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu;
  MutexLock a(&mu);
  EXPECT_DEATH(mu.Lock(), "recursive acquisition");
}

TEST(MutexDeathTest, ForeignReleaseDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu;
  EXPECT_DEATH(mu.Unlock(), "does not hold");
}

#endif  // !NDEBUG && GTEST_HAS_DEATH_TEST

// ---------------------------------------------------------------------------
// Torn-log-line regression: before logging serialized through the kLogging
// mutex, two threads logging at once could interleave *within* a line.
// With the fix, every captured line is exactly one whole message.

TEST(LoggingConcurrencyTest, ConcurrentLogLinesDoNotTear) {
  std::ostringstream captured;
  std::streambuf* old = std::clog.rdbuf(captured.rdbuf());
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kLines; ++i) {
          RL4_LOG(Info) << "tear-check thread=" << t << " line=" << i
                        << " payload=abcdefghijklmnopqrstuvwxyz";
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  std::clog.rdbuf(old);

  std::istringstream in(captured.str());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    ++count;
    // Each line must be one complete message: prefix, both fields, and the
    // full payload, with nothing from another message spliced in.
    EXPECT_NE(line.find("[INFO"), std::string::npos) << line;
    EXPECT_NE(line.find("tear-check thread="), std::string::npos) << line;
    EXPECT_NE(line.find("payload=abcdefghijklmnopqrstuvwxyz"),
              std::string::npos)
        << line;
    EXPECT_EQ(line.find("payload="), line.rfind("payload=")) << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

}  // namespace
}  // namespace rl4oasd::common
