// Tests for Status/Result, Rng, string utilities, and CSV I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/csv.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace rl4oasd {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad alpha");
}

TEST(StatusTest, CopyAndMove) {
  Status s = Status::IOError("disk");
  Status copy = s;
  EXPECT_EQ(copy.message(), "disk");
  Status moved = std::move(s);
  EXPECT_EQ(moved.message(), "disk");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Status FailingFn() { return Status::Internal("boom"); }
Status PropagatingFn() {
  RL4_RETURN_NOT_OK(FailingFn());
  return Status::OK();
}
Result<int> ValueFn() { return 7; }
Status AssignFn(int* out) {
  RL4_ASSIGN_OR_RETURN(*out, ValueFn());
  return Status::OK();
}

TEST(ResultTest, Macros) {
  EXPECT_EQ(PropagatingFn().code(), StatusCode::kInternal);
  int v = 0;
  EXPECT_TRUE(AssignFn(&v).ok());
  EXPECT_EQ(v, 7);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{2}, int64_t{5});
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) counts[rng.Categorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.03);
}

TEST(RngTest, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(13);
  std::vector<double> w = {0.0, 0.0};
  int c0 = 0;
  for (int i = 0; i < 1000; ++i) c0 += rng.Categorical(w) == 0;
  EXPECT_GT(c0, 300);
  EXPECT_LT(c0, 700);
}

TEST(RngTest, CategoricalSamplerReplaysCategoricalExactly) {
  // The sampler's contract is draw-for-draw bit-identity with
  // Rng::Categorical on a fixed weight vector: same indices AND same RNG
  // consumption, across skewed, uniform, zero-padded, and tiny/huge weight
  // shapes (the skip-gram unigram distribution is the production user).
  Rng shape_rng(99);
  for (int shape = 0; shape < 6; ++shape) {
    std::vector<double> w;
    const size_t n = shape == 0 ? 1 : 7 * (shape + 1) * (shape + 1);
    for (size_t i = 0; i < n; ++i) {
      double v = shape_rng.Uniform();
      if (shape == 1 && i % 3 == 0) v = 0.0;      // interleaved zeros
      if (shape == 2) v = std::pow(v, 8.0);       // heavily skewed
      if (shape == 3) v *= 1e12;                  // large magnitudes
      if (shape == 4) v *= 1e-12;                 // tiny magnitudes
      if (shape == 5 && i % 2 == 0) v = -v;       // negatives clamp to zero
      w.push_back(v);
    }
    CategoricalSampler sampler(w);
    Rng a(1234 + shape);
    Rng b(1234 + shape);
    for (int i = 0; i < 20000; ++i) {
      ASSERT_EQ(sampler.Sample(&a), b.Categorical(w))
          << "shape " << shape << " draw " << i;
    }
    // Identical RNG consumption: the streams must still be in lockstep.
    EXPECT_EQ(a.NextU64(), b.NextU64()) << "shape " << shape;
  }
}

TEST(RngTest, CategoricalSamplerAllZeroFallsBackToUniform) {
  std::vector<double> w = {0.0, -1.0, 0.0};
  CategoricalSampler sampler(w);
  Rng a(13);
  Rng b(13);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(sampler.Sample(&a), b.Categorical(w));
  }
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(17);
  auto s = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(std::unique(s.begin(), s.end()), s.end());
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleAllWhenKExceedsN) {
  Rng rng(17);
  auto s = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(s.size(), 5u);
  std::sort(s.begin(), s.end());
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(s[i], i);
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a"), "a");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ","), "a,b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(StringsTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("4x", &v));
  EXPECT_FALSE(ParseInt64("x4", &v));
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5z", &v));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(CsvTest, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rl4oasd_csv_test.csv")
          .string();
  CsvTable t;
  t.header = {"id", "value"};
  t.rows = {{"1", "a"}, {"2", "b"}};
  ASSERT_TRUE(WriteCsv(path, t).ok());
  auto r = ReadCsv(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->header, t.header);
  EXPECT_EQ(r->rows, t.rows);
  EXPECT_EQ(r->ColumnIndex("value"), 1);
  EXPECT_EQ(r->ColumnIndex("missing"), -1);
  std::remove(path.c_str());
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rl4oasd_csv_test2.csv")
          .string();
  {
    std::ofstream out(path);
    out << "# comment\nid,v\n\n1,2\n# another\n3,4\n";
  }
  auto r = ReadCsv(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto r = ReadCsv("/nonexistent/path/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1;
  EXPECT_GT(sw.ElapsedNanos(), 0);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(TimingAccumulatorTest, MeanAndReset) {
  TimingAccumulator acc;
  acc.Add(1.0);
  acc.Add(3.0);
  EXPECT_DOUBLE_EQ(acc.MeanSeconds(), 2.0);
  EXPECT_EQ(acc.count(), 2);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.MeanSeconds(), 0.0);
}

}  // namespace
}  // namespace rl4oasd
