// ASDNet tests: policy distribution validity, REINFORCE direction, and
// reward function values.
#include "core/asdnet.h"

#include <gtest/gtest.h>

#include "core/rewards.h"

namespace rl4oasd::core {
namespace {

AsdNetConfig TinyConfig() {
  AsdNetConfig cfg;
  cfg.z_dim = 8;
  cfg.label_dim = 8;
  return cfg;
}

nn::Vec MakeZ(float seed) {
  nn::Vec z(8);
  for (size_t i = 0; i < z.size(); ++i) {
    z[i] = seed + 0.1f * static_cast<float>(i);
  }
  return z;
}

TEST(AsdNetTest, ActionProbsAreDistribution) {
  AsdNet net(TinyConfig());
  const auto z = MakeZ(0.3f);
  for (int prev : {0, 1}) {
    const auto p = net.ActionProbs(z.data(), prev);
    EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-5f);
    EXPECT_GT(p[0], 0.0f);
    EXPECT_GT(p[1], 0.0f);
  }
}

TEST(AsdNetTest, PrevLabelAffectsPolicy) {
  AsdNet net(TinyConfig());
  const auto z = MakeZ(0.3f);
  const auto p0 = net.ActionProbs(z.data(), 0);
  const auto p1 = net.ActionProbs(z.data(), 1);
  EXPECT_NE(p0[0], p1[0]);
}

TEST(AsdNetTest, GreedyMatchesArgmax) {
  AsdNet net(TinyConfig());
  const auto z = MakeZ(-0.5f);
  const auto p = net.ActionProbs(z.data(), 0);
  EXPECT_EQ(net.GreedyAction(z.data(), 0), p[1] > p[0] ? 1 : 0);
}

TEST(AsdNetTest, SampleActionFollowsDistribution) {
  AsdNet net(TinyConfig());
  const auto z = MakeZ(0.1f);
  const auto p = net.ActionProbs(z.data(), 0);
  Rng rng(5);
  int ones = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    ones += net.SampleAction(z.data(), 0, &rng);
  }
  EXPECT_NEAR(static_cast<double>(ones) / kN, p[1], 0.03);
}

TEST(AsdNetTest, PositiveRewardReinforcesAction) {
  auto cfg = TinyConfig();
  cfg.lr = 0.01f;
  AsdNet net(cfg);
  const auto z = MakeZ(0.2f);
  const float before = net.ActionProbs(z.data(), 0)[1];
  // Repeatedly reward choosing action 1 in this state.
  for (int i = 0; i < 200; ++i) {
    std::vector<AsdStep> episode(1);
    episode[0].z = z;
    episode[0].prev_label = 0;
    episode[0].action = 1;
    net.ReinforceUpdate(episode, 1.0);
  }
  const float after = net.ActionProbs(z.data(), 0)[1];
  EXPECT_GT(after, before + 0.1f);
}

TEST(AsdNetTest, NegativeRewardSuppressesAction) {
  auto cfg = TinyConfig();
  cfg.lr = 0.01f;
  AsdNet net(cfg);
  const auto z = MakeZ(0.2f);
  const float before = net.ActionProbs(z.data(), 0)[1];
  for (int i = 0; i < 200; ++i) {
    std::vector<AsdStep> episode(1);
    episode[0].z = z;
    episode[0].prev_label = 0;
    episode[0].action = 1;
    net.ReinforceUpdate(episode, -1.0);
  }
  const float after = net.ActionProbs(z.data(), 0)[1];
  EXPECT_LT(after, before - 0.1f);
}

TEST(AsdNetTest, EmptyEpisodeIsNoOp) {
  AsdNet net(TinyConfig());
  EXPECT_DOUBLE_EQ(net.ReinforceUpdate({}, 2.5), 2.5);
}

TEST(RewardTest, LocalRewardSignAndMagnitude) {
  nn::Vec a = {1.0f, 0.0f};
  nn::Vec b = {1.0f, 0.0f};
  nn::Vec c = {0.0f, 1.0f};
  // Same labels + identical vectors: +1.
  EXPECT_NEAR(LocalReward(a, b, 0, 0), 1.0, 1e-6);
  // Different labels + identical vectors: -1 (discontinuity punished most
  // when representations are similar).
  EXPECT_NEAR(LocalReward(a, b, 0, 1), -1.0, 1e-6);
  // Orthogonal vectors: reward magnitude 0 either way.
  EXPECT_NEAR(LocalReward(a, c, 0, 0), 0.0, 1e-6);
  EXPECT_NEAR(LocalReward(a, c, 0, 1), 0.0, 1e-6);
}

TEST(RewardTest, GlobalRewardRange) {
  EXPECT_DOUBLE_EQ(GlobalReward(0.0), 1.0);
  EXPECT_NEAR(GlobalReward(1.0), 0.5, 1e-12);
  EXPECT_LT(GlobalReward(100.0), 0.01);
}

TEST(RewardTest, EpisodeRewardComposition) {
  std::vector<nn::Vec> z = {{1.0f, 0.0f}, {1.0f, 0.0f}, {1.0f, 0.0f}};
  std::vector<uint8_t> labels = {0, 0, 0};
  // All continuous and identical: local mean = 1; global = 1/(1+0) = 1.
  EXPECT_NEAR(EpisodeReward(z, labels, 0.0, true, true), 2.0, 1e-6);
  EXPECT_NEAR(EpisodeReward(z, labels, 0.0, true, false), 1.0, 1e-6);
  EXPECT_NEAR(EpisodeReward(z, labels, 0.0, false, true), 1.0, 1e-6);
  EXPECT_NEAR(EpisodeReward(z, labels, 0.0, false, false), 0.0, 1e-6);
}

TEST(RewardTest, DiscontinuityLowersEpisodeReward) {
  std::vector<nn::Vec> z = {{1.0f, 0.1f}, {1.0f, 0.1f}, {1.0f, 0.1f},
                            {1.0f, 0.1f}};
  const std::vector<uint8_t> smooth = {0, 0, 1, 1};   // one boundary
  const std::vector<uint8_t> jumpy = {0, 1, 0, 1};    // three boundaries
  EXPECT_GT(EpisodeReward(z, smooth, 0.5, true, false),
            EpisodeReward(z, jumpy, 0.5, true, false));
}

}  // namespace
}  // namespace rl4oasd::core
