// Detector mechanics: RNEL rules, Delayed Labeling, Algorithm 1 boundary
// conditions, and streaming-session equivalence.
#include "core/detector.h"

#include <gtest/gtest.h>

#include "core/rl4oasd.h"
#include "test_util.h"

namespace rl4oasd::core {
namespace {

using ::rl4oasd::testing::MakeFigure1Example;

TEST(DelayedLabelingTest, MergesShortGaps) {
  // Gap of 2 zeros between 1s; D = 8 merges it.
  std::vector<uint8_t> labels = {0, 1, 0, 0, 1, 0};
  ApplyDelayedLabeling(&labels, 8);
  EXPECT_EQ(labels, (std::vector<uint8_t>{0, 1, 1, 1, 1, 0}));
}

TEST(DelayedLabelingTest, RespectsDelayBound) {
  // Gap of 4 zeros; D = 3 cannot bridge it (next 1 is 5 positions away).
  std::vector<uint8_t> labels = {1, 0, 0, 0, 0, 1};
  ApplyDelayedLabeling(&labels, 3);
  EXPECT_EQ(labels, (std::vector<uint8_t>{1, 0, 0, 0, 0, 1}));
  // D = 5 bridges it.
  ApplyDelayedLabeling(&labels, 5);
  EXPECT_EQ(labels, (std::vector<uint8_t>{1, 1, 1, 1, 1, 1}));
}

TEST(DelayedLabelingTest, ExactBoundary) {
  // 1 at position 0 and 1 at position D: distance D merges.
  std::vector<uint8_t> labels = {1, 0, 0, 1};
  ApplyDelayedLabeling(&labels, 3);
  EXPECT_EQ(labels, (std::vector<uint8_t>{1, 1, 1, 1}));
  std::vector<uint8_t> labels2 = {1, 0, 0, 1};
  ApplyDelayedLabeling(&labels2, 2);
  EXPECT_EQ(labels2, (std::vector<uint8_t>{1, 0, 0, 1}));
}

TEST(DelayedLabelingTest, NoOpCases) {
  std::vector<uint8_t> empty;
  ApplyDelayedLabeling(&empty, 8);
  EXPECT_TRUE(empty.empty());

  std::vector<uint8_t> zeros = {0, 0, 0};
  ApplyDelayedLabeling(&zeros, 8);
  EXPECT_EQ(zeros, (std::vector<uint8_t>{0, 0, 0}));

  std::vector<uint8_t> single = {0, 1, 0};
  ApplyDelayedLabeling(&single, 8);
  EXPECT_EQ(single, (std::vector<uint8_t>{0, 1, 0}));

  std::vector<uint8_t> disabled = {1, 0, 1};
  ApplyDelayedLabeling(&disabled, 0);
  EXPECT_EQ(disabled, (std::vector<uint8_t>{1, 0, 1}));
}

TEST(DelayedLabelingTest, ChainsMultipleGaps) {
  std::vector<uint8_t> labels = {1, 0, 1, 0, 1};
  ApplyDelayedLabeling(&labels, 2);
  EXPECT_EQ(labels, (std::vector<uint8_t>{1, 1, 1, 1, 1}));
}

class RnelTest : public ::testing::Test {
 protected:
  void SetUp() override { ex_ = ::rl4oasd::testing::MakeFigure1Example(); }
  ::rl4oasd::testing::Figure1Example ex_;
};

TEST_F(RnelTest, Rule1PropagatesThroughChain) {
  // e11 -> e12: e11.out = 1 (only e12 leaves v8) and e12.in = 1: the label
  // propagates whatever it is.
  EXPECT_EQ(RnelDeterministicLabel(ex_.net, ex_.e["e11"], 0, ex_.e["e12"]),
            0);
  EXPECT_EQ(RnelDeterministicLabel(ex_.net, ex_.e["e11"], 1, ex_.e["e12"]),
            1);
}

TEST_F(RnelTest, Rule2NormalCannotTurnAnomalousWithoutChoice) {
  // e15 -> e10: e15.out = 1 (v4's only outgoing is e10... actually v4 has
  // e10 only), e10.in > 1 (e6, e7 and e15 enter v4). With prev label 0 the
  // label stays 0.
  ASSERT_EQ(ex_.net.EdgeOutDegree(ex_.e["e15"]), 1);
  ASSERT_GT(ex_.net.EdgeInDegree(ex_.e["e10"]), 1);
  EXPECT_EQ(RnelDeterministicLabel(ex_.net, ex_.e["e15"], 0, ex_.e["e10"]),
            0);
  // With prev label 1 the policy must decide (an anomaly can end here).
  EXPECT_EQ(RnelDeterministicLabel(ex_.net, ex_.e["e15"], 1, ex_.e["e10"]),
            -1);
}

TEST_F(RnelTest, Rule3AnomalyCannotEndWithoutChoice) {
  // e4 -> e11: e4.out > 1 (e7 and e11 leave v7), e11.in = 1. An anomalous
  // label must continue; a normal label is undetermined (the policy decides
  // whether an anomaly starts).
  ASSERT_GT(ex_.net.EdgeOutDegree(ex_.e["e4"]), 1);
  ASSERT_EQ(ex_.net.EdgeInDegree(ex_.e["e11"]), 1);
  EXPECT_EQ(RnelDeterministicLabel(ex_.net, ex_.e["e4"], 1, ex_.e["e11"]), 1);
  EXPECT_EQ(RnelDeterministicLabel(ex_.net, ex_.e["e4"], 0, ex_.e["e11"]),
            -1);
}

// End-to-end detector behaviour with an untrained model: structural
// invariants hold regardless of the policy.
class DetectorSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakeFigure1Example();
    Rl4OasdConfig cfg;
    cfg.rsr.embed_dim = 8;
    cfg.rsr.nrf_dim = 8;
    cfg.rsr.hidden_dim = 8;
    cfg.asd.label_dim = 8;
    cfg.use_pretrained_embeddings = false;
    cfg.pretrain_samples = 5;
    cfg.pretrain_epochs = 1;
    cfg.joint_samples = 5;
    cfg.epochs_per_traj = 1;
    model_ = std::make_unique<Rl4Oasd>(&ex_.net, cfg);
    model_->Fit(ex_.dataset);
  }

  ::rl4oasd::testing::Figure1Example ex_;
  std::unique_ptr<Rl4Oasd> model_;
};

TEST_F(DetectorSessionTest, SourceAndDestinationAlwaysNormal) {
  traj::MapMatchedTrajectory t;
  t.start_time = 9 * 3600.0;
  t.edges = ex_.t3;
  const auto labels = model_->Detect(t);
  ASSERT_EQ(labels.size(), t.edges.size());
  EXPECT_EQ(labels.front(), 0);
  EXPECT_EQ(labels.back(), 0);
}

TEST_F(DetectorSessionTest, SessionMatchesDetect) {
  traj::MapMatchedTrajectory t;
  t.start_time = 9 * 3600.0;
  t.edges = ex_.t3;
  auto session = model_->StartSession(t.sd(), t.start_time);
  for (auto e : t.edges) session.Feed(e);
  EXPECT_EQ(session.Finish(), model_->Detect(t));
}

TEST_F(DetectorSessionTest, CurrentAnomaliesAvailableMidStream) {
  traj::MapMatchedTrajectory t;
  t.start_time = 9 * 3600.0;
  t.edges = ex_.t3;
  auto session = model_->StartSession(t.sd(), t.start_time);
  for (size_t i = 0; i + 1 < t.edges.size(); ++i) {
    session.Feed(t.edges[i]);
  }
  // Mid-stream monitoring must not crash and runs must be within bounds.
  for (const auto& run : session.CurrentAnomalies()) {
    EXPECT_GE(run.begin, 0);
    EXPECT_LE(run.end, static_cast<int>(t.edges.size()));
    EXPECT_LT(run.begin, run.end);
  }
}

}  // namespace
}  // namespace rl4oasd::core
