// Detector mechanics: RNEL rules, Delayed Labeling, Algorithm 1 boundary
// conditions, and streaming-session equivalence.
#include "core/detector.h"

#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/rl4oasd.h"
#include "test_util.h"

namespace rl4oasd::core {
namespace {

using ::rl4oasd::testing::MakeFigure1Example;

TEST(DelayedLabelingTest, MergesShortGaps) {
  // Gap of 2 zeros between 1s; D = 8 merges it.
  std::vector<uint8_t> labels = {0, 1, 0, 0, 1, 0};
  ApplyDelayedLabeling(&labels, 8);
  EXPECT_EQ(labels, (std::vector<uint8_t>{0, 1, 1, 1, 1, 0}));
}

TEST(DelayedLabelingTest, RespectsDelayBound) {
  // Gap of 4 zeros; D = 3 cannot bridge it (the lookahead scans only 3
  // segments past the boundary).
  std::vector<uint8_t> labels = {1, 0, 0, 0, 0, 1};
  ApplyDelayedLabeling(&labels, 3);
  EXPECT_EQ(labels, (std::vector<uint8_t>{1, 0, 0, 0, 0, 1}));
  // D = 4 reaches the far 1 exactly at the edge of the window.
  ApplyDelayedLabeling(&labels, 4);
  EXPECT_EQ(labels, (std::vector<uint8_t>{1, 1, 1, 1, 1, 1}));
}

TEST(DelayedLabelingTest, ExactBoundary) {
  // A zero gap of exactly D merges: the paper scans D more segments past
  // the boundary, and the far 1 sits on the D-th of them.
  std::vector<uint8_t> labels = {1, 0, 0, 1};
  ApplyDelayedLabeling(&labels, 2);
  EXPECT_EQ(labels, (std::vector<uint8_t>{1, 1, 1, 1}));
  // A gap of D+1 is out of reach.
  std::vector<uint8_t> labels2 = {1, 0, 0, 1};
  ApplyDelayedLabeling(&labels2, 1);
  EXPECT_EQ(labels2, (std::vector<uint8_t>{1, 0, 0, 1}));
}

TEST(DelayedLabelingTest, BoundaryValuesAroundD) {
  // Regression for the historical off-by-one (gaps of exactly D failed to
  // merge): sweep gap = D-1, D, D+1 for several D.
  for (int d = 1; d <= 8; ++d) {
    for (int gap = d - 1; gap <= d + 1; ++gap) {
      if (gap < 1) continue;
      std::vector<uint8_t> labels(static_cast<size_t>(gap) + 2, 0);
      labels.front() = 1;
      labels.back() = 1;
      ApplyDelayedLabeling(&labels, d);
      const bool should_merge = gap <= d;
      std::vector<uint8_t> expected(labels.size(), should_merge ? 1 : 0);
      expected.front() = 1;
      expected.back() = 1;
      EXPECT_EQ(labels, expected) << "D=" << d << " gap=" << gap;
    }
  }
}

TEST(DelayedLabelingTest, NoOpCases) {
  std::vector<uint8_t> empty;
  ApplyDelayedLabeling(&empty, 8);
  EXPECT_TRUE(empty.empty());

  std::vector<uint8_t> zeros = {0, 0, 0};
  ApplyDelayedLabeling(&zeros, 8);
  EXPECT_EQ(zeros, (std::vector<uint8_t>{0, 0, 0}));

  std::vector<uint8_t> single = {0, 1, 0};
  ApplyDelayedLabeling(&single, 8);
  EXPECT_EQ(single, (std::vector<uint8_t>{0, 1, 0}));

  std::vector<uint8_t> disabled = {1, 0, 1};
  ApplyDelayedLabeling(&disabled, 0);
  EXPECT_EQ(disabled, (std::vector<uint8_t>{1, 0, 1}));
}

TEST(DelayedLabelingTest, ChainsMultipleGaps) {
  std::vector<uint8_t> labels = {1, 0, 1, 0, 1};
  ApplyDelayedLabeling(&labels, 2);
  EXPECT_EQ(labels, (std::vector<uint8_t>{1, 1, 1, 1, 1}));
}

// ---------------------------------------------------------------------------
// RunTracker: the O(1)-per-label incremental form of DL run extraction.

/// Runs a label stream through a tracker, returning {runs finalized by
/// Push, pending run at end of stream (if any)}.
std::pair<std::vector<traj::Subtrajectory>, std::optional<traj::Subtrajectory>>
TrackStream(const std::vector<uint8_t>& labels, int d) {
  RunTracker tracker(d);
  std::vector<traj::Subtrajectory> closed;
  for (uint8_t label : labels) {
    if (const auto run = tracker.Push(label)) closed.push_back(*run);
  }
  return {closed, tracker.pending()};
}

TEST(RunTrackerTest, MatchesBatchDelayedLabelingOnRandomStreams) {
  // The tracker's finalized-runs-plus-pending must equal the runs that the
  // batch pipeline (ApplyDelayedLabeling + ExtractAnomalousRuns) computes
  // over the same sequence, for every D.
  Rng rng(123);
  for (int d : {0, 1, 2, 4, 8}) {
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<uint8_t> labels(1 + rng.UniformInt(uint64_t{70}));
      for (auto& l : labels) l = rng.Bernoulli(0.35) ? 1 : 0;
      auto [closed, pending] = TrackStream(labels, d);
      if (pending.has_value()) closed.push_back(*pending);

      auto batch = labels;
      ApplyDelayedLabeling(&batch, d);
      EXPECT_EQ(closed, traj::ExtractAnomalousRuns(batch))
          << "D=" << d << " trial=" << trial;
    }
  }
}

TEST(RunTrackerTest, RunSurvivesDlMergeWithoutDuplicateClose) {
  // Regression for the duplicate/lost-alert bug: the old serving path
  // treated a run as closed at its first trailing 0 and tracked "already
  // alerted" by run *index*, so a later DL merge shifted indices and
  // re-reported or skipped runs. The tracker never finalizes a run while DL
  // can still merge it, so each final run surfaces exactly once.
  RunTracker tracker(2);
  EXPECT_EQ(tracker.Push(1), std::nullopt);  // run opens at 0
  EXPECT_EQ(tracker.Push(0), std::nullopt);  // naive closure point
  EXPECT_EQ(tracker.Push(1), std::nullopt);  // DL merges across the gap
  ASSERT_TRUE(tracker.pending().has_value());
  EXPECT_EQ(*tracker.pending(), (traj::Subtrajectory{0, 3}));
  EXPECT_EQ(tracker.Push(0), std::nullopt);  // zeros begin
  EXPECT_EQ(tracker.Push(0), std::nullopt);  // still within the DL window
  const auto closed = tracker.Push(0);       // D+1-th zero: now final
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(*closed, (traj::Subtrajectory{0, 3}));
  EXPECT_EQ(tracker.pending(), std::nullopt);
}

TEST(RunTrackerTest, GapOfExactlyDMerges) {
  RunTracker tracker(3);
  (void)tracker.Push(1);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(tracker.Push(0), std::nullopt);
  EXPECT_EQ(tracker.Push(1), std::nullopt);  // gap == D: one merged run
  ASSERT_TRUE(tracker.pending().has_value());
  EXPECT_EQ(*tracker.pending(), (traj::Subtrajectory{0, 5}));
}

TEST(RunTrackerTest, GapOfDPlusOneClosesTheFirstRun) {
  RunTracker tracker(3);
  (void)tracker.Push(1);
  std::vector<traj::Subtrajectory> closed;
  for (int i = 0; i < 4; ++i) {
    if (const auto run = tracker.Push(0)) closed.push_back(*run);
  }
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0], (traj::Subtrajectory{0, 1}));
  // The next 1 starts a fresh run instead of merging.
  EXPECT_EQ(tracker.Push(1), std::nullopt);
  ASSERT_TRUE(tracker.pending().has_value());
  EXPECT_EQ(tracker.pending()->begin, 5);
}

TEST(RunTrackerTest, ZeroDelayClosesOnFirstZero) {
  RunTracker tracker(0);
  (void)tracker.Push(1);
  const auto closed = tracker.Push(0);
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(*closed, (traj::Subtrajectory{0, 1}));
}

class RnelTest : public ::testing::Test {
 protected:
  void SetUp() override { ex_ = ::rl4oasd::testing::MakeFigure1Example(); }
  ::rl4oasd::testing::Figure1Example ex_;
};

TEST_F(RnelTest, Rule1PropagatesThroughChain) {
  // e11 -> e12: e11.out = 1 (only e12 leaves v8) and e12.in = 1: the label
  // propagates whatever it is.
  EXPECT_EQ(RnelDeterministicLabel(ex_.net, ex_.e["e11"], 0, ex_.e["e12"]),
            0);
  EXPECT_EQ(RnelDeterministicLabel(ex_.net, ex_.e["e11"], 1, ex_.e["e12"]),
            1);
}

TEST_F(RnelTest, Rule2NormalCannotTurnAnomalousWithoutChoice) {
  // e15 -> e10: e15.out = 1 (v4's only outgoing is e10... actually v4 has
  // e10 only), e10.in > 1 (e6, e7 and e15 enter v4). With prev label 0 the
  // label stays 0.
  ASSERT_EQ(ex_.net.EdgeOutDegree(ex_.e["e15"]), 1);
  ASSERT_GT(ex_.net.EdgeInDegree(ex_.e["e10"]), 1);
  EXPECT_EQ(RnelDeterministicLabel(ex_.net, ex_.e["e15"], 0, ex_.e["e10"]),
            0);
  // With prev label 1 the policy must decide (an anomaly can end here).
  EXPECT_EQ(RnelDeterministicLabel(ex_.net, ex_.e["e15"], 1, ex_.e["e10"]),
            -1);
}

TEST_F(RnelTest, Rule3AnomalyCannotEndWithoutChoice) {
  // e4 -> e11: e4.out > 1 (e7 and e11 leave v7), e11.in = 1. An anomalous
  // label must continue; a normal label is undetermined (the policy decides
  // whether an anomaly starts).
  ASSERT_GT(ex_.net.EdgeOutDegree(ex_.e["e4"]), 1);
  ASSERT_EQ(ex_.net.EdgeInDegree(ex_.e["e11"]), 1);
  EXPECT_EQ(RnelDeterministicLabel(ex_.net, ex_.e["e4"], 1, ex_.e["e11"]), 1);
  EXPECT_EQ(RnelDeterministicLabel(ex_.net, ex_.e["e4"], 0, ex_.e["e11"]),
            -1);
}

// End-to-end detector behaviour with an untrained model: structural
// invariants hold regardless of the policy.
class DetectorSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakeFigure1Example();
    Rl4OasdConfig cfg;
    cfg.rsr.embed_dim = 8;
    cfg.rsr.nrf_dim = 8;
    cfg.rsr.hidden_dim = 8;
    cfg.asd.label_dim = 8;
    cfg.use_pretrained_embeddings = false;
    cfg.pretrain_samples = 5;
    cfg.pretrain_epochs = 1;
    cfg.joint_samples = 5;
    cfg.epochs_per_traj = 1;
    model_ = std::make_unique<Rl4Oasd>(&ex_.net, cfg);
    model_->Fit(ex_.dataset);
  }

  ::rl4oasd::testing::Figure1Example ex_;
  std::unique_ptr<Rl4Oasd> model_;
};

TEST_F(DetectorSessionTest, SourceAndDestinationAlwaysNormal) {
  traj::MapMatchedTrajectory t;
  t.start_time = 9 * 3600.0;
  t.edges = ex_.t3;
  const auto labels = model_->Detect(t);
  ASSERT_EQ(labels.size(), t.edges.size());
  EXPECT_EQ(labels.front(), 0);
  EXPECT_EQ(labels.back(), 0);
}

TEST_F(DetectorSessionTest, SessionMatchesDetect) {
  traj::MapMatchedTrajectory t;
  t.start_time = 9 * 3600.0;
  t.edges = ex_.t3;
  auto session = model_->StartSession(t.sd(), t.start_time);
  for (auto e : t.edges) session.Feed(e);
  EXPECT_EQ(session.Finish(), model_->Detect(t));
}

TEST_F(DetectorSessionTest, CurrentAnomaliesAvailableMidStream) {
  traj::MapMatchedTrajectory t;
  t.start_time = 9 * 3600.0;
  t.edges = ex_.t3;
  auto session = model_->StartSession(t.sd(), t.start_time);
  for (size_t i = 0; i + 1 < t.edges.size(); ++i) {
    session.Feed(t.edges[i]);
  }
  // Mid-stream monitoring must not crash and runs must be within bounds.
  for (const auto& run : session.CurrentAnomalies()) {
    EXPECT_GE(run.begin, 0);
    EXPECT_LE(run.end, static_cast<int>(t.edges.size()));
    EXPECT_LT(run.begin, run.end);
  }
}

TEST_F(DetectorSessionTest, IncrementalRunsCoverFinalRunsExactlyOnce) {
  // The alert stream — TakeNewlyClosedRuns drained after every Feed plus
  // one final drain after Finish — must cover the final post-processed runs
  // exactly: no duplicate, no loss, begins strictly increasing. This is the
  // session-level duplicate/lost-alert regression.
  for (const auto& lt : ex_.dataset.trajs()) {
    const auto& t = lt.traj;
    if (t.edges.size() < 2) continue;
    auto session = model_->StartSession(t.sd(), t.start_time);
    std::vector<traj::Subtrajectory> alerted;
    for (auto e : t.edges) {
      session.Feed(e);
      for (const auto& run : session.TakeNewlyClosedRuns()) {
        alerted.push_back(run);
      }
    }
    const auto final_labels = session.Finish();
    for (const auto& run : session.TakeNewlyClosedRuns()) {
      alerted.push_back(run);
    }
    EXPECT_EQ(alerted, traj::ExtractAnomalousRuns(final_labels));
    for (size_t i = 1; i < alerted.size(); ++i) {
      EXPECT_GT(alerted[i].begin, alerted[i - 1].begin);
    }
    // A second drain must be empty (each run surfaces exactly once).
    EXPECT_TRUE(session.TakeNewlyClosedRuns().empty());
  }
}

}  // namespace
}  // namespace rl4oasd::core
