// Tests for the anomaly explainer, mostly on the paper's Figure 1 worked
// example where every statistic is hand-computable.
#include <gtest/gtest.h>

#include "core/explainer.h"
#include "test_util.h"

namespace rl4oasd::core {
namespace {

class ExplainerFigure1Test : public ::testing::Test {
 protected:
  ExplainerFigure1Test() : ex_(rl4oasd::testing::MakeFigure1Example()) {
    pre_.Fit(ex_.dataset);
  }

  traj::MapMatchedTrajectory T3() const {
    traj::MapMatchedTrajectory t;
    t.edges = ex_.t3;
    t.start_time = 9 * 3600.0;
    return t;
  }

  rl4oasd::testing::Figure1Example ex_;
  Preprocessor pre_;
};

TEST_F(ExplainerFigure1Test, ReportsTheDetourRun) {
  AnomalyExplainer explainer(&ex_.net, &pre_);
  // Ground-truth labels of T3: detour spans positions [3, 8).
  const std::vector<uint8_t> labels = {0, 0, 0, 1, 1, 1, 1, 1, 0};
  const auto reports = explainer.Explain(T3(), labels);
  ASSERT_EQ(reports.size(), 1u);
  const AnomalyReport& r = reports[0];

  EXPECT_EQ(r.range.begin, 3);
  EXPECT_EQ(r.range.end, 8);
  EXPECT_EQ(r.edges.size(), 5u);
  EXPECT_EQ(r.edges.front(), ex_.e["e11"]);
  EXPECT_EQ(r.edges.back(), ex_.e["e15"]);

  // Anchors: e4 before the run, e10 after it.
  EXPECT_EQ(r.left_anchor, ex_.e["e4"]);
  EXPECT_EQ(r.right_anchor, ex_.e["e10"]);

  // Only T3 (1 of 10 trajectories) travels the detour transitions.
  EXPECT_NEAR(r.mean_transition_fraction, 0.1, 1e-9);
  EXPECT_NEAR(r.min_transition_fraction, 0.1, 1e-9);

  // The skipped alternative out of e4 is e7, traveled by T2's 4 trips
  // (4/10 of the group).
  EXPECT_NEAR(r.best_alternative_popularity, 0.4, 1e-9);

  // The alternative between anchors (e4 -> e7 -> e10) has one interior
  // edge; the detour has five — a positive extra distance.
  EXPECT_GT(r.detour_length_m, 0.0);
  EXPECT_GE(r.alternative_length_m, 0.0);
  EXPECT_GT(r.extra_distance_m, 0.0);
  EXPECT_NEAR(r.detour_length_m - r.alternative_length_m, r.extra_distance_m,
              1e-9);
}

TEST_F(ExplainerFigure1Test, NormalTrajectoryYieldsNoReports) {
  AnomalyExplainer explainer(&ex_.net, &pre_);
  traj::MapMatchedTrajectory t1;
  t1.edges = ex_.t1;
  t1.start_time = 9 * 3600.0;
  EXPECT_TRUE(
      explainer.Explain(t1, std::vector<uint8_t>(t1.edges.size(), 0))
          .empty());
}

TEST_F(ExplainerFigure1Test, RunTouchingTrajectoryEndHasNoRightAnchor) {
  AnomalyExplainer explainer(&ex_.net, &pre_);
  std::vector<uint8_t> labels(ex_.t3.size(), 0);
  labels[labels.size() - 2] = 1;
  labels[labels.size() - 1] = 1;  // run extends to the final segment
  const auto reports = explainer.Explain(T3(), labels);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].right_anchor, roadnet::kInvalidEdge);
  EXPECT_LT(reports[0].alternative_length_m, 0.0);  // not computable
  EXPECT_NE(reports[0].left_anchor, roadnet::kInvalidEdge);
}

TEST_F(ExplainerFigure1Test, MultipleRunsYieldMultipleReports) {
  AnomalyExplainer explainer(&ex_.net, &pre_);
  std::vector<uint8_t> labels = {0, 1, 0, 0, 1, 1, 0, 0, 0};
  const auto reports = explainer.Explain(T3(), labels);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].range, (traj::Subtrajectory{1, 2}));
  EXPECT_EQ(reports[1].range, (traj::Subtrajectory{4, 6}));
}

TEST_F(ExplainerFigure1Test, SummaryMentionsTheKeyNumbers) {
  AnomalyExplainer explainer(&ex_.net, &pre_);
  const std::vector<uint8_t> labels = {0, 0, 0, 1, 1, 1, 1, 1, 0};
  const auto reports = explainer.Explain(T3(), labels);
  ASSERT_EQ(reports.size(), 1u);
  const std::string s = reports[0].Summary();
  EXPECT_NE(s.find("[3, 8)"), std::string::npos);
  EXPECT_NE(s.find("5 segments"), std::string::npos);
  EXPECT_NE(s.find("10.00%"), std::string::npos);  // mean transition fraction
  EXPECT_NE(s.find("40.00%"), std::string::npos);  // alternative popularity
}

TEST_F(ExplainerFigure1Test, WorksOnGeneratedWorkload) {
  // Smoke over a generated city: every ground-truth run must produce a
  // report whose fractions are low (that is what made it a detour).
  auto net = rl4oasd::testing::SmallGrid();
  auto ds = rl4oasd::testing::SmallDataset(net, 4, 0.15);
  Preprocessor pre;
  pre.Fit(ds);
  AnomalyExplainer explainer(&net, &pre);

  int runs_seen = 0;
  for (const auto& lt : ds.trajs()) {
    if (!lt.HasAnomaly()) continue;
    const auto reports = explainer.Explain(lt.traj, lt.labels);
    ASSERT_EQ(reports.size(),
              traj::ExtractAnomalousRuns(lt.labels).size());
    for (const auto& r : reports) {
      ++runs_seen;
      EXPECT_GT(r.detour_length_m, 0.0);
      EXPECT_LE(r.min_transition_fraction,
                r.mean_transition_fraction + 1e-12);
      // Detour transitions are rare by construction (the anomaly ratio is
      // 15% and routes split over 3 normal routes, so < half the group).
      EXPECT_LT(r.mean_transition_fraction, 0.5);
    }
  }
  EXPECT_GT(runs_seen, 0);
}

}  // namespace
}  // namespace rl4oasd::core
