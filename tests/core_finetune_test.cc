// Contracts of the online-learning path (paper Section V-G, "RL4OASD-FT")
// that the drift-adaptation service builds on:
//   * io::CloneModel yields an independent, fingerprint-identical copy;
//   * Rl4Oasd::FineTune is deterministic under a fixed seed (two clones
//     fine-tuned on the same data end up byte-identical);
//   * max_samples truncates the training pass but never the statistics
//     ingest (max_samples = 0 equals a pure Preprocessor::Update pass);
//   * every ingested trajectory bumps Preprocessor::stats_generation(),
//     which is exactly what invalidates FeatureCache's memoized features.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/feature_cache.h"
#include "core/preprocess.h"
#include "core/rl4oasd.h"
#include "io/model_io.h"
#include "test_util.h"
#include "traj/dataset.h"

namespace rl4oasd::core {
namespace {

Rl4OasdConfig TinyConfig() {
  Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;
  cfg.rsr.embed_dim = 16;
  cfg.rsr.nrf_dim = 8;
  cfg.rsr.hidden_dim = 16;
  cfg.asd.label_dim = 8;
  cfg.embedding.dim = 16;
  cfg.embedding.epochs = 1;
  cfg.pretrain_samples = 60;
  cfg.pretrain_epochs = 2;
  cfg.joint_samples = 120;
  cfg.epochs_per_traj = 1;
  return cfg;
}

/// One small trained model shared by the suite; FineTune inputs come from a
/// second generated dataset (different seed, so mostly unseen SD pairs —
/// the concept-drift shape).
class FineTuneTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new roadnet::RoadNetwork(testing::SmallGrid());
    historical_ = new traj::Dataset(testing::SmallDataset(*net_, 4, 0.12));
    fresh_ = new traj::Dataset(testing::SmallDataset(*net_, 3, 0.1, 123));
    model_ = new Rl4Oasd(net_, TinyConfig());
    model_->Fit(*historical_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete fresh_;
    delete historical_;
    delete net_;
    model_ = nullptr;
    fresh_ = nullptr;
    historical_ = nullptr;
    net_ = nullptr;
  }

  static std::unique_ptr<Rl4Oasd> Clone() {
    auto cloned = io::CloneModel(net_, *model_);
    EXPECT_TRUE(cloned.ok()) << cloned.status().ToString();
    return std::move(cloned).value();
  }

  static roadnet::RoadNetwork* net_;
  static traj::Dataset* historical_;
  static traj::Dataset* fresh_;
  static Rl4Oasd* model_;
};

roadnet::RoadNetwork* FineTuneTest::net_ = nullptr;
traj::Dataset* FineTuneTest::historical_ = nullptr;
traj::Dataset* FineTuneTest::fresh_ = nullptr;
Rl4Oasd* FineTuneTest::model_ = nullptr;

TEST_F(FineTuneTest, CloneIsFingerprintIdenticalAndIndependent) {
  const uint64_t original = io::ModelFingerprint(*model_);
  auto clone = Clone();
  EXPECT_EQ(io::ModelFingerprint(*clone), original);

  // Mutating the clone must leave the original untouched — that is the
  // whole point of cloning before a background fine-tune.
  clone->FineTune(*fresh_, 10);
  EXPECT_NE(io::ModelFingerprint(*clone), original);
  EXPECT_EQ(io::ModelFingerprint(*model_), original);
}

TEST_F(FineTuneTest, FineTuneIsDeterministicUnderFixedSeed) {
  auto a = Clone();
  auto b = Clone();
  a->FineTune(*fresh_, 40);
  b->FineTune(*fresh_, 40);
  EXPECT_EQ(io::ModelFingerprint(*a), io::ModelFingerprint(*b));
  // And it did something: the fine-tuned weights differ from the original.
  EXPECT_NE(io::ModelFingerprint(*a), io::ModelFingerprint(*model_));
}

TEST_F(FineTuneTest, MaxSamplesTruncatesTrainingButNotStatisticsIngest) {
  // max_samples = 0: the statistics ingest every trajectory, the networks
  // see none of them — byte-for-byte the same outcome as a bare
  // Preprocessor::Update pass over the clone.
  auto truncated = Clone();
  truncated->FineTune(*fresh_, 0);

  auto stats_only = Clone();
  for (const auto& lt : fresh_->trajs()) {
    stats_only->mutable_preprocessor()->Update(lt.traj);
  }
  EXPECT_EQ(io::ModelFingerprint(*truncated),
            io::ModelFingerprint(*stats_only));

  // A nonzero budget additionally moves the network weights.
  auto trained = Clone();
  trained->FineTune(*fresh_, 20);
  EXPECT_NE(io::ModelFingerprint(*trained), io::ModelFingerprint(*truncated));
}

TEST_F(FineTuneTest, FineTuneBumpsStatsGenerationPerIngestedTrajectory) {
  auto clone = Clone();
  const uint64_t before = clone->preprocessor().stats_generation();
  clone->FineTune(*fresh_, 0);
  // Every trajectory of >= 2 edges funnels through Update, which bumps the
  // generation once per call (FeatureCache's invalidation signal).
  size_t ingestible = 0;
  for (const auto& lt : fresh_->trajs()) {
    if (lt.traj.edges.size() >= 2) ++ingestible;
  }
  EXPECT_EQ(clone->preprocessor().stats_generation(), before + ingestible);
}

TEST(FeatureCacheDriftTest, StatsGenerationBumpInvalidatesCachedFeatures) {
  // Figure 1 worked example: the detour route T3 appears once in history,
  // so its detour transitions are noisy-labeled anomalous. Flooding the
  // statistics with T3 trips (the concept-drift scenario: the detour
  // becomes the popular route) must flip the cached labels.
  auto ex = testing::MakeFigure1Example();
  Preprocessor pp({.alpha = 0.2, .delta = 0.3});
  pp.Fit(ex.dataset);

  FeatureCache cache(&pp);
  const traj::MapMatchedTrajectory t3{/*id=*/1000, ex.t3, 9 * 3600.0};
  const std::vector<uint8_t> before = cache.NoisyLabels(t3);
  ASSERT_EQ(before, pp.NoisyLabels(t3));
  EXPECT_TRUE(t3.size() > 3 && before[3] == 1)
      << "detour transitions should start out anomalous";
  // A warm cache returns the memoized vector while the generation holds.
  EXPECT_EQ(cache.NoisyLabels(t3), before);

  const uint64_t gen_before = pp.stats_generation();
  for (int i = 0; i < 30; ++i) {
    pp.Update(traj::MapMatchedTrajectory{2000 + i, ex.t3, 9 * 3600.0});
  }
  EXPECT_GT(pp.stats_generation(), gen_before);

  // The generation bump invalidates the entry: the cache recomputes against
  // the drifted statistics instead of replaying the stale memo.
  const std::vector<uint8_t> after = cache.NoisyLabels(t3);
  EXPECT_EQ(after, pp.NoisyLabels(t3));
  EXPECT_NE(after, before);
  EXPECT_EQ(after, std::vector<uint8_t>(t3.size(), 0))
      << "the now-popular detour should be labeled fully normal";
}

}  // namespace
}  // namespace rl4oasd::core
