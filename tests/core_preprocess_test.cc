// Preprocessor tests, anchored on the paper's Figure 1 worked example
// (Section IV-B/IV-C): transition fractions, noisy labels with alpha, and
// normal route features with delta must match the numbers in the paper.
#include "core/preprocess.h"

#include <gtest/gtest.h>

#include "core/feature_cache.h"

#include "test_util.h"

namespace rl4oasd::core {
namespace {

using ::rl4oasd::testing::Figure1Example;
using ::rl4oasd::testing::MakeFigure1Example;

class PreprocessFigure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakeFigure1Example();
    PreprocessConfig cfg;
    cfg.alpha = 0.5;
    cfg.delta = 0.3;
    pre_ = std::make_unique<Preprocessor>(cfg);
    pre_->Fit(ex_.dataset);
  }

  traj::MapMatchedTrajectory T3() const {
    traj::MapMatchedTrajectory t;
    t.id = 100;
    t.start_time = 9 * 3600.0 + 1800.0;
    t.edges = ex_.t3;
    return t;
  }

  Figure1Example ex_;
  std::unique_ptr<Preprocessor> pre_;
};

TEST_F(PreprocessFigure1Test, TransitionFractionsMatchPaper) {
  // Paper: fraction sequence of T3 is <1.0, 0.5, 0.5, 0.1, 0.1, 0.1, 0.1,
  // 0.1, 1.0>.
  const auto fractions = pre_->TransitionFractions(T3());
  const std::vector<double> expected = {1.0, 0.5, 0.5, 0.1, 0.1,
                                        0.1, 0.1, 0.1, 1.0};
  ASSERT_EQ(fractions.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(fractions[i], expected[i], 1e-9) << "position " << i;
  }
}

TEST_F(PreprocessFigure1Test, NoisyLabelsMatchPaper) {
  // Paper: with alpha = 0.5 the noisy labels of T3 are <0,1,1,1,1,1,1,1,0>.
  const auto labels = pre_->NoisyLabels(T3());
  const std::vector<uint8_t> expected = {0, 1, 1, 1, 1, 1, 1, 1, 0};
  EXPECT_EQ(labels, expected);
}

TEST_F(PreprocessFigure1Test, NormalRouteFeaturesMatchPaper) {
  // Paper: with delta = 0.3, T1 (0.5) and T2 (0.4) are normal routes and the
  // extracted features of T3 are <0,0,0,1,1,1,1,1,0> (e2 and e4 are normal
  // because their incoming transitions occur on T2).
  const auto nrf = pre_->NormalRouteFeatures(T3());
  const std::vector<uint8_t> expected = {0, 0, 0, 1, 1, 1, 1, 1, 0};
  EXPECT_EQ(nrf, expected);
}

TEST_F(PreprocessFigure1Test, HigherDeltaExcludesT2) {
  // With delta = 0.45 only T1 (fraction 0.5) is normal, so the transitions
  // unique to T2 become anomalous features.
  PreprocessConfig cfg;
  cfg.alpha = 0.5;
  cfg.delta = 0.45;
  Preprocessor pre(cfg);
  pre.Fit(ex_.dataset);
  const auto nrf = pre.NormalRouteFeatures(T3());
  // e2's incoming transition <e1,e2> only occurs on T2/T3 which are not
  // normal now.
  const std::vector<uint8_t> expected = {0, 1, 1, 1, 1, 1, 1, 1, 0};
  EXPECT_EQ(nrf, expected);
}

TEST_F(PreprocessFigure1Test, NormalRouteTrajectoryAllNormal) {
  traj::MapMatchedTrajectory t;
  t.start_time = 9 * 3600.0;
  t.edges = ex_.t1;
  const auto nrf = pre_->NormalRouteFeatures(t);
  EXPECT_EQ(nrf, std::vector<uint8_t>(ex_.t1.size(), 0));
  const auto labels = pre_->NoisyLabels(t);
  // T1 transitions all have fraction 0.5, not > 0.5, so interior segments
  // are noisily labeled 1 with alpha = 0.5 — noisy labels are noisy.
  EXPECT_EQ(labels.front(), 0);
  EXPECT_EQ(labels.back(), 0);
}

TEST_F(PreprocessFigure1Test, SlotFallback) {
  // A query in an unseen time slot falls back to the all-slot aggregate.
  traj::MapMatchedTrajectory t = T3();
  t.start_time = 3 * 3600.0;  // 03:00, no data in this slot
  const auto fractions = pre_->TransitionFractions(t);
  EXPECT_NEAR(fractions[1], 0.5, 1e-9);
}

TEST_F(PreprocessFigure1Test, UnknownSdPairGivesZeroFractions) {
  traj::MapMatchedTrajectory t;
  t.start_time = 9 * 3600.0;
  // A trajectory whose SD pair was never seen.
  t.edges = {ex_.e["e2"], ex_.e["e4"], ex_.e["e7"]};
  const auto fractions = pre_->TransitionFractions(t);
  EXPECT_EQ(fractions.front(), 1.0);  // source defined as 1.0
  EXPECT_EQ(fractions.back(), 1.0);   // destination defined as 1.0
  EXPECT_EQ(fractions[1], 0.0);
}

TEST_F(PreprocessFigure1Test, StreamingApiMatchesBatch) {
  const auto t = T3();
  const auto nrf = pre_->NormalRouteFeatures(t);
  const auto fractions = pre_->TransitionFractions(t);
  for (size_t i = 1; i + 1 < t.edges.size(); ++i) {
    EXPECT_EQ(pre_->NormalRouteFeatureAt(t.sd(), t.start_time,
                                         t.edges[i - 1], t.edges[i]),
              nrf[i]);
    EXPECT_NEAR(pre_->TransitionFractionAt(t.sd(), t.start_time,
                                           t.edges[i - 1], t.edges[i]),
                fractions[i], 1e-12);
  }
}

TEST_F(PreprocessFigure1Test, UpdateShiftsFractions) {
  // Online learning: adding more T3-like trajectories raises the fraction of
  // the detour transitions.
  Preprocessor pre(PreprocessConfig{});
  pre.Fit(ex_.dataset);
  traj::MapMatchedTrajectory t = T3();
  const double before =
      pre.TransitionFractionAt(t.sd(), t.start_time, ex_.e["e4"],
                               ex_.e["e11"]);
  for (int i = 0; i < 10; ++i) {
    traj::MapMatchedTrajectory extra = t;
    extra.id = 1000 + i;
    pre.Update(extra);
  }
  const double after = pre.TransitionFractionAt(t.sd(), t.start_time,
                                                ex_.e["e4"], ex_.e["e11"]);
  EXPECT_GT(after, before);
}

TEST(PreprocessTest, NumGroupsCountsSlots) {
  auto ex = MakeFigure1Example();
  Preprocessor pre(PreprocessConfig{});
  pre.Fit(ex.dataset);
  // All trajectories share one SD pair and one time slot.
  EXPECT_EQ(pre.NumGroups(), 1u);
}

TEST(PreprocessTest, StatsGenerationAdvancesOnEveryMutation) {
  auto ex = MakeFigure1Example();
  Preprocessor pre(PreprocessConfig{});
  const uint64_t g0 = pre.stats_generation();
  pre.Fit(ex.dataset);
  const uint64_t g1 = pre.stats_generation();
  EXPECT_GT(g1, g0);
  traj::MapMatchedTrajectory t;
  t.id = 7;
  t.start_time = 9 * 3600.0;
  t.edges = ex.t3;
  pre.Update(t);
  EXPECT_GT(pre.stats_generation(), g1);
  const uint64_t g2 = pre.stats_generation();
  pre.ImportState(pre.ExportState());
  EXPECT_GT(pre.stats_generation(), g2);
}

TEST(FeatureCacheTest, ReturnsCachedValuesAndInvalidatesOnDrift) {
  auto ex = MakeFigure1Example();
  PreprocessConfig cfg;
  cfg.alpha = 0.5;
  cfg.delta = 0.3;
  Preprocessor pre(cfg);
  pre.Fit(ex.dataset);
  FeatureCache cache(&pre);

  traj::MapMatchedTrajectory t;
  t.id = 100;
  t.start_time = 9 * 3600.0 + 1800.0;
  t.edges = ex.t3;

  // Cached results match direct computation, and repeated lookups return
  // the same storage (no recompute).
  const auto& noisy = cache.NoisyLabels(t);
  const auto& nrf = cache.NormalRouteFeatures(t);
  EXPECT_EQ(noisy, pre.NoisyLabels(t));
  EXPECT_EQ(nrf, pre.NormalRouteFeatures(t));
  EXPECT_EQ(&cache.NoisyLabels(t), &noisy);
  EXPECT_EQ(&cache.NormalRouteFeatures(t), &nrf);
  EXPECT_EQ(cache.size(), 1u);

  // Drift: shift the popular transition mass so the statistics (and with
  // them the noisy labels) move. The generation bump must invalidate the
  // cached entry and re-derive from the new statistics.
  const auto before = noisy;
  for (int i = 0; i < 60; ++i) {
    traj::MapMatchedTrajectory extra;
    extra.id = 1000 + i;
    extra.start_time = t.start_time;
    extra.edges = ex.t3;
    pre.Update(extra);
  }
  EXPECT_EQ(cache.NoisyLabels(t), pre.NoisyLabels(t));
  EXPECT_NE(cache.NoisyLabels(t), before)
      << "drifted statistics should change the labels in this setup";

  // A different trajectory object at the same generation gets its own
  // entry; the first entry's storage is untouched.
  traj::MapMatchedTrajectory other = t;
  other.id = 101;
  (void)cache.NoisyLabels(other);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PreprocessTest, TimeSlots) {
  EXPECT_EQ(traj::NumTimeSlots(1), 24);
  EXPECT_EQ(traj::NumTimeSlots(3), 8);
  EXPECT_EQ(traj::TimeSlotOf(0.0, 1), 0);
  EXPECT_EQ(traj::TimeSlotOf(9.5 * 3600, 1), 9);
  EXPECT_EQ(traj::TimeSlotOf(23.9 * 3600, 1), 23);
  EXPECT_EQ(traj::TimeSlotOf(86399.0, 3), 7);
  // Out-of-range times clamp.
  EXPECT_EQ(traj::TimeSlotOf(90000.0, 1), 23);
  EXPECT_EQ(traj::TimeSlotOf(-5.0, 1), 0);
}

}  // namespace
}  // namespace rl4oasd::core
