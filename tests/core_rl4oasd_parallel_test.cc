// Equivalence tests for the data-parallel pretrain path
// (Rl4OasdConfig::trainer_threads).
//
// Contract hierarchy:
//   * trainer_threads == 1 is THE sequential path (same code), so the
//     golden regression pins it; nothing to test here.
//   * A single worker sink (AccumulateGradients + ApplyWorkerGradients) is
//     bit-identical to TrainStep — no staleness with one in flight.
//   * PretrainAsd sharding is bit-identical by construction (RSRNet is
//     frozen while episodes build), folded into the whole-Fit tolerance
//     test below.
//   * PretrainRsr with N > 1 workers applies each wave's gradients against
//     weights up to N-1 steps stale: a deterministic but numerically
//     different optimization path. The tests pin (a) determinism of the
//     threaded schedule and (b) closeness to the sequential result on a
//     small workload (weights within a loose tolerance, detections almost
//     all agreeing).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "core/feature_cache.h"
#include "core/preprocess.h"
#include "core/rl4oasd.h"
#include "core/rsrnet.h"
#include "test_util.h"

namespace rl4oasd::core {
namespace {

Rl4OasdConfig TinyConfig() {
  Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;
  cfg.rsr.embed_dim = 16;
  cfg.rsr.nrf_dim = 8;
  cfg.rsr.hidden_dim = 16;
  cfg.asd.label_dim = 8;
  cfg.embedding.dim = 16;
  cfg.embedding.epochs = 1;
  cfg.pretrain_samples = 60;
  cfg.pretrain_epochs = 2;
  cfg.joint_samples = 80;
  cfg.epochs_per_traj = 1;
  return cfg;
}

TEST(ParallelPretrainTest, SingleWorkerSinkBitIdenticalToTrainStep) {
  const auto net = testing::SmallGrid();
  const auto data = testing::SmallDataset(net, 4, 0.1);
  Preprocessor pre(PreprocessConfig{});
  pre.Fit(data);

  RsrNetConfig cfg;
  cfg.num_edges = net.NumEdges();
  cfg.embed_dim = 16;
  cfg.nrf_dim = 8;
  cfg.hidden_dim = 16;
  RsrNet a(cfg);
  RsrNet b(cfg);  // same seed -> identical weights

  nn::GradientSink sink(*b.registry());
  b.registry()->ZeroGrad();
  size_t trained = 0;
  for (const auto& lt : data.trajs()) {
    const auto& t = lt.traj;
    if (t.edges.size() < 3) continue;
    const auto nrf = pre.NormalRouteFeatures(t);
    const auto labels = pre.NoisyLabels(t);
    const double loss_a = a.TrainStep(t.edges, nrf, labels);
    const double loss_b = b.AccumulateGradients(t.edges, nrf, labels, &sink);
    b.ApplyWorkerGradients(&sink);
    ASSERT_EQ(loss_a, loss_b);
    if (++trained >= 40) break;
  }
  ASSERT_GT(trained, 10u);
  const auto& pa = a.registry()->params();
  const auto& pb = b.registry()->params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t k = 0; k < pa.size(); ++k) {
    ASSERT_EQ(pa[k]->value.size(), pb[k]->value.size());
    EXPECT_EQ(std::memcmp(pa[k]->value.data(), pb[k]->value.data(),
                          pa[k]->value.size() * sizeof(float)),
              0)
        << "weights diverged in " << pa[k]->name;
  }
}

TEST(ParallelPretrainTest, ThreadedFitIsDeterministic) {
  // The deterministic application order must make the threaded path
  // reproducible run-to-run, regardless of worker timing.
  const auto net = testing::SmallGrid();
  const auto data = testing::SmallDataset(net, 5, 0.1);
  auto cfg = TinyConfig();
  cfg.trainer_threads = 4;

  Rl4Oasd m1(&net, cfg);
  m1.Fit(data);
  Rl4Oasd m2(&net, cfg);
  m2.Fit(data);

  size_t checked = 0;
  for (const auto& lt : data.trajs()) {
    if (lt.traj.edges.size() < 3) continue;
    ASSERT_EQ(m1.Detect(lt.traj), m2.Detect(lt.traj))
        << "trajectory " << lt.traj.id;
    ++checked;
  }
  ASSERT_GT(checked, 50u);
}

TEST(ParallelPretrainTest, ThreadedFitCloseToSequentialFit) {
  // Classifier-only ablation isolates the phases trainer_threads actually
  // shards (embeddings + RSR warm start; no joint RL noise): the threaded
  // run must land near the sequential one — stale gradients shift
  // individual weights slightly, not the learned behaviour.
  const auto net = testing::SmallGrid();
  const auto data = testing::SmallDataset(net, 5, 0.1);
  auto cfg = TinyConfig();
  cfg.use_asdnet = false;

  Rl4Oasd seq(&net, cfg);
  seq.Fit(data);
  cfg.trainer_threads = 3;
  Rl4Oasd par(&net, cfg);
  par.Fit(data);

  // Weight closeness (loose: stale-gradient Adam takes a different path).
  const auto& params_seq = seq.mutable_rsrnet()->registry()->params();
  const auto& params_par = par.mutable_rsrnet()->registry()->params();
  ASSERT_EQ(params_seq.size(), params_par.size());
  double max_abs = 0.0;
  double sum_abs = 0.0;
  size_t count = 0;
  for (size_t k = 0; k < params_seq.size(); ++k) {
    const auto& a = params_seq[k]->value;
    const auto& b = params_par[k]->value;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      const double d = std::abs(double(a.data()[i]) - b.data()[i]);
      max_abs = std::max(max_abs, d);
      sum_abs += d;
      ++count;
    }
  }
  EXPECT_LT(sum_abs / static_cast<double>(count), 0.02)
      << "mean weight drift too large (max " << max_abs << ")";

  // Behavioural closeness: detections agree on almost all segments.
  size_t segments = 0;
  size_t disagree = 0;
  for (const auto& lt : data.trajs()) {
    if (lt.traj.edges.size() < 3) continue;
    const auto a = seq.Detect(lt.traj);
    const auto b = par.Detect(lt.traj);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ++segments;
      disagree += a[i] != b[i];
    }
  }
  ASSERT_GT(segments, 1000u);
  EXPECT_LT(static_cast<double>(disagree) / segments, 0.02)
      << disagree << " of " << segments << " segment labels diverged";
}

TEST(ParallelPretrainTest, ThreadedFullPipelineTrainsSanely) {
  // Full pipeline (ASDNet + joint phase) with sharded pretrain: the joint
  // phase is sequential, so this is an integration sanity check that the
  // handoff between the phases stays sound.
  const auto net = testing::SmallGrid();
  const auto data = testing::SmallDataset(net, 4, 0.12);
  auto cfg = TinyConfig();
  cfg.trainer_threads = 2;
  Rl4Oasd model(&net, cfg);
  model.Fit(data);
  EXPECT_GT(model.joint_stats().episodes, 0);
  size_t flagged = 0;
  for (const auto& lt : data.trajs()) {
    if (lt.traj.edges.size() < 3) continue;
    for (uint8_t l : model.Detect(lt.traj)) flagged += l;
  }
  // The detector must neither flag everything nor collapse to silence.
  EXPECT_GT(flagged, 0u);
}

TEST(ParallelPretrainTest, FeatureCacheConcurrentLookupsAreSafe) {
  // Regression for the FeatureCache thread-safety fix: the cache used to
  // be documented "not thread-safe" while trainer shards could warm
  // features in parallel. Concurrent mixed lookups (hits, misses, both
  // feature kinds) over a shared cache must race-cleanly produce exactly
  // the sequentially computed features. Runs under the TSAN CI job via the
  // `concurrency` label.
  const auto net = testing::SmallGrid();
  const auto data = testing::SmallDataset(net, 4, 0.1);
  Preprocessor pre(PreprocessConfig{});
  pre.Fit(data);
  FeatureCache cache(&pre);

  const auto& trajs = data.trajs();
  constexpr int kThreads = 4;
  std::vector<std::vector<int>> mismatches(kThreads);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Each thread walks the dataset from a different offset, so most
        // lookups race with another thread's first-touch of the same entry.
        for (size_t k = 0; k < trajs.size(); ++k) {
          const size_t i = (k + static_cast<size_t>(t) * trajs.size() /
                                    kThreads) %
                           trajs.size();
          const auto& traj = trajs[i].traj;
          if (cache.NoisyLabels(traj) != pre.NoisyLabels(traj) ||
              cache.NormalRouteFeatures(traj) !=
                  pre.NormalRouteFeatures(traj)) {
            mismatches[t].push_back(static_cast<int>(i));
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(mismatches[t].empty())
        << "thread " << t << " saw " << mismatches[t].size()
        << " mismatched feature lookups";
  }
  EXPECT_EQ(cache.size(), trajs.size());
}

}  // namespace
}  // namespace rl4oasd::core
