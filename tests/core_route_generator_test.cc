// Tests for the cold-start route generator: Markov-model fitting, guided
// sampling, fallbacks, and sparse-pair augmentation.
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/route_generator.h"
#include "roadnet/shortest_path.h"
#include "test_util.h"

namespace rl4oasd::core {
namespace {

class RouteGeneratorTest : public ::testing::Test {
 protected:
  RouteGeneratorTest() : net_(testing::SmallGrid()) {}

  roadnet::RoadNetwork net_;
};

TEST_F(RouteGeneratorTest, FitCountsEveryTransition) {
  auto ds = testing::SmallDataset(net_, 4);
  RouteGenerator gen(&net_, {});
  gen.Fit(ds);
  int64_t expected = 0;
  for (const auto& lt : ds.trajs()) {
    expected += static_cast<int64_t>(lt.traj.edges.size()) - 1;
  }
  EXPECT_EQ(gen.total_transitions(), expected);
}

TEST_F(RouteGeneratorTest, SampledRouteIsConnectedAndReachesDestination) {
  auto ds = testing::SmallDataset(net_, 4);
  RouteGenerator gen(&net_, {});
  gen.Fit(ds);

  Rng rng(5);
  int successes = 0;
  for (const auto& [sd, indices] : ds.Groups()) {
    const auto route = gen.SampleRoute(sd.source, sd.dest, &rng);
    if (route.empty()) continue;
    ++successes;
    EXPECT_EQ(route.front(), sd.source);
    EXPECT_EQ(route.back(), sd.dest);
    EXPECT_TRUE(net_.IsConnectedPath(route));
    // No edge repeats (the walk tracks visited edges).
    std::unordered_set<traj::EdgeId> seen(route.begin(), route.end());
    EXPECT_EQ(seen.size(), route.size());
  }
  EXPECT_GT(successes, 0);
}

TEST_F(RouteGeneratorTest, SamplingWorksWithEmptyCorpus) {
  // Pure smoothing + guidance: no Fit call at all.
  RouteGenerator gen(&net_, {});
  Rng rng(9);
  const auto route = gen.SampleRoute(0, 40, &rng);
  if (!route.empty()) {
    EXPECT_TRUE(net_.IsConnectedPath(route));
    EXPECT_EQ(route.back(), 40);
  }
  // GenerateRoutes must always produce at least the shortest-path fallback
  // for a connected pair.
  const auto routes = gen.GenerateRoutes(0, 40, 3);
  ASSERT_FALSE(routes.empty());
  for (const auto& r : routes) {
    EXPECT_TRUE(net_.IsConnectedPath(r));
  }
}

TEST_F(RouteGeneratorTest, GenerateRoutesAreDistinct) {
  auto ds = testing::SmallDataset(net_, 6);
  RouteGenerator gen(&net_, {});
  gen.Fit(ds);
  const auto& sd = ds.Groups().begin()->first;
  const auto routes = gen.GenerateRoutes(sd.source, sd.dest, 4);
  ASSERT_FALSE(routes.empty());
  for (size_t i = 0; i < routes.size(); ++i) {
    for (size_t j = i + 1; j < routes.size(); ++j) {
      EXPECT_NE(routes[i], routes[j]);
    }
  }
}

TEST_F(RouteGeneratorTest, GenerateRoutesDeterministicForSamePair) {
  auto ds = testing::SmallDataset(net_, 4);
  RouteGenerator gen(&net_, {});
  gen.Fit(ds);
  const auto& sd = ds.Groups().begin()->first;
  EXPECT_EQ(gen.GenerateRoutes(sd.source, sd.dest, 3),
            gen.GenerateRoutes(sd.source, sd.dest, 3));
}

TEST_F(RouteGeneratorTest, TrainedModelPrefersObservedRoutes) {
  // Figure 1: T1 (5 trips) and T2 (4 trips) are observed, T3 once. The
  // Markov walk from e1 to e10 should overwhelmingly reproduce T1 or T2.
  auto ex = testing::MakeFigure1Example();
  RouteGeneratorConfig cfg;
  cfg.smoothing = 0.05;
  RouteGenerator gen(&ex.net, cfg);
  gen.Fit(ex.dataset);

  Rng rng(31);
  int observed = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    const auto route = gen.SampleRoute(ex.e["e1"], ex.e["e10"], &rng);
    if (route.empty()) continue;
    ++total;
    if (route == ex.t1 || route == ex.t2) ++observed;
  }
  ASSERT_GT(total, 25);
  EXPECT_GT(observed, total * 7 / 10);
}

TEST_F(RouteGeneratorTest, AugmentTopsUpSparsePairs) {
  auto ds = testing::SmallDataset(net_, 5);
  // Make one pair artificially sparse: drop all but 3 of its trajectories.
  const auto sparse_sd = ds.Groups().begin()->first;
  std::vector<traj::LabeledTrajectory> kept;
  int kept_sparse = 0;
  for (const auto& lt : ds.trajs()) {
    if (lt.traj.sd() == sparse_sd) {
      if (kept_sparse >= 3) continue;
      ++kept_sparse;
    }
    kept.push_back(lt);
  }
  traj::Dataset sparse(std::move(kept));
  ASSERT_EQ(sparse.Group(sparse_sd).size(), 3u);

  RouteGeneratorConfig cfg;
  cfg.target_support = 25;
  RouteGenerator gen(&net_, cfg);
  gen.Fit(sparse);
  const traj::Dataset augmented = gen.AugmentSparsePairs(sparse);

  EXPECT_EQ(augmented.Group(sparse_sd).size(), 25u);
  // Synthetic trajectories are labeled all-normal, carry negative ids, and
  // are valid connected paths on the network.
  int synthetic = 0;
  for (const auto& lt : augmented.trajs()) {
    if (lt.traj.id >= 0) continue;
    ++synthetic;
    EXPECT_FALSE(lt.HasAnomaly());
    EXPECT_TRUE(net_.IsConnectedPath(lt.traj.edges));
    EXPECT_EQ(lt.traj.sd(), sparse_sd);
  }
  EXPECT_EQ(synthetic, 22);
}

TEST_F(RouteGeneratorTest, AugmentLeavesDensePairsAlone) {
  auto ds = testing::SmallDataset(net_, 4);  // >= 50 trajs per pair
  RouteGeneratorConfig cfg;
  cfg.target_support = 25;
  RouteGenerator gen(&net_, cfg);
  gen.Fit(ds);
  const traj::Dataset augmented = gen.AugmentSparsePairs(ds);
  EXPECT_EQ(augmented.size(), ds.size());
}

TEST_F(RouteGeneratorTest, DisconnectedPairYieldsNothing) {
  // Two separate 2-vertex components.
  roadnet::RoadNetwork net;
  auto a = net.AddVertex({30.0, 104.0});
  auto b = net.AddVertex({30.001, 104.0});
  auto c = net.AddVertex({30.1, 104.1});
  auto d = net.AddVertex({30.101, 104.1});
  auto e1 = net.AddEdge(a, b);
  auto e2 = net.AddEdge(c, d);
  net.Build();

  RouteGenerator gen(&net, {});
  Rng rng(1);
  EXPECT_TRUE(gen.SampleRoute(e1, e2, &rng).empty());
  EXPECT_TRUE(gen.GenerateRoutes(e1, e2, 3).empty());
}

}  // namespace
}  // namespace rl4oasd::core
