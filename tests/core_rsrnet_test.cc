// RSRNet tests: shapes, training reduces loss, streaming/sequence
// equivalence, and embedding loading.
#include "core/rsrnet.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rl4oasd::core {
namespace {

RsrNetConfig TinyConfig(size_t num_edges) {
  RsrNetConfig cfg;
  cfg.num_edges = num_edges;
  cfg.embed_dim = 8;
  cfg.nrf_dim = 8;
  cfg.hidden_dim = 8;
  return cfg;
}

TEST(RsrNetTest, ForwardShapes) {
  RsrNet net(TinyConfig(20));
  const std::vector<traj::EdgeId> edges = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> nrf = {0, 0, 1, 1, 0};
  const auto fwd = net.Forward(edges, nrf);
  ASSERT_EQ(fwd.z.size(), 5u);
  ASSERT_EQ(fwd.probs.size(), 5u);
  for (const auto& z : fwd.z) EXPECT_EQ(z.size(), net.z_dim());
  for (const auto& p : fwd.probs) {
    EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-5f);
    EXPECT_GE(p[0], 0.0f);
    EXPECT_GE(p[1], 0.0f);
  }
}

TEST(RsrNetTest, NrfBitChangesRepresentation) {
  RsrNet net(TinyConfig(20));
  const std::vector<traj::EdgeId> edges = {1, 2, 3};
  const auto a = net.Forward(edges, {0, 0, 0});
  const auto b = net.Forward(edges, {0, 1, 0});
  // The NRF half of z at position 1 must differ.
  bool differs = false;
  for (size_t i = 0; i < net.z_dim(); ++i) {
    if (a.z[1][i] != b.z[1][i]) differs = true;
  }
  EXPECT_TRUE(differs);
  // And the LSTM half (first hidden_dim dims) is identical since NRF does
  // not go through the LSTM.
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(a.z[1][i], b.z[1][i]);
  }
}

TEST(RsrNetTest, TrainingReducesLoss) {
  RsrNet net(TinyConfig(30));
  // A fixed supervised task: label 1 exactly on a contiguous span.
  const std::vector<traj::EdgeId> edges = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<uint8_t> nrf = {0, 0, 1, 1, 1, 0, 0, 0};
  const std::vector<uint8_t> labels = {0, 0, 1, 1, 1, 0, 0, 0};
  const double before = net.Loss(edges, nrf, labels);
  for (int i = 0; i < 60; ++i) net.TrainStep(edges, nrf, labels);
  const double after = net.Loss(edges, nrf, labels);
  EXPECT_LT(after, before * 0.5);
  EXPECT_LT(after, 0.3);
}

TEST(RsrNetTest, TrainStepReturnsLoss) {
  RsrNet net(TinyConfig(10));
  const std::vector<traj::EdgeId> edges = {0, 1, 2};
  const std::vector<uint8_t> nrf = {0, 1, 0};
  const std::vector<uint8_t> labels = {0, 1, 0};
  const double loss = net.TrainStep(edges, nrf, labels);
  EXPECT_GT(loss, 0.0);
  EXPECT_NEAR(loss, -std::log(0.5) /*untrained ~ uniform*/, 0.7);
}

TEST(RsrNetTest, StreamingMatchesSequenceForward) {
  RsrNet net(TinyConfig(25));
  const std::vector<traj::EdgeId> edges = {3, 7, 9, 11, 2};
  const std::vector<uint8_t> nrf = {0, 1, 1, 0, 0};
  const auto fwd = net.Forward(edges, nrf);
  RsrStream stream(8);
  for (size_t i = 0; i < edges.size(); ++i) {
    std::array<float, 2> probs;
    const auto z = net.StepForward(edges[i], nrf[i], &stream, &probs);
    ASSERT_EQ(z.size(), fwd.z[i].size());
    for (size_t d = 0; d < z.size(); ++d) {
      EXPECT_NEAR(z[d], fwd.z[i][d], 1e-5f) << "step " << i << " dim " << d;
    }
    EXPECT_NEAR(probs[0], fwd.probs[i][0], 1e-5f);
  }
}

TEST(RsrNetTest, LoadTcfEmbeddings) {
  RsrNet net(TinyConfig(12));
  nn::Matrix table(12, 8);
  for (size_t i = 0; i < table.size(); ++i) {
    table.data()[i] = static_cast<float>(i) * 0.01f;
  }
  net.LoadTcfEmbeddings(table);
  // The first LSTM input is the embedding of the edge; verify indirectly by
  // determinism: two nets loaded with the same table produce identical z.
  RsrNet net2(TinyConfig(12));
  net2.LoadTcfEmbeddings(table);
  const std::vector<traj::EdgeId> edges = {1, 5, 9};
  const std::vector<uint8_t> nrf = {0, 0, 0};
  const auto a = net.Forward(edges, nrf);
  const auto b = net2.Forward(edges, nrf);
  for (size_t d = 0; d < a.z[2].size(); ++d) {
    EXPECT_FLOAT_EQ(a.z[2][d], b.z[2][d]);
  }
}

TEST(RsrNetTest, LossOnEmptyIsZero) {
  RsrNet net(TinyConfig(5));
  EXPECT_DOUBLE_EQ(net.Loss({}, {}, {}), 0.0);
  EXPECT_DOUBLE_EQ(net.TrainStep({}, {}, {}), 0.0);
}

TEST(RsrNetTest, DeterministicAcrossInstances) {
  RsrNet a(TinyConfig(15));
  RsrNet b(TinyConfig(15));
  const std::vector<traj::EdgeId> edges = {1, 2, 3, 4};
  const std::vector<uint8_t> nrf = {0, 1, 0, 1};
  const auto fa = a.Forward(edges, nrf);
  const auto fb = b.Forward(edges, nrf);
  for (size_t i = 0; i < fa.probs.size(); ++i) {
    EXPECT_FLOAT_EQ(fa.probs[i][0], fb.probs[i][0]);
  }
}

TEST(RsrNetGruTest, GruCoreTrainsAndStreams) {
  // RSRNet with the GRU core must expose the same API behaviour as the LSTM
  // version: loss decreases under training and the streaming z matches the
  // sequence forward.
  RsrNetConfig cfg;
  cfg.num_edges = 50;
  cfg.embed_dim = 8;
  cfg.nrf_dim = 4;
  cfg.hidden_dim = 8;
  cfg.rnn_kind = nn::RnnKind::kGru;
  RsrNet net(cfg);

  std::vector<traj::EdgeId> edges = {3, 7, 11, 15, 19, 23};
  std::vector<uint8_t> nrf = {0, 0, 1, 1, 1, 0};
  std::vector<uint8_t> labels = {0, 0, 1, 1, 1, 0};

  const double before = net.Loss(edges, nrf, labels);
  for (int i = 0; i < 60; ++i) net.TrainStep(edges, nrf, labels);
  EXPECT_LT(net.Loss(edges, nrf, labels), before);

  const RsrForward fwd = net.Forward(edges, nrf);
  RsrStream stream(cfg.hidden_dim);
  for (size_t i = 0; i < edges.size(); ++i) {
    std::array<float, 2> probs;
    const nn::Vec z = net.StepForward(edges[i], nrf[i], &stream, &probs);
    ASSERT_EQ(z.size(), fwd.z[i].size());
    for (size_t k = 0; k < z.size(); ++k) {
      EXPECT_NEAR(z[k], fwd.z[i][k], 1e-5f) << "i=" << i;
    }
  }
}

}  // namespace
}  // namespace rl4oasd::core
