// End-to-end drift-recovery scenario on the Figure 6 concept-drift workload:
// a route-popularity swap is injected mid-stream and the self-updating
// service (serve::DriftAdapter) must close the whole loop on its own —
// detect the drift, harvest post-change trips, fine-tune a candidate in the
// background, gate it in shadow, hot-swap it in, and recover detection
// quality — while the fleet-service invariants keep holding:
//   * conservation: started == finished + evicted + active at every
//     checkpoint;
//   * per-trip alert streams stay exactly-once, in order, and equal to the
//     final post-DL label runs, across the swap;
//   * service F1 vs ground truth recovers to within kRecoveryTolerance of
//     its pre-drift level, after troughing during the outage.
//
// Fully deterministic: every seed is pinned, the adapter runs in
// synchronous Poll() mode (no background thread), and nothing waits on
// wall-clock time. A phase-by-phase trace is written next to the binary
// (drift_recovery_trace.txt) so a CI failure ships the whole story as an
// artifact.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "core/rl4oasd.h"
#include "eval/metrics.h"
#include "roadnet/grid_city.h"
#include "serve/drift.h"
#include "serve/fleet.h"
#include "traj/dataset.h"
#include "traj/generator.h"
#include "traj/types.h"

namespace rl4oasd::serve {
namespace {

/// Recovery gate: post-swap service F1 must be within this of the pre-drift
/// level (golden tolerance; see tests/README.md for the pinned values).
constexpr double kRecoveryTolerance = 0.15;
/// The drift must actually hurt before the swap: trough F1 at least this
/// far below the pre-drift level, else the scenario is not testing anything.
constexpr double kMinDegradation = 0.10;
/// Concurrent vehicles in the rolling ingest window.
constexpr size_t kRollingWindow = 8;

/// Records everything the service reports, keyed by vehicle id (each trip
/// gets a unique vehicle in this scenario, so vehicle id == trip identity).
class RecordingSink : public AlertSink {
 public:
  void OnAlert(const Alert& alert) override {
    common::MutexLock lock(&mu_);
    alerts_[alert.vehicle_id].push_back(alert.range);
  }
  void OnTripEnd(int64_t vehicle_id,
                 const std::vector<uint8_t>& final_labels) override {
    common::MutexLock lock(&mu_);
    final_labels_[vehicle_id] = final_labels;
  }
  void OnTripEvicted(int64_t, double, const std::vector<uint8_t>&) override {
    common::MutexLock lock(&mu_);
    ++evictions_;
  }

  const std::map<int64_t, std::vector<traj::Subtrajectory>>& alerts() const {
    return alerts_;
  }
  const std::map<int64_t, std::vector<uint8_t>>& final_labels() const {
    return final_labels_;
  }
  size_t evictions() const { return evictions_; }

 private:
  mutable common::Mutex mu_;
  std::map<int64_t, std::vector<traj::Subtrajectory>> alerts_;
  std::map<int64_t, std::vector<uint8_t>> final_labels_;
  size_t evictions_ = 0;
};

struct Workload {
  roadnet::RoadNetwork net;
  traj::Dataset part0;  // pre-drift half of the day
  traj::Dataset part1;  // post-drift half (route popularities rotated)
};

/// The Figure 6 workload at xi = 2, sized for a test. With the default
/// popularity skew the per-pair route shares are ~0.55/0.27/0.18 — all
/// above alpha/delta, so the pre-drift service is clean — yet the part-1
/// rotation still degrades the incumbent sharply (calibrated on this exact
/// seed: F1 0.72 pre-drift, 0.40 on rotated traffic, 0.62 after
/// fine-tuning on a post-change buffer), because the learned boundary
/// tracks the empirical transition statistics, not just the thresholds.
Workload MakeWorkload() {
  Workload w;
  roadnet::GridCityConfig g;
  g.rows = 10;
  g.cols = 10;
  g.arterial_every = 3;
  g.removal_prob = 0.0;
  g.seed = 7;
  w.net = roadnet::BuildGridCity(g);

  traj::GeneratorConfig t;
  t.num_sd_pairs = 12;
  t.min_trajs_per_pair = 60;
  t.max_trajs_per_pair = 90;
  t.routes_per_pair = 3;
  t.popularity_skew = 1.0;  // shares ~0.55 / 0.27 / 0.18
  t.anomaly_ratio = 0.10;
  t.min_pair_dist_m = 800;
  t.max_pair_dist_m = 2500;
  t.min_route_edges = 8;
  t.drift_parts = 2;
  t.seed = 31;
  traj::TrajectoryGenerator gen(&w.net, t);
  const traj::Dataset full = gen.Generate();
  for (const auto& lt : full.trajs()) {
    (lt.traj.start_time < 43200.0 ? w.part0 : w.part1).Add(lt);
  }
  return w;
}

core::Rl4OasdConfig ScenarioModelConfig() {
  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 4;
  cfg.rsr.embed_dim = 16;
  cfg.rsr.nrf_dim = 16;
  cfg.rsr.hidden_dim = 16;
  cfg.asd.label_dim = 16;
  cfg.embedding.dim = 16;
  cfg.embedding.epochs = 1;
  cfg.embedding.random_walks_per_edge = 1;
  cfg.embedding.walk_length = 10;
  cfg.pretrain_samples = 200;
  cfg.pretrain_epochs = 4;
  cfg.joint_samples = 250;
  cfg.epochs_per_traj = 2;
  return cfg;
}

DriftConfig ScenarioDriftConfig() {
  DriftConfig dc;
  dc.window_points = 400;
  dc.reference_windows = 2;
  dc.cusum_k = 0.02;
  dc.cusum_h = 0.10;
  dc.ratio_threshold = 2.0;
  dc.min_abs_shift = 0.05;
  dc.max_buffer_trips = 400;
  // Enough post-drift trips that the fine-tune's merged statistics pull the
  // newly popular route above delta (the buffer is cleared at the trigger,
  // so all of these postdate the change).
  dc.min_buffer_trips = 250;
  dc.fine_tune_max_samples = 200;
  dc.shadow_trips = 48;
  dc.promote_min_gain = 0.0;
  dc.reject_backoff_points = 2048;
  dc.post_swap_cooldown_points = 0;
  dc.background = false;  // deterministic: the driver steps the loop
  return dc;
}

/// Sorted-by-start-time trip order: the chronological day the fleet lives.
std::vector<const traj::LabeledTrajectory*> Chronological(
    const traj::Dataset& part) {
  std::vector<const traj::LabeledTrajectory*> order;
  for (const auto& lt : part.trajs()) {
    if (lt.traj.edges.size() >= 2) order.push_back(&lt);
  }
  std::sort(order.begin(), order.end(),
            [](const traj::LabeledTrajectory* a,
               const traj::LabeledTrajectory* b) {
              return a->traj.start_time < b->traj.start_time;
            });
  return order;
}

/// Drives a rolling window of concurrent trips through the adapter's
/// monitor with FeedBatch waves (one point per active trip per wave),
/// polling the adaptation loop between waves. `first_vid` numbers the
/// trips; `on_trip_done(vid)` fires after each EndTrip.
template <typename DoneFn>
void FeedRolling(DriftAdapter* adapter,
                 const std::vector<const traj::LabeledTrajectory*>& trips,
                 int64_t first_vid, DoneFn on_trip_done) {
  struct Active {
    int64_t vid;
    const traj::MapMatchedTrajectory* t;
    size_t next = 0;
  };
  std::vector<Active> active;
  size_t cursor = 0;
  std::vector<FleetPoint> wave;
  while (cursor < trips.size() || !active.empty()) {
    while (active.size() < kRollingWindow && cursor < trips.size()) {
      const auto* lt = trips[cursor];
      const int64_t vid = first_vid + static_cast<int64_t>(cursor);
      ASSERT_TRUE(adapter->monitor()
                      ->StartTrip(vid, lt->traj.sd(), lt->traj.start_time)
                      .ok());
      active.push_back({vid, &lt->traj, 0});
      ++cursor;
    }
    wave.clear();
    for (auto& a : active) {
      wave.push_back({a.vid, a.t->edges[a.next],
                      a.t->start_time + 2.0 * static_cast<double>(a.next)});
      ++a.next;
    }
    ASSERT_EQ(adapter->monitor()->FeedBatch(wave), wave.size());
    for (size_t i = active.size(); i-- > 0;) {
      if (active[i].next == active[i].t->edges.size()) {
        ASSERT_TRUE(adapter->monitor()->EndTrip(active[i].vid).ok());
        on_trip_done(active[i].vid);
        active.erase(active.begin() + static_cast<ptrdiff_t>(i));
      }
    }
    adapter->Poll();
  }
}

/// F1 of the service's final labels vs ground truth over trips
/// [from_vid, to_vid) — scoring exactly what the fleet reported.
double ServiceF1(const RecordingSink& sink,
                 const std::map<int64_t, const traj::LabeledTrajectory*>& gt,
                 int64_t from_vid, int64_t to_vid) {
  eval::F1Evaluator ev;
  for (const auto& [vid, labels] : sink.final_labels()) {
    if (vid < from_vid || vid >= to_vid) continue;
    ev.Add(gt.at(vid)->labels, labels);
  }
  return ev.Compute().f1;
}

TEST(DriftRecoveryScenario, ServiceDetectsRetrainsGatesSwapsAndRecovers) {
  Workload w = MakeWorkload();
  ASSERT_GE(w.part0.size(), 300u);
  ASSERT_GE(w.part1.size(), 300u);

  auto model = std::make_shared<core::Rl4Oasd>(&w.net, ScenarioModelConfig());
  model->Fit(w.part0);

  RecordingSink sink;
  DriftAdapter adapter(&w.net, model, FleetConfig{}, ScenarioDriftConfig(),
                       &sink);

  // Ground truth by vehicle id; part-0 trips get vids [0, n0), part-1 trips
  // [n0, n0 + n1).
  const auto order0 = Chronological(w.part0);
  const auto order1 = Chronological(w.part1);
  std::map<int64_t, const traj::LabeledTrajectory*> gt;
  for (size_t i = 0; i < order0.size(); ++i) {
    gt[static_cast<int64_t>(i)] = order0[i];
  }
  const int64_t part1_base = static_cast<int64_t>(order0.size());
  for (size_t i = 0; i < order1.size(); ++i) {
    gt[part1_base + static_cast<int64_t>(i)] = order1[i];
  }

  // --- Phase 1: the pre-drift day. The detector arms; nothing fires.
  FeedRolling(&adapter, order0, 0, [](int64_t) {});
  const DriftStatus pre = adapter.Status();
  EXPECT_TRUE(pre.detector_armed);
  EXPECT_EQ(pre.drift_events, 0u);
  EXPECT_EQ(pre.promotions, 0u);
  EXPECT_EQ(pre.model_generation, 1u);
  const double pre_f1 = ServiceF1(sink, gt, 0, part1_base);
  {
    const FleetStats s = adapter.monitor()->Stats();
    EXPECT_EQ(s.trips_started,
              s.trips_finished + s.trips_evicted +
                  static_cast<int64_t>(adapter.monitor()->ActiveTrips()));
  }

  // --- Phase 2: the popularity swap hits. The loop must detect, retrain,
  // shadow-gate, and promote, all while ingest keeps flowing.
  int64_t first_promoted_done = -1;  // first trip finished post-promotion
  int64_t detect_done = -1;          // trips finished when the detector fired
  FeedRolling(&adapter, order1, part1_base, [&](int64_t vid) {
    const DriftStatus s = adapter.Status();
    if (detect_done < 0 && s.drift_events > 0) detect_done = vid;
    if (first_promoted_done < 0 && s.promotions > 0) {
      first_promoted_done = vid;
    }
  });

  const DriftStatus post = adapter.Status();
  EXPECT_GE(post.drift_events, 1u) << "drift was never detected";
  ASSERT_GE(post.promotions, 1u) << "no candidate was promoted";
  EXPECT_EQ(post.cycles_started, post.promotions + post.rejections);
  EXPECT_EQ(post.model_generation, 1u + post.promotions);
  EXPECT_GE(post.last_candidate_score, post.last_live_score);
  ASSERT_GT(detect_done, 0);
  ASSERT_GT(first_promoted_done, detect_done);

  // --- Phase 3: quality. Trough (between trigger and swap) must show real
  // damage; the recovered plateau must be back within tolerance.
  const double trough_f1 =
      ServiceF1(sink, gt, detect_done, first_promoted_done);
  // Score the plateau a little past the swap so lazily re-primed stragglers
  // (trips started under the old model) age out of the window.
  const int64_t plateau_from = first_promoted_done + kRollingWindow;
  const int64_t end_vid = part1_base + static_cast<int64_t>(order1.size());
  ASSERT_GT(end_vid - plateau_from, 50)
      << "not enough post-swap trips to judge recovery";
  const double recovered_f1 = ServiceF1(sink, gt, plateau_from, end_vid);
  EXPECT_LT(trough_f1, pre_f1 - kMinDegradation)
      << "the injected drift did not hurt the incumbent model";
  EXPECT_GT(recovered_f1, pre_f1 - kRecoveryTolerance)
      << "the promoted model did not recover detection quality";

  // --- Phase 4: service invariants held across the whole story.
  const FleetStats stats = adapter.monitor()->Stats();
  EXPECT_EQ(adapter.monitor()->ActiveTrips(), 0u);
  EXPECT_EQ(stats.trips_started, stats.trips_finished + stats.trips_evicted);
  EXPECT_EQ(stats.trips_evicted, 0);
  EXPECT_EQ(sink.evictions(), 0u);
  EXPECT_EQ(stats.trips_finished,
            static_cast<int64_t>(sink.final_labels().size()));
  // Every alert corresponds exactly-once, in order, to a final label run —
  // including trips that straddled the hot swap.
  size_t total_alerts = 0;
  for (const auto& [vid, labels] : sink.final_labels()) {
    const auto runs = traj::ExtractAnomalousRuns(labels);
    const auto it = sink.alerts().find(vid);
    const auto& got = it == sink.alerts().end()
                          ? std::vector<traj::Subtrajectory>{}
                          : it->second;
    ASSERT_EQ(got.size(), runs.size()) << "vehicle " << vid;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], runs[i]) << "vehicle " << vid;
      if (i > 0) {
        EXPECT_GT(got[i].begin, got[i - 1].begin);
      }
    }
    total_alerts += got.size();
  }
  EXPECT_EQ(stats.alerts_emitted, static_cast<int64_t>(total_alerts));

  // --- Trace for CI artifacts (always written; uploaded on failure).
  if (FILE* f = std::fopen("drift_recovery_trace.txt", "w")) {
    std::fprintf(f,
                 "part0_trips=%zu part1_trips=%zu\n"
                 "pre_f1=%.4f trough_f1=%.4f recovered_f1=%.4f\n"
                 "detect_done_vid=%lld promoted_done_vid=%lld\n"
                 "drift_events=%llu cycles=%llu promotions=%llu "
                 "rejections=%llu cycle_errors=%llu\n"
                 "gate_live=%.4f gate_candidate=%.4f divergent=%llu\n"
                 "generation=%llu harvested=%llu buffer_evictions=%llu\n",
                 order0.size(), order1.size(), pre_f1, trough_f1,
                 recovered_f1, static_cast<long long>(detect_done),
                 static_cast<long long>(first_promoted_done),
                 static_cast<unsigned long long>(post.drift_events),
                 static_cast<unsigned long long>(post.cycles_started),
                 static_cast<unsigned long long>(post.promotions),
                 static_cast<unsigned long long>(post.rejections),
                 static_cast<unsigned long long>(post.cycle_errors),
                 post.last_live_score, post.last_candidate_score,
                 static_cast<unsigned long long>(
                     post.last_shadow_divergent_trips),
                 static_cast<unsigned long long>(post.model_generation),
                 static_cast<unsigned long long>(post.trips_harvested),
                 static_cast<unsigned long long>(post.buffer_evictions));
    std::fclose(f);
  }
}

}  // namespace
}  // namespace rl4oasd::serve
