// Skip-gram (Toast substitute) tests: trained embeddings must place
// co-traveled segments closer than random pairs.
#include <gtest/gtest.h>

#include "embed/skipgram.h"
#include "roadnet/grid_city.h"
#include "traj/generator.h"
#include "nn/tensor.h"
#include "test_util.h"

namespace rl4oasd::embed {
namespace {

using ::rl4oasd::testing::SmallDataset;
using ::rl4oasd::testing::SmallGrid;

TEST(SkipGramTest, OutputShape) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 2);
  SkipGramConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 1;
  cfg.random_walks_per_edge = 1;
  cfg.walk_length = 8;
  SkipGramTrainer trainer(&net, cfg);
  const auto table = trainer.Train(ds);
  EXPECT_EQ(table.rows(), net.NumEdges());
  EXPECT_EQ(table.cols(), 16u);
  // No NaNs.
  for (size_t i = 0; i < table.size(); ++i) {
    EXPECT_FALSE(std::isnan(table.data()[i]));
  }
}

TEST(SkipGramTest, CoTraveledEdgesRankAboveRandom) {
  // A larger city than SmallGrid: in a 10x10 grid everything is within a
  // few hops of everything, so even random edge pairs co-occur in walks.
  // Skip-gram spaces are anisotropic (all cosines are high), so the test
  // checks the *ranking* property: an edge is more similar to a segment it
  // is co-traveled with than to a random segment, most of the time.
  roadnet::GridCityConfig gcfg;
  gcfg.rows = 24;
  gcfg.cols = 24;
  gcfg.removal_prob = 0.0;
  const auto net = roadnet::BuildGridCity(gcfg);
  traj::GeneratorConfig tcfg;
  tcfg.num_sd_pairs = 5;
  tcfg.min_pair_dist_m = 1500;
  tcfg.max_pair_dist_m = 4000;
  tcfg.seed = 5;
  traj::TrajectoryGenerator gen(&net, tcfg);
  const auto ds = gen.Generate();
  SkipGramConfig cfg;
  cfg.dim = 32;
  cfg.epochs = 2;
  cfg.walk_length = 12;
  SkipGramTrainer trainer(&net, cfg);
  const auto table = trainer.Train(ds);

  Rng rng(77);
  int wins = 0, trials = 0;
  for (size_t k = 0; k < std::min<size_t>(ds.size(), 60); ++k) {
    const auto& edges = ds[k].traj.edges;
    for (size_t i = 1; i < edges.size(); i += 3) {
      const float adjacent = nn::CosineSimilarity(
          table.Row(edges[i - 1]), table.Row(edges[i]), table.cols());
      const auto random_edge = rng.UniformInt(net.NumEdges());
      const float random = nn::CosineSimilarity(
          table.Row(edges[i - 1]), table.Row(random_edge), table.cols());
      wins += adjacent > random;
      ++trials;
    }
  }
  ASSERT_GT(trials, 100);
  EXPECT_GT(static_cast<double>(wins) / trials, 0.7)
      << wins << "/" << trials;
}

TEST(SkipGramTest, Deterministic) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 2);
  SkipGramConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 1;
  cfg.random_walks_per_edge = 1;
  cfg.walk_length = 6;
  SkipGramTrainer t1(&net, cfg);
  SkipGramTrainer t2(&net, cfg);
  const auto a = t1.Train(ds);
  const auto b = t2.Train(ds);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

}  // namespace
}  // namespace rl4oasd::embed
