// Metric tests: NER-style F1 / TF1 on hand-computed examples.
#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace rl4oasd::eval {
namespace {

TEST(F1EvaluatorTest, PerfectDetection) {
  F1Evaluator ev;
  ev.Add({0, 1, 1, 0, 0}, {0, 1, 1, 0, 0});
  const Scores s = ev.Compute();
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  EXPECT_DOUBLE_EQ(s.tf1, 1.0);
}

TEST(F1EvaluatorTest, CompleteMiss) {
  F1Evaluator ev;
  ev.Add({0, 1, 1, 0, 0}, {0, 0, 0, 0, 0});
  const Scores s = ev.Compute();
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_EQ(s.num_gt_anomalies, 1);
  EXPECT_EQ(s.num_detected, 0);
}

TEST(F1EvaluatorTest, FalsePositiveOnNormalTrajectory) {
  F1Evaluator ev;
  ev.Add({0, 0, 0, 0, 0}, {0, 1, 1, 0, 0});
  const Scores s = ev.Compute();
  // No ground-truth anomaly: precision denominator counts the spurious run.
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
  EXPECT_EQ(s.num_detected, 1);
}

TEST(F1EvaluatorTest, PartialOverlapJaccard) {
  F1Evaluator ev;
  // GT run [1,5); predicted run [3,7): intersection 2, union 6 -> J = 1/3.
  ev.Add({0, 1, 1, 1, 1, 0, 0, 0}, {0, 0, 0, 1, 1, 1, 1, 0});
  const Scores s = ev.Compute();
  EXPECT_NEAR(s.precision, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.recall, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.f1, 1.0 / 3.0, 1e-12);
  // J = 1/3 < phi = 0.5 so TF1 counts it as a miss.
  EXPECT_DOUBLE_EQ(s.tf1, 0.0);
}

TEST(F1EvaluatorTest, TF1CountsSufficientOverlap) {
  F1Evaluator ev(0.5);
  // GT [1,5), predicted [1,4): intersection 3, union 4 -> J = 0.75 >= 0.5.
  ev.Add({0, 1, 1, 1, 1, 0}, {0, 1, 1, 1, 0, 0});
  const Scores s = ev.Compute();
  EXPECT_NEAR(s.f1, 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(s.tf1, 1.0);
}

TEST(F1EvaluatorTest, MultipleAnomaliesAggregated) {
  F1Evaluator ev;
  // Two GT runs; the first detected exactly, the second missed.
  ev.Add({0, 1, 1, 0, 1, 1, 0}, {0, 1, 1, 0, 0, 0, 0});
  const Scores s = ev.Compute();
  EXPECT_DOUBLE_EQ(s.precision, 1.0);     // 1.0 Jaccard over 1 predicted run
  EXPECT_DOUBLE_EQ(s.recall, 0.5);        // 1.0 over 2 GT runs
  EXPECT_NEAR(s.f1, 2.0 / 3.0, 1e-12);
}

TEST(F1EvaluatorTest, FragmentationLowersPrecision) {
  F1Evaluator ev;
  // One GT run [1,6); detection fragments it into [1,3) and [4,6).
  ev.Add({0, 1, 1, 1, 1, 1, 0}, {0, 1, 1, 0, 1, 1, 0});
  const Scores s = ev.Compute();
  // Union of overlapping predicted runs covers 4 positions, intersection 4,
  // union with GT = 5 -> J = 0.8; precision = 0.8 / 2 runs = 0.4.
  EXPECT_NEAR(s.recall, 0.8, 1e-12);
  EXPECT_NEAR(s.precision, 0.4, 1e-12);
}

TEST(F1EvaluatorTest, AccumulatesAcrossTrajectories) {
  F1Evaluator ev;
  ev.Add({0, 1, 1, 0}, {0, 1, 1, 0});
  ev.Add({0, 1, 1, 0}, {0, 0, 0, 0});
  const Scores s = ev.Compute();
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
}

TEST(F1EvaluatorTest, ResetClearsState) {
  F1Evaluator ev;
  ev.Add({0, 1, 0}, {0, 0, 0});
  ev.Reset();
  ev.Add({0, 1, 0}, {0, 1, 0});
  EXPECT_DOUBLE_EQ(ev.Compute().f1, 1.0);
}

TEST(F1EvaluatorTest, EmptyEvaluatorIsZero) {
  F1Evaluator ev;
  const Scores s = ev.Compute();
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
  EXPECT_DOUBLE_EQ(s.tf1, 0.0);
}

TEST(LengthGroupTest, PaperBoundaries) {
  EXPECT_EQ(LengthGroupOf(5), 0);
  EXPECT_EQ(LengthGroupOf(14), 0);
  EXPECT_EQ(LengthGroupOf(15), 1);
  EXPECT_EQ(LengthGroupOf(29), 1);
  EXPECT_EQ(LengthGroupOf(30), 2);
  EXPECT_EQ(LengthGroupOf(44), 2);
  EXPECT_EQ(LengthGroupOf(45), 3);
  EXPECT_EQ(LengthGroupOf(200), 3);
}

TEST(ExtractRunsTest, Basic) {
  auto runs = traj::ExtractAnomalousRuns({0, 1, 1, 0, 1, 0});
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (traj::Subtrajectory{1, 3}));
  EXPECT_EQ(runs[1], (traj::Subtrajectory{4, 5}));
}

TEST(ExtractRunsTest, RunAtEnd) {
  auto runs = traj::ExtractAnomalousRuns({0, 0, 1, 1});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (traj::Subtrajectory{2, 4}));
}

TEST(ExtractRunsTest, AllZero) {
  EXPECT_TRUE(traj::ExtractAnomalousRuns({0, 0, 0}).empty());
  EXPECT_TRUE(traj::ExtractAnomalousRuns({}).empty());
}

TEST(ExtractRunsTest, AllOne) {
  auto runs = traj::ExtractAnomalousRuns({1, 1, 1});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (traj::Subtrajectory{0, 3}));
}

}  // namespace
}  // namespace rl4oasd::eval
