// Failure-injection tests for the text I/O paths: malformed CSV content
// must surface a clean Status, never crash or silently produce garbage.
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "roadnet/road_network.h"
#include "test_util.h"
#include "traj/dataset.h"

namespace rl4oasd {
namespace {

namespace fs = std::filesystem;

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rl4oasd_fail_test_" + std::string(::testing::UnitTest::
                                                   GetInstance()
                                                       ->current_test_info()
                                                       ->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Write(const std::string& name, const std::string& content) {
    const std::string path = (dir_ / name).string();
    std::ofstream f(path);
    f << content;
    return path;
  }

  fs::path dir_;
};

TEST_F(FailureInjectionTest, MissingCsvFileFails) {
  EXPECT_FALSE(ReadCsv((dir_ / "nope.csv").string()).ok());
  EXPECT_FALSE(traj::Dataset::LoadCsv((dir_ / "nope.csv").string()).ok());
}

TEST_F(FailureInjectionTest, CsvSkipsCommentsAndBlankLines) {
  const auto path = Write("ok.csv",
                          "a,b\n"
                          "# comment line\n"
                          "\n"
                          "1,2\n");
  auto table = ReadCsv(path);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST_F(FailureInjectionTest, DatasetRowWithMissingColumnsRejected) {
  const auto path = Write("short_row.csv",
                          "id,start_time,edges,labels\n"
                          "1,3600\n");
  auto ds = traj::Dataset::LoadCsv(path);
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kIOError);
}

TEST_F(FailureInjectionTest, DatasetLabelsEdgesLengthMismatchRejected) {
  const auto path = Write("mismatch.csv",
                          "id,start_time,edges,labels\n"
                          "1,3600,10 11 12,01\n");  // 3 edges, 2 labels
  auto ds = traj::Dataset::LoadCsv(path);
  EXPECT_FALSE(ds.ok());
}

TEST_F(FailureInjectionTest, DatasetNonNumericFieldsRejected) {
  const auto path = Write("text.csv",
                          "id,start_time,edges,labels\n"
                          "one,noon,a b c,000\n");
  auto ds = traj::Dataset::LoadCsv(path);
  EXPECT_FALSE(ds.ok());
}

TEST_F(FailureInjectionTest, DatasetGarbageLabelsRejected) {
  const auto path = Write("garbage_labels.csv",
                          "id,start_time,edges,labels\n"
                          "1,3600,10 11 12,0x2\n");
  auto ds = traj::Dataset::LoadCsv(path);
  EXPECT_FALSE(ds.ok());
}

TEST_F(FailureInjectionTest, RoadNetworkMissingEdgesFileRejected) {
  // Vertices file present, edges file absent.
  Write("net.vertices.csv", "id,lat,lon\n0,30.0,104.0\n");
  auto net = roadnet::RoadNetwork::LoadCsv((dir_ / "net").string());
  EXPECT_FALSE(net.ok());
}

TEST_F(FailureInjectionTest, RoadNetworkEdgeEndpointOutOfRangeRejected) {
  Write("net.vertices.csv",
        "id,lat,lon\n"
        "0,30.0,104.0\n"
        "1,30.001,104.0\n");
  Write("net.edges.csv",
        "id,from,to,length_m,speed_mps,road_class\n"
        "0,0,7,100,13.9,2\n");  // vertex 7 does not exist
  auto net = roadnet::RoadNetwork::LoadCsv((dir_ / "net").string());
  EXPECT_FALSE(net.ok());
}

TEST_F(FailureInjectionTest, ValidCsvRoundTripStillWorks) {
  // Sanity: the failure paths above must not be over-strict — a valid
  // dataset written by SaveCsv loads back identically.
  const auto net = testing::SmallGrid();
  const auto ds = testing::SmallDataset(net, 2);
  const std::string path = (dir_ / "roundtrip.csv").string();
  ASSERT_TRUE(ds.SaveCsv(path).ok());
  auto loaded = traj::Dataset::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ((*loaded)[i].traj.edges, ds[i].traj.edges);
    EXPECT_EQ((*loaded)[i].labels, ds[i].labels);
  }
}

}  // namespace
}  // namespace rl4oasd
